package invisiblebits_test

import (
	"fmt"

	ib "invisiblebits"
)

// The basic round trip: hide an encrypted, error-corrected message in a
// device's SRAM analog domain and recover it after two weeks of
// simulated shelf time.
func Example() {
	model, err := ib.Model("MSP432P401")
	if err != nil {
		panic(err)
	}
	dev, err := ib.NewDeviceSampled(model, "example-device", 8<<10)
	if err != nil {
		panic(err)
	}
	carrier := ib.NewCarrier(dev)

	key := ib.KeyFromPassphrase("pre-shared secret")
	opts := ib.Options{Codec: ib.PaperCodec(), Key: &key}

	rec, err := carrier.Hide([]byte("meet at dawn"), opts)
	if err != nil {
		panic(err)
	}
	if err := carrier.Shelve(14 * 24); err != nil {
		panic(err)
	}
	msg, err := carrier.Reveal(rec, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", msg)
	// Output: meet at dawn
}

// MaxMessageBytes computes channel capacity under a codec — the §5.3
// numbers fall straight out.
func ExampleMaxMessageBytes() {
	rep5, err := ib.Repetition(5)
	if err != nil {
		panic(err)
	}
	fmt.Println(ib.MaxMessageBytes(64<<10, rep5)) // the paper's 12.8 KB
	// Output: 13107
}

// BestECC turns a measured channel error and a reliability target into a
// concrete code recommendation.
func ExampleBestECC() {
	plan, err := ib.BestECC(0.065, 0.003, 64<<10)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Codec.Name())
	// Output: hamming(15,11)+repetition(3)
}

// Codecs compose: the paper's end-to-end system is Hamming(7,4) under a
// 7-copy repetition code.
func ExampleCompose() {
	rep7, err := ib.Repetition(7)
	if err != nil {
		panic(err)
	}
	codec := ib.Compose(ib.Hamming74(), rep7)
	fmt.Println(codec.Name())
	fmt.Printf("%.3f\n", codec.Rate())
	// Output:
	// hamming(7,4)+repetition(7)
	// 0.082
}
