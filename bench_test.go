package invisiblebits

// One benchmark per table/figure of the paper's evaluation. Each bench
// runs the corresponding experiment harness end to end (device fleet
// instantiation, encoding soaks, power-on sampling, statistics) and
// reports the headline measurement via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the full evaluation and
// bench_output.txt doubles as a results log. EXPERIMENTS.md maps each
// bench to the paper's numbers.

import (
	"fmt"
	"runtime"
	"testing"

	"invisiblebits/internal/experiments"
	"invisiblebits/internal/sram"
)

// benchConfig keeps per-iteration cost low while staying inside every
// acceptance band (per-cell statistics on 4 KB arrays have ~0.25 pp
// standard error).
func benchConfig() experiments.Config {
	return experiments.Config{SRAMLimitBytes: 4 << 10, Captures: 5, FleetSeed: "bench"}
}

// runExperiment executes the experiment b.N times and returns the last
// result for metric extraction.
func runExperiment(b *testing.B, id string) experiments.Result {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFig1VisualPipeline(b *testing.B) {
	res := runExperiment(b, "fig1").(*experiments.Fig1Result)
	b.ReportMetric(100*res.ReceivedError, "received-pixel-err-%")
	b.ReportMetric(res.EncBias, "encrypted-bias")
}

func BenchmarkFig2StartupTransient(b *testing.B) {
	res := runExperiment(b, "fig2").(*experiments.Fig2Result)
	b.ReportMetric(res.SettlePostNanos, "settle-ns")
}

func BenchmarkFig3AccelerationKnobs(b *testing.B) {
	res := runExperiment(b, "fig3").(*experiments.Fig3Result)
	last := len(res.StressHrs) - 1
	b.ReportMetric(res.PctOnes[3][last], "accel-4h-pct-ones")
}

func BenchmarkFig6ErrorVsStressTime(b *testing.B) {
	res := runExperiment(b, "fig6").(*experiments.Fig6Result)
	b.ReportMetric(100*res.Mean[len(res.Mean)-1], "err-10h-%")
	b.ReportMetric(100*res.Mean[0], "err-2h-%")
}

func BenchmarkTable2SpatialAutocorrelation(b *testing.B) {
	res := runExperiment(b, "tab2").(*experiments.Table2Result)
	maxI := 0.0
	for _, row := range res.Rows {
		if row.MoranI > maxI {
			maxI = row.MoranI
		}
	}
	b.ReportMetric(maxI, "max-moran-I")
}

func BenchmarkFig7NaturalRecovery(b *testing.B) {
	res := runExperiment(b, "fig7").(*experiments.Fig7Result)
	b.ReportMetric(res.NormalizedError[4], "err-factor-4wk")
	b.ReportMetric(res.NormalizedError[14], "err-factor-14wk")
}

func BenchmarkNormalOperation(b *testing.B) {
	res := runExperiment(b, "sec514").(*experiments.Sec514Result)
	b.ReportMetric(res.OperationFactor, "err-factor-op-1wk")
	b.ReportMetric(res.ShelfFactor, "err-factor-shelf-1wk")
}

func BenchmarkFig8RepetitionVisual(b *testing.B) {
	res := runExperiment(b, "fig8").(*experiments.Fig8Result)
	b.ReportMetric(100*res.Errors[len(res.Errors)-1], "pixel-err-7copies-%")
}

func BenchmarkFig9CopiesTimesStress(b *testing.B) {
	res := runExperiment(b, "fig9").(*experiments.Fig9Result)
	lastHour := res.Errors[len(res.Errors)-1]
	b.ReportMetric(100*lastHour[len(lastHour)-1], "err-6h-19copies-%")
}

func BenchmarkFig10HammingPlusRepetition(b *testing.B) {
	res := runExperiment(b, "fig10").(*experiments.Fig10Result)
	b.ReportMetric(100*res.SingleCopyMean, "single-copy-err-%")
	b.ReportMetric(float64(res.ZeroErrorAt), "zero-at-copies")
}

func BenchmarkTable3Comparison(b *testing.B) {
	res := runExperiment(b, "tab3").(*experiments.Table3Result)
	b.ReportMetric(100*res.ZuckErrAfterRewrite, "zuck-err-post-rewrite-%")
	b.ReportMetric(100*res.IBErrAfterRewrite, "ib-err-post-rewrite-%")
}

func BenchmarkTable4DeviceSummary(b *testing.B) {
	res := runExperiment(b, "tab4").(*experiments.Table4Result)
	for _, row := range res.Rows {
		if row.Device == "MSP432P401" {
			b.ReportMetric(100*row.BitRate, "msp432-bitrate-%")
		}
	}
}

func BenchmarkFig11HammingWeightDensity(b *testing.B) {
	res := runExperiment(b, "fig11").(*experiments.Fig11Result)
	b.ReportMetric(res.MeanPlain, "plain-mean-hw")
	b.ReportMetric(res.MeanEncrypted, "encrypted-mean-hw")
}

func BenchmarkFig12Entropy(b *testing.B) {
	res := runExperiment(b, "fig12").(*experiments.Fig12Result)
	b.ReportMetric(res.NormEncrypted, "encrypted-norm-entropy")
	b.ReportMetric(res.NormPlain, "plain-norm-entropy")
}

func BenchmarkTable5Deniability(b *testing.B) {
	res := runExperiment(b, "tab5").(*experiments.Table5Result)
	var maxPlain float64
	for _, row := range res.Rows {
		if row.MoranI > maxPlain {
			maxPlain = row.MoranI
		}
	}
	b.ReportMetric(maxPlain, "max-plain-moran-I")
}

func BenchmarkWelchTTest(b *testing.B) {
	res := runExperiment(b, "sec6").(*experiments.WelchResult)
	b.ReportMetric(res.Test.POneTailed, "p-one-tailed")
}

func BenchmarkFig14MultiSnapshot(b *testing.B) {
	res := runExperiment(b, "fig14").(*experiments.Fig14Result)
	b.ReportMetric(res.MaxMoranI, "max-moran-I")
}

func BenchmarkFig15ErrorCapacity(b *testing.B) {
	res := runExperiment(b, "fig15").(*experiments.Fig15Result)
	b.ReportMetric(100*res.SingleErrors[1], "msp432-single-err-%")
}

func BenchmarkCapacityComparison(b *testing.B) {
	res := runExperiment(b, "sec53").(*experiments.Sec53Result)
	b.ReportMetric(res.FactorVsWang5, "capacity-factor-x")
	b.ReportMetric(res.FactorVsWangBest, "best-device-factor-x")
}

func BenchmarkAdversarialAging(b *testing.B) {
	res := runExperiment(b, "sec74").(*experiments.Sec74Result)
	b.ReportMetric(res.AttackFactor, "attack-factor")
	b.ReportMetric(res.RepairFactor, "repair-factor")
}

func BenchmarkModelValidation(b *testing.B) {
	res := runExperiment(b, "modelcheck").(*experiments.ModelCheckResult)
	b.ReportMetric(100*res.RaceAgreement, "race-agreement-%")
}

func BenchmarkFirmwareOperation(b *testing.B) {
	res := runExperiment(b, "fwop").(*experiments.FirmwareOpResult)
	b.ReportMetric(res.FirmwareFactor, "firmware-err-factor")
	b.ReportMetric(res.ModelFactor, "model-err-factor")
}

// --- ablation benches (DESIGN.md §5) ------------------------------------------

// BenchmarkAblationCaptureCount quantifies the §4.3 claim that five
// power-on captures suffice.
func BenchmarkAblationCaptureCount(b *testing.B) {
	res := runExperiment(b, "abl-captures").(*experiments.AblCapturesResult)
	for i, n := range res.Captures {
		b.ReportMetric(100*res.Errors[i], fmt.Sprintf("err-%dcap-%%", n))
	}
}

// BenchmarkAblationSoftDecoding contrasts hard majority voting with
// soft-decision combining on a weak (2h, 3-copy) encoding.
func BenchmarkAblationSoftDecoding(b *testing.B) {
	res := runExperiment(b, "abl-soft").(*experiments.AblSoftResult)
	b.ReportMetric(100*res.HardError, "hard-err-%")
	b.ReportMetric(100*res.SoftError, "soft-err-%")
}

// BenchmarkAblationECCOrder measures footnote 7: repetition∘Hamming vs
// Hamming∘repetition on the same channel.
func BenchmarkAblationECCOrder(b *testing.B) {
	res := runExperiment(b, "abl-eccorder").(*experiments.AblECCOrderResult)
	b.ReportMetric(100*res.HamThenRep, "ham-rep-err-%")
	b.ReportMetric(100*res.RepThenHam, "rep-ham-err-%")
}

// BenchmarkAblationCipherChoice contrasts CTR vs CBC error amplification
// (§4.1) on a synthetic 0.8% channel.
func BenchmarkAblationCipherChoice(b *testing.B) {
	res := runExperiment(b, "abl-cipher").(*experiments.AblCipherResult)
	b.ReportMetric(100*res.CTRError, "ctr-err-%")
	b.ReportMetric(100*res.CBCError, "cbc-err-%")
}

// --- capture-path benches (PR 3 tentpole) -------------------------------------

// newCaptureArray builds an aged array of the given size wired to a
// private pool, so worker counts can be compared without disturbing the
// process-wide shared pool.
func newCaptureArray(b *testing.B, bytes, workers int) *sram.Array {
	b.Helper()
	spec := sram.DefaultSpec()
	spec.Rows = 256
	spec.Cols = bytes * 8 / spec.Rows
	spec.Seed = 0xbe2c
	spec.Workers = workers
	a, err := sram.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := a.PowerOn(25); err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkCapturePath measures the raw capture engine: a full
// power-cycle burst with per-cell counter-derived noise, across array
// size × burst length × worker count. cmd/ibbench runs the same grid
// and records it as BENCH_3.json.
func BenchmarkCapturePath(b *testing.B) {
	workerGrid := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerGrid = append(workerGrid, n)
	}
	for _, size := range []struct {
		name  string
		bytes int
	}{{"4KiB", 4 << 10}, {"64KiB", 64 << 10}} {
		for _, captures := range []int{5, 25} {
			for _, workers := range workerGrid {
				b.Run(fmt.Sprintf("%s/%dcap/%dw", size.name, captures, workers), func(b *testing.B) {
					a := newCaptureArray(b, size.bytes, workers)
					b.SetBytes(int64(size.bytes * captures))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := a.CaptureVotes(captures, 25); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// --- aging-path benches (PR 4 tentpole) ---------------------------------------

// BenchmarkStressPath measures the encoding soak hot loop — the per-cell
// defect-pool growth that dominates Hide() — across array size. BENCH_3
// only timed captures; the aging engine was invisible to it. cmd/ibbench
// runs the same loop against the legacy per-cell-Pow engine and records
// the ratio in BENCH_4.json.
func BenchmarkStressPath(b *testing.B) {
	for _, size := range []struct {
		name  string
		bytes int
	}{{"4KiB", 4 << 10}, {"64KiB", 64 << 10}} {
		b.Run(size.name, func(b *testing.B) {
			a := newCaptureArray(b, size.bytes, 0)
			cond := a.Spec().Aging.Ref
			b.SetBytes(int64(size.bytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Stress(cond, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShelvePath measures unpowered shelf decay — recoverable-pool
// relaxation plus the bias-plane rebuild — the other per-cell aging loop
// Hide()/retention probes lean on.
func BenchmarkShelvePath(b *testing.B) {
	for _, size := range []struct {
		name  string
		bytes int
	}{{"4KiB", 4 << 10}, {"64KiB", 64 << 10}} {
		b.Run(size.name, func(b *testing.B) {
			a := newCaptureArray(b, size.bytes, 0)
			cond := a.Spec().Aging.Ref
			if err := a.Stress(cond, 2); err != nil {
				b.Fatal(err)
			}
			a.PowerOff(true)
			b.SetBytes(int64(size.bytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Shelve(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
