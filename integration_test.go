package invisiblebits

// Integration tests that exercise complete workflows across the package
// boundaries, the way the cmd/ tools and a downstream user would.

import (
	"bytes"
	"fmt"
	"testing"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

// TestFullCovertChannelWorkflow walks the paper's Fig. 4 end to end with
// a device-image handoff in the middle: Alice encodes and serializes the
// device; the bytes travel; Bob deserializes, survives an inspection, and
// decodes.
func TestFullCovertChannelWorkflow(t *testing.T) {
	model, err := Model("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFromPassphrase("fig4 integration")
	opts := Options{Codec: PaperCodec(), Key: &key}
	secret := []byte("integration: the full Fig. 4 pipeline, with a serialized handoff")

	// Alice's side.
	aliceDev, err := NewDeviceSampled(model, "fig4", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewCarrier(aliceDev)
	rec, err := alice.Hide(secret, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The handoff: the device is serialized (mailed) and reconstructed.
	var mail bytes.Buffer
	if err := SaveDevice(aliceDev, &mail); err != nil {
		t.Fatal(err)
	}
	bobDev, err := LoadDevice(&mail)
	if err != nil {
		t.Fatal(err)
	}
	bob := NewCarrier(bobDev)

	// Border inspection on Bob's side: run the camouflage firmware, dump
	// and overwrite memory, take statistics.
	if _, err := bobDev.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if _, err := bobDev.Run(2000); err != nil {
		t.Fatal(err)
	}
	w := rng.NewWorkloadWriter(0x1947, 0)
	nominal := analog.Conditions{VoltageV: model.VNomV, TempC: 25}
	if err := bobDev.SRAM.OperateRandom(w, nominal, 0.5, 0.25); err != nil {
		t.Fatal(err)
	}
	bobDev.PowerOff(true)
	snap, err := bobDev.SRAM.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if bias := stats.MeanBias(snap); bias < 0.49 || bias > 0.51 {
		t.Errorf("inspection found biased power-on state: %v", bias)
	}

	// Two weeks in a drawer, then decode.
	if err := bob.Shelve(14 * 24); err != nil {
		t.Fatal(err)
	}
	got, err := bob.Reveal(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("recovered %q", got)
	}
}

// TestEveryTable4DeviceRoundTrips runs the paper-codec pipeline on each
// of the four fully characterized devices — including the flashless
// BCM2837, whose encode path goes through the debug port.
func TestEveryTable4DeviceRoundTrips(t *testing.T) {
	key := KeyFromPassphrase("fleet of four")
	for _, name := range []string{"ATSAML11E16A", "MSP432P401", "LPC55S69JBD100", "BCM2837"} {
		t.Run(name, func(t *testing.T) {
			model, err := Model(name)
			if err != nil {
				t.Fatal(err)
			}
			dev, err := NewDeviceSampled(model, "t4-"+name, 8<<10)
			if err != nil {
				t.Fatal(err)
			}
			carrier := NewCarrier(dev)
			// The BCM2837's 20.8% channel needs a stronger code than the
			// MCU-class parts: plan it.
			plan, err := BestECC((1-model.TargetBitRate)*1.1, 1e-6, dev.SRAM.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Codec: plan.Codec, Key: &key}
			msg := []byte("per-device round trip: " + name)
			rec, err := carrier.Hide(msg, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := carrier.Reveal(rec, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("round trip failed on %s with %s", name, plan.Codec.Name())
			}
		})
	}
}

// TestRepeatedHideOnSameDevice re-encodes a device that already carries a
// message: the new encoding must win (aging is directed by the most
// recent, longest soak) even though the old payload left permanent
// damage behind.
func TestRepeatedHideOnSameDevice(t *testing.T) {
	model, err := Model("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDeviceSampled(model, "rewrite", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	carrier := NewCarrier(dev)
	key := KeyFromPassphrase("k")
	opts := Options{Codec: PaperCodec(), Key: &key}

	if _, err := carrier.Hide([]byte("the first message, later abandoned"), opts); err != nil {
		t.Fatal(err)
	}
	// Re-encode with triple the soak to overcome the first encoding's
	// residue (sub-linear aging makes overwriting expensive — a genuine
	// property of the channel).
	opts2 := opts
	opts2.StressHours = 3 * model.EncodingHours
	second := []byte("the second message replaces it")
	rec2, err := carrier.Hide(second, opts2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := carrier.Reveal(rec2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, second) {
		t.Fatal("re-encoded message not recovered")
	}
}

// TestMessageSurvivesBakingAttack: an adversary ovens the device at
// 85 °C for a week to erase a suspected message; the permanent component
// of the encoding plus the paper codec keep the message recoverable.
func TestMessageSurvivesBakingAttack(t *testing.T) {
	model, err := Model("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDeviceSampled(model, "baked", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	carrier := NewCarrier(dev)
	key := KeyFromPassphrase("oven-proof")
	opts := Options{Codec: PaperCodec(), Key: &key}
	msg := []byte("survives a week at 85C")
	rec, err := carrier.Hide(msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := carrier.ShelveAt(7*24, 85); err != nil {
		t.Fatal(err)
	}
	got, err := carrier.Reveal(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("baking attack destroyed the message")
	}
}

// TestManyMessagesManyDevices is a randomized soak: messages of assorted
// sizes on assorted devices with assorted codecs all round-trip.
func TestManyMessagesManyDevices(t *testing.T) {
	src := rng.NewSource(0xD15C)
	models := []string{"MSP432P401", "ATSAML11E16A", "STM32L562"}
	key := KeyFromPassphrase("soak")
	for i := 0; i < 6; i++ {
		modelName := models[i%len(models)]
		model, err := Model(modelName)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := NewDeviceSampled(model, fmt.Sprintf("soak-%d", i), 4<<10)
		if err != nil {
			t.Fatal(err)
		}
		carrier := NewCarrier(dev)
		opts := Options{Codec: PaperCodec(), Key: &key}
		n := 1 + src.Intn(MaxMessageBytes(dev.SRAM.Bytes(), opts.Codec))
		msg := make([]byte, n)
		src.Bytes(msg)
		rec, err := carrier.Hide(msg, opts)
		if err != nil {
			t.Fatalf("%s #%d (n=%d): %v", modelName, i, n, err)
		}
		got, err := carrier.Reveal(rec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("%s #%d (n=%d): round trip failed", modelName, i, n)
		}
	}
}
