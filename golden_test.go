package invisiblebits_test

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	ib "invisiblebits"
	"invisiblebits/internal/sram"
)

// The golden fixtures pin the full cross-version contract: a message
// hidden by today's encoder, saved as both an image-format-v1 and
// image-format-v2 device file, must keep decoding to the same plaintext
// in every future build. Unlike the statistical acceptance tests, these
// are byte-exact files checked into testdata/golden — if a change to the
// noise derivation, aging model, or image format breaks them, that is a
// compatibility break with devices already in the field and must be a
// deliberate, versioned decision (regenerate with IB_REGEN_GOLDEN=1).

const (
	goldenMessage = "invisible bits golden fixture: meet at dawn"
	goldenPass    = "golden pre-shared secret"
	goldenModel    = "MSP432P401"
	goldenSerial   = "golden-0001"
	goldenSerialV3 = "golden-0003"
	goldenSRAM     = 4 << 10
)

func goldenDir() string { return filepath.Join("testdata", "golden") }

func goldenOptions() ib.Options {
	key := ib.KeyFromPassphrase(goldenPass)
	return ib.Options{Codec: ib.PaperCodec(), Key: &key}
}

// imageV1 mirrors the pre-ledger wire layout; gob matches struct fields
// by name, so encoding this reproduces a version-1 file byte-for-byte in
// structure.
type imageV1 struct {
	Version   int
	ModelName string
	Serial    string
	SRAMBytes int
	SRAM      sram.State
	FlashData []byte
}

// TestRegenGoldenImages hides the golden message in a fresh device and
// writes the v1 image, v2 image, and record to testdata/golden. Gated:
// run with IB_REGEN_GOLDEN=1 only when a format change is intentional.
func TestRegenGoldenImages(t *testing.T) {
	if os.Getenv("IB_REGEN_GOLDEN") == "" {
		t.Skip("set IB_REGEN_GOLDEN=1 to regenerate testdata/golden fixtures")
	}
	model, err := ib.Model(goldenModel)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ib.NewDeviceSampled(model, goldenSerial, goldenSRAM)
	if err != nil {
		t.Fatal(err)
	}
	carrier := ib.NewCarrier(dev)
	rec, err := carrier.Hide([]byte(goldenMessage), goldenOptions())
	if err != nil {
		t.Fatal(err)
	}

	if err := os.MkdirAll(goldenDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := dev.Save(&v2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir(), "device-v2.ibdev"), v2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var flashData []byte
	if dev.Flash != nil {
		flashData, err = dev.Flash.Read(0, dev.Flash.Bytes())
		if err != nil {
			t.Fatal(err)
		}
	}
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(imageV1{
		Version:   1,
		ModelName: dev.Model.Name,
		Serial:    dev.Serial,
		SRAMBytes: dev.SRAM.Bytes(),
		SRAM:      dev.SRAM.StateSnapshot(),
		FlashData: flashData,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir(), "device-v1.ibdev"), v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir(), "record.json"), append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRegenGoldenV3Image writes the version-3 fixture: a fresh device
// (distinct serial, so a distinct fingerprint) encoded and saved by the
// current engine, exercising the ziggurat noise plane end to end — the
// image records NoiseGen and must replay it forever. Regenerating v3
// does NOT touch the v1/v2 fixtures: those pin the pre-versioning
// engine and are never rewritten.
func TestRegenGoldenV3Image(t *testing.T) {
	if os.Getenv("IB_REGEN_GOLDEN") == "" {
		t.Skip("set IB_REGEN_GOLDEN=1 to regenerate testdata/golden fixtures")
	}
	model, err := ib.Model(goldenModel)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ib.NewDeviceSampled(model, goldenSerialV3, goldenSRAM)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.SRAM.NoiseGen(); got != sram.NoiseGenZiggurat {
		t.Fatalf("fresh device uses NoiseGen %d, want ziggurat", got)
	}
	rec, err := ib.NewCarrier(dev).Hide([]byte(goldenMessage), goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(goldenDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	var v3 bytes.Buffer
	if err := dev.Save(&v3); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir(), "device-v3.ibdev"), v3.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir(), "record-v3.json"), append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// decodeGolden loads the named image and reveals the golden record.
func decodeGolden(t *testing.T, imageFile string) []byte {
	return decodeGoldenRecord(t, imageFile, "record.json")
}

func decodeGoldenRecord(t *testing.T, imageFile, recordFile string) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(goldenDir(), recordFile))
	if err != nil {
		t.Fatal(err)
	}
	var rec ib.Record
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(filepath.Join(goldenDir(), imageFile))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ib.LoadDevice(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ib.NewCarrier(dev).Reveal(&rec, goldenOptions())
	if err != nil {
		t.Fatalf("%s: reveal: %v", imageFile, err)
	}
	return msg
}

// loadGoldenDevice loads a checked-in image for metadata assertions.
func loadGoldenDevice(t *testing.T, imageFile string) *ib.Device {
	t.Helper()
	img, err := os.ReadFile(filepath.Join(goldenDir(), imageFile))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ib.LoadDevice(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestGoldenImagesDecode: both checked-in image versions must decode to
// the exact golden plaintext.
func TestGoldenImagesDecode(t *testing.T) {
	v1 := decodeGolden(t, "device-v1.ibdev")
	v2 := decodeGolden(t, "device-v2.ibdev")
	if string(v1) != goldenMessage {
		t.Errorf("v1 image decoded %q, want %q", v1, goldenMessage)
	}
	if string(v2) != goldenMessage {
		t.Errorf("v2 image decoded %q, want %q", v2, goldenMessage)
	}
	if !bytes.Equal(v1, v2) {
		t.Error("v1 and v2 images decode to different messages")
	}
}

// TestGoldenNoiseGenHonoured: pre-versioning images must load as
// Box–Muller devices (their captures were recorded under v1 noise),
// while the v3 image records and restores the ziggurat plane.
func TestGoldenNoiseGenHonoured(t *testing.T) {
	for _, f := range []string{"device-v1.ibdev", "device-v2.ibdev"} {
		dev := loadGoldenDevice(t, f)
		if got := dev.SRAM.NoiseGen(); got != sram.NoiseGenBoxMuller {
			t.Errorf("%s loaded with NoiseGen %d, want Box–Muller (%d)",
				f, got, sram.NoiseGenBoxMuller)
		}
	}
	dev := loadGoldenDevice(t, "device-v3.ibdev")
	if got := dev.SRAM.NoiseGen(); got != sram.NoiseGenZiggurat {
		t.Errorf("device-v3.ibdev loaded with NoiseGen %d, want ziggurat (%d)",
			got, sram.NoiseGenZiggurat)
	}
}

// TestGoldenV3ImageDecodes: the v3 fixture (encoded and captured
// entirely under the ziggurat plane) must decode to the golden
// plaintext.
func TestGoldenV3ImageDecodes(t *testing.T) {
	msg := decodeGoldenRecord(t, "device-v3.ibdev", "record-v3.json")
	if string(msg) != goldenMessage {
		t.Errorf("v3 image decoded %q, want %q", msg, goldenMessage)
	}
}
