package invisiblebits

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

func newTestCarrier(t *testing.T, serial string, p FaultProfile) *Carrier {
	t.Helper()
	model, err := Model("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDeviceSampled(model, serial, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultyCarrier(dev, p)
}

func TestFaultyCarrierRoundTrip(t *testing.T) {
	// A zero profile must behave exactly like a clean carrier; a flaky
	// link must be absorbed by the retry layer.
	for _, tc := range []struct {
		name string
		p    FaultProfile
	}{
		{"zero-profile", FaultProfile{}},
		{"flaky-link", FaultProfile{Seed: 11, LinkDropRate: 0.25}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCarrier(t, "api-"+tc.name, tc.p)
			key := KeyFromPassphrase("fault api")
			opts := Options{Codec: PaperCodec(), Key: &key}
			msg := []byte("public fault surface")
			rec, err := c.Hide(msg, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Reveal(rec, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestFaultClassifiersPublic(t *testing.T) {
	c := newTestCarrier(t, "api-doomed", FaultProfile{FailAtHours: 2})
	_, err := c.Hide([]byte("never lands"), Options{})
	if err == nil {
		t.Fatal("doomed carrier encoded successfully")
	}
	if !IsPermanentFault(err) || IsTransientFault(err) {
		t.Fatalf("death misclassified: %v", err)
	}
}

func TestResilientStripePublicAPI(t *testing.T) {
	// The README scenario: one primary dies mid-soak, its shard re-routes
	// to a spare, and the gathered message survives.
	profiles := []FaultProfile{{}, {FailAtHours: 2}, {}}
	carriers := make([]*Carrier, len(profiles))
	for i, p := range profiles {
		carriers[i] = newTestCarrier(t, fmt.Sprintf("api-stripe-%d", i), p)
	}
	spare := newTestCarrier(t, "api-stripe-spare", FaultProfile{})

	key := KeyFromPassphrase("resilient api")
	opts := Options{Codec: PaperCodec(), Key: &key}
	per := MaxMessageBytes(4<<10, opts.Codec)
	msg := bytes.Repeat([]byte("invisible"), (per*2+20)/9)

	striped, err := StripeMessageWith(context.Background(), carriers, msg, opts,
		StripeResilience{Spares: []*Carrier{spare}})
	if err != nil {
		t.Fatal(err)
	}
	if carriers[1].Device().Alive() {
		t.Error("doomed primary survived its soak")
	}

	all := append(append([]*Carrier(nil), carriers...), spare)
	rep, err := GatherReportFor(context.Background(), all, striped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("gather incomplete: %v", rep.Err())
	}
	if !bytes.Equal(rep.Message, msg) {
		t.Fatal("resilient stripe lost data")
	}
	if got, err := GatherMessage(all, striped, opts); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("legacy gather over survivors: %v", err)
	}
}
