package invisiblebits

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCampaignPublicAPI drives the crash-safe supervisor through its
// public face: run a campaign, interrupt nothing, decode the result,
// and confirm ResumeCampaign on the finished directory is idempotent.
func TestCampaignPublicAPI(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "api")
	key := KeyFromPassphrase("campaign api")
	msg := []byte("journaled all the way down")

	spec := CampaignSpec{
		ID:      "api",
		Model:   "MSP430G2553",
		Serials: []string{"api-0", "api-1"},
		Message: msg,
		Codec:   "paper",
	}
	res, err := RunCampaign(ctx, dir, spec, CampaignOptions{Key: &key})
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaign != "api" || res.MessageBytes != len(msg) {
		t.Fatalf("result header wrong: %+v", res)
	}
	if res.EquivalentHours <= 0 {
		t.Fatal("campaign reports zero bench time")
	}

	got, err := DecodeCampaign(ctx, dir, &key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decoded %q, want %q", got, msg)
	}

	// A finished campaign resumes to its sealed result, and re-Running
	// the same directory is refused.
	again, err := ResumeCampaign(ctx, dir, CampaignOptions{Key: &key})
	if err != nil {
		t.Fatal(err)
	}
	if again.Campaign != res.Campaign || again.EquivalentHours != res.EquivalentHours {
		t.Fatalf("idempotent resume drifted: %+v vs %+v", again, res)
	}
	if _, err := RunCampaign(ctx, dir, spec, CampaignOptions{Key: &key}); err == nil {
		t.Fatal("RunCampaign re-entered a directory that already holds a journal")
	}
}

// TestAtomicImageAndTruncationDetection pins the persistence contract:
// SaveDeviceFile round-trips, and a torn image is reported as
// ErrTruncatedImage, not a generic decode error.
func TestAtomicImageAndTruncationDetection(t *testing.T) {
	model, err := Model("MSP430G2553")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(model, "atomic-0")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dev.img")
	if err := SaveDeviceFile(dev, path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDeviceFile(path); err != nil {
		t.Fatalf("round-trip: %v", err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadDeviceFile(path)
	if !errors.Is(err, ErrTruncatedImage) {
		t.Fatalf("torn image surfaced as %v, want ErrTruncatedImage", err)
	}
}

// TestFleetBreakersPublicAPI exercises the breaker surface: a hopeless
// carrier quarantines during resilient striping and the stats report it.
func TestFleetBreakersPublicAPI(t *testing.T) {
	if FleetBreakerStats(nil) != nil {
		t.Fatal("nil breaker set should report no stats")
	}

	key := KeyFromPassphrase("breaker api")
	opts := Options{Codec: PaperCodec(), Key: &key}
	healthy := newTestCarrier(t, "brk-ok", FaultProfile{})
	doomed := newTestCarrier(t, "brk-dead", FaultProfile{FailAtHours: 1})
	spare := newTestCarrier(t, "brk-spare", FaultProfile{})

	breakers := NewFleetBreakers(BreakerConfig{FailureThreshold: 1, QuarantineAfterTrips: 1})
	msg := make([]byte, MaxMessageBytes(4<<10, PaperCodec())+5)
	for i := range msg {
		msg[i] = byte(i)
	}
	striped, err := StripeMessageWith(context.Background(), []*Carrier{healthy, doomed}, msg, opts,
		StripeResilience{Spares: []*Carrier{spare}, Breakers: breakers})
	if err != nil {
		t.Fatal(err)
	}

	q := breakers.Quarantined()
	if len(q) != 1 || q[0] != doomed.Device().DeviceID() {
		t.Fatalf("quarantine list %v, want just the doomed carrier", q)
	}
	stats := FleetBreakerStats(breakers)
	found := false
	for _, s := range stats {
		if s.DeviceID == doomed.Device().DeviceID() {
			found = true
			if s.State != BreakerQuarantined || s.PermanentFaults == 0 {
				t.Fatalf("doomed carrier stats %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("stats %v missing the doomed carrier", stats)
	}

	rep, err := GatherReportWith(context.Background(),
		[]*Carrier{healthy, doomed, spare}, striped, opts, breakers)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || !bytes.Equal(rep.Message, msg) {
		t.Fatalf("gather with breakers incomplete: %+v", rep)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("gather report quarantine list %v", rep.Quarantined)
	}
}
