module invisiblebits

go 1.22
