package analog

import (
	"math"
	"testing"
	"testing/quick"
)

// msp432ish returns a parameter set shaped like the MSP432 calibration:
// 45.4 mV of shift after 10 h at the accelerated reference condition.
func msp432ish() Params {
	return Params{
		A0MvPerHourN: CalibrateA0(0.66, 45.4, 10),
		TimeExponent: 0.66,
		GammaPerVolt: 1.6,
		ActivationEV: 0.19,
		Ref:          Conditions{VoltageV: 3.3, TempC: 85},
		RecFastFrac:  0.12,
		RecSlowFrac:  0.16,
		TauFastHours: 100,
		TauSlowHours: 1350,
	}
}

func TestValidateAcceptsCalibratedParams(t *testing.T) {
	if err := msp432ish().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.A0MvPerHourN = 0 },
		func(p *Params) { p.TimeExponent = 0 },
		func(p *Params) { p.TimeExponent = 1.2 },
		func(p *Params) { p.GammaPerVolt = -1 },
		func(p *Params) { p.ActivationEV = -0.1 },
		func(p *Params) { p.RecFastFrac = 0.9; p.RecSlowFrac = 0.2 },
		func(p *Params) { p.TauFastHours = 0 },
		func(p *Params) { p.Ref.TempC = -300 },
	}
	for i, mutate := range bad {
		p := msp432ish()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCalibrationAnchor(t *testing.T) {
	p := msp432ish()
	got := p.ShiftAfter(p.Ref, 10)
	if math.Abs(got-45.4) > 1e-9 {
		t.Fatalf("anchored shift = %v, want 45.4", got)
	}
}

func TestRateMonotoneInVoltageAndTemp(t *testing.T) {
	p := msp432ish()
	base := p.Rate(Conditions{VoltageV: 1.2, TempC: 25})
	hotterT := p.Rate(Conditions{VoltageV: 1.2, TempC: 85})
	hotterV := p.Rate(Conditions{VoltageV: 3.3, TempC: 25})
	both := p.Rate(Conditions{VoltageV: 3.3, TempC: 85})
	if !(base < hotterT && hotterT < both && base < hotterV && hotterV < both) {
		t.Fatalf("acceleration ordering violated: %v %v %v %v", base, hotterT, hotterV, both)
	}
	// Fig. 3d: "voltage has the largest acceleration effect".
	if hotterV <= hotterT {
		t.Errorf("voltage knob (%v) should beat temperature knob (%v)", hotterV, hotterT)
	}
}

func TestNominalAgingIsNegligible(t *testing.T) {
	// §5.1.4 requires that a week at nominal conditions barely ages the
	// device. Nominal rate must be ≲2% of the accelerated rate.
	p := msp432ish()
	accel := p.Accel(Conditions{VoltageV: 1.2, TempC: 25})
	if accel > 0.02 {
		t.Fatalf("nominal acceleration factor %v too high for message retention", accel)
	}
}

func TestShiftAfterPowerLaw(t *testing.T) {
	p := msp432ish()
	s2 := p.ShiftAfter(p.Ref, 2)
	s10 := p.ShiftAfter(p.Ref, 10)
	wantRatio := math.Pow(5, 0.66)
	if r := s10 / s2; math.Abs(r-wantRatio) > 1e-9 {
		t.Fatalf("shift ratio = %v, want %v", r, wantRatio)
	}
	if p.ShiftAfter(p.Ref, 0) != 0 || p.ShiftAfter(p.Ref, -1) != 0 {
		t.Fatal("nonpositive durations must give zero shift")
	}
}

func TestGrowShiftComposes(t *testing.T) {
	// Stressing 4h then 6h must equal stressing 10h in one go (same c).
	p := msp432ish()
	oneShot := p.ShiftAfter(p.Ref, 10)
	staged := p.GrowShift(p.GrowShift(0, p.Ref, 4), p.Ref, 6)
	if math.Abs(oneShot-staged) > 1e-9 {
		t.Fatalf("effective-time accumulation broken: %v vs %v", oneShot, staged)
	}
}

func TestGrowShiftCompositionProperty(t *testing.T) {
	p := msp432ish()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%1000)/100 + 0.01 // 0.01..10.01 h
		b := float64(bRaw%1000)/100 + 0.01
		oneShot := p.ShiftAfter(p.Ref, a+b)
		staged := p.GrowShift(p.GrowShift(0, p.Ref, a), p.Ref, b)
		return math.Abs(oneShot-staged) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrowShiftSublinear(t *testing.T) {
	// Later stress hours buy less shift than earlier ones (saturation).
	p := msp432ish()
	first := p.GrowShift(0, p.Ref, 1)
	second := p.GrowShift(first, p.Ref, 1) - first
	if second >= first {
		t.Fatalf("aging is not sublinear: first hour %v, second hour %v", first, second)
	}
}

func TestStressStateSplitsPools(t *testing.T) {
	p := msp432ish()
	var s StressState
	s.Stress(p, p.Ref, 10)
	total := s.Total()
	if math.Abs(total-45.4) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
	if math.Abs(s.Perm/total-p.PermanentFrac()) > 1e-9 {
		t.Errorf("permanent fraction = %v, want %v", s.Perm/total, p.PermanentFrac())
	}
	if math.Abs(s.Fast/total-p.RecFastFrac) > 1e-9 || math.Abs(s.Slow/total-p.RecSlowFrac) > 1e-9 {
		t.Errorf("pool split wrong: %+v", s)
	}
}

func TestRecoveryShape(t *testing.T) {
	// Fig. 7: recovery loss ~12% of shift after 1 week, ~18% after 4 weeks,
	// plateauing near the total recoverable share (28%) by 14 weeks.
	p := msp432ish()
	var s StressState
	s.Stress(p, p.Ref, 10)
	t0 := s.Total()

	week := s
	week.Recover(p, 7*24)
	lossWeek := 1 - week.Total()/t0

	month := s
	month.Recover(p, 28*24)
	lossMonth := 1 - month.Total()/t0

	long := s
	long.Recover(p, 98*24)
	lossLong := 1 - long.Total()/t0

	if !(lossWeek < lossMonth && lossMonth < lossLong) {
		t.Fatalf("recovery not monotone: %v %v %v", lossWeek, lossMonth, lossLong)
	}
	if lossWeek < 0.08 || lossWeek > 0.16 {
		t.Errorf("1-week loss = %v, want ~0.12", lossWeek)
	}
	if lossMonth < 0.14 || lossMonth > 0.23 {
		t.Errorf("4-week loss = %v, want ~0.18", lossMonth)
	}
	if lossLong > p.RecFastFrac+p.RecSlowFrac {
		t.Errorf("loss %v exceeded recoverable share", lossLong)
	}
	// "The recovery rate decays exponentially with time": the first week
	// must recover more than the fourth week.
	week3 := s
	week3.Recover(p, 3*7*24)
	week4 := s
	week4.Recover(p, 4*7*24)
	rateFirst := lossWeek
	rateFourth := (1 - week4.Total()/t0) - (1 - week3.Total()/t0)
	if rateFourth >= rateFirst {
		t.Errorf("recovery rate did not decay: first %v, fourth %v", rateFirst, rateFourth)
	}
}

func TestPermanentComponentSurvives(t *testing.T) {
	p := msp432ish()
	var s StressState
	s.Stress(p, p.Ref, 10)
	s.Recover(p, 1e6) // effectively forever
	if s.Total() < s.Perm || math.Abs(s.Total()-45.4*p.PermanentFrac()) > 0.5 {
		t.Fatalf("permanent component wrong after total recovery: %v", s.Total())
	}
}

func TestRecoverNoOpForNonPositive(t *testing.T) {
	p := msp432ish()
	var s StressState
	s.Stress(p, p.Ref, 1)
	before := s.Total()
	s.Recover(p, 0)
	s.Recover(p, -5)
	if s.Total() != before {
		t.Fatal("Recover mutated state for non-positive dt")
	}
}

func TestConditionsHelpers(t *testing.T) {
	c := Conditions{VoltageV: 3.3, TempC: 85}
	if math.Abs(c.Kelvin()-358.15) > 1e-9 {
		t.Errorf("Kelvin = %v", c.Kelvin())
	}
	if c.String() != "3.3V/85°C" {
		t.Errorf("String = %q", c.String())
	}
}

func TestCalibrateA0Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero hours")
		}
	}()
	CalibrateA0(0.66, 10, 0)
}
