// Package analog models the transistor-aging physics that Invisible Bits
// exploits (§2.2 of the paper): Negative Bias Temperature Instability
// (NBTI) stress on the active PMOS of an SRAM cell's cross-coupled
// inverter pair, its voltage/temperature acceleration, and its partial
// recovery once stress is released.
//
// # Model
//
// Stress-induced threshold-voltage shift follows the reaction–diffusion
// power law used throughout the aging literature:
//
//	ΔVth(t; V, T) = A(V, T) · tⁿ
//	A(V, T)       = A0 · exp(γ·(V − Vref)) · exp(−(Ea/k)·(1/T − 1/Tref))
//
// The time exponent n and the per-device prefactor A0 are *calibrated* to
// the paper's measured error-vs-stress-time data (Fig. 6, Table 4) rather
// than to first-principles constants — the paper's real devices are the
// ground truth this simulator must match in shape (see DESIGN.md §1).
//
// Accumulation is state-dependent ("effective time"): a transistor that
// already carries shift s under rate A behaves as if it had been stressed
// for t_eq = (s/A)^(1/n); further stress of duration dt grows the shift to
// A·(t_eq+dt)ⁿ. This makes repeated, interleaved stress episodes (encode →
// normal operation → adversarial aging) compose correctly and keeps the
// power law sublinear.
//
// Recovery: each stress increment is split into a permanent part and two
// recoverable pools (fast and slow) that decay exponentially once stress
// is released. The two-pool sum reproduces the paper's observation that
// "recovery follows a logarithmic relation with time" and that "the
// recovery rate decays exponentially with time" (Fig. 7).
package analog

import (
	"fmt"
	"math"
)

// BoltzmannEVPerK is the Boltzmann constant in eV/K.
const BoltzmannEVPerK = 8.617333262e-5

// Conditions describes the electrical/thermal environment during a stress
// or measurement episode.
type Conditions struct {
	VoltageV float64 // supply voltage in volts
	TempC    float64 // die temperature in degrees Celsius
}

// Kelvin returns the absolute temperature.
func (c Conditions) Kelvin() float64 { return c.TempC + 273.15 }

func (c Conditions) String() string {
	return fmt.Sprintf("%.1fV/%.0f°C", c.VoltageV, c.TempC)
}

// Params captures one device's NBTI aging response. All voltage shifts are
// in millivolts and all times in (simulated) hours.
type Params struct {
	// A0MvPerHourN is the stress prefactor at the reference conditions, in
	// mV per hour^TimeExponent.
	A0MvPerHourN float64
	// TimeExponent is the power-law exponent n (calibrated ≈0.66, fitted to
	// Fig. 6's 33%→6.5% error decay between 2 h and 10 h).
	TimeExponent float64
	// GammaPerVolt is the exponential voltage-acceleration coefficient γ.
	GammaPerVolt float64
	// ActivationEV is the Arrhenius activation energy Ea in eV.
	ActivationEV float64
	// Ref is the reference (calibration) condition at which A0 applies —
	// conventionally the device's accelerated encoding condition.
	Ref Conditions

	// RecFastFrac and RecSlowFrac are the fractions of each stress
	// increment that land in the fast and slow recoverable pools; the
	// remainder (1 − fast − slow) is permanent. §5.1.3: "Most of the
	// transistors in a circuit retain their stress-induced degradation …
	// some transistors, however, partially recover".
	RecFastFrac float64
	RecSlowFrac float64
	// TauFastHours and TauSlowHours are the exponential decay constants of
	// the two recoverable pools at the nominal storage temperature
	// (RecTRefC).
	TauFastHours float64
	TauSlowHours float64
	// RecActivationEV is the Arrhenius activation energy of recovery:
	// hot storage relaxes BTI damage faster (the basis of the "baking
	// attack" — an adversary storing a suspect device in an oven to erase
	// a potential message). Zero disables temperature acceleration.
	RecActivationEV float64
	// RecTRefC is the reference storage temperature for the recovery time
	// constants (defaults to 25 °C when zero).
	RecTRefC float64
}

// Validate reports whether the parameter set is physically coherent.
func (p Params) Validate() error {
	switch {
	case p.A0MvPerHourN <= 0:
		return fmt.Errorf("analog: A0 must be positive, got %v", p.A0MvPerHourN)
	case p.TimeExponent <= 0 || p.TimeExponent >= 1:
		return fmt.Errorf("analog: time exponent must be in (0,1), got %v", p.TimeExponent)
	case p.GammaPerVolt < 0:
		return fmt.Errorf("analog: negative voltage acceleration %v", p.GammaPerVolt)
	case p.ActivationEV < 0:
		return fmt.Errorf("analog: negative activation energy %v", p.ActivationEV)
	case p.RecFastFrac < 0 || p.RecSlowFrac < 0 || p.RecFastFrac+p.RecSlowFrac >= 1:
		return fmt.Errorf("analog: recoverable fractions (%v, %v) must be non-negative and sum below 1",
			p.RecFastFrac, p.RecSlowFrac)
	case p.TauFastHours <= 0 || p.TauSlowHours <= 0:
		return fmt.Errorf("analog: recovery time constants must be positive")
	case p.Ref.Kelvin() <= 0:
		return fmt.Errorf("analog: reference temperature below absolute zero")
	}
	return nil
}

// Rate returns the stress prefactor A(V, T) in mV/hourⁿ under c.
func (p Params) Rate(c Conditions) float64 {
	dv := c.VoltageV - p.Ref.VoltageV
	arr := -(p.ActivationEV / BoltzmannEVPerK) * (1/c.Kelvin() - 1/p.Ref.Kelvin())
	return p.A0MvPerHourN * math.Exp(p.GammaPerVolt*dv) * math.Exp(arr)
}

// Accel returns Rate(c)/Rate(Ref), the dimensionless acceleration factor
// relative to the calibration condition (Fig. 3d's knobs).
func (p Params) Accel(c Conditions) float64 {
	return p.Rate(c) / p.A0MvPerHourN
}

// ShiftAfter returns the total shift in mV after stressing a fresh
// transistor for hours under c.
func (p Params) ShiftAfter(c Conditions, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return p.Rate(c) * math.Pow(hours, p.TimeExponent)
}

// GrowShift advances an existing total shift (mV) by dt hours of stress
// under c, using effective-time accumulation. It returns the new total.
func (p Params) GrowShift(total float64, c Conditions, dtHours float64) float64 {
	if dtHours <= 0 {
		return total
	}
	a := p.Rate(c)
	tEq := 0.0
	if total > 0 {
		tEq = math.Pow(total/a, 1/p.TimeExponent)
	}
	return a * math.Pow(tEq+dtHours, p.TimeExponent)
}

// RecoveryFactors returns the surviving fractions of the fast and slow
// recoverable pools after dt hours without stress at the reference
// storage temperature.
func (p Params) RecoveryFactors(dtHours float64) (fast, slow float64) {
	return p.RecoveryFactorsAt(dtHours, p.recTRef())
}

func (p Params) recTRef() float64 {
	if p.RecTRefC == 0 {
		return 25
	}
	return p.RecTRefC
}

// RecoveryAccel returns the Arrhenius acceleration of recovery at the
// given storage temperature relative to the reference.
func (p Params) RecoveryAccel(tempC float64) float64 {
	if p.RecActivationEV <= 0 {
		return 1
	}
	tRef := p.recTRef() + 273.15
	t := tempC + 273.15
	return math.Exp(-(p.RecActivationEV / BoltzmannEVPerK) * (1/t - 1/tRef))
}

// RecoveryFactorsAt returns the surviving pool fractions after dt hours
// of unpowered storage at tempC.
func (p Params) RecoveryFactorsAt(dtHours, tempC float64) (fast, slow float64) {
	if dtHours <= 0 {
		return 1, 1
	}
	eff := dtHours * p.RecoveryAccel(tempC)
	return math.Exp(-eff / p.TauFastHours), math.Exp(-eff / p.TauSlowHours)
}

// PermanentFrac returns the non-recoverable share of a stress increment.
func (p Params) PermanentFrac() float64 { return 1 - p.RecFastFrac - p.RecSlowFrac }

// CalibrateA0 returns the A0 that makes ShiftAfter(ref, hours) equal
// targetShiftMv when ref is also the parameter set's reference condition.
// The device catalog uses this to anchor each device to its Table 4
// operating point (e.g. MSP432: 6.5 % error after 10 h at 3.3 V/85 °C).
func CalibrateA0(timeExponent, targetShiftMv, hours float64) float64 {
	if hours <= 0 || targetShiftMv <= 0 {
		panic("analog: CalibrateA0 requires positive target and duration")
	}
	return targetShiftMv / math.Pow(hours, timeExponent)
}

// StressState is the three-pool decomposition of one transistor's (or one
// stress direction's) accumulated threshold shift.
type StressState struct {
	Perm float64 // permanent component, mV
	Fast float64 // fast-recoverable component, mV
	Slow float64 // slow-recoverable component, mV
}

// Total returns the present effective shift in mV.
func (s StressState) Total() float64 { return s.Perm + s.Fast + s.Slow }

// Stress applies dt hours of stress under c, splitting the increment into
// the permanent and recoverable pools per p.
func (s *StressState) Stress(p Params, c Conditions, dtHours float64) {
	if dtHours <= 0 {
		return
	}
	total := s.Total()
	grown := p.GrowShift(total, c, dtHours)
	delta := grown - total
	if delta <= 0 {
		return
	}
	s.Perm += delta * p.PermanentFrac()
	s.Fast += delta * p.RecFastFrac
	s.Slow += delta * p.RecSlowFrac
}

// Recover lets the recoverable pools decay for dt unstressed hours.
func (s *StressState) Recover(p Params, dtHours float64) {
	f, sl := p.RecoveryFactors(dtHours)
	s.Fast *= f
	s.Slow *= sl
}
