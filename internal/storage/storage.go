// Package storage is the filesystem seam beneath every durability
// layer (wal journals, ioatomic safe-saves, device images, campaign
// and scheduler state dirs). The crash-safety work of PRs 5–6 proved
// the supervisors survive dying at any instruction — but only over a
// disk that tells the truth. Production disks do not: they tear
// unsynced writes, rot bits at rest, run out of space, report fsync
// failures after silently dropping the dirty pages (fsyncgate), and
// reorder directory entries across a crash.
//
// FS is the small contract those layers actually use, OS() is the real
// thing, and FaultFS (faultfs.go) is a deterministic liar: it injects
// each of those hazards on the seeded faults.StorageFaults engine and
// can simulate a crash with realistic torn-write and rename-reversal
// semantics. Everything above this seam is tested against both.
package storage

import (
	"io"
	"os"
	"path/filepath"
)

// File is the open-file surface the durability layers need: write,
// read, fsync, chmod, close. *os.File satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	// Name returns the path the file was opened or created with.
	Name() string
	// Chmod sets the file mode.
	Chmod(mode os.FileMode) error
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Close releases the file. Close does NOT imply Sync.
	Close() error
}

// FS is the filesystem contract. All paths are interpreted as the host
// OS would; implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temp file with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the file at path.
	Remove(path string) error
	// Truncate cuts the file at path to size bytes.
	Truncate(path string, size int64) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Stat describes the file at path.
	Stat(path string) (os.FileInfo, error)
	// ReadDir lists the directory at path.
	ReadDir(path string) ([]os.DirEntry, error)
	// SyncDir fsyncs the directory at path, making completed renames
	// and removals in it durable.
	SyncDir(path string) error
}

// osFS is the real filesystem.
type osFS struct{}

var theOS FS = osFS{}

// OS returns the real filesystem. It is what every production path
// uses; fault-injecting tests substitute a FaultFS.
func OS() FS { return theOS }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) ReadFile(path string) ([]byte, error)   { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error               { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Stat(path string) (os.FileInfo, error)      { return os.Stat(path) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Default returns fsys, or the real filesystem when fsys is nil — the
// one-line guard every layer uses to make its FS field optional.
func Default(fsys FS) FS {
	if fsys == nil {
		return theOS
	}
	return fsys
}

// DirOf returns the directory containing path, "." for a bare name —
// the directory SyncDir must flush after a rename of path.
func DirOf(path string) string {
	dir := filepath.Dir(path)
	if dir == "" {
		return "."
	}
	return dir
}
