package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"invisiblebits/internal/faults"
)

// FaultFS wraps a base filesystem (usually OS()) and makes it lie the
// way production disks do:
//
//   - scripted one-shot failures (FailNth) for surgical unit tests of
//     individual error paths,
//   - seeded probabilistic failures (faults.StorageFaults) for storm
//     tests — write/read errors, fsyncgate, silent bit rot — replayable
//     from a seed,
//   - an ENOSPC byte budget,
//   - Crash(), which models power loss with realistic semantics: every
//     byte written since the last successful fsync may be torn away,
//     and a rename whose directory was never fsynced may be undone
//     (reordered directory entries), resurrecting the old target.
//
// An injected fsync failure follows fsyncgate semantics: the error is
// reported AND the unflushed bytes are dropped immediately, so a caller
// that retries the fsync "successfully" has persisted nothing.
//
// FaultFS tracks durability state per path (synced length vs. current
// length) across open/close, because close does not imply sync. It is
// safe for concurrent use.
type FaultFS struct {
	base FS
	eng  *faults.StorageFaults

	mu       sync.Mutex
	files    map[string]*fileState
	renames  []*pendingRename
	scripted []*scriptedFault
	budget   int64 // remaining write bytes; <0 = unlimited
	crashes  int
}

type fileState struct {
	syncedLen int64
	curLen    int64
}

type pendingRename struct {
	dir       string
	oldpath   string
	newpath   string
	hadTarget bool
	target    []byte
}

type scriptedFault struct {
	op     faults.StorageOp
	substr string
	n      int
	err    error
	done   bool
}

// NewFaultFS wraps base with the fault engine built from profile. A
// zero profile injects nothing probabilistically; scripted failures and
// Crash() still work.
func NewFaultFS(base FS, profile faults.StorageProfile) *FaultFS {
	return &FaultFS{
		base:   Default(base),
		eng:    faults.NewStorageFaults(profile),
		files:  make(map[string]*fileState),
		budget: -1,
	}
}

// FailNth schedules a one-shot injected failure: the nth (1-based)
// subsequent operation of kind op whose path contains pathSubstr
// returns err. Sync failures additionally drop the file's unflushed
// bytes (fsyncgate).
func (fs *FaultFS) FailNth(op faults.StorageOp, pathSubstr string, n int, err error) {
	if n < 1 {
		n = 1
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.scripted = append(fs.scripted, &scriptedFault{op: op, substr: pathSubstr, n: n, err: err})
}

// SetSpaceBudget caps the total bytes subsequent writes may add; once
// exhausted every write fails with faults.ErrDiskFull (whole writes
// fail — no partial ENOSPC writes). Negative means unlimited.
func (fs *FaultFS) SetSpaceBudget(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.budget = n
}

// Crashes reports how many times Crash has been invoked.
func (fs *FaultFS) Crashes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashes
}

// siteKey normalizes a path to a stable fault-decision site: the base
// name with any random temp suffix collapsed, so seeded decisions do
// not depend on the randomized temp-dir or temp-file names.
func siteKey(path string) string {
	base := filepath.Base(path)
	if i := strings.Index(base, ".tmp"); i >= 0 {
		base = base[:i+len(".tmp")]
	}
	return base
}

// inject consults scripted faults first, then the seeded engine.
func (fs *FaultFS) inject(op faults.StorageOp, path string) error {
	fs.mu.Lock()
	for _, s := range fs.scripted {
		if s.done || s.op != op || !strings.Contains(path, s.substr) {
			continue
		}
		s.n--
		if s.n <= 0 {
			s.done = true
			fs.mu.Unlock()
			return s.err
		}
	}
	fs.mu.Unlock()
	return fs.eng.OpError(op, siteKey(path))
}

func (fs *FaultFS) stateFor(path string, initial int64) *fileState {
	st, ok := fs.files[path]
	if !ok {
		st = &fileState{syncedLen: initial, curLen: initial}
		fs.files[path] = st
	}
	return st
}

// OpenFile opens path on the base filesystem and begins durability
// tracking for writable handles. Pre-existing bytes count as synced.
func (fs *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if err := fs.inject(faults.StorageCreate, path); err != nil {
		return nil, err
	}
	f, err := fs.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	if writable {
		var size int64
		if flag&os.O_TRUNC == 0 {
			if info, serr := fs.base.Stat(path); serr == nil {
				size = info.Size()
			}
		}
		fs.mu.Lock()
		st := fs.stateFor(path, size)
		st.curLen = size
		if st.syncedLen > size {
			st.syncedLen = size
		}
		fs.mu.Unlock()
	}
	return &faultFile{fs: fs, f: f, path: path, writable: writable}, nil
}

// CreateTemp creates a temp file on the base filesystem, tracked from
// length zero (nothing synced yet).
func (fs *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := fs.inject(faults.StorageCreate, filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	f, err := fs.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	path := f.Name()
	fs.mu.Lock()
	fs.files[path] = &fileState{}
	fs.mu.Unlock()
	return &faultFile{fs: fs, f: f, path: path, writable: true}, nil
}

// ReadFile reads path, possibly failing with an injected media error or
// returning silently rotted bytes (one byte flipped, no error).
func (fs *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := fs.inject(faults.StorageRead, path); err != nil {
		return nil, err
	}
	data, err := fs.base.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return fs.eng.Rot(siteKey(path), data), nil
}

// Rename renames on the base filesystem, snapshots any overwritten
// target, and records the rename as non-durable until the containing
// directory is fsynced — Crash may undo it.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	if err := fs.inject(faults.StorageRename, newpath); err != nil {
		return err
	}
	target, terr := fs.base.ReadFile(newpath)
	hadTarget := terr == nil
	if err := fs.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	fs.mu.Lock()
	if st, ok := fs.files[oldpath]; ok {
		delete(fs.files, oldpath)
		fs.files[newpath] = st
	}
	fs.renames = append(fs.renames, &pendingRename{
		dir:       DirOf(newpath),
		oldpath:   oldpath,
		newpath:   newpath,
		hadTarget: hadTarget,
		target:    target,
	})
	fs.mu.Unlock()
	return nil
}

// Remove deletes path and drops its durability tracking.
func (fs *FaultFS) Remove(path string) error {
	err := fs.base.Remove(path)
	if err == nil {
		fs.mu.Lock()
		delete(fs.files, path)
		fs.mu.Unlock()
	}
	return err
}

// Truncate cuts path to size. The truncation is modelled as durable
// (every journal truncate here is immediately followed by fsynced
// appends, which re-cover the tail).
func (fs *FaultFS) Truncate(path string, size int64) error {
	if err := fs.base.Truncate(path, size); err != nil {
		return err
	}
	fs.mu.Lock()
	if st, ok := fs.files[path]; ok {
		st.curLen = size
		st.syncedLen = size
	}
	fs.mu.Unlock()
	return nil
}

// MkdirAll passes through to the base filesystem.
func (fs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return fs.base.MkdirAll(path, perm)
}

// Stat passes through to the base filesystem.
func (fs *FaultFS) Stat(path string) (os.FileInfo, error) { return fs.base.Stat(path) }

// ReadDir passes through to the base filesystem.
func (fs *FaultFS) ReadDir(path string) ([]os.DirEntry, error) { return fs.base.ReadDir(path) }

// SyncDir fsyncs the directory, making every completed rename in it
// durable (Crash can no longer undo them).
func (fs *FaultFS) SyncDir(path string) error {
	if err := fs.inject(faults.StorageSyncDir, path); err != nil {
		return err
	}
	if err := fs.base.SyncDir(path); err != nil {
		return err
	}
	fs.mu.Lock()
	kept := fs.renames[:0]
	for _, r := range fs.renames {
		if r.dir != path {
			kept = append(kept, r)
		}
	}
	fs.renames = kept
	fs.mu.Unlock()
	return nil
}

// Crash models power loss. For every tracked file, the bytes written
// since its last successful fsync are torn: a deterministic fraction of
// the unsynced tail survives (harshest — none — when TearFrac is zero).
// Every rename whose directory was never fsynced may be undone: the
// renamed file moves back to its old name and the overwritten target is
// resurrected. All tracking is then reset, as a fresh process would
// find it. The FaultFS remains usable — resume the supervisor on it.
func (fs *FaultFS) Crash() error {
	fs.mu.Lock()
	files := fs.files
	renames := fs.renames
	fs.files = make(map[string]*fileState)
	fs.renames = nil
	fs.crashes++
	fs.mu.Unlock()

	for path, st := range files {
		if st.curLen <= st.syncedLen {
			continue
		}
		keep := st.syncedLen + fs.eng.TearKeep(siteKey(path), st.curLen-st.syncedLen)
		if err := fs.base.Truncate(path, keep); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("storage: crash tear %s: %w", path, err)
		}
	}
	// Undo un-dir-synced renames newest-first, so chains of renames
	// unwind in order.
	for i := len(renames) - 1; i >= 0; i-- {
		r := renames[i]
		if !fs.eng.RevertRename(siteKey(r.newpath)) {
			continue
		}
		moved, err := fs.base.ReadFile(r.newpath)
		if err != nil {
			continue // already gone; nothing to unwind
		}
		if err := fs.writeRaw(r.oldpath, moved); err != nil {
			return fmt.Errorf("storage: crash revert %s: %w", r.newpath, err)
		}
		if r.hadTarget {
			if err := fs.writeRaw(r.newpath, r.target); err != nil {
				return fmt.Errorf("storage: crash restore %s: %w", r.newpath, err)
			}
		} else if err := fs.base.Remove(r.newpath); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("storage: crash unlink %s: %w", r.newpath, err)
		}
	}
	return nil
}

// writeRaw writes data straight to the base filesystem (crash cleanup
// must not itself roll fault dice).
func (fs *FaultFS) writeRaw(path string, data []byte) error {
	f, err := fs.base.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// faultFile is the tracked file handle.
type faultFile struct {
	fs       *FaultFS
	f        File
	path     string
	writable bool
}

func (f *faultFile) Name() string { return f.f.Name() }

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.inject(faults.StorageRead, f.path); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.inject(faults.StorageWrite, f.path); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	if f.fs.budget >= 0 {
		if int64(len(p)) > f.fs.budget {
			f.fs.mu.Unlock()
			return 0, fmt.Errorf("write %s: %w", f.path, faults.ErrDiskFull)
		}
		f.fs.budget -= int64(len(p))
	}
	f.fs.mu.Unlock()
	n, err := f.f.Write(p)
	if n > 0 && f.writable {
		f.fs.mu.Lock()
		if st, ok := f.fs.files[f.path]; ok {
			st.curLen += int64(n)
		}
		f.fs.mu.Unlock()
	}
	return n, err
}

func (f *faultFile) Chmod(mode os.FileMode) error {
	if err := f.fs.inject(faults.StorageChmod, f.path); err != nil {
		return err
	}
	return f.f.Chmod(mode)
}

// Sync either flushes for real (advancing the synced watermark) or, on
// an injected failure, drops the unflushed bytes on the floor before
// reporting the error — fsyncgate.
func (f *faultFile) Sync() error {
	if err := f.fs.inject(faults.StorageSync, f.path); err != nil {
		f.fs.mu.Lock()
		st, ok := f.fs.files[f.path]
		var syncedLen int64
		if ok {
			syncedLen = st.syncedLen
			st.curLen = syncedLen
		}
		f.fs.mu.Unlock()
		if ok {
			// Best-effort: the pages are gone, reflect that on disk now
			// so even a clean process exit cannot read them back.
			_ = f.fs.base.Truncate(f.path, syncedLen)
		}
		return err
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	if f.writable {
		f.fs.mu.Lock()
		if st, ok := f.fs.files[f.path]; ok {
			st.syncedLen = st.curLen
		}
		f.fs.mu.Unlock()
	}
	return nil
}

func (f *faultFile) Close() error {
	injected := f.fs.inject(faults.StorageClose, f.path)
	err := f.f.Close()
	f.fs.mu.Lock()
	if st, ok := f.fs.files[f.path]; ok && st.curLen == st.syncedLen {
		// Fully durable — no crash exposure left to track.
		delete(f.fs.files, f.path)
	}
	f.fs.mu.Unlock()
	if injected != nil {
		return injected
	}
	return err
}
