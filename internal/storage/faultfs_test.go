package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/faults"
)

func writeAll(t *testing.T, f File, data []byte) {
	t.Helper()
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readBack(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back %s: %v", path, err)
	}
	return b
}

func TestFailNthScriptedFailure(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faults.StorageProfile{})
	boom := errors.New("scripted boom")
	fsys.FailNth(faults.StorageWrite, "target", 2, boom)

	f, err := fsys.OpenFile(filepath.Join(dir, "target.dat"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, boom) {
		t.Fatalf("second write = %v, want scripted error", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("scripted fault should be one-shot, third write failed: %v", err)
	}
	// A path not matching the substring is never hit.
	other, err := fsys.OpenFile(filepath.Join(dir, "other.dat"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.Write([]byte("x")); err != nil {
		t.Fatalf("unmatched path failed: %v", err)
	}
}

// TestFsyncgateDropsUnsyncedBytes: an injected fsync failure both
// reports the error and discards the unflushed bytes, so a caller that
// shrugs and retries has persisted nothing.
func TestFsyncgateDropsUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faults.StorageProfile{})
	path := filepath.Join(dir, "j.jsonl")

	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("durable|"))
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	writeAll(t, f, []byte("doomed"))
	fsys.FailNth(faults.StorageSync, "j.jsonl", 1, faults.ErrFsyncLost)
	if err := f.Sync(); !errors.Is(err, faults.ErrFsyncLost) {
		t.Fatalf("sync = %v, want ErrFsyncLost", err)
	}
	// Retrying the fsync "succeeds" — but the pages are already gone.
	if err := f.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	f.Close()
	if got := readBack(t, path); string(got) != "durable|" {
		t.Fatalf("after fsyncgate file holds %q, want only the synced prefix", got)
	}
}

// TestCrashTearsUnsyncedTail: power loss with TearFrac 0 loses every
// byte since the last successful fsync, and nothing before it.
func TestCrashTearsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faults.StorageProfile{})
	path := filepath.Join(dir, "j.jsonl")

	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("synced."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("unsynced tail"))
	f.Close()

	if err := fsys.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if got := readBack(t, path); string(got) != "synced." {
		t.Fatalf("after crash file holds %q, want %q", got, "synced.")
	}
	if fsys.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", fsys.Crashes())
	}
}

// TestCrashRevertsUnsyncedRename: a rename whose directory was never
// fsynced can be undone by a crash — the old target is resurrected —
// while a SyncDir makes the rename crash-proof.
func TestCrashRevertsUnsyncedRename(t *testing.T) {
	profile := faults.StorageProfile{RenameRevertRate: 1}

	t.Run("reverted", func(t *testing.T) {
		dir := t.TempDir()
		fsys := NewFaultFS(nil, profile)
		oldp := filepath.Join(dir, "new.tmp1")
		newp := filepath.Join(dir, "data.json")
		if err := os.WriteFile(oldp, []byte("replacement"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(newp, []byte("original"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Rename(oldp, newp); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Crash(); err != nil {
			t.Fatal(err)
		}
		if got := readBack(t, newp); string(got) != "original" {
			t.Fatalf("target holds %q after crash, want resurrected original", got)
		}
		if got := readBack(t, oldp); string(got) != "replacement" {
			t.Fatalf("source holds %q after crash, want the unwound rename", got)
		}
	})

	t.Run("made durable by SyncDir", func(t *testing.T) {
		dir := t.TempDir()
		fsys := NewFaultFS(nil, profile)
		oldp := filepath.Join(dir, "new.tmp1")
		newp := filepath.Join(dir, "data.json")
		if err := os.WriteFile(oldp, []byte("replacement"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Rename(oldp, newp); err != nil {
			t.Fatal(err)
		}
		if err := fsys.SyncDir(dir); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Crash(); err != nil {
			t.Fatal(err)
		}
		if got := readBack(t, newp); string(got) != "replacement" {
			t.Fatalf("dir-synced rename did not survive the crash: %q", got)
		}
	})
}

func TestSpaceBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faults.StorageProfile{})
	fsys.SetSpaceBudget(8)

	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("12345")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if _, err := f.Write([]byte("67890")); !errors.Is(err, faults.ErrDiskFull) {
		t.Fatalf("over budget = %v, want ErrDiskFull", err)
	}
	// Whole writes fail: the file holds only the first write.
	if got := readBack(t, filepath.Join(dir, "x")); string(got) != "12345" {
		t.Fatalf("partial ENOSPC write leaked: %q", got)
	}
	fsys.SetSpaceBudget(-1)
	if _, err := f.Write([]byte("67890")); err != nil {
		t.Fatalf("after freeing space: %v", err)
	}
}

// TestSeededRotIsDeterministicAcrossDirs: ReadFile under a BitRotRate
// profile returns the same (possibly rotted) bytes for the same seed,
// no matter which directory the tree lives in — decision sites are
// path-basename keyed.
func TestSeededRotIsDeterministicAcrossDirs(t *testing.T) {
	profile := faults.StorageProfile{Seed: 3, BitRotRate: 0.5}
	payload := []byte("self-verifying formats turn silent rot into loud typed failure")
	run := func(dir string) [][]byte {
		fsys := NewFaultFS(nil, profile)
		path := filepath.Join(dir, "data.bin")
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
		var outs [][]byte
		for i := 0; i < 16; i++ {
			b, err := fsys.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, b)
		}
		return outs
	}
	a, b := run(t.TempDir()), run(t.TempDir())
	rotted := false
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("read %d diverged across directories", i)
		}
		if !bytes.Equal(a[i], payload) {
			rotted = true
		}
	}
	if !rotted {
		t.Fatal("no read rotted at rate 0.5 over 16 reads — engine inert?")
	}
}
