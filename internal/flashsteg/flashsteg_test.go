package flashsteg

import (
	"bytes"
	"testing"

	"invisiblebits/internal/flash"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

// msp432Flash builds a 256 KB flash like the MSP432's.
func msp432Flash(t *testing.T) *flash.Array {
	t.Helper()
	s := flash.DefaultSpec()
	s.PageBytes = 512
	s.Pages = 512
	f, err := flash.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWangCapacityMatchesPaper(t *testing.T) {
	// §5.3: "Assuming that the entire Flash is available, write-time-based
	// Flash hiding approaches can only transmit 131 bytes" on a 256 KB part.
	f := msp432Flash(t)
	w, err := NewWang(f, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CapacityBytes(); got != 131 {
		t.Fatalf("Wang capacity = %d bytes, want 131", got)
	}
}

func TestWangRoundTrip(t *testing.T) {
	f := msp432Flash(t)
	w, err := NewWang(f, 7)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, w.CapacityBytes())
	rng.NewSource(1).Bytes(msg)
	if err := w.Encode(msg); err != nil {
		t.Fatal(err)
	}
	got, err := w.Decode(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(got, msg); ber > 0.01 {
		t.Fatalf("Wang round-trip error = %v", ber)
	}
}

func TestWangRequiresKey(t *testing.T) {
	f := msp432Flash(t)
	w, _ := NewWang(f, 7)
	msg := make([]byte, 32)
	rng.NewSource(2).Bytes(msg)
	if err := w.Encode(msg); err != nil {
		t.Fatal(err)
	}
	// A reader with the wrong key groups unrelated cells; its decode must
	// carry no information (≈ all zeros or noise, ~50% error on 1-bits).
	wrong, _ := NewWang(f, 8)
	got, err := wrong.Decode(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(got, msg); ber < 0.15 {
		t.Fatalf("wrong-key decode too accurate: ber=%v", ber)
	}
}

func TestWangCapacityValidation(t *testing.T) {
	f := msp432Flash(t)
	w, _ := NewWang(f, 7)
	big := make([]byte, w.CapacityBytes()+1)
	if err := w.Encode(big); err == nil {
		t.Error("over-capacity encode accepted")
	}
	if _, err := w.Decode(w.CapacityBytes() + 1); err == nil {
		t.Error("over-capacity decode accepted")
	}
	tiny, err := flash.New(flash.Spec{
		PageBytes: 16, Pages: 2, ProgramTimeMeanUs: 60, ProgramTimeSigma: 0.1,
		VtErased: 1, VtProgrammed: 4.5, VtOvercharged: 5.6, VtSigma: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWang(tiny, 1); err == nil {
		t.Error("tiny flash accepted")
	}
	if _, err := NewWang(nil, 1); err == nil {
		t.Error("nil flash accepted")
	}
}

func TestZuckCapacityDoublesWang(t *testing.T) {
	f := msp432Flash(t)
	z, err := NewZuck(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWang(f, 3)
	if z.CapacityBytes() != 2*w.CapacityBytes() {
		t.Fatalf("Zuck capacity %d, want 2x Wang %d", z.CapacityBytes(), w.CapacityBytes())
	}
}

func TestZuckRoundTrip(t *testing.T) {
	f := msp432Flash(t)
	z, _ := NewZuck(f, 11)
	cover := make([]byte, 64<<10)
	rng.NewSource(5).Bytes(cover) // "encrypted cover data" — random-looking
	msg := make([]byte, z.CapacityBytes())
	rng.NewSource(6).Bytes(msg)
	if err := z.EncodeWithCover(cover, msg); err != nil {
		t.Fatal(err)
	}
	// Public data must read back exactly (digital transparency).
	pub, err := f.Read(0, len(cover))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub, cover) {
		t.Fatal("hidden encoding corrupted public cover data")
	}
	got, err := z.Decode(len(cover), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(got, msg); ber > 0.01 {
		t.Fatalf("Zuck round-trip error = %v", ber)
	}
}

func TestZuckDestroyedByRewriteAttack(t *testing.T) {
	// §8: "An active adversary can promptly stop covert communication by
	// copying the encrypted cover data and re-programming it ... data is
	// lost." This is the resilience experiment behind Table 3.
	f := msp432Flash(t)
	z, _ := NewZuck(f, 11)
	cover := make([]byte, 32<<10)
	rng.NewSource(7).Bytes(cover)
	msg := make([]byte, 64)
	rng.NewSource(8).Bytes(msg)
	if err := z.EncodeWithCover(cover, msg); err != nil {
		t.Fatal(err)
	}
	if err := RewriteAttack(f, len(cover)); err != nil {
		t.Fatal(err)
	}
	// Public data survives the attack...
	pub, _ := f.Read(0, len(cover))
	if !bytes.Equal(pub, cover) {
		t.Fatal("rewrite attack changed public data")
	}
	// ...but the hidden message is gone.
	got, err := z.Decode(len(cover), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	ones := stats.HammingWeight(msg)
	recovered := ones - stats.HammingDistance(got, msg) // crude surviving-1s proxy
	if stats.BitErrorRate(got, msg) < 0.2 {
		t.Fatalf("hidden data survived rewrite: ber=%v (recovered ~%d/%d ones)",
			stats.BitErrorRate(got, msg), recovered, ones)
	}
}

func TestWangSurvivesRewriteOfData(t *testing.T) {
	// Wear is physical damage: rewriting stored data does not clear the
	// program-time signal (though it adds uniform wear). This is why the
	// Wang scheme's weakness is capacity, not rewrite-resilience.
	f := msp432Flash(t)
	w, _ := NewWang(f, 13)
	msg := make([]byte, 64)
	rng.NewSource(9).Bytes(msg)
	if err := w.Encode(msg); err != nil {
		t.Fatal(err)
	}
	if err := RewriteAttack(f, 32<<10); err != nil {
		t.Fatal(err)
	}
	got, err := w.Decode(len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(got, msg); ber > 0.05 {
		t.Fatalf("Wang signal lost after rewrite: ber=%v", ber)
	}
}

func TestZuckValidation(t *testing.T) {
	f := msp432Flash(t)
	z, _ := NewZuck(f, 1)
	if err := z.EncodeWithCover(make([]byte, 1024), make([]byte, z.CapacityBytes()+1)); err == nil {
		t.Error("over-capacity accepted")
	}
	// All-1s (erased-looking) cover has no programmed bits to carry data.
	cover := bytes.Repeat([]byte{0xFF}, 1024)
	if err := z.EncodeWithCover(cover, make([]byte, 8)); err == nil {
		t.Error("cover without programmed bits accepted")
	}
	if _, err := NewZuck(nil, 1); err == nil {
		t.Error("nil flash accepted")
	}
}

func BenchmarkWangDecode(b *testing.B) {
	s := flash.DefaultSpec()
	s.PageBytes = 512
	s.Pages = 128
	f, err := flash.New(s)
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWang(f, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, w.CapacityBytes())
	rng.NewSource(1).Bytes(msg)
	if err := w.Encode(msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Decode(len(msg)); err != nil {
			b.Fatal(err)
		}
	}
}
