package flashsteg

import (
	"errors"
	"fmt"

	"invisiblebits/internal/flash"
	"invisiblebits/internal/rng"
)

// ZuckCapacityFraction doubles the Wang capacity: "the more recent
// voltage-based technique doubles this capacity by hiding information
// within the public data" (§5.3).
const ZuckCapacityFraction = 2 * WangCapacityFraction

// Zuck is the voltage-level baseline: hidden bits ride on the threshold
// voltage of cells that hold programmed (0) public data. A hidden 1 is
// encoded by overcharging the cell; a hidden 0 leaves it at the normal
// programmed level. Both read identically at the digital reference —
// "as long as the cover data is not erased or re-programmed, the hidden
// data remains stored" (§8).
type Zuck struct {
	f   *flash.Array
	key uint64

	// carriers are the selected programmed-cell indices, one per hidden
	// bit; populated by EncodeWithCover and recomputed by the receiver
	// from the key + cover data.
	carriers []int
}

// NewZuck builds the scheme over f with a shared key.
func NewZuck(f *flash.Array, key uint64) (*Zuck, error) {
	if f == nil {
		return nil, errors.New("flashsteg: nil flash")
	}
	return &Zuck{f: f, key: key}, nil
}

// CapacityBytes returns the hidden capacity given the flash size.
func (z *Zuck) CapacityBytes() int {
	return int(float64(z.f.Bytes()*8)*ZuckCapacityFraction) / 8
}

// selectCarriers deterministically picks programmed (0) bits of the cover
// region in keyed order. Both sides run the same selection, so only the
// key and the cover data need to be shared.
func (z *Zuck) selectCarriers(coverBytes, hiddenBits int) ([]int, error) {
	data, err := z.f.Read(0, coverBytes)
	if err != nil {
		return nil, err
	}
	var programmed []int
	for i := 0; i < coverBytes*8; i++ {
		if data[i/8]&(1<<(i%8)) == 0 {
			programmed = append(programmed, i)
		}
	}
	if len(programmed) < hiddenBits {
		return nil, fmt.Errorf("flashsteg: cover has %d programmed bits, need %d", len(programmed), hiddenBits)
	}
	order := rng.NewSource(z.key).Perm(len(programmed))
	carriers := make([]int, hiddenBits)
	for i := range carriers {
		carriers[i] = programmed[order[i]]
	}
	return carriers, nil
}

// EncodeWithCover programs cover (public, typically encrypted data) into
// the flash starting at page 0, then overcharges the keyed selection of
// programmed cells to hide msg.
func (z *Zuck) EncodeWithCover(cover, msg []byte) error {
	if len(msg) > z.CapacityBytes() {
		return fmt.Errorf("flashsteg: message %d bytes exceeds Zuck capacity %d", len(msg), z.CapacityBytes())
	}
	pageBytes := z.f.Spec().PageBytes
	lastPage := (len(cover) + pageBytes - 1) / pageBytes
	for p := 0; p < lastPage; p++ {
		if err := z.f.ErasePage(p); err != nil {
			return err
		}
	}
	if _, err := z.f.Program(0, cover); err != nil {
		return err
	}
	carriers, err := z.selectCarriers(len(cover), len(msg)*8)
	if err != nil {
		return err
	}
	z.carriers = carriers
	for i := 0; i < len(msg)*8; i++ {
		if msg[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		if err := z.f.Overcharge(carriers[i]); err != nil {
			return err
		}
	}
	return nil
}

// Decode recomputes the carrier selection from the (current) cover data
// and margin-reads each carrier against the mid-level reference.
func (z *Zuck) Decode(coverBytes, msgBytes int) ([]byte, error) {
	carriers, err := z.selectCarriers(coverBytes, msgBytes*8)
	if err != nil {
		return nil, err
	}
	spec := z.f.Spec()
	mid := (spec.VtProgrammed + spec.VtOvercharged) / 2
	out := make([]byte, msgBytes)
	for i, cell := range carriers {
		v, err := z.f.MarginRead(cell)
		if err != nil {
			return nil, err
		}
		if v > mid {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}

// RewriteAttack is the active adversary of §8: "an active adversary can
// promptly stop covert communication by copying the encrypted cover data
// and re-programming it again without modification." It reads the first
// coverBytes, erases those pages, and programs the same digital data
// back — destroying any analog state riding on it.
func RewriteAttack(f *flash.Array, coverBytes int) error {
	data, err := f.Read(0, coverBytes)
	if err != nil {
		return err
	}
	pageBytes := f.Spec().PageBytes
	lastPage := (coverBytes + pageBytes - 1) / pageBytes
	for p := 0; p < lastPage; p++ {
		if err := f.ErasePage(p); err != nil {
			return err
		}
	}
	_, err = f.Program(0, data)
	return err
}
