// Package flashsteg implements the two Flash-based on-chip steganography
// baselines Invisible Bits is compared against in §5.3 and §8:
//
//   - Wang et al., "Hiding Information in Flash Memory" (S&P 2013):
//     program-time modulation. "This method deliberately stresses a group
//     of cells to encode information in them. The program time of cells
//     is distributed over a long-tailed spectrum ... A group of 128-bit
//     cells encodes 1-bit information, and addresses of the cells that
//     are grouped are encrypted using a symmetric key cipher."
//
//   - Zuck et al., "Stash in a Flash" (FAST 2018): threshold-voltage
//     modulation inside public cover data. "The first pass stores
//     encrypted cover data, and the second pass selects a few cells from
//     the same public bits ... cells currently holding public data are
//     incrementally charged beyond their preset voltage level."
//
// Both schemes' capacities follow the paper's numbers: 0.05 % of Flash
// bits for the program-time method (131 bytes on a 256 KB part) and twice
// that for the voltage method. Their fragility under an adversary rewrite
// is exactly what Table 3's resilience column (and the tab3 experiment)
// demonstrates.
package flashsteg

import (
	"errors"
	"fmt"

	"invisiblebits/internal/flash"
	"invisiblebits/internal/rng"
)

// WangCapacityFraction is the paper's capacity figure for the
// program-time scheme: "a Flash-based hiding scheme achieves 0.05%
// capacity" (§5.3).
const WangCapacityFraction = 0.0005

// Wang is the program-time baseline.
type Wang struct {
	f *flash.Array
	// GroupBits is the cells-per-hidden-bit group size (128 in the paper).
	GroupBits int
	// CyclesPerBit is the P/E stress applied to groups encoding a 1.
	CyclesPerBit int

	groups [][]int // per usable hidden bit: member cell indices
}

// NewWang builds the scheme over f. key seeds the secret group-address
// permutation (the paper encrypts group addresses with a symmetric key).
func NewWang(f *flash.Array, key uint64) (*Wang, error) {
	if f == nil {
		return nil, errors.New("flashsteg: nil flash")
	}
	w := &Wang{f: f, GroupBits: 128, CyclesPerBit: 400}
	totalBits := f.Bytes() * 8
	capacityBits := int(float64(totalBits) * WangCapacityFraction)
	if capacityBits == 0 {
		return nil, errors.New("flashsteg: flash too small for Wang scheme")
	}
	// Keyed permutation of cell indices; consecutive GroupBits-sized
	// windows of the permutation form the hidden-bit groups. Without the
	// key the groups are indistinguishable from background variation.
	perm := rng.NewSource(key).Perm(totalBits)
	w.groups = make([][]int, capacityBits)
	for i := range w.groups {
		w.groups[i] = perm[i*w.GroupBits : (i+1)*w.GroupBits]
	}
	return w, nil
}

// CapacityBytes returns the scheme's hidden-message capacity.
func (w *Wang) CapacityBytes() int { return len(w.groups) / 8 }

// Encode hides msg by stressing the groups whose message bit is 1.
func (w *Wang) Encode(msg []byte) error {
	if len(msg) > w.CapacityBytes() {
		return fmt.Errorf("flashsteg: message %d bytes exceeds Wang capacity %d", len(msg), w.CapacityBytes())
	}
	for i := 0; i < len(msg)*8; i++ {
		if msg[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		if err := w.f.CycleBits(w.groups[i], w.CyclesPerBit); err != nil {
			return err
		}
	}
	return nil
}

// Decode measures each group's mean program time against the chip-wide
// baseline and thresholds at half the expected stress shift.
func (w *Wang) Decode(msgBytes int) ([]byte, error) {
	if msgBytes > w.CapacityBytes() {
		return nil, fmt.Errorf("flashsteg: %d bytes exceeds Wang capacity %d", msgBytes, w.CapacityBytes())
	}
	baseline, err := w.chipBaseline()
	if err != nil {
		return nil, err
	}
	threshold := baseline +
		w.f.Spec().WearSlowdownUsPerCycle*float64(w.CyclesPerBit)/2
	out := make([]byte, msgBytes)
	for i := 0; i < msgBytes*8; i++ {
		var sum float64
		for _, cell := range w.groups[i] {
			t, err := w.f.MeasureProgramTime(cell)
			if err != nil {
				return nil, err
			}
			sum += t
		}
		if sum/float64(w.GroupBits) > threshold {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}

// chipBaseline estimates the unstressed mean program time by sampling
// cells outside the hidden groups.
func (w *Wang) chipBaseline() (float64, error) {
	member := make(map[int]bool, len(w.groups)*w.GroupBits)
	for _, g := range w.groups {
		for _, c := range g {
			member[c] = true
		}
	}
	totalBits := w.f.Bytes() * 8
	var sum float64
	n := 0
	for c := 0; c < totalBits && n < 4096; c += 97 {
		if member[c] {
			continue
		}
		t, err := w.f.MeasureProgramTime(c)
		if err != nil {
			return 0, err
		}
		sum += t
		n++
	}
	if n == 0 {
		return 0, errors.New("flashsteg: no baseline cells available")
	}
	return sum / float64(n), nil
}
