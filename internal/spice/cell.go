package spice

import (
	"errors"
	"math"
)

// Cell is the 6T SRAM bit cell of Fig. 2a. Naming follows the paper:
//
//   - Inverter-1 = M1 (NMOS) + M2 (PMOS): input node A, output node B.
//   - Inverter-2 = M3 (NMOS) + M4 (PMOS): input node B, output node A.
//   - M5/M6 are the access transistors; they stay off during power-on and
//     are omitted from the transient (their junction load is folded into
//     the node capacitance).
//
// The cell's logic state is the voltage at node A, so "|vth4| < |vth2| →
// M4 switches on before M2 … the cell's power-on state is 1" (§2.1).
type Cell struct {
	M1, M2, M3, M4 MOSFET
	// CNodeF is the lumped capacitance at each storage node, in farads.
	CNodeF float64
}

// NewCell returns a perfectly symmetric 45 nm-class cell. Real cells are
// never symmetric; perturb the Vth fields to model process variation and
// aging.
func NewCell() Cell {
	return Cell{
		M1:     Default45nm(NMOS),
		M2:     Default45nm(PMOS),
		M3:     Default45nm(NMOS),
		M4:     Default45nm(PMOS),
		CNodeF: 0.5e-15,
	}
}

// RampSpec describes the power-on supply ramp.
type RampSpec struct {
	VddV     float64 // final supply voltage
	RampS    float64 // 0→Vdd linear ramp duration, seconds
	TotalS   float64 // total simulated time
	StepS    float64 // integration step
	SamplePS float64 // waveform sampling interval, seconds (0 = every 10 steps)
}

// DefaultRamp matches the paper's observation window: the cell settles
// "after 2ns of powering the cell up" (Fig. 2b).
func DefaultRamp() RampSpec {
	return RampSpec{VddV: 1.0, RampS: 0.5e-9, TotalS: 3e-9, StepS: 0.05e-12, SamplePS: 10e-12}
}

// Waveform is a sampled transient: supply and both storage nodes.
type Waveform struct {
	TimeS []float64
	VddV  []float64
	VAV   []float64
	VBV   []float64
}

// Result reports the outcome of a power-on transient.
type Result struct {
	Waveform Waveform
	// State is the resolved logic value at node A (true = 1).
	State bool
	// Resolved reports whether the nodes separated by at least half the
	// supply; a false value means the cell was still metastable at the end
	// of the window.
	Resolved bool
	// SettleS is the time at which |VA−VB| first exceeded Vdd/2.
	SettleS float64
}

// ErrBadRamp is returned for non-positive timing parameters.
var ErrBadRamp = errors.New("spice: ramp parameters must be positive with StepS <= TotalS")

// PowerOn integrates the cell from an unpowered state ("all wires are at
// the ground voltage", §2.1) through the supply ramp and returns the
// resolved power-on state.
func (c Cell) PowerOn(spec RampSpec) (Result, error) {
	if spec.VddV <= 0 || spec.RampS <= 0 || spec.TotalS <= 0 ||
		spec.StepS <= 0 || spec.StepS > spec.TotalS {
		return Result{}, ErrBadRamp
	}
	sample := spec.SamplePS
	if sample <= 0 {
		sample = 10 * spec.StepS
	}

	var res Result
	va, vb := 0.0, 0.0
	nextSample := 0.0
	steps := int(spec.TotalS/spec.StepS) + 1
	invC := 1 / c.CNodeF

	for i := 0; i <= steps; i++ {
		t := float64(i) * spec.StepS
		vdd := spec.VddV
		if t < spec.RampS {
			vdd = spec.VddV * t / spec.RampS
		}

		if t >= nextSample {
			res.Waveform.TimeS = append(res.Waveform.TimeS, t)
			res.Waveform.VddV = append(res.Waveform.VddV, vdd)
			res.Waveform.VAV = append(res.Waveform.VAV, va)
			res.Waveform.VBV = append(res.Waveform.VBV, vb)
			nextSample += sample
		}

		// Node A: pulled up by M4 (PMOS, gate B) and down by M3 (NMOS, gate B).
		iUpA := c.M4.DrainCurrent(vdd-vb, vdd-va)
		iDownA := c.M3.DrainCurrent(vb, va)
		// Node B: pulled up by M2 (PMOS, gate A) and down by M1 (NMOS, gate A).
		iUpB := c.M2.DrainCurrent(vdd-va, vdd-vb)
		iDownB := c.M1.DrainCurrent(va, vb)

		va += spec.StepS * (iUpA - iDownA) * invC
		vb += spec.StepS * (iUpB - iDownB) * invC
		va = clamp(va, 0, vdd)
		vb = clamp(vb, 0, vdd)

		if !res.Resolved && math.Abs(va-vb) > spec.VddV/2 {
			res.Resolved = true
			res.SettleS = t
		}
	}
	res.State = va > vb
	return res, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AgePMOS applies an NBTI threshold-voltage shift (in volts) to the PMOS
// that is active while the cell holds state. Holding 1 (node A high)
// keeps M4 conducting, so M4 ages; holding 0 ages M2. This is the
// data-directed aging mechanism of §2.2.
func (c *Cell) AgePMOS(heldState bool, deltaVthV float64) {
	if heldState {
		c.M4.VthV += deltaVthV
	} else {
		c.M2.VthV += deltaVthV
	}
}

// PMOSMismatchV returns |vth2| − |vth4|; positive values bias the cell
// toward powering on to 1 (M4 wins the race). This is the decision
// variable the reduced-order array model tracks.
func (c Cell) PMOSMismatchV() float64 { return c.M2.VthV - c.M4.VthV }
