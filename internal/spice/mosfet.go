// Package spice is a miniature transient circuit simulator for the
// conventional 6-transistor SRAM cell of Fig. 2a. It plays the role
// HSpice + MOSRA play in the paper (§2.2): demonstrating, at the
// transistor level, that the cell's power-on state is decided by a
// hardware race between the two cross-coupled inverters, and that NBTI
// aging of the winning PMOS flips the outcome of that race (Fig. 2b).
//
// The array-scale simulator (internal/sram) uses a reduced-order model —
// power-on value = sign(mismatch + aging + noise). This package exists to
// validate that reduction: cross-module tests check that the transient
// solver and the reduced-order model agree on the race winner.
//
// Devices follow the long-channel square-law MOSFET model with a small
// subthreshold leak for numerical robustness; parameters default to
// 45 nm-class predictive-technology values, matching the paper's use of
// the 45 nm PTM.
package spice

import "math"

// MOSType distinguishes the two device polarities.
type MOSType int

// MOSFET polarities.
const (
	NMOS MOSType = iota
	PMOS
)

// MOSFET is a square-law transistor. Vth is stored as a magnitude for
// both polarities (the paper writes |vth| for PMOS throughout).
type MOSFET struct {
	Type MOSType
	// VthV is the threshold-voltage magnitude in volts.
	VthV float64
	// KPrime is the process transconductance µCox in A/V².
	KPrime float64
	// WOverL is the aspect ratio W/L.
	WOverL float64
	// Lambda is the channel-length modulation coefficient (1/V).
	Lambda float64
}

// Default45nm returns a transistor with 45 nm-class predictive values.
// PMOS mobility is roughly 40 % of NMOS.
func Default45nm(t MOSType) MOSFET {
	m := MOSFET{Type: t, VthV: 0.40, KPrime: 450e-6, WOverL: 2.0, Lambda: 0.05}
	if t == PMOS {
		m.KPrime = 180e-6
		m.VthV = 0.38
		m.WOverL = 3.0 // widened PMOS to balance drive strength
	}
	return m
}

// subthresholdSlope is the exponential interpolation slope (V) around
// threshold. Smaller values sharpen the turn-on; 30 mV keeps the model
// within a few percent of the hard square law one overdrive above Vth
// while staying infinitely differentiable through it.
const subthresholdSlope = 0.03

// DrainCurrent returns the drain-source current for an NMOS given
// (Vgs, Vds), or the source-drain current for a PMOS given (Vsg, Vsd).
// Callers pass polarity-normalized, non-negative voltage differences;
// negative Vds is clamped to zero (the cell never drives its transistors
// into reverse conduction during power-on).
//
// The model is the EKV-style smooth interpolation of the square law:
//
//	I = 2·β·φ²·ln²(1 + e^{(Vg−Vth)/(2φ)}) · (1 − e^{−Vd/φ}) · (1 + λ·Vd)
//
// which tends to ½·β·(Vg−Vth)² in strong inversion/saturation, to an
// exponential subthreshold leak below Vth, and to a current linear in Vd
// near the origin (triode-like) — all with no discontinuities, which the
// explicit-Euler transient integrator needs.
func (m MOSFET) DrainCurrent(vGate, vDrain float64) float64 {
	if vDrain < 0 {
		vDrain = 0
	}
	beta := m.KPrime * m.WOverL
	vOv := vGate - m.VthV
	x := vOv / (2 * subthresholdSlope)
	var lnTerm float64
	if x > 30 {
		lnTerm = x // ln(1+e^x) → x; avoids float64 overflow in Exp
	} else {
		lnTerm = math.Log1p(math.Exp(x))
	}
	inv := 2 * subthresholdSlope * subthresholdSlope * lnTerm * lnTerm
	drain := 1 - math.Exp(-vDrain/subthresholdSlope)
	return beta * inv * drain * (1 + m.Lambda*vDrain)
}
