package spice

import (
	"math"
	"testing"

	"invisiblebits/internal/rng"
)

func TestDrainCurrentRegions(t *testing.T) {
	m := Default45nm(NMOS)
	// Off: essentially zero current far below threshold.
	if i := m.DrainCurrent(0, 1); i > 1e-9 {
		t.Errorf("off current = %v", i)
	}
	// Saturation grows ~quadratically with overdrive.
	i1 := m.DrainCurrent(m.VthV+0.2, 1.0)
	i2 := m.DrainCurrent(m.VthV+0.4, 1.0)
	if r := i2 / i1; r < 3.5 || r > 4.6 {
		t.Errorf("saturation current ratio = %v, want ~4", r)
	}
	// Triode current below saturation current at same overdrive.
	if tri := m.DrainCurrent(m.VthV+0.4, 0.05); tri >= i2 {
		t.Errorf("triode %v >= saturation %v", tri, i2)
	}
	// Zero drain bias ⇒ zero current, even in subthreshold.
	if i := m.DrainCurrent(m.VthV-0.05, 0); i != 0 {
		t.Errorf("current with Vds=0: %v", i)
	}
	// Negative drain bias clamps.
	if i := m.DrainCurrent(1.0, -0.3); i != 0 {
		t.Errorf("negative-Vds current: %v", i)
	}
}

func TestDrainCurrentContinuityAtThreshold(t *testing.T) {
	m := Default45nm(PMOS)
	below := m.DrainCurrent(m.VthV-1e-6, 0.5)
	above := m.DrainCurrent(m.VthV+1e-6, 0.5)
	if math.Abs(below-above) > 1e-7 {
		t.Errorf("current discontinuous at threshold: %v vs %v", below, above)
	}
}

func TestPowerOnRejectsBadSpec(t *testing.T) {
	c := NewCell()
	bad := []RampSpec{
		{},
		{VddV: 1, RampS: 1e-9, TotalS: 1e-9, StepS: 0},
		{VddV: 1, RampS: 1e-9, TotalS: 1e-9, StepS: 2e-9},
		{VddV: -1, RampS: 1e-9, TotalS: 1e-9, StepS: 1e-12},
	}
	for i, spec := range bad {
		if _, err := c.PowerOn(spec); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestPowerOnBiasedCellResolves(t *testing.T) {
	c := NewCell()
	c.M4.VthV -= 0.02 // |vth4| < |vth2| ⇒ M4 wins ⇒ state 1 (§2.1)
	res, err := c.PowerOn(DefaultRamp())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("biased cell did not resolve")
	}
	if !res.State {
		t.Fatal("cell with weaker |vth4| should power on to 1")
	}
	// Paper: nodes settle within ~2 ns.
	if res.SettleS > 2.5e-9 {
		t.Errorf("settle time %v too slow", res.SettleS)
	}
	// Final node voltages must be complementary rails.
	wf := res.Waveform
	lastA := wf.VAV[len(wf.VAV)-1]
	lastB := wf.VBV[len(wf.VBV)-1]
	if lastA < 0.9 || lastB > 0.1 {
		t.Errorf("nodes not at rails: A=%v B=%v", lastA, lastB)
	}
}

func TestPowerOnOppositeBias(t *testing.T) {
	c := NewCell()
	c.M2.VthV -= 0.02 // M2 stronger ⇒ node B wins ⇒ state 0
	res, err := c.PowerOn(DefaultRamp())
	if err != nil {
		t.Fatal(err)
	}
	if res.State {
		t.Fatal("cell with weaker |vth2| should power on to 0")
	}
}

func TestAgingFlipsPowerOnState(t *testing.T) {
	// Reproduce Fig. 2b: a cell biased to 1 flips to 0 after sufficient
	// NBTI aging of M4 (the PMOS active while holding 1).
	c := NewCell()
	c.M4.VthV -= 0.015 // manufacturing bias toward 1
	pre, err := c.PowerOn(DefaultRamp())
	if err != nil {
		t.Fatal(err)
	}
	if !pre.State {
		t.Fatal("precondition: cell should start biased to 1")
	}

	c.AgePMOS(true, 0.05) // hold 1 → age M4
	post, err := c.PowerOn(DefaultRamp())
	if err != nil {
		t.Fatal(err)
	}
	if post.State {
		t.Fatal("aged cell should now power on to 0")
	}
}

func TestAgePMOSTargetsCorrectDevice(t *testing.T) {
	c := NewCell()
	v2, v4 := c.M2.VthV, c.M4.VthV
	c.AgePMOS(true, 0.01)
	if c.M4.VthV != v4+0.01 || c.M2.VthV != v2 {
		t.Fatal("holding 1 must age M4 only")
	}
	c.AgePMOS(false, 0.02)
	if c.M2.VthV != v2+0.02 {
		t.Fatal("holding 0 must age M2")
	}
}

func TestTransientAgreesWithReducedOrderModel(t *testing.T) {
	// The array simulator reduces the cell to sign(PMOS mismatch). Verify
	// that reduction against the transistor-level race for a population of
	// randomly mismatched cells. Only clearly asymmetric cells (|Δvth| >
	// 5 mV) are required to agree; near-symmetric cells are genuinely
	// metastable and noise-decided in real silicon.
	src := rng.NewSource(1234)
	agree, total := 0, 0
	for i := 0; i < 60; i++ {
		c := NewCell()
		c.M2.VthV += src.NormScaled(0, 0.03)
		c.M4.VthV += src.NormScaled(0, 0.03)
		if math.Abs(c.PMOSMismatchV()) < 0.005 {
			continue
		}
		res, err := c.PowerOn(DefaultRamp())
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.State == (c.PMOSMismatchV() > 0) {
			agree++
		}
	}
	if total < 30 {
		t.Fatalf("too few asymmetric cells sampled: %d", total)
	}
	if agree != total {
		t.Errorf("reduced-order model disagreed with transient on %d/%d cells", total-agree, total)
	}
}

func TestWaveformMonotoneSupplyRamp(t *testing.T) {
	c := NewCell()
	c.M4.VthV -= 0.02
	res, err := c.PowerOn(DefaultRamp())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Waveform.VddV); i++ {
		if res.Waveform.VddV[i] < res.Waveform.VddV[i-1]-1e-12 {
			t.Fatal("supply ramp not monotone")
		}
	}
	if got := res.Waveform.VddV[len(res.Waveform.VddV)-1]; got != 1.0 {
		t.Errorf("final Vdd = %v", got)
	}
}

func BenchmarkPowerOnTransient(b *testing.B) {
	c := NewCell()
	c.M4.VthV -= 0.02
	spec := DefaultRamp()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.PowerOn(spec); err != nil {
			b.Fatal(err)
		}
	}
}
