package cliutil

import (
	"strings"
	"testing"
)

func TestParseCodecFlagVocabulary(t *testing.T) {
	cases := map[string]string{
		"none":   "",
		"rep3":   "repetition(3)",
		"rep5":   "repetition(5)",
		"rep13":  "repetition(13)",
		"ham":    "hamming(7,4)",
		"ham15":  "hamming(15,11)",
		"secded": "secded(8,4)",
		"paper":  "hamming(7,4)+repetition(7)",
	}
	for flag, want := range cases {
		c, err := ParseCodec(flag)
		if err != nil {
			t.Errorf("%q: %v", flag, err)
			continue
		}
		if want == "" {
			if c != nil {
				t.Errorf("%q: expected nil codec", flag)
			}
			continue
		}
		if c.Name() != want {
			t.Errorf("%q -> %q, want %q", flag, c.Name(), want)
		}
	}
}

func TestParseCodecCanonicalRoundTrip(t *testing.T) {
	// Every codec the tools can produce must be re-parseable from its
	// canonical Name() — this is what lets ibdecode reconstruct the codec
	// recorded by ibencode.
	for _, flag := range []string{"rep3", "rep5", "rep7", "ham", "ham15", "secded", "paper", "ham+rep3", "ham+rep5"} {
		c, err := ParseCodec(flag)
		if err != nil {
			t.Fatalf("%q: %v", flag, err)
		}
		c2, err := ParseCodec(c.Name())
		if err != nil {
			t.Errorf("canonical %q not parseable: %v", c.Name(), err)
			continue
		}
		if c2.Name() != c.Name() {
			t.Errorf("round trip %q -> %q", c.Name(), c2.Name())
		}
	}
}

func TestParseCodecCaseAndSpace(t *testing.T) {
	if _, err := ParseCodec("  PAPER "); err != nil {
		t.Errorf("case/space-insensitive parse failed: %v", err)
	}
}

func TestParseCodecUnknown(t *testing.T) {
	_, err := ParseCodec("turbo")
	if err == nil {
		t.Fatal("unknown codec accepted")
	}
	if !strings.Contains(err.Error(), "known:") {
		t.Errorf("error %v lacks vocabulary hint", err)
	}
}

func TestKnownCodecsAdvertisesShortForms(t *testing.T) {
	known := KnownCodecs()
	for _, want := range []string{"none", "rep5", "ham", "paper", "secded"} {
		if !strings.Contains(known, want) {
			t.Errorf("known list %q missing %q", known, want)
		}
	}
	if strings.Contains(known, "(") {
		t.Errorf("known list leaks canonical forms: %q", known)
	}
}

func TestCodecDisplay(t *testing.T) {
	if CodecDisplay(nil) != "none" {
		t.Error("nil display wrong")
	}
	c, err := ParseCodec("ham")
	if err != nil {
		t.Fatal(err)
	}
	if CodecDisplay(c) != "hamming(7,4)" {
		t.Error("codec display wrong")
	}
}
