// Package cliutil holds the small pieces shared by the cmd/ tools:
// codec-name parsing (the -codec flag and the record's codec field speak
// the same vocabulary) and display helpers.
package cliutil

import (
	"fmt"
	"sort"
	"strings"

	"invisiblebits/internal/ecc"
)

// codecFactories maps both the flag vocabulary ("rep5", "paper") and the
// canonical codec names ("repetition(5)") to constructors, so one parser
// serves -codec flags and record round trips.
var codecFactories = map[string]func() (ecc.Codec, error){
	"none":     func() (ecc.Codec, error) { return nil, nil },
	"identity": func() (ecc.Codec, error) { return nil, nil },
	"ham":      func() (ecc.Codec, error) { return ecc.Hamming74{}, nil },
	"ham15":    func() (ecc.Codec, error) { return ecc.Hamming1511{}, nil },
	"secded":   func() (ecc.Codec, error) { return ecc.Secded84{}, nil },
	"paper": func() (ecc.Codec, error) {
		rep, err := ecc.NewRepetition(7)
		if err != nil {
			return nil, err
		}
		return ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}, nil
	},
}

func init() {
	for _, n := range []int{3, 5, 7, 9, 11, 13} {
		n := n
		codecFactories[fmt.Sprintf("rep%d", n)] = func() (ecc.Codec, error) {
			return ecc.NewRepetition(n)
		}
		codecFactories[fmt.Sprintf("repetition(%d)", n)] = codecFactories[fmt.Sprintf("rep%d", n)]
	}
	// Canonical names produced by Codec.Name().
	codecFactories["hamming(7,4)"] = codecFactories["ham"]
	codecFactories["hamming(15,11)"] = codecFactories["ham15"]
	codecFactories["secded(8,4)"] = codecFactories["secded"]
	codecFactories["hamming(7,4)+repetition(7)"] = codecFactories["paper"]
	for _, n := range []int{3, 5, 7} {
		n := n
		codecFactories[fmt.Sprintf("hamming(7,4)+repetition(%d)", n)] = func() (ecc.Codec, error) {
			rep, err := ecc.NewRepetition(n)
			if err != nil {
				return nil, err
			}
			return ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}, nil
		}
		codecFactories[fmt.Sprintf("ham+rep%d", n)] = codecFactories[fmt.Sprintf("hamming(7,4)+repetition(%d)", n)]
	}
}

// ParseCodec resolves a -codec flag value or a record codec name.
func ParseCodec(name string) (ecc.Codec, error) {
	f, ok := codecFactories[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("unknown codec %q (known: %s)", name, KnownCodecs())
	}
	return f()
}

// KnownCodecs lists the flag vocabulary for error messages and usage.
func KnownCodecs() string {
	seen := map[string]bool{}
	var names []string
	for name := range codecFactories {
		// Only advertise the short flag forms.
		if strings.ContainsAny(name, "(+") {
			continue
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// CodecDisplay names a codec for human output (nil-safe).
func CodecDisplay(c ecc.Codec) string {
	if c == nil {
		return "none"
	}
	return c.Name()
}
