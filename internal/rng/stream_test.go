package rng

import (
	"math"
	"testing"
)

// The whole point of Stream: a draw depends only on (key, counter,
// index), never on call order.
func TestStreamOrderIndependent(t *testing.T) {
	s := NewStream(42)
	forward := make([]float64, 64)
	for i := range forward {
		forward[i] = s.Norm(7, uint64(i))
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := s.Norm(7, uint64(i)); got != forward[i] {
			t.Fatalf("index %d: reverse-order draw %v != forward draw %v", i, got, forward[i])
		}
	}
	// Interleaving counters must not disturb either stream.
	for i := range forward {
		_ = s.Norm(8, uint64(i))
		if got := s.Norm(7, uint64(i)); got != forward[i] {
			t.Fatalf("index %d: draw after counter interleave changed", i)
		}
	}
}

func TestStreamDecorrelated(t *testing.T) {
	s := NewStream(1)
	// Neighbouring coordinates must not produce correlated gaussians.
	const n = 4096
	var sumXY, sumX, sumY float64
	for i := 0; i < n; i++ {
		x := s.Norm(0, uint64(i))
		y := s.Norm(0, uint64(i+1))
		sumXY += x * y
		sumX += x
		sumY += y
	}
	corr := (sumXY/n - (sumX/n)*(sumY/n))
	if math.Abs(corr) > 0.05 {
		t.Fatalf("adjacent-index correlation %v, want ~0", corr)
	}
	// Distinct seeds diverge.
	if NewStream(1).Norm(0, 0) == NewStream(2).Norm(0, 0) {
		t.Fatal("different stream keys produced identical draws")
	}
	// Distinct counters diverge.
	if s.Norm(0, 0) == s.Norm(1, 0) {
		t.Fatal("different counters produced identical draws")
	}
}

func TestStreamMomentsGaussian(t *testing.T) {
	s := NewStream(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Norm(3, uint64(i))
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("variance %v, want ~1", variance)
	}
}

func TestStreamAtMatchesNorm(t *testing.T) {
	s := NewStream(7)
	for i := uint64(0); i < 16; i++ {
		if got, want := s.At(5, i).Norm(), s.Norm(5, i); got != want {
			t.Fatalf("At(5,%d).Norm() = %v, Norm(5,%d) = %v", i, got, i, want)
		}
	}
}
