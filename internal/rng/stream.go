package rng

// Stream is a counter-based (splittable) noise source: every draw is a
// pure function of (stream key, counter, index), with no sequential
// state. Where Source models a single PRNG tape that must be consumed
// in order, Stream hands out an independent tape per coordinate — which
// is what makes the SRAM capture engine parallel-safe by construction:
// cell i's thermal-noise sample on power-on k is Norm(k, i) no matter
// which worker computes it, in what order, or in what chunk.
//
// The derivation is two rounds of the SplitMix64 finalizer over the key
// and the coordinates, each pre-multiplied by a distinct odd constant
// (the wyhash primes) so that neighbouring counters and indices land in
// statistically unrelated states. This is the same construction family
// as Source.Split, extended from one child to an addressable plane of
// children. Not cryptographically secure; never use for key material.
type Stream struct {
	key uint64
}

// streamDomain separates Stream keys from raw Source seeds so an array
// seeded with S does not replay cell noise correlated with another
// subsystem that consumed NewSource(S) directly.
const streamDomain = 0x1bad5eed0fca11ed

// NewStream returns the noise plane keyed by seed.
func NewStream(seed uint64) Stream {
	return Stream{key: mix64(seed ^ streamDomain)}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Pre-multipliers decorrelating neighbouring counters and indices (the
// wyhash primes), and the SplitMix64 Weyl increment consumed by a
// Source's first Uint64. Named so the hoisted-counter fast path below
// provably derives the same states as stateAt.
const (
	ctrPrime  = 0xa0761d6478bd642f
	idxPrime  = 0xe7037ed1a0b428db
	weylGamma = 0x9e3779b97f4a7c15
)

// stateAt derives the Source state for coordinate (counter, index).
func (s Stream) stateAt(counter, index uint64) uint64 {
	st := mix64(s.key + counter*ctrPrime)
	return mix64(st ^ index*idxPrime)
}

// CtrState hoists the counter half of the coordinate derivation: for a
// fixed power-on counter, every cell's Source state is
// mix64(CtrState(counter) ^ index*idxPrime). Capture kernels that
// iterate many cells per race compute this once per race instead of
// once per draw — a pure refactor of stateAt, bit-identical by
// construction.
func (s Stream) CtrState(counter uint64) uint64 {
	return mix64(s.key + counter*ctrPrime)
}

// At returns an independent Source for coordinate (counter, index).
// Successive calls with the same coordinate return identical streams.
func (s Stream) At(counter, index uint64) *Source {
	return &Source{state: s.stateAt(counter, index)}
}

// Norm returns the standard-normal variate at (counter, index) — the
// first Norm() draw of At(counter, index), without the allocation.
func (s Stream) Norm(counter, index uint64) float64 {
	src := Source{state: s.stateAt(counter, index)}
	return src.Norm()
}

// NormFromCtr is Norm with the counter state pre-hoisted via CtrState —
// the v1 (Box–Muller) compat path of the word-parallel capture kernel.
// Bit-identical to Norm(counter, index) for every coordinate.
func NormFromCtr(ctrState, index uint64) float64 {
	src := Source{state: mix64(ctrState ^ index*idxPrime)}
	return src.Norm()
}
