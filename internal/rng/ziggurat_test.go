package rng

import (
	"math"
	"sort"
	"testing"

	"invisiblebits/internal/stats"
)

func TestNormZigguratMoments(t *testing.T) {
	s := NewSource(2026)
	const n = 200000
	var sum, sumSq, sumCu float64
	for i := 0; i < n; i++ {
		v := s.NormZiggurat()
		sum += v
		sumSq += v * v
		sumCu += v * v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCu / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("third moment = %v, want ~0", skew)
	}
}

func TestNormZigguratTruncationBound(t *testing.T) {
	// Every draw must respect the documented ±8σ hard bound (the pruning
	// guarantee), and the sampler must still reach well into the tail
	// region beyond the ziggurat base r ≈ 3.44.
	s := NewSource(7)
	maxAbs := 0.0
	for i := 0; i < 500000; i++ {
		v := s.NormZiggurat()
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > NormZigguratBound {
		t.Fatalf("|draw| = %v exceeds the %v bound", maxAbs, NormZigguratBound)
	}
	if maxAbs < 3.442619855899 {
		t.Errorf("max |draw| = %v never exercised the tail sampler", maxAbs)
	}
}

func TestNormZigguratKolmogorovSmirnov(t *testing.T) {
	// One-sample KS test against Φ. The critical value at α = 0.001 is
	// 1.95/√n; use the counter-based stream so the test also covers the
	// coordinate-derivation path used by the capture engine.
	stream := NewStream(0x2e0c)
	const n = 100000
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = stream.NormZig(uint64(i%251), uint64(i))
	}
	sort.Float64s(draws)
	d := 0.0
	for i, x := range draws {
		cdf := stats.NormalCDF(x)
		if up := float64(i+1)/n - cdf; up > d {
			d = up
		}
		if down := cdf - float64(i)/n; down > d {
			d = down
		}
	}
	if crit := 1.95 / math.Sqrt(n); d > crit {
		t.Errorf("KS statistic %v exceeds %v: ziggurat draws are not N(0,1)", d, crit)
	}
}

func TestNormZigStreamDeterministicAndOrderFree(t *testing.T) {
	s := NewStream(99)
	want := make([]float64, 64)
	for i := range want {
		want[i] = s.NormZig(3, uint64(i))
	}
	// Re-reading coordinates in reverse yields identical values: the
	// plane has no sequential state.
	for i := len(want) - 1; i >= 0; i-- {
		if got := s.NormZig(3, uint64(i)); got != want[i] {
			t.Fatalf("coordinate (3,%d) not stable: %v vs %v", i, got, want[i])
		}
	}
	// Distinct counters give decorrelated values.
	same := 0
	for i := range want {
		if s.NormZig(4, uint64(i)) == want[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 draws identical across counters", same)
	}
}

func TestNormZigguratDiffersFromBoxMuller(t *testing.T) {
	// The two samplers are distinct noise-generation versions: same seed,
	// different mapping from bits to variates.
	a, b := NewSource(5), NewSource(5)
	same := 0
	for i := 0; i < 64; i++ {
		if a.NormZiggurat() == b.Norm() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("ziggurat tracks Box–Muller on %d/64 draws", same)
	}
}

func TestZigguratTablesWellFormed(t *testing.T) {
	if zigX[1] != zigR {
		t.Fatalf("zigX[1] = %v, want r", zigX[1])
	}
	if zigX[0] <= zigX[1] {
		t.Fatalf("base pseudo-width %v not beyond r", zigX[0])
	}
	for i := 1; i < zigLayers; i++ {
		if zigX[i+1] >= zigX[i] {
			t.Fatalf("edges not strictly decreasing at %d: %v, %v", i, zigX[i], zigX[i+1])
		}
		if zigF[i+1] <= zigF[i] {
			t.Fatalf("densities not increasing at %d", i)
		}
	}
	if zigX[zigLayers] > 0.02 {
		t.Errorf("top edge %v should be ~0 (v accounts for exactly 128 layers)", zigX[zigLayers])
	}
	if zigX[0] >= NormZigguratBound {
		t.Errorf("layer bound %v must sit inside the truncation bound", zigX[0])
	}
}

func BenchmarkNormBoxMuller(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Norm()
	}
}

func BenchmarkNormZiggurat(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.NormZiggurat()
	}
}
