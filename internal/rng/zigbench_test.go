package rng

import "testing"

// Equivalence of the hoisted fast path against the canonical samplers.
func TestNormZigFromCtrMatchesNormZig(t *testing.T) {
	s := NewStream(0xfeed)
	for ctr := uint64(0); ctr < 64; ctr++ {
		cs := s.CtrState(ctr)
		for idx := uint64(0); idx < 4096; idx++ {
			want := s.NormZig(ctr, idx)
			got := NormZigFromCtr(cs, idx)
			if got != want {
				t.Fatalf("ctr=%d idx=%d: NormZigFromCtr=%v NormZig=%v", ctr, idx, got, want)
			}
		}
	}
}

func TestNormFromCtrMatchesNorm(t *testing.T) {
	s := NewStream(0xfeed)
	for ctr := uint64(0); ctr < 16; ctr++ {
		cs := s.CtrState(ctr)
		for idx := uint64(0); idx < 1024; idx++ {
			if got, want := NormFromCtr(cs, idx), s.Norm(ctr, idx); got != want {
				t.Fatalf("ctr=%d idx=%d: NormFromCtr=%v Norm=%v", ctr, idx, got, want)
			}
		}
	}
}

var sinkF float64

func BenchmarkNormZigPointer(b *testing.B) {
	s := NewStream(0xfeed)
	norm := s.NormZig
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += norm(uint64(i)>>16, uint64(i)&0xffff)
	}
	sinkF = acc
}

func BenchmarkNormZigFromCtr(b *testing.B) {
	s := NewStream(0xfeed)
	cs := s.CtrState(3)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += NormZigFromCtr(cs, uint64(i)&0xffff)
	}
	sinkF = acc
}
