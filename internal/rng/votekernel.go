package rng

import (
	"math"
	"math/bits"
	"sync"
)

// Word-parallel vote kernel: the SRAM capture engine's innermost loop.
//
// A power-on race asks, for every noisy cell i, whether
//
//	bias[i] + sigma*norm(counter, i) > 0
//
// The capture kernel hoists everything it can out of that per-draw
// expression:
//
//   - The counter half of the coordinate hash (Stream.CtrState) is
//     computed once per race, not once per draw.
//   - The float predicate is precomputed into a per-cell draw-space
//     threshold xt (VoteThreshold): because fl(bias + fl(sigma*x)) is
//     monotone non-decreasing in x (sigma > 0, and rounding is
//     monotone), the predicate is exactly `x >= xt` for every
//     representable x — so the race compares the raw variate against
//     one precomputed double instead of re-evaluating the bias/sigma
//     arithmetic 25 times per cell.
//   - The hot pass classifies each draw in float32 with conservative
//     margins: one gathered 64-bit table entry per draw packs the
//     layer's width and accept bound, and per-cell float32 vote bounds
//     (VoteBoundsF32) bracket the exact threshold. A draw is resolved
//     in the hot pass only when the float32 arithmetic PROVES the
//     exact-float64 outcome — certainly on the ziggurat common path
//     AND certainly on one side of the threshold. Everything else
//     (common-path rejects plus a ~1e-5 sliver of near-threshold
//     draws) is marked slow and replayed through the canonical
//     sampler, so votes are bit-identical to NormZig per cell while
//     the hot pass pays one gather and float32 math per draw.
//   - The slow-path layer-edge test consumes its uniform draw either
//     way, so its density comparison can be short-circuited: per-layer
//     subrange bounds on exp(-x²/2) resolve most edge draws by an
//     interval compare, calling math.Exp only when the drawn height
//     lands inside the bounds gap (~1/zigEdgeSub of edge draws).
//
// Every shortcut above is an exact algebraic rewrite of the canonical
// samplers — the kernel's votes are bit-identical to evaluating
// NormZig/Norm per cell, which the sram package's differential fuzz and
// property suites enforce against the retained scalar reference engine.

// ZigLockBound is the open bound of the ziggurat common path: every
// accepted fast-path draw lies strictly inside (-ZigLockBound,
// +ZigLockBound). A vote threshold at or beyond it can only be crossed
// by a slow-path draw (layer edge or tail), so such cells vote by bias
// sign on every accepted draw.
const ZigLockBound = zigR

// voteBandAbs is the absolute half-width of the float32 classifier's
// ambiguity band. The float32 approximation of a common-path variate is
// within ~7e-7 of the exact float64 value (three round-to-nearest-24-bit
// steps over |x| <= zigX[0]); 2^-18 ≈ 3.8e-6 leaves a 5x margin, and
// draws inside the band resolve through the exact scalar path.
const voteBandAbs = 1.0 / (1 << 18)

// zigEdgeSub is the number of exp-bound subranges per layer for the
// slow-path edge test. Larger values shrink the fraction of edge draws
// that fall through to math.Exp (~1/zigEdgeSub) at the cost of table
// size (zigLayers * zigEdgeSub * 16 bytes).
const zigEdgeSub = 8

var (
	// zigXScaled[i] = zigX[i] * 2^-53: because float64(m) is exact for
	// m < 2^53 and scaling by a power of two is exact, fl(float64(m) *
	// zigXScaled[i]) equals the canonical fl(fl(float64(m)*2^-53) *
	// zigX[i]) for every mantissa m — one multiply instead of two.
	zigXScaled [zigLayers]float64
	// zigAccept[i] is the smallest 53-bit mantissa REJECTED by layer i:
	// the common path accepts iff (u>>11) < zigAccept[i]. Derived by
	// exact binary search over the (monotone) accept predicate, so the
	// integer compare reproduces the float compare bit for bit.
	zigAccept [zigLayers]uint64
	// zigClassF32[i] packs the hot pass's per-layer float32 classifier:
	// low 32 bits hold zigXScaled[i] rounded to float32 (the lane's
	// variate approximation multiplier), high 32 bits a conservative
	// accept bound — float32(m) below it PROVES m < zigAccept[i].
	zigClassF32 [zigLayers]uint64
	// Slow-path edge-test exp bounds: for layer i and mantissa subrange
	// s, the canonical density exp(-x²/2) over that subrange lies in
	// [zigEdgeLo[i][s], zigEdgeHi[i][s]] (widened past any math.Exp
	// rounding wiggle). A drawn height below Lo certainly accepts,
	// at/above Hi certainly rejects; only the gap evaluates math.Exp.
	zigEdgeD     [zigLayers]float64
	zigEdgeScale [zigLayers]float64
	// zigEdgeLoHi interleaves the bounds — entry ((i*zigEdgeSub+s)*2)
	// is Lo, +1 is Hi — so one cache line serves both compares, and the
	// vector edge resolver reaches them with a single gathered index.
	zigEdgeLoHi [zigLayers * zigEdgeSub * 2]float64
	// zigEdgePack lays the per-layer edge-resolution constants out at a
	// 64-byte stride (one cache line per layer) for the vector edge
	// resolver's gathers: qwords i*8+0..4 hold zigXScaled, zigAccept,
	// zigF, zigEdgeD and zigEdgeScale bit patterns.
	zigEdgePack [zigLayers * 8]uint64
)

// f32Down rounds v to the largest float32 not exceeding it.
func f32Down(v float64) float32 {
	f := float32(v)
	if float64(f) > v {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// f32Up rounds v to the smallest float32 not below it.
func f32Up(v float64) float32 {
	f := float32(v)
	if float64(f) < v {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// VoteBoundsF32 brackets a cell's exact draw-space threshold for the
// float32 hot-pass classifier: a float32 variate approximation at or
// above hi certainly votes 1, strictly below lo certainly votes 0, and
// anything between resolves through the exact float64 path. The band
// covers the classifier's worst-case approximation error with a wide
// margin, so the bracketing is sound for every draw.
func VoteBoundsF32(xt float64) (lo, hi float32) {
	return f32Down(xt - voteBandAbs), f32Up(xt + voteBandAbs)
}

// edgeExpAt evaluates the canonical edge-test density exp(-x²/2) at
// mantissa m of layer i, with the exact expression shape (and hence
// rounding) of the canonical sampler.
func edgeExpAt(i int, m uint64) float64 {
	mf := float64(m) * (1.0 / (1 << 53))
	x := mf * zigX[i]
	return math.Exp(-0.5 * x * x)
}

// initVoteKernelTables derives the integer accept thresholds, float32
// classifier entries and edge-test exp bounds from the ziggurat tables.
// Called from ziggurat.go's init after zigX is built — it must NOT be
// an init() of its own, because Go orders package inits by file name
// and this file sorts before ziggurat.go.
func initVoteKernelTables() {
	for i := 0; i < zigLayers; i++ {
		zigXScaled[i] = zigX[i] * (1.0 / (1 << 53))
		// accept(m) := fl(float64(m)*zigXScaled[i]) < zigX[i+1], monotone
		// non-increasing in m; find the smallest rejecting mantissa.
		accept := func(m uint64) bool {
			return float64(m)*zigXScaled[i] < zigX[i+1]
		}
		lo, hi := uint64(0), uint64(1)<<53 // accept region is [0, ans)
		if accept(hi) {
			// Cannot happen (m = 2^53 maps to x = zigX[i] >= zigX[i+1]),
			// but keep the search total.
			lo = hi
		}
		for lo < hi {
			mid := lo + (hi-lo)/2
			if accept(mid) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		zigAccept[i] = lo

		// float32 classifier entry: the accept bound shrinks zigAccept by
		// 2^-22 relative before rounding down, which dominates float32(m)'s
		// 2^-24 conversion error — float32(m) < bound implies m < zigAccept.
		xsF := math.Float32bits(float32(zigXScaled[i]))
		accF := math.Float32bits(f32Down(float64(zigAccept[i]) * (1 - 1.0/(1<<22))))
		zigClassF32[i] = uint64(xsF) | uint64(accF)<<32

		// Edge-test exp bounds over the rejected-mantissa range
		// [zigAccept[i], 2^53), split into zigEdgeSub subranges. Each
		// subrange is widened so the float subrange-index computation can
		// never select a table entry whose bounds exclude the true m, and
		// the exp endpoints are widened past math.Exp's rounding wiggle
		// (≤ a few ulps) so the bounds hold despite non-monotonicity.
		zigEdgeD[i] = zigF[i+1] - zigF[i]
		acc := zigAccept[i]
		span := uint64(1)<<53 - acc
		if span == 0 {
			zigEdgePack[i*8+0] = math.Float64bits(zigXScaled[i])
			zigEdgePack[i*8+1] = zigAccept[i]
			continue // layer never reaches the edge test
		}
		zigEdgeScale[i] = float64(zigEdgeSub) / float64(span)
		zigEdgePack[i*8+0] = math.Float64bits(zigXScaled[i])
		zigEdgePack[i*8+1] = zigAccept[i]
		zigEdgePack[i*8+2] = math.Float64bits(zigF[i])
		zigEdgePack[i*8+3] = math.Float64bits(zigEdgeD[i])
		zigEdgePack[i*8+4] = math.Float64bits(zigEdgeScale[i])
		slack := span/(1<<16) + 2
		for s := uint64(0); s < zigEdgeSub; s++ {
			mA := acc + s*(span/zigEdgeSub)
			mB := acc + (s+1)*(span/zigEdgeSub)
			if s == zigEdgeSub-1 {
				mB = uint64(1)<<53 - 1
			}
			if mA >= acc+slack {
				mA -= slack
			} else {
				mA = acc
			}
			if mB <= uint64(1)<<53-1-slack {
				mB += slack
			} else {
				mB = uint64(1)<<53 - 1
			}
			// x grows with m, so exp(-x²/2) falls: hi at mA, lo at mB.
			hiR := edgeExpAt(i, mA)
			loR := edgeExpAt(i, mB)
			if loR > hiR {
				loR, hiR = hiR, loR
			}
			zigEdgeLoHi[(uint64(i)*zigEdgeSub+s)*2] = loR * (1 - 1.0/(1<<46))
			zigEdgeLoHi[(uint64(i)*zigEdgeSub+s)*2+1] = hiR * (1 + 1.0/(1<<46))
		}
	}
}

// VoteThreshold returns the smallest float64 x for which
// bias + sigma*x > 0, i.e. the draw-space decision threshold of one
// cell's power-on race: the race votes 1 exactly when the thermal-noise
// variate is >= the returned value. The predicate is evaluated with the
// same expression shape as the capture engines, and monotonicity in x
// makes the threshold form exactly equivalent — not approximately.
// Returns -Inf when every draw votes 1 and +Inf when none does.
func VoteThreshold(bias, sigma float64) float64 {
	if !(sigma > 0) {
		// Degenerate noise: the predicate no longer depends on x.
		if bias > 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	x := -bias / sigma // within a couple of ulps of the exact boundary
	if math.IsNaN(x) {
		x = 0
	}
	const maxWalk = 8
	if bias+sigma*x > 0 {
		for i := 0; i < maxWalk; i++ {
			prev := math.Nextafter(x, math.Inf(-1))
			if !(bias+sigma*prev > 0) {
				return x
			}
			x = prev
		}
	} else {
		for i := 0; i < maxWalk; i++ {
			x = math.Nextafter(x, math.Inf(1))
			if bias+sigma*x > 0 {
				return x
			}
		}
	}
	// The estimate was further off than a few ulps (extreme
	// bias/sigma ratios): fall back to an exact binary search over the
	// total order of float64.
	return voteThresholdSearch(bias, sigma)
}

// ordKey maps float64 to uint64 preserving numeric order (negative
// floats reverse their bit order; the sign bit flips positives above
// them). NaNs map outside the [-Inf, +Inf] key range.
func ordKey(x float64) uint64 {
	u := math.Float64bits(x)
	if u>>63 != 0 {
		return ^u
	}
	return u | 1<<63
}

// ordFloat is the inverse of ordKey.
func ordFloat(k uint64) float64 {
	if k>>63 != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// voteThresholdSearch finds the smallest x with bias + sigma*x > 0 by
// binary search over ordered float64 keys (the predicate is monotone in
// x, hence in the key order). sigma > 0, so pred(-Inf) is false and
// pred(+Inf) is true: the answer always exists in (-Inf, +Inf].
func voteThresholdSearch(bias, sigma float64) float64 {
	lo, hi := ordKey(math.Inf(-1)), ordKey(math.Inf(1))
	for lo < hi {
		mid := lo + (hi-lo)/2
		if bias+sigma*ordFloat(mid) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return ordFloat(lo)
}

// zigSlowVote finishes a draw that left the ziggurat common path: it
// replays the canonical NormZiggurat from the cell's Source state
// (re-consuming the identical first Uint64 and continuing the identical
// tape) and applies the threshold predicate to the exact variate.
func zigSlowVote(state uint64, xt float64) bool {
	src := Source{state: state}
	return src.NormZiggurat() >= xt
}

// zigSlowVoteFromU resolves a lane the hot pass could not: it replays
// the canonical NormZiggurat loop with the lane's first raw draw
// already in hand (the hot pass saves every lane's u), resuming the
// tape directly after that draw instead of re-deriving it. The control
// flow — including which draws each rejection consumes — transcribes
// NormZiggurat line for line, so the variate and therefore the vote are
// bit-identical to the canonical sampler; the only non-literal step is
// the edge test, whose density compare goes through the precomputed
// exp bounds (same boolean, usually without math.Exp).
func zigSlowVoteFromU(state, u uint64, xt float64) bool {
	src := Source{state: state + weylGamma} // tape positioned after u
	for {
		i := u & (zigLayers - 1)
		neg := u&zigLayers != 0
		mi := u >> 11
		m := float64(mi) * (1.0 / (1 << 53))
		x := m * zigX[i]
		if x < zigX[i+1] {
			if neg {
				x = -x
			}
			return x >= xt
		}
		if i == 0 {
			for {
				ex := -math.Log(src.Float64()) / zigR
				ey := -math.Log(src.Float64())
				if ey+ey > ex*ex && zigR+ex <= NormZigguratBound {
					x = zigR + ex
					if neg {
						x = -x
					}
					return x >= xt
				}
			}
		}
		// Edge of layer i: the height draw is consumed unconditionally,
		// so the density compare can short-circuit through the interval
		// bounds without touching the tape.
		h := zigF[i] + src.Float64()*zigEdgeD[i]
		s := int(float64(mi-zigAccept[i]) * zigEdgeScale[i])
		if s >= zigEdgeSub {
			s = zigEdgeSub - 1
		}
		ok := h < zigEdgeLoHi[(i*zigEdgeSub+uint64(s))*2]
		if !ok && h < zigEdgeLoHi[(i*zigEdgeSub+uint64(s))*2+1] {
			ok = h < math.Exp(-0.5*x*x)
		}
		if ok {
			if neg {
				x = -x
			}
			return x >= xt
		}
		u = src.Uint64()
	}
}

// IdxMul returns the cell-index pre-multiplication the packed kernels
// consume: the Source state at (counter, index) is
// mix64(CtrState(counter) ^ IdxMul(index)). Precomputing it per cell
// (once per bias epoch) removes a multiply from every draw.
func IdxMul(index uint64) uint64 { return index * idxPrime }

// PackedZigVotes resolves one power-on race for n packed noisy cells
// against the v2 (ziggurat) noise plane. The capture engine packs the
// array's noisy cells contiguously (once per bias epoch): idxMul[j]
// holds IdxMul(cellIndex[j]), xt[j] the cell's VoteThreshold, and
// xtLo/xtHi its float32 bracket (VoteBoundsF32). Bit j of votes[j/64]
// is set iff packed cell j votes 1 on this race — bit-identical to
// evaluating NormZig(counter, cellIndex[j]) per cell.
//
// slow is caller-provided scratch with the same length as votes; its
// contents on return are the mask of draws the hot pass could not
// prove (common-path rejects plus near-threshold float32 ties; useful
// to tests, otherwise scratch). draws is per-lane scratch (len >= n)
// holding each cell's raw 64-bit draw, which lets the slow-lane
// resolver resume the canonical tape without re-hashing.
//
// On amd64 with AVX-512 the hot pass runs 8 lanes per instruction
// (vpmullq hash chains, one gathered classifier word, float32
// compares); slow lanes and the tail word always resolve through the
// scalar canonical sampler, so every reachable draw path is exercised
// on every host.
func PackedZigVotes(ctrState uint64, idxMul []uint64, xt []float64, xtLo, xtHi []float32, votes, slow, draws []uint64) {
	n := len(idxMul)
	if n == 0 {
		return
	}
	nWords := n / 64
	if haveAVX512 && nWords > 0 {
		packedZigVotesAVX512(ctrState, &idxMul[0], uint64(nWords),
			&zigClassF32[0], &xtLo[0], &xtHi[0], &votes[0], &slow[0], &draws[0])
	} else {
		packedZigVotesGo(ctrState, idxMul[:nWords*64], xtLo, xtHi, votes, slow, draws)
	}
	if tail := n - nWords*64; tail != 0 {
		packedZigVotesTail(ctrState, idxMul, xtLo, xtHi, votes, slow, draws, nWords*64, tail)
	}
	fixSlowLanes(ctrState, idxMul, xt, votes, slow, draws)
}

// packedZigVotesGo is the portable hot pass: branch- and call-free per
// lane (a call here would spill every live value to the stack), with
// unproven lanes only *marked* — one SETcc into a mask — and resolved
// later by fixSlowLanes. The float32 arithmetic mirrors the vector
// pass operation for operation (convert, multiply, compare are all
// round-to-nearest IEEE float32), so both passes emit identical masks.
func packedZigVotesGo(ctrState uint64, idxMul []uint64, xtLo, xtHi []float32, votes, slow, draws []uint64) {
	for w := 0; w*64 < len(idxMul); w++ {
		base := w * 64
		im := idxMul[base : base+64 : base+64]
		lo := xtLo[base : base+64 : base+64]
		hi := xtHi[base : base+64 : base+64]
		db := draws[base : base+64 : base+64]
		var vote, sl uint64
		for j := 0; j < 64; j++ {
			st := mix64(ctrState ^ im[j])
			z := st + weylGamma
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			u := z ^ (z >> 31)
			db[j] = u
			e := zigClassF32[u&(zigLayers-1)]
			mf := float32(u >> 11)
			// Branchless sign: the variate is >= 0, so applying the draw's
			// sign (bit 7) is ORing it into the float32 sign bit.
			ys := math.Float32frombits(math.Float32bits(mf*math.Float32frombits(uint32(e))) |
				uint32(u&zigLayers)<<24)
			var fast, vt, vf uint64
			if mf < math.Float32frombits(uint32(e>>32)) {
				fast = 1
			}
			if ys >= hi[j] {
				vt = 1
			}
			if ys < lo[j] {
				vf = 1
			}
			vote |= vt << uint(j)
			sl |= (fast&(vt|vf) ^ 1) << uint(j)
		}
		votes[w] = vote
		slow[w] = sl
	}
}

// packedZigVotesTail handles the final partial word (< 64 lanes).
func packedZigVotesTail(ctrState uint64, idxMul []uint64, xtLo, xtHi []float32, votes, slow, draws []uint64, base, tail int) {
	var vote, sl uint64
	for j := 0; j < tail; j++ {
		st := mix64(ctrState ^ idxMul[base+j])
		z := st + weylGamma
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		u := z ^ (z >> 31)
		draws[base+j] = u
		e := zigClassF32[u&(zigLayers-1)]
		mf := float32(u >> 11)
		ys := math.Float32frombits(math.Float32bits(mf*math.Float32frombits(uint32(e))) |
			uint32(u&zigLayers)<<24)
		var fast, vt, vf uint64
		if mf < math.Float32frombits(uint32(e>>32)) {
			fast = 1
		}
		if ys >= xtHi[base+j] {
			vt = 1
		}
		if ys < xtLo[base+j] {
			vf = 1
		}
		vote |= vt << uint(j)
		sl |= (fast&(vt|vf) ^ 1) << uint(j)
	}
	votes[base/64] = vote
	slow[base/64] = sl
}

// edgeScratch holds the dense edge resolver's per-call compressed-lane
// buffers; pooled so steady-state captures allocate nothing.
type edgeScratch struct {
	pos  []uint32
	res  []uint8
	vote []uint8
}

var edgeScratchPool = sync.Pool{New: func() any { return new(edgeScratch) }}

// fixSlowLanes redoes the lanes the hot pass could not prove (a few
// percent): their speculative fast-path votes are garbage, so clear
// and recompute exactly. On AVX-512 hosts the slow lanes are first
// compressed into a dense list and run through the vector edge
// resolver, which settles most of them (round-1 accepts, bounded edge
// accepts/rejects, and the rejects' second draw) with exact float64
// arithmetic; only the residue — tail draws, exp-bound gaps, twice-
// rejected draws — replays the canonical sampler per lane.
func fixSlowLanes(ctrState uint64, idxMul []uint64, xt []float64, votes, slow, draws []uint64) {
	nw := (len(idxMul) + 63) / 64
	if !haveAVX512 {
		for w := 0; w < nw; w++ {
			sm := slow[w]
			if sm == 0 {
				continue
			}
			v := votes[w] &^ sm
			base := w * 64
			for m := sm; m != 0; m &= m - 1 {
				j := base + bits.TrailingZeros64(m)
				st := mix64(ctrState ^ idxMul[j])
				if zigSlowVoteFromU(st, draws[j], xt[j]) {
					v |= 1 << uint(j-base)
				}
			}
			votes[w] = v
		}
		return
	}

	es := edgeScratchPool.Get().(*edgeScratch)
	if cap(es.pos) < len(idxMul)+8 {
		es.pos = make([]uint32, len(idxMul)+8)
		es.res = make([]uint8, len(idxMul)/8+1)
		es.vote = make([]uint8, len(idxMul)/8+1)
	}
	pos := es.pos
	nc := 0
	for w := 0; w < nw; w++ {
		sm := slow[w]
		if sm == 0 {
			continue
		}
		votes[w] &^= sm
		base := uint32(w * 64)
		for m := sm; m != 0; m &= m - 1 {
			pos[nc] = base + uint32(bits.TrailingZeros64(m))
			nc++
		}
	}
	if nc == 0 {
		edgeScratchPool.Put(es)
		return
	}
	// Pad the trailing partial group with lane 0 so every slow lane
	// rides the vector resolver: duplicate lanes recompute the same
	// draw and apply with idempotent ORs, which is cheaper than a
	// scalar replay of up to seven tail lanes per call.
	ng := (nc + 7) / 8
	for k := nc; k < ng*8; k++ {
		pos[k] = pos[0]
	}
	packedZigEdgeAVX512(ctrState, &pos[0], uint64(ng), &idxMul[0], &draws[0],
		&xt[0], &zigEdgePack[0], &zigEdgeLoHi[0], &es.res[0], &es.vote[0])
	// Branchless apply for the resolved lanes (the bulk): OR in
	// resolved&vote per lane — per-race slow patterns are cold, so a
	// predicated write beats a data-dependent branch by a wide margin.
	for k := 0; k < ng*8; k++ {
		j := pos[k]
		rv := uint64(es.res[k>>3]&es.vote[k>>3]) >> (uint(k) & 7) & 1
		votes[j>>6] |= rv << (j & 63)
	}
	// Residue: unresolved lanes (base-layer tails, exp-bound gaps,
	// twice-rejected draws) replay the canonical sampler. Padded
	// duplicates of lane 0 may reappear here; the replay is pure and
	// the vote write idempotent, so they cost a few cycles and change
	// nothing.
	for b := 0; b < ng; b++ {
		for um := ^es.res[b]; um != 0; um &= um - 1 {
			k := b*8 + bits.TrailingZeros8(um)
			j := int(pos[k])
			st := mix64(ctrState ^ idxMul[j])
			if zigSlowVoteFromU(st, draws[j], xt[j]) {
				votes[j>>6] |= 1 << uint(j&63)
			}
		}
	}
	edgeScratchPool.Put(es)
}

// PackedBMVotes is PackedZigVotes' v1 (Box–Muller) counterpart. No
// layer shortcuts exist for v1 — every draw evaluates the canonical
// transform — but the hoisted counter state, the precomputed index
// multiplies and the threshold predicate still apply, and votes stay
// bit-identical to evaluating Norm per cell.
func PackedBMVotes(ctrState uint64, idxMul []uint64, xt []float64, votes []uint64) {
	n := len(idxMul)
	for w := 0; w*64 < n; w++ {
		base := w * 64
		nl := n - base
		if nl > 64 {
			nl = 64
		}
		var vote uint64
		for j := 0; j < nl; j++ {
			src := Source{state: mix64(ctrState ^ idxMul[base+j])}
			var bit uint64
			if src.Norm() >= xt[base+j] {
				bit = 1
			}
			vote |= bit << uint(j)
		}
		votes[w] = vote
	}
}

// VoteBMWord is PackedBMVotes' sparse counterpart: it resolves one race
// for the noisy cells of a 64-cell word against the unbounded
// Box–Muller plane, selected by mask, with votes bit-identical to
// evaluating Norm per cell.
func VoteBMWord(ctrState, cellBase uint64, noisy uint64, xt *[64]float64) uint64 {
	var vote uint64
	for m := noisy; m != 0; m &= m - 1 {
		b := uint(bits.TrailingZeros64(m)) & 63
		src := Source{state: mix64(ctrState ^ (cellBase+uint64(b))*idxPrime)}
		if src.Norm() >= xt[b] {
			vote |= 1 << b
		}
	}
	return vote
}
