package rng

// LFSR32 is a 32-bit Galois linear feedback shift register with the
// maximal-length tap polynomial 0xA3000000 (x^32 + x^30 + x^26 + x^25 + 1).
// The paper's normal-operation workload generator (§5.1.4) pairs an LFSR
// with a glibc-style LCG "to avoid repetition of numbers in [a]
// long-running experiment"; we implement the same tandem.
type LFSR32 struct {
	state uint32
}

// NewLFSR32 returns an LFSR seeded with seed; a zero seed is remapped to 1
// because the all-zero state is a fixed point of the register.
func NewLFSR32(seed uint32) *LFSR32 {
	if seed == 0 {
		seed = 1
	}
	return &LFSR32{state: seed}
}

// Next advances the register one step and returns the new state.
func (l *LFSR32) Next() uint32 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb != 0 {
		l.state ^= 0xA3000000
	}
	return l.state
}

// GlibcLCG is the linear congruential generator from glibc's rand(3) in
// its TYPE_0 configuration: x_{n+1} = (1103515245·x_n + 12345) mod 2^31.
// This is the exact recurrence quoted in §5.1.4 of the paper.
type GlibcLCG struct {
	state uint32
}

// NewGlibcLCG returns an LCG seeded with seed (mod 2^31).
func NewGlibcLCG(seed uint32) *GlibcLCG {
	return &GlibcLCG{state: seed & 0x7fffffff}
}

// Next advances the generator and returns the new 31-bit state.
func (g *GlibcLCG) Next() uint32 {
	g.state = (1103515245*g.state + 12345) & 0x7fffffff
	return g.state
}

// WorkloadWriter reproduces the paper's pseudo-random write workload: the
// LFSR produces raw words and is periodically re-seeded from the LCG so the
// combined sequence does not cycle over week-long (simulated) runs.
type WorkloadWriter struct {
	lfsr    *LFSR32
	lcg     *GlibcLCG
	count   int
	reseedN int
}

// NewWorkloadWriter builds the tandem generator. reseedEvery controls how
// many words are drawn from the LFSR before the LCG re-seeds it; the paper
// does not state the interval, so we default to the LFSR period guard of
// 1<<20 words when reseedEvery <= 0.
func NewWorkloadWriter(seed uint32, reseedEvery int) *WorkloadWriter {
	if reseedEvery <= 0 {
		reseedEvery = 1 << 20
	}
	return &WorkloadWriter{
		lfsr:    NewLFSR32(seed),
		lcg:     NewGlibcLCG(seed ^ 0x5deece66),
		reseedN: reseedEvery,
	}
}

// NextWord returns the next 32-bit word of the write workload.
func (w *WorkloadWriter) NextWord() uint32 {
	if w.count >= w.reseedN {
		w.count = 0
		s := w.lcg.Next()
		if s == 0 {
			s = 1
		}
		w.lfsr = NewLFSR32(s)
	}
	w.count++
	return w.lfsr.Next()
}

// Fill writes len(buf) workload bytes into buf, little-endian word order.
func (w *WorkloadWriter) Fill(buf []byte) {
	for i := 0; i < len(buf); i += 4 {
		v := w.NextWord()
		for k := 0; k < 4 && i+k < len(buf); k++ {
			buf[i+k] = byte(v >> (8 * k))
		}
	}
}
