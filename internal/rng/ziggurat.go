package rng

import "math"

// Noise plane v2: a ziggurat Gaussian sampler for the capture hot path.
//
// The Box–Muller transform behind Source.Norm costs two transcendentals
// (log, cos) plus a square root per draw — ~85% of the per-cell capture
// budget. The ziggurat method replaces that with one 64-bit draw, two
// table lookups, and a compare on the common path; the slow paths (edge
// of a layer, the tail beyond r ≈ 3.44) fall back to explicit density
// evaluation and are taken a few percent of the time.
//
// # Truncation at ±8σ
//
// NormZiggurat is truncated: it never returns a value with |x| >
// NormZigguratBound (8). The non-tail layers are geometrically bounded
// by x[0] = v/φ(r) ≈ 3.72; the tail sampler rejects the (astronomically
// rare) excursions beyond 8. P(|N(0,1)| > 8) ≈ 1.2e-15, i.e. one draw
// in ~8e14 — for the simulator's thermal noise (σ ≈ 1.2 mV) that is a
// once-per-geological-epoch event with no physical meaning, while the
// hard bound is what makes deterministic-cell pruning in the SRAM
// capture engine *exact*: a cell whose decision variable exceeds
// 8σ·sigma resolves identically on every race, so its noise draws can
// be skipped without changing a single bit.
const NormZigguratBound = 8.0

// 128 layers with the canonical Marsaglia–Tsang base point: r is the
// start of the tail and v the common layer area for the unnormalized
// density exp(-x²/2).
const (
	zigLayers = 128
	zigR      = 3.442619855899
	zigV      = 9.91256303526217e-3
)

// zigX[i] is the right edge of layer i (zigX[0] = v/φ(r) is the base
// layer's pseudo-width, zigX[1] = r, decreasing to zigX[128] = 0);
// zigF[i] = exp(-zigX[i]²/2) is the density at that edge.
var (
	zigX [zigLayers + 1]float64
	zigF [zigLayers + 1]float64
)

func init() {
	f := func(x float64) float64 { return math.Exp(-0.5 * x * x) }
	zigX[1] = zigR
	zigF[1] = f(zigR)
	zigX[0] = zigV / zigF[1]
	zigF[0] = 1 // unused: the base layer accepts geometrically or tails
	for i := 1; i < zigLayers; i++ {
		// Each layer has area v: the next edge satisfies
		// φ(x[i+1]) = φ(x[i]) + v/x[i].
		fNext := zigF[i] + zigV/zigX[i]
		if fNext >= 1 {
			zigX[i+1] = 0
			zigF[i+1] = 1
			continue
		}
		zigX[i+1] = math.Sqrt(-2 * math.Log(fNext))
		zigF[i+1] = fNext
	}
	initVoteKernelTables()
}

// NormZiggurat returns a standard-normal variate truncated at
// ±NormZigguratBound using the ziggurat method. It is a drop-in,
// faster alternative to Norm with a different (deterministic) mapping
// from the underlying bit stream, so the two samplers are distinct
// noise-generation versions: an array's NoiseGen selects one and the
// choice is persisted with its state.
func (s *Source) NormZiggurat() float64 {
	for {
		u := s.Uint64()
		i := u & (zigLayers - 1)                // layer index, bits 0..6
		neg := u&zigLayers != 0                 // sign, bit 7
		m := float64(u>>11) * (1.0 / (1 << 53)) // uniform [0,1), bits 11..63
		x := m * zigX[i]
		if x < zigX[i+1] {
			// Entirely inside the next layer's footprint: under the
			// density at every height of this layer.
			if neg {
				return -x
			}
			return x
		}
		if i == 0 {
			// Base layer, beyond r: sample the exact tail by Marsaglia's
			// exponential rejection, truncated at the bound.
			for {
				ex := -math.Log(s.Float64()) / zigR
				ey := -math.Log(s.Float64())
				if ey+ey > ex*ex && zigR+ex <= NormZigguratBound {
					if neg {
						return -(zigR + ex)
					}
					return zigR + ex
				}
			}
		}
		// Edge of layer i: accept against the true density.
		if zigF[i]+s.Float64()*(zigF[i+1]-zigF[i]) < math.Exp(-0.5*x*x) {
			if neg {
				return -x
			}
			return x
		}
	}
}

// NormZig returns the v2 (ziggurat, ±8σ-truncated) standard-normal
// variate at (counter, index) — the first NormZiggurat draw of
// At(counter, index), without the allocation. Like Norm, it is a pure
// function of (key, counter, index), so any evaluation order or
// sharding yields identical noise planes.
func (s Stream) NormZig(counter, index uint64) float64 {
	src := Source{state: s.stateAt(counter, index)}
	return src.NormZiggurat()
}

// NormZigFromCtr is NormZig with the counter half of the coordinate
// derivation pre-hoisted (Stream.CtrState): the word-parallel capture
// kernel computes the counter state once per race and pays only the
// index mix plus the ziggurat common path per cell. The common path is
// written out inline — two SplitMix64 finalizers, one layer lookup, one
// multiply, one compare — and the rare non-accepting draws (layer edge,
// base-layer tail; a few percent) fall back to the canonical
// NormZiggurat on a Source rebuilt from the same state, which replays
// the identical first Uint64 and continues the identical tape. The
// returned variate is bit-identical to NormZig(counter, index) for
// every coordinate.
func NormZigFromCtr(ctrState, index uint64) float64 {
	st := mix64(ctrState ^ index*idxPrime)
	// First Uint64 of Source{state: st}, inline: Weyl step + finalizer.
	z := st + weylGamma
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	u := z ^ (z >> 31)
	i := u & (zigLayers - 1)
	m := float64(u>>11) * (1.0 / (1 << 53))
	x := m * zigX[i]
	if x < zigX[i+1] {
		if u&zigLayers != 0 {
			return -x
		}
		return x
	}
	src := Source{state: st}
	return src.NormZiggurat()
}
