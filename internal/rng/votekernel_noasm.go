//go:build !amd64

package rng

// Non-amd64 hosts always run the portable packed-vote pass. Kept a
// var (never assigned outside tests) so test helpers that restore it
// compile on every platform.
var haveAVX512 = false

func packedZigVotesAVX512(ctrState uint64, idxMul *uint64, nWords uint64,
	classTab *uint64, xtLo *float32, xtHi *float32,
	votes *uint64, slow *uint64, draws *uint64) {
	panic("rng: packedZigVotesAVX512 unavailable")
}

func packedZigEdgeAVX512(ctrState uint64, cPos *uint32, nGroups uint64,
	idxMul *uint64, draws *uint64, xt *float64, pack *uint64,
	loHi *float64, resolved *uint8, votes *uint8) {
	panic("rng: packedZigEdgeAVX512 unavailable")
}
