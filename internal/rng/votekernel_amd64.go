//go:build amd64

package rng

// haveAVX512 gates the vectorized packed-vote hot pass. Mutable so the
// package's differential tests can force the portable pass on capable
// hosts; everything outside the tests treats it as a constant.
var haveAVX512 = detectAVX512()

// packedZigVotesAVX512 is the AVX-512 hot pass of PackedZigVotes: it
// resolves nWords full 64-lane words, 8 lanes per instruction, writing
// proven vote masks, the slow-lane masks and each lane's raw draw.
// Implemented in votekernel_amd64.s; only called when haveAVX512 is
// true.
//
//go:noescape
func packedZigVotesAVX512(ctrState uint64, idxMul *uint64, nWords uint64,
	classTab *uint64, xtLo *float32, xtHi *float32,
	votes *uint64, slow *uint64, draws *uint64)

// packedZigEdgeAVX512 is the dense slow-lane edge resolver: for
// nGroups*8 compressed lane positions it settles round-1 accepts,
// bounded layer-edge accepts/rejects and the rejects' follow-up draw
// with exact float64 arithmetic, writing one resolved bit and one vote
// bit per lane (bit k of byte k/8). Unresolved lanes replay the
// canonical scalar sampler. Implemented in votekernel_edge_amd64.s.
//
//go:noescape
func packedZigEdgeAVX512(ctrState uint64, cPos *uint32, nGroups uint64,
	idxMul *uint64, draws *uint64, xt *float64, pack *uint64,
	loHi *float64, resolved *uint8, votes *uint8)

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// detectAVX512 reports whether the host and OS support the AVX-512
// F/DQ/VL instructions the kernel uses (vpmullq, vcvtuqq2ps, gathers,
// byte opmask ops, 256-bit float32 mask compares).
func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c&osxsave == 0 {
		return false
	}
	// OS must enable XMM+YMM (bits 1-2) and opmask+ZMM (bits 5-7) state.
	xlo, _ := xgetbv()
	if xlo&0x06 != 0x06 || xlo&0xe0 != 0xe0 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	const avx512dq = 1 << 17
	const avx512vl = 1 << 31
	return b&avx512f != 0 && b&avx512dq != 0 && b&avx512vl != 0
}
