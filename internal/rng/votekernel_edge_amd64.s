//go:build amd64

// Dense AVX-512 edge resolver for the packed ziggurat vote kernel.
// Generated to match the exact semantics of fixSlowLanes's scalar
// replay: for each compressed slow lane it settles, with exact float64
// arithmetic, (a) round-1 common-path accepts the float32 classifier
// could not prove, (b) layer-edge draws whose height clears the
// precomputed exp bounds, and (c) for edge rejects, the next draw's
// common-path accept. Lanes it cannot settle (base-layer tail draws,
// exp-bound gaps, twice-rejected draws) stay unresolved and replay the
// canonical scalar sampler. Soundness: a lane is marked resolved only
// when the computed outcome is bit-identical to the canonical tape.

#include "textflag.h"

// func packedZigEdgeAVX512(ctrState uint64, cPos *uint32, nGroups uint64,
//	idxMul *uint64, draws *uint64, xt *float64, pack *uint64,
//	loHi *float64, resolved *uint8, votes *uint8)
TEXT ·packedZigEdgeAVX512(SB), NOSPLIT, $0-80
	MOVQ ctrState+0(FP), AX
	MOVQ cPos+8(FP), R8
	MOVQ nGroups+16(FP), CX
	MOVQ idxMul+24(FP), R9
	MOVQ draws+32(FP), R10
	MOVQ xt+40(FP), R11
	MOVQ pack+48(FP), R12
	MOVQ loHi+56(FP), R13
	MOVQ resolved+64(FP), R14
	MOVQ votes+72(FP), R15

	VPBROADCASTQ AX, Z20 // ctrState
	MOVQ $0xbf58476d1ce4e5b9, AX
	VPBROADCASTQ AX, Z21 // SplitMix64 multiplier 1
	MOVQ $0x94d049bb133111eb, AX
	VPBROADCASTQ AX, Z22 // SplitMix64 multiplier 2
	MOVQ $0x3c6ef372fe94f82a, AX
	VPBROADCASTQ AX, Z23 // 2*weylGamma
	MOVQ $0xdaa66d2c7ddf743f, AX
	VPBROADCASTQ AX, Z24 // 3*weylGamma
	MOVQ $127, AX
	VPBROADCASTQ AX, Z25 // layer mask
	MOVQ $128, AX
	VPBROADCASTQ AX, Z26 // sign bit of the draw
	MOVQ $0x3CA0000000000000, AX
	VPBROADCASTQ AX, Z27 // 2^-53
	MOVQ $7, AX
	VPBROADCASTQ AX, Z28 // zigEdgeSub-1 (subrange clamp)
	VPXORQ Z29, Z29, Z29 // zero

group:
	// Gather the compressed lanes' inputs by position.
	VMOVDQU (R8), Y0
	KXNORB  K0, K0, K1
	VPXORQ  Z1, Z1, Z1
	VPGATHERDQ (R9)(Y0*8), K1, Z1  // idxMul
	KXNORB  K0, K0, K2
	VPXORQ  Z2, Z2, Z2
	VPGATHERDQ (R10)(Y0*8), K2, Z2 // first draw u
	KXNORB  K0, K0, K3
	VPXORQ  Z3, Z3, Z3
	VPGATHERDQ (R11)(Y0*8), K3, Z3 // vote threshold xt

	// st = mix64(ctrState ^ idxMul)
	VPXORQ  Z20, Z1, Z1
	VPSRLQ  $30, Z1, Z4
	VPXORQ  Z4, Z1, Z1
	VPMULLQ Z21, Z1, Z1
	VPSRLQ  $27, Z1, Z4
	VPXORQ  Z4, Z1, Z1
	VPMULLQ Z22, Z1, Z1
	VPSRLQ  $31, Z1, Z4
	VPXORQ  Z4, Z1, Z1

	// Round 1: layer i, mantissa mi, packed-table row ip = i*8.
	VPANDQ  Z25, Z2, Z4
	VPSRLQ  $11, Z2, Z5
	VPSLLQ  $3, Z4, Z6
	KXNORB  K0, K0, K1
	VPXORQ  Z7, Z7, Z7
	VPGATHERQQ (R12)(Z6*8), K1, Z7
	KXNORB  K0, K0, K1
	VPXORQ  Z8, Z8, Z8
	VPGATHERQQ 8(R12)(Z6*8), K1, Z8
	KXNORB  K0, K0, K1
	VPXORQ  Z9, Z9, Z9
	VPGATHERQQ 16(R12)(Z6*8), K1, Z9
	KXNORB  K0, K0, K1
	VPXORQ  Z10, Z10, Z10
	VPGATHERQQ 24(R12)(Z6*8), K1, Z10
	KXNORB  K0, K0, K1
	VPXORQ  Z11, Z11, Z11
	VPGATHERQQ 32(R12)(Z6*8), K1, Z11

	// Exact variate ±x = sign(u) * fl(float64(mi) * zigXScaled[i]).
	VCVTUQQ2PD Z5, Z12
	VMULPD  Z7, Z12, Z12
	VPANDQ  Z26, Z2, Z13
	VPSLLQ  $56, Z13, Z13
	VPORQ   Z13, Z12, Z14
	VPCMPUQ $1, Z8, Z5, K4   // round-1 accept: mi < zigAccept[i]
	VCMPPD  $0x0D, Z3, Z14, K5 // vote: ±x >= xt
	VPTESTNMQ Z4, Z4, K6     // base layer (tail draw): unresolved

	// Edge height draw: u2 = fin(st + 2*gamma); L = zigF + f*zigEdgeD
	// with the canonical mul-then-add rounding (no FMA).
	VPADDQ  Z23, Z1, Z15
	VPSRLQ  $30, Z15, Z16
	VPXORQ  Z16, Z15, Z15
	VPMULLQ Z21, Z15, Z15
	VPSRLQ  $27, Z15, Z16
	VPXORQ  Z16, Z15, Z15
	VPMULLQ Z22, Z15, Z15
	VPSRLQ  $31, Z15, Z16
	VPXORQ  Z16, Z15, Z15
	VPSRLQ  $11, Z15, Z15
	VCVTUQQ2PD Z15, Z15
	VMULPD  Z27, Z15, Z15
	VMULPD  Z10, Z15, Z15
	VADDPD  Z9, Z15, Z15

	// Exp-bound subrange s = clamp(int((mi-acc)*scale), 0, 7); the
	// clamp also defuses the garbage of non-edge lanes before the
	// bounds gather. LoHi row index = (i*8 | s) * 2.
	VPSUBQ  Z8, Z5, Z16
	VCVTUQQ2PD Z16, Z16
	VMULPD  Z11, Z16, Z16
	VCVTTPD2QQ Z16, Z16
	VPMAXSQ Z29, Z16, Z16
	VPMINSQ Z28, Z16, Z16
	VPORQ   Z6, Z16, Z16
	VPSLLQ  $1, Z16, Z16
	KXNORB  K0, K0, K1
	VPXORQ  Z17, Z17, Z17
	VPGATHERQQ (R13)(Z16*8), K1, Z17
	KXNORB  K0, K0, K2
	VPXORQ  Z18, Z18, Z18
	VPGATHERQQ 8(R13)(Z16*8), K2, Z18
	VCMPPD  $0x11, Z17, Z15, K7 // L < Lo: edge accept

	// Round 2 (edge rejects): u3 = fin(st + 3*gamma), common-path
	// accept test and exact vote on the new draw.
	VPADDQ  Z24, Z1, Z19
	VPSRLQ  $30, Z19, Z16
	VPXORQ  Z16, Z19, Z19
	VPMULLQ Z21, Z19, Z19
	VPSRLQ  $27, Z19, Z16
	VPXORQ  Z16, Z19, Z19
	VPMULLQ Z22, Z19, Z19
	VPSRLQ  $31, Z19, Z16
	VPXORQ  Z16, Z19, Z19
	VPANDQ  Z25, Z19, Z4
	VPSRLQ  $11, Z19, Z5
	VPSLLQ  $3, Z4, Z6
	KXNORB  K0, K0, K1
	VPXORQ  Z7, Z7, Z7
	VPGATHERQQ (R12)(Z6*8), K1, Z7
	KXNORB  K0, K0, K2
	VPXORQ  Z8, Z8, Z8
	VPGATHERQQ 8(R12)(Z6*8), K2, Z8
	VCVTUQQ2PD Z5, Z12
	VMULPD  Z7, Z12, Z12
	VPANDQ  Z26, Z19, Z13
	VPSLLQ  $56, Z13, Z13
	VPORQ   Z13, Z12, Z12
	VCMPPD  $0x0D, Z18, Z15, K1 // edge reject: L >= Hi
	VPCMPUQ $1, Z8, Z5, K2      // round-2 accept: mi3 < zigAccept[i3]
	VCMPPD  $0x0D, Z3, Z12, K3  // round-2 vote: ±x3 >= xt

	// Combine: resolved = r1acc | edgeAcc | (edgeRej & r2acc), with the
	// edge masks confined to lanes that actually reached the edge test.
	KORB    K6, K4, K6
	KNOTB   K6, K6            // edge-active = ^(r1acc | tail)
	KANDB   K6, K7, K7
	KANDB   K6, K1, K1
	KANDB   K2, K1, K1        // edgeRej & r2acc
	KORB    K7, K4, K4        // r1acc | edgeAcc (vote from round-1 ±x)
	KANDB   K1, K3, K3        // round-2 vote contribution
	KORB    K4, K1, K1        // resolved
	KANDB   K5, K4, K4
	KORB    K3, K4, K4        // vote
	KMOVB   K1, AX
	MOVB    AL, (R14)
	KMOVB   K4, AX
	MOVB    AL, (R15)

	INCQ R14
	INCQ R15
	ADDQ $32, R8
	DECQ CX
	JNZ  group
	VZEROUPPER
	RET
