//go:build amd64

// Code generated for the packed ziggurat vote kernel. The hot pass
// resolves 16 lanes per classifier block: vpmullq SplitMix64 hash
// chains derive each lane's raw draw (8 lanes per instruction), one
// vpgatherqq per 8 lanes fetches the packed per-layer float32
// classifier, vpermt2d merges qword-lane pairs into 16-lane float32
// vectors, and float32 compares against the per-cell threshold
// brackets prove votes (or mark lanes slow for the exact scalar
// resolver). Raw draws are stored so slow lanes resume the canonical
// tape without re-hashing.

#include "textflag.h"

// func packedZigVotesAVX512(ctrState uint64, idxMul *uint64, nWords uint64,
//	classTab *uint64, xtLo *float32, xtHi *float32,
//	votes *uint64, slow *uint64, draws *uint64)
TEXT ·packedZigVotesAVX512(SB), NOSPLIT, $0-72
	MOVQ ctrState+0(FP), AX
	MOVQ idxMul+8(FP), R8
	MOVQ nWords+16(FP), CX
	MOVQ classTab+24(FP), R12
	MOVQ xtLo+32(FP), R9
	MOVQ xtHi+40(FP), R14
	MOVQ votes+48(FP), R10
	MOVQ slow+56(FP), R11
	MOVQ draws+64(FP), DI

	VPBROADCASTQ AX, Z20                 // ctrState
	MOVQ $0xbf58476d1ce4e5b9, BX
	VPBROADCASTQ BX, Z21                 // SplitMix64 multiplier 1
	MOVQ $0x94d049bb133111eb, BX
	VPBROADCASTQ BX, Z22                 // SplitMix64 multiplier 2
	MOVQ $0x9e3779b97f4a7c15, BX
	VPBROADCASTQ BX, Z23                 // Weyl gamma
	MOVQ $127, BX
	VPBROADCASTQ BX, Z24                 // layer mask
	MOVL $0x80000000, BX
	VPBROADCASTD BX, Z25                 // float32 sign bit
	MOVQ $lowdw<>(SB), BX
	VMOVDQU64 (BX), Z26                  // vpermt2d: low dwords of 16 qwords

word:
	XORQ DX, DX                          // vote accumulator
	XORQ SI, SI                          // slow accumulator

	// ---- lanes 0-15 ----
	VMOVDQU64 0(R8), Z0
	VPXORQ Z20, Z0, Z0           // ctrState ^ idxMul
	VPSRLQ $30, Z0, Z1            // mix64
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // per-lane Source state
	VPADDQ Z23, Z0, Z0           // Weyl step
	VPSRLQ $30, Z0, Z1            // output finalizer
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // u = raw draw
	VMOVDQU64 Z0, 0(DI)          // save draws for the slow resolver
	VMOVDQU64 64(R8), Z6
	VPXORQ Z20, Z6, Z6           // ctrState ^ idxMul
	VPSRLQ $30, Z6, Z1            // mix64
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // per-lane Source state
	VPADDQ Z23, Z6, Z6           // Weyl step
	VPSRLQ $30, Z6, Z1            // output finalizer
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // u = raw draw
	VMOVDQU64 Z6, 64(DI)          // save draws for the slow resolver
	VPANDQ Z24, Z0, Z2                   // layer indices, lanes 0-7
	KXNORB K0, K0, K1
	VPXORQ Z5, Z5, Z5                    // break gather output dependency
	VPGATHERQQ (R12)(Z2*8), K1, Z5       // packed {xScaledF32 | acceptF32<<32}
	VPANDQ Z24, Z6, Z7                   // layer indices, lanes 8-15
	KXNORB K0, K0, K2
	VPXORQ Z8, Z8, Z8
	VPGATHERQQ (R12)(Z7*8), K2, Z8
	VPSRLQ $11, Z0, Z3                   // 53-bit mantissas
	VPSRLQ $11, Z6, Z9
	VMOVDQA64 Z5, Z10
	VPERMT2D Z8, Z26, Z10                // xScaledF32, 16 float32 lanes
	VPSRLQ $32, Z5, Z5
	VPSRLQ $32, Z8, Z8
	VPERMT2D Z8, Z26, Z5                 // acceptF32, 16 float32 lanes
	VCVTUQQ2PS Z3, Y12                   // mf = float32(mantissa)
	VCVTUQQ2PS Z9, Y13
	VINSERTF32X8 $1, Y13, Z12, Z12       // mf, 16 lanes
	VMULPS Z10, Z12, Z13                 // ys = mf * xScaledF32
	VMOVDQA64 Z0, Z11
	VPERMT2D Z6, Z26, Z11                // u low dwords, 16 lanes
	VPSLLD $24, Z11, Z11                 // draw bit 7 -> float32 sign bit
	VPANDD Z25, Z11, Z11
	VPORD Z11, Z13, Z13                  // signed variate approximation
	VCMPPS $0x11, Z5, Z12, K3            // mf < acceptF32: proven common path
	VCMPPS $0x0D, 0(R14), Z13, K4    // ys >= xtHi: proven vote 1
	VCMPPS $0x11, 0(R9), Z13, K5     // ys < xtLo: proven vote 0
	KORW K5, K4, K6
	KANDW K6, K3, K6
	KNOTW K6, K6                         // slow = !(fast && proven)
	KMOVW K4, R13
	KMOVW K6, R15
	ORQ R13, DX
	ORQ R15, SI

	// ---- lanes 16-31 ----
	VMOVDQU64 128(R8), Z0
	VPXORQ Z20, Z0, Z0           // ctrState ^ idxMul
	VPSRLQ $30, Z0, Z1            // mix64
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // per-lane Source state
	VPADDQ Z23, Z0, Z0           // Weyl step
	VPSRLQ $30, Z0, Z1            // output finalizer
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // u = raw draw
	VMOVDQU64 Z0, 128(DI)          // save draws for the slow resolver
	VMOVDQU64 192(R8), Z6
	VPXORQ Z20, Z6, Z6           // ctrState ^ idxMul
	VPSRLQ $30, Z6, Z1            // mix64
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // per-lane Source state
	VPADDQ Z23, Z6, Z6           // Weyl step
	VPSRLQ $30, Z6, Z1            // output finalizer
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // u = raw draw
	VMOVDQU64 Z6, 192(DI)          // save draws for the slow resolver
	VPANDQ Z24, Z0, Z2                   // layer indices, lanes 0-7
	KXNORB K0, K0, K1
	VPXORQ Z5, Z5, Z5                    // break gather output dependency
	VPGATHERQQ (R12)(Z2*8), K1, Z5       // packed {xScaledF32 | acceptF32<<32}
	VPANDQ Z24, Z6, Z7                   // layer indices, lanes 8-15
	KXNORB K0, K0, K2
	VPXORQ Z8, Z8, Z8
	VPGATHERQQ (R12)(Z7*8), K2, Z8
	VPSRLQ $11, Z0, Z3                   // 53-bit mantissas
	VPSRLQ $11, Z6, Z9
	VMOVDQA64 Z5, Z10
	VPERMT2D Z8, Z26, Z10                // xScaledF32, 16 float32 lanes
	VPSRLQ $32, Z5, Z5
	VPSRLQ $32, Z8, Z8
	VPERMT2D Z8, Z26, Z5                 // acceptF32, 16 float32 lanes
	VCVTUQQ2PS Z3, Y12                   // mf = float32(mantissa)
	VCVTUQQ2PS Z9, Y13
	VINSERTF32X8 $1, Y13, Z12, Z12       // mf, 16 lanes
	VMULPS Z10, Z12, Z13                 // ys = mf * xScaledF32
	VMOVDQA64 Z0, Z11
	VPERMT2D Z6, Z26, Z11                // u low dwords, 16 lanes
	VPSLLD $24, Z11, Z11                 // draw bit 7 -> float32 sign bit
	VPANDD Z25, Z11, Z11
	VPORD Z11, Z13, Z13                  // signed variate approximation
	VCMPPS $0x11, Z5, Z12, K3            // mf < acceptF32: proven common path
	VCMPPS $0x0D, 64(R14), Z13, K4    // ys >= xtHi: proven vote 1
	VCMPPS $0x11, 64(R9), Z13, K5     // ys < xtLo: proven vote 0
	KORW K5, K4, K6
	KANDW K6, K3, K6
	KNOTW K6, K6                         // slow = !(fast && proven)
	KMOVW K4, R13
	KMOVW K6, R15
	SHLQ $16, R13
	SHLQ $16, R15
	ORQ R13, DX
	ORQ R15, SI

	// ---- lanes 32-47 ----
	VMOVDQU64 256(R8), Z0
	VPXORQ Z20, Z0, Z0           // ctrState ^ idxMul
	VPSRLQ $30, Z0, Z1            // mix64
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // per-lane Source state
	VPADDQ Z23, Z0, Z0           // Weyl step
	VPSRLQ $30, Z0, Z1            // output finalizer
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // u = raw draw
	VMOVDQU64 Z0, 256(DI)          // save draws for the slow resolver
	VMOVDQU64 320(R8), Z6
	VPXORQ Z20, Z6, Z6           // ctrState ^ idxMul
	VPSRLQ $30, Z6, Z1            // mix64
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // per-lane Source state
	VPADDQ Z23, Z6, Z6           // Weyl step
	VPSRLQ $30, Z6, Z1            // output finalizer
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // u = raw draw
	VMOVDQU64 Z6, 320(DI)          // save draws for the slow resolver
	VPANDQ Z24, Z0, Z2                   // layer indices, lanes 0-7
	KXNORB K0, K0, K1
	VPXORQ Z5, Z5, Z5                    // break gather output dependency
	VPGATHERQQ (R12)(Z2*8), K1, Z5       // packed {xScaledF32 | acceptF32<<32}
	VPANDQ Z24, Z6, Z7                   // layer indices, lanes 8-15
	KXNORB K0, K0, K2
	VPXORQ Z8, Z8, Z8
	VPGATHERQQ (R12)(Z7*8), K2, Z8
	VPSRLQ $11, Z0, Z3                   // 53-bit mantissas
	VPSRLQ $11, Z6, Z9
	VMOVDQA64 Z5, Z10
	VPERMT2D Z8, Z26, Z10                // xScaledF32, 16 float32 lanes
	VPSRLQ $32, Z5, Z5
	VPSRLQ $32, Z8, Z8
	VPERMT2D Z8, Z26, Z5                 // acceptF32, 16 float32 lanes
	VCVTUQQ2PS Z3, Y12                   // mf = float32(mantissa)
	VCVTUQQ2PS Z9, Y13
	VINSERTF32X8 $1, Y13, Z12, Z12       // mf, 16 lanes
	VMULPS Z10, Z12, Z13                 // ys = mf * xScaledF32
	VMOVDQA64 Z0, Z11
	VPERMT2D Z6, Z26, Z11                // u low dwords, 16 lanes
	VPSLLD $24, Z11, Z11                 // draw bit 7 -> float32 sign bit
	VPANDD Z25, Z11, Z11
	VPORD Z11, Z13, Z13                  // signed variate approximation
	VCMPPS $0x11, Z5, Z12, K3            // mf < acceptF32: proven common path
	VCMPPS $0x0D, 128(R14), Z13, K4    // ys >= xtHi: proven vote 1
	VCMPPS $0x11, 128(R9), Z13, K5     // ys < xtLo: proven vote 0
	KORW K5, K4, K6
	KANDW K6, K3, K6
	KNOTW K6, K6                         // slow = !(fast && proven)
	KMOVW K4, R13
	KMOVW K6, R15
	SHLQ $32, R13
	SHLQ $32, R15
	ORQ R13, DX
	ORQ R15, SI

	// ---- lanes 48-63 ----
	VMOVDQU64 384(R8), Z0
	VPXORQ Z20, Z0, Z0           // ctrState ^ idxMul
	VPSRLQ $30, Z0, Z1            // mix64
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // per-lane Source state
	VPADDQ Z23, Z0, Z0           // Weyl step
	VPSRLQ $30, Z0, Z1            // output finalizer
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z21, Z0, Z0
	VPSRLQ $27, Z0, Z1
	VPXORQ Z1, Z0, Z0
	VPMULLQ Z22, Z0, Z0
	VPSRLQ $31, Z0, Z1
	VPXORQ Z1, Z0, Z0         // u = raw draw
	VMOVDQU64 Z0, 384(DI)          // save draws for the slow resolver
	VMOVDQU64 448(R8), Z6
	VPXORQ Z20, Z6, Z6           // ctrState ^ idxMul
	VPSRLQ $30, Z6, Z1            // mix64
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // per-lane Source state
	VPADDQ Z23, Z6, Z6           // Weyl step
	VPSRLQ $30, Z6, Z1            // output finalizer
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z21, Z6, Z6
	VPSRLQ $27, Z6, Z1
	VPXORQ Z1, Z6, Z6
	VPMULLQ Z22, Z6, Z6
	VPSRLQ $31, Z6, Z1
	VPXORQ Z1, Z6, Z6         // u = raw draw
	VMOVDQU64 Z6, 448(DI)          // save draws for the slow resolver
	VPANDQ Z24, Z0, Z2                   // layer indices, lanes 0-7
	KXNORB K0, K0, K1
	VPXORQ Z5, Z5, Z5                    // break gather output dependency
	VPGATHERQQ (R12)(Z2*8), K1, Z5       // packed {xScaledF32 | acceptF32<<32}
	VPANDQ Z24, Z6, Z7                   // layer indices, lanes 8-15
	KXNORB K0, K0, K2
	VPXORQ Z8, Z8, Z8
	VPGATHERQQ (R12)(Z7*8), K2, Z8
	VPSRLQ $11, Z0, Z3                   // 53-bit mantissas
	VPSRLQ $11, Z6, Z9
	VMOVDQA64 Z5, Z10
	VPERMT2D Z8, Z26, Z10                // xScaledF32, 16 float32 lanes
	VPSRLQ $32, Z5, Z5
	VPSRLQ $32, Z8, Z8
	VPERMT2D Z8, Z26, Z5                 // acceptF32, 16 float32 lanes
	VCVTUQQ2PS Z3, Y12                   // mf = float32(mantissa)
	VCVTUQQ2PS Z9, Y13
	VINSERTF32X8 $1, Y13, Z12, Z12       // mf, 16 lanes
	VMULPS Z10, Z12, Z13                 // ys = mf * xScaledF32
	VMOVDQA64 Z0, Z11
	VPERMT2D Z6, Z26, Z11                // u low dwords, 16 lanes
	VPSLLD $24, Z11, Z11                 // draw bit 7 -> float32 sign bit
	VPANDD Z25, Z11, Z11
	VPORD Z11, Z13, Z13                  // signed variate approximation
	VCMPPS $0x11, Z5, Z12, K3            // mf < acceptF32: proven common path
	VCMPPS $0x0D, 192(R14), Z13, K4    // ys >= xtHi: proven vote 1
	VCMPPS $0x11, 192(R9), Z13, K5     // ys < xtLo: proven vote 0
	KORW K5, K4, K6
	KANDW K6, K3, K6
	KNOTW K6, K6                         // slow = !(fast && proven)
	KMOVW K4, R13
	KMOVW K6, R15
	SHLQ $48, R13
	SHLQ $48, R15
	ORQ R13, DX
	ORQ R15, SI

	MOVQ DX, (R10)
	MOVQ SI, (R11)
	ADDQ $512, R8
	ADDQ $512, DI
	ADDQ $256, R9
	ADDQ $256, R14
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ word

	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// Dword indices selecting the low dword of each qword lane of
// concat(dst, src) — merges two 8-qword vectors into 16 dwords.
GLOBL lowdw<>(SB), RODATA|NOPTR, $64
DATA lowdw<>+0(SB)/4, $0
DATA lowdw<>+4(SB)/4, $2
DATA lowdw<>+8(SB)/4, $4
DATA lowdw<>+12(SB)/4, $6
DATA lowdw<>+16(SB)/4, $8
DATA lowdw<>+20(SB)/4, $10
DATA lowdw<>+24(SB)/4, $12
DATA lowdw<>+28(SB)/4, $14
DATA lowdw<>+32(SB)/4, $16
DATA lowdw<>+36(SB)/4, $18
DATA lowdw<>+40(SB)/4, $20
DATA lowdw<>+44(SB)/4, $22
DATA lowdw<>+48(SB)/4, $24
DATA lowdw<>+52(SB)/4, $26
DATA lowdw<>+56(SB)/4, $28
DATA lowdw<>+60(SB)/4, $30
