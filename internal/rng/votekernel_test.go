package rng

import (
	"math"
	"testing"
)

// voteRef evaluates the canonical per-cell predicate the capture
// engines use: bias + sigma*NormZig(counter, index) > 0.
func voteRefZig(s Stream, ctr, idx uint64, bias, sigma float64) bool {
	return bias+sigma*s.NormZig(ctr, idx) > 0
}

// TestVoteThresholdExact: for a dense grid of bias/sigma pairs, the
// threshold form `x >= VoteThreshold(bias, sigma)` must agree with the
// direct predicate for draws straddling the boundary.
func TestVoteThresholdExact(t *testing.T) {
	sigmas := []float64{1e-6, 0.3, 1.2, 7.5, 123.4}
	biases := []float64{-500, -9.6, -1.2, -1e-9, 0, 1e-9, 0.7, 9.6, 500}
	for _, sigma := range sigmas {
		for _, bias := range biases {
			xt := VoteThreshold(bias, sigma)
			// Probe the exact boundary and a few ulps either side, plus
			// representative draws across the support.
			probes := []float64{xt, -8, -3.44, -1, 0, 1, 3.44, 8}
			for i, x := 0, xt; i < 4; i++ {
				x = math.Nextafter(x, math.Inf(-1))
				probes = append(probes, x)
			}
			for i, x := 0, xt; i < 4; i++ {
				x = math.Nextafter(x, math.Inf(1))
				probes = append(probes, x)
			}
			for _, x := range probes {
				if math.IsInf(x, 0) || math.IsNaN(x) {
					continue
				}
				want := bias+sigma*x > 0
				got := x >= xt
				if got != want {
					t.Fatalf("bias=%v sigma=%v x=%v: threshold form %v, predicate %v (xt=%v)",
						bias, sigma, x, got, want, xt)
				}
			}
		}
	}
	// Degenerate sigma: constant predicates.
	if xt := VoteThreshold(3, 0); !math.IsInf(xt, -1) {
		t.Fatalf("VoteThreshold(3, 0) = %v, want -Inf", xt)
	}
	if xt := VoteThreshold(-3, 0); !math.IsInf(xt, 1) {
		t.Fatalf("VoteThreshold(-3, 0) = %v, want +Inf", xt)
	}
	if xt := VoteThreshold(0, 0); !math.IsInf(xt, 1) {
		t.Fatalf("VoteThreshold(0, 0) = %v, want +Inf", xt)
	}
}

// TestVoteThresholdSearchAgreesWithWalk: the binary-search fallback and
// the ulp walk must land on the same threshold.
func TestVoteThresholdSearchAgreesWithWalk(t *testing.T) {
	for _, c := range []struct{ bias, sigma float64 }{
		{-4.2, 1.2}, {3.3, 0.7}, {0, 1}, {-1e-30, 1e3}, {1e30, 1e-3},
	} {
		walk := VoteThreshold(c.bias, c.sigma)
		search := voteThresholdSearch(c.bias, c.sigma)
		if walk != search && !(math.IsInf(walk, 0) && walk == search) {
			t.Fatalf("bias=%v sigma=%v: walk %v, search %v", c.bias, c.sigma, walk, search)
		}
	}
}

// packedFixture builds a packed noisy-cell workload: n cells with
// scattered indices and biases spanning locked, mid and razor-thin
// thresholds (all three lock classes asserted present).
func packedFixture(t testing.TB, n int, sigma float64) (idxMul []uint64, xt []float64, xtLo, xtHi []float32, idx []uint64, bias []float64) {
	biasPool := []float64{-9.5, -6, -4.2, -4.131, -1.7, -0.3, -1e-7, 0,
		1e-7, 0.4, 1.9, 4.131, 4.2, 6, 9.5}
	idxMul = make([]uint64, n)
	xt = make([]float64, n)
	xtLo = make([]float32, n)
	xtHi = make([]float32, n)
	idx = make([]uint64, n)
	bias = make([]float64, n)
	var mid, lockPos, lockNeg int
	for j := 0; j < n; j++ {
		idx[j] = uint64(j)*7 + 13 // scattered, strictly increasing
		idxMul[j] = IdxMul(idx[j])
		bias[j] = biasPool[j%len(biasPool)]
		xt[j] = VoteThreshold(bias[j], sigma)
		xtLo[j], xtHi[j] = VoteBoundsF32(xt[j])
		switch {
		case xt[j] <= -ZigLockBound:
			lockPos++
		case xt[j] >= ZigLockBound:
			lockNeg++
		default:
			mid++
		}
	}
	if n >= len(biasPool) && (mid == 0 || lockPos == 0 || lockNeg == 0) {
		t.Fatalf("fixture must cover all threshold classes: mid=%d lockPos=%d lockNeg=%d",
			mid, lockPos, lockNeg)
	}
	return
}

// TestPackedZigVotesMatchesScalarPredicate: the packed kernel must
// reproduce the canonical per-cell predicate bit for bit across many
// races (covering slow-path draws), including tail words.
func TestPackedZigVotesMatchesScalarPredicate(t *testing.T) {
	s := NewStream(0x5eed)
	const sigma = 1.2
	for _, n := range []int{1, 63, 64, 65, 200} {
		idxMul, xt, xtLo, xtHi, idx, bias := packedFixture(t, n, sigma)
		nw := (n + 63) / 64
		votes := make([]uint64, nw)
		slow := make([]uint64, nw)
		draws := make([]uint64, n)
		for ctr := uint64(0); ctr < 500; ctr++ {
			PackedZigVotes(s.CtrState(ctr), idxMul, xt, xtLo, xtHi, votes, slow, draws)
			for j := 0; j < n; j++ {
				want := voteRefZig(s, ctr, idx[j], bias[j], sigma)
				if (votes[j/64]>>(j%64)&1 == 1) != want {
					t.Fatalf("n=%d ctr=%d cell=%d bias=%v: kernel vote %v, scalar %v",
						n, ctr, j, bias[j], votes[j/64]>>(j%64)&1 == 1, want)
				}
			}
		}
	}
}

// TestPackedZigVotesASMMatchesGo: on AVX-512 hosts, the vector and the
// portable hot passes must produce identical vote AND slow masks.
func TestPackedZigVotesASMMatchesGo(t *testing.T) {
	if !haveAVX512 {
		t.Skip("no AVX-512 on this host")
	}
	s := NewStream(0xa5a5)
	const sigma = 1.3
	const n = 64 * 9
	idxMul, _, xtLo, xtHi, _, _ := packedFixture(t, n, sigma)
	const nw = n / 64
	votesA := make([]uint64, nw)
	slowA := make([]uint64, nw)
	drawsA := make([]uint64, n)
	votesG := make([]uint64, nw)
	slowG := make([]uint64, nw)
	drawsG := make([]uint64, n)
	for ctr := uint64(0); ctr < 2000; ctr++ {
		cs := s.CtrState(ctr)
		packedZigVotesAVX512(cs, &idxMul[0], nw, &zigClassF32[0], &xtLo[0], &xtHi[0], &votesA[0], &slowA[0], &drawsA[0])
		packedZigVotesGo(cs, idxMul, xtLo, xtHi, votesG, slowG, drawsG)
		for j := 0; j < n; j++ {
			if drawsA[j] != drawsG[j] {
				t.Fatalf("ctr=%d lane=%d: asm draw %#x, go draw %#x", ctr, j, drawsA[j], drawsG[j])
			}
		}
		for w := 0; w < nw; w++ {
			if slowA[w] != slowG[w] {
				t.Fatalf("ctr=%d word=%d: asm slow %#x, go slow %#x", ctr, w, slowA[w], slowG[w])
			}
			// Vote bits are speculative garbage on slow lanes in both
			// passes; compare only the meaningful ones.
			if keep := ^slowA[w]; votesA[w]&keep != votesG[w]&keep {
				t.Fatalf("ctr=%d word=%d: asm votes %#x, go votes %#x (slow %#x)",
					ctr, w, votesA[w], votesG[w], slowA[w])
			}
		}
	}
}

// TestPackedBMVotesMatchesScalarPredicate: same for the v1 compat path.
func TestPackedBMVotesMatchesScalarPredicate(t *testing.T) {
	s := NewStream(0xb0b)
	const sigma = 1.2
	for _, n := range []int{1, 64, 100} {
		idxMul := make([]uint64, n)
		xt := make([]float64, n)
		bias := make([]float64, n)
		for j := 0; j < n; j++ {
			idxMul[j] = IdxMul(uint64(4096 + j))
			bias[j] = (float64(j%64) - 31.5) * 0.3
			xt[j] = VoteThreshold(bias[j], sigma)
		}
		votes := make([]uint64, (n+63)/64)
		for ctr := uint64(0); ctr < 300; ctr++ {
			PackedBMVotes(s.CtrState(ctr), idxMul, xt, votes)
			for j := 0; j < n; j++ {
				want := bias[j]+sigma*s.Norm(ctr, uint64(4096+j)) > 0
				if (votes[j/64]>>(j%64)&1 == 1) != want {
					t.Fatalf("n=%d ctr=%d cell=%d: kernel vote %v, scalar %v",
						n, ctr, j, votes[j/64]>>(j%64)&1 == 1, want)
				}
			}
		}
	}
}

var sinkU64 uint64

// benchmarkPacked times a packed race over n noisy cells; ns/op covers
// n draws.
func benchmarkPacked(b *testing.B, n int, forceGo bool) {
	if forceGo && !haveAVX512 {
		b.Skip("portable pass is the only pass on this host")
	}
	if forceGo {
		defer func(v bool) { haveAVX512 = v }(haveAVX512)
		haveAVX512 = false
	}
	s := NewStream(0xfeed)
	idxMul, xt, xtLo, xtHi, _, _ := packedFixture(b, n, 1.2)
	votes := make([]uint64, (n+63)/64)
	slow := make([]uint64, (n+63)/64)
	draws := make([]uint64, n)
	b.SetBytes(int64(n))
	var acc uint64
	for i := 0; i < b.N; i++ {
		PackedZigVotes(s.CtrState(uint64(i)), idxMul, xt, xtLo, xtHi, votes, slow, draws)
		acc ^= votes[0]
	}
	sinkU64 = acc
}

func BenchmarkPackedZigVotes8k(b *testing.B)   { benchmarkPacked(b, 8192, false) }
func BenchmarkPackedZigVotes8kGo(b *testing.B) { benchmarkPacked(b, 8192, true) }

// TestFixSlowLanesDenseMatchesScalar: the dense AVX-512 edge resolver
// and the plain scalar replay must produce identical vote words. Large
// n so every race compresses enough slow lanes to exercise full vector
// groups plus a sub-group tail.
func TestFixSlowLanesDenseMatchesScalar(t *testing.T) {
	if !haveAVX512 {
		t.Skip("no AVX-512 on this host")
	}
	s := NewStream(0xdead)
	const sigma = 1.1
	const n = 4096
	idxMul, xt, xtLo, xtHi, _, _ := packedFixture(t, n, sigma)
	const nw = n / 64
	votesD := make([]uint64, nw)
	votesS := make([]uint64, nw)
	slow := make([]uint64, nw)
	slow2 := make([]uint64, nw)
	draws := make([]uint64, n)
	for ctr := uint64(0); ctr < 400; ctr++ {
		cs := s.CtrState(ctr)
		packedZigVotesAVX512(cs, &idxMul[0], nw, &zigClassF32[0], &xtLo[0], &xtHi[0], &votesD[0], &slow[0], &draws[0])
		copy(votesS, votesD)
		copy(slow2, slow)
		fixSlowLanes(cs, idxMul, xt, votesD, slow, draws) // dense path
		haveAVX512 = false
		fixSlowLanes(cs, idxMul, xt, votesS, slow2, draws) // scalar path
		haveAVX512 = true
		for w := 0; w < nw; w++ {
			if votesD[w] != votesS[w] {
				t.Fatalf("ctr=%d word=%d: dense votes %#x, scalar votes %#x (slow %#x)",
					ctr, w, votesD[w], votesS[w], slow2[w])
			}
		}
	}
}
