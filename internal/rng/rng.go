// Package rng provides the deterministic random number generators used
// throughout the Invisible Bits simulator.
//
// Two families live here:
//
//   - Source / SplitMix64 / Gaussian: a fast, seedable, splittable PRNG
//     used to synthesize process variation and per-power-on thermal noise.
//     Determinism matters: a simulated device's manufacturing mismatch is
//     derived from its serial number, so the same device exhibits the same
//     SRAM "fingerprint" across program runs, mirroring real silicon.
//
//   - LFSR32 / GlibcLCG / WorkloadWriter: the exact pseudo-random write
//     workload the paper uses for the normal-operation experiment
//     (§5.1.4): "a 32-bit linear feedback shift register tailed by a
//     linear congruential generator (from glibc,
//     x_{n+1} = 1103515245×x_n + 12345 mod 2^31) as seed generator".
package rng

import (
	"math"
	"math/bits"
)

// Source is a SplitMix64 pseudo-random generator. It passes through a
// 64-bit state with a Weyl increment and a finalizer; it is tiny, fast,
// and has a guaranteed period of 2^64. It is NOT cryptographically
// secure and must never be used for key material (see stegocrypt).
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child source from s. The child's stream is
// decorrelated from the parent's by hashing the parent's next output with
// a distinct odd constant, so subsystems (per-cell mismatch, per-capture
// noise, workload data) can draw independently without interleaving.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() * 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard-normal variate using the Box–Muller transform.
// Only one of the pair is used; the generator is cheap enough that caching
// the second is not worth the state.
func (s *Source) Norm() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// NormScaled returns mean + stddev*Norm().
func (s *Source) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills b with pseudo-random bytes.
func (s *Source) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := s.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	if i < len(b) {
		v := s.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// HashString folds a string into a 64-bit seed using the FNV-1a
// construction. Used to turn device serial numbers into mismatch seeds.
func HashString(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
