package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at step %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewSource(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p := NewSource(7)
	p.Uint64() // account for the draw Split consumed
	matches := 0
	for i := 0; i < 64; i++ {
		if child.Uint64() == p.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("child stream tracks parent stream: %d/64 matches", matches)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSource(99)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := NewSource(123)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := NewSource(2024)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	s := NewSource(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.NormScaled(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v, want ~5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesFillsEveryLength(t *testing.T) {
	s := NewSource(4)
	for n := 0; n <= 33; n++ {
		b := make([]byte, n)
		s.Bytes(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes left a %d-byte buffer all zero", n)
			}
		}
	}
}

func TestHashStringStableAndDistinct(t *testing.T) {
	if HashString("MSP432P401-0001") != HashString("MSP432P401-0001") {
		t.Fatal("HashString not stable")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("HashString collides on trivial inputs")
	}
}

func TestLFSRPeriodNonTrivial(t *testing.T) {
	l := NewLFSR32(1)
	seen0 := false
	start := l.state
	for i := 0; i < 1<<16; i++ {
		v := l.Next()
		if v == 0 {
			seen0 = true
		}
		if v == start && i < 1<<16-1 {
			t.Fatalf("LFSR cycled after only %d steps", i+1)
		}
	}
	if seen0 {
		t.Fatal("LFSR reached the all-zero fixed point")
	}
}

func TestLFSRZeroSeedRemapped(t *testing.T) {
	l := NewLFSR32(0)
	if l.Next() == 0 {
		t.Fatal("zero-seeded LFSR stuck at zero")
	}
}

func TestGlibcLCGKnownSequence(t *testing.T) {
	// With x0 = 1 the glibc TYPE_0 recurrence yields 1103527590 first:
	// (1103515245*1 + 12345) mod 2^31 = 1103527590.
	g := NewGlibcLCG(1)
	want := []uint32{1103527590, 377401575, 662824084, 1147902781, 2035015474}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("LCG step %d = %d, want %d", i, got, w)
		}
	}
}

func TestWorkloadWriterBalanced(t *testing.T) {
	w := NewWorkloadWriter(0xdeadbeef, 1024)
	ones := 0
	const words = 1 << 16
	for i := 0; i < words; i++ {
		v := w.NextWord()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	total := words * 32
	ratio := float64(ones) / float64(total)
	if ratio < 0.49 || ratio > 0.51 {
		t.Fatalf("workload bit ratio = %v, want ~0.5", ratio)
	}
}

func TestWorkloadWriterReseeds(t *testing.T) {
	// With a tiny reseed interval the sequence must differ from a pure LFSR.
	w := NewWorkloadWriter(1, 4)
	l := NewLFSR32(1)
	diverged := false
	for i := 0; i < 64; i++ {
		if w.NextWord() != l.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("workload writer never re-seeded from LCG")
	}
}

func TestWorkloadFillPartialWord(t *testing.T) {
	w := NewWorkloadWriter(7, 0)
	b := make([]byte, 7)
	w.Fill(b)
	nonZero := false
	for _, v := range b {
		if v != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("Fill left buffer zero")
	}
}

func BenchmarkSourceUint64(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkWorkloadWord(b *testing.B) {
	w := NewWorkloadWriter(1, 0)
	for i := 0; i < b.N; i++ {
		_ = w.NextWord()
	}
}
