package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the typed Go client for the ibserve HTTP API. It owns the
// retry policy a human operator should not have to reimplement:
// context-deadline-aware requests, capped exponential backoff with
// jitter, Retry-After honored when the server sends one, and — the part
// that makes retrying SAFE rather than merely persistent — idempotent
// re-submission: a 409 duplicate-campaign whose advertised digest
// matches our own spec's schedule digest means the earlier attempt
// landed and only its response was lost, so Submit reports success.
//
// The zero value is not usable; fill in BaseURL. All other fields
// default sanely.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTP is the underlying client (nil means http.DefaultClient).
	// Point its Transport at faults.HTTPChaos.Transport to storm-test a
	// retry policy.
	HTTP *http.Client
	// MaxAttempts bounds tries per call including the first (<= 0 means
	// 5).
	MaxAttempts int
	// BaseBackoff is the first retry delay (0 means 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 means 5s).
	MaxBackoff time.Duration
	// Rand yields jitter variates in [0,1) (nil means math/rand); pin it
	// in tests for reproducible schedules.
	Rand func() float64
	// Sleep waits out a backoff delay (nil means a context-aware
	// time.Sleep); tests substitute a recorder to run retries on a
	// simulated clock.
	Sleep func(ctx context.Context, d time.Duration) error
	// Logger receives one line per retry (nil discards).
	Logger *slog.Logger
}

// APIError is a typed server rejection: the HTTP status plus the
// machine-readable code and message from the response body. Use
// errors.Is against the sched sentinels (ErrQuotaExceeded, ErrSaturated,
// ErrRateLimited, ErrDraining, ErrStopped, ErrSchedulerDown,
// ErrDuplicateCampaign, ErrSerialInUse) rather than matching codes by
// hand.
type APIError struct {
	StatusCode int
	// Code is the server's machine-readable rejection class.
	Code string
	// Message is the server's human-readable error text.
	Message string
	// Digest is the admitted spec's schedule digest on 409
	// duplicate-campaign rejections.
	Digest string
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("sched client: %d %s: %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("sched client: %d: %s", e.StatusCode, e.Message)
}

// Is maps the wire code back onto the scheduler's error sentinels, so
// client-side and in-process callers share one errors.Is vocabulary.
func (e *APIError) Is(target error) bool {
	switch e.Code {
	case codeQuota:
		return target == ErrQuotaExceeded
	case codeSaturated:
		return target == ErrSaturated
	case codeRateLimited:
		return target == ErrRateLimited
	case codeDraining:
		return target == ErrDraining
	case codeStopped:
		return target == ErrStopped
	case codeDead:
		return target == ErrSchedulerDown
	case codeDuplicate:
		return target == ErrDuplicateCampaign
	case codeSerialInUse:
		return target == ErrSerialInUse
	}
	return false
}

// retryable reports whether a later attempt could succeed: rate limits
// and saturation clear as passes complete, and a stopped or dead
// scheduler is restarted by its supervisor. Draining is a deliberate
// operator decision, not a blip — retrying into it only delays the
// drain — and 4xx rejections (validation, quota, oversize, conflicts)
// will fail identically every time.
func (e *APIError) retryable() bool {
	switch e.Code {
	case codeRateLimited, codeSaturated, codeStopped, codeDead:
		return true
	case codeDraining:
		return false // deliberate, durable, and retrying delays the drain
	}
	return e.StatusCode >= 500
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 5
	}
	return c.MaxAttempts
}

func (c *Client) baseBackoff() time.Duration {
	if c.BaseBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.BaseBackoff
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 5 * time.Second
	}
	return c.MaxBackoff
}

func (c *Client) rand() float64 {
	if c.Rand != nil {
		return c.Rand()
	}
	return rand.Float64()
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) log() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.New(discardHandler{})
}

// backoff computes the delay before attempt n (0-based count of
// completed attempts): capped exponential with equal jitter — half
// deterministic so waits genuinely grow, half random so a thundering
// herd decorrelates. A server-provided Retry-After overrides the
// schedule entirely; the server knows its queue, the client only
// guesses.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := c.baseBackoff() << uint(n)
	if limit := c.maxBackoff(); d > limit || d <= 0 {
		d = limit
	}
	return d/2 + time.Duration(c.rand()*float64(d/2))
}

// parseRetryAfter reads the delay-seconds form of the header (the only
// form ibserve emits).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do runs one HTTP attempt and decodes the response into out (which may
// be nil to discard the body). Non-2xx responses come back as *APIError.
// Network failures and body-read failures return the transport's error.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, rd)
	if err != nil {
		return fmt.Errorf("sched client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain for keep-alive
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("sched client: decode %s %s response: %w", method, path, err)
		}
		return nil
	}
	apiErr := &APIError{
		StatusCode: resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		// A truncated error body still carries the status line; keep
		// the typed error and note the mangling.
		apiErr.Message = fmt.Sprintf("(unreadable error body: %v)", err)
	} else {
		apiErr.Code, apiErr.Message, apiErr.Digest = eb.Code, eb.Error, eb.Digest
	}
	return apiErr
}

// Submit submits a campaign, retrying transient failures. The
// idempotency contract: the spec's schedule digest is computed up
// front, and a 409 duplicate-campaign whose advertised digest equals
// ours is a SUCCESS — our earlier attempt was admitted and only its
// response was lost in transit. A 409 with a different digest (or none:
// the ID belongs to a quarantined campaign) is a genuine conflict and
// returns the *APIError.
func (c *Client) Submit(ctx context.Context, sub Submission) error {
	body, err := json.Marshal(sub)
	if err != nil {
		return fmt.Errorf("sched client: encode submission: %w", err)
	}
	digest := sub.Spec.ScheduleDigest()
	return c.retry(ctx, "submit "+sub.Spec.ID, func() (bool, error) {
		err := c.do(ctx, http.MethodPost, "/api/submit", body, nil)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == codeDuplicate && apiErr.Digest == digest {
			return false, nil // the lost-response case: already admitted
		}
		return c.classify(err)
	})
}

// Status fetches the scheduler-wide status snapshot.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	err := c.retry(ctx, "status", func() (bool, error) {
		st = Status{}
		return c.classify(c.do(ctx, http.MethodGet, "/api/status", nil, &st))
	})
	return st, err
}

// Campaign fetches one campaign's status. Unknown IDs return an
// *APIError with StatusCode 404.
func (c *Client) Campaign(ctx context.Context, id string) (CampaignStatus, error) {
	var cs CampaignStatus
	err := c.retry(ctx, "campaign "+id, func() (bool, error) {
		cs = CampaignStatus{}
		return c.classify(c.do(ctx, http.MethodGet, "/api/campaigns/"+id, nil, &cs))
	})
	return cs, err
}

// Drain asks the server to stop admitting and finish in-flight work.
// The server acknowledges with 202 and drains in the background; poll
// Status (or use AwaitQuiescent) for completion. Drain is idempotent —
// retries after a lost 202 re-request the same drain.
func (c *Client) Drain(ctx context.Context) error {
	return c.retry(ctx, "drain", func() (bool, error) {
		return c.classify(c.do(ctx, http.MethodPost, "/api/drain", nil, nil))
	})
}

// AwaitQuiescent polls Status every interval (0 means 50ms) until the
// scheduler reports draining with zero active campaigns, the scheduler
// dies, or ctx expires.
func (c *Client) AwaitQuiescent(ctx context.Context, interval time.Duration) (Status, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx)
		if err == nil && st.Drain && st.Active == 0 {
			return st, nil
		}
		if err != nil && errors.Is(err, ErrSchedulerDown) {
			return st, err
		}
		if serr := c.sleep(ctx, interval); serr != nil {
			return st, serr
		}
	}
}

// AwaitCampaign polls one campaign every interval (0 means 50ms) until
// it leaves the "queued" state (which covers waiting and mid-soak) or
// ctx expires.
func (c *Client) AwaitCampaign(ctx context.Context, id string, interval time.Duration) (CampaignStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		cs, err := c.Campaign(ctx, id)
		if err == nil && cs.State != "queued" {
			return cs, nil
		}
		if err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && !apiErr.retryable() {
				return cs, err
			}
		}
		if serr := c.sleep(ctx, interval); serr != nil {
			return cs, serr
		}
	}
}

// classify sorts one attempt's outcome for the retry loop: done, retry,
// or give up. Network-layer errors (no HTTP status at all) are always
// worth retrying — for non-idempotent submits that is safe precisely
// because of the digest handshake in Submit.
func (c *Client) classify(err error) (retry bool, _ error) {
	if err == nil {
		return false, nil
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.retryable(), err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, err
	}
	return true, err // transport-level: dropped conn, reset, lost response
}

// retry drives attempts of op until success, a non-retryable error, the
// attempt budget, or ctx. op reports (retryable, error).
func (c *Client) retry(ctx context.Context, what string, op func() (bool, error)) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%s: %w (last attempt: %v)", what, err, lastErr)
			}
			return fmt.Errorf("%s: %w", what, err)
		}
		retryable, err := op()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt+1 >= c.maxAttempts() {
			return fmt.Errorf("sched client: %s failed after %d attempt(s): %w", what, attempt+1, err)
		}
		var retryAfter time.Duration
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			retryAfter = apiErr.RetryAfter
		}
		d := c.backoff(attempt, retryAfter)
		c.log().Info("retrying", "op", what, "attempt", attempt+1, "delay", d, "error", err)
		if serr := c.sleep(ctx, d); serr != nil {
			return fmt.Errorf("%s: %w (last attempt: %v)", what, serr, lastErr)
		}
	}
}
