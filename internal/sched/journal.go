package sched

import (
	"fmt"

	"invisiblebits/internal/core"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/storage"
	"invisiblebits/internal/wal"
)

// The scheduler journal is the PR 5 campaign write-ahead log extended
// to service scope: ONE journal records the tenant table, every
// admission, every batch (pass) assignment, and every per-slot phase
// transition of every in-flight campaign, interleaved. Killing the
// whole service at any append and resuming replays every campaign to a
// bit-identical outcome, because the same invariants hold at fleet
// scale that held for a single campaign:
//
//   - device identity is a pure function of (model, serial), so a slot
//     that never reached a checkpoint restarts from scratch
//     deterministically;
//   - aging composes over slice sequences and capture noise is
//     counter-derived from device state, so HOW slices were packed into
//     chamber passes cannot change any carrier's final image — batching
//     is a throughput decision, invisible to the physics;
//   - a record is acted on only after its append fsynced, so the disk
//     always holds a prefix of the truth.
//
// Per-slot records therefore validate per (campaign, slot) stream —
// monotonic progress, checkpoint consistency — while streams from
// different campaigns may interleave arbitrarily (concurrent slot
// goroutines race to the journal mutex). Global sequence numbers must
// still be gapless: a gap means a lost append, and replay fails closed.
const (
	entryTenant   = "tenant"   // tenant admitted to the table, with its effective quota
	entrySubmit   = "submit"   // campaign admitted: spec.json durable, queued
	entryResume   = "resume"   // a new scheduler process took over
	entryDrain    = "drain"    // drain initiated: no further admissions, ever
	entryPass     = "pass"     // chamber pass planned: members + operating point + quantum
	entryPrepared = "prepared" // slot payload written, conditions elevated
	entrySlice    = "slice"    // slot absorbed one stress slice
	entryCkpt     = "ckpt"     // slot image + rig state durably checkpointed
	entryCkptBad  = "ckptbad"  // a checkpoint image failed verification; struck from history
	entryEncoded  = "encoded"  // slot record minted, final image saved
	entryReroute  = "reroute"  // slot re-routed to a spare carrier, restarting from scratch
	entryDone     = "done"     // campaign sealed: result.json written
	entryFailed   = "failed"   // campaign terminally failed with a typed, per-tenant error
	// entryQuarantined marks a campaign whose on-disk state is
	// unrecoverable (spec.json lost, corrupt, or digest-mismatched — the
	// message itself is gone). A resuming scheduler appends it instead of
	// refusing to start: the affected campaign is terminally parked while
	// every other tenant resumes bit-identically.
	entryQuarantined = "quarantined"
)

// Quota bounds one tenant's slice of the shared pool. Zero fields are
// unlimited.
type Quota struct {
	// MaxCampaigns caps the tenant's concurrently admitted (non-terminal)
	// campaigns.
	MaxCampaigns int `json:"max_campaigns,omitempty"`
	// MaxDevices caps the carriers (serials + spares) the tenant's
	// non-terminal campaigns may hold at once.
	MaxDevices int `json:"max_devices,omitempty"`
	// MaxChamberHours caps the tenant's cumulative chamber-hour budget,
	// charged at admission from the schedule estimate.
	MaxChamberHours float64 `json:"max_chamber_hours,omitempty"`
}

// Entry is one scheduler journal record. Fields are a union over the
// record kinds; Slot is -1 for records that do not concern a slot.
type Entry struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`

	// Tenant names the quota owner (tenant and submit records).
	Tenant string `json:"tenant,omitempty"`
	// Quota is the tenant's effective quota at admission.
	Quota *Quota `json:"quota,omitempty"`

	// Campaign names the campaign the record concerns.
	Campaign string `json:"campaign,omitempty"`
	// Digest is the campaign's schedule digest (submit records); Resume
	// refuses a spec.json that no longer reproduces it.
	Digest string `json:"digest,omitempty"`
	// Slots is the stripe width (submit records).
	Slots int `json:"slots,omitempty"`
	// Spares lists the campaign's reserve serials (submit records).
	Spares []string `json:"spares,omitempty"`
	// EstHours is the chamber-hour estimate charged against the
	// tenant's budget at admission.
	EstHours float64 `json:"est_hours,omitempty"`

	// Members lists the campaigns coalesced into a pass; VAccV/TAccC/
	// Quantum/Setup describe the shared operating point, slice length,
	// and chamber re-targeting cost (pass records).
	Members []string `json:"members,omitempty"`
	VAccV   float64  `json:"v,omitempty"`
	TAccC   float64  `json:"t,omitempty"`
	Quantum float64  `json:"quantum,omitempty"`
	Setup   float64  `json:"setup,omitempty"`

	// AtHours is the shared chamber clock when the record was appended
	// (submit, pass, drain, done, failed) — the latency bookkeeping.
	AtHours float64 `json:"at_hours,omitempty"`

	// Slot-stream fields, mirroring the campaign journal.
	Slot    int          `json:"slot"`
	Applied float64      `json:"applied_hours,omitempty"`
	Total   float64      `json:"total_hours,omitempty"`
	Image   string       `json:"image,omitempty"`
	Rig     *rig.State   `json:"rig,omitempty"`
	Record  *core.Record `json:"record,omitempty"`

	// From/To are the serial swap of a reroute record.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// Error is the terminal failure (failed records).
	Error string `json:"error,omitempty"`
	// Baselines are the per-slot fresh-capture margins probed at
	// completion (done records) — the tenant's calibration points for
	// later health sweeps.
	Baselines []float64 `json:"baselines,omitempty"`
}

// Kind implements wal.Record.
func (e *Entry) Kind() string { return e.Type }

// SetSeq implements wal.Record.
func (e *Entry) SetSeq(seq int) { e.Seq = seq }

func entryOK(e *Entry) bool { return e.Type != "" }

// SlotCheckpoint is one durable checkpoint generation of a slot.
type SlotCheckpoint struct {
	Image   string
	Applied float64
	Rig     *rig.State
}

// SlotReplay is one slot's reconstructed position (same shape as the
// campaign journal's, plus the reroute-resolved serial).
type SlotReplay struct {
	// Serial is the carrier the slot currently runs on (after any
	// reroutes); empty means the spec's original serial.
	Serial   string
	Prepared bool
	Applied  float64

	// Ckpts is the surviving checkpoint history, oldest first — every
	// generation the journal saved and never struck with a ckptbad
	// record. Images are uniquely named per applied-hours, so an older
	// generation can step in when the newest fails verification.
	Ckpts []SlotCheckpoint
	// CkptImage / CkptApplied / CkptRig are the newest surviving
	// checkpoint — the position a resume actually restarts from.
	CkptImage   string
	CkptApplied float64
	CkptRig     *rig.State

	Record     *core.Record
	FinalImage string
	FinalClock float64
}

// syncNewest re-derives the newest-checkpoint fields from the history.
func (s *SlotReplay) syncNewest() {
	if n := len(s.Ckpts); n > 0 {
		c := s.Ckpts[n-1]
		s.CkptImage, s.CkptApplied, s.CkptRig = c.Image, c.Applied, c.Rig
	} else {
		s.CkptImage, s.CkptApplied, s.CkptRig = "", 0, nil
	}
}

// CampaignReplay is one campaign's reconstructed state.
type CampaignReplay struct {
	Tenant   string
	Digest   string
	Spares   []string // remaining, after reroutes consumed some
	Slots    []SlotReplay
	EstHours float64

	SubmitSeq int     // admission order (FIFO tiebreak)
	SubmitAt  float64 // chamber clock at admission
	DoneAt    float64 // chamber clock at done/failed

	Done   bool
	Failed bool
	// Quarantined marks a campaign parked by a resuming scheduler whose
	// on-disk state was unrecoverable. Quarantine is terminal and sticky:
	// repairing the spec later does not un-park the campaign.
	Quarantined bool
	Error       string
	// Baselines are the completion-time fresh margins (done campaigns).
	Baselines []float64
}

// Terminal reports whether the campaign needs no further scheduling.
func (c *CampaignReplay) Terminal() bool { return c.Done || c.Failed || c.Quarantined }

// State is the validated outcome of replaying a scheduler journal.
type State struct {
	Tenants   map[string]Quota
	Campaigns map[string]*CampaignReplay
	// Order lists campaign IDs in admission order.
	Order []string

	ChamberHours  float64
	Passes        int
	Setups        int
	BatchedSlices int
	// LastV/LastT is the chamber's standing operating point (setup
	// accounting across resume); LastPoint is false before any pass.
	LastV, LastT float64
	LastPoint    bool

	Draining bool
	NextSeq  int
}

// Replay validates the journal prefix and reconstructs the scheduler
// state. It fails closed: any structural inconsistency — a sequence
// gap, a record for an unknown campaign, non-monotonic slot progress, a
// pass naming a terminal campaign — rejects the whole journal rather
// than guessing.
func Replay(entries []Entry) (*State, error) {
	st, used, err := ReplaySalvage(entries)
	if used < len(entries) {
		return nil, err
	}
	return st, nil
}

// ReplaySalvage replays the longest prefix of entries that validates,
// returning the reconstructed state, how many entries were used, and the
// validation error that stopped it (nil when every entry was used). The
// state exactly reflects the accepted prefix — apply validates each
// record before mutating anything — so a salvage-based resume can cut
// the journal at the returned count and continue from there. An empty
// (or fully rejected) journal salvages to a fresh scheduler state.
func ReplaySalvage(entries []Entry) (*State, int, error) {
	st := &State{
		Tenants:   map[string]Quota{},
		Campaigns: map[string]*CampaignReplay{},
	}
	for i := range entries {
		e := &entries[i]
		if e.Seq != i {
			st.NextSeq = i
			return st, i, fmt.Errorf("sched: journal sequence broken: record %d claims seq %d", i, e.Seq)
		}
		if err := st.apply(e); err != nil {
			st.NextSeq = i
			return st, i, err
		}
	}
	st.NextSeq = len(entries)
	return st, len(entries), nil
}

func (st *State) campaignOf(e *Entry) (*CampaignReplay, error) {
	c, ok := st.Campaigns[e.Campaign]
	if !ok {
		return nil, fmt.Errorf("sched: record %d (%s) names unknown campaign %q", e.Seq, e.Type, e.Campaign)
	}
	return c, nil
}

func (st *State) slotOf(e *Entry) (*CampaignReplay, *SlotReplay, error) {
	c, err := st.campaignOf(e)
	if err != nil {
		return nil, nil, err
	}
	if c.Terminal() {
		return nil, nil, fmt.Errorf("sched: record %d (%s) touches terminal campaign %q", e.Seq, e.Type, e.Campaign)
	}
	if e.Slot < 0 || e.Slot >= len(c.Slots) {
		return nil, nil, fmt.Errorf("sched: record %d names slot %d of %d in campaign %q", e.Seq, e.Slot, len(c.Slots), e.Campaign)
	}
	return c, &c.Slots[e.Slot], nil
}

func (st *State) apply(e *Entry) error {
	switch e.Type {
	case entryTenant:
		if e.Tenant == "" || e.Quota == nil {
			return fmt.Errorf("sched: tenant record %d is incomplete", e.Seq)
		}
		if _, dup := st.Tenants[e.Tenant]; dup {
			return fmt.Errorf("sched: tenant %q admitted twice (seq %d)", e.Tenant, e.Seq)
		}
		st.Tenants[e.Tenant] = *e.Quota

	case entrySubmit:
		if e.Campaign == "" || e.Tenant == "" || e.Digest == "" || e.Slots <= 0 {
			return fmt.Errorf("sched: submit record %d is incomplete", e.Seq)
		}
		if _, ok := st.Tenants[e.Tenant]; !ok {
			return fmt.Errorf("sched: submit record %d names unknown tenant %q", e.Seq, e.Tenant)
		}
		if _, dup := st.Campaigns[e.Campaign]; dup {
			return fmt.Errorf("sched: campaign %q submitted twice (seq %d)", e.Campaign, e.Seq)
		}
		if st.Draining {
			return fmt.Errorf("sched: submit record %d after drain", e.Seq)
		}
		const maxSlots = 1 << 16
		if e.Slots > maxSlots {
			return fmt.Errorf("sched: submit record %d claims %d slots", e.Seq, e.Slots)
		}
		st.Campaigns[e.Campaign] = &CampaignReplay{
			Tenant:    e.Tenant,
			Digest:    e.Digest,
			Spares:    append([]string(nil), e.Spares...),
			Slots:     make([]SlotReplay, e.Slots),
			EstHours:  e.EstHours,
			SubmitSeq: e.Seq,
			SubmitAt:  e.AtHours,
		}
		st.Order = append(st.Order, e.Campaign)

	case entryResume:
		// A new process took over: every live slot's in-memory progress
		// died with the old one, so replayed progress rewinds to the last
		// durable checkpoint. Finished slots stay finished. Draining is
		// incarnation-scoped — the old process's drain died with it, and
		// the new incarnation decides its own lifecycle — so a resume
		// record clears it (and with it the no-submit-after-drain rule,
		// which binds within a single incarnation only).
		st.Draining = false
		for _, c := range st.Campaigns {
			if c.Terminal() {
				continue
			}
			for k := range c.Slots {
				s := &c.Slots[k]
				if s.Record != nil {
					continue
				}
				s.Prepared = s.CkptImage != ""
				s.Applied = s.CkptApplied
			}
		}

	case entryDrain:
		st.Draining = true

	case entryPass:
		if len(e.Members) == 0 || e.Quantum <= 0 {
			return fmt.Errorf("sched: pass record %d is incomplete", e.Seq)
		}
		seen := map[string]bool{}
		for _, id := range e.Members {
			c, ok := st.Campaigns[id]
			if !ok {
				return fmt.Errorf("sched: pass record %d names unknown campaign %q", e.Seq, id)
			}
			if c.Terminal() {
				return fmt.Errorf("sched: pass record %d batches terminal campaign %q", e.Seq, id)
			}
			if seen[id] {
				return fmt.Errorf("sched: pass record %d batches campaign %q twice", e.Seq, id)
			}
			seen[id] = true
		}
		if e.AtHours < st.ChamberHours-1e-9 {
			return fmt.Errorf("sched: pass record %d rewinds the chamber clock %.4f → %.4f", e.Seq, st.ChamberHours, e.AtHours)
		}
		st.ChamberHours = e.AtHours + e.Setup + e.Quantum
		st.Passes++
		if e.Setup > 0 {
			st.Setups++
		}
		if len(e.Members) > 1 {
			for _, id := range e.Members {
				c := st.Campaigns[id]
				for k := range c.Slots {
					if c.Slots[k].Record == nil {
						st.BatchedSlices++
					}
				}
			}
		}
		st.LastV, st.LastT, st.LastPoint = e.VAccV, e.TAccC, true

	case entryPrepared:
		_, s, err := st.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || s.Prepared {
			return fmt.Errorf("sched: campaign %q slot %d prepared twice (seq %d)", e.Campaign, e.Slot, e.Seq)
		}
		s.Prepared = true

	case entrySlice:
		_, s, err := st.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || !s.Prepared {
			return fmt.Errorf("sched: slice for unprepared campaign %q slot %d (seq %d)", e.Campaign, e.Slot, e.Seq)
		}
		if e.Applied <= s.Applied {
			return fmt.Errorf("sched: campaign %q slot %d slice rewinds %.4fh → %.4fh (seq %d)", e.Campaign, e.Slot, s.Applied, e.Applied, e.Seq)
		}
		if e.Total > 0 && e.Applied > e.Total+1e-9 {
			return fmt.Errorf("sched: campaign %q slot %d overshoots its schedule (seq %d)", e.Campaign, e.Slot, e.Seq)
		}
		s.Applied = e.Applied

	case entryCkpt:
		_, s, err := st.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || !s.Prepared {
			return fmt.Errorf("sched: checkpoint for unprepared campaign %q slot %d (seq %d)", e.Campaign, e.Slot, e.Seq)
		}
		if e.Image == "" || e.Rig == nil {
			return fmt.Errorf("sched: checkpoint record %d lacks image or rig state", e.Seq)
		}
		if e.Applied != s.Applied {
			return fmt.Errorf("sched: checkpoint %d claims %.4fh, campaign %q slot %d is at %.4fh", e.Seq, e.Applied, e.Campaign, e.Slot, s.Applied)
		}
		s.Ckpts = append(s.Ckpts, SlotCheckpoint{Image: e.Image, Applied: e.Applied, Rig: e.Rig})
		s.syncNewest()

	case entryCkptBad:
		_, s, err := st.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil {
			return fmt.Errorf("sched: ckptbad for finished campaign %q slot %d (seq %d)", e.Campaign, e.Slot, e.Seq)
		}
		if e.Image == "" {
			return fmt.Errorf("sched: ckptbad record %d names no image", e.Seq)
		}
		found := -1
		for k := len(s.Ckpts) - 1; k >= 0; k-- {
			if s.Ckpts[k].Image == e.Image {
				found = k
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sched: ckptbad at seq %d strikes unknown checkpoint %q for campaign %q slot %d", e.Seq, e.Image, e.Campaign, e.Slot)
		}
		s.Ckpts = append(s.Ckpts[:found], s.Ckpts[found+1:]...)
		s.syncNewest()
		// Rewind the live position onto the surviving generation. A
		// runtime strike (bootstrap fallback) has no resume record after
		// it, so the stream itself must agree with the fallback: the slot
		// re-runs — and re-appends — from the older generation (or from
		// scratch when none survives).
		if s.CkptImage == "" {
			s.Prepared = false
			s.Applied = 0
		} else if s.Applied > s.CkptApplied {
			s.Applied = s.CkptApplied
		}

	case entryEncoded:
		_, s, err := st.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || !s.Prepared {
			return fmt.Errorf("sched: encoded record for campaign %q slot %d out of order (seq %d)", e.Campaign, e.Slot, e.Seq)
		}
		if e.Record == nil || e.Image == "" {
			return fmt.Errorf("sched: encoded record %d lacks record or image", e.Seq)
		}
		s.Record, s.FinalImage, s.FinalClock = e.Record, e.Image, e.Applied

	case entryReroute:
		c, s, err := st.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil {
			return fmt.Errorf("sched: reroute of finished campaign %q slot %d (seq %d)", e.Campaign, e.Slot, e.Seq)
		}
		spare := -1
		for i, sp := range c.Spares {
			if sp == e.To {
				spare = i
				break
			}
		}
		if spare < 0 {
			return fmt.Errorf("sched: reroute record %d consumes unknown spare %q", e.Seq, e.To)
		}
		c.Spares = append(c.Spares[:spare], c.Spares[spare+1:]...)
		// The slot restarts from scratch on the spare: the old carrier's
		// progress is abandoned with the carrier.
		*s = SlotReplay{Serial: e.To}

	case entryDone:
		c, err := st.campaignOf(e)
		if err != nil {
			return err
		}
		if c.Terminal() {
			return fmt.Errorf("sched: done record %d for terminal campaign %q", e.Seq, e.Campaign)
		}
		for k := range c.Slots {
			if c.Slots[k].Prepared && c.Slots[k].Record == nil {
				return fmt.Errorf("sched: done record %d with campaign %q slot %d unfinished", e.Seq, e.Campaign, k)
			}
		}
		c.Done = true
		c.DoneAt = e.AtHours
		c.Baselines = e.Baselines

	case entryFailed:
		c, err := st.campaignOf(e)
		if err != nil {
			return err
		}
		if c.Terminal() {
			return fmt.Errorf("sched: failed record %d for terminal campaign %q", e.Seq, e.Campaign)
		}
		if e.Error == "" {
			return fmt.Errorf("sched: failed record %d carries no error", e.Seq)
		}
		c.Failed = true
		c.Error = e.Error
		c.DoneAt = e.AtHours

	case entryQuarantined:
		// Unlike done/failed, quarantine may land on an already-terminal
		// campaign: a done campaign whose spec.json later rots still gets
		// parked (its scheduling state is fine; its artifacts are not).
		c, err := st.campaignOf(e)
		if err != nil {
			return err
		}
		if c.Quarantined {
			return fmt.Errorf("sched: campaign %q quarantined twice (seq %d)", e.Campaign, e.Seq)
		}
		if e.Error == "" {
			return fmt.Errorf("sched: quarantined record %d carries no error", e.Seq)
		}
		c.Quarantined = true
		c.Error = e.Error
		if !c.Done && !c.Failed {
			c.DoneAt = e.AtHours
		}

	default:
		return fmt.Errorf("sched: unknown record type %q at seq %d", e.Type, e.Seq)
	}
	return nil
}

// ReadJournal parses a scheduler journal file, tolerating only a torn
// final line (wal semantics).
func ReadJournal(path string) (entries []Entry, validLen int64, err error) {
	return wal.ReadFile(path, entryOK)
}

// ReadJournalSalvage parses a scheduler journal leniently over the given
// filesystem: CRC-failed or unparseable records cut the journal at the
// last verifiable prefix, reported in the wal.Salvage summary rather
// than as an error. The error is non-nil only if the file itself cannot
// be read.
func ReadJournalSalvage(fsys storage.FS, path string) (entries []Entry, sal wal.Salvage, err error) {
	return wal.ReadFileSalvage(fsys, path, entryOK)
}

// ParseJournal is ReadJournal over in-memory bytes (the fuzz surface).
func ParseJournal(data []byte) (entries []Entry, validLen int64, err error) {
	return wal.Parse(data, entryOK)
}
