package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
)

// panicInjector panics inside the rig on the first stress slice — the
// "impossible state" class of bug a hardware driver hits, as opposed to
// the typed errors SeededInjector returns.
type panicInjector struct {
	*faults.SeededInjector
}

func (panicInjector) OpError(op faults.Op, clockHours float64) error {
	if op == faults.OpStress {
		panic(fmt.Sprintf("injected rig panic at t=%.1fh: regulator state machine wedged", clockHours))
	}
	return nil
}

// Inert must report false or the rig's no-fault fast path would never
// consult OpError (the embedded zero-profile SeededInjector is inert).
func (panicInjector) Inert() bool { return false }

// TestSlotPanicQuarantinesOnlyItsCampaign pins the containment
// contract: a panicking slot worker becomes a permanent fault on that
// carrier — breaker trip, re-route to a spare if one exists, a typed
// campaign failure if not — and every other tenant's campaign completes
// and decodes as if nothing happened. Before this hardening the panic
// unwound the slot goroutine and killed the whole process.
func TestSlotPanicQuarantinesOnlyItsCampaign(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Config{
		KeyFor: testKeyFor,
		InjectorFor: func(serial string) faults.Injector {
			if strings.HasPrefix(serial, "boom") {
				return panicInjector{faults.New(faults.Profile{}, serial)}
			}
			return nil
		},
		Breakers: fleet.NewBreakerSet(fleet.BreakerConfig{
			FailureThreshold: 1, BaseBackoffHours: 1, QuarantineAfterTrips: 1,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy := miniSub("alice", "pan-ok", []string{"pok-0"}, 7.5)
	rerouted := miniSub("bob", "pan-reroute", []string{"boom-0"}, 7.5, "pspare-0")
	doomed := miniSub("carol", "pan-doomed", []string{"boom-1"}, 7.5)
	for _, sub := range []Submission{healthy, rerouted, doomed} {
		if err := s.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	drainOK(t, s)

	if err := s.Err(); err != nil {
		t.Fatalf("a slot panic killed the scheduler: %v", err)
	}
	st := s.Status()
	if st.Done != 2 || st.Failed != 1 {
		t.Fatalf("panic storm: done=%d failed=%d, want 2/1 (%+v)", st.Done, st.Failed, st)
	}
	ok, _ := s.Campaign("pan-ok")
	if ok.State != "done" {
		t.Fatalf("healthy campaign: %+v", ok)
	}
	if got := decodeCampaign(t, dir, "alice", "pan-ok"); !bytes.Equal(got, healthy.Spec.Message) {
		t.Fatalf("healthy campaign decodes to %q", got)
	}
	rr, _ := s.Campaign("pan-reroute")
	if rr.State != "done" {
		t.Fatalf("rerouted campaign: %+v", rr)
	}
	if got := decodeCampaign(t, dir, "bob", "pan-reroute"); !bytes.Equal(got, rerouted.Spec.Message) {
		t.Fatalf("rerouted campaign decodes to %q", got)
	}
	dd, _ := s.Campaign("pan-doomed")
	if dd.State != "failed" {
		t.Fatalf("doomed campaign: %+v", dd)
	}
	if !strings.Contains(dd.Error, "panicked") {
		t.Fatalf("doomed campaign's error hides the panic: %q", dd.Error)
	}
}

// TestGracefulStopResumesBitIdentically pins the SIGTERM contract: a
// Stop mid-flight halts at a pass boundary with the journal closed
// cleanly, and a Resume of the same directory finishes every campaign
// with results, images, decoded messages, and baselines bit-identical
// to an uninterrupted reference run.
func TestGracefulStopResumesBitIdentically(t *testing.T) {
	base := t.TempDir()
	subs := []Submission{
		miniSub("alice", "gs-a", []string{"gsa-0"}, 10),
		miniSub("bob", "gs-b", []string{"gsb-0"}, 10),
	}
	cfg := Config{KeyFor: testKeyFor}

	collect := func(t *testing.T, s *Scheduler, dir string) map[string]outcomeCmp {
		t.Helper()
		out := map[string]outcomeCmp{}
		for _, sub := range subs {
			id := sub.Spec.ID
			cs, ok := s.Campaign(id)
			if !ok || cs.State != "done" {
				t.Fatalf("campaign %s not done: %+v", id, cs)
			}
			out[id] = outcomeCmp{
				message:   decodeCampaign(t, dir, sub.Tenant, id),
				baselines: cs.Baselines,
			}
		}
		return out
	}

	refDir := filepath.Join(base, "ref")
	ref, err := New(refDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := ref.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	drainOK(t, ref)
	want := collect(t, ref, refDir)

	// Interrupted run: stop as soon as at least one pass has landed.
	dir := filepath.Join(base, "stopped")
	s, err := New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := s.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for s.Status().Passes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no pass completed before the stop window")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("graceful stop left a fatal error: %v", err)
	}
	if !s.Status().Stopping {
		t.Fatal("status does not report the stop")
	}
	if err := s.Submit(miniSub("dave", "gs-late", []string{"gsl-0"}, 5)); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: %v, want ErrStopped", err)
	}
	if err := s.Drain(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("drain after stop: %v, want ErrStopped", err)
	}

	// The next incarnation picks up exactly where the stop left off.
	rs, err := Resume(dir, cfg)
	if err != nil {
		t.Fatalf("resume after stop: %v", err)
	}
	if rs.Salvage().Degraded() {
		t.Fatalf("clean stop resumed degraded: %+v", rs.Salvage())
	}
	drainOK(t, rs)
	assertOutcomes(t, "graceful stop", collect(t, rs, dir), want)
}

// TestChaosStormDrill is the acceptance drill for the whole hardening
// stack: N tenants submit concurrently through a faulty network (drops,
// stalls, lost responses, truncated bodies, mid-body resets) while the
// server is killed mid-storm and resumed behind the same address with a
// listener outage in between. Every campaign must complete with an
// exact decode, and the journal must hold exactly one admission per
// campaign — the lost-response retries never double-submitted.
func TestChaosStormDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm skipped in -short")
	}
	goroutinesBefore := runtime.NumGoroutine()

	dir := t.TempDir()
	const tenants = 8
	subs := make([]Submission, tenants)
	for i := range subs {
		subs[i] = miniSub(fmt.Sprintf("storm-%02d", i), fmt.Sprintf("st-%02d", i),
			[]string{fmt.Sprintf("stm%02d-0", i)}, 7.5)
	}
	cfg := Config{KeyFor: testKeyFor}

	// Incarnation 1 dies on its 40th journal touch — mid-storm, while
	// submissions and passes race.
	ks := faults.NewKillSwitch(40)
	killCfg := cfg
	killCfg.Hook = ks.Hook()
	s1, err := New(dir, killCfg)
	if err != nil {
		t.Fatal(err)
	}

	// One stable front URL delegating to whichever incarnation is live,
	// like a port held by a supervisor across restarts.
	var current atomic.Pointer[Server]
	current.Store(NewServer(s1))
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().ServeHTTP(w, r)
	}))
	defer front.Close()

	chaos := faults.NewHTTPChaos(faults.HTTPProfile{
		Seed:             42,
		DropRate:         0.05,
		StallRate:        0.10,
		StallMax:         2 * time.Millisecond,
		ResponseLossRate: 0.05,
		TruncateRate:     0.05,
		ResetRate:        0.05,
	})

	// The supervisor: when incarnation 1 dies, the listener bounces a
	// few connections, the journal is resumed, and the replacement takes
	// over the front URL.
	resumed := make(chan *Scheduler, 1)
	go func() {
		<-s1.Done()
		if s1.Err() == nil {
			return
		}
		chaos.KillListener(5)
		s2, err := Resume(dir, cfg)
		if err != nil {
			t.Errorf("resume after kill: %v", err)
			close(resumed)
			return
		}
		current.Store(NewServer(s2))
		resumed <- s2
	}()

	// The storm: every tenant hammers the front door concurrently
	// through the chaos layer. Backoff waits are capped at 20ms of real
	// time so the server's honest Retry-After seconds do not stretch the
	// test; the schedule itself is pinned in the client tests.
	newClient := func() *Client {
		return &Client{
			BaseURL:     front.URL,
			HTTP:        &http.Client{Transport: chaos.Transport(nil)},
			MaxAttempts: 200,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			Sleep: func(ctx context.Context, d time.Duration) error {
				if d > 20*time.Millisecond {
					d = 20 * time.Millisecond
				}
				timer := time.NewTimer(d)
				defer timer.Stop()
				select {
				case <-timer.C:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			},
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	submitErrs := make([]error, tenants)
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			submitErrs[i] = newClient().Submit(ctx, subs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range submitErrs {
		if err != nil {
			t.Fatalf("tenant %d submit never landed: %v", i, err)
		}
	}

	// The kill must actually have happened for the drill to mean
	// anything; wait for the replacement before draining.
	var s2 *Scheduler
	select {
	case s2 = <-resumed:
		if s2 == nil {
			t.Fatal("resume failed")
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("incarnation 1 never died (kill switch fired=%v)", ks.Fired())
	}
	if !ks.Fired() {
		t.Fatal("kill switch never fired")
	}

	c := newClient()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := c.AwaitQuiescent(ctx, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("await quiescence: %v", err)
	}
	if st.Done != tenants || st.Failed != 0 || st.Active != 0 {
		t.Fatalf("storm outcome: done=%d failed=%d active=%d, want %d/0/0",
			st.Done, st.Failed, st.Active, tenants)
	}

	// Every campaign decodes exactly despite the network and the kill.
	for _, sub := range subs {
		if got := decodeCampaign(t, dir, sub.Tenant, sub.Spec.ID); !bytes.Equal(got, sub.Spec.Message) {
			t.Fatalf("campaign %s decodes to %q", sub.Spec.ID, got)
		}
	}

	// Zero duplicate admissions: lost responses were retried, but the
	// digest handshake kept every retry from double-submitting.
	entries, _, err := ReadJournal(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	admissions := map[string]int{}
	for _, e := range entries {
		if e.Type == entrySubmit {
			admissions[e.Campaign]++
		}
	}
	for _, sub := range subs {
		if n := admissions[sub.Spec.ID]; n != 1 {
			t.Fatalf("campaign %s admitted %d times, want exactly 1", sub.Spec.ID, n)
		}
	}

	// No goroutine pile-up: the storm's clients, both incarnations, and
	// the supervisor have all wound down (generous slack for the HTTP
	// stack's idle keep-alive machinery).
	front.Close()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	settled := goroutinesBefore + 15
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= settled {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > settled {
		t.Fatalf("goroutines grew from %d to %d", goroutinesBefore, n)
	}
}
