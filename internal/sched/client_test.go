package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// recordedClock is the client test harness: Sleep records every backoff
// delay instead of waiting, so retry schedules are asserted on a
// simulated clock and the tests run in microseconds.
type recordedClock struct {
	delays []time.Duration
}

func (c *recordedClock) sleep(_ context.Context, d time.Duration) error {
	c.delays = append(c.delays, d)
	return nil
}

// scriptedServer serves the scripted responses in order, then keeps
// repeating the last one; it counts total requests.
func scriptedServer(t *testing.T, script ...func(w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n >= len(script) {
			n = len(script) - 1
		}
		script[n](w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func respondJSON(code int, v any) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v) //nolint:errcheck // test fixture
	}
}

func testClient(url string, clock *recordedClock) *Client {
	return &Client{
		BaseURL:     url,
		MaxAttempts: 5,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		Rand:        func() float64 { return 1 }, // full jitter: delay is exact
		Sleep:       clock.sleep,
	}
}

// TestClientBackoffGrowsAndCaps pins the retry schedule: exponential
// from BaseBackoff, capped at MaxBackoff, one delay per failed attempt.
func TestClientBackoffGrowsAndCaps(t *testing.T) {
	srv, calls := scriptedServer(t,
		respondJSON(500, errorBody{Error: "boom", Code: codeInternal}),
		respondJSON(500, errorBody{Error: "boom", Code: codeInternal}),
		respondJSON(500, errorBody{Error: "boom", Code: codeInternal}),
		respondJSON(500, errorBody{Error: "boom", Code: codeInternal}),
		respondJSON(200, Status{}),
	)
	clock := &recordedClock{}
	c := testClient(srv.URL, clock)
	if _, err := c.Status(context.Background()); err != nil {
		t.Fatalf("status: %v", err)
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("attempts: %d, want 5", got)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	if len(clock.delays) != len(want) {
		t.Fatalf("recorded delays %v, want %v", clock.delays, want)
	}
	for i := range want {
		if clock.delays[i] != want[i] {
			t.Fatalf("delay %d: %v, want %v (schedule %v)", i, clock.delays[i], want[i], clock.delays)
		}
	}
}

// TestClientBackoffJitterStaysInRange pins the equal-jitter envelope:
// with a real random source every delay lands in [d/2, d].
func TestClientBackoffJitterStaysInRange(t *testing.T) {
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	for n := 0; n < 6; n++ {
		full := 100 * time.Millisecond << uint(n)
		if full > time.Second {
			full = time.Second
		}
		for i := 0; i < 32; i++ {
			d := c.backoff(n, 0)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", n, d, full/2, full)
			}
		}
	}
}

// TestClientHonorsRetryAfter pins that a server-provided Retry-After
// overrides the exponential schedule entirely.
func TestClientHonorsRetryAfter(t *testing.T) {
	srv, _ := scriptedServer(t,
		func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "7")
			respondJSON(429, errorBody{Error: "slow down", Code: codeSaturated})(w, r)
		},
		respondJSON(202, struct {
			Campaign string `json:"campaign"`
		}{"ra-1"}),
	)
	clock := &recordedClock{}
	c := testClient(srv.URL, clock)
	if err := c.Submit(context.Background(), miniSub("alice", "ra-1", []string{"ra-0"}, 5)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(clock.delays) != 1 || clock.delays[0] != 7*time.Second {
		t.Fatalf("delays %v, want [7s]", clock.delays)
	}
}

// TestClientIdempotentResubmit pins the digest handshake end to end: the
// first submit is admitted but its response is lost in transit; the
// retry draws 409 duplicate-campaign with a matching digest and Submit
// reports success.
func TestClientIdempotentResubmit(t *testing.T) {
	sub := miniSub("alice", "idem-1", []string{"idem-0"}, 5)
	digest := sub.Spec.ScheduleDigest()
	srv, calls := scriptedServer(t,
		respondJSON(202, struct {
			Campaign string `json:"campaign"`
		}{"idem-1"}),
		respondJSON(409, errorBody{Error: "duplicate", Code: codeDuplicate, Digest: digest}),
	)

	// lossyTransport eats the first response after the server processed
	// the request — the network failure mode that makes blind retries
	// dangerous.
	base := http.DefaultTransport
	var eaten atomic.Bool
	lossy := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		resp, err := base.RoundTrip(req)
		if err == nil && eaten.CompareAndSwap(false, true) {
			resp.Body.Close()
			return nil, fmt.Errorf("%s: response eaten in transit", req.URL.Path)
		}
		return resp, err
	})

	clock := &recordedClock{}
	c := testClient(srv.URL, clock)
	c.HTTP = &http.Client{Transport: lossy}
	if err := c.Submit(context.Background(), sub); err != nil {
		t.Fatalf("submit through lossy network: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d submits, want 2 (original + idempotent retry)", got)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// TestClientRealConflictSurfaces pins the other half of the handshake:
// a 409 whose digest does NOT match (someone else owns the ID) is a
// genuine error, immediately, with the sentinel reachable via
// errors.Is.
func TestClientRealConflictSurfaces(t *testing.T) {
	srv, calls := scriptedServer(t,
		respondJSON(409, errorBody{Error: "duplicate", Code: codeDuplicate, Digest: "somebody-elses"}),
	)
	clock := &recordedClock{}
	c := testClient(srv.URL, clock)
	err := c.Submit(context.Background(), miniSub("alice", "conf-1", []string{"conf-0"}, 5))
	if !errors.Is(err, ErrDuplicateCampaign) {
		t.Fatalf("conflicting submit: %v, want ErrDuplicateCampaign", err)
	}
	if calls.Load() != 1 || len(clock.delays) != 0 {
		t.Fatalf("conflict retried: %d calls, delays %v", calls.Load(), clock.delays)
	}
}

// TestClientNonRetryableGiveUpImmediately pins that deliberate
// rejections — quota, validation, draining — burn exactly one attempt.
func TestClientNonRetryableGiveUpImmediately(t *testing.T) {
	cases := []struct {
		name     string
		status   int
		code     string
		sentinel error
	}{
		{"quota", 403, codeQuota, ErrQuotaExceeded},
		{"validation", 400, codeValidation, nil},
		{"draining", 503, codeDraining, ErrDraining},
	}
	for _, tc := range cases {
		srv, calls := scriptedServer(t, respondJSON(tc.status, errorBody{Error: tc.name, Code: tc.code}))
		clock := &recordedClock{}
		c := testClient(srv.URL, clock)
		err := c.Submit(context.Background(), miniSub("alice", "nr-1", []string{"nr-0"}, 5))
		if err == nil {
			t.Fatalf("%s: submit succeeded", tc.name)
		}
		if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
			t.Fatalf("%s: %v does not match sentinel", tc.name, err)
		}
		if calls.Load() != 1 || len(clock.delays) != 0 {
			t.Fatalf("%s: retried a deliberate rejection (%d calls, %v)", tc.name, calls.Load(), clock.delays)
		}
	}
}

// TestClientRetryableStatusesRecover pins that rate limits and dead/
// stopped schedulers are retried to success.
func TestClientRetryableStatusesRecover(t *testing.T) {
	for _, code := range []string{codeRateLimited, codeStopped, codeDead} {
		status := 429
		if code != codeRateLimited {
			status = 503
		}
		srv, calls := scriptedServer(t,
			respondJSON(status, errorBody{Error: code, Code: code}),
			respondJSON(202, struct {
				Campaign string `json:"campaign"`
			}{"rt-1"}),
		)
		clock := &recordedClock{}
		c := testClient(srv.URL, clock)
		if err := c.Submit(context.Background(), miniSub("alice", "rt-1", []string{"rt-0"}, 5)); err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		if calls.Load() != 2 {
			t.Fatalf("%s: %d attempts, want 2", code, calls.Load())
		}
	}
}

// TestClientAttemptBudget pins that MaxAttempts bounds persistence and
// the final error names the count and the last failure.
func TestClientAttemptBudget(t *testing.T) {
	srv, calls := scriptedServer(t, respondJSON(500, errorBody{Error: "forever down", Code: codeInternal}))
	clock := &recordedClock{}
	c := testClient(srv.URL, clock)
	c.MaxAttempts = 3
	err := c.Submit(context.Background(), miniSub("alice", "ab-1", []string{"ab-0"}, 5))
	if err == nil {
		t.Fatal("submit succeeded against a dead server")
	}
	if calls.Load() != 3 || len(clock.delays) != 2 {
		t.Fatalf("budget: %d attempts, %d delays", calls.Load(), len(clock.delays))
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 500 {
		t.Fatalf("final error lost the typed failure: %v", err)
	}
}

// TestClientContextCancellation pins that a cancelled context stops the
// retry loop promptly with the context's error.
func TestClientContextCancellation(t *testing.T) {
	srv, _ := scriptedServer(t, respondJSON(500, errorBody{Error: "down", Code: codeInternal}))
	c := &Client{
		BaseURL:     srv.URL,
		MaxAttempts: 100,
		Rand:        func() float64 { return 1 },
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.Sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // cancel during the first backoff
		return ctx.Err()
	}
	if _, err := c.Status(ctx); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled status: %v, want context.Canceled", err)
	}
}

// TestClientAgainstLiveServer drives the typed client against the real
// Server over a real listener: submit, poll to completion, drain, await
// quiescence.
func TestClientAgainstLiveServer(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Config{KeyFor: testKeyFor})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(s))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub := miniSub("alice", "live-1", []string{"live-0"}, 7.5)
	if err := c.Submit(ctx, sub); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// A second Submit of the same spec is a no-op success (digest match).
	if err := c.Submit(ctx, sub); err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	cs, err := c.AwaitCampaign(ctx, "live-1", 10*time.Millisecond)
	if err != nil {
		t.Fatalf("await campaign: %v", err)
	}
	if cs.State != "done" {
		t.Fatalf("campaign state %q: %+v", cs.State, cs)
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := c.AwaitQuiescent(ctx, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("await quiescent: %v", err)
	}
	if st.Done != 1 || st.Active != 0 {
		t.Fatalf("final status: %+v", st)
	}
	if _, err := c.Campaign(ctx, "nope"); err == nil {
		t.Fatal("unknown campaign did not error")
	}
}
