package sched

import (
	"encoding/json"
	"fmt"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/device"
	"invisiblebits/internal/rig"

	"invisiblebits/internal/core"
)

// Budget is a planning-time estimate of what one campaign costs the
// scheduler journal: fsynced appends and their encoded bytes. The
// estimate is built by marshaling representative journal entries with
// the campaign's real identifiers, so it tracks the record grammar
// automatically — if a record kind grows a field, the budget grows
// with it.
type Budget struct {
	// Records counts the journal appends an uninterrupted run of this
	// campaign costs: submit, one pass per slice round (worst case —
	// solo, unbatched; batching amortizes pass records across members),
	// and per slot the prepared/slice/checkpoint/encoded stream, plus
	// the final done record.
	Records int
	// Bytes is the encoded size of those records, newlines included.
	Bytes int
	// TenantBytes is the one-time scheduler overhead of admitting the
	// submitting tenant: the tenant record that pins its effective
	// quota into the journal. Charged once per tenant, not per
	// campaign.
	TenantBytes int
}

// entrySize is the journal cost of one record: its JSON encoding plus
// the newline the WAL appends.
func entrySize(e *Entry) int {
	b, err := json.Marshal(e)
	if err != nil {
		return 0
	}
	return len(b) + 1
}

// EstimateJournalBudget sizes the scheduler journal for one campaign
// before running it, using the same slice/checkpoint cadence the
// scheduler will journal. Estimates are slightly conservative: sequence
// numbers and chamber clocks are given realistic widths, and pass
// records assume the campaign runs solo (a batch shares each pass
// record across its members).
func EstimateJournalBudget(spec campaign.Spec, m device.Model) Budget {
	soak := spec.StressHours
	if soak <= 0 {
		soak = m.EncodingHours
	}
	sliceHours := spec.SliceHours
	if sliceHours <= 0 {
		sliceHours = campaign.DefaultSliceHours
	}
	every := spec.CheckpointEvery
	if every <= 0 {
		every = campaign.DefaultCheckpointEvery
	}
	slices := int(soak / sliceHours)
	if float64(slices)*sliceHours < soak {
		slices++
	}
	// Mid-run checkpoints only: the final slice mints the encoded
	// record (with the terminal rig state) instead of a checkpoint.
	ckpts := 0
	if slices > 0 {
		ckpts = (slices - 1) / every
	}

	// Representative field widths: a deep sequence number, a chamber
	// clock with fractional hours, the campaign's real digest and
	// serials.
	const seq = 1 << 20
	const clock = 10430.1234
	serial := "serial-000"
	for _, ser := range spec.Serials {
		if len(ser) > len(serial) {
			serial = ser
		}
	}
	rigState := &rig.State{ClockHours: clock, ChamberC: m.TAccC, SupplyV: m.VAccV}
	record := &core.Record{
		DeviceID:     m.Name + ":" + serial,
		MessageBytes: len(spec.Message),
		PayloadBytes: m.SRAMBytes,
		CodecName:    spec.Codec,
		Encrypted:    true,
		Captures:     core.DefaultCaptures,
		StressHours:  soak,
		Digest:       fmt.Sprintf("%064x", 0),
		DigestAlgo:   "hmac-sha256-device",
	}

	b := Budget{
		TenantBytes: entrySize(&Entry{
			Seq: seq, Type: entryTenant, Tenant: "tenant-00000",
			Quota: &Quota{MaxCampaigns: 16, MaxDevices: 256, MaxChamberHours: 100000},
			Slot:  -1,
		}),
	}
	add := func(n int, e *Entry) {
		e.Seq = seq
		b.Records += n
		b.Bytes += n * entrySize(e)
	}

	add(1, &Entry{
		Type: entrySubmit, Tenant: "tenant-00000", Campaign: spec.ID,
		Digest: spec.ScheduleDigest(), Slots: len(spec.Serials),
		EstHours: soak * float64(len(spec.Serials)), AtHours: clock, Slot: -1,
	})
	add(slices, &Entry{
		Type: entryPass, Members: []string{spec.ID},
		VAccV: m.VAccV, TAccC: m.TAccC, Quantum: sliceHours,
		Setup: DefaultSetupHours, AtHours: clock, Slot: -1,
	})
	perSlotCkptImage := fmt.Sprintf("slot-%d-ckpt-%.4fh.img", len(spec.Serials)-1, clock)
	for i := range spec.Serials {
		add(1, &Entry{Type: entryPrepared, Campaign: spec.ID, Slot: i})
		add(slices, &Entry{
			Type: entrySlice, Campaign: spec.ID, Slot: i,
			Applied: clock, Total: soak,
		})
		add(ckpts, &Entry{
			Type: entryCkpt, Campaign: spec.ID, Slot: i,
			Applied: clock, Image: perSlotCkptImage, Rig: rigState,
		})
		add(1, &Entry{
			Type: entryEncoded, Campaign: spec.ID, Slot: i,
			Applied: clock, Image: fmt.Sprintf("slot-%d-final.img", i),
			Rig: rigState, Record: record,
		})
	}
	baselines := make([]float64, len(spec.Serials))
	for i := range baselines {
		baselines[i] = 0.9840169270833324
	}
	add(1, &Entry{
		Type: entryDone, Campaign: spec.ID,
		AtHours: clock, Baselines: baselines, Slot: -1,
	})
	return b
}
