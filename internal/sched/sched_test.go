package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/stegocrypt"
	"invisiblebits/internal/wal"
)

// testKeyFor derives a deterministic per-campaign key — the same
// function handed to a resumed scheduler reproduces the same keys, so
// crash/resume comparisons stay bit-identical.
func testKeyFor(tenant, id string) *stegocrypt.Key {
	k := stegocrypt.KeyFromPassphrase("sched-test|" + tenant + "|" + id)
	return &k
}

// miniSub is a one-board MSP430G2553 campaign: the smallest, fastest
// device, a short message under the paper codec, 2.5h slices. Decode
// margin depends on the soak: at 5h roughly a third of (serial,
// message) pairs still fail the integrity digest, while 7.5h decodes
// cleanly across the board — tests that assert decode use ≥ 7.5h.
func miniSub(tenant, id string, serials []string, stress float64, spares ...string) Submission {
	return Submission{
		Tenant: tenant,
		Spares: spares,
		Spec: campaign.Spec{
			ID:              id,
			Model:           "MSP430G2553",
			Serials:         serials,
			Message:         []byte("payload for " + id),
			Codec:           "paper",
			StressHours:     stress,
			SliceHours:      2.5,
			CheckpointEvery: 2,
		},
	}
}

func drainOK(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func decodeCampaign(t *testing.T, root, tenant, id string) []byte {
	t.Helper()
	got, err := campaign.DecodeResult(context.Background(),
		filepath.Join(root, campaignsDir, id), testKeyFor(tenant, id))
	if err != nil {
		t.Fatalf("decode campaign %s: %v", id, err)
	}
	return got
}

func TestSchedulerRunsCampaignsAndDecodes(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Config{KeyFor: testKeyFor})
	if err != nil {
		t.Fatal(err)
	}
	subs := []Submission{
		miniSub("alice", "a-1", []string{"al-0"}, 7.5),
		miniSub("bob", "b-1", []string{"bo-0", "bo-1"}, 7.5),
	}
	for _, sub := range subs {
		if err := s.Submit(sub); err != nil {
			t.Fatalf("submit %s: %v", sub.Spec.ID, err)
		}
	}
	drainOK(t, s)

	st := s.Status()
	if st.Done != 2 || st.Failed != 0 || st.Active != 0 {
		t.Fatalf("status after drain: %+v", st)
	}
	if st.Passes == 0 || st.ChamberHours <= 0 {
		t.Fatalf("no chamber activity recorded: %+v", st)
	}
	if st.LatencyP99 <= 0 || st.CampaignsPerChamberHour <= 0 {
		t.Fatalf("throughput metrics missing: %+v", st)
	}
	for _, sub := range subs {
		cs, ok := s.Campaign(sub.Spec.ID)
		if !ok || cs.State != "done" {
			t.Fatalf("campaign %s: %+v (ok=%v)", sub.Spec.ID, cs, ok)
		}
		if len(cs.Baselines) == 0 {
			t.Fatalf("campaign %s finished without baseline margins", sub.Spec.ID)
		}
		for _, m := range cs.Baselines {
			if m <= 0.5 || m > 1 {
				t.Fatalf("campaign %s baseline margin %v out of range", sub.Spec.ID, m)
			}
		}
		got := decodeCampaign(t, dir, sub.Tenant, sub.Spec.ID)
		if !bytes.Equal(got, sub.Spec.Message) {
			t.Fatalf("campaign %s decodes to %q", sub.Spec.ID, got)
		}
	}
	// Submitting after drain is a typed rejection.
	if err := s.Submit(miniSub("carol", "c-1", []string{"ca-0"}, 5)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
}

// newIdleScheduler builds a scheduler whose loop never runs, so
// admission decisions can be tested without racing campaign execution.
func newIdleScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, campaignsDir), 0o755); err != nil {
		t.Fatal(err)
	}
	j, err := wal.Create(filepath.Join(dir, journalFile), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return newScheduler(dir, cfg, j)
}

func TestAdmissionControlTypedRejections(t *testing.T) {
	s := newIdleScheduler(t, Config{
		MaxQueued: 4,
		DefaultQuota: Quota{
			MaxCampaigns: 2, MaxDevices: 3, MaxChamberHours: 100,
		},
		Quotas: map[string]Quota{
			"big": {MaxCampaigns: 10, MaxDevices: 100, MaxChamberHours: 6},
		},
	})

	if err := s.Submit(miniSub("alice", "a-1", []string{"al-0"}, 5)); err != nil {
		t.Fatal(err)
	}
	// Duplicate campaign ID.
	if err := s.Submit(miniSub("alice", "a-1", []string{"al-9"}, 5)); !errors.Is(err, ErrDuplicateCampaign) {
		t.Fatalf("duplicate ID: %v", err)
	}
	// Serial already owned — by another tenant, even.
	if err := s.Submit(miniSub("bob", "b-1", []string{"al-0"}, 5)); !errors.Is(err, ErrSerialInUse) {
		t.Fatalf("serial conflict: %v", err)
	}
	// Device quota: alice holds 1, a 3-board submission would make 4 > 3.
	if err := s.Submit(miniSub("alice", "a-2", []string{"al-1", "al-2"}, 5, "al-3")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("device quota: %v", err)
	}
	// Campaign quota: second campaign fits, third does not.
	if err := s.Submit(miniSub("alice", "a-2", []string{"al-1"}, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(miniSub("alice", "a-3", []string{"al-5"}, 5)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("campaign quota: %v", err)
	}
	// Chamber-hour quota (per-tenant override): 5h fits in 6, 5 more do not.
	if err := s.Submit(miniSub("big", "g-1", []string{"bg-0"}, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(miniSub("big", "g-2", []string{"bg-1"}, 5)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("chamber-hour quota: %v", err)
	}
	// Queue saturation: fill the fourth slot, then the fifth submission
	// bounces with backpressure.
	if err := s.Submit(miniSub("dave", "d-1", []string{"dv-0"}, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(miniSub("carol", "c-1", []string{"ca-0"}, 5)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturation: %v", err)
	}
	// Structural rejections never reach the journal.
	bad := miniSub("dave", "", []string{"da-0"}, 5)
	if err := s.Submit(bad); err == nil {
		t.Fatal("empty campaign ID accepted")
	}
	if err := s.Submit(Submission{Spec: miniSub("x", "x-1", []string{"x-0"}, 5).Spec}); err == nil {
		t.Fatal("submission without tenant accepted")
	}
	dupSpare := miniSub("erin", "e-1", []string{"er-0"}, 5, "er-0")
	if err := s.Submit(dupSpare); err == nil {
		t.Fatal("spare duplicating a serial accepted")
	}
}

// TestBatchingReducesChamberHours is the economics claim: campaigns
// sharing a (V, T) operating point coalesce their stress slices into
// shared chamber passes, so four one-board campaigns cost barely more
// chamber time than one — while the unbatched control pays full price.
func TestBatchingReducesChamberHours(t *testing.T) {
	run := func(disable bool) (Status, string) {
		dir := t.TempDir()
		s, err := New(dir, Config{KeyFor: testKeyFor, DisableBatching: disable})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			sub := miniSub(fmt.Sprintf("t%d", i), fmt.Sprintf("c-%d", i),
				[]string{fmt.Sprintf("s%d-0", i)}, 7.5)
			if err := s.Submit(sub); err != nil {
				t.Fatal(err)
			}
		}
		drainOK(t, s)
		return s.Status(), dir
	}

	batched, bdir := run(false)
	unbatched, _ := run(true)
	if batched.Done != 4 || unbatched.Done != 4 {
		t.Fatalf("done: batched %d, unbatched %d", batched.Done, unbatched.Done)
	}
	if batched.ChamberHours >= unbatched.ChamberHours {
		t.Fatalf("batching saved nothing: %.2fh batched vs %.2fh unbatched",
			batched.ChamberHours, unbatched.ChamberHours)
	}
	if batched.BatchedSlices == 0 {
		t.Fatal("batched run recorded no batched slices")
	}
	if unbatched.BatchedSlices != 0 {
		t.Fatalf("unbatched run recorded %d batched slices", unbatched.BatchedSlices)
	}
	// Batching must be invisible to the physics: every batched campaign
	// still decodes.
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("c-%d", i)
		got := decodeCampaign(t, bdir, fmt.Sprintf("t%d", i), id)
		if !bytes.Equal(got, []byte("payload for "+id)) {
			t.Fatalf("batched campaign %s decodes to %q", id, got)
		}
	}
	t.Logf("chamber hours: batched %.2f, unbatched %.2f (%.0f%% saved)",
		batched.ChamberHours, unbatched.ChamberHours,
		100*(1-batched.ChamberHours/unbatched.ChamberHours))
}

// TestStarvationGuardGrantsSoloPass pins the fairness deadline: a
// campaign whose operating point never matches the batch leader's must
// still run once it has been passed over StarveLimit times — promoted
// to lead, the chamber re-targets to its (V, T); with no compatible
// peers it runs alone — instead of waiting for every competing
// campaign to finish.
func TestStarvationGuardGrantsSoloPass(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Config{KeyFor: testKeyFor, StarveLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Three long G2553 campaigns (3.6V) hog the chamber...
	for i := 0; i < 3; i++ {
		sub := miniSub(fmt.Sprintf("hog%d", i), fmt.Sprintf("hog-%d", i),
			[]string{fmt.Sprintf("hg%d-0", i)}, 10)
		if err := s.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	// ...while one MSP432P401 campaign (3.3V — never batchable with the
	// hogs) needs a single 2.5h slice.
	starved := Submission{
		Tenant: "starved",
		Spec: campaign.Spec{
			ID: "starved-1", Model: "MSP432P401", Serials: []string{"st-0"},
			Message: []byte("payload for starved-1"), StressHours: 2.5, SliceHours: 2.5,
		},
	}
	if err := s.Submit(starved); err != nil {
		t.Fatal(err)
	}
	drainOK(t, s)

	st := s.Status()
	if st.Done != 4 {
		t.Fatalf("done = %d, want 4: %+v", st.Done, st)
	}
	sv, _ := s.Campaign("starved-1")
	for i := 0; i < 3; i++ {
		hog, _ := s.Campaign(fmt.Sprintf("hog-%d", i))
		if sv.DoneAt >= hog.DoneAt {
			t.Fatalf("starved campaign finished at %.2fh, after hog-%d (%.2fh) — the starvation guard never fired",
				sv.DoneAt, i, hog.DoneAt)
		}
	}
}

// TestSchedulerCrashMatrix is the tentpole acceptance test at service
// scope: the whole scheduler — tenant table, queue, batch assignments,
// every slot — is killed at EVERY kill point in turn (every journal
// append, image write, spec write, result write), resumed, re-submitted
// (idempotently), drained, and the outcome must be bit-identical to an
// uninterrupted reference: same result.json bytes, same final device
// images, same decoded messages, same baseline margins.
func TestSchedulerCrashMatrix(t *testing.T) {
	base := t.TempDir()
	subs := []Submission{
		miniSub("alice", "mx-a", []string{"mxa-0"}, 7.5),
		miniSub("bob", "mx-b", []string{"mxb-0"}, 7.5),
	}
	cfg := Config{KeyFor: testKeyFor}

	collect := func(t *testing.T, s *Scheduler, dir string) map[string]outcomeCmp {
		t.Helper()
		out := map[string]outcomeCmp{}
		for _, sub := range subs {
			id := sub.Spec.ID
			cdir := filepath.Join(dir, campaignsDir, id)
			res, err := os.ReadFile(filepath.Join(cdir, "result.json"))
			if err != nil {
				t.Fatalf("campaign %s result: %v", id, err)
			}
			img, err := os.ReadFile(filepath.Join(cdir, "slot-0-final.img"))
			if err != nil {
				t.Fatalf("campaign %s image: %v", id, err)
			}
			cs, ok := s.Campaign(id)
			if !ok || cs.State != "done" {
				t.Fatalf("campaign %s not done: %+v", id, cs)
			}
			out[id] = outcomeCmp{
				result:    res,
				image:     img,
				message:   decodeCampaign(t, dir, sub.Tenant, id),
				baselines: cs.Baselines,
			}
		}
		return out
	}

	refDir := filepath.Join(base, "ref")
	ref, err := New(refDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := ref.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	drainOK(t, ref)
	want := collect(t, ref, refDir)

	points := 0
	for k := 0; ; k++ {
		dir := filepath.Join(base, fmt.Sprintf("k%03d", k))
		ks := faults.NewKillSwitch(k)
		killCfg := cfg
		killCfg.Hook = ks.Hook()
		s, err := New(dir, killCfg)
		if err != nil {
			t.Fatalf("kill point %d: new: %v", k, err)
		}
		for _, sub := range subs {
			s.Submit(sub) //nolint:errcheck // a fired kill point rejects later submits
		}
		drainErr := s.Drain(context.Background())
		if !ks.Fired() {
			// k is past the last kill point: this run completed clean.
			if drainErr != nil {
				t.Fatalf("unkilled run failed: %v", drainErr)
			}
			got := collect(t, s, dir)
			assertOutcomes(t, fmt.Sprintf("clean run k=%d", k), got, want)
			points = k
			break
		}
		if drainErr == nil {
			t.Fatalf("kill point %d fired but Drain reported success", k)
		}
		if !errors.Is(s.Err(), faults.ErrKilled) {
			t.Fatalf("kill point %d died with %v, want ErrKilled", k, s.Err())
		}

		rs, err := Resume(dir, cfg)
		if err != nil {
			t.Fatalf("resume after kill point %d: %v", k, err)
		}
		for _, sub := range subs {
			if err := rs.Submit(sub); err != nil && !errors.Is(err, ErrDuplicateCampaign) {
				t.Fatalf("re-submit %s after kill point %d: %v", sub.Spec.ID, k, err)
			}
		}
		if err := rs.Drain(context.Background()); err != nil {
			t.Fatalf("drain after kill point %d: %v", k, err)
		}
		got := collect(t, rs, dir)
		assertOutcomes(t, fmt.Sprintf("kill point %d", k), got, want)
	}
	if points < 20 {
		t.Fatalf("crash matrix covered only %d kill points", points)
	}
	t.Logf("scheduler crash matrix: %d kill points, all resumed bit-identically", points)
}

// outcomeCmp is everything bit-identity is asserted over: the sealed
// result, the final device image, the decoded message, the baselines.
type outcomeCmp struct {
	result    []byte
	image     []byte
	message   []byte
	baselines []float64
}

func assertOutcomes(t *testing.T, label string, got, want map[string]outcomeCmp) {
	t.Helper()
	for id, w := range want {
		g := got[id]
		if !bytes.Equal(g.result, w.result) {
			t.Fatalf("%s: campaign %s result.json differs from reference", label, id)
		}
		if !bytes.Equal(g.image, w.image) {
			t.Fatalf("%s: campaign %s final image differs from reference", label, id)
		}
		if !bytes.Equal(g.message, w.message) {
			t.Fatalf("%s: campaign %s decodes differently", label, id)
		}
		if len(g.baselines) != len(w.baselines) {
			t.Fatalf("%s: campaign %s baselines %v vs %v", label, id, g.baselines, w.baselines)
		}
		for i := range w.baselines {
			if g.baselines[i] != w.baselines[i] {
				t.Fatalf("%s: campaign %s baseline %d: %v vs %v", label, id, i, g.baselines[i], w.baselines[i])
			}
		}
	}
}

// TestFaultStormDegradesGracefully pins the degradation contract: a
// carrier dying mid-batch re-routes its campaign to a spare, a campaign
// with no spares left fails with a typed per-tenant error, and
// unaffected tenants' campaigns complete untouched — the scheduler
// never stalls.
func TestFaultStormDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	// Carriers whose serial starts with "dead" die permanently 1h into
	// their soak; everything else is healthy.
	injectorFor := func(serial string) faults.Injector {
		if len(serial) >= 4 && serial[:4] == "dead" {
			return faults.New(faults.Profile{Seed: 11, FailAtHours: 1}, serial)
		}
		return nil
	}
	s, err := New(dir, Config{
		KeyFor:      testKeyFor,
		InjectorFor: injectorFor,
		Breakers: fleet.NewBreakerSet(fleet.BreakerConfig{
			FailureThreshold: 1, BaseBackoffHours: 1, QuarantineAfterTrips: 1,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy := miniSub("alice", "storm-ok", []string{"ok-0"}, 7.5)
	rerouted := miniSub("bob", "storm-reroute", []string{"dead-0"}, 7.5, "spare-0")
	doomed := miniSub("carol", "storm-doomed", []string{"dead-1"}, 7.5)
	for _, sub := range []Submission{healthy, rerouted, doomed} {
		if err := s.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	drainOK(t, s)

	st := s.Status()
	if st.Done != 2 || st.Failed != 1 {
		t.Fatalf("fault storm: done=%d failed=%d, want 2/1 (%+v)", st.Done, st.Failed, st)
	}
	ok, _ := s.Campaign("storm-ok")
	if ok.State != "done" {
		t.Fatalf("healthy campaign: %+v", ok)
	}
	if got := decodeCampaign(t, dir, "alice", "storm-ok"); !bytes.Equal(got, healthy.Spec.Message) {
		t.Fatalf("healthy campaign decodes to %q", got)
	}
	rr, _ := s.Campaign("storm-reroute")
	if rr.State != "done" {
		t.Fatalf("rerouted campaign: %+v", rr)
	}
	if got := decodeCampaign(t, dir, "bob", "storm-reroute"); !bytes.Equal(got, rerouted.Spec.Message) {
		t.Fatalf("rerouted campaign decodes to %q", got)
	}
	dd, _ := s.Campaign("storm-doomed")
	if dd.State != "failed" || dd.Error == "" {
		t.Fatalf("doomed campaign: %+v", dd)
	}
	if ten := st.Tenants["carol"]; ten.Failed != 1 {
		t.Fatalf("carol's failure not attributed: %+v", ten)
	}
}

// TestSoakKillResume is the CI smoke: 100 tenants, killed mid-flight,
// resumed, drained — everything completes and spot-checked campaigns
// decode. (The full per-point matrix lives in TestSchedulerCrashMatrix;
// this one exercises scale.)
func TestSoakKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short")
	}
	dir := t.TempDir()
	const tenants = 100
	subs := make([]Submission, tenants)
	for i := range subs {
		subs[i] = miniSub(fmt.Sprintf("tenant-%03d", i), fmt.Sprintf("soak-%03d", i),
			[]string{fmt.Sprintf("sk%03d-0", i)}, 7.5)
	}
	ks := faults.NewKillSwitch(tenants*3 + 57) // lands mid-execution, past admission
	s, err := New(dir, Config{KeyFor: testKeyFor, Hook: ks.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		s.Submit(sub) //nolint:errcheck // the kill may land during admission
	}
	if err := s.Drain(context.Background()); err == nil {
		t.Fatal("killed soak drained cleanly — kill point never fired?")
	}
	if !ks.Fired() {
		t.Fatal("kill switch never fired")
	}

	rs, err := Resume(dir, Config{KeyFor: testKeyFor})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	for _, sub := range subs {
		if err := rs.Submit(sub); err != nil && !errors.Is(err, ErrDuplicateCampaign) {
			t.Fatalf("re-submit %s: %v", sub.Spec.ID, err)
		}
	}
	drainOK(t, rs)
	st := rs.Status()
	if st.Done != tenants || st.Failed != 0 {
		t.Fatalf("soak: done=%d failed=%d, want %d/0", st.Done, st.Failed, tenants)
	}
	for i := 0; i < tenants; i += 17 {
		sub := subs[i]
		if got := decodeCampaign(t, dir, sub.Tenant, sub.Spec.ID); !bytes.Equal(got, sub.Spec.Message) {
			t.Fatalf("campaign %s decodes to %q", sub.Spec.ID, got)
		}
	}
}
