package sched

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"invisiblebits/internal/faults"
	"invisiblebits/internal/wal"
)

// Server is the hardened net/http JSON facade over a Scheduler — the
// service surface cmd/ibserve exposes. Routes:
//
//	POST /api/submit          {tenant, spec, spares} → 202 {campaign}
//	GET  /api/status          → 200 Status
//	GET  /api/campaigns/{id}  → 200 CampaignStatus | 404
//	POST /api/drain           → 202 Status (drain continues server-side)
//	GET  /healthz             → 200 | 503 (liveness: scheduler loop alive)
//	GET  /readyz              → 200 | 503 (readiness: accepting work)
//
// Every request passes through one middleware stack: a request ID
// (echoed as X-Request-ID and attached to every log line), a structured
// access log, a panic-recovery barrier that converts handler panics
// into logged 500s instead of killed connections, and a MaxBytesReader
// body cap. Typed rejections map onto status codes AND machine-readable
// error codes so clients build retry policy without parsing prose:
// quota → 403, rate limit and saturation → 429 (with Retry-After),
// draining/stopped/dead → 503, duplicates and serial conflicts → 409
// (duplicates carry the admitted spec's digest — the idempotency
// token), oversize body → 413, validation → 400.
type Server struct {
	s   *Scheduler
	mux *http.ServeMux
	log *slog.Logger

	maxBody int64
	limiter *tenantLimiter

	reqBase string
	reqSeq  atomic.Uint64

	drainOnce sync.Once
}

// ServerConfig parameterizes the HTTP facade. The zero value serves
// with sane defaults: 1 MiB body cap, no rate limiting, discarded logs.
type ServerConfig struct {
	// Logger receives the structured access log, recovered panics, and
	// response-encoding failures. Nil discards.
	Logger *slog.Logger
	// MaxBodyBytes caps request bodies (0 means DefaultMaxBodyBytes;
	// negative disables the cap).
	MaxBodyBytes int64
	// RateLimit is the per-tenant submission token bucket; the zero
	// value disables limiting.
	RateLimit RateLimit
	// Now is the rate limiter's clock (nil means time.Now) — injectable
	// so limiter tests run on simulated time.
	Now func() time.Time
}

// DefaultMaxBodyBytes bounds request bodies: a campaign submission is a
// few KiB of JSON plus the base64 message, and the largest catalog
// device holds 64 KiB of SRAM — 1 MiB is an order of magnitude of
// headroom, not an invitation.
const DefaultMaxBodyBytes = 1 << 20

// NewServer wraps a scheduler in its HTTP facade with default hardening
// (body caps and panic recovery on, logging and rate limiting off).
func NewServer(s *Scheduler) *Server {
	return NewServerWith(s, ServerConfig{})
}

// NewServerWith wraps a scheduler in its HTTP facade with explicit
// hardening configuration.
func NewServerWith(s *Scheduler, cfg ServerConfig) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	var base [4]byte
	rand.Read(base[:]) //nolint:errcheck // crypto/rand.Read never fails
	srv := &Server{
		s:       s,
		mux:     http.NewServeMux(),
		log:     logger,
		maxBody: maxBody,
		limiter: newTenantLimiter(cfg.RateLimit, cfg.Now),
		reqBase: hex.EncodeToString(base[:]),
	}
	srv.mux.HandleFunc("/api/submit", srv.handleSubmit)
	srv.mux.HandleFunc("/api/status", srv.handleStatus)
	srv.mux.HandleFunc("/api/campaigns/", srv.handleCampaign)
	srv.mux.HandleFunc("/api/drain", srv.handleDrain)
	srv.mux.HandleFunc("/healthz", srv.handleHealthz)
	srv.mux.HandleFunc("/readyz", srv.handleReadyz)
	srv.mux.HandleFunc("/", srv.handleNotFound)
	return srv
}

// discardHandler is a slog.Handler that drops everything (slog has no
// io.Discard equivalent before Go 1.24's DiscardHandler).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// ctxKey keys request-scoped values.
type ctxKey int

const reqIDKey ctxKey = iota

// RequestID returns the request ID the middleware assigned, or "" for a
// context that never passed through the server.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// statusWriter records the committed status code for the access log and
// for the panic barrier (a panic after headers committed cannot 500).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler: the middleware stack wrapping the
// route table.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("%s-%06d", srv.reqBase, srv.reqSeq.Add(1))
	r = r.WithContext(context.WithValue(r.Context(), reqIDKey, id))
	w.Header().Set("X-Request-ID", id)
	if srv.maxBody > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, srv.maxBody)
	}
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler { // net/http's own control flow
				panic(rec)
			}
			srv.log.Error("panic in handler",
				"request_id", id, "method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			if sw.status == 0 {
				srv.writeJSON(sw, r, http.StatusInternalServerError,
					errorBody{Error: "internal server error (request " + id + ")", Code: codeInternal})
			}
		}
		srv.log.Info("request",
			"request_id", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration_ms", float64(time.Since(start).Microseconds())/1000)
	}()
	srv.mux.ServeHTTP(sw, r)
}

// Machine-readable rejection codes, mirrored by Client's typed errors.
const (
	codeQuota       = "quota_exceeded"
	codeSaturated   = "saturated"
	codeRateLimited = "rate_limited"
	codeDraining    = "draining"
	codeStopped     = "stopped"
	codeDead        = "scheduler_dead"
	codeDuplicate   = "duplicate_campaign"
	codeSerialInUse = "serial_in_use"
	codeValidation  = "validation"
	codeOversize    = "oversize_body"
	codeNotFound    = "not_found"
	codeMethod      = "method_not_allowed"
	codeInternal    = "internal"
)

type errorBody struct {
	Error string `json:"error"`
	// Code is the machine-readable rejection class (one of the code*
	// constants).
	Code string `json:"code,omitempty"`
	// Digest rides 409 duplicate-campaign rejections: the schedule
	// digest of the spec that IS admitted under this ID. A retrying
	// client whose own spec digests identically knows its earlier
	// submission landed and the lost response is the only casualty.
	Digest string `json:"digest,omitempty"`
}

// writeJSON writes a JSON response; encoder failures (a client that
// vanished mid-body, a broken pipe) are logged with the request ID so
// the chaos drill's truncated responses are diagnosable instead of
// silent.
func (srv *Server) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		srv.log.Error("response encode failed",
			"request_id", RequestID(r.Context()), "method", r.Method,
			"path", r.URL.Path, "status", code, "error", err)
	}
}

// methodNotAllowed writes the 405 with the Allow header the route table
// contract promises.
func (srv *Server) methodNotAllowed(w http.ResponseWriter, r *http.Request, allow string) {
	w.Header().Set("Allow", allow)
	srv.writeJSON(w, r, http.StatusMethodNotAllowed, errorBody{Error: allow + " only", Code: codeMethod})
}

// submitStatus maps a Submit rejection to its HTTP status and
// machine-readable code.
func submitStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusForbidden, codeQuota
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests, codeSaturated
	case errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable, codeStopped
	case errors.Is(err, ErrSchedulerDown):
		return http.StatusServiceUnavailable, codeDead
	case errors.Is(err, wal.ErrJournalIO), errors.Is(err, faults.ErrKilled):
		// The durability failure that is killing the scheduler right
		// now: the admission did NOT land. Retryable — the supervisor
		// restarts and resumes.
		return http.StatusServiceUnavailable, codeDead
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, codeDraining
	case errors.Is(err, ErrDuplicateCampaign):
		return http.StatusConflict, codeDuplicate
	case errors.Is(err, ErrSerialInUse):
		return http.StatusConflict, codeSerialInUse
	default:
		return http.StatusBadRequest, codeValidation
	}
}

// retryAfterSeconds renders a duration for the Retry-After header
// (whole seconds, at least 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		srv.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var sub Submission
	if err := dec.Decode(&sub); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			srv.writeJSON(w, r, http.StatusRequestEntityTooLarge, errorBody{
				Error: fmt.Sprintf("submission body exceeds %d bytes", tooBig.Limit),
				Code:  codeOversize,
			})
			return
		}
		// json's unknown-field error already names the field; pass it
		// through so the client learns WHICH key it misspelled.
		srv.writeJSON(w, r, http.StatusBadRequest, errorBody{Error: "parse submission: " + err.Error(), Code: codeValidation})
		return
	}
	if sub.Tenant != "" {
		if ok, wait := srv.limiter.allow(sub.Tenant); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			srv.writeJSON(w, r, http.StatusTooManyRequests, errorBody{
				Error: fmt.Sprintf("%v: tenant %q", ErrRateLimited, sub.Tenant),
				Code:  codeRateLimited,
			})
			return
		}
	}
	if err := srv.s.Submit(sub); err != nil {
		code, kind := submitStatus(err)
		body := errorBody{Error: err.Error(), Code: kind}
		switch kind {
		case codeSaturated:
			// Load-aware backoff hint: queue depth over chamber slots,
			// paced by the measured wall-clock pass cadence — not a
			// hardcoded constant that is wrong at both extremes.
			w.Header().Set("Retry-After", retryAfterSeconds(srv.s.RetryAfterHint()))
		case codeStopped, codeDead:
			// The supervisor restarts the process; invite a quick retry.
			w.Header().Set("Retry-After", "1")
		case codeDuplicate:
			if digest, ok := srv.s.CampaignDigest(sub.Spec.ID); ok {
				body.Digest = digest
			}
		}
		srv.writeJSON(w, r, code, body)
		return
	}
	srv.writeJSON(w, r, http.StatusAccepted, struct {
		Campaign string `json:"campaign"`
	}{sub.Spec.ID})
}

func (srv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		srv.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	srv.writeJSON(w, r, http.StatusOK, srv.s.Status())
}

func (srv *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		srv.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/campaigns/")
	cs, ok := srv.s.Campaign(id)
	if !ok {
		srv.writeJSON(w, r, http.StatusNotFound, errorBody{Error: "unknown campaign " + id, Code: codeNotFound})
		return
	}
	srv.writeJSON(w, r, http.StatusOK, cs)
}

// handleDrain initiates the drain and returns 202 immediately. The wait
// for quiescence runs server-side on a background context — NOT the
// request's — because a drain takes as long as the longest in-flight
// soak and must not be aborted by a client that hung up (the old
// behavior tied quiescence to r.Context(), so a dropped connection
// cancelled the wait). Clients poll GET /api/status until draining is
// set and active reaches zero.
func (srv *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		srv.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	if err := srv.s.Err(); err != nil {
		srv.writeJSON(w, r, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Code: codeDead})
		return
	}
	srv.drainOnce.Do(func() {
		go func() {
			if err := srv.s.Drain(context.Background()); err != nil {
				srv.log.Error("drain failed", "error", err)
				return
			}
			srv.log.Info("drain complete")
		}()
	})
	srv.writeJSON(w, r, http.StatusAccepted, srv.s.Status())
}

type healthBody struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Degraded reports a salvage-based resume: serving, but something
	// was quarantined or cut (see /api/status's salvage block).
	Degraded bool `json:"degraded,omitempty"`
}

// handleHealthz is liveness: 200 while the scheduling loop is alive (or
// cleanly finished), 503 once it has died on a fatal error — the signal
// for the orchestrator to restart the process so Resume can run.
func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		srv.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if err := srv.s.Err(); err != nil {
		srv.writeJSON(w, r, http.StatusServiceUnavailable, healthBody{State: "dead", Error: err.Error()})
		return
	}
	srv.writeJSON(w, r, http.StatusOK, healthBody{State: "ok"})
}

// handleReadyz is readiness: 200 only while the scheduler accepts new
// submissions. Draining, stopping, and dead states all 503 with the
// state named, so load balancers stop routing submissions while status
// queries (which still work) continue against /api/status directly.
func (srv *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		srv.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if err := srv.s.Err(); err != nil {
		srv.writeJSON(w, r, http.StatusServiceUnavailable, healthBody{State: "dead", Error: err.Error()})
		return
	}
	st := srv.s.Status()
	switch {
	case st.Stopping:
		srv.writeJSON(w, r, http.StatusServiceUnavailable, healthBody{State: "stopping"})
	case st.Drain:
		srv.writeJSON(w, r, http.StatusServiceUnavailable, healthBody{State: "draining"})
	default:
		srv.writeJSON(w, r, http.StatusOK, healthBody{
			State:    "ready",
			Degraded: srv.s.Salvage().Degraded(),
		})
	}
}

func (srv *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	srv.writeJSON(w, r, http.StatusNotFound, errorBody{Error: "no such route " + r.URL.Path, Code: codeNotFound})
}
