package sched

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Server is the thin net/http JSON facade over a Scheduler — the
// service surface cmd/ibserve exposes. Routes:
//
//	POST /api/submit          {tenant, spec, spares} → 202 {campaign}
//	GET  /api/status          → 200 Status
//	GET  /api/campaigns/{id}  → 200 CampaignStatus | 404
//	POST /api/drain           → 200 Status (after quiescence)
//
// Typed admission rejections map onto status codes so clients can
// build retry policy without parsing strings: quota → 403, saturation
// → 429 (with Retry-After), draining → 503, duplicates and serial
// conflicts → 409, validation → 400.
type Server struct {
	s   *Scheduler
	mux *http.ServeMux
}

// NewServer wraps a scheduler in its HTTP facade.
func NewServer(s *Scheduler) *Server {
	srv := &Server{s: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("/api/submit", srv.handleSubmit)
	srv.mux.HandleFunc("/api/status", srv.handleStatus)
	srv.mux.HandleFunc("/api/campaigns/", srv.handleCampaign)
	srv.mux.HandleFunc("/api/drain", srv.handleDrain)
	return srv
}

// ServeHTTP implements http.Handler.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

type errorBody struct {
	Error string `json:"error"`
}

// submitStatus maps a Submit rejection to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusForbidden
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDuplicateCampaign), errors.Is(err, ErrSerialInUse):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST only"})
		return
	}
	var sub Submission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"parse submission: " + err.Error()})
		return
	}
	if err := srv.s.Submit(sub); err != nil {
		code := submitStatus(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "60")
		}
		writeJSON(w, code, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		Campaign string `json:"campaign"`
	}{sub.Spec.ID})
}

func (srv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET only"})
		return
	}
	writeJSON(w, http.StatusOK, srv.s.Status())
}

func (srv *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET only"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/campaigns/")
	cs, ok := srv.s.Campaign(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown campaign " + id})
		return
	}
	writeJSON(w, http.StatusOK, cs)
}

func (srv *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST only"})
		return
	}
	if err := srv.s.Drain(r.Context()); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, srv.s.Status())
}
