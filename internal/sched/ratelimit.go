package sched

import (
	"sync"
	"time"
)

// RateLimit is a per-tenant token-bucket policy for the HTTP surface:
// each tenant may submit at PerSecond sustained with bursts of Burst.
// The zero value disables limiting. Rate limiting is an HTTP-layer
// concern — the scheduler's own admission control (quotas, queue
// backpressure) governs how much WORK a tenant may hold; the bucket
// governs how often a tenant may knock on the door, so one retry-happy
// client cannot starve the listener for everyone else.
type RateLimit struct {
	// PerSecond is the sustained refill rate; <= 0 disables limiting.
	PerSecond float64
	// Burst is the bucket capacity; <= 0 means a capacity of 1.
	Burst int
}

func (rl RateLimit) enabled() bool { return rl.PerSecond > 0 }

func (rl RateLimit) burst() float64 {
	if rl.Burst <= 0 {
		return 1
	}
	return float64(rl.Burst)
}

// tenantLimiter is the shared token-bucket table. The clock is
// injectable so tests drive it on simulated time. Safe for concurrent
// use.
type tenantLimiter struct {
	rl  RateLimit
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rl RateLimit, now func() time.Time) *tenantLimiter {
	if !rl.enabled() {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	return &tenantLimiter{rl: rl, now: now, buckets: map[string]*bucket{}}
}

// allow takes one token from tenant's bucket. When the bucket is dry it
// reports false plus how long until the next token accrues — the
// Retry-After the HTTP layer hands back with the 429.
func (l *tenantLimiter) allow(tenant string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.rl.burst(), last: t}
		l.buckets[tenant] = b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rl.PerSecond
		if limit := l.rl.burst(); b.tokens > limit {
			b.tokens = limit
		}
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rl.PerSecond * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After has one-second granularity
	}
	return false, wait
}
