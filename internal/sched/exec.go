package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime/debug"
	"sync"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/wal"
)

// slotRun is one slot's assignment in a pass: which campaign, which
// slot index, and — after execution — what happened. The worker
// goroutine owns it (and its slotState) between executePass's spawn and
// join.
type slotRun struct {
	c   *campState
	idx int
	sl  *slotState

	err error
	// progressed is true when the slot appended at least one durable
	// record this pass — the signal that resets the barren-pass counter.
	progressed bool
}

// passPlan is one planned chamber pass: the member campaigns batched at
// a shared (V, T, quantum) operating point, the per-slot work list, and
// the chamber clock when the pass began.
type passPlan struct {
	members  []*campState
	runnable []*campState // all runnable campaigns at planning time
	runs     []*slotRun

	v, t    float64
	quantum float64
	setup   float64
	atHours float64
}

func countUnfinished(c *campState) int {
	n := 0
	for _, sl := range c.slots {
		if !sl.finished() {
			n++
		}
	}
	return n
}

// planPassLocked picks the next chamber pass, or nil when nothing is
// runnable. The lead campaign is the oldest runnable one — unless some
// campaign has been passed over StarveLimit times, in which case IT
// leads (the starvation guard: batching must never indefinitely defer
// a tenant whose operating point is unpopular). Leading is the whole
// guarantee — the chamber runs at the lead's (V, T) point — so
// compatible campaigns may still share the pass; a starved campaign
// with no compatible peers runs alone. Every runnable campaign sharing
// the lead's (V, T) point and slice quantum joins until the chamber is
// full.
func (s *Scheduler) planPassLocked() *passPlan {
	var runnable []*campState
	for _, id := range s.queue {
		if c := s.camps[id]; c.runnable() {
			runnable = append(runnable, c)
		}
	}
	if len(runnable) == 0 {
		return nil
	}
	var lead *campState
	for _, c := range runnable {
		if c.deferrals >= s.cfg.starveLimit() {
			lead = c
			break
		}
	}
	if lead == nil {
		lead = runnable[0]
	}
	members := []*campState{lead}
	used := countUnfinished(lead)
	if !s.cfg.DisableBatching {
		for _, c := range runnable {
			if c == lead {
				continue
			}
			if c.model.VAccV != lead.model.VAccV || c.model.TAccC != lead.model.TAccC ||
				c.spec.SliceHours != lead.spec.SliceHours {
				continue
			}
			n := countUnfinished(c)
			if used+n > s.cfg.chamberSlots() {
				continue // doesn't fit this pass; its deferral counter ticks
			}
			members = append(members, c)
			used += n
		}
	}
	p := &passPlan{
		members:  members,
		runnable: runnable,
		v:        lead.model.VAccV,
		t:        lead.model.TAccC,
		quantum:  lead.spec.SliceHours,
		atHours:  s.chamberHours,
	}
	if !s.lastPoint || s.lastV != p.v || s.lastT != p.t {
		p.setup = s.cfg.setupHours()
	}
	for _, c := range members {
		for i, sl := range c.slots {
			if !sl.finished() {
				p.runs = append(p.runs, &slotRun{c: c, idx: i, sl: sl})
			}
		}
	}
	return p
}

// commitPassLocked makes the pass durable — the batch-boundary kill
// point — and advances the shared chamber clock and the fairness
// counters. Only after the pass record is on disk may any slot work
// run.
func (s *Scheduler) commitPassLocked(p *passPlan) error {
	ids := make([]string, len(p.members))
	for i, c := range p.members {
		ids[i] = c.id
	}
	if err := s.append(&Entry{
		Type: entryPass, Members: ids,
		VAccV: p.v, TAccC: p.t, Quantum: p.quantum, Setup: p.setup,
		AtHours: p.atHours, Slot: -1,
	}); err != nil {
		return err
	}
	s.chamberHours = p.atHours + p.setup + p.quantum
	s.passes++
	if p.setup > 0 {
		s.setups++
	}
	if len(p.members) > 1 {
		// Mirror Replay's accounting: every unfinished slot riding a
		// multi-campaign pass is a batched slice.
		for _, c := range p.members {
			for _, sl := range c.slots {
				if sl.record == nil {
					s.batchedSlices++
				}
			}
		}
	}
	s.lastV, s.lastT, s.lastPoint = p.v, p.t, true

	inPass := map[*campState]bool{}
	for _, c := range p.members {
		inPass[c] = true
	}
	for _, c := range p.runnable {
		if inPass[c] {
			c.deferrals = 0
		} else {
			c.deferrals++
		}
	}
	return nil
}

// executePass runs every slot in parallel — the chamber soaks all
// boards at once; the workers just drive their controllers — and joins.
func (s *Scheduler) executePass(p *passPlan) {
	var wg sync.WaitGroup
	for _, run := range p.runs {
		wg.Add(1)
		go func(run *slotRun) {
			defer wg.Done()
			s.runSlot(run, p)
		}(run)
	}
	wg.Wait()
}

// ErrSlotPanic is the sentinel every recovered slot-worker panic wraps.
// It also classifies as faults.ErrPermanent: a controller that panicked
// mid-soak left its carrier in an unknowable analog state, so the slot
// takes the same road as a dead board — breaker trip, spare re-route,
// and a terminal campaign failure only when no spare remains. One
// panicking tenant must never take the process (and every other
// tenant's multi-day soak) down with it.
var ErrSlotPanic = errors.New("sched: slot worker panicked")

// SlotPanicError is a recovered slot-worker panic, carrying the
// campaign/slot coordinates, the panic value, and the stack at the
// point of recovery for the operator log.
type SlotPanicError struct {
	Campaign string
	Slot     int
	Serial   string
	Value    any
	Stack    []byte
}

func (e *SlotPanicError) Error() string {
	return fmt.Sprintf("sched: slot worker panicked: campaign %q slot %d (serial %q): %v",
		e.Campaign, e.Slot, e.Serial, e.Value)
}

// Is classifies the panic as both ErrSlotPanic and a permanent device
// fault, so the existing reroute/quarantine triage applies unchanged.
func (e *SlotPanicError) Is(target error) bool {
	return target == ErrSlotPanic || target == faults.ErrPermanent
}

// breakerAllow/breakerRecord are the nil-safe breaker gates on the
// shared chamber clock.
func (s *Scheduler) breakerAllow(deviceID string, clockHours float64) error {
	if s.cfg.Breakers == nil {
		return nil
	}
	return s.cfg.Breakers.For(deviceID).Allow(clockHours)
}

func (s *Scheduler) breakerRecord(deviceID string, err error, clockHours float64) {
	if s.cfg.Breakers == nil {
		return
	}
	s.cfg.Breakers.For(deviceID).Record(err, clockHours)
}

// bootstrapSlot builds the slot's rig and session: from its newest
// verifiable durable checkpoint when one exists, from scratch otherwise.
// A checkpoint image that fails to load — bit rot since the resume-time
// verification — is struck from history with a durable ckptbad record
// and the slot falls back to the previous generation, exactly what a
// fresh resume would do; the journal high-water marks are rewound with
// it so re-run slices re-append in agreement with replay. Device
// identity is a pure function of (model, serial), so a from-scratch
// rebuild replays any abandoned progress bit-identically.
func (s *Scheduler) bootstrapSlot(ctx context.Context, c *campState, idx int, sl *slotState) error {
	var ropts []rig.Option
	if s.cfg.InjectorFor != nil {
		if inj := s.cfg.InjectorFor(sl.serial); inj != nil {
			ropts = append(ropts, rig.WithInjector(inj))
		}
	}
	sl.sess = nil
	sl.sliceCount = 0
	for n := len(sl.ckpts); n > 0; n = len(sl.ckpts) {
		ck := sl.ckpts[n-1]
		d, err := device.LoadFileFS(s.fsys, filepath.Join(c.dir, ck.Image))
		if err != nil {
			if aerr := s.j.Append(&Entry{Type: entryCkptBad, Campaign: c.id, Slot: idx, Image: ck.Image}); aerr != nil {
				return aerr
			}
			sl.ckpts = sl.ckpts[:n-1]
			if prev := sl.newestCkpt(); prev != nil {
				sl.journaledApplied = prev.Applied
			} else {
				sl.journaledApplied = 0
				sl.preparedJournaled = false
			}
			continue
		}
		r := rig.New(d, ropts...)
		if err := r.RestoreState(*ck.Rig); err != nil {
			return fmt.Errorf("sched: campaign %q rig state: %w", c.id, err)
		}
		sess, err := core.ResumeEncode(ctx, r, sl.seg, c.opts, ck.Applied)
		if err != nil {
			return err
		}
		sl.rig, sl.sess = r, sess
		sl.prepared = true
		sl.applied = ck.Applied
		return nil
	}
	d, err := device.New(c.model, sl.serial)
	if err != nil {
		return err
	}
	sl.rig = rig.New(d, ropts...)
	sl.prepared = false
	sl.applied = 0
	return nil
}

// runSlot drives one slot through one pass quantum: bootstrap if
// needed, prepare, stress, journal, checkpoint on cadence, finish when
// the schedule completes. Journal appends are suppressed while the slot
// is re-running work the journal already holds (an in-memory rebuild
// after a transient fault replays from the last checkpoint; re-appending
// those records would rewind the replay stream).
//
// A panic anywhere in the slot's work — bootstrap, session, stress
// kernel — is contained here: it recovers into a SlotPanicError
// (permanent, so applyPassLocked re-routes to a spare or fails only
// this campaign) and is charged to the carrier's breaker, instead of
// unwinding the goroutine and killing every tenant's campaign at once.
func (s *Scheduler) runSlot(run *slotRun, p *passPlan) {
	defer func() {
		if r := recover(); r != nil {
			run.err = &SlotPanicError{
				Campaign: run.c.id, Slot: run.idx, Serial: run.sl.serial,
				Value: r, Stack: debug.Stack(),
			}
			if run.sl.rig != nil {
				s.breakerRecord(run.sl.rig.Device().DeviceID(), run.err, p.atHours+p.setup+p.quantum)
			}
		}
	}()
	ctx := context.Background()
	c, sl := run.c, run.sl
	if sl.rig == nil {
		if err := s.bootstrapSlot(ctx, c, run.idx, sl); err != nil {
			run.err = err
			return
		}
	}
	devID := sl.rig.Device().DeviceID()
	if err := s.breakerAllow(devID, p.atHours); err != nil {
		run.err = err
		return
	}
	run.err = s.driveSlot(ctx, run, p)
	s.breakerRecord(devID, run.err, p.atHours+p.setup+p.quantum)
}

func (s *Scheduler) driveSlot(ctx context.Context, run *slotRun, p *passPlan) error {
	c, sl := run.c, run.sl
	if !sl.prepared {
		sess, err := core.BeginEncode(ctx, sl.rig, sl.seg, c.opts)
		if err != nil {
			return err
		}
		sl.sess = sess
		sl.prepared = true
		if !sl.preparedJournaled {
			if err := s.j.Append(&Entry{Type: entryPrepared, Campaign: c.id, Slot: run.idx}); err != nil {
				return err
			}
			sl.preparedJournaled = true
			run.progressed = true
		}
	}
	if err := sl.sess.StressSlice(ctx, p.quantum); err != nil {
		return err
	}
	sl.applied = sl.sess.AppliedHours()
	sl.sliceCount++
	if sl.applied > sl.journaledApplied {
		if err := s.j.Append(&Entry{
			Type: entrySlice, Campaign: c.id, Slot: run.idx,
			Applied: sl.applied, Total: sl.sess.TotalHours(),
		}); err != nil {
			return err
		}
		sl.journaledApplied = sl.applied
		run.progressed = true
	}
	remaining := sl.sess.RemainingHours()
	// Checkpoint on cadence — but only when the journal stream is at
	// this exact position (catch-up replays skip it; the checkpoint is
	// already on disk from the first time through).
	if remaining > 0 && sl.sliceCount%c.spec.CheckpointEvery == 0 && sl.applied == sl.journaledApplied {
		if err := s.checkpointSlot(c, run, sl); err != nil {
			return err
		}
	}
	if remaining > 0 {
		return nil
	}
	rec, err := sl.sess.Finish(ctx)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("slot-%d-final.img", run.idx)
	if err := s.j.Gate(fmt.Sprintf("image/final/%s/%d", c.id, run.idx)); err != nil {
		return err
	}
	if err := sl.rig.Device().SaveFileFS(s.fsys, filepath.Join(c.dir, name)); err != nil {
		return fmt.Errorf("%w: campaign %q final image for slot %d: %w", wal.ErrJournalIO, c.id, run.idx, err)
	}
	state := sl.rig.State()
	if err := s.j.Append(&Entry{
		Type: entryEncoded, Campaign: c.id, Slot: run.idx,
		Applied: state.ClockHours, Image: name, Rig: &state, Record: rec,
	}); err != nil {
		return err
	}
	sl.record, sl.finalImage, sl.finalClock = rec, name, state.ClockHours
	run.progressed = true
	return nil
}

// checkpointSlot makes the slot's position durable: atomic device image
// first, then the journal record that makes it count.
func (s *Scheduler) checkpointSlot(c *campState, run *slotRun, sl *slotState) error {
	name := fmt.Sprintf("slot-%d-ckpt-%.4fh.img", run.idx, sl.applied)
	if err := s.j.Gate(fmt.Sprintf("image/ckpt/%s/%d", c.id, run.idx)); err != nil {
		return err
	}
	if err := sl.rig.Device().SaveFileFS(s.fsys, filepath.Join(c.dir, name)); err != nil {
		return fmt.Errorf("%w: campaign %q checkpoint image for slot %d: %w", wal.ErrJournalIO, c.id, run.idx, err)
	}
	state := sl.rig.State()
	if err := s.j.Append(&Entry{
		Type: entryCkpt, Campaign: c.id, Slot: run.idx,
		Applied: sl.applied, Image: name, Rig: &state,
	}); err != nil {
		return err
	}
	sl.ckpts = append(sl.ckpts, SlotCheckpoint{Image: name, Applied: sl.applied, Rig: &state})
	run.progressed = true
	return nil
}

// isFatal classifies errors that kill the whole scheduler: a fired kill
// point or a journal/image durability failure. Everything else is a
// slot-level fault, handled per campaign.
func isFatal(err error) bool {
	return errors.Is(err, faults.ErrKilled) || errors.Is(err, wal.ErrJournalIO)
}

// isRerouteable mirrors the fleet layer's triage: permanent device
// faults and breaker rejections mean "stop using this carrier now".
func isRerouteable(err error) bool {
	return faults.IsPermanent(err) || errors.Is(err, fleet.ErrBreakerOpen) || errors.Is(err, fleet.ErrQuarantined)
}

// applyPassLocked folds the pass outcomes back into scheduler state:
// fatal errors kill the scheduler; rerouteable slot faults consume a
// spare (or terminally fail the campaign); transient faults rewind the
// slot to its last durable checkpoint for a retry next pass; completed
// campaigns are sealed. Unaffected campaigns are untouched — that is
// the graceful-degradation contract.
func (s *Scheduler) applyPassLocked(p *passPlan) {
	byCamp := map[*campState][]*slotRun{}
	for _, r := range p.runs {
		byCamp[r.c] = append(byCamp[r.c], r)
	}
	for _, c := range p.members {
		if s.fatal != nil {
			return
		}
		progressed := false
		var firstErr error
		for _, run := range byCamp[c] {
			if run.progressed {
				progressed = true
			}
			if run.err == nil {
				continue
			}
			if isFatal(run.err) {
				s.noteFatalLocked(run.err)
				return
			}
			if firstErr == nil {
				firstErr = run.err
			}
			if c.terminal() {
				continue // a sibling slot's fault already failed the campaign
			}
			if isRerouteable(run.err) {
				if s.rerouteSlotLocked(c, run) {
					progressed = true
				}
				continue
			}
			// Transient: the carrier may have absorbed a partial slice, so
			// the in-memory state is unusable. Drop it; the next pass
			// rebuilds from the last durable checkpoint (or from scratch)
			// and replays — deterministically, appends suppressed until
			// live progress passes the journal high-water mark.
			s.rewindSlot(run.sl)
		}
		if s.fatal != nil {
			return
		}
		if c.terminal() {
			continue
		}
		if c.complete() {
			s.completeCampaignLocked(c)
			continue
		}
		if progressed {
			c.barren = 0
			continue
		}
		c.barren++
		if c.barren >= s.cfg.maxBarrenPasses() {
			if firstErr == nil {
				firstErr = errors.New("sched: no slot fault recorded")
			}
			s.failCampaignLocked(c, fmt.Errorf("sched: no durable progress in %d consecutive passes: %w", c.barren, firstErr))
		}
	}
	s.cond.Broadcast()
}

// rewindSlot discards a slot's in-memory state so the next pass
// rebuilds it from the last durable checkpoint.
func (s *Scheduler) rewindSlot(sl *slotState) {
	sl.rig = nil
	sl.sess = nil
	sl.prepared = false
	sl.applied = 0
	if ck := sl.newestCkpt(); ck != nil {
		sl.applied = ck.Applied
	}
	sl.sliceCount = 0
}

// rerouteSlotLocked moves a slot whose carrier died onto a spare,
// restarting the slot from scratch (the spare is a different die; the
// old carrier's progress is physically unreachable). Without a spare
// the campaign fails with the carrier's error. Returns true when a
// reroute record was appended (durable progress).
func (s *Scheduler) rerouteSlotLocked(c *campState, run *slotRun) bool {
	if len(c.spares) == 0 {
		s.failCampaignLocked(c, fmt.Errorf("sched: carrier %q is gone and no spares remain: %w", run.sl.serial, run.err))
		return false
	}
	spare := c.spares[0]
	if err := s.append(&Entry{
		Type: entryReroute, Campaign: c.id, Slot: run.idx,
		From: run.sl.serial, To: spare,
	}); err != nil {
		return false
	}
	c.spares = c.spares[1:]
	*run.sl = slotState{serial: spare, seg: run.sl.seg}
	return true
}

// completeCampaignLocked seals a campaign whose every live slot minted
// its record: probe the per-slot fresh-capture baselines from the
// durable final images (deterministic regardless of crash history —
// the images ARE the state), write result.json, then append the done
// record that makes it all count.
func (s *Scheduler) completeCampaignLocked(c *campState) {
	res := &campaign.Result{
		Campaign:     c.id,
		MessageBytes: len(c.spec.Message),
		SegmentSizes: c.segs,
		Records:      make([]*core.Record, len(c.slots)),
		Images:       make([]string, len(c.slots)),
	}
	var baselines []float64
	captures := c.spec.Captures
	if captures <= 0 {
		captures = rig.DefaultHealthCaptures
	}
	for i, sl := range c.slots {
		if !sl.live() {
			continue
		}
		res.Records[i] = sl.record
		res.Images[i] = sl.finalImage
		res.EquivalentHours += sl.finalClock
		d, err := device.LoadFileFS(s.fsys, filepath.Join(c.dir, sl.finalImage))
		if err != nil {
			s.noteFatalLocked(fmt.Errorf("%w: campaign %q final image for baseline probe: %w", wal.ErrJournalIO, c.id, err))
			return
		}
		probe, err := rig.New(d).ProbeHealth(captures, 0)
		if err != nil {
			s.failCampaignLocked(c, fmt.Errorf("sched: baseline probe for slot %d: %w", i, err))
			return
		}
		baselines = append(baselines, probe.MeanMargin)
	}
	resJSON, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		s.failCampaignLocked(c, fmt.Errorf("sched: marshal result: %w", err))
		return
	}
	if err := s.gate("result/" + c.id); err != nil {
		return
	}
	if err := ioatomic.WriteFileSealed(s.fsys, filepath.Join(c.dir, "result.json"), resJSON, 0o644); err != nil {
		s.noteFatalLocked(fmt.Errorf("%w: campaign %q persist result: %w", wal.ErrJournalIO, c.id, err))
		return
	}
	if err := s.append(&Entry{
		Type: entryDone, Campaign: c.id,
		AtHours: s.chamberHours, Baselines: baselines, Slot: -1,
	}); err != nil {
		return
	}
	c.done = true
	c.doneAt = s.chamberHours
	c.baselines = baselines
	s.retireLocked(c)
	ts := s.tenants[c.tenant]
	ts.done++
	s.latencies = append(s.latencies, c.doneAt-c.submitAt)
}

// failCampaignLocked terminally fails a campaign with a typed,
// per-tenant error. The failure is durable: a resumed scheduler will
// not retry it.
func (s *Scheduler) failCampaignLocked(c *campState, cause error) {
	if err := s.append(&Entry{
		Type: entryFailed, Campaign: c.id,
		Error: cause.Error(), AtHours: s.chamberHours, Slot: -1,
	}); err != nil {
		return
	}
	c.failed = true
	c.errText = cause.Error()
	c.doneAt = s.chamberHours
	s.retireLocked(c)
	s.tenants[c.tenant].failed++
}

// retireLocked removes a now-terminal campaign from the queue and
// releases its quota holds (chamber-hour charges are cumulative and
// stay).
func (s *Scheduler) retireLocked(c *campState) {
	for i, id := range s.queue {
		if id == c.id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	ts := s.tenants[c.tenant]
	ts.active--
	ts.devices -= c.devsHeld
}
