package sched

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func decodeErrorBody(t *testing.T, w *httptest.ResponseRecorder) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body %q: %v", w.Body, err)
	}
	return eb
}

// TestServerRouteTable pins the whole route contract: wrong methods get
// 405 with an Allow header, unknown paths get a typed JSON 404, and
// every response carries a request ID.
func TestServerRouteTable(t *testing.T) {
	srv := NewServer(newIdleScheduler(t, Config{}))
	routes := []struct {
		path   string
		allow  string // the one allowed method
		probe  string // a method that must be rejected
	}{
		{"/api/submit", http.MethodPost, http.MethodGet},
		{"/api/drain", http.MethodPost, http.MethodDelete},
		{"/api/status", http.MethodGet, http.MethodPost},
		{"/api/campaigns/x", http.MethodGet, http.MethodPut},
		{"/healthz", http.MethodGet, http.MethodPost},
		{"/readyz", http.MethodGet, http.MethodPost},
	}
	for _, rt := range routes {
		req := httptest.NewRequest(rt.probe, rt.path, nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: %d, want 405", rt.probe, rt.path, w.Code)
		}
		if got := w.Header().Get("Allow"); got != rt.allow {
			t.Fatalf("%s %s: Allow=%q, want %q", rt.probe, rt.path, got, rt.allow)
		}
		if eb := decodeErrorBody(t, w); eb.Code != codeMethod {
			t.Fatalf("%s %s: code=%q, want %q", rt.probe, rt.path, eb.Code, codeMethod)
		}
		if w.Header().Get("X-Request-ID") == "" {
			t.Fatalf("%s %s: response missing X-Request-ID", rt.probe, rt.path)
		}
	}

	// Unknown paths are a typed JSON 404, not the stdlib's text page.
	w := getPath(t, srv, "/api/nope")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d", w.Code)
	}
	if eb := decodeErrorBody(t, w); eb.Code != codeNotFound {
		t.Fatalf("unknown route code: %q", eb.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("unknown route content type: %q", ct)
	}

	// Request IDs are unique per request.
	a := getPath(t, srv, "/healthz").Header().Get("X-Request-ID")
	b := getPath(t, srv, "/healthz").Header().Get("X-Request-ID")
	if a == b {
		t.Fatalf("request IDs not unique: %q", a)
	}
}

// TestServerSubmitBodyHardening pins the body-parsing defenses: an
// oversize body is a typed 413, an unknown field is a 400 that names
// the offending key.
func TestServerSubmitBodyHardening(t *testing.T) {
	s := newIdleScheduler(t, Config{})
	srv := NewServerWith(s, ServerConfig{MaxBodyBytes: 512})

	big := strings.NewReader(`{"tenant":"` + strings.Repeat("a", 1024) + `"}`)
	req := httptest.NewRequest(http.MethodPost, "/api/submit", big)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize submit: %d %s", w.Code, w.Body)
	}
	if eb := decodeErrorBody(t, w); eb.Code != codeOversize {
		t.Fatalf("oversize code: %q", eb.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/api/submit",
		strings.NewReader(`{"tenant":"alice","sparez":["x"]}`))
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", w.Code, w.Body)
	}
	eb := decodeErrorBody(t, w)
	if eb.Code != codeValidation || !strings.Contains(eb.Error, "sparez") {
		t.Fatalf("unknown-field rejection must name the field: %+v", eb)
	}
}

// TestServerTenantRateLimit pins the token bucket on a simulated clock:
// bursts pass, the next submit 429s with a Retry-After, time restores
// tokens, and tenants do not share buckets.
func TestServerTenantRateLimit(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	s := newIdleScheduler(t, Config{})
	srv := NewServerWith(s, ServerConfig{
		RateLimit: RateLimit{PerSecond: 1, Burst: 2},
		Now:       clock,
	})

	// Two submissions burst through (the second is a duplicate → 409,
	// but it consumed a token, proving the limiter runs before Submit).
	if w := postJSON(t, srv, "/api/submit", miniSub("alice", "rl-1", []string{"rl-0"}, 5)); w.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", w.Code, w.Body)
	}
	if w := postJSON(t, srv, "/api/submit", miniSub("alice", "rl-1", []string{"rl-0"}, 5)); w.Code != http.StatusConflict {
		t.Fatalf("second submit: %d %s", w.Code, w.Body)
	}
	w := postJSON(t, srv, "/api/submit", miniSub("alice", "rl-2", []string{"rl-9"}, 5))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("bucket-dry submit: %d %s", w.Code, w.Body)
	}
	if eb := decodeErrorBody(t, w); eb.Code != codeRateLimited {
		t.Fatalf("bucket-dry code: %q", eb.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("rate-limited response missing Retry-After")
	}

	// Another tenant has its own bucket.
	if w := postJSON(t, srv, "/api/submit", miniSub("bob", "rl-3", []string{"rl-8"}, 5)); w.Code != http.StatusAccepted {
		t.Fatalf("other tenant: %d %s", w.Code, w.Body)
	}

	// A second of simulated time refills one token.
	now = now.Add(time.Second)
	if w := postJSON(t, srv, "/api/submit", miniSub("alice", "rl-4", []string{"rl-7"}, 5)); w.Code != http.StatusAccepted {
		t.Fatalf("post-refill submit: %d %s", w.Code, w.Body)
	}
}

// TestServerDuplicateCarriesDigest pins the idempotency handshake: a
// 409 duplicate-campaign advertises the admitted spec's schedule
// digest.
func TestServerDuplicateCarriesDigest(t *testing.T) {
	s := newIdleScheduler(t, Config{})
	srv := NewServer(s)
	sub := miniSub("alice", "dup-1", []string{"dup-0"}, 5)
	if w := postJSON(t, srv, "/api/submit", sub); w.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", w.Code, w.Body)
	}
	w := postJSON(t, srv, "/api/submit", sub)
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate: %d %s", w.Code, w.Body)
	}
	eb := decodeErrorBody(t, w)
	if eb.Code != codeDuplicate {
		t.Fatalf("duplicate code: %q", eb.Code)
	}
	if want := sub.Spec.ScheduleDigest(); eb.Digest != want {
		t.Fatalf("duplicate digest %q, want %q", eb.Digest, want)
	}
}

// TestServerHealthEndpoints walks /healthz and /readyz through the
// lifecycle states.
func TestServerHealthEndpoints(t *testing.T) {
	s := newIdleScheduler(t, Config{})
	srv := NewServer(s)

	assertHealth := func(path string, code int, state string) {
		t.Helper()
		w := getPath(t, srv, path)
		if w.Code != code {
			t.Fatalf("%s: %d %s, want %d", path, w.Code, w.Body, code)
		}
		var hb healthBody
		if err := json.Unmarshal(w.Body.Bytes(), &hb); err != nil {
			t.Fatalf("%s body: %v", path, err)
		}
		if hb.State != state {
			t.Fatalf("%s state %q, want %q", path, hb.State, state)
		}
	}

	assertHealth("/healthz", http.StatusOK, "ok")
	assertHealth("/readyz", http.StatusOK, "ready")

	// Draining: alive, not ready.
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	assertHealth("/healthz", http.StatusOK, "ok")
	assertHealth("/readyz", http.StatusServiceUnavailable, "draining")

	// Stopping preempts draining in the readiness report.
	s.mu.Lock()
	s.draining = false
	s.stopping = true
	s.mu.Unlock()
	assertHealth("/readyz", http.StatusServiceUnavailable, "stopping")

	// Dead: both endpoints 503 and name the fatal error.
	s.mu.Lock()
	s.stopping = false
	s.fatal = errors.New("journal ate itself")
	s.mu.Unlock()
	assertHealth("/healthz", http.StatusServiceUnavailable, "dead")
	assertHealth("/readyz", http.StatusServiceUnavailable, "dead")

	// A dead scheduler's submit is a typed, retryable 503.
	w := postJSON(t, srv, "/api/submit", miniSub("alice", "hz-1", []string{"hz-0"}, 5))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit to dead scheduler: %d %s", w.Code, w.Body)
	}
	if eb := decodeErrorBody(t, w); eb.Code != codeDead {
		t.Fatalf("dead submit code: %q", eb.Code)
	}
	// Drain against a dead scheduler is refused, not accepted.
	if w := postJSON(t, srv, "/api/drain", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain dead scheduler: %d %s", w.Code, w.Body)
	}
}

// TestServerPanicContainment pins the middleware barrier: a panicking
// handler becomes a logged 500 with the request ID in the body, and the
// server keeps serving afterward.
func TestServerPanicContainment(t *testing.T) {
	srv := NewServer(newIdleScheduler(t, Config{}))
	srv.mux.HandleFunc("/api/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	w := getPath(t, srv, "/api/boom")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d %s", w.Code, w.Body)
	}
	eb := decodeErrorBody(t, w)
	if eb.Code != codeInternal {
		t.Fatalf("panic code: %q", eb.Code)
	}
	id := w.Header().Get("X-Request-ID")
	if id == "" || !strings.Contains(eb.Error, id) {
		t.Fatalf("500 body %q does not cite request ID %q", eb.Error, id)
	}
	// The server survived; the next request is served normally.
	if w := getPath(t, srv, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("post-panic health: %d %s", w.Code, w.Body)
	}
	// http.ErrAbortHandler stays net/http's control flow: re-panicked,
	// not converted to a 500.
	srv.mux.HandleFunc("/api/abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("ErrAbortHandler was swallowed: %v", r)
		}
	}()
	getPath(t, srv, "/api/abort")
	t.Fatal("unreachable: abort must re-panic")
}

// TestSubmitStatusMapping pins the full typed-error → (status, code)
// table, including errors the other tests cannot easily provoke over
// HTTP.
func TestSubmitStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		code int
		kind string
	}{
		{ErrQuotaExceeded, http.StatusForbidden, codeQuota},
		{ErrSaturated, http.StatusTooManyRequests, codeSaturated},
		{ErrStopped, http.StatusServiceUnavailable, codeStopped},
		{ErrSchedulerDown, http.StatusServiceUnavailable, codeDead},
		{ErrDraining, http.StatusServiceUnavailable, codeDraining},
		{ErrDuplicateCampaign, http.StatusConflict, codeDuplicate},
		{ErrSerialInUse, http.StatusConflict, codeSerialInUse},
		{errors.New("sched: campaign without serials"), http.StatusBadRequest, codeValidation},
	}
	for _, c := range cases {
		wrapped := errorsJoin(c.err)
		code, kind := submitStatus(wrapped)
		if code != c.code || kind != c.kind {
			t.Fatalf("submitStatus(%v) = (%d, %q), want (%d, %q)", c.err, code, kind, c.code, c.kind)
		}
	}
}

// errorsJoin wraps an error one level deep, the way Submit's fmt.Errorf
// chains do, so the table exercises errors.Is traversal rather than
// equality.
func errorsJoin(err error) error {
	return &wrappedErr{err}
}

type wrappedErr struct{ inner error }

func (w *wrappedErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrappedErr) Unwrap() error { return w.inner }
