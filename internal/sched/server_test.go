package sched

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// TestServerEndpoints drives the full JSON surface end to end against a
// live scheduler: submit, status, per-campaign lookup, typed rejection
// mapping, and drain.
func TestServerEndpoints(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Config{
		KeyFor:       testKeyFor,
		DefaultQuota: Quota{MaxCampaigns: 1, MaxDevices: 4, MaxChamberHours: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(s)

	// Accepted submission → 202 with the campaign ID echoed back.
	sub := miniSub("alice", "web-1", []string{"web-0"}, 7.5)
	w := postJSON(t, srv, "/api/submit", sub)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "web-1") {
		t.Fatalf("submit response %q does not echo the campaign", w.Body)
	}

	// Typed rejections map onto status codes.
	if w := postJSON(t, srv, "/api/submit", sub); w.Code != http.StatusConflict {
		t.Fatalf("duplicate submit: %d %s", w.Code, w.Body)
	}
	if w := postJSON(t, srv, "/api/submit", miniSub("alice", "web-2", []string{"web-9"}, 7.5)); w.Code != http.StatusForbidden {
		t.Fatalf("quota rejection: %d %s", w.Code, w.Body)
	}
	bad := miniSub("alice", "", []string{"web-8"}, 7.5)
	if w := postJSON(t, srv, "/api/submit", bad); w.Code != http.StatusBadRequest {
		t.Fatalf("validation rejection: %d %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/submit", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d %s", rec.Code, rec.Body)
	}

	// Unknown campaign → 404; wrong method → 405.
	if w := getPath(t, srv, "/api/campaigns/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d %s", w.Code, w.Body)
	}
	if w := getPath(t, srv, "/api/submit"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET submit: %d %s", w.Code, w.Body)
	}

	// Drain acknowledges with 202 immediately — quiescence happens
	// server-side — and a poll of /api/status observes completion.
	w = postJSON(t, srv, "/api/drain", nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("drain: %d %s", w.Code, w.Body)
	}
	<-s.Done()
	if err := s.Err(); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	w = getPath(t, srv, "/api/status")
	var st Status
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("status body: %v (%s)", err, w.Body)
	}
	if st.Done != 1 || st.Active != 0 || !st.Drain {
		t.Fatalf("post-drain status: %+v", st)
	}
	// A second drain is idempotent: still 202, not an error.
	if w := postJSON(t, srv, "/api/drain", nil); w.Code != http.StatusAccepted {
		t.Fatalf("repeat drain: %d %s", w.Code, w.Body)
	}

	// Campaign lookup after completion.
	w = getPath(t, srv, "/api/campaigns/web-1")
	if w.Code != http.StatusOK {
		t.Fatalf("campaign lookup: %d %s", w.Code, w.Body)
	}
	var cs CampaignStatus
	if err := json.Unmarshal(w.Body.Bytes(), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.State != "done" {
		t.Fatalf("campaign state: %+v", cs)
	}

	// A draining scheduler rejects new work with 503.
	if w := postJSON(t, srv, "/api/submit", miniSub("bob", "web-3", []string{"web-7"}, 7.5)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d %s", w.Code, w.Body)
	}

	// The decoded payload survives the whole HTTP round trip.
	if got := decodeCampaign(t, dir, "alice", "web-1"); !bytes.Equal(got, sub.Spec.Message) {
		t.Fatalf("web-1 decodes to %q", got)
	}
}

// TestServerSaturationRetryAfter pins the backpressure contract: a full
// queue returns 429 with a Retry-After hint.
func TestServerSaturationRetryAfter(t *testing.T) {
	s := newIdleScheduler(t, Config{MaxQueued: 1})
	srv := NewServer(s)
	if w := postJSON(t, srv, "/api/submit", miniSub("alice", "sat-1", []string{"sat-0"}, 5)); w.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", w.Code, w.Body)
	}
	w := postJSON(t, srv, "/api/submit", miniSub("bob", "sat-2", []string{"sat-9"}, 5))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("saturated response missing Retry-After")
	}
}
