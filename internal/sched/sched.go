// Package sched is campaign-as-a-service: a long-running, multi-tenant
// scheduler that multiplexes thousands of concurrent imprint campaigns
// over one shared thermal-chamber pool on the simulated clock. The
// paper's economics rest on a single chamber amortized across many
// boards; sched is where that amortization becomes policy:
//
//   - admission control — per-tenant quotas (campaigns, devices,
//     chamber-hours) with typed rejections and a bounded queue that
//     applies backpressure instead of buffering without limit;
//   - cross-campaign batching — campaigns whose schedules share a
//     (V, T) operating point and slice quantum ride one chamber pass
//     together, with a starvation guard so a deferred tenant's slices
//     eventually run unbatched;
//   - whole-scheduler crash safety — one write-ahead journal (wal)
//     records the tenant table, every admission, every batch
//     assignment, and every slot transition, so killing the service at
//     ANY append resumes every in-flight campaign bit-identically;
//   - graceful degradation — mid-batch faults re-route the affected
//     campaign through the circuit breakers (spare carriers) or fail
//     it with a typed, per-tenant error while unaffected tenants
//     proceed.
//
// Carrier-agnosticism comes free: the scheduler only speaks
// device.Model operating points and campaign.Spec schedules, so any
// catalog entry — SRAM today, other drift-capable memories tomorrow —
// batches by its own (V, T).
package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"invisiblebits/internal/campaign"
	"invisiblebits/internal/cliutil"
	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/stegocrypt"
	"invisiblebits/internal/storage"
	"invisiblebits/internal/wal"
)

// Typed admission rejections. Submit's contract is that every refusal
// is classifiable with errors.Is — an HTTP layer maps them to status
// codes, a fleet client maps them to retry policy.
var (
	// ErrQuotaExceeded rejects a submission that would push its tenant
	// over a quota bound (campaigns, devices, or chamber-hours).
	ErrQuotaExceeded = errors.New("sched: tenant quota exceeded")
	// ErrSaturated rejects a submission because the scheduler's bounded
	// queue is full — the backpressure signal: retry later, the
	// scheduler will not buffer unboundedly.
	ErrSaturated = errors.New("sched: submission queue saturated")
	// ErrDraining rejects a submission because the scheduler is
	// draining: in-flight campaigns finish, nothing new is admitted.
	ErrDraining = errors.New("sched: scheduler draining")
	// ErrDuplicateCampaign rejects a campaign ID the scheduler has
	// already accepted (including finished ones — their directories and
	// journal records persist).
	ErrDuplicateCampaign = errors.New("sched: campaign ID already submitted")
	// ErrSerialInUse rejects a submission naming a carrier serial some
	// other campaign already owns — two campaigns imprinting the same
	// physical board would destroy both messages.
	ErrSerialInUse = errors.New("sched: carrier serial already in use")
	// ErrStopped rejects an operation because Stop was called: this
	// incarnation is shutting down at the next pass boundary. Unlike a
	// drain, in-flight campaigns are NOT finished first — they resume
	// bit-identically in the next incarnation, so clients should retry.
	ErrStopped = errors.New("sched: scheduler stopped")
	// ErrSchedulerDown rejects an operation because the scheduling loop
	// died on a fatal journal failure. The wrapped cause is attached;
	// a supervisor restart (Resume) clears it, so clients may retry.
	ErrSchedulerDown = errors.New("sched: scheduler is dead")
	// ErrRateLimited is the HTTP layer's per-tenant token-bucket
	// rejection (the scheduler itself never returns it; it lives here so
	// server and client share one typed vocabulary).
	ErrRateLimited = errors.New("sched: tenant rate limit exceeded")
)

// Scheduler defaults.
const (
	DefaultChamberSlots = 16
	DefaultSetupHours   = 0.5
	DefaultMaxQueued    = 1024
	DefaultStarveLimit  = 8
	// DefaultMaxBarrenPasses terminates a campaign that keeps taking
	// chamber passes without any slot making durable progress — a
	// perpetually flaky fleet must not hold its queue position forever.
	DefaultMaxBarrenPasses = 25
)

const (
	journalFile  = "journal.jsonl"
	campaignsDir = "campaigns"
)

// Submission is one tenant's campaign request.
type Submission struct {
	// Tenant names the quota owner.
	Tenant string `json:"tenant"`
	// Spec is the campaign schedule (campaign.Spec: model, serials,
	// message, codec, slice/checkpoint cadence).
	Spec campaign.Spec `json:"spec"`
	// Spares lists reserve serials the scheduler may re-route slots to
	// when a carrier dies or its breaker writes it off.
	Spares []string `json:"spares,omitempty"`
}

// Config parameterizes a scheduler. The zero value selects defaults.
type Config struct {
	// ChamberSlots is the board capacity of one chamber pass; 0 means
	// DefaultChamberSlots.
	ChamberSlots int
	// SetupHours is the chamber re-targeting cost charged when a pass
	// runs at a different (V, T) than its predecessor; 0 means
	// DefaultSetupHours, negative means free re-targeting.
	SetupHours float64
	// MaxQueued bounds the scheduler's non-terminal campaigns; Submits
	// beyond it are rejected with ErrSaturated. 0 means
	// DefaultMaxQueued.
	MaxQueued int
	// DefaultQuota applies to tenants without an entry in Quotas. Zero
	// fields are unlimited.
	DefaultQuota Quota
	// Quotas are per-tenant overrides, fixed at the tenant's first
	// admission (journaled; a resumed scheduler keeps the journaled
	// quota for known tenants).
	Quotas map[string]Quota
	// DisableBatching schedules one campaign per pass — the control arm
	// of the batching benchmark.
	DisableBatching bool
	// StarveLimit is the number of passes a runnable campaign may be
	// passed over before it is promoted to batch lead — the chamber
	// adopts ITS operating point (alone if no compatible peer exists).
	// 0 means DefaultStarveLimit.
	StarveLimit int
	// MaxBarrenPasses terminates a campaign after this many consecutive
	// passes without durable progress; 0 means DefaultMaxBarrenPasses.
	MaxBarrenPasses int
	// KeyFor supplies the encryption key for a campaign (nil, or a nil
	// return, encodes unencrypted). Keys live only in memory — a
	// resumed scheduler must be handed the same function.
	KeyFor func(tenant, campaignID string) *stegocrypt.Key
	// InjectorFor mounts a fault injector on the carrier with the given
	// serial (nil, or a nil return, for clean rigs). Deterministic
	// injectors keep resumed runs bit-identical.
	InjectorFor func(serial string) faults.Injector
	// Breakers is the shared circuit-breaker set gating every slot
	// operation; nil disables breaker enforcement.
	Breakers *fleet.BreakerSet
	// Hook is the crash-test kill-point hook consulted at every journal
	// append and image/result write. Nil in production.
	Hook faults.Hook
	// NoSync skips per-append fsync (wal.Options.NoSync). Benchmarks
	// only — it voids the crash-safety contract.
	NoSync bool
	// FS is the filesystem seam for every durable artifact (journal,
	// specs, images, results). Nil means the real OS filesystem;
	// fault-injection tests substitute a storage.FaultFS.
	FS storage.FS
}

func (c Config) chamberSlots() int {
	if c.ChamberSlots <= 0 {
		return DefaultChamberSlots
	}
	return c.ChamberSlots
}

func (c Config) setupHours() float64 {
	if c.SetupHours == 0 {
		return DefaultSetupHours
	}
	if c.SetupHours < 0 {
		return 0
	}
	return c.SetupHours
}

func (c Config) maxQueued() int {
	if c.MaxQueued <= 0 {
		return DefaultMaxQueued
	}
	return c.MaxQueued
}

func (c Config) starveLimit() int {
	if c.StarveLimit <= 0 {
		return DefaultStarveLimit
	}
	return c.StarveLimit
}

func (c Config) maxBarrenPasses() int {
	if c.MaxBarrenPasses <= 0 {
		return DefaultMaxBarrenPasses
	}
	return c.MaxBarrenPasses
}

func (c Config) quotaFor(tenant string) Quota {
	if q, ok := c.Quotas[tenant]; ok {
		return q
	}
	return c.DefaultQuota
}

func (c Config) keyFor(tenant, id string) *stegocrypt.Key {
	if c.KeyFor == nil {
		return nil
	}
	return c.KeyFor(tenant, id)
}

// tenantState is one tenant's live quota accounting.
type tenantState struct {
	quota       Quota
	active      int     // non-terminal campaigns
	devices     int     // serials + spares held by non-terminal campaigns
	estHours    float64 // cumulative chamber-hour estimate ever charged
	done        int
	failed      int
	quarantined int
}

// slotState is one campaign slot's live position. During a pass the
// slot belongs to its worker goroutine; between passes it belongs to
// the scheduler loop.
type slotState struct {
	serial string
	seg    []byte // message segment (nil for zero-width slots)

	rig  *rig.Rig
	sess *core.EncodeSession

	prepared   bool
	applied    float64
	sliceCount int

	// Journal high-water marks: after an in-memory rebuild from a
	// checkpoint the slot re-runs slices the journal already holds, and
	// re-appending them would rewind the replay stream — so appends are
	// suppressed until live progress passes the high-water mark again.
	preparedJournaled bool
	journaledApplied  float64

	// ckpts is the surviving durable checkpoint history, oldest first
	// (rebuild bootstrap). The newest generation is tried first; one that
	// fails verification is struck with a ckptbad record and the slot
	// falls back to the previous generation or a scratch rebuild.
	ckpts []SlotCheckpoint

	record     *core.Record
	finalImage string
	finalClock float64
}

// newestCkpt returns the newest surviving checkpoint generation, or nil.
func (sl *slotState) newestCkpt() *SlotCheckpoint {
	if n := len(sl.ckpts); n > 0 {
		return &sl.ckpts[n-1]
	}
	return nil
}

func (sl *slotState) live() bool     { return len(sl.seg) > 0 }
func (sl *slotState) finished() bool { return !sl.live() || sl.record != nil }

// campState is one campaign's live scheduling state.
type campState struct {
	id     string
	tenant string
	spec   campaign.Spec
	model  device.Model
	opts   core.Options
	segs   []int
	slots  []*slotState
	spares []string
	dir    string

	estHours  float64
	devsHeld  int // serials + spares charged against the tenant's device quota
	submitSeq int
	submitAt  float64

	deferrals int
	barren    int

	done   bool
	failed bool
	// quarantined parks a campaign whose on-disk state was unrecoverable
	// at resume (spec.json lost or corrupt). Terminal; never scheduled.
	quarantined bool
	errText     string
	doneAt      float64
	baselines   []float64
}

func (c *campState) terminal() bool { return c.done || c.failed || c.quarantined }

func (c *campState) runnable() bool {
	if c.terminal() {
		return false
	}
	for _, sl := range c.slots {
		if !sl.finished() {
			return true
		}
	}
	return false
}

// complete reports whether every live slot minted its record.
func (c *campState) complete() bool {
	for _, sl := range c.slots {
		if !sl.finished() {
			return false
		}
	}
	return true
}

// Scheduler is the multi-tenant campaign scheduler. All methods are
// safe for concurrent use.
type Scheduler struct {
	cfg  Config
	dir  string
	j    *wal.Journal
	fsys storage.FS

	// salvage is the degraded-resume report; nil for a fresh scheduler,
	// non-nil (possibly clean) after Resume.
	salvage *ResumeSummary

	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantState
	camps   map[string]*campState
	queue   []string          // non-terminal campaign IDs, admission order
	serials map[string]string // serial → owning campaign, never released

	chamberHours  float64
	passes        int
	setups        int
	batchedSlices int
	lastV, lastT  float64
	lastPoint     bool

	latencies []float64 // completed-campaign latencies, chamber hours

	// passWallSecs is an EWMA of the measured wall-clock duration of one
	// chamber pass — the basis for load-aware Retry-After hints.
	passWallSecs float64

	draining bool
	stopping bool
	fatal    error
	done     chan struct{}
}

// New starts a fresh scheduler rooted at dir: opens a new journal and
// launches the scheduling loop. A directory that already holds a
// journal is refused — that scheduler's truth is on disk, and Resume is
// the only safe way back in.
func New(dir string, cfg Config) (*Scheduler, error) {
	if err := storage.Default(cfg.FS).MkdirAll(filepath.Join(dir, campaignsDir), 0o755); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	j, err := wal.Create(filepath.Join(dir, journalFile), wal.Options{Hook: cfg.Hook, NoSync: cfg.NoSync, FS: cfg.FS})
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("sched: %s already holds a journal; use Resume: %w", dir, err)
		}
		return nil, err
	}
	s := newScheduler(dir, cfg, j)
	go s.loop()
	return s, nil
}

func newScheduler(dir string, cfg Config, j *wal.Journal) *Scheduler {
	s := &Scheduler{
		cfg:     cfg,
		dir:     dir,
		j:       j,
		fsys:    storage.Default(cfg.FS),
		tenants: map[string]*tenantState{},
		camps:   map[string]*campState{},
		serials: map[string]string{},
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// ResumeSummary reports what a degraded scheduler resume had to give up
// on — the typed outcome operators see (startup log, /status) instead of
// a silent recovery. All fields zero/empty means the resume was clean.
type ResumeSummary struct {
	// JournalRecords is how many journal records were replayed.
	JournalRecords int `json:"journal_records"`
	// DroppedRecords is how many structurally-parsed records were
	// discarded because replay validation rejected them (corrupt
	// suffix); DroppedBytes counts all journal bytes cut, including
	// unparseable ones.
	DroppedRecords int   `json:"dropped_records,omitempty"`
	DroppedBytes   int64 `json:"dropped_bytes,omitempty"`
	// TornTail reports the benign signature of dying mid-append, as
	// opposed to mid-file corruption.
	TornTail bool `json:"torn_tail,omitempty"`
	// Reason says why the journal was cut ("" when it was not).
	Reason string `json:"reason,omitempty"`
	// Quarantined lists campaigns parked because their on-disk state was
	// unrecoverable (spec.json lost, corrupt, or digest-mismatched).
	// Every other campaign resumed normally.
	Quarantined []string `json:"quarantined,omitempty"`
	// BadCheckpoints lists checkpoint images that failed verification
	// and were struck from history (ckptbad records appended); the slot
	// fell back to an older generation or a scratch rebuild.
	BadCheckpoints []string `json:"bad_checkpoints,omitempty"`
	// TempFilesSwept lists stale safe-save temp files removed on entry.
	TempFilesSwept []string `json:"temp_files_swept,omitempty"`
}

// Degraded reports whether the resume had to salvage anything.
func (s *ResumeSummary) Degraded() bool {
	return s != nil && (s.DroppedBytes > 0 || len(s.Quarantined) > 0 || len(s.BadCheckpoints) > 0)
}

// Salvage returns the degraded-resume report: nil for a scheduler
// started with New, non-nil (possibly clean) for a resumed one.
func (s *Scheduler) Salvage() *ResumeSummary { return s.salvage }

// Resume re-enters a crashed (or cleanly stopped) scheduler: it replays
// the journal, re-validates every campaign's spec.json against its
// journaled schedule digest, rebuilds every in-flight slot from its
// newest *verified* durable checkpoint, and continues scheduling.
// Campaigns whose slots never reached a checkpoint restart those slots
// from scratch, deterministically.
//
// Storage damage that fail-closed replay would brick on is survived
// instead: a corrupt journal suffix is cut at the last verifiable record
// (safe — every slice of lost work is deterministically redone), a
// checkpoint image that fails its seal is struck with a durable ckptbad
// record and the slot falls back to the previous generation, stale
// safe-save temp files are swept, and a campaign whose spec.json is
// lost, corrupt, or digest-mismatched — the one genuinely unrecoverable
// state, since the spec holds the message itself — is quarantined with a
// durable record while every other tenant resumes bit-identically.
// Salvage() reports each of those decisions.
func Resume(dir string, cfg Config) (*Scheduler, error) {
	fsys := storage.Default(cfg.FS)
	sum := &ResumeSummary{}
	swept, err := ioatomic.SweepTemps(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	sum.TempFilesSwept = swept
	croot := filepath.Join(dir, campaignsDir)
	if ents, derr := fsys.ReadDir(croot); derr == nil {
		for _, ent := range ents {
			if !ent.IsDir() {
				continue
			}
			swept, err := ioatomic.SweepTemps(fsys, filepath.Join(croot, ent.Name()))
			if err != nil {
				return nil, fmt.Errorf("sched: %w", err)
			}
			sum.TempFilesSwept = append(sum.TempFilesSwept, swept...)
		}
	}

	path := filepath.Join(dir, journalFile)
	entries, sal, err := ReadJournalSalvage(cfg.FS, path)
	if err != nil {
		return nil, err
	}
	sum.DroppedBytes = sal.DroppedBytes
	sum.TornTail = sal.TornTail
	sum.Reason = sal.Reason
	st, used, replayErr := ReplaySalvage(entries)
	validLen := sal.ValidLen
	if used < len(entries) {
		// Structural corruption past the CRC layer: cut at the last
		// record replay accepted.
		sum.DroppedRecords = len(entries) - used
		sum.DroppedBytes += sal.ValidLen - offsetOf(sal, used)
		sum.TornTail = false
		if replayErr != nil {
			sum.Reason = replayErr.Error()
		}
		validLen = offsetOf(sal, used)
	}
	sum.JournalRecords = used

	j, err := wal.Open(path, wal.Options{Hook: cfg.Hook, NoSync: cfg.NoSync, FS: cfg.FS}, st.NextSeq, validLen)
	if err != nil {
		return nil, err
	}
	s := newScheduler(dir, cfg, j)
	s.salvage = sum
	s.chamberHours = st.ChamberHours
	s.passes = st.Passes
	s.setups = st.Setups
	s.batchedSlices = st.BatchedSlices
	s.lastV, s.lastT, s.lastPoint = st.LastV, st.LastT, st.LastPoint
	// Draining is not inherited: the resume record this incarnation is
	// about to append clears it in replay too, keeping disk and memory
	// in agreement.

	for tenant, q := range st.Tenants {
		s.tenants[tenant] = &tenantState{quota: q}
	}
	for _, id := range st.Order {
		cr := st.Campaigns[id]
		var c *campState
		if cr.Quarantined {
			c = s.quarantinedCampaign(id, cr)
		} else if c, err = s.rebuildCampaign(id, cr); err != nil {
			// The campaign's own state is unrecoverable — the spec holds
			// the message itself, which no amount of determinism can
			// reconstruct. Park it durably; every other tenant resumes.
			if aerr := s.j.Append(&Entry{
				Type: entryQuarantined, Campaign: id,
				Error: err.Error(), AtHours: st.ChamberHours, Slot: -1,
			}); aerr != nil {
				j.Close()
				return nil, aerr
			}
			sum.Quarantined = append(sum.Quarantined, id)
			cr.Quarantined = true
			cr.Error = err.Error()
			if !cr.Done && !cr.Failed {
				cr.DoneAt = st.ChamberHours
			}
			c = s.quarantinedCampaign(id, cr)
		}
		s.camps[id] = c
		ts := s.tenants[cr.Tenant]
		ts.estHours += c.estHours
		switch {
		case cr.Quarantined:
			ts.quarantined++
		case cr.Done:
			ts.done++
			s.latencies = append(s.latencies, cr.DoneAt-cr.SubmitAt)
		case cr.Failed:
			ts.failed++
		default:
			ts.active++
			ts.devices += c.devsHeld
			s.queue = append(s.queue, id)
		}
		// Every serial the campaign ever touched stays reserved: the
		// spec's originals, the remaining spares, and any spare a reroute
		// already consumed (now a slot's live serial). A quarantined
		// campaign's originals are unknowable (the spec is gone) — the
		// journal-known serials stay reserved, and the duplicate-ID check
		// keeps the campaign itself from being resubmitted.
		for _, ser := range c.spec.Serials {
			s.serials[ser] = id
		}
		for _, ser := range cr.Spares {
			s.serials[ser] = id
		}
		for _, sr := range cr.Slots {
			if sr.Serial != "" {
				s.serials[sr.Serial] = id
			}
		}
	}

	// Verify every live slot's checkpoint generations, newest first,
	// striking unloadable images with durable ckptbad records BEFORE the
	// resume record — replay's rewind must agree with the generation the
	// next pass actually bootstraps from.
	for _, id := range st.Order {
		cr := st.Campaigns[id]
		if cr.Terminal() {
			continue
		}
		c := s.camps[id]
		for i, sl := range c.slots {
			if sl.record != nil {
				continue
			}
			for n := len(sl.ckpts); n > 0; n = len(sl.ckpts) {
				ck := sl.ckpts[n-1]
				if _, lerr := device.LoadFileFS(s.fsys, filepath.Join(c.dir, ck.Image)); lerr == nil {
					break
				}
				if aerr := s.j.Append(&Entry{Type: entryCkptBad, Campaign: id, Slot: i, Image: ck.Image}); aerr != nil {
					j.Close()
					return nil, aerr
				}
				sum.BadCheckpoints = append(sum.BadCheckpoints, ck.Image)
				sl.ckpts = sl.ckpts[:n-1]
			}
			// Re-derive the journal high-water marks from the surviving
			// generation: the slot re-runs — and re-appends — from there.
			if ck := sl.newestCkpt(); ck != nil {
				sl.preparedJournaled = true
				sl.journaledApplied = ck.Applied
			} else {
				sl.preparedJournaled = false
				sl.journaledApplied = 0
			}
		}
	}

	if used > 0 {
		if err := s.j.Append(&Entry{Type: entryResume, Slot: -1}); err != nil {
			j.Close()
			return nil, err
		}
	}
	go s.loop()
	return s, nil
}

// quarantinedCampaign builds the terminal placeholder for a campaign
// whose spec is unrecoverable: enough state to answer Status queries and
// hold the duplicate-ID reservation, nothing schedulable.
func (s *Scheduler) quarantinedCampaign(id string, cr *CampaignReplay) *campState {
	return &campState{
		id:          id,
		tenant:      cr.Tenant,
		dir:         filepath.Join(s.dir, campaignsDir, id),
		estHours:    cr.EstHours,
		submitSeq:   cr.SubmitSeq,
		submitAt:    cr.SubmitAt,
		quarantined: true,
		errText:     cr.Error,
		doneAt:      cr.DoneAt,
	}
}

// offsetOf returns the byte offset just past record used-1 (0 when
// nothing was used).
func offsetOf(sal wal.Salvage, used int) int64 {
	if used == 0 {
		return 0
	}
	if used-1 < len(sal.Offsets) {
		return sal.Offsets[used-1]
	}
	return sal.ValidLen
}

// rebuildCampaign reconstructs one campaign from its replayed state,
// verifying spec.json still matches the journaled schedule digest.
func (s *Scheduler) rebuildCampaign(id string, cr *CampaignReplay) (*campState, error) {
	cdir := filepath.Join(s.dir, campaignsDir, id)
	b, err := s.fsys.ReadFile(filepath.Join(cdir, "spec.json"))
	if err != nil {
		return nil, fmt.Errorf("sched: campaign %q: %w", id, err)
	}
	var spec campaign.Spec
	if err := json.Unmarshal(b, &spec); err != nil {
		return nil, fmt.Errorf("sched: campaign %q spec: %w", id, err)
	}
	if digest := spec.ScheduleDigest(); digest != cr.Digest {
		return nil, fmt.Errorf("sched: campaign %q schedule digest mismatch: journal %s…, spec %s… — the spec changed under a live scheduler",
			id, cr.Digest[:12], digest[:12])
	}
	if len(spec.Serials) != len(cr.Slots) {
		return nil, fmt.Errorf("sched: campaign %q journal plans %d slots, spec has %d", id, len(cr.Slots), len(spec.Serials))
	}
	c, err := s.buildCampaign(id, cr.Tenant, spec, cr.Spares, cr.EstHours, cr.SubmitSeq, cr.SubmitAt)
	if err != nil {
		return nil, err
	}
	// Devices held = originals + remaining spares + spares a reroute
	// already consumed (they live on as slot serials).
	c.devsHeld = len(spec.Serials) + len(cr.Spares)
	for _, sr := range cr.Slots {
		if sr.Serial != "" {
			c.devsHeld++
		}
	}
	c.done, c.failed, c.errText = cr.Done, cr.Failed, cr.Error
	c.doneAt, c.baselines = cr.DoneAt, cr.Baselines
	if c.terminal() {
		return c, nil
	}
	for i, sr := range cr.Slots {
		sl := c.slots[i]
		if sr.Serial != "" {
			sl.serial = sr.Serial // reroute landed here
		}
		switch {
		case sr.Record != nil:
			sl.record = sr.Record
			sl.finalImage = sr.FinalImage
			sl.finalClock = sr.FinalClock
		case sr.CkptImage != "":
			sl.ckpts = append([]SlotCheckpoint(nil), sr.Ckpts...)
			sl.preparedJournaled = true
			sl.journaledApplied = sr.CkptApplied
		default:
			// Never checkpointed: the slot restarts from scratch. The
			// resume record rewound the replay stream, so re-appending
			// its early records is legal.
		}
	}
	return c, nil
}

// buildCampaign assembles the in-memory campaign: codec, key, segment
// layout, one slotState per serial.
func (s *Scheduler) buildCampaign(id, tenant string, spec campaign.Spec, spares []string, est float64, submitSeq int, submitAt float64) (*campState, error) {
	model, err := device.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	var codec ecc.Codec
	if spec.Codec != "" {
		codec, err = cliutil.ParseCodec(spec.Codec)
		if err != nil {
			return nil, err
		}
	}
	sizes := make([]int, len(spec.Serials))
	for i := range sizes {
		sizes[i] = model.SRAMBytes
	}
	segs, err := fleet.PlanSegments(sizes, len(spec.Message), codec)
	if err != nil {
		return nil, err
	}
	c := &campState{
		id:     id,
		tenant: tenant,
		spec:   spec,
		model:  model,
		opts: core.Options{
			Codec:       codec,
			Key:         s.cfg.keyFor(tenant, id),
			StressHours: spec.StressHours,
			Captures:    spec.Captures,
		},
		segs:      segs,
		spares:    append([]string(nil), spares...),
		dir:       filepath.Join(s.dir, campaignsDir, id),
		estHours:  est,
		submitSeq: submitSeq,
		submitAt:  submitAt,
	}
	off := 0
	for i, ser := range spec.Serials {
		sl := &slotState{serial: ser}
		if segs[i] > 0 {
			sl.seg = spec.Message[off : off+segs[i]]
			off += segs[i]
		}
		c.slots = append(c.slots, sl)
	}
	return c, nil
}

// estChamberHours is the admission-time chamber budget estimate: the
// campaign occupies the chamber for its soak length regardless of how
// many boards ride each pass.
func estChamberHours(spec campaign.Spec, model device.Model) float64 {
	if spec.StressHours > 0 {
		return spec.StressHours
	}
	return model.EncodingHours
}

// Submit admits a campaign or rejects it with a typed error:
// ErrDraining, ErrSaturated (queue backpressure), ErrQuotaExceeded,
// ErrDuplicateCampaign, ErrSerialInUse, or a spec validation error.
// Admission is durable when Submit returns nil: spec.json is written
// and the submit record is fsynced before the scheduler acts on it.
func (s *Scheduler) Submit(sub Submission) error {
	if sub.Tenant == "" {
		return errors.New("sched: submission without a tenant")
	}
	spec := sub.Spec
	if spec.SliceHours <= 0 {
		spec.SliceHours = campaign.DefaultSliceHours
	}
	if spec.CheckpointEvery <= 0 {
		spec.CheckpointEvery = campaign.DefaultCheckpointEvery
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	model, err := device.ByName(spec.Model)
	if err != nil {
		return err
	}
	if len(spec.Serials) > s.cfg.chamberSlots() {
		return fmt.Errorf("sched: campaign %q needs %d boards, chamber passes hold %d", spec.ID, len(spec.Serials), s.cfg.chamberSlots())
	}
	seen := map[string]bool{}
	for _, ser := range spec.Serials {
		seen[ser] = true
	}
	for _, sp := range sub.Spares {
		if sp == "" || seen[sp] {
			return fmt.Errorf("sched: campaign %q: duplicate or empty spare serial %q", spec.ID, sp)
		}
		seen[sp] = true
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return fmt.Errorf("%w: %v", ErrSchedulerDown, s.fatal)
	}
	if s.stopping {
		return ErrStopped
	}
	if s.draining {
		return ErrDraining
	}
	if len(s.queue) >= s.cfg.maxQueued() {
		return fmt.Errorf("%w: %d campaigns queued", ErrSaturated, len(s.queue))
	}
	if _, dup := s.camps[spec.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateCampaign, spec.ID)
	}
	for ser := range seen {
		if owner, used := s.serials[ser]; used {
			return fmt.Errorf("%w: %q belongs to campaign %q", ErrSerialInUse, ser, owner)
		}
	}

	est := estChamberHours(spec, model)
	devs := len(spec.Serials) + len(sub.Spares)
	ts, known := s.tenants[sub.Tenant]
	quota := s.cfg.quotaFor(sub.Tenant)
	if known {
		quota = ts.quota
	}
	if quota.MaxCampaigns > 0 && activeOf(ts)+1 > quota.MaxCampaigns {
		return fmt.Errorf("%w: tenant %q at %d/%d campaigns", ErrQuotaExceeded, sub.Tenant, activeOf(ts), quota.MaxCampaigns)
	}
	if quota.MaxDevices > 0 && devicesOf(ts)+devs > quota.MaxDevices {
		return fmt.Errorf("%w: tenant %q would hold %d/%d devices", ErrQuotaExceeded, sub.Tenant, devicesOf(ts)+devs, quota.MaxDevices)
	}
	if quota.MaxChamberHours > 0 && estOf(ts)+est > quota.MaxChamberHours {
		return fmt.Errorf("%w: tenant %q would commit %.1f/%.1f chamber-hours", ErrQuotaExceeded, sub.Tenant, estOf(ts)+est, quota.MaxChamberHours)
	}

	// Admission is now certain barring durability failure. Journal the
	// tenant first (its quota is immutable from here), then make the
	// spec durable, then the submit record that makes it all count.
	if !known {
		if err := s.append(&Entry{Type: entryTenant, Tenant: sub.Tenant, Quota: &quota, Slot: -1}); err != nil {
			return err
		}
		ts = &tenantState{quota: quota}
		s.tenants[sub.Tenant] = ts
	}
	cdir := filepath.Join(s.dir, campaignsDir, spec.ID)
	if err := s.fsys.MkdirAll(cdir, 0o755); err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	if err := s.gate("spec/" + spec.ID); err != nil {
		return err
	}
	if err := ioatomic.WriteFileFS(s.fsys, filepath.Join(cdir, "spec.json"), specJSON, 0o644); err != nil {
		err = fmt.Errorf("%w: persist spec for %q: %w", wal.ErrJournalIO, spec.ID, err)
		s.noteFatalLocked(err)
		return err
	}
	if err := s.append(&Entry{
		Type: entrySubmit, Tenant: sub.Tenant, Campaign: spec.ID,
		Digest: spec.ScheduleDigest(), Slots: len(spec.Serials),
		Spares: sub.Spares, EstHours: est, AtHours: s.chamberHours, Slot: -1,
	}); err != nil {
		return err
	}

	c, err := s.buildCampaign(spec.ID, sub.Tenant, spec, sub.Spares, est, s.j.NextSeq()-1, s.chamberHours)
	if err != nil {
		// Validation passed above; a build failure here is a bug, but
		// the journal already holds the admission — fail the campaign
		// rather than leave a ghost record.
		return err
	}
	c.devsHeld = devs
	s.camps[spec.ID] = c
	s.queue = append(s.queue, spec.ID)
	ts.active++
	ts.devices += devs
	ts.estHours += est
	for ser := range seen {
		s.serials[ser] = spec.ID
	}
	s.cond.Broadcast()
	return nil
}

func activeOf(ts *tenantState) int {
	if ts == nil {
		return 0
	}
	return ts.active
}

func devicesOf(ts *tenantState) int {
	if ts == nil {
		return 0
	}
	return ts.devices
}

func estOf(ts *tenantState) float64 {
	if ts == nil {
		return 0
	}
	return ts.estHours
}

// append journals a record while holding s.mu; journal failures are
// fatal to the whole scheduler (fail closed).
func (s *Scheduler) append(e *Entry) error {
	if err := s.j.Append(e); err != nil {
		s.noteFatalLocked(err)
		return err
	}
	return nil
}

// gate consults the kill hook at a named non-journal point while
// holding s.mu.
func (s *Scheduler) gate(point string) error {
	if err := s.j.Gate(point); err != nil {
		s.noteFatalLocked(err)
		return err
	}
	return nil
}

func (s *Scheduler) noteFatalLocked(err error) {
	if s.fatal == nil {
		s.fatal = err
	}
	s.cond.Broadcast()
}

// Drain stops admission for this incarnation — durably, so replay can
// enforce that no submit follows it — and blocks until every in-flight
// campaign reaches a terminal state, the context is cancelled, or the
// scheduler dies. Draining does not survive Resume: a crash mid-drain
// leaves the next incarnation open for business, in-flight campaigns
// intact.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.fatal != nil {
		err := s.fatal
		s.mu.Unlock()
		return err
	}
	if s.stopping {
		s.mu.Unlock()
		return ErrStopped
	}
	if !s.draining {
		if err := s.append(&Entry{Type: entryDrain, AtHours: s.chamberHours, Slot: -1}); err != nil {
			s.mu.Unlock()
			return err
		}
		s.draining = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	select {
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// Stop halts the scheduling loop at the next pass boundary WITHOUT
// draining: in-flight campaigns keep every durable record they have
// earned, the journal is closed cleanly, and a subsequent Resume of the
// same directory continues them bit-identically — this is the graceful
// SIGTERM path, where "graceful" means "indistinguishable from having
// never been interrupted", not "wait 4.2 days for the soak to finish".
// Stop blocks until the loop has exited (any in-flight pass completes
// and folds its outcomes in first), the context expires, or the
// scheduler dies. Stopping is terminal for this incarnation: Submit and
// Drain return ErrStopped from the moment Stop is called.
func (s *Scheduler) Stop(ctx context.Context) error {
	s.mu.Lock()
	if s.fatal != nil {
		err := s.fatal
		s.mu.Unlock()
		return err
	}
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()

	select {
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// RetryAfterHint estimates how long a rejected client should wait
// before retrying, from the live queue depth and the measured
// wall-clock pass cadence: roughly the passes needed to turn the queue
// over once, clamped to [1s, 5m]. Before any pass has completed the
// hint is the 1s floor — better to invite an early retry than to park
// clients on a made-up constant.
func (s *Scheduler) RetryAfterHint() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	per := s.passWallSecs
	if per <= 0 {
		return time.Second
	}
	passes := (len(s.queue) + s.cfg.chamberSlots() - 1) / s.cfg.chamberSlots()
	if passes < 1 {
		passes = 1
	}
	d := time.Duration(per * float64(passes) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// CampaignDigest returns the schedule digest of an admitted campaign —
// the idempotency token: a client whose submission's response was lost
// retries, receives ErrDuplicateCampaign with this digest attached, and
// treats a match as proof its own submission is the one that landed.
func (s *Scheduler) CampaignDigest(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.camps[id]
	if !ok || c.quarantined {
		// A quarantined campaign's spec is unrecoverable; no digest can
		// vouch for it, so a retried submit reports a real conflict.
		return "", false
	}
	return c.spec.ScheduleDigest(), true
}

// Done is closed when the scheduling loop exits: after a completed
// drain, a graceful Stop, or on a fatal journal failure (see Err).
func (s *Scheduler) Done() <-chan struct{} { return s.done }

// Err returns the fatal error that killed the scheduler, if any.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// loop is the scheduling loop: wait for runnable work, plan one chamber
// pass, execute it, apply the outcomes, repeat. It exits when draining
// completes, Stop is called (at a pass boundary — never mid-pass), or
// the journal fails.
func (s *Scheduler) loop() {
	defer close(s.done)
	defer s.j.Close()
	for {
		s.mu.Lock()
		var plan *passPlan
		for {
			if s.fatal != nil || s.stopping {
				s.mu.Unlock()
				return
			}
			s.completeFinishedLocked()
			if s.fatal != nil {
				s.mu.Unlock()
				return
			}
			plan = s.planPassLocked()
			if plan != nil {
				break
			}
			if s.draining && s.allTerminalLocked() {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		if err := s.commitPassLocked(plan); err != nil {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		start := time.Now()
		s.executePass(plan)
		wall := time.Since(start).Seconds()

		s.mu.Lock()
		if s.passWallSecs <= 0 {
			s.passWallSecs = wall
		} else {
			s.passWallSecs = 0.8*s.passWallSecs + 0.2*wall
		}
		s.applyPassLocked(plan)
		s.mu.Unlock()
	}
}

func (s *Scheduler) allTerminalLocked() bool {
	return len(s.queue) == 0
}

// completeFinishedLocked seals queued campaigns with no slot work left.
// Normally completion happens in applyPassLocked right after the
// finishing pass, but a campaign resumed from a crash that landed
// between its last encoded record and its done record arrives here
// already finished — no pass will ever carry it, so the loop sweeps
// for it before planning.
func (s *Scheduler) completeFinishedLocked() {
	for _, id := range append([]string(nil), s.queue...) {
		c := s.camps[id]
		if !c.terminal() && c.complete() {
			s.completeCampaignLocked(c)
			if s.fatal != nil {
				return
			}
		}
	}
}

// Status is a point-in-time snapshot of the scheduler.
type Status struct {
	ChamberHours  float64 `json:"chamber_hours"`
	Passes        int     `json:"passes"`
	Setups        int     `json:"setups"`
	BatchedSlices int     `json:"batched_slices"`

	Active int `json:"active"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Quarantined counts campaigns parked by a degraded resume because
	// their on-disk state was unrecoverable.
	Quarantined int  `json:"quarantined,omitempty"`
	Drain       bool `json:"draining"`
	// Stopping reports a graceful Stop in progress (or completed): this
	// incarnation schedules no further passes; restart to resume.
	Stopping bool `json:"stopping,omitempty"`

	// Salvage is the degraded-resume report; nil for a fresh scheduler,
	// non-nil (possibly clean) after Resume.
	Salvage *ResumeSummary `json:"salvage,omitempty"`

	// CampaignsPerChamberHour is completed campaigns over elapsed
	// chamber hours — the throughput headline.
	CampaignsPerChamberHour float64 `json:"campaigns_per_chamber_hour"`
	// LatencyP50/P99 are completed-campaign latencies (submission to
	// done) in chamber hours.
	LatencyP50 float64 `json:"latency_p50_hours"`
	LatencyP99 float64 `json:"latency_p99_hours"`

	Tenants map[string]TenantStatus `json:"tenants,omitempty"`
}

// TenantStatus is one tenant's slice of the snapshot.
type TenantStatus struct {
	Quota          Quota   `json:"quota"`
	Active         int     `json:"active"`
	Devices        int     `json:"devices"`
	CommittedHours float64 `json:"committed_hours"`
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	Quarantined    int     `json:"quarantined,omitempty"`
}

// CampaignStatus is one campaign's snapshot.
type CampaignStatus struct {
	Campaign string `json:"campaign"`
	Tenant   string `json:"tenant"`
	// State is "queued", "done", "failed", or "quarantined" ("queued"
	// covers both waiting and mid-soak — the queue IS the run state).
	State string `json:"state"`
	Error string `json:"error,omitempty"`

	Slots        int     `json:"slots"`
	AppliedHours float64 `json:"applied_hours"`
	TotalHours   float64 `json:"total_hours"`

	SubmittedAt  float64 `json:"submitted_at_hours"`
	DoneAt       float64 `json:"done_at_hours,omitempty"`
	LatencyHours float64 `json:"latency_hours,omitempty"`

	// Baselines are the per-slot fresh-capture margins probed at
	// completion — feed them to fleet.HealthSweepOptions.BaselineMargins
	// for calibrated maintenance sweeps.
	Baselines []float64 `json:"baselines,omitempty"`
}

// Status snapshots the scheduler.
func (s *Scheduler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ChamberHours:  s.chamberHours,
		Passes:        s.passes,
		Setups:        s.setups,
		BatchedSlices: s.batchedSlices,
		Active:        len(s.queue),
		Drain:         s.draining,
		Stopping:      s.stopping,
		Tenants:       map[string]TenantStatus{},
	}
	st.Salvage = s.salvage
	for name, ts := range s.tenants {
		st.Done += ts.done
		st.Failed += ts.failed
		st.Quarantined += ts.quarantined
		st.Tenants[name] = TenantStatus{
			Quota:          ts.quota,
			Active:         ts.active,
			Devices:        ts.devices,
			CommittedHours: ts.estHours,
			Done:           ts.done,
			Failed:         ts.failed,
			Quarantined:    ts.quarantined,
		}
	}
	if s.chamberHours > 0 {
		st.CampaignsPerChamberHour = float64(st.Done) / s.chamberHours
	}
	st.LatencyP50 = percentile(s.latencies, 0.50)
	st.LatencyP99 = percentile(s.latencies, 0.99)
	return st
}

// Campaign snapshots one campaign; ok is false for unknown IDs.
func (s *Scheduler) Campaign(id string) (CampaignStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.camps[id]
	if !ok {
		return CampaignStatus{}, false
	}
	cs := CampaignStatus{
		Campaign:    c.id,
		Tenant:      c.tenant,
		State:       "queued",
		Error:       c.errText,
		Slots:       len(c.slots),
		SubmittedAt: c.submitAt,
		Baselines:   c.baselines,
	}
	switch {
	case c.quarantined:
		cs.State = "quarantined"
	case c.done:
		cs.State = "done"
	case c.failed:
		cs.State = "failed"
	}
	if c.terminal() {
		cs.DoneAt = c.doneAt
		cs.LatencyHours = c.doneAt - c.submitAt
	}
	total := estChamberHours(c.spec, c.model)
	for _, sl := range c.slots {
		if !sl.live() {
			continue
		}
		cs.TotalHours += total
		if sl.record != nil {
			cs.AppliedHours += total
		} else {
			cs.AppliedHours += sl.applied
		}
	}
	return cs, true
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
