package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/faults"
)

// copyTree clones a state directory so each mutation starts from the
// same reference bytes.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

// collectDone gathers the bit-identity artifacts of every done
// campaign.
func collectDone(t *testing.T, s *Scheduler, dir string, subs []Submission) map[string]outcomeCmp {
	t.Helper()
	out := map[string]outcomeCmp{}
	for _, sub := range subs {
		id := sub.Spec.ID
		cs, ok := s.Campaign(id)
		if !ok || cs.State != "done" {
			continue
		}
		cdir := filepath.Join(dir, campaignsDir, id)
		res, err := os.ReadFile(filepath.Join(cdir, "result.json"))
		if err != nil {
			t.Fatalf("campaign %s result: %v", id, err)
		}
		img, err := os.ReadFile(filepath.Join(cdir, "slot-0-final.img"))
		if err != nil {
			t.Fatalf("campaign %s image: %v", id, err)
		}
		out[id] = outcomeCmp{
			result:    res,
			image:     img,
			message:   decodeCampaign(t, dir, sub.Tenant, id),
			baselines: cs.Baselines,
		}
	}
	return out
}

// TestCorruptionMatrix is the robustness gate: flip a byte in every
// region (prefix, length, CRC, payload, terminator) of one record of
// every journal record type, plus the campaign spec files, and resume.
// The scheduler must come back every single time; campaigns either
// finish bit-identically to the uncorrupted reference or are
// quarantined (spec damage only) — corrupted state is never decoded as
// if it were sound.
func TestCorruptionMatrix(t *testing.T) {
	base := t.TempDir()
	subs := []Submission{
		miniSub("alice", "cm-a", []string{"cma-0"}, 7.5),
		miniSub("bob", "cm-b", []string{"cmb-0"}, 7.5),
	}
	cfg := Config{KeyFor: testKeyFor}

	refDir := filepath.Join(base, "ref")
	ref, err := New(refDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := ref.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	drainOK(t, ref)
	want := collectDone(t, ref, refDir, subs)
	if len(want) != len(subs) {
		t.Fatalf("reference run finished %d campaigns, want %d", len(want), len(subs))
	}

	journal, err := os.ReadFile(filepath.Join(refDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(journal, []byte("\n"))

	// One representative line per record type, plus that line's byte
	// regions: frame prefix, length field, CRC field, payload, and the
	// final payload byte before the terminator.
	type mutation struct {
		label string
		off   int
	}
	seen := map[string]bool{}
	var muts []mutation
	off := 0
	for _, ln := range lines {
		if len(ln) == 0 {
			continue
		}
		var kind string
		if _, err := fmt.Sscanf(string(ln), "w2 %*d %*8s {\"seq\":%*d,\"type\":%q", &kind); err != nil {
			kind = fmt.Sprintf("line@%d", off)
		}
		if !seen[kind] {
			seen[kind] = true
			for _, reg := range []struct {
				name string
				at   int
			}{
				{"prefix", 0},
				{"length", 3},
				{"crc", bytes.IndexByte(ln, '{') - 5},
				{"payload", len(ln) / 2},
				{"tail", len(ln) - 2},
			} {
				if reg.at < 0 || reg.at >= len(ln) {
					continue
				}
				muts = append(muts, mutation{
					label: fmt.Sprintf("%s/%s", kind, reg.name),
					off:   off + reg.at,
				})
			}
		}
		off += len(ln)
	}
	if len(seen) < 6 {
		t.Fatalf("reference journal exercises only %d record types: %v", len(seen), seen)
	}

	for i, m := range muts {
		m := m
		t.Run(m.label, func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("mut%03d", i))
			copyTree(t, refDir, dir)
			jpath := filepath.Join(dir, "journal.jsonl")
			data := append([]byte(nil), journal...)
			data[m.off] ^= 0x04
			if err := os.WriteFile(jpath, data, 0o644); err != nil {
				t.Fatal(err)
			}

			s, err := Resume(dir, cfg)
			if err != nil {
				t.Fatalf("resume after flipping %s byte %d: %v", m.label, m.off, err)
			}
			for _, sub := range subs {
				if err := s.Submit(sub); err != nil && !errors.Is(err, ErrDuplicateCampaign) {
					t.Fatalf("re-submit: %v", err)
				}
			}
			drainOK(t, s)
			if sal := s.Salvage(); sal == nil {
				t.Fatal("resumed scheduler reports no salvage summary")
			}
			got := collectDone(t, s, dir, subs)
			if len(got) != len(subs) {
				t.Fatalf("journal corruption must not lose campaigns: finished %d of %d", len(got), len(subs))
			}
			assertOutcomes(t, m.label, got, want)
		})
	}
}

// TestCorruptSpecQuarantinesOnlyThatCampaign: spec.json damage is the
// one unrecoverable loss (the message itself). The resuming scheduler
// parks exactly that campaign and resumes every other tenant
// bit-identically — it never refuses to start, and never decodes the
// damaged campaign as if it were sound.
func TestCorruptSpecQuarantinesOnlyThatCampaign(t *testing.T) {
	base := t.TempDir()
	subs := []Submission{
		miniSub("alice", "q-a", []string{"qa-0"}, 7.5),
		miniSub("bob", "q-b", []string{"qb-0"}, 7.5),
	}
	cfg := Config{KeyFor: testKeyFor}

	refDir := filepath.Join(base, "ref")
	ref, err := New(refDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if err := ref.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	drainOK(t, ref)
	want := collectDone(t, ref, refDir, subs)

	for _, damage := range []string{"flip", "truncate", "delete"} {
		t.Run(damage, func(t *testing.T) {
			dir := filepath.Join(base, damage)
			copyTree(t, refDir, dir)
			spec := filepath.Join(dir, campaignsDir, "q-a", "spec.json")
			switch damage {
			case "flip":
				b, err := os.ReadFile(spec)
				if err != nil {
					t.Fatal(err)
				}
				// Corrupt a value, not just whitespace: change the model
				// name so the digest shifts.
				b = bytes.Replace(b, []byte("MSP430G2553"), []byte("MSP430G2554"), 1)
				if err := os.WriteFile(spec, b, 0o644); err != nil {
					t.Fatal(err)
				}
			case "truncate":
				if err := os.Truncate(spec, 10); err != nil {
					t.Fatal(err)
				}
			case "delete":
				if err := os.Remove(spec); err != nil {
					t.Fatal(err)
				}
			}

			s, err := Resume(dir, cfg)
			if err != nil {
				t.Fatalf("resume with damaged spec must not fail the scheduler: %v", err)
			}
			drainOK(t, s)

			sal := s.Salvage()
			if sal == nil || !sal.Degraded() {
				t.Fatalf("salvage summary = %+v, want degraded", sal)
			}
			if len(sal.Quarantined) != 1 || sal.Quarantined[0] != "q-a" {
				t.Fatalf("quarantined %v, want exactly [q-a]", sal.Quarantined)
			}
			cs, ok := s.Campaign("q-a")
			if !ok || cs.State != "quarantined" || cs.Error == "" {
				t.Fatalf("q-a state = %+v, want quarantined with an error", cs)
			}
			st := s.Status()
			if st.Quarantined != 1 {
				t.Fatalf("status quarantined = %d, want 1", st.Quarantined)
			}
			if st.Salvage == nil {
				t.Fatal("status does not surface the salvage summary")
			}

			// The other tenant is untouched, bit for bit.
			got := collectDone(t, s, dir, subs)
			if _, quarantinedDecoded := got["q-a"]; quarantinedDecoded {
				t.Fatal("quarantined campaign reported done")
			}
			assertOutcomes(t, damage, got, map[string]outcomeCmp{"q-b": want["q-b"]})

			// Quarantine is sticky: a second resume keeps the campaign
			// parked without re-journaling the quarantine.
			s2, err := Resume(dir, cfg)
			if err != nil {
				t.Fatalf("second resume: %v", err)
			}
			drainOK(t, s2)
			if cs, ok := s2.Campaign("q-a"); !ok || cs.State != "quarantined" {
				t.Fatalf("quarantine did not stick across resumes: %+v", cs)
			}
		})
	}
}

// TestKillCorruptStorm is the combined hazard drill (run under -race in
// CI): kill the scheduler at a fault-injection kill point, then rot
// disk state behind its back — journal bytes and checkpoint images —
// and resume. Every storm must end with a drained scheduler whose done
// campaigns decode to exactly the submitted message; damaged state is
// re-done or struck, never trusted.
func TestKillCorruptStorm(t *testing.T) {
	base := t.TempDir()
	cfg := Config{KeyFor: testKeyFor}

	for seed := 0; seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("s%d", seed))
			subs := []Submission{
				miniSub("alice", fmt.Sprintf("st-a%d", seed), []string{fmt.Sprintf("sa-%d", seed)}, 7.5),
				miniSub("bob", fmt.Sprintf("st-b%d", seed), []string{fmt.Sprintf("sb-%d", seed)}, 7.5),
			}

			ks := faults.NewKillSwitch(4 + seed*5)
			killCfg := cfg
			killCfg.Hook = ks.Hook()
			s, err := New(dir, killCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, sub := range subs {
				s.Submit(sub) //nolint:errcheck // a fired kill point rejects later submits
			}
			s.Drain(context.Background()) //nolint:errcheck // dies at the kill point

			// Rot the disk behind the dead process: one journal byte at
			// a seed-determined position, and (odd seeds) every
			// checkpoint image of the first campaign.
			jpath := filepath.Join(dir, "journal.jsonl")
			if j, err := os.ReadFile(jpath); err == nil && len(j) > 0 {
				j[(seed*211+17)%len(j)] ^= 0x10
				if err := os.WriteFile(jpath, j, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if seed%2 == 1 {
				imgs, _ := filepath.Glob(filepath.Join(dir, campaignsDir, subs[0].Spec.ID, "slot-*-ckpt-*.img"))
				for _, p := range imgs {
					b, err := os.ReadFile(p)
					if err != nil {
						t.Fatal(err)
					}
					b[len(b)/2] ^= 0x33
					if err := os.WriteFile(p, b, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}

			rs, err := Resume(dir, cfg)
			if err != nil {
				t.Fatalf("resume after kill+corrupt: %v", err)
			}
			for _, sub := range subs {
				if err := rs.Submit(sub); err != nil && !errors.Is(err, ErrDuplicateCampaign) {
					t.Fatalf("re-submit: %v", err)
				}
			}
			drainOK(t, rs)

			for _, sub := range subs {
				cs, ok := rs.Campaign(sub.Spec.ID)
				if !ok {
					t.Fatalf("campaign %s lost in the storm", sub.Spec.ID)
				}
				if cs.State != "done" {
					t.Fatalf("campaign %s ended %q (%s), want done — specs were never damaged", sub.Spec.ID, cs.State, cs.Error)
				}
				got := decodeCampaign(t, dir, sub.Tenant, sub.Spec.ID)
				if !bytes.Equal(got, sub.Spec.Message) {
					t.Fatalf("campaign %s decoded garbage after the storm", sub.Spec.ID)
				}
			}
		})
	}
}
