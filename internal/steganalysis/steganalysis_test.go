package steganalysis

import (
	"strings"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/imaging"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

func newDev(t *testing.T, serial string) *device.Device {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// encode stresses a payload into the device.
func encode(t *testing.T, d *device.Device, payload []byte) {
	t.Helper()
	if !d.SRAM.Powered() {
		if _, err := d.PowerOn(25); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SRAM.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := d.Stress(d.Model.Accelerated(), d.Model.EncodingHours); err != nil {
		t.Fatal(err)
	}
}

// tiledImage builds a structured (detectable) payload aligned to rows.
func tiledImage(d *device.Device) []byte {
	unit := imaging.Glyph().Pack()
	rowBytes := d.SRAM.Cols() / 8
	row := make([]byte, rowBytes)
	for i := range row {
		row[i] = unit[i%len(unit)]
	}
	out := make([]byte, d.SRAM.Bytes())
	for i := range out {
		out[i] = row[i%rowBytes]
	}
	return out
}

func TestCleanDevicePasses(t *testing.T) {
	d := newDev(t, "clean")
	rep, err := AnalyzeDevice(d, 5, DefaultBands())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suspicious() {
		t.Fatalf("clean device flagged: %v", rep)
	}
	if !strings.Contains(rep.String(), "indistinguishable") {
		t.Errorf("verdict = %q", rep.String())
	}
	if len(rep.Findings) != 5 {
		t.Errorf("findings = %d", len(rep.Findings))
	}
	if len(rep.BlockWeights) == 0 {
		t.Error("no block weights sampled")
	}
}

func TestPlaintextEncodingFlagged(t *testing.T) {
	d := newDev(t, "plain")
	encode(t, d, tiledImage(d))
	rep, err := AnalyzeDevice(d, 5, DefaultBands())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Suspicious() {
		t.Fatalf("structured plain-text encoding passed: %v", rep)
	}
	if len(rep.Reasons()) == 0 {
		t.Error("suspicious report without reasons")
	}
}

func TestEncryptedEncodingPasses(t *testing.T) {
	d := newDev(t, "enc")
	key := stegocrypt.KeyFromPassphrase("k")
	ct, err := stegocrypt.StreamXOR(key, d.DeviceID(), tiledImage(d))
	if err != nil {
		t.Fatal(err)
	}
	encode(t, d, ct)
	rep, err := AnalyzeDevice(d, 5, DefaultBands())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suspicious() {
		t.Fatalf("encrypted encoding flagged: %v", rep)
	}
}

func TestAnalyzeSnapshotLayoutValidation(t *testing.T) {
	if _, err := AnalyzeSnapshot("x", make([]byte, 8), 4, 4, DefaultBands()); err == nil {
		t.Fatal("bad layout accepted")
	}
}

func TestCompareSnapshotsCleanDrift(t *testing.T) {
	d := newDev(t, "temporal")
	key := stegocrypt.KeyFromPassphrase("k")
	ct, err := stegocrypt.StreamXOR(key, d.DeviceID(), tiledImage(d))
	if err != nil {
		t.Fatal(err)
	}
	encode(t, d, ct)
	d.PowerOff(true)
	m1, err := d.SRAM.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	d.PowerOff(true)
	if err := d.Shelve(24); err != nil {
		t.Fatal(err)
	}
	m2, err := d.SRAM.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareSnapshots(m1, m2, 16, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Suspicious {
		t.Fatalf("day-apart snapshots of an encoded device flagged: %+v", cmp)
	}
	if cmp.DriftFraction <= 0 {
		t.Error("expected nonzero measurement drift")
	}
}

func TestCompareSnapshotsDetectsWipe(t *testing.T) {
	// A device that was re-encoded between inspections drifts massively.
	src := rng.NewSource(1)
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	src.Bytes(a)
	src.Bytes(b)
	cmp, err := CompareSnapshots(a, b, 16, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Suspicious || cmp.DriftFraction < 0.4 {
		t.Fatalf("independent snapshots not flagged: %+v", cmp)
	}
}

func TestCompareSnapshotsSizeMismatch(t *testing.T) {
	if _, err := CompareSnapshots(make([]byte, 16), make([]byte, 32), 16, 0.05); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
