// Package steganalysis packages the adversary's statistical battery from
// §6 of the paper into a reusable detector: mean power-on bias, Moran's I
// spatial autocorrelation, normalized byte entropy, and block
// Hamming-weight statistics, with clean-device reference bands and a
// combined verdict. It also implements the §7.1 multiple-snapshot
// adversary: comparing captures taken at different times for temporal
// discrepancies.
//
// The detector is exactly what a border inspector could run; Invisible
// Bits' design goal is that encrypted encodings pass it (Table 5) while
// plain-text encodings fail it.
package steganalysis

import (
	"fmt"
	"strings"

	"invisiblebits/internal/device"
	"invisiblebits/internal/stats"
)

// Bands holds the clean-device acceptance intervals. Defaults follow the
// paper's measured clean population (Table 5, Fig. 11/12).
type Bands struct {
	BiasLow, BiasHigh float64 // mean power-on bias
	MoranIMax         float64 // spatial autocorrelation
	EntropyMin        float64 // normalized byte entropy (max 8/256)
	BlockBytes        int     // Hamming-weight block size
	ChiSquareAlpha    float64 // significance threshold for symbol uniformity
}

// DefaultBands returns the paper-derived clean-device intervals.
func DefaultBands() Bands {
	return Bands{
		BiasLow: 0.49, BiasHigh: 0.51, MoranIMax: 0.05,
		EntropyMin: 0.029, BlockBytes: 16, ChiSquareAlpha: 1e-4,
	}
}

// Finding is one statistic with its verdict.
type Finding struct {
	Name       string
	Value      float64
	Band       string
	Suspicious bool
}

// Report is the detector's output for one device snapshot.
type Report struct {
	DeviceID string
	Findings []Finding
	// BlockWeights is the raw Hamming-weight sample for plotting.
	BlockWeights []int
}

// Suspicious reports whether any statistic fell outside its band.
func (r *Report) Suspicious() bool {
	for _, f := range r.Findings {
		if f.Suspicious {
			return true
		}
	}
	return false
}

// Reasons lists the out-of-band statistics.
func (r *Report) Reasons() []string {
	var out []string
	for _, f := range r.Findings {
		if f.Suspicious {
			out = append(out, fmt.Sprintf("%s = %.4f (clean band %s)", f.Name, f.Value, f.Band))
		}
	}
	return out
}

// String renders a one-line verdict.
func (r *Report) String() string {
	if !r.Suspicious() {
		return "indistinguishable from a clean device"
	}
	return "SUSPICIOUS: " + strings.Join(r.Reasons(), "; ")
}

// AnalyzeSnapshot runs the battery on a single majority-voted power-on
// capture with the given physical layout.
func AnalyzeSnapshot(deviceID string, snap []byte, rows, cols int, bands Bands) (*Report, error) {
	if rows*cols != len(snap)*8 {
		return nil, fmt.Errorf("steganalysis: layout %dx%d does not match %d bytes", rows, cols, len(snap))
	}
	rep := &Report{DeviceID: deviceID}

	bias := stats.MeanBias(snap)
	rep.Findings = append(rep.Findings, Finding{
		Name: "mean power-on bias", Value: bias,
		Band:       fmt.Sprintf("[%.3f, %.3f]", bands.BiasLow, bands.BiasHigh),
		Suspicious: bias < bands.BiasLow || bias > bands.BiasHigh,
	})

	moran, err := stats.MoranIPacked(snap, rows, cols)
	if err != nil {
		return nil, err
	}
	rep.Findings = append(rep.Findings, Finding{
		Name: "Moran's I", Value: moran.I,
		Band:       fmt.Sprintf("< %.3f", bands.MoranIMax),
		Suspicious: moran.I > bands.MoranIMax,
	})

	entropy := stats.NormalizedByteEntropy(snap)
	rep.Findings = append(rep.Findings, Finding{
		Name: "normalized entropy", Value: entropy,
		Band:       fmt.Sprintf("> %.4f", bands.EntropyMin),
		Suspicious: entropy < bands.EntropyMin,
	})

	rep.BlockWeights = stats.BlockHammingWeights(snap, bands.BlockBytes)
	mean := stats.Summarize(stats.IntsToFloats(rep.BlockWeights)).Mean
	mid := float64(bands.BlockBytes * 8 / 2)
	rep.Findings = append(rep.Findings, Finding{
		Name: "mean block Hamming weight", Value: mean,
		Band:       fmt.Sprintf("≈ %.0f", mid),
		Suspicious: mean < mid*0.97 || mean > mid*1.03,
	})

	// Pearson chi-square on the byte-symbol distribution: a sharper form
	// of the entropy check (Fig. 12's analysis as a hypothesis test).
	chi := stats.ChiSquareUniform(stats.SymbolCounts(snap))
	rep.Findings = append(rep.Findings, Finding{
		Name: "symbol χ² p-value", Value: chi.PValue,
		Band:       fmt.Sprintf("> %.4f", bands.ChiSquareAlpha),
		Suspicious: chi.PValue < bands.ChiSquareAlpha,
	})
	return rep, nil
}

// AnalyzeDevice captures a majority snapshot from the device and runs the
// battery.
func AnalyzeDevice(dev *device.Device, captures int, bands Bands) (*Report, error) {
	if dev.SRAM.Powered() {
		dev.PowerOff(true)
	}
	snap, err := dev.SRAM.CaptureMajority(captures, 25)
	if err != nil {
		return nil, err
	}
	return AnalyzeSnapshot(dev.DeviceID(), snap, dev.SRAM.Rows(), dev.SRAM.Cols(), bands)
}

// TemporalComparison is the §7.1 multiple-snapshot adversary's view of
// two captures taken at different times.
type TemporalComparison struct {
	DriftFraction float64 // fraction of bits that changed
	WelchP        float64 // one-tailed p for mean block-weight shift
	Suspicious    bool
}

// CompareSnapshots contrasts two captures of the same device. The paper
// concludes "the difference in the snapshots captured at multiple points
// in time is indistinguishable from measurement errors" (§7.1) — drift
// above the noise budget or a significant block-weight shift flags the
// device.
func CompareSnapshots(a, b []byte, blockBytes int, maxDrift float64) (TemporalComparison, error) {
	if len(a) != len(b) {
		return TemporalComparison{}, fmt.Errorf("steganalysis: snapshot sizes differ")
	}
	drift := stats.BitErrorRate(a, b)
	wa := stats.IntsToFloats(stats.BlockHammingWeights(a, blockBytes))
	wb := stats.IntsToFloats(stats.BlockHammingWeights(b, blockBytes))
	test, err := stats.WelchTTest(wa, wb)
	if err != nil {
		return TemporalComparison{}, err
	}
	return TemporalComparison{
		DriftFraction: drift,
		WelchP:        test.POneTailed,
		Suspicious:    drift > maxDrift || test.POneTailed < 0.01,
	}, nil
}
