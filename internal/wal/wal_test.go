package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/faults"
)

type rec struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	Note string `json:"note,omitempty"`
}

func (r *rec) Kind() string   { return r.Type }
func (r *rec) SetSeq(seq int) { r.Seq = seq }
func recOK(r *rec) bool       { return r.Type != "" }

func TestCreateAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, ty := range []string{"begin", "step", "step"} {
		if err := j.Append(&rec{Type: ty, Note: "x"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := j.NextSeq(); got != 3 {
		t.Fatalf("NextSeq = %d, want 3", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	entries, validLen, err := ReadFile(path, recOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Seq != i {
			t.Fatalf("entry %d carries seq %d", i, e.Seq)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if validLen != fi.Size() {
		t.Fatalf("validLen %d != file size %d for an intact journal", validLen, fi.Size())
	}

	// Reopen and continue the sequence.
	j2, err := Open(path, Options{}, len(entries), validLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(&rec{Type: "done"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	entries, _, err = ReadFile(path, recOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[3].Seq != 3 || entries[3].Type != "done" {
		t.Fatalf("continuation broken: %+v", entries)
	}
}

func TestCreateRefusesExistingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path, Options{}); !errors.Is(err, ErrJournalIO) {
		t.Fatalf("Create over existing journal: err = %v, want ErrJournalIO", err)
	}
}

func TestParseToleratesOnlyTornTail(t *testing.T) {
	intact := []byte(`{"seq":0,"type":"begin"}` + "\n" + `{"seq":1,"type":"step"}` + "\n")

	// Torn final line: dropped, prefix survives.
	for _, tail := range []string{`{"seq":2,"ty`, `{"seq":2,"type":"step"}`, "garbage"} {
		data := append(append([]byte{}, intact...), tail...)
		entries, validLen, err := Parse(data, recOK)
		if err != nil {
			t.Fatalf("torn tail %q rejected: %v", tail, err)
		}
		if len(entries) != 2 || validLen != int64(len(intact)) {
			t.Fatalf("torn tail %q: %d entries, validLen %d", tail, len(entries), validLen)
		}
	}

	// Mid-file corruption: rejected outright.
	bad := []byte(`{"seq":0,"type":"begin"}` + "\n" + "garbage\n" + `{"seq":2,"type":"step"}` + "\n")
	if _, _, err := Parse(bad, recOK); err == nil {
		t.Fatal("mid-file corruption accepted")
	}

	// A terminated line that unmarshals to a zero record counts as
	// damage too (recOK gate).
	zero := []byte(`{"seq":0,"type":"begin"}` + "\n" + `{"x":1}` + "\n")
	entries, validLen, err := Parse(zero, recOK)
	if err != nil || len(entries) != 1 {
		t.Fatalf("zero-record tail: entries=%d err=%v", len(entries), err)
	}
	if validLen != int64(len(`{"seq":0,"type":"begin"}`)+1) {
		t.Fatalf("zero-record tail validLen = %d", validLen)
	}
}

func TestKillHookPoisonsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	ks := faults.NewKillSwitch(1) // survive the first gate, die at the second
	j, err := Create(path, Options{Hook: ks.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(&rec{Type: "begin"}); err != nil {
		t.Fatalf("first append should survive: %v", err)
	}
	if err := j.Append(&rec{Type: "step"}); !errors.Is(err, faults.ErrKilled) {
		t.Fatalf("second append: err = %v, want ErrKilled", err)
	}
	// Poisoned: every later operation fails, hook consulted or not.
	if err := j.Append(&rec{Type: "step"}); !errors.Is(err, faults.ErrKilled) {
		t.Fatalf("post-kill append: err = %v, want ErrKilled", err)
	}
	if err := j.Gate("image/x"); !errors.Is(err, faults.ErrKilled) {
		t.Fatalf("post-kill gate: err = %v, want ErrKilled", err)
	}
	// Only the surviving append reached disk.
	entries, _, err := ReadFile(path, recOK)
	if err != nil || len(entries) != 1 {
		t.Fatalf("disk holds %d entries (err %v), want 1", len(entries), err)
	}
}

func TestAppendIOFailureIsTypedAndPoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&rec{Type: "begin"}); err != nil {
		t.Fatal(err)
	}
	// Yank the descriptor out from under the journal: the next append's
	// write fails like a dead disk's would.
	j.f.Close()
	if err := j.Append(&rec{Type: "step"}); !errors.Is(err, ErrJournalIO) {
		t.Fatalf("append on closed file: err = %v, want ErrJournalIO", err)
	}
	// And the failure poisons: later appends die even if I/O would work.
	if err := j.Append(&rec{Type: "step"}); !errors.Is(err, faults.ErrKilled) {
		t.Fatalf("append after I/O poison: err = %v, want ErrKilled", err)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	intact := `{"seq":0,"type":"begin"}` + "\n"
	if err := os.WriteFile(path, []byte(intact+`{"seq":1,"ty`), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, validLen, err := ReadFile(path, recOK)
	if err != nil || len(entries) != 1 {
		t.Fatalf("read: entries=%d err=%v", len(entries), err)
	}
	j, err := Open(path, Options{}, 1, validLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&rec{Type: "step"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	entries, _, err = ReadFile(path, recOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Seq != 1 {
		t.Fatalf("after trim+append: %+v", entries)
	}
}

func TestNoSyncStillOrdersRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(&rec{Type: "step"}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	entries, _, err := ReadFile(path, recOK)
	if err != nil || len(entries) != 5 {
		t.Fatalf("NoSync journal: entries=%d err=%v", len(entries), err)
	}
	for i, e := range entries {
		if e.Seq != i {
			t.Fatalf("NoSync entry %d carries seq %d", i, e.Seq)
		}
	}
}
