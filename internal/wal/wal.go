// Package wal is the shared write-ahead journal beneath the crash-safe
// supervisors: one JSONL record per state transition, fsynced before
// the caller takes the next step, so a crash at ANY point leaves a
// clean prefix of the truth on disk. internal/campaign journals one
// campaign with it; internal/sched journals a whole multi-tenant
// scheduler (tenant table, queue, batch assignments) with the same
// machinery — the PR 5 single-campaign guarantees extended to service
// scope without forking the durability code.
//
// The journal is kill-point instrumented: a faults.Hook is consulted
// before every append and at named non-journal gates (image writes),
// and once the hook fires the journal is poisoned — every later append
// fails, the way every write of a dead process fails. Crash-matrix
// tests use this to prove that dying at every single append still
// resumes to a bit-identical outcome.
//
// Parsing fails closed: the only tolerated damage is a torn final line
// (the signature of dying mid-append), which is dropped — that record's
// effects were by construction not yet acted on. Anything else (a gap,
// a mid-file corruption) is the caller's job to reject during replay.
package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"invisiblebits/internal/faults"
)

// ErrJournalIO marks a failure of the durability layer itself — an
// append that could not be written or fsynced, a journal that could not
// be opened or trimmed. Supervisors must fail closed on it: a campaign
// whose journal cannot make progress durable must stop, not continue
// with an un-journaled state the next resume will never see. Test with
// errors.Is.
var ErrJournalIO = errors.New("wal: journal I/O failure")

// Record is one journal record. The journal stamps the sequence number
// via SetSeq immediately before marshalling, and consults the kill hook
// under the point name "journal/<Kind()>".
type Record interface {
	// Kind names the record type (the hook's kill-point suffix).
	Kind() string
	// SetSeq stamps the journal-assigned sequence number.
	SetSeq(seq int)
}

// Journal is the append side. Appends are serialized and each record is
// fsynced before Append returns (unless the journal was opened NoSync).
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	hook     faults.Hook
	nextSeq  int
	noSync   bool
	poisoned bool
}

// Options configures journal creation.
type Options struct {
	// Hook is the crash-test kill-point hook; nil in production.
	Hook faults.Hook
	// NoSync skips the per-append fsync. Benchmarks only: a NoSync
	// journal still orders and formats records identically, but a crash
	// may lose acknowledged appends — it must never back a supervisor
	// whose resume guarantees matter.
	NoSync bool
}

// Create starts a fresh journal at path, failing if one exists (an
// existing journal means the supervisor must be resumed, not re-run).
func Create(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: create journal: %w", ErrJournalIO, err)
	}
	return &Journal{f: f, hook: opts.Hook, noSync: opts.NoSync}, nil
}

// Open reopens an existing journal for appending, first truncating it
// to validLen (dropping a torn tail so new records never glue onto half
// a line). nextSeq continues the replayed sequence.
func Open(path string, opts Options, nextSeq int, validLen int64) (*Journal, error) {
	if err := os.Truncate(path, validLen); err != nil {
		return nil, fmt.Errorf("%w: trim journal tail: %w", ErrJournalIO, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: open journal: %w", ErrJournalIO, err)
	}
	return &Journal{f: f, hook: opts.Hook, noSync: opts.NoSync, nextSeq: nextSeq}, nil
}

// Close releases the journal file (it does not seal the supervisor —
// only the supervisor's own terminal record does that).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// NextSeq returns the sequence number the next append will carry.
func (j *Journal) NextSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Gate consults the kill hook at a named non-journal point (image
// writes, result persistence). Once the hook fires, the journal is
// poisoned for good.
func (j *Journal) Gate(point string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.gateLocked(point)
}

func (j *Journal) gateLocked(point string) error {
	if j.poisoned {
		return faults.ErrKilled
	}
	if j.hook == nil {
		return nil
	}
	if err := j.hook(point); err != nil {
		j.poisoned = true
		return err
	}
	return nil
}

// Append assigns the next sequence number, writes the record as one
// JSON line, and fsyncs before returning. Any failure — kill hook,
// write, or sync — poisons the journal: a supervisor that could not
// persist one transition must not persist later ones over the gap.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.gateLocked("journal/" + rec.Kind()); err != nil {
		return err
	}
	rec.SetSeq(j.nextSeq)
	line, err := json.Marshal(rec)
	if err != nil {
		j.poisoned = true
		return fmt.Errorf("wal: marshal journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.poisoned = true
		return fmt.Errorf("%w: append journal record: %w", ErrJournalIO, err)
	}
	if !j.noSync {
		if err := j.f.Sync(); err != nil {
			j.poisoned = true
			return fmt.Errorf("%w: fsync journal: %w", ErrJournalIO, err)
		}
	}
	j.nextSeq++
	return nil
}

// Parse splits JSONL data into records of type T, tolerating only a
// torn final line. ok reports whether an unmarshalled record is
// structurally present (e.g. carries a non-empty type tag) — a line
// that unmarshals to a zero record is treated like one that does not
// parse at all. validLen is the byte offset just past the last intact
// record: what a resuming supervisor truncates to before appending.
func Parse[T any](data []byte, ok func(*T) bool) (entries []T, validLen int64, err error) {
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line := data
		torn := nl < 0 // no terminator: a write died mid-line
		if !torn {
			line = data[:nl]
		}
		var e T
		if uerr := json.Unmarshal(line, &e); uerr != nil || !ok(&e) {
			rest := data
			if !torn {
				rest = data[nl+1:]
			}
			if len(bytes.TrimSpace(rest)) == 0 || torn && bytes.IndexByte(rest, '\n') < 0 {
				// Damaged final line: the torn tail of a crashed append.
				return entries, off, nil
			}
			return nil, 0, fmt.Errorf("wal: journal record %d is corrupt mid-file", len(entries))
		}
		if torn {
			// Parsed, but never terminated — the fsync cannot have
			// completed, so the record does not count.
			return entries, off, nil
		}
		entries = append(entries, e)
		off += int64(nl + 1)
		data = data[nl+1:]
	}
	return entries, off, nil
}

// ReadFile parses the journal file at path with Parse.
func ReadFile[T any](path string, ok func(*T) bool) (entries []T, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: read journal: %w", ErrJournalIO, err)
	}
	return Parse(data, ok)
}
