// Package wal is the shared write-ahead journal beneath the crash-safe
// supervisors: one record per state transition, fsynced before the
// caller takes the next step, so a crash at ANY point leaves a clean
// prefix of the truth on disk. internal/campaign journals one campaign
// with it; internal/sched journals a whole multi-tenant scheduler
// (tenant table, queue, batch assignments) with the same machinery —
// the PR 5 single-campaign guarantees extended to service scope
// without forking the durability code.
//
// Records are framed (v2) as
//
//	w2 <len> <crc32c-hex8> <json>\n
//
// where len is the byte length of the JSON payload and the checksum is
// CRC32-Castagnoli over it — so a flipped bit anywhere in a record is
// detected, not replayed. Journals written before framing (bare JSON
// lines) still parse: any line not starting with "w2 " is treated as a
// v1 record, so mixed v1/v2 journals (old journal, new appends) work.
//
// The journal is kill-point instrumented: a faults.Hook is consulted
// before every append and at named non-journal gates (image writes),
// and once the hook fires the journal is poisoned — every later append
// fails, the way every write of a dead process fails. Crash-matrix
// tests use this to prove that dying at every single append still
// resumes to a bit-identical outcome.
//
// Parsing comes in two strengths. Parse fails closed: the only
// tolerated damage is a torn final line (the signature of dying
// mid-append), which is dropped; anything else returns a typed
// *CorruptError (errors.Is(err, ErrCorrupt)). ParseSalvage never
// fails: it recovers the longest verifiable prefix and reports exactly
// what was cut in a Salvage summary — the input to salvage-based
// resume, where losing a journal suffix is safe because every slice of
// work is deterministically redone.
package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"

	"invisiblebits/internal/faults"
	"invisiblebits/internal/storage"
)

// ErrJournalIO marks a failure of the durability layer itself — an
// append that could not be written or fsynced, a journal that could not
// be opened or trimmed. Supervisors must fail closed on it: a campaign
// whose journal cannot make progress durable must stop, not continue
// with an un-journaled state the next resume will never see. Test with
// errors.Is.
var ErrJournalIO = errors.New("wal: journal I/O failure")

// ErrCorrupt marks journal data that failed verification mid-file — a
// bad CRC frame, an unparseable record, a gap before intact records.
// Test with errors.Is; errors.As against *CorruptError recovers the
// record index and the salvage point.
var ErrCorrupt = errors.New("wal: journal corrupt")

// CorruptError is the typed mid-file corruption failure from Parse: the
// index of the first unverifiable record, the byte offset of the
// longest verifiable prefix (the salvage point a lenient caller could
// cut to), and why verification failed. Matches ErrCorrupt under
// errors.Is.
type CorruptError struct {
	// Index is the record index (0-based) of the first bad record.
	Index int
	// Offset is the byte offset just past the last verifiable record —
	// where ParseSalvage would cut.
	Offset int64
	// Reason says what failed (CRC mismatch, frame damage, JSON error).
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: journal record %d is corrupt mid-file (%s); verifiable prefix ends at byte %d", e.Index, e.Reason, e.Offset)
}

// Is matches ErrCorrupt so errors.Is(err, wal.ErrCorrupt) works.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Salvage summarizes what lenient parsing recovered and what it gave
// up on — the typed outcome a degraded resume reports to operators.
type Salvage struct {
	// Entries is how many records were recovered.
	Entries int
	// ValidLen is the byte offset just past the last verifiable record:
	// what a resuming supervisor truncates to before appending.
	ValidLen int64
	// DroppedBytes is how many trailing bytes were cut.
	DroppedBytes int64
	// Truncated reports whether anything was cut at all.
	Truncated bool
	// TornTail reports that the cut looks like an ordinary mid-append
	// crash (a damaged or unterminated final line) rather than mid-file
	// corruption. Parse tolerates exactly this case.
	TornTail bool
	// Reason says why the cut happened ("" when nothing was cut).
	Reason string
	// Offsets[i] is the byte offset just past record i — the cut point
	// a caller uses when structural replay rejects record i even though
	// its frame verified (Offsets[i-1] is where to truncate).
	Offsets []int64
}

// castagnoli is the CRC32C table (hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// framePrefix introduces a v2 framed record.
const framePrefix = "w2 "

// EncodeFrame wraps one marshalled record payload in a v2 frame line
// (length + CRC32C header, trailing newline included). Exposed for
// offline tooling (ibfsck) that rewrites journals.
func EncodeFrame(payload []byte) []byte {
	head := fmt.Sprintf("%s%d %08x ", framePrefix, len(payload), crc32.Checksum(payload, castagnoli))
	line := make([]byte, 0, len(head)+len(payload)+1)
	line = append(line, head...)
	line = append(line, payload...)
	return append(line, '\n')
}

// decodeFrame returns the JSON payload of one journal line. A line not
// starting with the v2 prefix is a v1 record: the line itself.
func decodeFrame(line []byte) ([]byte, error) {
	if !bytes.HasPrefix(line, []byte(framePrefix)) {
		return line, nil
	}
	rest := line[len(framePrefix):]
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, errors.New("damaged frame header")
	}
	n, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || n < 0 {
		return nil, errors.New("damaged frame length")
	}
	rest = rest[sp+1:]
	if len(rest) < 9 || rest[8] != ' ' {
		return nil, errors.New("damaged frame checksum field")
	}
	want, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil {
		return nil, errors.New("damaged frame checksum field")
	}
	payload := rest[9:]
	if len(payload) != n {
		return nil, fmt.Errorf("frame length mismatch: header %d, payload %d", n, len(payload))
	}
	if got := crc32.Checksum(payload, castagnoli); uint32(want) != got {
		return nil, fmt.Errorf("CRC mismatch: frame %08x, payload %08x", uint32(want), got)
	}
	return payload, nil
}

// Record is one journal record. The journal stamps the sequence number
// via SetSeq immediately before marshalling, and consults the kill hook
// under the point name "journal/<Kind()>".
type Record interface {
	// Kind names the record type (the hook's kill-point suffix).
	Kind() string
	// SetSeq stamps the journal-assigned sequence number.
	SetSeq(seq int)
}

// Journal is the append side. Appends are serialized and each record is
// fsynced before Append returns (unless the journal was opened NoSync).
// Every appended record is v2-framed.
type Journal struct {
	mu       sync.Mutex
	f        storage.File
	hook     faults.Hook
	nextSeq  int
	noSync   bool
	poisoned bool
}

// Options configures journal creation.
type Options struct {
	// Hook is the crash-test kill-point hook; nil in production.
	Hook faults.Hook
	// NoSync skips the per-append fsync. Benchmarks only: a NoSync
	// journal still orders and formats records identically, but a crash
	// may lose acknowledged appends — it must never back a supervisor
	// whose resume guarantees matter.
	NoSync bool
	// FS is the filesystem seam; nil means the real OS filesystem.
	// Fault-injection tests substitute a storage.FaultFS.
	FS storage.FS
}

// Create starts a fresh journal at path, failing if one exists (an
// existing journal means the supervisor must be resumed, not re-run).
func Create(path string, opts Options) (*Journal, error) {
	f, err := storage.Default(opts.FS).OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: create journal: %w", ErrJournalIO, err)
	}
	return &Journal{f: f, hook: opts.Hook, noSync: opts.NoSync}, nil
}

// Open reopens an existing journal for appending, first truncating it
// to validLen (dropping a torn tail so new records never glue onto half
// a line). nextSeq continues the replayed sequence.
func Open(path string, opts Options, nextSeq int, validLen int64) (*Journal, error) {
	fsys := storage.Default(opts.FS)
	if err := fsys.Truncate(path, validLen); err != nil {
		return nil, fmt.Errorf("%w: trim journal tail: %w", ErrJournalIO, err)
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: open journal: %w", ErrJournalIO, err)
	}
	return &Journal{f: f, hook: opts.Hook, noSync: opts.NoSync, nextSeq: nextSeq}, nil
}

// Close releases the journal file (it does not seal the supervisor —
// only the supervisor's own terminal record does that).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// NextSeq returns the sequence number the next append will carry.
func (j *Journal) NextSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Gate consults the kill hook at a named non-journal point (image
// writes, result persistence). Once the hook fires, the journal is
// poisoned for good.
func (j *Journal) Gate(point string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.gateLocked(point)
}

func (j *Journal) gateLocked(point string) error {
	if j.poisoned {
		return faults.ErrKilled
	}
	if j.hook == nil {
		return nil
	}
	if err := j.hook(point); err != nil {
		j.poisoned = true
		return err
	}
	return nil
}

// Append assigns the next sequence number, writes the record as one
// framed JSON line, and fsyncs before returning. Any failure — kill
// hook, write, or sync — poisons the journal: a supervisor that could
// not persist one transition must not persist later ones over the gap.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.gateLocked("journal/" + rec.Kind()); err != nil {
		return err
	}
	rec.SetSeq(j.nextSeq)
	payload, err := json.Marshal(rec)
	if err != nil {
		j.poisoned = true
		return fmt.Errorf("wal: marshal journal record: %w", err)
	}
	if _, err := j.f.Write(EncodeFrame(payload)); err != nil {
		j.poisoned = true
		return fmt.Errorf("%w: append journal record: %w", ErrJournalIO, err)
	}
	if !j.noSync {
		if err := j.f.Sync(); err != nil {
			j.poisoned = true
			return fmt.Errorf("%w: fsync journal: %w", ErrJournalIO, err)
		}
	}
	j.nextSeq++
	return nil
}

// ParseSalvage splits journal data into records of type T, recovering
// the longest verifiable prefix. It never fails: parsing stops at the
// first record that cannot be verified (bad frame, CRC mismatch,
// unparseable JSON, or ok returning false) and the Salvage summary
// reports what was recovered, where the verifiable prefix ends, and
// whether the damage looks like an ordinary torn final line or genuine
// mid-file corruption. ok reports whether an unmarshalled record is
// structurally present (e.g. carries a non-empty type tag).
func ParseSalvage[T any](data []byte, ok func(*T) bool) (entries []T, sal Salvage) {
	var off int64
	var offsets []int64
	total := int64(len(data))
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line := data
		torn := nl < 0 // no terminator: a write died mid-line
		if !torn {
			line = data[:nl]
		}
		payload, ferr := decodeFrame(line)
		reason := ""
		if ferr != nil {
			reason = ferr.Error()
		} else {
			var e T
			if uerr := json.Unmarshal(payload, &e); uerr != nil {
				reason = "unparseable record: " + uerr.Error()
			} else if !ok(&e) {
				reason = "structurally empty record"
			} else if torn {
				// Parsed, but never terminated — the fsync cannot have
				// completed, so the record does not count.
				reason = "unterminated final record"
			} else {
				entries = append(entries, e)
				off += int64(nl + 1)
				offsets = append(offsets, off)
				data = data[nl+1:]
				continue
			}
		}
		// Verification failed (or the line was torn). Decide whether
		// this is the benign signature of dying mid-append: a damaged
		// or unterminated line with nothing verifiable after it.
		rest := data
		if !torn {
			rest = data[nl+1:]
		}
		tornTail := torn || len(bytes.TrimSpace(rest)) == 0
		if torn {
			reason = "torn final line: " + reason
		}
		sal = Salvage{
			Entries:      len(entries),
			ValidLen:     off,
			DroppedBytes: total - off,
			Truncated:    true,
			TornTail:     tornTail,
			Reason:       reason,
			Offsets:      offsets,
		}
		return entries, sal
	}
	return entries, Salvage{Entries: len(entries), ValidLen: off, Offsets: offsets}
}

// Parse splits journal data into records of type T, tolerating only a
// torn final line (dropped — that record's effects were by construction
// not yet acted on). Mid-file corruption returns a *CorruptError
// matching ErrCorrupt. validLen is the byte offset just past the last
// intact record: what a resuming supervisor truncates to before
// appending.
func Parse[T any](data []byte, ok func(*T) bool) (entries []T, validLen int64, err error) {
	entries, sal := ParseSalvage(data, ok)
	if sal.Truncated && !sal.TornTail {
		return nil, 0, &CorruptError{Index: sal.Entries, Offset: sal.ValidLen, Reason: sal.Reason}
	}
	return entries, sal.ValidLen, nil
}

// ReadFile parses the journal file at path with Parse (fail-closed).
func ReadFile[T any](path string, ok func(*T) bool) (entries []T, validLen int64, err error) {
	return ReadFileFS[T](nil, path, ok)
}

// ReadFileFS is ReadFile over an explicit filesystem seam.
func ReadFileFS[T any](fsys storage.FS, path string, ok func(*T) bool) (entries []T, validLen int64, err error) {
	data, err := storage.Default(fsys).ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: read journal: %w", ErrJournalIO, err)
	}
	return Parse(data, ok)
}

// ReadFileSalvage parses the journal file at path with ParseSalvage
// (lenient). The error is non-nil only when the file itself cannot be
// read — verification failures are reported in the Salvage summary,
// never as errors.
func ReadFileSalvage[T any](fsys storage.FS, path string, ok func(*T) bool) (entries []T, sal Salvage, err error) {
	data, err := storage.Default(fsys).ReadFile(path)
	if err != nil {
		return nil, Salvage{}, fmt.Errorf("%w: read journal: %w", ErrJournalIO, err)
	}
	entries, sal = ParseSalvage(data, ok)
	return entries, sal, nil
}
