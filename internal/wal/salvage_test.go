package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeJournal appends n framed records and returns the file bytes.
func writeJournal(t *testing.T, path string, n int) []byte {
	t.Helper()
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(&rec{Type: "step", Note: fmt.Sprintf("note-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestV2FramesAreCRCFramed: Append writes "w2 <len> <crc> <json>" lines
// and a flipped payload byte is detected — the frame no longer parses.
func TestV2FramesAreCRCFramed(t *testing.T) {
	data := writeJournal(t, filepath.Join(t.TempDir(), "j.jsonl"), 3)
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}
	for i, ln := range lines {
		if !bytes.HasPrefix(ln, []byte(framePrefix)) {
			t.Fatalf("line %d lacks the v2 frame prefix: %q", i, ln)
		}
	}
	entries, sal := ParseSalvage(data, recOK)
	if sal.Entries != 3 || sal.DroppedBytes != 0 || len(entries) != 3 {
		t.Fatalf("clean salvage = %+v", sal)
	}
	if sal.ValidLen != int64(len(data)) {
		t.Fatalf("ValidLen %d, want %d", sal.ValidLen, len(data))
	}
}

// TestSalvageCutsAtCorruptFrame: a corrupt middle record drops it and
// everything after; Offsets name the byte-exact cut; the strict Parse
// surfaces a typed CorruptError with the record index.
func TestSalvageCutsAtCorruptFrame(t *testing.T) {
	data := writeJournal(t, filepath.Join(t.TempDir(), "j.jsonl"), 5)
	// Flip a byte inside record 2's JSON payload.
	lines := bytes.SplitAfter(data, []byte("\n"))
	off := len(lines[0]) + len(lines[1])
	corrupt := append([]byte(nil), data...)
	corrupt[off+len(lines[2])-4] ^= 0x01

	entries, sal := ParseSalvage(corrupt, recOK)
	if len(entries) != 2 || sal.Entries != 2 {
		t.Fatalf("salvaged %d records, want 2 (sal=%+v)", len(entries), sal)
	}
	if sal.ValidLen != int64(off) {
		t.Fatalf("ValidLen %d, want %d", sal.ValidLen, off)
	}
	if !sal.Truncated || sal.TornTail {
		t.Fatalf("corrupt interior must be Truncated && !TornTail: %+v", sal)
	}
	if sal.DroppedBytes != int64(len(corrupt)-off) {
		t.Fatalf("DroppedBytes %d, want %d", sal.DroppedBytes, len(corrupt)-off)
	}
	if len(sal.Offsets) != 2 || sal.Offsets[1] != int64(off) {
		t.Fatalf("Offsets %v, want cut at %d", sal.Offsets, off)
	}

	_, _, err := Parse(corrupt, recOK)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Parse = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Parse error %T is not *CorruptError", err)
	}
	if ce.Index != 2 || ce.Offset != int64(off) {
		t.Fatalf("CorruptError{Index: %d, Offset: %d}, want {2, %d}", ce.Index, ce.Offset, off)
	}
}

// TestV1JournalsStillReplay: pre-CRC journals are plain JSON lines;
// they must parse unchanged, and a mixed file (v1 prefix, v2 suffix —
// an old journal appended to by a new process) must too.
func TestV1JournalsStillReplay(t *testing.T) {
	var v1 bytes.Buffer
	for i := 0; i < 3; i++ {
		b, _ := json.Marshal(&rec{Seq: i, Type: "step", Note: fmt.Sprintf("v1-%d", i)})
		v1.Write(b)
		v1.WriteByte('\n')
	}
	entries, validLen, err := Parse(v1.Bytes(), recOK)
	if err != nil || len(entries) != 3 || validLen != int64(v1.Len()) {
		t.Fatalf("v1 parse: %d entries, len %d, err %v", len(entries), validLen, err)
	}

	mixed := append([]byte(nil), v1.Bytes()...)
	for i := 3; i < 5; i++ {
		b, _ := json.Marshal(&rec{Seq: i, Type: "step", Note: fmt.Sprintf("v2-%d", i)})
		mixed = append(mixed, EncodeFrame(b)...)
	}
	entries, validLen, err = Parse(mixed, recOK)
	if err != nil || len(entries) != 5 || validLen != int64(len(mixed)) {
		t.Fatalf("mixed parse: %d entries, len %d, err %v", len(entries), validLen, err)
	}
	for i, e := range entries {
		if e.Seq != i {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

// TestTornTailIsNotCorruption: an unterminated final record is the
// expected signature of a crash mid-append — strict Parse tolerates it
// (no ErrCorrupt) and salvage flags TornTail.
func TestTornTailIsNotCorruption(t *testing.T) {
	data := writeJournal(t, filepath.Join(t.TempDir(), "j.jsonl"), 3)
	lines := bytes.SplitAfter(data, []byte("\n"))
	keep := len(lines[0]) + len(lines[1])
	torn := data[:keep+7] // record 2 torn mid-frame, no newline

	entries, validLen, err := Parse(torn, recOK)
	if err != nil {
		t.Fatalf("torn tail must not be a strict-parse error: %v", err)
	}
	if len(entries) != 2 || validLen != int64(keep) {
		t.Fatalf("torn parse: %d entries, len %d, want 2, %d", len(entries), validLen, keep)
	}
	_, sal := ParseSalvage(torn, recOK)
	if !sal.TornTail || !sal.Truncated {
		t.Fatalf("salvage of torn tail = %+v, want TornTail && Truncated", sal)
	}
}

// TestOpenAfterCorruptionContinuesJournal: a journal reopened at the
// salvage cut appends fresh records after the surviving prefix, and the
// result parses end to end.
func TestOpenAfterCorruptionContinuesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	data := writeJournal(t, path, 4)
	lines := bytes.SplitAfter(data, []byte("\n"))
	cut := len(lines[0]) + len(lines[1])
	// Corrupt record 2 in place on disk.
	data[cut+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	entries, sal := ParseSalvage(data, recOK)
	j, err := Open(path, Options{}, len(entries), sal.ValidLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&rec{Type: "step", Note: "after salvage"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	final, _, err := ReadFile(path, recOK)
	if err != nil {
		t.Fatalf("journal does not parse cleanly after salvage+append: %v", err)
	}
	if len(final) != 3 || final[2].Note != "after salvage" || final[2].Seq != 2 {
		t.Fatalf("unexpected continuation: %+v", final)
	}
}
