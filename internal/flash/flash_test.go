package flash

import (
	"testing"
)

func small() Spec {
	s := DefaultSpec()
	s.PageBytes = 64
	s.Pages = 8
	return s
}

func mustNew(t *testing.T, s Spec) *Array {
	t.Helper()
	a, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.PageBytes = 0 },
		func(s *Spec) { s.Pages = -1 },
		func(s *Spec) { s.ProgramTimeMeanUs = 0 },
		func(s *Spec) { s.VtOvercharged = s.VtProgrammed },
		func(s *Spec) { s.VtProgrammed = s.VtErased - 1 },
		func(s *Spec) { s.MeasureNoiseV = -1 },
	}
	for i, mutate := range bad {
		s := small()
		mutate(&s)
		if _, err := New(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestErasedStateReadsOnes(t *testing.T) {
	a := mustNew(t, small())
	got, err := a.Read(0, a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xFF {
			t.Fatalf("byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestProgramNORSemantics(t *testing.T) {
	a := mustNew(t, small())
	if _, err := a.Program(0, []byte{0xF0}); err != nil {
		t.Fatal(err)
	}
	b, _ := a.ByteAt(0)
	if b != 0xF0 {
		t.Fatalf("after program: %#x", b)
	}
	// Re-programming cannot set bits back to 1.
	if _, err := a.Program(0, []byte{0x0F}); err != nil {
		t.Fatal(err)
	}
	b, _ = a.ByteAt(0)
	if b != 0x00 {
		t.Fatalf("NOR AND semantics violated: %#x", b)
	}
	// Erase restores 1s.
	if err := a.ErasePage(0); err != nil {
		t.Fatal(err)
	}
	b, _ = a.ByteAt(0)
	if b != 0xFF {
		t.Fatalf("after erase: %#x", b)
	}
}

func TestProgramTimeVariationAndWear(t *testing.T) {
	a := mustNew(t, small())
	// Intrinsic variation: program times differ across cells.
	t0, err := a.MeasureProgramTime(0)
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	for bit := 1; bit < 64; bit++ {
		ti, _ := a.MeasureProgramTime(bit)
		if ti != t0 {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("no program-time variation")
	}
	// Wear: cycling raises the mean measurably above noise.
	mean := func(bit int) float64 {
		var s float64
		for i := 0; i < 50; i++ {
			v, _ := a.MeasureProgramTime(bit)
			s += v
		}
		return s / 50
	}
	before := mean(7)
	if err := a.CycleBits([]int{7}, 500); err != nil {
		t.Fatal(err)
	}
	after := mean(7)
	wantDelta := 500 * a.Spec().WearSlowdownUsPerCycle
	if after-before < wantDelta*0.8 {
		t.Errorf("wear slowdown = %v, want ≈%v", after-before, wantDelta)
	}
}

func TestEraseDestroysAnalogState(t *testing.T) {
	a := mustNew(t, small())
	if _, err := a.Program(0, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if err := a.Overcharge(3); err != nil {
		t.Fatal(err)
	}
	v, _ := a.MarginRead(3)
	if v < a.Spec().VtProgrammed {
		t.Fatalf("overcharged Vt = %v", v)
	}
	if err := a.ErasePage(0); err != nil {
		t.Fatal(err)
	}
	v, _ = a.MarginRead(3)
	if v > a.Spec().VtErased+0.5 {
		t.Errorf("erase left Vt at %v — hidden data survived", v)
	}
}

func TestOverchargeRequiresProgrammedBit(t *testing.T) {
	a := mustNew(t, small())
	if err := a.Overcharge(0); err == nil {
		t.Fatal("overcharge of erased bit accepted")
	}
	if _, err := a.Program(0, []byte{0xFE}); err != nil {
		t.Fatal(err)
	}
	if err := a.Overcharge(0); err != nil {
		t.Fatalf("overcharge of programmed bit rejected: %v", err)
	}
	if err := a.Overcharge(1); err == nil {
		t.Fatal("bit 1 is still erased; overcharge accepted")
	}
}

func TestVtLevelsSeparable(t *testing.T) {
	a := mustNew(t, small())
	if _, err := a.Program(0, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if err := a.Overcharge(0); err != nil {
		t.Fatal(err)
	}
	// Margin reads must separate normal-programmed from overcharged.
	vNormal, _ := a.MarginRead(1)
	vHigh, _ := a.MarginRead(0)
	mid := (a.Spec().VtProgrammed + a.Spec().VtOvercharged) / 2
	if !(vNormal < mid && vHigh > mid) {
		t.Errorf("levels not separable: normal=%v high=%v mid=%v", vNormal, vHigh, mid)
	}
}

func TestPECycleAccounting(t *testing.T) {
	a := mustNew(t, small())
	if err := a.ErasePage(2); err != nil {
		t.Fatal(err)
	}
	if err := a.CyclePage(2, 10); err != nil {
		t.Fatal(err)
	}
	n, err := a.PECycles(2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Errorf("cycles = %d, want 11", n)
	}
}

func TestBoundsChecking(t *testing.T) {
	a := mustNew(t, small())
	if _, err := a.Read(-1, 4); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := a.Read(a.Bytes()-2, 4); err == nil {
		t.Error("overlong read accepted")
	}
	if _, err := a.Program(a.Bytes(), []byte{0}); err == nil {
		t.Error("out-of-range program accepted")
	}
	if err := a.ErasePage(99); err == nil {
		t.Error("bad page erase accepted")
	}
	if err := a.CyclePage(0, -1); err == nil {
		t.Error("negative cycles accepted")
	}
	if err := a.CycleBits([]int{1 << 30}, 1); err == nil {
		t.Error("bad bit index accepted")
	}
	if _, err := a.MeasureProgramTime(-1); err == nil {
		t.Error("bad measure accepted")
	}
	if _, err := a.MarginRead(1 << 30); err == nil {
		t.Error("bad margin read accepted")
	}
	if _, err := a.PECycles(-1); err == nil {
		t.Error("bad page query accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := mustNew(t, small())
	b := mustNew(t, small())
	for bit := 0; bit < 32; bit++ {
		// Intrinsic times match (before measurement noise): compare the
		// stored values through repeated averaging.
		var sa, sb float64
		for i := 0; i < 30; i++ {
			va, _ := a.MeasureProgramTime(bit)
			vb, _ := b.MeasureProgramTime(bit)
			sa += va
			sb += vb
		}
		if d := sa/30 - sb/30; d > 1 || d < -1 {
			t.Fatalf("bit %d intrinsic time differs: %v", bit, d)
		}
	}
}
