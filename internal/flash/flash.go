// Package flash models on-chip NOR Flash at the fidelity the paper's
// comparison baselines require (§5.3, §8): digital page-erase/program
// semantics plus the two analog side channels prior work hides data in —
// per-cell *program time* (Wang et al., "Hiding Information in Flash
// Memory") and per-cell *threshold-voltage level* (Zuck et al., "Stash in
// a Flash").
//
// Digital behaviour: erase sets a page's bits to 1; programming can only
// clear bits (1→0); programming a 0 bit again is a no-op. The device's
// firmware image lives here too ("the instructions ... run from
// non-volatile memory", §4.2), loaded through the debugger interface.
//
// Analog behaviour per bit cell:
//
//   - ProgramTime: lognormal with a long tail. Program/erase cycling
//     (wear) increases it measurably — Wang et al. encode a hidden bit by
//     deliberately cycling a group of cells and decode by comparing the
//     group's mean program time against its neighbours.
//   - Vt: erased cells sit at a low threshold voltage, programmed cells
//     at a high one with spread. Zuck et al. over-charge selected
//     already-programmed cells to a second, higher level that reads
//     identically at the digital reference but is separable with a margin
//     read.
//
// Both side channels are destroyed by an erase (or re-program) of the
// page — the fragility Invisible Bits' Table 3 contrasts against.
package flash

import (
	"errors"
	"fmt"
	"math"

	"invisiblebits/internal/rng"
)

// Spec sizes and parameterizes a Flash array.
type Spec struct {
	PageBytes int
	Pages     int
	// ProgramTimeMeanUs and ProgramTimeSigma parameterize the lognormal
	// per-cell program time (sigma is the log-domain std dev).
	ProgramTimeMeanUs float64
	ProgramTimeSigma  float64
	// WearSlowdownUsPerCycle is the program-time increase per P/E cycle.
	WearSlowdownUsPerCycle float64
	// Threshold-voltage levels (volts).
	VtErased, VtProgrammed, VtOvercharged float64
	// VtSigma is the per-program spread of the reached level.
	VtSigma float64
	// MeasureNoiseUs and MeasureNoiseV are per-measurement noises.
	MeasureNoiseUs float64
	MeasureNoiseV  float64
	// Seed fixes the per-cell variation pattern (device identity).
	Seed uint64
}

// DefaultSpec returns a 256 KB (512-byte × 512-page) device-class array.
func DefaultSpec() Spec {
	return Spec{
		PageBytes:              512,
		Pages:                  512,
		ProgramTimeMeanUs:      60,
		ProgramTimeSigma:       0.10,
		WearSlowdownUsPerCycle: 0.02,
		VtErased:               1.0,
		VtProgrammed:           4.5,
		VtOvercharged:          5.6,
		VtSigma:                0.15,
		MeasureNoiseUs:         0.5,
		MeasureNoiseV:          0.05,
		Seed:                   1,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch {
	case s.PageBytes <= 0 || s.Pages <= 0:
		return fmt.Errorf("flash: non-positive geometry %dx%d", s.Pages, s.PageBytes)
	case s.ProgramTimeMeanUs <= 0 || s.ProgramTimeSigma < 0:
		return errors.New("flash: bad program-time parameters")
	case s.VtOvercharged <= s.VtProgrammed || s.VtProgrammed <= s.VtErased:
		return errors.New("flash: Vt levels must be ordered erased < programmed < overcharged")
	case s.WearSlowdownUsPerCycle < 0 || s.MeasureNoiseUs < 0 || s.MeasureNoiseV < 0:
		return errors.New("flash: negative noise/wear parameters")
	}
	return nil
}

// Array is a simulated NOR Flash.
type Array struct {
	spec Spec
	data []byte // digital contents

	progTimeUs []float32 // per-bit intrinsic program time
	vt         []float32 // per-bit current threshold voltage
	peCycles   []uint32  // per-page program/erase count

	noise *rng.Source
}

// New builds a fully erased array.
func New(spec Spec) (*Array, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	bytes := spec.PageBytes * spec.Pages
	bits := bytes * 8
	a := &Array{
		spec:       spec,
		data:       make([]byte, bytes),
		progTimeUs: make([]float32, bits),
		vt:         make([]float32, bits),
		peCycles:   make([]uint32, spec.Pages),
	}
	seedSrc := rng.NewSource(spec.Seed)
	vary := seedSrc.Split()
	a.noise = seedSrc.Split()
	for i := range a.progTimeUs {
		a.progTimeUs[i] = float32(spec.ProgramTimeMeanUs *
			math.Exp(vary.NormScaled(0, spec.ProgramTimeSigma)))
		a.vt[i] = float32(spec.VtErased)
	}
	for i := range a.data {
		a.data[i] = 0xFF // erased state reads all-1s
	}
	return a, nil
}

// Spec returns the construction parameters.
func (a *Array) Spec() Spec { return a.spec }

// Bytes returns the capacity in bytes.
func (a *Array) Bytes() int { return len(a.data) }

func (a *Array) checkRange(off, n int) error {
	if off < 0 || off+n > len(a.data) {
		return fmt.Errorf("flash: access [%d,%d) out of range of %d bytes", off, off+n, len(a.data))
	}
	return nil
}

// Read copies n bytes starting at off.
func (a *Array) Read(off, n int) ([]byte, error) {
	if err := a.checkRange(off, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, a.data[off:off+n])
	return out, nil
}

// ByteAt returns a single byte.
func (a *Array) ByteAt(off int) (byte, error) {
	if err := a.checkRange(off, 1); err != nil {
		return 0, err
	}
	return a.data[off], nil
}

// ErasePage resets a page to all-1s, clears its analog levels, and counts
// a P/E cycle (wearing the page's cells). Any hidden data riding on the
// page's analog state is destroyed.
func (a *Array) ErasePage(page int) error {
	if page < 0 || page >= a.spec.Pages {
		return fmt.Errorf("flash: page %d out of range", page)
	}
	base := page * a.spec.PageBytes
	for i := 0; i < a.spec.PageBytes; i++ {
		a.data[base+i] = 0xFF
	}
	bitBase := base * 8
	for b := 0; b < a.spec.PageBytes*8; b++ {
		a.vt[bitBase+b] = float32(a.spec.VtErased)
	}
	a.wearPage(page, 1)
	return nil
}

// wearPage applies n P/E cycles of program-time slowdown to every cell of
// the page.
func (a *Array) wearPage(page, n int) {
	a.peCycles[page] += uint32(n)
	slow := float32(a.spec.WearSlowdownUsPerCycle * float64(n))
	bitBase := page * a.spec.PageBytes * 8
	for b := 0; b < a.spec.PageBytes*8; b++ {
		a.progTimeUs[bitBase+b] += slow
	}
}

// Program writes data at off with NOR semantics: only 1→0 transitions
// take effect. Bits actually programmed acquire the programmed Vt level
// (with spread). It returns the per-byte simulated program time in µs
// (the sum over programmed bits), which the Wang baseline measures.
func (a *Array) Program(off int, data []byte) (totalTimeUs float64, err error) {
	if err := a.checkRange(off, len(data)); err != nil {
		return 0, err
	}
	for i, b := range data {
		old := a.data[off+i]
		a.data[off+i] = old & b
		cleared := old &^ b // bits going 1→0
		for k := 0; k < 8; k++ {
			if cleared&(1<<k) != 0 {
				bit := (off+i)*8 + k
				totalTimeUs += float64(a.progTimeUs[bit]) +
					a.noise.NormScaled(0, a.spec.MeasureNoiseUs)
				a.vt[bit] = float32(a.noise.NormScaled(a.spec.VtProgrammed, a.spec.VtSigma))
			}
		}
	}
	return totalTimeUs, nil
}

// CyclePage deliberately stresses a page with n program/erase cycles
// without changing its final (erased) digital contents — the Wang et al.
// encoding knob.
func (a *Array) CyclePage(page, n int) error {
	if page < 0 || page >= a.spec.Pages {
		return fmt.Errorf("flash: page %d out of range", page)
	}
	if n < 0 {
		return errors.New("flash: negative cycle count")
	}
	a.wearPage(page, n)
	return nil
}

// CycleBits stresses an arbitrary set of bit indices with n extra P/E
// cycles each (finer grain than CyclePage, used by the group-of-128
// encoding of the Wang baseline).
func (a *Array) CycleBits(bits []int, n int) error {
	if n < 0 {
		return errors.New("flash: negative cycle count")
	}
	slow := float32(a.spec.WearSlowdownUsPerCycle * float64(n))
	for _, b := range bits {
		if b < 0 || b >= len(a.progTimeUs) {
			return fmt.Errorf("flash: bit %d out of range", b)
		}
		a.progTimeUs[b] += slow
	}
	return nil
}

// MeasureProgramTime programs a scratch pattern conceptually and reports
// the (noisy) program time of one bit cell without altering digital
// contents — the decode-side measurement of the Wang baseline.
func (a *Array) MeasureProgramTime(bit int) (float64, error) {
	if bit < 0 || bit >= len(a.progTimeUs) {
		return 0, fmt.Errorf("flash: bit %d out of range", bit)
	}
	return float64(a.progTimeUs[bit]) + a.noise.NormScaled(0, a.spec.MeasureNoiseUs), nil
}

// Overcharge pushes an already-programmed (0) bit to the higher Vt level
// — the Zuck et al. encoding primitive. Overcharging an erased bit is an
// error: it would flip the digital value and reveal the channel.
func (a *Array) Overcharge(bit int) error {
	if bit < 0 || bit >= len(a.vt) {
		return fmt.Errorf("flash: bit %d out of range", bit)
	}
	if a.data[bit/8]&(1<<(bit%8)) != 0 {
		return fmt.Errorf("flash: bit %d is erased; overcharge would corrupt public data", bit)
	}
	a.vt[bit] = float32(a.noise.NormScaled(a.spec.VtOvercharged, a.spec.VtSigma))
	return nil
}

// MarginRead returns a noisy threshold-voltage measurement for a bit —
// the decode-side primitive of the Zuck baseline.
func (a *Array) MarginRead(bit int) (float64, error) {
	if bit < 0 || bit >= len(a.vt) {
		return 0, fmt.Errorf("flash: bit %d out of range", bit)
	}
	return float64(a.vt[bit]) + a.noise.NormScaled(0, a.spec.MeasureNoiseV), nil
}

// PECycles reports a page's program/erase count.
func (a *Array) PECycles(page int) (uint32, error) {
	if page < 0 || page >= a.spec.Pages {
		return 0, fmt.Errorf("flash: page %d out of range", page)
	}
	return a.peCycles[page], nil
}
