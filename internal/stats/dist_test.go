package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-2.326347874040841, 0.01},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !approxEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		p := (float64(raw) + 1) / (1 << 16) // p in (0, 1)
		x := NormalQuantile(p)
		return approxEqual(NormalCDF(x), p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnown(t *testing.T) {
	if got := NormalQuantile(0.975); !approxEqual(got, 1.959963984540054, 1e-8) {
		t.Errorf("z(0.975) = %v", got)
	}
	if got := NormalQuantile(0.5); !approxEqual(got, 0, 1e-12) {
		t.Errorf("z(0.5) = %v", got)
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Values from standard t tables.
	cases := []struct {
		t, df, want float64
		tol         float64
	}{
		{0, 5, 0.5, 1e-12},
		{2.015, 5, 0.95, 2e-4}, // t_{0.95,5} = 2.015
		{-2.015, 5, 0.05, 2e-4},
		{1.812, 10, 0.95, 2e-4},  // t_{0.95,10} = 1.812
		{2.228, 10, 0.975, 2e-4}, // t_{0.975,10} = 2.228
		{1.645, 1e6, 0.95, 1e-3}, // approaches the normal for large df
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.df); !approxEqual(got, c.want, c.tol) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	f := func(rawT int16, rawDF uint8) bool {
		tv := float64(rawT) / 1000
		df := float64(rawDF%60) + 1
		return approxEqual(StudentTCDF(tv, df)+StudentTCDF(-tv, df), 1, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialCoefficient(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {7, 3, 35},
		{19, 10, 92378}, {10, -1, 0}, {10, 11, 0},
	}
	for _, c := range cases {
		if got := BinomialCoefficient(c.n, c.k); !approxEqual(got, c.want, 1e-9) {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 40)
		k := int(kRaw % 41)
		return BinomialCoefficient(n, k) == BinomialCoefficient(n, n-k) ||
			(k > n && BinomialCoefficient(n, k) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncompleteBetaEdges(t *testing.T) {
	if got := regularizedIncompleteBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0(2,3) = %v", got)
	}
	if got := regularizedIncompleteBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1(2,3) = %v", got)
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := regularizedIncompleteBeta(1, 1, x); !approxEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}
