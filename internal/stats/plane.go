package stats

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

// errFieldSize rejects a packed plane whose bit count disagrees with
// the stated layout.
var errFieldSize = errors.New("stats: field length does not match rows*cols")

// Word-packed plane statistics: the fleet-sweep hot paths (steganalysis
// scans, health probes) evaluated directly on packed bit planes and
// vote-count histograms instead of per-cell loops.

// MoranIPacked computes Moran's I with rook weights for a binary field
// stored packed — bit i of snap is the cell at row i/cols, column
// i%cols — without expanding to one float per cell. For a binary field
// the cross-product and moment sums collapse to join counts: the number
// of 1–1, 1–0 and 0–0 neighbour pairs, countable 64 cells at a time
// with popcounts over shifted-plane ANDs. The closed forms group float
// terms differently from MoranI2D's per-cell accumulation, so results
// agree to float rounding (≲1e-12 relative), not bit-for-bit; the
// statistic, moments and p-value are otherwise the same quantities.
//
// Layouts the packed walk cannot handle (cols not a multiple of 8, or
// a degenerate single row/column) fall back to the expanded path.
func MoranIPacked(snap []byte, rows, cols int) (MoranResult, error) {
	n := rows * cols
	if n != len(snap)*8 {
		return MoranResult{}, errFieldSize
	}
	if n < 2 {
		return MoranResult{}, ErrDegenerateField
	}
	if cols%8 != 0 || rows < 2 || cols < 2 {
		f := make([]float64, n)
		for i := range f {
			if snap[i/8]&(1<<(i%8)) != 0 {
				f[i] = 1
			}
		}
		return MoranI2D(f, rows, cols)
	}
	rowBytes := cols / 8

	// One pass over the plane: total ones, horizontal/vertical 1–1 join
	// counts, and the edge-endpoint sums that turn them into 1–0 and
	// 0–0 counts.
	var n1, j11h, j11v, s1h, s1v int
	for r := 0; r < rows; r++ {
		row := snap[r*rowBytes : (r+1)*rowBytes]
		ones := HammingWeight(row)
		n1 += ones

		// Horizontal 1–1 pairs: popcount(w & w>>1) per word, plus the
		// pair straddling each word boundary.
		var prev uint64
		i := 0
		for ; i+8 <= rowBytes; i += 8 {
			w := binary.LittleEndian.Uint64(row[i:])
			j11h += bits.OnesCount64(w&(w>>1)) + int(prev&w&1)
			prev = w >> 63
		}
		for ; i < rowBytes; i++ {
			b := uint64(row[i])
			j11h += bits.OnesCount64(b&(b>>1)) + int(prev&b&1)
			prev = b >> 7
		}
		// Horizontal edge-endpoint sum: interior columns touch two
		// horizontal edges, the first and last column one each.
		s1h += 2*ones - int(row[0]&1) - int(row[rowBytes-1]>>7)
		// Vertical edge-endpoint sum: first and last rows touch one
		// vertical edge per cell, interior rows two.
		dv := 2
		if r == 0 || r == rows-1 {
			dv = 1
		}
		s1v += dv * ones

		// Vertical 1–1 pairs: AND with the row below, 64 cells a word.
		if r+1 < rows {
			next := snap[(r+1)*rowBytes : (r+2)*rowBytes]
			i = 0
			for ; i+8 <= rowBytes; i += 8 {
				j11v += bits.OnesCount64(binary.LittleEndian.Uint64(row[i:]) &
					binary.LittleEndian.Uint64(next[i:]))
			}
			for ; i < rowBytes; i++ {
				j11v += bits.OnesCount8(row[i] & next[i])
			}
		}
	}

	eh := rows * (cols - 1) // horizontal edges
	ev := (rows - 1) * cols // vertical edges
	j10 := (s1h - 2*j11h) + (s1v - 2*j11v)
	j11 := j11h + j11v
	j00 := (eh + ev) - j11 - j10

	// Binary-field closed forms: with mean µ = n1/n, a cell's deviation
	// is b = 1−µ (ones) or a = −µ (zeros), so the moment sums and the
	// neighbour cross-product are weighted counts.
	fn := float64(n)
	mean := float64(n1) / fn
	a, b := -mean, 1-mean
	n0 := float64(n - n1)
	f1 := float64(n1)
	m2 := f1*b*b + n0*a*a
	if m2 == 0 {
		return MoranResult{}, ErrDegenerateField
	}
	m4 := f1*b*b*b*b + n0*a*a*a*a
	cross := 2 * (float64(j11)*b*b + float64(j10)*a*b + float64(j00)*a*a)
	s0 := float64(2 * (eh + ev))

	iStat := (fn / s0) * (cross / m2)
	expected := -1 / (fn - 1)

	// Cliff & Ord randomization moments, with S2 = 4·Σ deg² from the
	// four rook degree classes (corner 2, border 3, interior 4).
	s1 := 2 * s0
	s2 := 4 * float64(4*4+
		9*(2*(cols-2)+2*(rows-2))+
		16*(rows-2)*(cols-2))
	b2 := fn * m4 / (m2 * m2)
	num := fn*((fn*fn-3*fn+3)*s1-fn*s2+3*s0*s0) -
		b2*((fn*fn-fn)*s1-2*fn*s2+6*s0*s0)
	den := (fn - 1) * (fn - 2) * (fn - 3) * s0 * s0
	variance := num/den - expected*expected
	if variance < 0 {
		variance = 0
	}

	res := MoranResult{I: iStat, Expected: expected, Variance: variance, N: n}
	if variance > 0 {
		res.Z = (iStat - expected) / math.Sqrt(variance)
		res.PValue = 2 * (1 - NormalCDF(math.Abs(res.Z)))
	}
	return res, nil
}

// VoteTable precomputes per-vote-value statistics for a capture burst
// of a given depth: a cell that read 1 in v of the captures has vote
// fraction p = v/captures, margin |2p−1| and Bernoulli entropy H(p).
// Since v takes only captures+1 values, any per-cell statistic over a
// vote plane reduces to a histogram dotted with these tables — no
// per-cell division or log.
type VoteTable struct {
	Captures int
	Margin   []float64 // Margin[v] = |2·(v/captures) − 1|
	Entropy  []float64 // Entropy[v] = H(v/captures) in bits
}

// NewVoteTable builds the tables for a burst of the given depth. Each
// entry evaluates exactly the expression the per-cell loops used, so
// table lookups are bit-identical to computing from the count.
func NewVoteTable(captures int) *VoteTable {
	t := &VoteTable{
		Captures: captures,
		Margin:   make([]float64, captures+1),
		Entropy:  make([]float64, captures+1),
	}
	for v := 0; v <= captures; v++ {
		p := float64(v) / float64(captures)
		m := 2*p - 1
		if m < 0 {
			m = -m
		}
		t.Margin[v] = m
		t.Entropy[v] = BitEntropy(p)
	}
	return t
}

// Histogram fills hist (length Captures+1) with the count of cells at
// each vote value and returns it. Counts above the table's range are
// clamped into the top bin so a mismatched burst cannot panic.
func (t *VoteTable) Histogram(votes []uint16, hist []int) []int {
	for i := range hist {
		hist[i] = 0
	}
	top := len(hist) - 1
	for _, v := range votes {
		b := int(v)
		if b > top {
			b = top
		}
		hist[b]++
	}
	return hist
}
