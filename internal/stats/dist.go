// Package stats implements the statistical machinery Invisible Bits uses
// for calibration and steganalysis: normal and Student-t distributions,
// Welch's t-test (§6), Moran's I spatial autocorrelation (§5.1.2, Table 2,
// Table 5), Shannon entropy over byte symbols (Fig. 12), Hamming-weight
// histograms (Fig. 11, Fig. 14), and the repetition-code Bernoulli error
// model of Equation 1 (§5.2).
package stats

import "math"

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1) using the
// Acklam/Wichura-style rational approximation refined by one Newton step.
// It panics if p is outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires p in (0,1)")
	}
	// Rational approximation (Acklam 2003), |relative error| < 1.15e-9.
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Newton–Raphson refinement against the true CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// regularizedIncompleteBeta computes I_x(a, b) via the continued-fraction
// expansion (Lentz's method), the standard route to the Student-t CDF.
func regularizedIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	// Use the symmetry relation to keep the continued fraction convergent.
	if x > (a+1)/(a+b+2) {
		return 1 - regularizedIncompleteBeta(b, a, 1-x)
	}
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	c, d := 1.0, 1.0-(a+b)*x/(a+1)
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		// Even step.
		num := fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		num = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		delta := d * c
		h *= delta
		if math.Abs(delta-1) < eps {
			break
		}
	}
	return front * h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// StudentTCDF returns P(T <= t) for a Student-t variable with df degrees
// of freedom (df may be fractional, as produced by the Welch–Satterthwaite
// approximation).
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		panic("stats: StudentTCDF requires df > 0")
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * regularizedIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// BinomialCoefficient returns C(n, k) as a float64; it is exact for the
// modest n used by the repetition-code model and avoids overflow by
// multiplying incrementally.
func BinomialCoefficient(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}
