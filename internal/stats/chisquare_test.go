package stats

import (
	"testing"

	"invisiblebits/internal/rng"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Standard table values: P(X² <= x) for k df.
	cases := []struct {
		x    float64
		k    int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.95, 2e-4},  // 95th percentile, 1 df
		{5.991, 2, 0.95, 2e-4},  // 2 df
		{11.070, 5, 0.95, 2e-4}, // 5 df
		{18.307, 10, 0.95, 2e-4},
		{2.706, 1, 0.90, 2e-4},
		{0, 3, 0, 1e-12},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.k); !approxEqual(got, c.want, c.tol) {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareCDFLargeDF(t *testing.T) {
	// For large k the chi-square mean is k: CDF at the mean ≈ 0.5 (slightly
	// above due to skew).
	got := ChiSquareCDF(255, 255)
	if got < 0.45 || got > 0.55 {
		t.Errorf("CDF at mean = %v", got)
	}
}

func TestChiSquareCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k=0")
		}
	}()
	ChiSquareCDF(1, 0)
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	src := rng.NewSource(10)
	data := make([]byte, 64<<10)
	src.Bytes(data)
	res := ChiSquareUniform(SymbolCounts(data))
	if res.DF != 255 {
		t.Fatalf("df = %d", res.DF)
	}
	if res.PValue < 0.001 {
		t.Errorf("uniform data rejected: p = %v (stat %v)", res.PValue, res.Statistic)
	}
}

func TestChiSquareUniformRejectsStructured(t *testing.T) {
	// ASCII text: heavily concentrated symbol distribution.
	text := []byte("the quick brown fox jumps over the lazy dog ")
	data := make([]byte, 0, 64<<10)
	for len(data) < 64<<10 {
		data = append(data, text...)
	}
	res := ChiSquareUniform(SymbolCounts(data))
	if res.PValue > 1e-10 {
		t.Errorf("structured data accepted: p = %v", res.PValue)
	}
}

func TestChiSquareUniformEdges(t *testing.T) {
	res := ChiSquareUniform(make([]int, 256))
	if res.PValue != 1 {
		t.Errorf("empty counts p = %v", res.PValue)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for single category")
		}
	}()
	ChiSquareUniform([]int{5})
}

func TestIncompleteGammaConsistency(t *testing.T) {
	// P(a, x) must be monotone in x and hit both regimes (series and
	// continued fraction) consistently at the crossover x = a+1.
	const a = 4.0
	prev := 0.0
	for x := 0.5; x < 20; x += 0.5 {
		p := lowerIncompleteGammaRegularized(a, x)
		if p < prev-1e-12 {
			t.Fatalf("P(a,x) decreased at x=%v", x)
		}
		if p < 0 || p > 1 {
			t.Fatalf("P(a,%v) = %v out of range", x, p)
		}
		prev = p
	}
	if prev < 0.998 {
		t.Errorf("P(4, 19.5) = %v, want ≈1", prev)
	}
}
