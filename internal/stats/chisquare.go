package stats

import "math"

// lowerIncompleteGammaRegularized computes P(a, x) = γ(a,x)/Γ(a) using the
// series expansion for x < a+1 and the continued fraction otherwise — the
// standard route to the chi-square CDF.
func lowerIncompleteGammaRegularized(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series: P(a,x) = x^a e^-x / Γ(a+1) · Σ x^n / (a+1)...(a+n)
		sum := 1.0 / a
		term := sum
		for n := 1; n < 500; n++ {
			term *= x / (a + float64(n))
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
	}
	// Continued fraction for Q(a,x) (Lentz's method).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		delta := d * c
		h *= delta
		if math.Abs(delta-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
	return 1 - q
}

// ChiSquareCDF returns P(X <= x) for a chi-square variable with k degrees
// of freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if k <= 0 {
		panic("stats: ChiSquareCDF requires k > 0")
	}
	if x <= 0 {
		return 0
	}
	return lowerIncompleteGammaRegularized(float64(k)/2, x/2)
}

// ChiSquareResult reports a Pearson goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64
	DF        int
	PValue    float64 // P(X² >= statistic) under the null
}

// ChiSquareUniform tests observed category counts against the uniform
// distribution. The steganalysis battery applies it to byte-symbol counts
// of the power-on state: a clean (or encrypted) SRAM is uniform over the
// 256 symbols; structured plain-text payloads are wildly non-uniform.
func ChiSquareUniform(counts []int) ChiSquareResult {
	k := len(counts)
	if k < 2 {
		panic("stats: ChiSquareUniform requires at least 2 categories")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return ChiSquareResult{DF: k - 1, PValue: 1}
	}
	expected := float64(total) / float64(k)
	var stat float64
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return ChiSquareResult{
		Statistic: stat,
		DF:        k - 1,
		PValue:    1 - ChiSquareCDF(stat, k-1),
	}
}

// SymbolCounts tallies byte-symbol occurrences (the integer form of
// SymbolDistribution, for the chi-square test).
func SymbolCounts(data []byte) []int {
	counts := make([]int, 256)
	for _, b := range data {
		counts[b]++
	}
	return counts
}
