package stats

import (
	"math"
	"testing"
	"testing/quick"

	"invisiblebits/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !approxEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("summary = %+v", s)
	}
	if !approxEqual(s.Variance, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v, want %v", s.Variance, 32.0/7.0)
	}
	if empty := Summarize(nil); empty.N != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestWelchIdenticalSamplesHighP(t *testing.T) {
	src := rng.NewSource(11)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = src.NormScaled(10, 2)
		b[i] = src.NormScaled(10, 2)
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.POneTailed < 0.01 {
		t.Errorf("same-distribution samples rejected: p = %v", res.POneTailed)
	}
	if res.PTwoTailed < res.POneTailed {
		t.Errorf("two-tailed p < one-tailed p")
	}
}

func TestWelchSeparatedSamplesLowP(t *testing.T) {
	src := rng.NewSource(12)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = src.NormScaled(10, 1)
		b[i] = src.NormScaled(12, 1)
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.POneTailed > 1e-6 {
		t.Errorf("clearly separated samples not detected: p = %v", res.POneTailed)
	}
}

func TestWelchErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for n=1 sample")
	}
	if _, err := WelchTTest([]float64{3, 3}, []float64{3, 3}); err == nil {
		t.Error("expected error for zero-variance samples")
	}
}

func TestMoranRandomFieldNearZero(t *testing.T) {
	src := rng.NewSource(21)
	const rows, cols = 128, 128
	field := make([]byte, rows*cols)
	for i := range field {
		field[i] = byte(src.Uint64() & 1)
	}
	res, err := MoranIBits(field, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.I) > 0.02 {
		t.Errorf("random field Moran's I = %v, want ~0", res.I)
	}
	if !approxEqual(res.Expected, -1.0/float64(rows*cols-1), 1e-15) {
		t.Errorf("E[I] = %v", res.Expected)
	}
}

func TestMoranStructuredFieldHigh(t *testing.T) {
	// Left half 1s, right half 0s: strongly positively autocorrelated.
	const rows, cols = 64, 64
	field := make([]byte, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols/2; c++ {
			field[r*cols+c] = 1
		}
	}
	res, err := MoranIBits(field, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if res.I < 0.9 {
		t.Errorf("half-plane Moran's I = %v, want near 1", res.I)
	}
	if res.PValue > 1e-6 {
		t.Errorf("structured field not significant: p = %v", res.PValue)
	}
}

func TestMoranCheckerboardNegative(t *testing.T) {
	const rows, cols = 32, 32
	field := make([]byte, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			field[r*cols+c] = byte((r + c) & 1)
		}
	}
	res, err := MoranIBits(field, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if res.I > -0.9 {
		t.Errorf("checkerboard Moran's I = %v, want near -1", res.I)
	}
}

func TestMoranDegenerate(t *testing.T) {
	if _, err := MoranIBits(make([]byte, 16), 4, 4); err == nil {
		t.Error("constant field should be degenerate")
	}
	if _, err := MoranIBits([]byte{1, 0}, 2, 2); err == nil {
		t.Error("mismatched dims should error")
	}
}

func TestEntropyUniform(t *testing.T) {
	data := make([]byte, 256*64)
	for i := range data {
		data[i] = byte(i)
	}
	if h := ByteEntropy(data); !approxEqual(h, 8, 1e-12) {
		t.Errorf("uniform entropy = %v, want 8", h)
	}
	// The paper's normalized value for a clean SRAM: 8/256 = 0.03125.
	if nh := NormalizedByteEntropy(data); !approxEqual(nh, 0.03125, 1e-12) {
		t.Errorf("normalized entropy = %v, want 0.03125", nh)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	data := make([]byte, 1024) // all zero bytes
	if h := ByteEntropy(data); h != 0 {
		t.Errorf("constant entropy = %v, want 0", h)
	}
	if h := ByteEntropy(nil); h != 0 {
		t.Errorf("empty entropy = %v, want 0", h)
	}
}

func TestPerSymbolEntropySums(t *testing.T) {
	src := rng.NewSource(31)
	data := make([]byte, 1<<16)
	src.Bytes(data)
	per := PerSymbolEntropy(data)
	var sum float64
	for _, v := range per {
		sum += v
	}
	if !approxEqual(sum, ByteEntropy(data), 1e-9) {
		t.Errorf("per-symbol contributions sum %v != total %v", sum, ByteEntropy(data))
	}
}

func TestBitEntropyAndCapacity(t *testing.T) {
	if !approxEqual(BitEntropy(0.5), 1, 1e-12) {
		t.Error("H(0.5) != 1")
	}
	if BitEntropy(0) != 0 || BitEntropy(1) != 0 {
		t.Error("H(0)/H(1) != 0")
	}
	// Capacity at the paper's 6.5% channel: 1 - H(0.065) ≈ 0.651.
	if c := BinarySymmetricChannelCapacity(0.065); !approxEqual(c, 0.651, 5e-3) {
		t.Errorf("BSC capacity(0.065) = %v", c)
	}
}

func TestHammingBasics(t *testing.T) {
	if w := HammingWeight([]byte{0xFF, 0x0F, 0x00}); w != 12 {
		t.Errorf("weight = %d", w)
	}
	if d := HammingDistance([]byte{0xFF}, []byte{0x0F}); d != 4 {
		t.Errorf("distance = %d", d)
	}
	if ber := BitErrorRate([]byte{0xFF, 0xFF}, []byte{0xFF, 0x00}); !approxEqual(ber, 0.5, 1e-12) {
		t.Errorf("ber = %v", ber)
	}
}

func TestHammingDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unequal lengths")
		}
	}()
	HammingDistance([]byte{1}, []byte{1, 2})
}

func TestBlockHammingWeights(t *testing.T) {
	data := []byte{0xFF, 0xFF, 0x00, 0x00, 0xF0} // trailing partial dropped
	w := BlockHammingWeights(data, 2)
	if len(w) != 2 || w[0] != 16 || w[1] != 0 {
		t.Errorf("weights = %v", w)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1.0, 2.5, -1}, 0, 2, 4)
	if h.Total != 5 {
		t.Fatalf("total = %d", h.Total)
	}
	// -1 clamps into bin 0 next to 0.0; 0.5→bin1, 1.0→bin2, 2.5 clamps into bin 3.
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	d := h.Density()
	var sum float64
	for _, v := range d {
		sum += v
	}
	if !approxEqual(sum, 1, 1e-12) {
		t.Errorf("density sums to %v", sum)
	}
	centers := h.BinCenters()
	if !approxEqual(centers[0], 0.25, 1e-12) || !approxEqual(centers[3], 1.75, 1e-12) {
		t.Errorf("centers = %v", centers)
	}
}

func TestMeanBias(t *testing.T) {
	if b := MeanBias([]byte{0xF0, 0x0F}); !approxEqual(b, 0.5, 1e-12) {
		t.Errorf("bias = %v", b)
	}
	if b := MeanBias(nil); b != 0 {
		t.Errorf("bias(nil) = %v", b)
	}
}

func TestRepetitionErrorRatePaperExample(t *testing.T) {
	// §5.2: "10% error becomes 2.8% when three copies are encoded."
	got := RepetitionErrorRate(0.9, 3)
	if !approxEqual(got, 0.028, 5e-4) {
		t.Errorf("repetition(0.9, 3) = %v, want ≈0.028", got)
	}
}

func TestRepetitionErrorRateMonotoneInCopies(t *testing.T) {
	prev := 1.0
	for n := 1; n <= 19; n += 2 {
		e := RepetitionErrorRate(0.935, n) // MSP432's 6.5% channel
		if e > prev+1e-15 {
			t.Fatalf("error increased at n=%d: %v > %v", n, e, prev)
		}
		prev = e
	}
	// 13 copies should drive the 6.5% channel essentially to zero (§5.2).
	if e := RepetitionErrorRate(0.935, 13); e > 1e-3 {
		t.Errorf("13 copies leaves error %v", e)
	}
}

func TestRepetitionErrorProperty(t *testing.T) {
	f := func(pRaw uint16, nRaw uint8) bool {
		p := 0.5 + float64(pRaw)/(1<<17) // p in [0.5, 1)
		n := int(nRaw%10)*2 + 1          // odd 1..19
		e := RepetitionErrorRate(p, n)
		return e >= 0 && e <= 1-p+1e-12 || n == 1 && approxEqual(e, 1-p, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepetitionPanics(t *testing.T) {
	for _, n := range []int{0, 2, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for n=%d", n)
				}
			}()
			RepetitionErrorRate(0.9, n)
		}()
	}
}

func TestMajorityNoiseFloor(t *testing.T) {
	// A 5% flaky-capture rate with 5 captures: residual well under 1%.
	if e := MajorityNoiseFloor(0.05, 5); e > 0.002 {
		t.Errorf("5-capture majority floor = %v", e)
	}
	// More captures always help.
	if MajorityNoiseFloor(0.05, 7) > MajorityNoiseFloor(0.05, 5) {
		t.Error("7 captures worse than 5")
	}
}

func TestHammingResidual74(t *testing.T) {
	if HammingResidual74(0) != 0 || HammingResidual74(1) != 1 {
		t.Error("edge cases wrong")
	}
	// Must strictly improve on the raw channel for small p.
	for _, p := range []float64{0.001, 0.005, 0.01, 0.03} {
		if r := HammingResidual74(p); r >= p {
			t.Errorf("Hamming(7,4) did not improve at p=%v: %v", p, r)
		}
	}
	// And make things worse above its useful regime (heavy error).
	if r := HammingResidual74(0.4); r < 0.3 {
		t.Errorf("unexpectedly good at p=0.4: %v", r)
	}
}
