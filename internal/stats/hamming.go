package stats

import (
	"encoding/binary"
	"math/bits"
)

// HammingWeight returns the number of set bits in data, popcounting
// eight bytes per step.
func HammingWeight(data []byte) int {
	w := 0
	i := 0
	for ; i+8 <= len(data); i += 8 {
		w += bits.OnesCount64(binary.LittleEndian.Uint64(data[i:]))
	}
	for ; i < len(data); i++ {
		w += bits.OnesCount8(data[i])
	}
	return w
}

// HammingDistance returns the number of differing bits between a and b,
// popcounting eight bytes per step. It panics if the lengths differ:
// comparing payloads of unequal size is always a caller bug in this
// codebase.
func HammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		panic("stats: HammingDistance on unequal lengths")
	}
	d := 0
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d += bits.OnesCount64(binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < len(a); i++ {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

// BitErrorRate returns HammingDistance(a,b) / (8·len(a)).
func BitErrorRate(a, b []byte) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(HammingDistance(a, b)) / float64(8*len(a))
}

// BlockHammingWeights splits data into blockBytes-sized blocks and returns
// the Hamming weight of each. The paper plots "the distribution of Hamming
// weights for the SRAM when adjacent cells are grouped into fixed-size
// blocks" (Fig. 11 uses 128-bit = 16-byte blocks; Fig. 14 likewise). A
// trailing partial block is dropped so every weight shares the same
// support [0, 8·blockBytes].
func BlockHammingWeights(data []byte, blockBytes int) []int {
	if blockBytes <= 0 {
		panic("stats: BlockHammingWeights requires blockBytes > 0")
	}
	n := len(data) / blockBytes
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, HammingWeight(data[i*blockBytes:(i+1)*blockBytes]))
	}
	return out
}

// Histogram bins values into nBins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram of xs over [min, max] with nBins bins.
// Values outside the range clamp to the edge bins, so Total always equals
// len(xs).
func NewHistogram(xs []float64, min, max float64, nBins int) Histogram {
	if nBins <= 0 {
		panic("stats: NewHistogram requires nBins > 0")
	}
	h := Histogram{Min: min, Max: max, Counts: make([]int, nBins)}
	width := (max - min) / float64(nBins)
	for _, x := range xs {
		idx := 0
		if width > 0 {
			idx = int((x - min) / width)
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= nBins {
			idx = nBins - 1
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Density returns the normalized histogram (fractions summing to 1).
func (h Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return d
	}
	for i, c := range h.Counts {
		d[i] = float64(c) / float64(h.Total)
	}
	return d
}

// BinCenters returns the midpoint of each bin.
func (h Histogram) BinCenters() []float64 {
	n := len(h.Counts)
	centers := make([]float64, n)
	width := (h.Max - h.Min) / float64(n)
	for i := range centers {
		centers[i] = h.Min + width*(float64(i)+0.5)
	}
	return centers
}

// IntsToFloats converts an int slice for histogram/summary consumption.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// MeanBias returns the fraction of set bits in data — the paper's "mean
// power-on bias" column in Table 5 (≈0.500 for clean and encrypted chips,
// ≈0.535 for plain-text encodings).
func MeanBias(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	return float64(HammingWeight(data)) / float64(8*len(data))
}
