package stats

// RepetitionErrorRate evaluates the paper's Equation 1: the residual error
// after majority-voting n copies of a payload bit over a channel whose
// per-bit success probability is p (so per-bit error is 1−p):
//
//	Error = 1 − Σ_{i=(n+1)/2}^{n} C(n,i) · pⁱ · (1−p)^{n−i}
//
// n must be odd; "10% error becomes 2.8% when three copies are encoded"
// (§5.2) is the canonical check: RepetitionErrorRate(0.9, 3) ≈ 0.028.
func RepetitionErrorRate(p float64, n int) float64 {
	if n < 1 || n%2 == 0 {
		panic("stats: RepetitionErrorRate requires odd n >= 1")
	}
	if p < 0 || p > 1 {
		panic("stats: success probability out of [0,1]")
	}
	var success float64
	for i := (n + 1) / 2; i <= n; i++ {
		success += BinomialCoefficient(n, i) * pow(p, i) * pow(1-p, n-i)
	}
	e := 1 - success
	if e < 0 {
		return 0
	}
	return e
}

// MajorityNoiseFloor gives the probability that majority voting over n
// power-on captures still misreads a cell whose single-capture flip
// probability is q. It is the same Bernoulli sum viewed from the sampling
// side (§4.3's "taking five captures is sufficient to filter noise").
func MajorityNoiseFloor(q float64, n int) float64 {
	return RepetitionErrorRate(1-q, n)
}

// HammingResidual74 returns the post-correction bit error rate of a
// Hamming(7,4) code over a binary symmetric channel with bit error rate p.
// Hamming(7,4) corrects any single-bit error per 7-bit codeword; two or
// more errors mis-correct. The standard union expression for the decoded
// data-bit error probability counts codewords with ≥2 channel errors and
// scales by the expected fraction of corrupted data bits after a wrong
// "correction" (a miscorrection leaves ≈(e+1)/7 of the word wrong for e
// channel errors; we use the conventional upper-bound form used for ECC
// sizing, which matches the paper's "combined codes work more efficiently"
// behaviour).
func HammingResidual74(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	// P(block decode error) = P(>=2 errors in 7 bits).
	var pOK float64
	pOK = pow(1-p, 7) + 7*p*pow(1-p, 6)
	pBlockErr := 1 - pOK
	// On a block decode failure, the decoder flips one more bit; with e
	// channel errors the residual wrong-bit fraction is about (e+1)/7.
	// Conditioning on e>=2, E[e | e>=2] is close to 2 for small p, giving
	// ~3/7 of bits wrong in failed blocks.
	return pBlockErr * 3.0 / 7.0
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}
