package stats

import (
	"errors"
	"math"
)

// Summary holds the first two moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
}

// Summarize computes sample size, mean, and unbiased variance.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := 0.0
	if n > 1 {
		variance = ss / float64(n-1)
	}
	return Summary{N: n, Mean: mean, Variance: variance}
}

// WelchResult reports Welch's unequal-variance t-test.
type WelchResult struct {
	T            float64 // t statistic
	DF           float64 // Welch–Satterthwaite degrees of freedom
	POneTailed   float64 // P(T >= |t|) — the paper reports one-tailed p (§6)
	PTwoTailed   float64
	MeanA, MeanB float64
}

// ErrInsufficientData is returned when a test cannot be computed.
var ErrInsufficientData = errors.New("stats: need at least two observations per sample with nonzero variance")

// WelchTTest runs Welch's two-sample t-test on a and b. The paper applies
// it to mean Hamming weights of encoded-encrypted vs. clean devices with
// the null hypothesis "the chips have no hidden messages (identical mean
// Hamming weight)"; a one-tailed p above the significance threshold means
// the adversary cannot reject the null (§6, p = 0.071).
func WelchTTest(a, b []float64) (WelchResult, error) {
	sa, sb := Summarize(a), Summarize(b)
	if sa.N < 2 || sb.N < 2 {
		return WelchResult{}, ErrInsufficientData
	}
	va := sa.Variance / float64(sa.N)
	vb := sb.Variance / float64(sb.N)
	if va+vb == 0 {
		return WelchResult{}, ErrInsufficientData
	}
	t := (sa.Mean - sb.Mean) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	pOne := 1 - StudentTCDF(math.Abs(t), df)
	return WelchResult{
		T:          t,
		DF:         df,
		POneTailed: pOne,
		PTwoTailed: 2 * pOne,
		MeanA:      sa.Mean,
		MeanB:      sb.Mean,
	}, nil
}
