package stats

import (
	"errors"
	"math"
)

// MoranResult reports Moran's I spatial autocorrelation and its
// significance under the randomization assumption.
type MoranResult struct {
	I        float64 // observed statistic
	Expected float64 // E[I] = -1/(N-1) under the null
	Variance float64 // Var[I] under randomization
	Z        float64 // (I - E[I]) / sqrt(Var[I])
	PValue   float64 // two-tailed normal-approximation p-value
	N        int     // number of observations
}

// ErrDegenerateField is returned when Moran's I is undefined (constant
// field or fewer than two cells).
var ErrDegenerateField = errors.New("stats: Moran's I undefined for constant or near-empty field")

// MoranI2D computes Moran's I for a binary (or real-valued) field laid out
// as rows×cols in row-major order, using rook contiguity (4-neighbour)
// weights. This mirrors the paper's use of Moran's I on SRAM power-on
// states (§5.1.2): "A Moran's I statistic close to zero indicates that
// error is spatially random … closer to 1.0 indicates a positive
// correlation".
//
// Rook weights keep the weight matrix sparse and symmetric; for the N in
// play (tens of KB of cells) the exact analytic moments are computed, not
// simulated.
func MoranI2D(field []float64, rows, cols int) (MoranResult, error) {
	n := rows * cols
	if n != len(field) {
		return MoranResult{}, errors.New("stats: field length does not match rows*cols")
	}
	if n < 2 {
		return MoranResult{}, ErrDegenerateField
	}

	var sum float64
	for _, v := range field {
		sum += v
	}
	mean := sum / float64(n)

	var m2 float64 // Σ zᵢ²
	var m4 float64 // Σ zᵢ⁴ (for the randomization variance)
	z := make([]float64, n)
	for i, v := range field {
		d := v - mean
		z[i] = d
		m2 += d * d
		m4 += d * d * d * d
	}
	if m2 == 0 {
		return MoranResult{}, ErrDegenerateField
	}

	// Cross-product over rook neighbours. Each undirected edge contributes
	// twice to Σᵢ Σⱼ wᵢⱼ zᵢ zⱼ with binary weights.
	var cross float64
	var s0 float64 // Σ wᵢⱼ
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			i := base + c
			if c+1 < cols {
				cross += 2 * z[i] * z[i+1]
				s0 += 2
			}
			if r+1 < rows {
				cross += 2 * z[i] * z[i+cols]
				s0 += 2
			}
		}
	}

	fn := float64(n)
	iStat := (fn / s0) * (cross / m2)
	expected := -1 / (fn - 1)

	// Analytic moments under randomization (Cliff & Ord). For binary rook
	// weights: S1 = 2·s0 (each wᵢⱼ = wⱼᵢ = 1 ⇒ (wᵢⱼ+wⱼᵢ)² = 4 per ordered
	// pair, halved), and S2 = Σᵢ (Σⱼ wᵢⱼ + Σⱼ wⱼᵢ)² = Σᵢ (2·degᵢ)².
	s1 := 2 * s0
	var s2 float64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			deg := 0.0
			if c+1 < cols {
				deg++
			}
			if c > 0 {
				deg++
			}
			if r+1 < rows {
				deg++
			}
			if r > 0 {
				deg++
			}
			s2 += (2 * deg) * (2 * deg)
		}
	}
	b2 := fn * m4 / (m2 * m2) // sample kurtosis
	num := fn*((fn*fn-3*fn+3)*s1-fn*s2+3*s0*s0) -
		b2*((fn*fn-fn)*s1-2*fn*s2+6*s0*s0)
	den := (fn - 1) * (fn - 2) * (fn - 3) * s0 * s0
	variance := num/den - expected*expected
	if variance < 0 {
		variance = 0
	}

	res := MoranResult{I: iStat, Expected: expected, Variance: variance, N: n}
	if variance > 0 {
		res.Z = (iStat - expected) / math.Sqrt(variance)
		res.PValue = 2 * (1 - NormalCDF(math.Abs(res.Z)))
	}
	return res, nil
}

// MoranIBits converts a bit field to floats and delegates to MoranI2D.
func MoranIBits(bits []byte, rows, cols int) (MoranResult, error) {
	f := make([]float64, len(bits))
	for i, b := range bits {
		if b != 0 {
			f[i] = 1
		}
	}
	return MoranI2D(f, rows, cols)
}
