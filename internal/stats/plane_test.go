package stats

import (
	"math"
	"testing"

	"invisiblebits/internal/rng"
)

// expandBits unpacks a packed plane into one float per cell, bit i →
// cell (i/cols, i%cols) — the layout MoranIPacked documents.
func expandBits(snap []byte) []float64 {
	f := make([]float64, len(snap)*8)
	for i := range f {
		if snap[i/8]&(1<<(i%8)) != 0 {
			f[i] = 1
		}
	}
	return f
}

// moranClose compares two MoranResults to the rounding tolerance the
// packed path documents (different float grouping, same quantities).
func moranClose(t *testing.T, name string, got, want MoranResult) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", name, got.N, want.N)
	}
	for _, f := range []struct {
		field string
		g, w  float64
	}{
		{"I", got.I, want.I},
		{"Expected", got.Expected, want.Expected},
		{"Variance", got.Variance, want.Variance},
		{"Z", got.Z, want.Z},
		{"PValue", got.PValue, want.PValue},
	} {
		diff := math.Abs(f.g - f.w)
		scale := math.Max(math.Abs(f.w), 1)
		if diff/scale > 1e-9 {
			t.Fatalf("%s: %s = %v, want %v (rel err %v)", name, f.field, f.g, f.w, diff/scale)
		}
	}
}

// TestMoranIPackedMatchesScalar: the join-count path agrees with the
// expanded MoranI2D oracle on random, structured, checkerboard and
// sparse planes across layouts, including non-multiple-of-8 column
// counts (fallback path) and single-word rows.
func TestMoranIPackedMatchesScalar(t *testing.T) {
	src := rng.NewSource(0x90a0)
	layouts := []struct{ rows, cols int }{
		{2, 8}, {8, 8}, {16, 64}, {64, 128}, {3, 40}, {128, 64},
		{4, 4},   // cols%8 != 0: fallback
		{5, 24},  // odd rows, 3-byte rows (byte tail in the word loop)
		{2, 256}, // minimum row count, wide rows
	}
	fill := func(snap []byte, kind int) {
		switch kind {
		case 0: // uniform random
			src.Bytes(snap)
		case 1: // all zeros bar one bit
			for i := range snap {
				snap[i] = 0
			}
			snap[src.Intn(len(snap))] = 1 << src.Intn(8)
		case 2: // checkerboard
			for i := range snap {
				snap[i] = 0x55
			}
		case 3: // blocky stripes (high autocorrelation)
			for i := range snap {
				if i/4%2 == 0 {
					snap[i] = 0xFF
				} else {
					snap[i] = 0
				}
			}
		case 4: // sparse random
			for i := range snap {
				snap[i] = byte(src.Intn(256)) & byte(src.Intn(256)) & byte(src.Intn(256))
			}
		}
	}
	for _, lay := range layouts {
		snap := make([]byte, lay.rows*lay.cols/8)
		if lay.rows*lay.cols%8 != 0 {
			continue
		}
		for kind := 0; kind < 5; kind++ {
			fill(snap, kind)
			want, wantErr := MoranI2D(expandBits(snap), lay.rows, lay.cols)
			got, gotErr := MoranIPacked(snap, lay.rows, lay.cols)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%dx%d kind %d: err %v, scalar err %v", lay.rows, lay.cols, kind, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			moranClose(t, "layout", got, want)
		}
	}
}

// TestMoranIPackedDegenerate: constant planes and mismatched layouts
// fail the same way as the scalar path.
func TestMoranIPackedDegenerate(t *testing.T) {
	all := make([]byte, 8*8/8)
	for i := range all {
		all[i] = 0xFF
	}
	if _, err := MoranIPacked(all, 8, 8); err != ErrDegenerateField {
		t.Errorf("all-ones: err = %v, want ErrDegenerateField", err)
	}
	if _, err := MoranIPacked(make([]byte, 8), 8, 8); err != ErrDegenerateField {
		t.Errorf("all-zeros: err = %v, want ErrDegenerateField", err)
	}
	if _, err := MoranIPacked(make([]byte, 8), 4, 8); err == nil {
		t.Error("accepted a layout that disagrees with the byte count")
	}
	if _, err := MoranIPacked(nil, 0, 0); err == nil {
		t.Error("accepted an empty field")
	}
	// Single row / single column route through the fallback and carry
	// its semantics.
	row := []byte{0xA5}
	wantR, errR := MoranIBits(expandBytes(row), 1, 8)
	gotR, gotErrR := MoranIPacked(row, 1, 8)
	if (gotErrR == nil) != (errR == nil) {
		t.Fatalf("single row: err %v, scalar %v", gotErrR, errR)
	}
	if gotErrR == nil {
		moranClose(t, "single-row", gotR, wantR)
	}
}

// expandBytes converts packed bits to the 0/1 byte slice MoranIBits
// consumes.
func expandBytes(snap []byte) []byte {
	out := make([]byte, len(snap)*8)
	for i := range out {
		if snap[i/8]&(1<<(i%8)) != 0 {
			out[i] = 1
		}
	}
	return out
}

// TestHammingChunkedMatchesPerByte: the 8-byte-word weight and distance
// walks agree with a per-bit reference at sizes straddling the word
// boundary.
func TestHammingChunkedMatchesPerByte(t *testing.T) {
	src := rng.NewSource(0x90a1)
	perBitWeight := func(b []byte) int {
		n := 0
		for _, v := range b {
			for k := 0; k < 8; k++ {
				n += int(v >> k & 1)
			}
		}
		return n
	}
	for _, size := range []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000} {
		a := make([]byte, size)
		b := make([]byte, size)
		src.Bytes(a)
		src.Bytes(b)
		if got, want := HammingWeight(a), perBitWeight(a); got != want {
			t.Fatalf("weight/%dB: %d, want %d", size, got, want)
		}
		x := make([]byte, size)
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		if got, want := HammingDistance(a, b), perBitWeight(x); got != want {
			t.Fatalf("distance/%dB: %d, want %d", size, got, want)
		}
	}
}

// TestVoteTableExact: table entries equal the per-cell expressions
// bit-for-bit, and the histogram counts every cell with clamping.
func TestVoteTableExact(t *testing.T) {
	for _, captures := range []int{1, 5, 15, 100} {
		tab := NewVoteTable(captures)
		for v := 0; v <= captures; v++ {
			p := float64(v) / float64(captures)
			m := 2*p - 1
			if m < 0 {
				m = -m
			}
			if tab.Margin[v] != m {
				t.Fatalf("captures=%d v=%d: margin %v, want %v", captures, v, tab.Margin[v], m)
			}
			if tab.Entropy[v] != BitEntropy(p) {
				t.Fatalf("captures=%d v=%d: entropy %v, want %v", captures, v, tab.Entropy[v], BitEntropy(p))
			}
		}
	}
	tab := NewVoteTable(5)
	hist := make([]int, 6)
	votes := []uint16{0, 5, 5, 3, 99} // 99 clamps to the top bin
	tab.Histogram(votes, hist)
	want := []int{1, 0, 0, 1, 0, 3}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != len(votes) {
		t.Fatalf("histogram dropped cells: %d of %d", total, len(votes))
	}
}
