package stats

import "math"

// SymbolDistribution counts byte-symbol frequencies over data, the way the
// paper divides "the power-on state of an SRAM into byte granularity
// (symbol)" and counts "the frequency of each 2⁸ symbols" (§6, Fig. 12).
func SymbolDistribution(data []byte) [256]float64 {
	var counts [256]float64
	for _, b := range data {
		counts[b]++
	}
	if len(data) > 0 {
		inv := 1 / float64(len(data))
		for i := range counts {
			counts[i] *= inv
		}
	}
	return counts
}

// ShannonEntropy returns H = Σ −P(xᵢ)·log₂ P(xᵢ) over a probability
// distribution. For byte symbols the maximum is 8 bits.
func ShannonEntropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log2(pi)
		}
	}
	return h
}

// ByteEntropy computes the Shannon entropy of data's byte-symbol
// distribution, in bits per symbol (0..8).
func ByteEntropy(data []byte) float64 {
	d := SymbolDistribution(data)
	return ShannonEntropy(d[:])
}

// NormalizedByteEntropy divides ByteEntropy by the number of possible
// symbols (256), matching the paper's normalization: "The normalized (by
// the number of symbols) entropy of an SRAM's power-on state is 0.0312"
// (= 8/256 for a maximally random state).
func NormalizedByteEntropy(data []byte) float64 {
	return ByteEntropy(data) / 256
}

// PerSymbolEntropy returns each symbol's −P·log₂P contribution, the series
// plotted against "Symbols" in Fig. 12. A uniformly random SRAM yields a
// flat line near 8/256 ≈ 0.031; plain-text payloads concentrate mass on a
// few symbols, producing spikes up to the single-symbol maximum of
// log₂(e)/e ≈ 0.531.
func PerSymbolEntropy(data []byte) [256]float64 {
	d := SymbolDistribution(data)
	var out [256]float64
	for i, pi := range d {
		if pi > 0 {
			out[i] = -pi * math.Log2(pi)
		}
	}
	return out
}

// BitEntropy returns the Shannon entropy of a Bernoulli(p) bit, in bits.
func BitEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// BinarySymmetricChannelCapacity returns 1 − H(p), the capacity in
// bits/cell of the binary symmetric channel induced by a bit error rate p.
// §5.2's guidance on ECC selection is grounded in this quantity.
func BinarySymmetricChannelCapacity(p float64) float64 {
	return 1 - BitEntropy(p)
}
