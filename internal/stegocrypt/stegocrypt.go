// Package stegocrypt implements the encryption layer of Invisible Bits
// (§4.1, §6).
//
// The paper's key insight for cipher selection: the SRAM channel is noisy,
// and a block-chained cipher's diffusion turns a fraction-of-a-percent
// channel error into ~50 % plaintext error ("using the industry-standard
// cipher AES-CBC turns an error rate of 0.8% into an error rate of 50%").
// Invisible Bits therefore uses a *stream* cipher — AES-CTR — which is
// error-neutral: "error bits in the ciphertext are exactly the error bits
// in the plaintext, no less, no more". CTR's second job is analog-domain
// plausible deniability: ciphertext is indistinguishable from the random
// power-on state of a clean SRAM (§6).
//
// The CTR nonce is derived from the manufacturer's device ID, "ensur[ing]
// that even the same messages produce different payloads" across devices
// (§4.1, footnote 4). Both sides derive it independently; only the key is
// pre-shared.
//
// AES-CBC is also provided, solely so the evaluation can reproduce the
// error-amplification comparison.
package stegocrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
)

// KeySize is the AES key size used throughout (AES-256).
const KeySize = 32

// Key is a pre-shared symmetric key.
type Key [KeySize]byte

// KeyFromPassphrase derives a Key by hashing the passphrase. This stands
// in for whatever out-of-band key agreement the communicating parties use
// (the threat model simply assumes "a pre-shared key", §3).
func KeyFromPassphrase(passphrase string) Key {
	return Key(sha256.Sum256([]byte("invisible-bits/v1:" + passphrase)))
}

// NonceFromDeviceID deterministically maps a device identifier to a
// 16-byte CTR initial counter block.
func NonceFromDeviceID(deviceID string) [aes.BlockSize]byte {
	sum := sha256.Sum256([]byte("invisible-bits/nonce:" + deviceID))
	var iv [aes.BlockSize]byte
	copy(iv[:], sum[:aes.BlockSize])
	return iv
}

// ErrEmptyDeviceID guards against accidentally sharing one keystream
// across devices, which would void footnote 4's cross-device protection.
var ErrEmptyDeviceID = errors.New("stegocrypt: device ID must be non-empty")

// StreamXOR applies the AES-CTR keystream for (key, deviceID) to data and
// returns the result. Encryption and decryption are the same operation.
// The input is not modified.
func StreamXOR(key Key, deviceID string, data []byte) ([]byte, error) {
	if deviceID == "" {
		return nil, ErrEmptyDeviceID
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("stegocrypt: %w", err)
	}
	iv := NonceFromDeviceID(deviceID)
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, data)
	return out, nil
}

// EncryptCBC encrypts data under AES-CBC with a zero-padded final block,
// returning iv-less ciphertext (the IV derives from the device ID, as in
// CTR, so ciphertext length equals padded plaintext length). It exists to
// reproduce §4.1's diffusion comparison — do not use it for the actual
// channel.
func EncryptCBC(key Key, deviceID string, data []byte) ([]byte, error) {
	if deviceID == "" {
		return nil, ErrEmptyDeviceID
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("stegocrypt: %w", err)
	}
	padded := padToBlock(data)
	iv := NonceFromDeviceID(deviceID)
	out := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv[:]).CryptBlocks(out, padded)
	return out, nil
}

// DecryptCBC reverses EncryptCBC. originalLen trims the block padding.
func DecryptCBC(key Key, deviceID string, ciphertext []byte, originalLen int) ([]byte, error) {
	if deviceID == "" {
		return nil, ErrEmptyDeviceID
	}
	if len(ciphertext)%aes.BlockSize != 0 {
		return nil, errors.New("stegocrypt: ciphertext not block aligned")
	}
	if originalLen < 0 || originalLen > len(ciphertext) {
		return nil, errors.New("stegocrypt: original length out of range")
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("stegocrypt: %w", err)
	}
	iv := NonceFromDeviceID(deviceID)
	out := make([]byte, len(ciphertext))
	cipher.NewCBCDecrypter(block, iv[:]).CryptBlocks(out, ciphertext)
	return out[:originalLen], nil
}

func padToBlock(data []byte) []byte {
	n := len(data)
	padded := n + (aes.BlockSize-n%aes.BlockSize)%aes.BlockSize
	out := make([]byte, padded)
	copy(out, data)
	return out
}

// PaddedLenCBC returns the CBC ciphertext length for a plaintext of n bytes.
func PaddedLenCBC(n int) int {
	return n + (aes.BlockSize-n%aes.BlockSize)%aes.BlockSize
}
