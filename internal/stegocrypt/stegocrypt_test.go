package stegocrypt

import (
	"bytes"
	"testing"

	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

func TestStreamRoundTrip(t *testing.T) {
	key := KeyFromPassphrase("correct horse")
	msg := []byte("meet at the border crossing at dawn")
	ct, err := StreamXOR(key, "MSP432P401-0001", msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	pt, err := StreamXOR(key, "MSP432P401-0001", ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("round trip failed")
	}
}

func TestStreamErrorNeutrality(t *testing.T) {
	// §4.1: a stream cipher is "error-neutral, i.e., error bits in the
	// ciphertext are exactly the error bits in the plaintext".
	key := KeyFromPassphrase("k")
	msg := make([]byte, 4096)
	rng.NewSource(1).Bytes(msg)
	ct, err := StreamXOR(key, "dev", msg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a known set of ciphertext bits.
	corrupted := make([]byte, len(ct))
	copy(corrupted, ct)
	flips := []int{0, 13, 100, 8191, 32767}
	for _, b := range flips {
		corrupted[b/8] ^= 1 << (b % 8)
	}
	pt, err := StreamXOR(key, "dev", corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if d := stats.HammingDistance(pt, msg); d != len(flips) {
		t.Fatalf("plaintext error bits = %d, want exactly %d", d, len(flips))
	}
	// And exactly at the same positions.
	for _, b := range flips {
		if (pt[b/8]^msg[b/8])&(1<<(b%8)) == 0 {
			t.Fatalf("flip at bit %d did not propagate in place", b)
		}
	}
}

func TestCBCErrorAmplification(t *testing.T) {
	// §4.1: "AES-CBC turns an error rate of 0.8% into an error rate of 50%
	// as the first erroneous bit causes the output of all subsequent
	// blocks to become random."
	key := KeyFromPassphrase("k")
	msg := make([]byte, 64<<10)
	rng.NewSource(2).Bytes(msg)

	ctCBC, err := EncryptCBC(key, "dev", msg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(3)
	corrupted := make([]byte, len(ctCBC))
	copy(corrupted, ctCBC)
	const channelBER = 0.008
	for i := 0; i < len(corrupted)*8; i++ {
		if src.Float64() < channelBER {
			corrupted[i/8] ^= 1 << (i % 8)
		}
	}
	ptCBC, err := DecryptCBC(key, "dev", corrupted, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	berCBC := stats.BitErrorRate(ptCBC, msg)
	// CBC decryption randomizes each plaintext block whose ciphertext
	// block was hit (plus targeted flips in the next). At 0.8% BER,
	// P(128-bit block hit) ≈ 64%, so plaintext BER ≈ 0.32 — a ~40×
	// amplification. (The paper's "50%" describes the corrupted-region
	// error rate; the catastrophic blow-up is the point.)
	if berCBC < 0.25 {
		t.Errorf("CBC plaintext error = %v, want catastrophic (≥0.25)", berCBC)
	}
	if berCBC < 20*channelBER {
		t.Errorf("CBC amplification only %vx", berCBC/channelBER)
	}

	// Same channel through CTR stays at the channel error rate.
	ctCTR, _ := StreamXOR(key, "dev", msg)
	src = rng.NewSource(3)
	corruptedCTR := make([]byte, len(ctCTR))
	copy(corruptedCTR, ctCTR)
	for i := 0; i < len(corruptedCTR)*8; i++ {
		if src.Float64() < channelBER {
			corruptedCTR[i/8] ^= 1 << (i % 8)
		}
	}
	ptCTR, _ := StreamXOR(key, "dev", corruptedCTR)
	berCTR := stats.BitErrorRate(ptCTR, msg)
	if berCTR > 2*channelBER {
		t.Errorf("CTR plaintext error = %v, want ≈%v", berCTR, channelBER)
	}
}

func TestPerDeviceNonces(t *testing.T) {
	// Footnote 4: "even the same messages produce different payloads".
	key := KeyFromPassphrase("k")
	msg := make([]byte, 1024)
	a, _ := StreamXOR(key, "device-A", msg)
	b, _ := StreamXOR(key, "device-B", msg)
	if ber := stats.BitErrorRate(a, b); ber < 0.4 {
		t.Errorf("keystreams across devices too similar: %v", ber)
	}
}

func TestCiphertextLooksRandom(t *testing.T) {
	// §6: encrypted payloads must match a random function — high byte
	// entropy and ~50% bias even for highly structured plaintext.
	key := KeyFromPassphrase("k")
	msg := bytes.Repeat([]byte("AAAA"), 16<<10/4)
	ct, _ := StreamXOR(key, "dev", msg)
	if h := stats.ByteEntropy(ct); h < 7.9 {
		t.Errorf("ciphertext entropy = %v bits", h)
	}
	if b := stats.MeanBias(ct); b < 0.49 || b > 0.51 {
		t.Errorf("ciphertext bias = %v", b)
	}
}

func TestEmptyDeviceIDRejected(t *testing.T) {
	key := KeyFromPassphrase("k")
	if _, err := StreamXOR(key, "", []byte{1}); err != ErrEmptyDeviceID {
		t.Errorf("StreamXOR: %v", err)
	}
	if _, err := EncryptCBC(key, "", []byte{1}); err != ErrEmptyDeviceID {
		t.Errorf("EncryptCBC: %v", err)
	}
	if _, err := DecryptCBC(key, "", make([]byte, 16), 16); err != ErrEmptyDeviceID {
		t.Errorf("DecryptCBC: %v", err)
	}
}

func TestCBCRoundTripAndPadding(t *testing.T) {
	key := KeyFromPassphrase("p")
	for _, n := range []int{0, 1, 15, 16, 17, 100} {
		msg := make([]byte, n)
		rng.NewSource(uint64(n)).Bytes(msg)
		ct, err := EncryptCBC(key, "dev", msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != PaddedLenCBC(n) {
			t.Fatalf("n=%d: ct len %d, want %d", n, len(ct), PaddedLenCBC(n))
		}
		pt, err := DecryptCBC(key, "dev", ct, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("n=%d: CBC round trip failed", n)
		}
	}
}

func TestDecryptCBCValidation(t *testing.T) {
	key := KeyFromPassphrase("p")
	if _, err := DecryptCBC(key, "dev", make([]byte, 15), 10); err == nil {
		t.Error("unaligned ciphertext accepted")
	}
	if _, err := DecryptCBC(key, "dev", make([]byte, 16), 17); err == nil {
		t.Error("out-of-range original length accepted")
	}
}

func TestKeyDerivationStable(t *testing.T) {
	if KeyFromPassphrase("x") != KeyFromPassphrase("x") {
		t.Error("key derivation unstable")
	}
	if KeyFromPassphrase("x") == KeyFromPassphrase("y") {
		t.Error("distinct passphrases collide")
	}
	if NonceFromDeviceID("a") == NonceFromDeviceID("b") {
		t.Error("distinct device IDs collide")
	}
}

func BenchmarkStreamXOR64KB(b *testing.B) {
	key := KeyFromPassphrase("bench")
	msg := make([]byte, 64<<10)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := StreamXOR(key, "dev", msg); err != nil {
			b.Fatal(err)
		}
	}
}
