package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{1, 7, 64, 1000} {
			p := New(workers)
			var mu sync.Mutex
			seen := make([]int, n)
			if err := p.Run(context.Background(), n, 8, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunAlignment(t *testing.T) {
	p := New(3)
	if err := p.Run(context.Background(), 100, 8, func(lo, hi int) {
		if lo%8 != 0 {
			t.Errorf("chunk start %d not aligned to 8", lo)
		}
		if hi != 100 && hi%8 != 0 {
			t.Errorf("chunk end %d not aligned to 8", hi)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChunkedOddAndEvenSplits(t *testing.T) {
	for _, chunk := range []int{1, 2, 3, 7, 10, 999, 1000, 1001} {
		p := New(4)
		var total atomic.Int64
		if err := p.RunChunked(context.Background(), 1000, chunk, func(lo, hi int) {
			total.Add(int64(hi - lo))
		}); err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if total.Load() != 1000 {
			t.Fatalf("chunk=%d covered %d of 1000 items", chunk, total.Load())
		}
	}
}

func TestRunCancellation(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.RunChunked(ctx, 1000, 10, func(lo, hi int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 100 {
		t.Fatalf("cancellation did not stop dispatch: %d chunks ran", ran.Load())
	}
}

func TestRunEmptyAndCancelledUpfront(t *testing.T) {
	p := New(4)
	if err := p.Run(context.Background(), 0, 1, func(lo, hi int) {
		t.Error("fn called for empty range")
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	if err := p.Run(ctx, 10, 1, func(lo, hi int) { called = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_ = called // a chunk may or may not have been dispatched before the check; both are valid
}

func TestSharedPoolIsBounded(t *testing.T) {
	p := Shared()
	if p.Workers() < 1 {
		t.Fatalf("shared pool has %d workers", p.Workers())
	}
	if Shared() != p {
		t.Fatal("Shared() is not a singleton")
	}
	// Concurrent Runs from many goroutines must all complete (no token
	// leak, no deadlock) while sharing one budget.
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(context.Background(), 64, 8, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}()
	}
	wg.Wait()
	if total.Load() != 8*64 {
		t.Fatalf("concurrent shared runs covered %d items, want %d", total.Load(), 8*64)
	}
}
