// Package parallel provides the bounded worker pool behind the SRAM
// capture engine. A Pool is a concurrency *budget*, not a set of pinned
// goroutines: each Run spawns one short-lived goroutine per chunk, and
// a shared semaphore bounds how many are executing at once. Because the
// semaphore is owned by the Pool — not the call — a fleet pointing many
// devices at one Pool gets fleet-wide bounded parallelism for free: ten
// concurrent capture bursts share the same worker budget instead of
// oversubscribing the machine tenfold.
//
// Correctness never depends on the pool: the capture engine derives all
// randomness from counter-based streams (rng.Stream), so any worker
// count and any chunk size produce bit-identical results.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Pool bounds data-parallel work. The zero value is not usable; use New
// or Shared.
type Pool struct {
	workers int
	sem     chan struct{}
}

// New builds a pool with the given concurrency budget; workers <= 0
// means runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide default pool (GOMAXPROCS workers).
// Every SRAM array uses it unless explicitly given its own pool, so
// concurrent fleet operations are machine-bounded by default.
func Shared() *Pool {
	sharedOnce.Do(func() { shared = New(0) })
	return shared
}

// Workers returns the pool's concurrency budget.
func (p *Pool) Workers() int { return p.workers }

// chunkFor splits n items over the worker budget, rounding the chunk up
// to a multiple of align (so byte-packed bit arrays shard on byte
// boundaries and workers never write the same byte).
func (p *Pool) chunkFor(n, align int) int {
	if align < 1 {
		align = 1
	}
	chunk := (n + p.workers - 1) / p.workers
	if rem := chunk % align; rem != 0 {
		chunk += align - rem
	}
	if chunk < align {
		chunk = align
	}
	return chunk
}

// Run splits [0, n) into per-worker chunks aligned to align and calls
// fn(lo, hi) for each, concurrently, bounded by the pool budget. It
// returns ctx.Err() if the context is cancelled; chunks already
// dispatched run to completion (fn must not block indefinitely), chunks
// not yet dispatched are skipped. fn must be safe to call concurrently
// on disjoint ranges.
func (p *Pool) Run(ctx context.Context, n, align int, fn func(lo, hi int)) error {
	return p.RunChunked(ctx, n, p.chunkFor(n, align), fn)
}

// RunChunked is Run with an explicit chunk size — exposed so the
// equivalence tests can drive odd and even splits; Run chooses the
// chunk from the worker budget.
func (p *Pool) RunChunked(ctx context.Context, n, chunk int, fn func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if chunk <= 0 {
		chunk = n
	}
	if chunk >= n || p.workers == 1 {
		// Serial fast path: no goroutines, no semaphore round-trips.
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		if err := ctx.Err(); err != nil {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.sem <- struct{}{} // acquire before spawn: bounds live goroutines
		wg.Add(1)
		go func(lo, hi int) {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}
