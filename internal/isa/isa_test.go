package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instruction{
		{Op: OpNOP},
		{Op: OpHALT},
		{Op: OpMOVI, Rd: 3, Imm: 0xBEEF},
		{Op: OpMOVT, Rd: 15, Imm: 0x2000},
		{Op: OpMOV, Rd: 1, Rs: 2},
		{Op: OpADD, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpADDI, Rd: 4, Rs: 4, Imm: -1},
		{Op: OpADDI, Rd: 4, Rs: 4, Imm: 8191},
		{Op: OpLDR, Rd: 5, Rs: 6, Imm: -8192},
		{Op: OpSTR, Rs: 1, Rt: 2, Imm: 124},
		{Op: OpSTRB, Rs: 1, Rt: 2, Imm: 0},
		{Op: OpCMP, Rs: 7, Rt: 8},
		{Op: OpB, Imm: -1},
		{Op: OpBL, Imm: 1 << 20},
		{Op: OpBEQ, Imm: -(1 << 25)},
		{Op: OpRET},
	}
	for _, ins := range cases {
		w, err := ins.Encode()
		if err != nil {
			t.Fatalf("%v: %v", ins, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("%v: decode: %v", ins, err)
		}
		// Fields not used by the format are normalized to zero by Decode;
		// compare the re-encoding instead for full fidelity.
		w2, err := got.Encode()
		if err != nil {
			t.Fatalf("%v: re-encode: %v", got, err)
		}
		if w2 != w {
			t.Errorf("%v: round trip %#08x -> %v -> %#08x", ins, w, got, w2)
		}
		if got.Op != ins.Op || got.Imm != ins.Imm {
			t.Errorf("%v: decoded op/imm mismatch: %v", ins, got)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Instruction{
		{Op: opCount},
		{Op: OpADD, Rd: 16},
		{Op: OpMOVI, Rd: 1, Imm: 0x10000},
		{Op: OpMOVI, Rd: 1, Imm: -1},
		{Op: OpADDI, Rd: 1, Imm: 8192},
		{Op: OpADDI, Rd: 1, Imm: -8193},
		{Op: OpB, Imm: 1 << 25},
		{Op: OpB, Imm: -(1 << 25) - 1},
	}
	for _, ins := range bad {
		if _, err := ins.Encode(); err == nil {
			t.Errorf("%+v encoded without error", ins)
		}
	}
}

func TestDecodeRejectsUndefinedOpcode(t *testing.T) {
	if _, err := Decode(uint32(opCount) << 26); err == nil {
		t.Error("undefined opcode decoded")
	}
	if _, err := Decode(0xFFFFFFFF); err == nil {
		t.Error("all-ones word decoded")
	}
}

func TestDecodeEncodeProperty(t *testing.T) {
	// Every word with a valid opcode must survive decode→encode→decode.
	f := func(raw uint32) bool {
		op := Opcode(raw >> 26)
		if !op.Valid() {
			return true
		}
		ins, err := Decode(raw)
		if err != nil {
			return false
		}
		w, err := ins.Encode()
		if err != nil {
			return false
		}
		ins2, err := Decode(w)
		if err != nil {
			return false
		}
		return ins2 == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]Instruction{
		"nop":              {Op: OpNOP},
		"movi r3, #48879":  {Op: OpMOVI, Rd: 3, Imm: 0xBEEF},
		"mov r1, r2":       {Op: OpMOV, Rd: 1, Rs: 2},
		"add r1, r2, r3":   {Op: OpADD, Rd: 1, Rs: 2, Rt: 3},
		"addi r4, r4, #-1": {Op: OpADDI, Rd: 4, Rs: 4, Imm: -1},
		"ldr r5, [r6, #8]": {Op: OpLDR, Rd: 5, Rs: 6, Imm: 8},
		"str r2, [r1, #0]": {Op: OpSTR, Rs: 1, Rt: 2},
		"cmp r7, r8":       {Op: OpCMP, Rs: 7, Rt: 8},
		"b -1":             {Op: OpB, Imm: -1},
		"ret":              {Op: OpRET},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestOpcodeNamesComplete(t *testing.T) {
	if len(opNames) != int(opCount) {
		t.Fatalf("opNames has %d entries for %d opcodes", len(opNames), opCount)
	}
	for op := Opcode(0); op < opCount; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has empty name", op)
		}
	}
}
