// Package isa defines IB32, the small fixed-width RISC instruction set
// the simulated microcontrollers execute. The paper's encoding tool
// "takes a payload expressed as a binary file, and returns an assembly
// program that writes that payload to the SRAM" and then busy-waits
// (§4.2); IB32 is the target of that tool in this reproduction, rich
// enough for payload writers, power-on-state retainers, camouflage
// programs, and the pseudo-random write workload of §5.1.4.
//
// # Encoding
//
// Every instruction is one 32-bit little-endian word:
//
//	[31:26] opcode
//	[25:22] rd
//	[21:18] rs
//	[17:14] rt
//	[13:0]  imm14 (signed)        — ALU immediates and load/store offsets
//
// MOVI/MOVT use [25:22] rd and [15:0] imm16. Branches use a signed
// 26-bit word offset in [25:0], relative to the *next* instruction.
//
// Registers r0–r15; r14 is the link register for BL/RET, r15 is not
// directly addressable as the PC (branches are the only control flow).
package isa

import "fmt"

// Opcode enumerates IB32 operations.
type Opcode uint8

// IB32 opcodes.
const (
	OpNOP Opcode = iota
	OpHALT
	OpMOVI // rd = imm16 (zero-extended)
	OpMOVT // rd = (imm16 << 16) | (rd & 0xFFFF)
	OpMOV  // rd = rs
	OpADD  // rd = rs + rt
	OpSUB  // rd = rs - rt
	OpAND  // rd = rs & rt
	OpORR  // rd = rs | rt
	OpXOR  // rd = rs ^ rt
	OpLSL  // rd = rs << (rt & 31)
	OpLSR  // rd = rs >> (rt & 31) (logical)
	OpADDI // rd = rs + imm14 (sign-extended)
	OpLDR  // rd = mem32[rs + imm14]
	OpSTR  // mem32[rs + imm14] = rt
	OpLDRB // rd = mem8[rs + imm14] (zero-extended)
	OpSTRB // mem8[rs + imm14] = rt & 0xFF
	OpCMP  // flags = compare(rs, rt)
	OpB    // pc += 4 + 4*imm26
	OpBEQ  // if Z
	OpBNE  // if !Z
	OpBLT  // if signed less-than
	OpBGE  // if !LT
	OpBL   // r14 = pc + 4; pc += 4 + 4*imm26
	OpRET  // pc = r14
	opCount
)

var opNames = [...]string{
	"nop", "halt", "movi", "movt", "mov", "add", "sub", "and", "orr",
	"xor", "lsl", "lsr", "addi", "ldr", "str", "ldrb", "strb", "cmp",
	"b", "beq", "bne", "blt", "bge", "bl", "ret",
}

// String returns the assembler mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether the opcode is defined.
func (op Opcode) Valid() bool { return op < opCount }

// LinkRegister is the register BL writes and RET reads.
const LinkRegister = 14

// NumRegisters is the size of the register file.
const NumRegisters = 16

// Instruction is a decoded IB32 instruction.
type Instruction struct {
	Op         Opcode
	Rd, Rs, Rt uint8
	// Imm holds imm16 for MOVI/MOVT (unsigned 0..65535), the signed imm14
	// for ALU/memory forms, or the signed word offset for branches.
	Imm int32
}

const (
	imm14Min = -(1 << 13)
	imm14Max = 1<<13 - 1
	imm26Min = -(1 << 25)
	imm26Max = 1<<25 - 1
)

// Kind helpers classify instruction shapes for encode/decode/assembly.

// IsBranch reports whether the op uses the 26-bit branch offset form.
func (op Opcode) IsBranch() bool {
	switch op {
	case OpB, OpBEQ, OpBNE, OpBLT, OpBGE, OpBL:
		return true
	}
	return false
}

// IsMovImm reports whether the op is MOVI or MOVT.
func (op Opcode) IsMovImm() bool { return op == OpMOVI || op == OpMOVT }

// Encode packs the instruction into its 32-bit word. It returns an error
// for out-of-range fields so the assembler can report bad programs
// instead of silently corrupting them.
func (ins Instruction) Encode() (uint32, error) {
	if !ins.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", ins.Op)
	}
	if ins.Rd >= NumRegisters || ins.Rs >= NumRegisters || ins.Rt >= NumRegisters {
		return 0, fmt.Errorf("isa: register out of range in %s", ins.Op)
	}
	w := uint32(ins.Op) << 26
	switch {
	case ins.Op.IsBranch():
		if ins.Imm < imm26Min || ins.Imm > imm26Max {
			return 0, fmt.Errorf("isa: branch offset %d out of range", ins.Imm)
		}
		w |= uint32(ins.Imm) & 0x03FFFFFF
	case ins.Op.IsMovImm():
		if ins.Imm < 0 || ins.Imm > 0xFFFF {
			return 0, fmt.Errorf("isa: imm16 %d out of range", ins.Imm)
		}
		w |= uint32(ins.Rd) << 22
		w |= uint32(ins.Imm) & 0xFFFF
	default:
		if ins.Imm < imm14Min || ins.Imm > imm14Max {
			return 0, fmt.Errorf("isa: imm14 %d out of range", ins.Imm)
		}
		w |= uint32(ins.Rd) << 22
		w |= uint32(ins.Rs) << 18
		w |= uint32(ins.Rt) << 14
		w |= uint32(ins.Imm) & 0x3FFF
	}
	return w, nil
}

// Decode unpacks a 32-bit word. Undefined opcodes return an error (the
// CPU raises a fault).
func Decode(w uint32) (Instruction, error) {
	op := Opcode(w >> 26)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: undefined opcode %d in %#08x", op, w)
	}
	ins := Instruction{Op: op}
	switch {
	case op.IsBranch():
		imm := int32(w & 0x03FFFFFF)
		if imm&(1<<25) != 0 {
			imm |= ^int32(0x03FFFFFF) // sign extend
		}
		ins.Imm = imm
	case op.IsMovImm():
		ins.Rd = uint8((w >> 22) & 0xF)
		ins.Imm = int32(w & 0xFFFF)
	default:
		ins.Rd = uint8((w >> 22) & 0xF)
		ins.Rs = uint8((w >> 18) & 0xF)
		ins.Rt = uint8((w >> 14) & 0xF)
		imm := int32(w & 0x3FFF)
		if imm&(1<<13) != 0 {
			imm |= ^int32(0x3FFF)
		}
		ins.Imm = imm
	}
	return ins, nil
}

// String renders the instruction in assembler syntax.
func (ins Instruction) String() string {
	switch {
	case ins.Op == OpNOP, ins.Op == OpHALT, ins.Op == OpRET:
		return ins.Op.String()
	case ins.Op.IsBranch():
		return fmt.Sprintf("%s %+d", ins.Op, ins.Imm)
	case ins.Op.IsMovImm():
		return fmt.Sprintf("%s r%d, #%d", ins.Op, ins.Rd, ins.Imm)
	case ins.Op == OpMOV:
		return fmt.Sprintf("mov r%d, r%d", ins.Rd, ins.Rs)
	case ins.Op == OpADDI:
		return fmt.Sprintf("addi r%d, r%d, #%d", ins.Rd, ins.Rs, ins.Imm)
	case ins.Op == OpLDR, ins.Op == OpLDRB:
		return fmt.Sprintf("%s r%d, [r%d, #%d]", ins.Op, ins.Rd, ins.Rs, ins.Imm)
	case ins.Op == OpSTR, ins.Op == OpSTRB:
		return fmt.Sprintf("%s r%d, [r%d, #%d]", ins.Op, ins.Rt, ins.Rs, ins.Imm)
	case ins.Op == OpCMP:
		return fmt.Sprintf("cmp r%d, r%d", ins.Rs, ins.Rt)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", ins.Op, ins.Rd, ins.Rs, ins.Rt)
	}
}
