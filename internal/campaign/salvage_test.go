package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/faults"
)

// killWithCheckpoints runs the campaign under a kill switch, escalating
// the kill point until the died-at state has at least one checkpoint
// image on disk — the precondition for exercising generation fallback.
func killWithCheckpoints(t *testing.T, base string, spec Spec) (dir string, ckpts []string) {
	t.Helper()
	ctx := context.Background()
	for k := 5; k < 200; k++ {
		dir = filepath.Join(base, fmt.Sprintf("kill%03d", k))
		ks := faults.NewKillSwitch(k)
		_, err := Run(ctx, dir, spec, Options{Key: testKey(), Hook: ks.Hook()})
		if !ks.Fired() {
			t.Fatalf("campaign completed before any kill point left a checkpoint behind (k=%d, err=%v)", k, err)
		}
		// The checkpoint must be journaled, not merely on disk — an
		// image without its record is invisible to resume.
		entries, _, rerr := ReadJournalSalvage(nil, filepath.Join(dir, journalFile))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if st, _, _ := ReplaySalvage(entries); st != nil {
			for _, sl := range st.Slots {
				for _, ck := range sl.Ckpts {
					ckpts = append(ckpts, filepath.Join(dir, ck.Image))
				}
			}
		}
		if len(ckpts) > 0 {
			return dir, ckpts
		}
	}
	t.Fatal("no kill point produced a checkpoint")
	return "", nil
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x55
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeStrikesCorruptCheckpoint: a checkpoint image that rots
// after the crash is struck (journaled as ckptbad), an older generation
// or a from-scratch rebuild steps in, and the campaign still completes
// bit-identically to an uninterrupted run.
func TestResumeStrikesCorruptCheckpoint(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()
	spec := testSpec(t, "ckptrot")

	refDir := filepath.Join(base, "ref")
	refRes, err := Run(ctx, refDir, spec, Options{Key: key})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refImages := readImages(t, refDir, refRes)

	dir, ckpts := killWithCheckpoints(t, base, spec)
	corruptFile(t, ckpts[len(ckpts)-1])

	res, sum, err := ResumeSalvage(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("resume over a rotted checkpoint: %v", err)
	}
	if len(sum.BadCheckpoints) == 0 || !sum.Degraded() {
		t.Fatalf("salvage summary did not report the struck checkpoint: %+v", sum)
	}
	assertSameOutcome(t, "rotted newest checkpoint", dir, res, refRes, refImages)
	got, err := DecodeResult(ctx, dir, key)
	if err != nil || !bytes.Equal(got, spec.Message) {
		t.Fatalf("decode after checkpoint strike: %v", err)
	}
}

// TestResumeSurvivesAllCheckpointsRotten: with every generation gone,
// resume rebuilds the affected slots from scratch — device identity is
// a pure function of (model, serial) — and still converges on the
// reference outcome.
func TestResumeSurvivesAllCheckpointsRotten(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()
	spec := testSpec(t, "allrot")

	refDir := filepath.Join(base, "ref")
	refRes, err := Run(ctx, refDir, spec, Options{Key: key})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refImages := readImages(t, refDir, refRes)

	dir, ckpts := killWithCheckpoints(t, base, spec)
	for _, p := range ckpts {
		corruptFile(t, p)
	}

	res, sum, err := ResumeSalvage(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("resume with every checkpoint rotted: %v", err)
	}
	if len(sum.BadCheckpoints) != len(ckpts) {
		t.Fatalf("struck %d checkpoints, want %d: %+v", len(sum.BadCheckpoints), len(ckpts), sum)
	}
	assertSameOutcome(t, "all checkpoints rotted", dir, res, refRes, refImages)
}

// TestResumeSalvagesCorruptJournalInterior: a flipped byte in the
// middle of the journal cuts replay there; the lost suffix is redone
// deterministically and the final outcome matches the reference.
func TestResumeSalvagesCorruptJournalInterior(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()
	spec := testSpec(t, "jrot")

	refDir := filepath.Join(base, "ref")
	refRes, err := Run(ctx, refDir, spec, Options{Key: key})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refImages := readImages(t, refDir, refRes)

	dir, _ := killWithCheckpoints(t, base, spec)
	jpath := filepath.Join(dir, journalFile)
	journal, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(journal, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	// Flip a byte inside the third record.
	off := len(lines[0]) + len(lines[1]) + len(lines[2])/2
	journal[off] ^= 0x08
	if err := os.WriteFile(jpath, journal, 0o644); err != nil {
		t.Fatal(err)
	}

	res, sum, err := ResumeSalvage(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("resume over corrupt journal interior: %v", err)
	}
	if sum.DroppedBytes == 0 || !sum.Degraded() {
		t.Fatalf("salvage summary did not report the cut: %+v", sum)
	}
	if sum.JournalRecords != 2 {
		t.Fatalf("salvaged %d records, want the 2 before the flip", sum.JournalRecords)
	}
	assertSameOutcome(t, "corrupt journal interior", dir, res, refRes, refImages)
	got, err := DecodeResult(ctx, dir, key)
	if err != nil || !bytes.Equal(got, spec.Message) {
		t.Fatalf("decode after journal salvage: %v", err)
	}
}

// TestResumeSweepsTempLitter: stale *.tmp* files from interrupted
// atomic writes are removed on resume and reported in the summary.
func TestResumeSweepsTempLitter(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()
	spec := testSpec(t, "sweep")

	dir, _ := killWithCheckpoints(t, base, spec)
	litter := filepath.Join(dir, "result.json.tmp1234")
	if err := os.WriteFile(litter, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, sum, err := ResumeSalvage(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(sum.TempFilesSwept) != 1 {
		t.Fatalf("swept %v, want the one temp file", sum.TempFilesSwept)
	}
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Fatal("temp litter survived resume")
	}
}
