package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"invisiblebits/internal/core"
	"invisiblebits/internal/rig"
)

// validJournalBytes builds a genuine two-slot journal: begin, both
// slots prepared, sliced, checkpointed, encoded, then done — the
// highest-value mutation seed.
func validJournalBytes(t testing.TB) []byte {
	t.Helper()
	st := rig.State{ClockHours: 2.5, ChamberC: 100, SupplyV: 3.6}
	rec := &core.Record{DeviceID: "MSP430G2553:fz", MessageBytes: 3, PayloadBytes: 64,
		CodecName: "none", Captures: 5, StressHours: 5}
	entries := []Entry{
		{Type: entryBegin, Campaign: "fz", Digest: "d1", Slots: 2, Slot: -1},
		{Type: entryPrepared, Slot: 0},
		{Type: entryPrepared, Slot: 1},
		{Type: entrySlice, Slot: 0, Applied: 2.5, Total: 5},
		{Type: entryCheckpoint, Slot: 0, Applied: 2.5, Image: "slot-0-ckpt.img", Rig: &st},
		{Type: entrySlice, Slot: 1, Applied: 2.5, Total: 5},
		{Type: entrySlice, Slot: 0, Applied: 5, Total: 5},
		{Type: entrySlice, Slot: 1, Applied: 5, Total: 5},
		// A resume rewinds each unfinished slot to its last checkpoint:
		// slot 0 re-enters at 2.5h, slot 1 (never checkpointed) restarts
		// from scratch and prepares again.
		{Type: entryResume, Campaign: "fz", Digest: "d1", Slot: -1},
		{Type: entrySlice, Slot: 0, Applied: 5, Total: 5},
		{Type: entryPrepared, Slot: 1},
		{Type: entrySlice, Slot: 1, Applied: 2.5, Total: 5},
		{Type: entrySlice, Slot: 1, Applied: 5, Total: 5},
		{Type: entryEncoded, Slot: 0, Applied: 5.2, Image: "slot-0-final.img", Record: rec, Rig: &st},
		{Type: entryEncoded, Slot: 1, Applied: 5.2, Image: "slot-1-final.img", Record: rec, Rig: &st},
		{Type: entryDone, Slot: -1},
	}
	var buf bytes.Buffer
	for i, e := range entries {
		e.Seq = i
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// journalSeeds is the checked-in seed corpus: a valid journal, its
// crash signatures (truncated prefixes, torn tails), the corruptions
// replay must reject (duplicated, reordered, reseq'd records), and
// garbage.
func journalSeeds(t testing.TB) [][]byte {
	valid := validJournalBytes(t)
	lines := bytes.SplitAfter(valid, []byte("\n"))

	truncated := bytes.Join(lines[:4], nil)
	torn := append(bytes.Join(lines[:4], nil), lines[4][:len(lines[4])/2]...)
	duplicated := append(append([]byte(nil), valid...), lines[3]...)
	reordered := bytes.Join([][]byte{lines[0], lines[3], lines[1], lines[2]}, nil)
	badSeq := bytes.Replace(valid, []byte(`{"seq":3`), []byte(`{"seq":9`), 1)
	midGarbage := bytes.Join([][]byte{lines[0], []byte("not json\n"), lines[1]}, nil)

	return [][]byte{
		valid,
		truncated,
		torn,
		duplicated,
		reordered,
		badSeq,
		midGarbage,
		[]byte("go home journal you are drunk"),
		{},
	}
}

// FuzzJournalReplay hammers the parse→replay pipeline with mutated
// journals. The contract is fail-closed, never-panic: whatever the
// bytes claim, ParseJournal either rejects them or returns a prefix
// that round-trips, and Replay either rejects the entries or returns a
// state consistent with them.
func FuzzJournalReplay(f *testing.F) {
	for _, seed := range journalSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, validLen, err := ParseJournal(data)
		if err != nil {
			return
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0,%d]", validLen, len(data))
		}
		// The accepted prefix must re-parse to the same entries — what a
		// resuming supervisor truncates to must be self-consistent.
		again, againLen, err := ParseJournal(data[:validLen])
		if err != nil || againLen != validLen || len(again) != len(entries) {
			t.Fatalf("accepted prefix does not round-trip: %v (%d vs %d entries)",
				err, len(again), len(entries))
		}

		st, err := Replay(entries)
		if err != nil {
			return // rejected: fail-closed is the expected path
		}
		// An accepted journal must be internally coherent.
		if st.Campaign == "" || st.Digest == "" || len(st.Slots) == 0 {
			t.Fatalf("replay accepted a journal without identity: %+v", st)
		}
		if st.NextSeq != len(entries) {
			t.Fatalf("NextSeq %d, want %d", st.NextSeq, len(entries))
		}
		for i, s := range st.Slots {
			if s.Applied < 0 || s.CkptApplied < 0 {
				t.Fatalf("slot %d replayed negative hours: %+v", i, s)
			}
			if s.CkptImage != "" && s.CkptRig == nil {
				t.Fatalf("slot %d checkpoint without rig state", i)
			}
			if s.Record != nil && s.FinalImage == "" {
				t.Fatalf("slot %d record without final image", i)
			}
		}
	})
}

// TestJournalReplaySeeds pins the seed corpus semantics outside the
// fuzzer: which damage is tolerated (crash signatures) and which is
// rejected (corruption).
func TestJournalReplaySeeds(t *testing.T) {
	seeds := journalSeeds(t)
	valid, truncated, torn := seeds[0], seeds[1], seeds[2]
	duplicated, reordered, badSeq, midGarbage := seeds[3], seeds[4], seeds[5], seeds[6]

	entries, n, err := ParseJournal(valid)
	if err != nil || n != int64(len(valid)) {
		t.Fatalf("valid journal rejected: %v (validLen %d)", err, n)
	}
	st, err := Replay(entries)
	if err != nil {
		t.Fatalf("valid journal failed replay: %v", err)
	}
	if !st.Done || len(st.Slots) != 2 || st.Slots[0].Record == nil {
		t.Fatalf("replayed state wrong: %+v", st)
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated prefix", truncated},
		{"torn tail", torn},
	} {
		entries, _, err := ParseJournal(tc.data)
		if err != nil {
			t.Fatalf("%s: crash signature rejected at parse: %v", tc.name, err)
		}
		if _, err := Replay(entries); err != nil {
			t.Fatalf("%s: crash signature rejected at replay: %v", tc.name, err)
		}
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"duplicated record", duplicated},
		{"reordered records", reordered},
		{"broken sequence", badSeq},
	} {
		entries, _, err := ParseJournal(tc.data)
		if err != nil {
			continue // rejecting at parse is also fail-closed
		}
		if _, err := Replay(entries); err == nil {
			t.Fatalf("%s: replay accepted corruption", tc.name)
		}
	}
	if _, _, err := ParseJournal(midGarbage); err == nil {
		t.Fatal("mid-file garbage accepted at parse")
	}
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus. Gated so
// normal runs never touch testdata; run with IB_REGEN_FUZZ=1 after
// changing the journal format or seed set.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("IB_REGEN_FUZZ") == "" {
		t.Skip("set IB_REGEN_FUZZ=1 to regenerate testdata/fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range journalSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
