// Package campaign is the crash-safe supervisor for long imprinting
// runs. An Invisible Bits encode is a multi-day thermal soak (§5.2's
// accelerated-aging schedule); a host crash, power cut, or operator
// mistake 40 hours in must not restart the campaign from zero. The
// supervisor dices every carrier's soak into slices, records each phase
// transition in a write-ahead journal (journal.go), and checkpoints
// device images atomically at slice boundaries, so Resume can rebuild
// the fleet at the exact slice the crash interrupted and produce a
// result bit-identical to an uninterrupted run.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"invisiblebits/internal/cliutil"
	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/stegocrypt"
	"invisiblebits/internal/storage"
	"invisiblebits/internal/wal"
)

const (
	journalFile = "journal.jsonl"
	specFile    = "spec.json"
	resultFile  = "result.json"
)

// Spec is the durable description of a campaign — everything needed to
// rebuild the fleet and the schedule after a crash. Keys deliberately
// never appear here: spec.json sits next to the device images, and the
// threat model (paper §6) assumes the adversary can read the bench.
type Spec struct {
	// ID names the campaign; it is stamped into every journal record.
	ID string `json:"id"`
	// Model is the device model every carrier instantiates.
	Model string `json:"model"`
	// Serials lists one carrier serial per stripe slot. Device identity
	// is a pure function of (model, serial), which is what makes
	// from-scratch slot rebuilds deterministic.
	Serials []string `json:"serials"`
	// Message is the plaintext to stripe across the fleet.
	Message []byte `json:"message"`
	// Codec is the ECC layer in cliutil vocabulary ("paper", "rep5",
	// "none", ...); empty means none.
	Codec string `json:"codec,omitempty"`
	// StressHours overrides the model's Table 4 soak length when > 0.
	StressHours float64 `json:"stress_hours,omitempty"`
	// Captures is the decode majority-vote burst; 0 means the default.
	Captures int `json:"captures,omitempty"`
	// SliceHours is the journaling granularity: one journal record (and
	// potentially one checkpoint) per slice. 0 means DefaultSliceHours.
	SliceHours float64 `json:"slice_hours,omitempty"`
	// CheckpointEvery saves a device image every N slices; 0 means
	// DefaultCheckpointEvery.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Campaign defaults: slice hourly, checkpoint every other slice.
const (
	DefaultSliceHours      = 1.0
	DefaultCheckpointEvery = 2
)

func (s Spec) withDefaults() Spec {
	if s.SliceHours <= 0 {
		s.SliceHours = DefaultSliceHours
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = DefaultCheckpointEvery
	}
	return s
}

// Validate rejects structurally unusable specs: bad IDs, duplicate or
// empty serials, empty messages, unknown models or codecs. The
// scheduler calls it at admission time so a doomed campaign is rejected
// at Submit rather than burning chamber hours first.
func (s Spec) Validate() error {
	if s.ID == "" || strings.ContainsAny(s.ID, "/\\") {
		return fmt.Errorf("campaign: invalid campaign ID %q", s.ID)
	}
	if len(s.Serials) == 0 {
		return errors.New("campaign: no carrier serials")
	}
	seen := map[string]bool{}
	for _, ser := range s.Serials {
		if ser == "" || seen[ser] {
			return fmt.Errorf("campaign: duplicate or empty serial %q", ser)
		}
		seen[ser] = true
	}
	if len(s.Message) == 0 {
		return core.ErrEmptyMessage
	}
	if _, err := device.ByName(s.Model); err != nil {
		return err
	}
	if _, err := s.codec(); err != nil {
		return err
	}
	return nil
}

func (s Spec) codec() (ecc.Codec, error) {
	if s.Codec == "" {
		return nil, nil
	}
	return cliutil.ParseCodec(s.Codec)
}

// ScheduleDigest fingerprints everything the soak schedule depends on.
// The journal's begin record carries it, and Resume refuses to continue
// a journal whose digest does not match the spec on disk — a swapped
// message, codec, or fleet would otherwise silently produce carriers
// that decode to garbage.
func (s Spec) ScheduleDigest() string {
	s = s.withDefaults()
	msgSum := sha256.Sum256(s.Message)
	canonical := struct {
		ID              string
		Model           string
		Serials         []string
		MessageSHA256   string
		MessageBytes    int
		Codec           string
		StressHours     float64
		Captures        int
		SliceHours      float64
		CheckpointEvery int
	}{
		s.ID, s.Model, s.Serials, hex.EncodeToString(msgSum[:]), len(s.Message),
		s.Codec, s.StressHours, s.Captures, s.SliceHours, s.CheckpointEvery,
	}
	b, err := json.Marshal(canonical)
	if err != nil {
		// Marshal of a struct of strings and numbers cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Options configures a Run or Resume.
type Options struct {
	// Key enables the encryption layer (held in memory only, never
	// persisted to the campaign directory).
	Key *stegocrypt.Key
	// Breakers mounts per-device circuit breakers on the fleet pass.
	Breakers *fleet.BreakerSet
	// Hook is the crash-test kill-point hook; every journal append and
	// image write consults it. Nil in production.
	Hook faults.Hook
	// FS is the filesystem seam for every durable artifact (journal,
	// spec, images, result). Nil means the real OS filesystem;
	// fault-injection tests substitute a storage.FaultFS.
	FS storage.FS
}

// SalvageSummary reports what a degraded resume had to give up on —
// the typed outcome operators see instead of a silent recovery. All
// fields zero/empty means the resume was clean.
type SalvageSummary struct {
	// JournalRecords is how many journal records were replayed.
	JournalRecords int `json:"journal_records"`
	// DroppedRecords is how many structurally-parsed records were
	// discarded because replay validation rejected them (corrupt
	// suffix); DroppedBytes counts all journal bytes cut, including
	// unparseable ones.
	DroppedRecords int   `json:"dropped_records,omitempty"`
	DroppedBytes   int64 `json:"dropped_bytes,omitempty"`
	// TornTail reports the benign signature of dying mid-append, as
	// opposed to mid-file corruption.
	TornTail bool `json:"torn_tail,omitempty"`
	// Reason says why the journal was cut ("" when it was not).
	Reason string `json:"reason,omitempty"`
	// BadCheckpoints lists checkpoint images that failed verification
	// and were struck from the history (ckptbad records appended); the
	// slot fell back to an older generation or a scratch rebuild.
	BadCheckpoints []string `json:"bad_checkpoints,omitempty"`
	// TempFilesSwept lists stale safe-save temp files removed on entry.
	TempFilesSwept []string `json:"temp_files_swept,omitempty"`
}

// Degraded reports whether the resume had to salvage anything.
func (s *SalvageSummary) Degraded() bool {
	return s != nil && (s.DroppedBytes > 0 || len(s.BadCheckpoints) > 0)
}

// Result is the campaign's durable outcome (result.json).
type Result struct {
	Campaign     string `json:"campaign"`
	MessageBytes int    `json:"message_bytes"`
	SegmentSizes []int  `json:"segment_sizes"`
	// Records[i] is slot i's encode record (nil for zero-width slots).
	Records []*core.Record `json:"records"`
	// Images[i] is slot i's final device image file, relative to the
	// campaign directory.
	Images []string `json:"images"`
	// EquivalentHours is the summed simulated bench time across the
	// fleet, retries and backoff included.
	EquivalentHours float64 `json:"equivalent_hours"`
	// Quarantined lists carriers the breaker set wrote off (empty
	// without Options.Breakers).
	Quarantined []string `json:"quarantined,omitempty"`
}

// Run starts a fresh campaign in dir: persists spec.json, opens the
// journal, and drives the striped encode to completion. A directory
// that already holds a journal is refused — that campaign's truth is on
// disk, and Resume is the only safe way back in.
func Run(ctx context.Context, dir string, spec Spec, opts Options) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fsys := storage.Default(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if _, err := fsys.Stat(filepath.Join(dir, journalFile)); err == nil {
		return nil, fmt.Errorf("campaign: %s already holds a journal; use Resume", dir)
	}
	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := ioatomic.WriteFileFS(fsys, filepath.Join(dir, specFile), specJSON, 0o644); err != nil {
		return nil, err
	}
	j, err := createJournal(filepath.Join(dir, journalFile), opts.Hook, fsys)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	return start(ctx, dir, spec, opts, j)
}

// start begins (or re-begins, after a crash that predated the begin
// record) a campaign on an open journal: append begin, build the fleet
// from scratch, drive it.
func start(ctx context.Context, dir string, spec Spec, opts Options, j *Journal) (*Result, error) {
	if err := j.Append(Entry{
		Type: entryBegin, Campaign: spec.ID, Digest: spec.ScheduleDigest(),
		Slots: len(spec.Serials), Slot: -1,
	}); err != nil {
		return nil, err
	}
	model, err := device.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	rigs := make([]*rig.Rig, len(spec.Serials))
	for i, ser := range spec.Serials {
		d, err := device.New(model, ser)
		if err != nil {
			return nil, err
		}
		rigs[i] = rig.New(d)
	}
	n := len(rigs)
	return run(ctx, dir, spec, opts, j, rigs, nil, make([]string, n), make([]float64, n))
}

// Resume re-enters a crashed campaign: it re-reads spec.json, replays
// the journal (verifying the schedule digest), rebuilds every slot from
// its latest checkpoint — finished slots keep their records, slots that
// never reached a checkpoint restart from scratch, deterministically —
// and drives the remaining slices. Resuming a finished campaign simply
// returns its result. Resume salvages storage damage silently; use
// ResumeSalvage to see what was recovered.
func Resume(ctx context.Context, dir string, opts Options) (*Result, error) {
	res, _, err := ResumeSalvage(ctx, dir, opts)
	return res, err
}

// ResumeSalvage is Resume with the degraded-resume report. Storage
// damage that fail-closed replay would brick on is survived instead:
// a corrupt journal suffix is cut at the last verifiable record (safe —
// every slice of lost work is deterministically redone), a checkpoint
// image that fails its sha256 seal is struck from history with a
// durable ckptbad record and the slot falls back to the previous
// generation (or a from-scratch rebuild), and stale safe-save temp
// files are swept. The summary reports each of those decisions. Only
// genuinely unrecoverable damage — a spec.json that is missing, broken,
// or no longer matches the journal's schedule digest — still fails: the
// spec holds the message itself, which no amount of determinism can
// reconstruct.
func ResumeSalvage(ctx context.Context, dir string, opts Options) (*Result, *SalvageSummary, error) {
	fsys := storage.Default(opts.FS)
	sum := &SalvageSummary{}
	swept, err := ioatomic.SweepTemps(fsys, dir)
	if err != nil {
		return nil, sum, fmt.Errorf("campaign: %w", err)
	}
	sum.TempFilesSwept = swept
	spec, err := readSpec(fsys, dir)
	if err != nil {
		return nil, sum, err
	}
	jpath := filepath.Join(dir, journalFile)
	entries, sal, err := ReadJournalSalvage(fsys, jpath)
	if err != nil {
		return nil, sum, err
	}
	sum.DroppedBytes = sal.DroppedBytes
	sum.TornTail = sal.TornTail
	sum.Reason = sal.Reason
	if len(entries) == 0 {
		// The crash predated the begin record (or corruption consumed the
		// whole journal): nothing durable is recoverable, so the resume
		// IS the first run — deterministic from the spec.
		j, err := openJournal(jpath, opts.Hook, fsys, 0, 0)
		if err != nil {
			return nil, sum, err
		}
		defer j.Close()
		res, err := start(ctx, dir, spec, opts, j)
		return res, sum, err
	}
	st, used, replayErr := ReplaySalvage(entries)
	validLen := sal.ValidLen
	if used < len(entries) {
		// Structural corruption past the CRC layer: cut at the last
		// record replay accepted.
		sum.DroppedRecords = len(entries) - used
		sum.DroppedBytes += sal.ValidLen - offsetOf(sal, used)
		sum.TornTail = false
		if replayErr != nil {
			sum.Reason = replayErr.Error()
		}
		validLen = offsetOf(sal, used)
		if used == 0 || st == nil {
			j, err := openJournal(jpath, opts.Hook, fsys, 0, 0)
			if err != nil {
				return nil, sum, err
			}
			defer j.Close()
			res, err := start(ctx, dir, spec, opts, j)
			return res, sum, err
		}
	}
	sum.JournalRecords = used
	if st.Campaign != spec.ID {
		return nil, sum, fmt.Errorf("campaign: journal belongs to %q, spec is %q", st.Campaign, spec.ID)
	}
	if digest := spec.ScheduleDigest(); st.Digest != digest {
		return nil, sum, fmt.Errorf("campaign: schedule digest mismatch: journal %s…, spec %s… — the spec changed under a live campaign",
			st.Digest[:12], digest[:12])
	}
	if len(st.Slots) != len(spec.Serials) {
		return nil, sum, fmt.Errorf("campaign: journal plans %d slots, spec has %d", len(st.Slots), len(spec.Serials))
	}
	if st.Done {
		res, err := readResult(fsys, dir)
		if err != nil {
			// The done record guarantees result.json was written, but the
			// disk may have eaten it since. Everything in it derives
			// deterministically from the journal — rebuild it.
			res, err = rebuildResult(fsys, dir, spec, st)
			if err != nil {
				return nil, sum, err
			}
			sum.Reason = "result.json rebuilt from journal"
		}
		return res, sum, nil
	}

	j, err := openJournal(jpath, opts.Hook, fsys, st.NextSeq, validLen)
	if err != nil {
		return nil, sum, err
	}
	defer j.Close()

	model, err := device.ByName(spec.Model)
	if err != nil {
		return nil, sum, err
	}
	// Restore each unfinished slot from its newest verifiable checkpoint
	// generation, striking bad images with durable ckptbad records
	// BEFORE the resume record — replay's rewind must agree with the
	// generation we actually restored.
	type restored struct {
		dev      *device.Device
		ckpt     SlotCheckpoint
		haveCkpt bool
	}
	restores := make([]restored, len(spec.Serials))
	for i := range spec.Serials {
		sr := &st.Slots[i]
		if sr.Record != nil {
			continue
		}
		for g := len(sr.Ckpts) - 1; g >= 0; g-- {
			ck := sr.Ckpts[g]
			d, lerr := device.LoadFileFS(fsys, filepath.Join(dir, ck.Image))
			if lerr == nil {
				restores[i] = restored{dev: d, ckpt: ck, haveCkpt: true}
				break
			}
			sum.BadCheckpoints = append(sum.BadCheckpoints, ck.Image)
			if err := j.Append(Entry{Type: entryCkptBad, Campaign: spec.ID, Slot: i, Image: ck.Image}); err != nil {
				return nil, sum, err
			}
		}
	}
	if err := j.Append(Entry{
		Type: entryResume, Campaign: spec.ID, Digest: st.Digest, Slot: -1,
	}); err != nil {
		return nil, sum, err
	}

	rigs := make([]*rig.Rig, len(spec.Serials))
	progress := make(map[int]fleet.ShardProgress, len(spec.Serials))
	images := make([]string, len(spec.Serials))
	clocks := make([]float64, len(spec.Serials))
	for i, ser := range spec.Serials {
		sr := st.Slots[i]
		switch {
		case sr.Record != nil:
			// Finished: the rig is only a capacity placeholder for stripe
			// planning; the encode short-circuits on the record.
			progress[i] = fleet.ShardProgress{Record: sr.Record}
			images[i] = sr.FinalImage
			clocks[i] = sr.FinalClock
		case restores[i].haveCkpt:
			r := rig.New(restores[i].dev)
			if err := r.RestoreState(*restores[i].ckpt.Rig); err != nil {
				return nil, sum, fmt.Errorf("campaign: slot %d rig state: %w", i, err)
			}
			rigs[i] = r
			progress[i] = fleet.ShardProgress{Prepared: true, AppliedHours: restores[i].ckpt.Applied}
			continue
		}
		// From scratch (or placeholder): device identity is (model,
		// serial), so the rebuild replays the crashed run bit-for-bit.
		d, err := device.New(model, ser)
		if err != nil {
			return nil, sum, err
		}
		rigs[i] = rig.New(d)
	}
	res, err := run(ctx, dir, spec, opts, j, rigs, progress, images, clocks)
	return res, sum, err
}

// offsetOf returns the byte offset just past record used-1 (0 when
// nothing was used).
func offsetOf(sal wal.Salvage, used int) int64 {
	if used == 0 {
		return 0
	}
	if used-1 < len(sal.Offsets) {
		return sal.Offsets[used-1]
	}
	return sal.ValidLen
}

// run drives the striped encode with journaling hooks, then seals the
// campaign: result.json first, done record last, so a done record
// guarantees a readable result.
func run(ctx context.Context, dir string, spec Spec, opts Options, j *Journal,
	rigs []*rig.Rig, progress map[int]fleet.ShardProgress, images []string, clocks []float64) (*Result, error) {
	fsys := storage.Default(opts.FS)
	codec, err := spec.codec()
	if err != nil {
		return nil, err
	}
	copts := core.Options{
		Codec: codec, Key: opts.Key,
		StressHours: spec.StressHours, Captures: spec.Captures,
	}
	// Per-slot slice counters for the checkpoint cadence. Each slot's
	// hooks fire from that slot's shard goroutine only, so distinct
	// indices need no lock.
	sliceCount := make([]int, len(rigs))
	sopts := fleet.StripeOptions{
		Breakers:   opts.Breakers,
		SliceHours: spec.SliceHours,
		Progress: func(slot int) fleet.ShardProgress {
			return progress[slot]
		},
		OnPrepared: func(slot int, r *rig.Rig) error {
			return j.Append(Entry{Type: entryPrepared, Campaign: spec.ID, Slot: slot})
		},
		OnSlice: func(slot int, r *rig.Rig, applied, total float64) error {
			if err := j.Append(Entry{
				Type: entrySlice, Campaign: spec.ID, Slot: slot,
				Applied: applied, Total: total,
			}); err != nil {
				return err
			}
			sliceCount[slot]++
			if sliceCount[slot]%spec.CheckpointEvery != 0 && applied < total {
				return nil
			}
			return checkpointSlot(j, fsys, dir, slot, r, applied)
		},
		OnEncoded: func(slot int, r *rig.Rig, rec *core.Record) error {
			name := fmt.Sprintf("slot-%d-final.img", slot)
			if err := j.Gate(fmt.Sprintf("image/final/%d", slot)); err != nil {
				return err
			}
			if err := r.Device().SaveFileFS(fsys, filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("%w: final image for slot %d: %w", ErrJournalIO, slot, err)
			}
			state := r.State()
			if err := j.Append(Entry{
				Type: entryEncoded, Campaign: spec.ID, Slot: slot,
				Applied: state.ClockHours, Image: name, Rig: &state, Record: rec,
			}); err != nil {
				return err
			}
			images[slot] = name
			clocks[slot] = state.ClockHours
			return nil
		},
	}
	striped, err := fleet.StripeWithOptions(ctx, rigs, spec.Message, copts, sopts)
	if err != nil {
		// The journal already holds everything that durably happened;
		// the campaign is resumable after the cause is fixed.
		return nil, err
	}

	res := &Result{
		Campaign:     spec.ID,
		MessageBytes: striped.MessageBytes,
		SegmentSizes: striped.SegmentSizes,
		Records:      make([]*core.Record, len(rigs)),
		Images:       images,
		Quarantined:  opts.Breakers.Quarantined(),
	}
	for _, sh := range striped.Shards {
		res.Records[sh.Index] = sh.Record
	}
	// Slots resumed as already-finished carry their journaled bench
	// clock; everything else reads its (driven or untouched) rig.
	for i, r := range rigs {
		if clocks[i] > 0 {
			res.EquivalentHours += clocks[i]
		} else {
			res.EquivalentHours += r.ClockHours()
		}
	}
	resJSON, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := j.Gate("result"); err != nil {
		return nil, err
	}
	if err := ioatomic.WriteFileSealed(fsys, filepath.Join(dir, resultFile), resJSON, 0o644); err != nil {
		return nil, fmt.Errorf("%w: persist result: %w", ErrJournalIO, err)
	}
	if err := j.Append(Entry{Type: entryDone, Campaign: spec.ID, Slot: -1}); err != nil {
		return nil, err
	}
	return res, nil
}

// checkpointSlot makes a slot's position durable: atomic device image
// first, then the journal record that makes the checkpoint *count*. A
// crash between the two leaves an orphan image the replay never
// references — harmless, and overwritten identically on the rerun.
func checkpointSlot(j *Journal, fsys storage.FS, dir string, slot int, r *rig.Rig, applied float64) error {
	name := fmt.Sprintf("slot-%d-ckpt-%.4fh.img", slot, applied)
	if err := j.Gate(fmt.Sprintf("image/ckpt/%d", slot)); err != nil {
		return err
	}
	if err := r.Device().SaveFileFS(fsys, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("%w: checkpoint image for slot %d: %w", ErrJournalIO, slot, err)
	}
	state := r.State()
	return j.Append(Entry{
		Type: entryCheckpoint, Slot: slot,
		Applied: applied, Image: name, Rig: &state,
	})
}

// LoadSpec reads and validates dir's spec.json exactly the way Resume
// does (defaults applied before validation), so offline tools like
// ibfsck reproduce resume's accept/reject decision — including the
// schedule digest a journal must match.
func LoadSpec(fsys storage.FS, dir string) (Spec, error) {
	return readSpec(fsys, dir)
}

func readSpec(fsys storage.FS, dir string) (Spec, error) {
	var spec Spec
	b, err := storage.Default(fsys).ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return spec, fmt.Errorf("campaign: %w", err)
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return spec, fmt.Errorf("campaign: parse %s: %w", specFile, err)
	}
	spec = spec.withDefaults()
	return spec, spec.Validate()
}

func readResult(fsys storage.FS, dir string) (*Result, error) {
	b, _, err := ioatomic.ReadFileSealed(fsys, filepath.Join(dir, resultFile))
	if err != nil {
		return nil, fmt.Errorf("campaign: finished campaign without a result: %w", err)
	}
	var res Result
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("campaign: parse %s: %w", resultFile, err)
	}
	return &res, nil
}

// rebuildResult reconstructs result.json for a campaign whose done
// record is journaled but whose result file the disk has since eaten.
// Everything in the result is a deterministic function of the spec and
// the journal's encoded records — except the breaker quarantine list,
// which is operational telemetry and is lost. The rebuilt file is
// re-persisted (sealed) so later readers get it directly.
func rebuildResult(fsys storage.FS, dir string, spec Spec, st *ReplayState) (*Result, error) {
	codec, err := spec.codec()
	if err != nil {
		return nil, err
	}
	model, err := device.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	sram := make([]int, len(spec.Serials))
	for i := range sram {
		sram[i] = model.SRAMBytes
	}
	sizes, err := fleet.PlanSegments(sram, len(spec.Message), codec)
	if err != nil {
		return nil, fmt.Errorf("campaign: rebuild result: %w", err)
	}
	res := &Result{
		Campaign:     spec.ID,
		MessageBytes: len(spec.Message),
		SegmentSizes: sizes,
		Records:      make([]*core.Record, len(st.Slots)),
		Images:       make([]string, len(st.Slots)),
	}
	for i := range st.Slots {
		sr := st.Slots[i]
		res.Records[i] = sr.Record
		res.Images[i] = sr.FinalImage
		res.EquivalentHours += sr.FinalClock
	}
	resJSON, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := ioatomic.WriteFileSealed(fsys, filepath.Join(dir, resultFile), resJSON, 0o644); err != nil {
		return nil, fmt.Errorf("%w: rebuild result: %w", ErrJournalIO, err)
	}
	return res, nil
}

// DecodeResult reloads a finished campaign's final device images and
// gathers the message back — the receiving party's side of the
// campaign, driven purely from the campaign directory plus the key.
func DecodeResult(ctx context.Context, dir string, key *stegocrypt.Key) ([]byte, error) {
	spec, err := readSpec(nil, dir)
	if err != nil {
		return nil, err
	}
	res, err := readResult(nil, dir)
	if err != nil {
		return nil, err
	}
	codec, err := spec.codec()
	if err != nil {
		return nil, err
	}
	striped := &fleet.StripeResult{
		MessageBytes: res.MessageBytes,
		SegmentSizes: res.SegmentSizes,
	}
	var rigs []*rig.Rig
	for slot, rec := range res.Records {
		if rec == nil {
			continue
		}
		if slot >= len(res.Images) || res.Images[slot] == "" {
			return nil, fmt.Errorf("campaign: slot %d has a record but no image", slot)
		}
		d, err := device.LoadFile(filepath.Join(dir, res.Images[slot]))
		if err != nil {
			return nil, err
		}
		rigs = append(rigs, rig.New(d))
		striped.Shards = append(striped.Shards, fleet.Shard{Index: slot, Record: rec})
	}
	copts := core.Options{Codec: codec, Key: key, Captures: spec.Captures}
	rep, err := fleet.GatherContext(ctx, rigs, striped, copts)
	if err != nil {
		return nil, err
	}
	if !rep.Complete {
		return nil, rep.Err()
	}
	return rep.Message, nil
}
