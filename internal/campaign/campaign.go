// Package campaign is the crash-safe supervisor for long imprinting
// runs. An Invisible Bits encode is a multi-day thermal soak (§5.2's
// accelerated-aging schedule); a host crash, power cut, or operator
// mistake 40 hours in must not restart the campaign from zero. The
// supervisor dices every carrier's soak into slices, records each phase
// transition in a write-ahead journal (journal.go), and checkpoints
// device images atomically at slice boundaries, so Resume can rebuild
// the fleet at the exact slice the crash interrupted and produce a
// result bit-identical to an uninterrupted run.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"invisiblebits/internal/cliutil"
	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/fleet"
	"invisiblebits/internal/ioatomic"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/stegocrypt"
)

const (
	journalFile = "journal.jsonl"
	specFile    = "spec.json"
	resultFile  = "result.json"
)

// Spec is the durable description of a campaign — everything needed to
// rebuild the fleet and the schedule after a crash. Keys deliberately
// never appear here: spec.json sits next to the device images, and the
// threat model (paper §6) assumes the adversary can read the bench.
type Spec struct {
	// ID names the campaign; it is stamped into every journal record.
	ID string `json:"id"`
	// Model is the device model every carrier instantiates.
	Model string `json:"model"`
	// Serials lists one carrier serial per stripe slot. Device identity
	// is a pure function of (model, serial), which is what makes
	// from-scratch slot rebuilds deterministic.
	Serials []string `json:"serials"`
	// Message is the plaintext to stripe across the fleet.
	Message []byte `json:"message"`
	// Codec is the ECC layer in cliutil vocabulary ("paper", "rep5",
	// "none", ...); empty means none.
	Codec string `json:"codec,omitempty"`
	// StressHours overrides the model's Table 4 soak length when > 0.
	StressHours float64 `json:"stress_hours,omitempty"`
	// Captures is the decode majority-vote burst; 0 means the default.
	Captures int `json:"captures,omitempty"`
	// SliceHours is the journaling granularity: one journal record (and
	// potentially one checkpoint) per slice. 0 means DefaultSliceHours.
	SliceHours float64 `json:"slice_hours,omitempty"`
	// CheckpointEvery saves a device image every N slices; 0 means
	// DefaultCheckpointEvery.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Campaign defaults: slice hourly, checkpoint every other slice.
const (
	DefaultSliceHours      = 1.0
	DefaultCheckpointEvery = 2
)

func (s Spec) withDefaults() Spec {
	if s.SliceHours <= 0 {
		s.SliceHours = DefaultSliceHours
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = DefaultCheckpointEvery
	}
	return s
}

// Validate rejects structurally unusable specs: bad IDs, duplicate or
// empty serials, empty messages, unknown models or codecs. The
// scheduler calls it at admission time so a doomed campaign is rejected
// at Submit rather than burning chamber hours first.
func (s Spec) Validate() error {
	if s.ID == "" || strings.ContainsAny(s.ID, "/\\") {
		return fmt.Errorf("campaign: invalid campaign ID %q", s.ID)
	}
	if len(s.Serials) == 0 {
		return errors.New("campaign: no carrier serials")
	}
	seen := map[string]bool{}
	for _, ser := range s.Serials {
		if ser == "" || seen[ser] {
			return fmt.Errorf("campaign: duplicate or empty serial %q", ser)
		}
		seen[ser] = true
	}
	if len(s.Message) == 0 {
		return core.ErrEmptyMessage
	}
	if _, err := device.ByName(s.Model); err != nil {
		return err
	}
	if _, err := s.codec(); err != nil {
		return err
	}
	return nil
}

func (s Spec) codec() (ecc.Codec, error) {
	if s.Codec == "" {
		return nil, nil
	}
	return cliutil.ParseCodec(s.Codec)
}

// ScheduleDigest fingerprints everything the soak schedule depends on.
// The journal's begin record carries it, and Resume refuses to continue
// a journal whose digest does not match the spec on disk — a swapped
// message, codec, or fleet would otherwise silently produce carriers
// that decode to garbage.
func (s Spec) ScheduleDigest() string {
	s = s.withDefaults()
	msgSum := sha256.Sum256(s.Message)
	canonical := struct {
		ID              string
		Model           string
		Serials         []string
		MessageSHA256   string
		MessageBytes    int
		Codec           string
		StressHours     float64
		Captures        int
		SliceHours      float64
		CheckpointEvery int
	}{
		s.ID, s.Model, s.Serials, hex.EncodeToString(msgSum[:]), len(s.Message),
		s.Codec, s.StressHours, s.Captures, s.SliceHours, s.CheckpointEvery,
	}
	b, err := json.Marshal(canonical)
	if err != nil {
		// Marshal of a struct of strings and numbers cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Options configures a Run or Resume.
type Options struct {
	// Key enables the encryption layer (held in memory only, never
	// persisted to the campaign directory).
	Key *stegocrypt.Key
	// Breakers mounts per-device circuit breakers on the fleet pass.
	Breakers *fleet.BreakerSet
	// Hook is the crash-test kill-point hook; every journal append and
	// image write consults it. Nil in production.
	Hook faults.Hook
}

// Result is the campaign's durable outcome (result.json).
type Result struct {
	Campaign     string `json:"campaign"`
	MessageBytes int    `json:"message_bytes"`
	SegmentSizes []int  `json:"segment_sizes"`
	// Records[i] is slot i's encode record (nil for zero-width slots).
	Records []*core.Record `json:"records"`
	// Images[i] is slot i's final device image file, relative to the
	// campaign directory.
	Images []string `json:"images"`
	// EquivalentHours is the summed simulated bench time across the
	// fleet, retries and backoff included.
	EquivalentHours float64 `json:"equivalent_hours"`
	// Quarantined lists carriers the breaker set wrote off (empty
	// without Options.Breakers).
	Quarantined []string `json:"quarantined,omitempty"`
}

// Run starts a fresh campaign in dir: persists spec.json, opens the
// journal, and drives the striped encode to completion. A directory
// that already holds a journal is refused — that campaign's truth is on
// disk, and Resume is the only safe way back in.
func Run(ctx context.Context, dir string, spec Spec, opts Options) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalFile)); err == nil {
		return nil, fmt.Errorf("campaign: %s already holds a journal; use Resume", dir)
	}
	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := ioatomic.WriteFile(filepath.Join(dir, specFile), specJSON, 0o644); err != nil {
		return nil, err
	}
	j, err := createJournal(filepath.Join(dir, journalFile), opts.Hook)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	return start(ctx, dir, spec, opts, j)
}

// start begins (or re-begins, after a crash that predated the begin
// record) a campaign on an open journal: append begin, build the fleet
// from scratch, drive it.
func start(ctx context.Context, dir string, spec Spec, opts Options, j *Journal) (*Result, error) {
	if err := j.Append(Entry{
		Type: entryBegin, Campaign: spec.ID, Digest: spec.ScheduleDigest(),
		Slots: len(spec.Serials), Slot: -1,
	}); err != nil {
		return nil, err
	}
	model, err := device.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	rigs := make([]*rig.Rig, len(spec.Serials))
	for i, ser := range spec.Serials {
		d, err := device.New(model, ser)
		if err != nil {
			return nil, err
		}
		rigs[i] = rig.New(d)
	}
	n := len(rigs)
	return run(ctx, dir, spec, opts, j, rigs, nil, make([]string, n), make([]float64, n))
}

// Resume re-enters a crashed campaign: it re-reads spec.json, replays
// the journal (verifying the schedule digest), rebuilds every slot from
// its latest checkpoint — finished slots keep their records, slots that
// never reached a checkpoint restart from scratch, deterministically —
// and drives the remaining slices. Resuming a finished campaign simply
// returns its result.
func Resume(ctx context.Context, dir string, opts Options) (*Result, error) {
	spec, err := readSpec(dir)
	if err != nil {
		return nil, err
	}
	entries, validLen, err := ReadJournal(filepath.Join(dir, journalFile))
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		// The crash predated the begin record: nothing durable happened,
		// so the resume IS the first run.
		j, err := openJournal(filepath.Join(dir, journalFile), opts.Hook, 0, 0)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		return start(ctx, dir, spec, opts, j)
	}
	st, err := Replay(entries)
	if err != nil {
		return nil, err
	}
	if st.Campaign != spec.ID {
		return nil, fmt.Errorf("campaign: journal belongs to %q, spec is %q", st.Campaign, spec.ID)
	}
	if digest := spec.ScheduleDigest(); st.Digest != digest {
		return nil, fmt.Errorf("campaign: schedule digest mismatch: journal %s…, spec %s… — the spec changed under a live campaign",
			st.Digest[:12], digest[:12])
	}
	if len(st.Slots) != len(spec.Serials) {
		return nil, fmt.Errorf("campaign: journal plans %d slots, spec has %d", len(st.Slots), len(spec.Serials))
	}
	if st.Done {
		return readResult(dir)
	}

	j, err := openJournal(filepath.Join(dir, journalFile), opts.Hook, st.NextSeq, validLen)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	if err := j.Append(Entry{
		Type: entryResume, Campaign: spec.ID, Digest: st.Digest, Slot: -1,
	}); err != nil {
		return nil, err
	}

	model, err := device.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	rigs := make([]*rig.Rig, len(spec.Serials))
	progress := make(map[int]fleet.ShardProgress, len(spec.Serials))
	images := make([]string, len(spec.Serials))
	clocks := make([]float64, len(spec.Serials))
	for i, ser := range spec.Serials {
		sr := st.Slots[i]
		switch {
		case sr.Record != nil:
			// Finished: the rig is only a capacity placeholder for stripe
			// planning; the encode short-circuits on the record.
			progress[i] = fleet.ShardProgress{Record: sr.Record}
			images[i] = sr.FinalImage
			clocks[i] = sr.FinalClock
		case sr.CkptImage != "":
			d, err := device.LoadFile(filepath.Join(dir, sr.CkptImage))
			if err != nil {
				return nil, fmt.Errorf("campaign: slot %d checkpoint: %w", i, err)
			}
			r := rig.New(d)
			if err := r.RestoreState(*sr.CkptRig); err != nil {
				return nil, fmt.Errorf("campaign: slot %d rig state: %w", i, err)
			}
			rigs[i] = r
			progress[i] = fleet.ShardProgress{Prepared: true, AppliedHours: sr.CkptApplied}
			continue
		}
		// From scratch (or placeholder): device identity is (model,
		// serial), so the rebuild replays the crashed run bit-for-bit.
		d, err := device.New(model, ser)
		if err != nil {
			return nil, err
		}
		rigs[i] = rig.New(d)
	}
	return run(ctx, dir, spec, opts, j, rigs, progress, images, clocks)
}

// run drives the striped encode with journaling hooks, then seals the
// campaign: result.json first, done record last, so a done record
// guarantees a readable result.
func run(ctx context.Context, dir string, spec Spec, opts Options, j *Journal,
	rigs []*rig.Rig, progress map[int]fleet.ShardProgress, images []string, clocks []float64) (*Result, error) {
	codec, err := spec.codec()
	if err != nil {
		return nil, err
	}
	copts := core.Options{
		Codec: codec, Key: opts.Key,
		StressHours: spec.StressHours, Captures: spec.Captures,
	}
	// Per-slot slice counters for the checkpoint cadence. Each slot's
	// hooks fire from that slot's shard goroutine only, so distinct
	// indices need no lock.
	sliceCount := make([]int, len(rigs))
	sopts := fleet.StripeOptions{
		Breakers:   opts.Breakers,
		SliceHours: spec.SliceHours,
		Progress: func(slot int) fleet.ShardProgress {
			return progress[slot]
		},
		OnPrepared: func(slot int, r *rig.Rig) error {
			return j.Append(Entry{Type: entryPrepared, Campaign: spec.ID, Slot: slot})
		},
		OnSlice: func(slot int, r *rig.Rig, applied, total float64) error {
			if err := j.Append(Entry{
				Type: entrySlice, Campaign: spec.ID, Slot: slot,
				Applied: applied, Total: total,
			}); err != nil {
				return err
			}
			sliceCount[slot]++
			if sliceCount[slot]%spec.CheckpointEvery != 0 && applied < total {
				return nil
			}
			return checkpointSlot(j, dir, slot, r, applied)
		},
		OnEncoded: func(slot int, r *rig.Rig, rec *core.Record) error {
			name := fmt.Sprintf("slot-%d-final.img", slot)
			if err := j.Gate(fmt.Sprintf("image/final/%d", slot)); err != nil {
				return err
			}
			if err := r.Device().SaveFile(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("%w: final image for slot %d: %w", ErrJournalIO, slot, err)
			}
			state := r.State()
			if err := j.Append(Entry{
				Type: entryEncoded, Campaign: spec.ID, Slot: slot,
				Applied: state.ClockHours, Image: name, Rig: &state, Record: rec,
			}); err != nil {
				return err
			}
			images[slot] = name
			clocks[slot] = state.ClockHours
			return nil
		},
	}
	striped, err := fleet.StripeWithOptions(ctx, rigs, spec.Message, copts, sopts)
	if err != nil {
		// The journal already holds everything that durably happened;
		// the campaign is resumable after the cause is fixed.
		return nil, err
	}

	res := &Result{
		Campaign:     spec.ID,
		MessageBytes: striped.MessageBytes,
		SegmentSizes: striped.SegmentSizes,
		Records:      make([]*core.Record, len(rigs)),
		Images:       images,
		Quarantined:  opts.Breakers.Quarantined(),
	}
	for _, sh := range striped.Shards {
		res.Records[sh.Index] = sh.Record
	}
	// Slots resumed as already-finished carry their journaled bench
	// clock; everything else reads its (driven or untouched) rig.
	for i, r := range rigs {
		if clocks[i] > 0 {
			res.EquivalentHours += clocks[i]
		} else {
			res.EquivalentHours += r.ClockHours()
		}
	}
	resJSON, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := j.Gate("result"); err != nil {
		return nil, err
	}
	if err := ioatomic.WriteFile(filepath.Join(dir, resultFile), resJSON, 0o644); err != nil {
		return nil, fmt.Errorf("%w: persist result: %w", ErrJournalIO, err)
	}
	if err := j.Append(Entry{Type: entryDone, Campaign: spec.ID, Slot: -1}); err != nil {
		return nil, err
	}
	return res, nil
}

// checkpointSlot makes a slot's position durable: atomic device image
// first, then the journal record that makes the checkpoint *count*. A
// crash between the two leaves an orphan image the replay never
// references — harmless, and overwritten identically on the rerun.
func checkpointSlot(j *Journal, dir string, slot int, r *rig.Rig, applied float64) error {
	name := fmt.Sprintf("slot-%d-ckpt-%.4fh.img", slot, applied)
	if err := j.Gate(fmt.Sprintf("image/ckpt/%d", slot)); err != nil {
		return err
	}
	if err := r.Device().SaveFile(filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("%w: checkpoint image for slot %d: %w", ErrJournalIO, slot, err)
	}
	state := r.State()
	return j.Append(Entry{
		Type: entryCheckpoint, Slot: slot,
		Applied: applied, Image: name, Rig: &state,
	})
}

func readSpec(dir string) (Spec, error) {
	var spec Spec
	b, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return spec, fmt.Errorf("campaign: %w", err)
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return spec, fmt.Errorf("campaign: parse %s: %w", specFile, err)
	}
	spec = spec.withDefaults()
	return spec, spec.Validate()
}

func readResult(dir string) (*Result, error) {
	b, err := os.ReadFile(filepath.Join(dir, resultFile))
	if err != nil {
		return nil, fmt.Errorf("campaign: finished campaign without a result: %w", err)
	}
	var res Result
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("campaign: parse %s: %w", resultFile, err)
	}
	return &res, nil
}

// DecodeResult reloads a finished campaign's final device images and
// gathers the message back — the receiving party's side of the
// campaign, driven purely from the campaign directory plus the key.
func DecodeResult(ctx context.Context, dir string, key *stegocrypt.Key) ([]byte, error) {
	spec, err := readSpec(dir)
	if err != nil {
		return nil, err
	}
	res, err := readResult(dir)
	if err != nil {
		return nil, err
	}
	codec, err := spec.codec()
	if err != nil {
		return nil, err
	}
	striped := &fleet.StripeResult{
		MessageBytes: res.MessageBytes,
		SegmentSizes: res.SegmentSizes,
	}
	var rigs []*rig.Rig
	for slot, rec := range res.Records {
		if rec == nil {
			continue
		}
		if slot >= len(res.Images) || res.Images[slot] == "" {
			return nil, fmt.Errorf("campaign: slot %d has a record but no image", slot)
		}
		d, err := device.LoadFile(filepath.Join(dir, res.Images[slot]))
		if err != nil {
			return nil, err
		}
		rigs = append(rigs, rig.New(d))
		striped.Shards = append(striped.Shards, fleet.Shard{Index: slot, Record: rec})
	}
	copts := core.Options{Codec: codec, Key: key, Captures: spec.Captures}
	rep, err := fleet.GatherContext(ctx, rigs, striped, copts)
	if err != nil {
		return nil, err
	}
	if !rep.Complete {
		return nil, rep.Err()
	}
	return rep.Message, nil
}
