package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/stegocrypt"
)

// testSpec builds the canonical matrix campaign: two MSP430G2553
// carriers (the smallest, fastest device), the paper codec, the default
// 10h soak diced into 2.5h slices with a checkpoint every second slice.
// The message is sized so the stripe genuinely spans both carriers.
func testSpec(t *testing.T, id string) Spec {
	t.Helper()
	spec := Spec{
		ID:              id,
		Model:           "MSP430G2553",
		Serials:         []string{"cm-0", "cm-1"},
		Codec:           "paper",
		SliceHours:      2.5,
		CheckpointEvery: 2,
	}
	codec, err := spec.codec()
	if err != nil {
		t.Fatal(err)
	}
	m, err := device.ByName(spec.Model)
	if err != nil {
		t.Fatal(err)
	}
	perDevice := core.MaxMessageBytes(m.SRAMBytes, codec)
	msg := make([]byte, perDevice+7) // slot 0 full, slot 1 carries 7 bytes
	for i := range msg {
		msg[i] = byte(i*13 + 5)
	}
	spec.Message = msg
	return spec
}

func testKey() *stegocrypt.Key {
	k := stegocrypt.KeyFromPassphrase("campaign-matrix")
	return &k
}

// readImages loads the final image bytes of every slot with a record.
func readImages(t *testing.T, dir string, res *Result) map[int][]byte {
	t.Helper()
	out := map[int][]byte{}
	for slot, rec := range res.Records {
		if rec == nil {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, res.Images[slot]))
		if err != nil {
			t.Fatalf("slot %d final image: %v", slot, err)
		}
		out[slot] = b
	}
	return out
}

func assertSameOutcome(t *testing.T, label, dir string, res *Result, refRes *Result, refImages map[int][]byte) {
	t.Helper()
	if !reflect.DeepEqual(res, refRes) {
		t.Fatalf("%s: result differs from uninterrupted run:\n got %+v\nwant %+v", label, res, refRes)
	}
	images := readImages(t, dir, res)
	if len(images) != len(refImages) {
		t.Fatalf("%s: %d final images, want %d", label, len(images), len(refImages))
	}
	for slot, ref := range refImages {
		if !bytes.Equal(images[slot], ref) {
			t.Fatalf("%s: slot %d final image differs from uninterrupted run", label, slot)
		}
	}
}

// TestCrashMatrixResumeEquivalence is the tentpole acceptance test: the
// campaign is killed at EVERY kill point in turn — every journal append
// and every image write — resumed with no further interference, and the
// outcome must be bit-identical to the uninterrupted reference run:
// same result (records, layout, bench hours), same final device images,
// same decoded message.
func TestCrashMatrixResumeEquivalence(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()

	spec := testSpec(t, "matrix")
	refDir := filepath.Join(base, "ref")
	refRes, err := Run(ctx, refDir, spec, Options{Key: key})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refImages := readImages(t, refDir, refRes)
	got, err := DecodeResult(ctx, refDir, key)
	if err != nil {
		t.Fatalf("reference decode: %v", err)
	}
	if !bytes.Equal(got, spec.Message) {
		t.Fatal("reference campaign does not decode to its message")
	}

	points := 0
	for k := 0; ; k++ {
		dir := filepath.Join(base, fmt.Sprintf("k%03d", k))
		ks := faults.NewKillSwitch(k)
		_, err := Run(ctx, dir, spec, Options{Key: key, Hook: ks.Hook()})
		if !ks.Fired() {
			// The switch outlived the campaign: k is past the last kill
			// point and this run completed clean.
			if err != nil {
				t.Fatalf("unkilled run failed: %v", err)
			}
			points = k
			break
		}
		if err == nil {
			t.Fatalf("kill point %d fired but Run reported success", k)
		}
		if !errors.Is(err, faults.ErrKilled) {
			t.Fatalf("kill point %d surfaced as %v, want ErrKilled in the chain", k, err)
		}
		res, err := Resume(ctx, dir, Options{Key: key})
		if err != nil {
			t.Fatalf("resume after kill point %d: %v", k, err)
		}
		label := fmt.Sprintf("kill point %d", k)
		assertSameOutcome(t, label, dir, res, refRes, refImages)
		if k%5 == 0 {
			got, err := DecodeResult(ctx, dir, key)
			if err != nil || !bytes.Equal(got, spec.Message) {
				t.Fatalf("%s: decode after resume: %v", label, err)
			}
		}
	}
	// The matrix is only meaningful if it actually walked the journal:
	// 2 slots × (prepare + 4 slices + checkpoints + final) plus the
	// campaign-level records is well over a dozen points.
	if points < 15 {
		t.Fatalf("crash matrix covered only %d kill points", points)
	}
	t.Logf("crash matrix: %d kill points, all resumed bit-identically", points)
}

// TestJournalIOFailureFailsClosedTyped pins the durability-failure
// contract (the crash matrix's sibling: instead of dying at a kill
// point, the disk refuses an atomic rename): the campaign must fail
// closed with an error classifying as ErrJournalIO, and once the
// obstruction is cleared, Resume must still reach the bit-identical
// outcome — an I/O failure is just another crash as far as the journal
// is concerned.
func TestJournalIOFailureFailsClosedTyped(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()
	spec := testSpec(t, "journalio")

	refDir := filepath.Join(base, "ref")
	refRes, err := Run(ctx, refDir, spec, Options{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	refImages := readImages(t, refDir, refRes)

	// A directory squatting on slot 0's final-image name makes the
	// atomic rename fail (rename(2) cannot replace a directory with a
	// file — even for root, unlike permission bits).
	dir := filepath.Join(base, "blocked")
	if err := os.MkdirAll(filepath.Join(dir, "slot-0-final.img"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err = Run(ctx, dir, spec, Options{Key: key})
	if err == nil {
		t.Fatal("campaign succeeded with an unwritable final image path")
	}
	if !errors.Is(err, ErrJournalIO) {
		t.Fatalf("durability failure surfaced as %v, want ErrJournalIO in the chain", err)
	}

	// Clear the obstruction; the journal holds everything that durably
	// happened, so Resume completes bit-identically.
	if err := os.Remove(filepath.Join(dir, "slot-0-final.img")); err != nil {
		t.Fatal(err)
	}
	res, err := Resume(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("resume after I/O failure: %v", err)
	}
	assertSameOutcome(t, "post-IO-failure resume", dir, res, refRes, refImages)
	got, err := DecodeResult(ctx, dir, key)
	if err != nil || !bytes.Equal(got, spec.Message) {
		t.Fatalf("decode after I/O-failure resume: %v", err)
	}
}

// TestDoubleCrashResume kills the campaign, then kills the *resume*,
// then resumes again — dying twice must be no worse than dying once.
func TestDoubleCrashResume(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()
	spec := testSpec(t, "double")

	refDir := filepath.Join(base, "ref")
	refRes, err := Run(ctx, refDir, spec, Options{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	refImages := readImages(t, refDir, refRes)

	dir := filepath.Join(base, "crashed")
	ks := faults.NewKillSwitch(7)
	if _, err := Run(ctx, dir, spec, Options{Key: key, Hook: ks.Hook()}); err == nil {
		t.Fatal("killed run succeeded")
	}
	ks2 := faults.NewKillSwitch(4)
	if _, err := Resume(ctx, dir, Options{Key: key, Hook: ks2.Hook()}); err == nil {
		t.Fatal("killed resume succeeded")
	}
	if !ks2.Fired() {
		t.Fatal("second kill switch never fired — resume had fewer than 4 kill points")
	}
	res, err := Resume(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	assertSameOutcome(t, "double crash", dir, res, refRes, refImages)

	// Resuming a finished campaign is idempotent: it reads the sealed
	// result instead of re-running anything.
	again, err := Resume(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("resume of finished campaign: %v", err)
	}
	if !reflect.DeepEqual(again, refRes) {
		t.Fatalf("idempotent resume returned a different result: %+v", again)
	}
}

// TestResumeFailsClosed pins the supervisor's refusal modes: a swapped
// spec under a live journal, a tampered journal, and re-Running a
// started campaign.
func TestResumeFailsClosed(t *testing.T) {
	ctx := context.Background()
	key := testKey()
	base := t.TempDir()
	spec := testSpec(t, "failclosed")

	dir := filepath.Join(base, "c")
	ks := faults.NewKillSwitch(9)
	if _, err := Run(ctx, dir, spec, Options{Key: key, Hook: ks.Hook()}); err == nil {
		t.Fatal("killed run succeeded")
	}

	// Re-Run on a started campaign is refused.
	if _, err := Run(ctx, dir, spec, Options{Key: key}); err == nil {
		t.Fatal("Run re-entered a campaign that already has a journal")
	}

	// A spec whose schedule changed under the journal is refused.
	tampered := spec
	tampered.SliceHours = 5
	b, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		t.Fatal(err)
	}
	writeSpecJSON(t, dir, tampered)
	if _, err := Resume(ctx, dir, Options{Key: key}); err == nil {
		t.Fatal("resume accepted a foreign schedule digest")
	}
	if err := os.WriteFile(filepath.Join(dir, specFile), b, 0o644); err != nil {
		t.Fatal(err)
	}

	// A journal with a duplicated record is rejected by strict replay —
	// and survived by salvage resume, which cuts the corrupt suffix and
	// deterministically redoes the lost work instead of bricking.
	jpath := filepath.Join(dir, journalFile)
	journal, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(journal, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short to tamper: %d lines", len(lines))
	}
	dup := append(append([]byte(nil), journal...), lines[2]...)
	if err := os.WriteFile(jpath, dup, 0o644); err != nil {
		t.Fatal(err)
	}
	dupEntries, _, err := ReadJournal(jpath)
	if err != nil {
		t.Fatalf("duplicated record should pass frame verification: %v", err)
	}
	if _, err := Replay(dupEntries); err == nil {
		t.Fatal("strict replay accepted a journal with a duplicated record")
	}
	res, sum, err := ResumeSalvage(ctx, dir, Options{Key: key})
	if err != nil {
		t.Fatalf("salvage resume over a duplicated record: %v", err)
	}
	if res == nil || sum.DroppedRecords != 1 || !sum.Degraded() {
		t.Fatalf("salvage summary did not report the cut: %+v", sum)
	}
	if err := os.WriteFile(jpath, journal, 0o644); err != nil {
		t.Fatal(err)
	}

	// A torn tail, by contrast, is the expected crash signature: cut the
	// last record in half and the campaign still resumes to the end.
	torn := journal[:len(journal)-len(lines[len(lines)-1])/2-1]
	if err := os.WriteFile(jpath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(ctx, dir, Options{Key: key}); err != nil {
		t.Fatalf("resume with a torn journal tail: %v", err)
	}
}

func writeSpecJSON(t *testing.T, dir string, spec Spec) {
	t.Helper()
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, specFile), b, 0o644); err != nil {
		t.Fatal(err)
	}
}
