package campaign

import (
	"fmt"

	"invisiblebits/internal/core"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/storage"
	"invisiblebits/internal/wal"
)

// The journal is the campaign's write-ahead log: one framed JSONL
// record per phase transition, fsynced before the supervisor takes the
// next step, so a crash at ANY point leaves a prefix of the truth on
// disk. Resume replays that prefix against the checkpointed device
// images and re-enters the soak at the exact slice boundary the journal
// proves was reached. The append/fsync/poison/torn-tail machinery lives
// in internal/wal (shared with the scheduler's service-scope journal);
// this file owns the campaign's record grammar and its replay.
//
// Replay fails closed: a journal with gaps, duplicates, out-of-order
// slices, a foreign schedule digest, or records for impossible slots is
// rejected outright — the only tolerated damage is a torn final line,
// the signature of dying mid-append, which is dropped (that record's
// effects were by construction not yet acted on). ReplaySalvage is the
// lenient variant behind degraded resume: it replays the longest valid
// prefix and reports where validation stopped, which is safe because
// every slice of lost work is deterministically redone.

// ErrJournalIO marks a failure of the campaign's durability layer — a
// journal append that could not be written or fsynced, an image or
// result file whose atomic rename failed. The campaign fails closed on
// it: progress that cannot be made durable must not be acted on, or the
// next resume would replay a truth the disk never held. Test with
// errors.Is; it aliases wal.ErrJournalIO so scheduler- and
// campaign-scope failures classify identically.
var ErrJournalIO = wal.ErrJournalIO

// ErrCorrupt marks journal bytes that failed verification mid-file —
// re-exported from wal so campaign callers can classify storage
// corruption without importing the journal internals. Test with
// errors.Is; errors.As against *wal.CorruptError recovers the record
// index and salvage point.
var ErrCorrupt = wal.ErrCorrupt

// Entry types, in the order a slot experiences them.
const (
	entryBegin      = "begin"      // campaign-level: ID + schedule digest + slot count
	entryResume     = "resume"     // campaign-level: a new process took over
	entryPrepared   = "prepared"   // slot: payload written, conditions elevated
	entrySlice      = "slice"      // slot: a stress slice completed
	entryCheckpoint = "checkpoint" // slot: device image + rig state durably saved
	entryCkptBad    = "ckptbad"    // slot: a checkpoint image failed verification; struck from history
	entryEncoded    = "encoded"    // slot: record minted, final image saved
	entryDone       = "done"       // campaign-level: result.json written
)

// Entry is one journal record.
type Entry struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// Campaign and Digest identify the schedule on begin/resume records;
	// Digest is the schedule digest a resuming supervisor must reproduce
	// from spec.json before it may continue the campaign.
	Campaign string `json:"campaign,omitempty"`
	Digest   string `json:"digest,omitempty"`
	// Slots is the stripe width (begin records).
	Slots int `json:"slots,omitempty"`
	// Slot is the rig index the record concerns (-1 for campaign-level
	// records).
	Slot int `json:"slot"`
	// Applied / Total are the slot's equivalent-hours progress.
	Applied float64 `json:"applied_hours,omitempty"`
	Total   float64 `json:"total_hours,omitempty"`
	// Image names a device-image file in the campaign directory
	// (checkpoint, ckptbad, and encoded records).
	Image string `json:"image,omitempty"`
	// Rig is the controller state matching Image (clock, chamber,
	// supply, bypass) — everything outside the device that the soak's
	// bit-identity depends on.
	Rig *rig.State `json:"rig,omitempty"`
	// Record is the minted encode record (encoded records).
	Record *core.Record `json:"record,omitempty"`
}

// Kind implements wal.Record: the entry's type names its kill point.
func (e *Entry) Kind() string { return e.Type }

// SetSeq implements wal.Record.
func (e *Entry) SetSeq(seq int) { e.Seq = seq }

// Journal is the campaign's append side: a wal.Journal speaking the
// campaign record grammar. A Journal whose kill hook has fired is
// poisoned: every later append fails, the way every write of a dead
// process fails — crash simulation would be meaningless if a "killed"
// supervisor could keep persisting state.
type Journal struct {
	w *wal.Journal
}

// createJournal starts a fresh journal at path; failing if one exists
// (an existing journal means the campaign must be Resumed, not re-Run).
func createJournal(path string, hook faults.Hook, fsys storage.FS) (*Journal, error) {
	w, err := wal.Create(path, wal.Options{Hook: hook, FS: fsys})
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &Journal{w: w}, nil
}

// openJournal reopens an existing journal for appending, first
// truncating it to validLen (dropping a torn tail so new records never
// glue onto half a line). nextSeq continues the replayed sequence.
func openJournal(path string, hook faults.Hook, fsys storage.FS, nextSeq int, validLen int64) (*Journal, error) {
	w, err := wal.Open(path, wal.Options{Hook: hook, FS: fsys}, nextSeq, validLen)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &Journal{w: w}, nil
}

// Close releases the journal file (it does not seal the campaign — only
// a done record does that).
func (j *Journal) Close() error { return j.w.Close() }

// Gate consults the kill hook at a named non-journal point (image
// writes). Once the hook fires, the journal is poisoned for good.
func (j *Journal) Gate(point string) error { return j.w.Gate(point) }

// Append assigns the next sequence number, writes the record as one
// framed JSON line, and fsyncs before returning. Any failure — kill
// hook, write, or sync — poisons the journal; I/O failures additionally
// classify as ErrJournalIO.
func (j *Journal) Append(e Entry) error {
	if err := j.w.Append(&e); err != nil {
		return err
	}
	return nil
}

// ReadJournal parses the journal file, tolerating only a torn final
// line. validLen is the byte offset just past the last intact record —
// what a resuming supervisor truncates to before appending.
func ReadJournal(path string) (entries []Entry, validLen int64, err error) {
	return wal.ReadFile(path, entryOK)
}

// ReadJournalSalvage parses the journal file leniently over the given
// filesystem: CRC-failed or unparseable records cut the journal at the
// last verifiable prefix, reported in the wal.Salvage summary rather
// than as an error. The error is non-nil only if the file itself cannot
// be read.
func ReadJournalSalvage(fsys storage.FS, path string) (entries []Entry, sal wal.Salvage, err error) {
	return wal.ReadFileSalvage(fsys, path, entryOK)
}

// ParseJournal is ReadJournal over in-memory bytes (the fuzz surface).
func ParseJournal(data []byte) (entries []Entry, validLen int64, err error) {
	return wal.Parse(data, entryOK)
}

func entryOK(e *Entry) bool { return e.Type != "" }

// SlotCheckpoint is one durable checkpoint generation of a slot.
type SlotCheckpoint struct {
	Image   string
	Applied float64
	Rig     *rig.State
}

// SlotReplay is one slot's reconstructed position.
type SlotReplay struct {
	// Prepared / Applied describe the live (pre-crash) soak position.
	Prepared bool
	Applied  float64
	// Ckpts is the surviving checkpoint history, oldest first — every
	// generation the journal saved and never struck with a ckptbad
	// record. Images are uniquely named per applied-hours, so
	// generations accumulate on disk and an older one can step in when
	// the newest fails verification.
	Ckpts []SlotCheckpoint
	// CkptImage / CkptApplied / CkptRig are the newest surviving
	// checkpoint — the position a resume actually restarts from.
	CkptImage   string
	CkptApplied float64
	CkptRig     *rig.State
	// Record / FinalImage / FinalClock are set once the slot finished
	// encoding (FinalClock is the carrier's simulated bench-hours).
	Record     *core.Record
	FinalImage string
	FinalClock float64
}

// syncNewest re-derives the newest-checkpoint fields from the history.
func (s *SlotReplay) syncNewest() {
	if n := len(s.Ckpts); n > 0 {
		c := s.Ckpts[n-1]
		s.CkptImage, s.CkptApplied, s.CkptRig = c.Image, c.Applied, c.Rig
	} else {
		s.CkptImage, s.CkptApplied, s.CkptRig = "", 0, nil
	}
}

// ReplayState is the validated outcome of replaying a journal.
type ReplayState struct {
	Campaign string
	Digest   string
	Slots    []SlotReplay
	NextSeq  int
	Done     bool
}

// replayer applies journal entries one at a time, validating each
// before mutating state — so when an apply fails, the state still
// exactly reflects the entries accepted so far (the property salvage
// replay depends on).
type replayer struct {
	st *ReplayState
}

func newReplayer(head Entry) (*replayer, error) {
	if head.Type != entryBegin {
		return nil, fmt.Errorf("campaign: journal starts with %q, want %q", head.Type, entryBegin)
	}
	if head.Campaign == "" || head.Digest == "" || head.Slots <= 0 {
		return nil, fmt.Errorf("campaign: begin record is incomplete")
	}
	// No plausible bench has this many carriers; an absurd slot count is
	// a corrupt (or hostile) journal, not a big campaign.
	const maxSlots = 1 << 16
	if head.Slots > maxSlots {
		return nil, fmt.Errorf("campaign: begin record claims %d slots", head.Slots)
	}
	return &replayer{st: &ReplayState{
		Campaign: head.Campaign,
		Digest:   head.Digest,
		Slots:    make([]SlotReplay, head.Slots),
	}}, nil
}

func (r *replayer) slotOf(e Entry) (*SlotReplay, error) {
	if e.Slot < 0 || e.Slot >= len(r.st.Slots) {
		return nil, fmt.Errorf("campaign: record %d names slot %d of %d", e.Seq, e.Slot, len(r.st.Slots))
	}
	return &r.st.Slots[e.Slot], nil
}

func (r *replayer) apply(i int, e Entry) error {
	st := r.st
	if e.Seq != i {
		return fmt.Errorf("campaign: journal sequence broken: record %d claims seq %d", i, e.Seq)
	}
	if st.Done {
		return fmt.Errorf("campaign: record %d follows the done record", i)
	}
	if i == 0 {
		return nil // begin record, validated by newReplayer
	}
	switch e.Type {
	case entryBegin:
		return fmt.Errorf("campaign: duplicate begin record at seq %d", i)
	case entryResume:
		if e.Campaign != st.Campaign || e.Digest != st.Digest {
			return fmt.Errorf("campaign: resume record at seq %d carries a foreign schedule digest", i)
		}
		// A new process took over: live progress rewinds to what was
		// durably checkpointed. Finished slots stay finished.
		for k := range st.Slots {
			s := &st.Slots[k]
			if s.Record != nil {
				continue
			}
			s.Prepared = s.CkptImage != ""
			s.Applied = s.CkptApplied
		}
	case entryPrepared:
		s, err := r.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || s.Prepared {
			return fmt.Errorf("campaign: slot %d prepared twice (seq %d)", e.Slot, i)
		}
		s.Prepared = true
	case entrySlice:
		s, err := r.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || !s.Prepared {
			return fmt.Errorf("campaign: slice for unprepared slot %d (seq %d)", e.Slot, i)
		}
		if e.Applied <= s.Applied {
			return fmt.Errorf("campaign: slot %d slice rewinds %.4fh → %.4fh (seq %d): duplicated or reordered records",
				e.Slot, s.Applied, e.Applied, i)
		}
		if e.Total > 0 && e.Applied > e.Total+1e-9 {
			return fmt.Errorf("campaign: slot %d overshoots its schedule (seq %d)", e.Slot, i)
		}
		s.Applied = e.Applied
	case entryCheckpoint:
		s, err := r.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || !s.Prepared {
			return fmt.Errorf("campaign: checkpoint for unprepared slot %d (seq %d)", e.Slot, i)
		}
		if e.Image == "" || e.Rig == nil {
			return fmt.Errorf("campaign: checkpoint record at seq %d lacks image or rig state", i)
		}
		if e.Applied != s.Applied {
			return fmt.Errorf("campaign: checkpoint at seq %d claims %.4fh, slot %d is at %.4fh",
				i, e.Applied, e.Slot, s.Applied)
		}
		s.Ckpts = append(s.Ckpts, SlotCheckpoint{Image: e.Image, Applied: e.Applied, Rig: e.Rig})
		s.syncNewest()
	case entryCkptBad:
		s, err := r.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil {
			return fmt.Errorf("campaign: ckptbad for finished slot %d (seq %d)", e.Slot, i)
		}
		if e.Image == "" {
			return fmt.Errorf("campaign: ckptbad record at seq %d names no image", i)
		}
		found := -1
		for k := len(s.Ckpts) - 1; k >= 0; k-- {
			if s.Ckpts[k].Image == e.Image {
				found = k
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("campaign: ckptbad at seq %d strikes unknown checkpoint %q for slot %d", i, e.Image, e.Slot)
		}
		s.Ckpts = append(s.Ckpts[:found], s.Ckpts[found+1:]...)
		s.syncNewest()
	case entryEncoded:
		s, err := r.slotOf(e)
		if err != nil {
			return err
		}
		if s.Record != nil || !s.Prepared {
			return fmt.Errorf("campaign: encoded record for slot %d out of order (seq %d)", e.Slot, i)
		}
		if e.Record == nil || e.Image == "" {
			return fmt.Errorf("campaign: encoded record at seq %d lacks record or image", i)
		}
		s.Record, s.FinalImage, s.FinalClock = e.Record, e.Image, e.Applied
	case entryDone:
		for k := range st.Slots {
			// Zero-width slots never prepare; anything that did must
			// have finished.
			if st.Slots[k].Prepared && st.Slots[k].Record == nil {
				return fmt.Errorf("campaign: done record at seq %d with slot %d unfinished", i, k)
			}
		}
		st.Done = true
	default:
		return fmt.Errorf("campaign: unknown record type %q at seq %d", e.Type, i)
	}
	return nil
}

// Replay validates the journal prefix and reconstructs per-slot
// progress. It fails closed: any structural inconsistency rejects the
// whole journal rather than guessing at a resume point.
func Replay(entries []Entry) (*ReplayState, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("campaign: journal is empty")
	}
	r, err := newReplayer(entries[0])
	if err != nil {
		return nil, err
	}
	for i, e := range entries {
		if err := r.apply(i, e); err != nil {
			return nil, err
		}
	}
	r.st.NextSeq = len(entries)
	return r.st, nil
}

// ReplaySalvage replays the longest prefix of entries that validates,
// returning the reconstructed state, how many entries were used, and
// the validation error that stopped it (nil when every entry was used).
// A journal whose begin record itself is unusable salvages to (nil, 0,
// err): nothing durable is recoverable, which for a campaign means a
// deterministic from-scratch restart.
func ReplaySalvage(entries []Entry) (*ReplayState, int, error) {
	if len(entries) == 0 {
		return nil, 0, fmt.Errorf("campaign: journal is empty")
	}
	r, err := newReplayer(entries[0])
	if err != nil {
		return nil, 0, err
	}
	for i, e := range entries {
		if err := r.apply(i, e); err != nil {
			r.st.NextSeq = i
			return r.st, i, err
		}
	}
	r.st.NextSeq = len(entries)
	return r.st, len(entries), nil
}
