package ioatomic

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"invisiblebits/internal/faults"
	"invisiblebits/internal/storage"
)

func TestSealRoundTrip(t *testing.T) {
	payload := []byte("the record file is unrecoverable at any price")
	sealed := Seal(payload)
	got, wasSealed, err := Unseal(sealed)
	if err != nil || !wasSealed {
		t.Fatalf("Unseal: sealed=%v err=%v", wasSealed, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mangled: %q", got)
	}

	// Any single flipped bit — payload or footer — must be detected.
	for _, pos := range []int{0, len(payload) / 2, len(payload), len(sealed) - 10} {
		bad := append([]byte(nil), sealed...)
		bad[pos] ^= 0x40
		if _, _, err := Unseal(bad); !errors.Is(err, ErrSealMismatch) {
			t.Fatalf("flip at %d: err = %v, want ErrSealMismatch", pos, err)
		}
	}
}

// TestUnsealLegacyPassthrough: files written before the seal footer
// existed have no magic — they pass through unverified rather than
// failing, so old state directories still load.
func TestUnsealLegacyPassthrough(t *testing.T) {
	for _, legacy := range [][]byte{nil, []byte("x"), []byte("an old unsealed artifact, longer than a footer......")} {
		got, sealed, err := Unseal(legacy)
		if err != nil || sealed {
			t.Fatalf("legacy %q: sealed=%v err=%v", legacy, sealed, err)
		}
		if !bytes.Equal(got, legacy) {
			t.Fatalf("legacy payload mangled: %q", got)
		}
	}
}

func TestWriteReadFileSealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.json")
	payload := []byte(`{"codec":"paper"}`)
	if err := WriteFileSealed(nil, path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, sealed, err := ReadFileSealed(nil, path)
	if err != nil || !sealed || !bytes.Equal(got, payload) {
		t.Fatalf("read back: sealed=%v err=%v payload=%q", sealed, err, got)
	}

	// Rot one byte at rest; the read must fail loudly, not return junk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFileSealed(nil, path); !errors.Is(err, ErrSealMismatch) {
		t.Fatalf("rotted read = %v, want ErrSealMismatch", err)
	}
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	keep := []string{"result.json", "journal.jsonl", "slot-0.img"}
	litter := []string{"result.json.tmp123", "spec.json.tmp9", "x.tmp"}
	for _, n := range append(append([]string{}, keep...), litter...) {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.tmpdir"), 0o755); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepTemps(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != len(litter) {
		t.Fatalf("swept %v, want the %d temp files", removed, len(litter))
	}
	for _, n := range keep {
		if _, err := os.Stat(filepath.Join(dir, n)); err != nil {
			t.Fatalf("sweep removed real file %s: %v", n, err)
		}
	}
	for _, n := range litter {
		if _, err := os.Stat(filepath.Join(dir, n)); !os.IsNotExist(err) {
			t.Fatalf("temp file %s survived the sweep", n)
		}
	}
	// Directories are never swept, even with .tmp in the name.
	if _, err := os.Stat(filepath.Join(dir, "sub.tmpdir")); err != nil {
		t.Fatalf("sweep removed a directory: %v", err)
	}
}

// TestWriteToFailurePaths drives every failure point of the atomic
// write protocol — create, write, chmod, fsync, close, rename, dir
// fsync — and checks the two invariants that make it atomic: the
// destination never holds a torn result, and no temp litter survives.
func TestWriteToFailurePaths(t *testing.T) {
	boom := errors.New("injected storage failure")
	steps := []struct {
		op faults.StorageOp
		// renamed: the failure happens after the rename, so the new
		// content legitimately reaches the destination even though
		// WriteTo reports the (durability) error.
		renamed bool
	}{
		{op: faults.StorageCreate},
		{op: faults.StorageWrite},
		{op: faults.StorageChmod},
		{op: faults.StorageSync},
		{op: faults.StorageClose},
		{op: faults.StorageRename},
		{op: faults.StorageSyncDir, renamed: true},
	}
	for _, step := range steps {
		t.Run(string(step.op), func(t *testing.T) {
			dir := t.TempDir()
			fsys := storage.NewFaultFS(nil, faults.StorageProfile{})
			path := filepath.Join(dir, "data.json")
			if err := WriteFileFS(fsys, path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}

			// The dir-fsync site is the directory path, not the file.
			substr := "data.json"
			if step.op == faults.StorageSyncDir {
				substr = dir
			}
			fsys.FailNth(step.op, substr, 1, boom)
			err := WriteToFS(fsys, path, 0o644, func(w io.Writer) error {
				_, werr := w.Write([]byte("new"))
				return werr
			})
			if !errors.Is(err, boom) {
				t.Fatalf("WriteToFS = %v, want the injected failure", err)
			}

			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("destination vanished: %v", rerr)
			}
			if !step.renamed && string(got) != "old" {
				t.Fatalf("failed write tore the destination: %q", got)
			}
			if step.renamed && string(got) != "new" {
				t.Fatalf("post-rename failure left %q", got)
			}

			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.Contains(e.Name(), ".tmp") {
					t.Fatalf("temp litter survived the %s failure: %s", step.op, e.Name())
				}
			}
		})
	}
}
