package ioatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")

	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}

	// Replacement is whole-file: no blend of old and new.
	if err := WriteFile(path, []byte("second, longer contents"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "second, longer contents" {
		t.Fatalf("read back %q, %v", got, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", info.Mode().Perm())
	}
}

func TestWriteToFailureLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := WriteFile(path, []byte("survivor"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("producer exploded")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped producer error", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "survivor" {
		t.Fatalf("destination disturbed: %q, %v", got, rerr)
	}
	assertNoTempLitter(t, dir)
}

func TestWriteFileLeavesNoTempLitter(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := WriteFile(filepath.Join(dir, "a.bin"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	assertNoTempLitter(t, dir)
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileIntoMissingDirFails(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}
