// Package ioatomic writes durable artifacts atomically and seals them
// against silent corruption. The encoding half of an Invisible Bits
// campaign produces files whose loss or corruption is unrecoverable at
// any price: a device image is the serialized analog state of a chip
// that soaked for tens of simulated hours in the thermal chamber, and a
// record file is the only copy of the pre-shared decode parameters. A
// bare os.WriteFile torn by a crash or power loss leaves a half-written
// file under the final name — the reader then fails (best case) or
// decodes garbage (worst case).
//
// WriteFile and WriteTo follow the classic safe-save protocol:
//
//  1. write the full contents to a temp file in the destination
//     directory (same filesystem, so the rename below is atomic),
//  2. fsync the temp file, so the data is on stable storage before the
//     name appears,
//  3. rename the temp file over the destination (POSIX rename replaces
//     atomically: readers see the old file or the new, never a mix),
//  4. fsync the directory, so the rename itself survives power loss.
//
// On any failure the temp file is removed and the destination is
// untouched.
//
// Atomicity protects against crashes; it does nothing against a disk
// that later returns different bytes than it stored. Seal/Unseal add a
// sha256 footer (payload ‖ sha256(payload) ‖ "IBSEAL01") so every read
// can prove the bytes are the ones written. Files written before
// sealing existed carry no magic and are accepted as legacy-unsealed —
// old state dirs keep loading.
//
// All entry points come in pairs: the original path-based form over the
// real filesystem, and an FS form over the storage seam so fault-
// injection tests can make the disk lie.
package ioatomic

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"invisiblebits/internal/storage"
)

// ErrSealMismatch marks a sealed file whose payload no longer hashes to
// its footer — the disk changed the bytes. Test with errors.Is.
var ErrSealMismatch = errors.New("ioatomic: seal digest mismatch (file corrupted at rest)")

// sealMagic terminates every sealed file. The footer layout is
// [payload][sha256(payload), 32 bytes][magic, 8 bytes]; putting the
// magic last lets a reader classify a file from its tail alone.
const sealMagic = "IBSEAL01"

// sealFooterLen is the total footer size appended to the payload.
const sealFooterLen = sha256.Size + len(sealMagic)

// WriteFile atomically replaces path with data. The file is durable
// (contents and directory entry fsynced) before WriteFile returns nil.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(nil, path, data, perm)
}

// WriteFileFS is WriteFile over an explicit filesystem seam (nil means
// the real filesystem).
func WriteFileFS(fsys storage.FS, path string, data []byte, perm os.FileMode) error {
	return WriteToFS(fsys, path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTo is WriteFile for streaming producers (gob encoders, JSON
// encoders): write is handed the temp file and the result replaces path
// atomically only if write and every fsync succeed.
func WriteTo(path string, perm os.FileMode, write func(w io.Writer) error) error {
	return WriteToFS(nil, path, perm, write)
}

// WriteToFS is WriteTo over an explicit filesystem seam.
func WriteToFS(fsys storage.FS, path string, perm os.FileMode, write func(w io.Writer) error) error {
	fs := storage.Default(fsys)
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := fs.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("ioatomic: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure below, remove the temp file; Remove after a
	// successful rename fails harmlessly (the name is gone).
	defer fs.Remove(tmpName)

	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ioatomic: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("ioatomic: chmod %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ioatomic: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ioatomic: close %s: %w", path, err)
	}
	if err := fs.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ioatomic: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("ioatomic: fsync dir %s: %w", dir, err)
	}
	return nil
}

// Seal appends the integrity footer to payload: sha256 over the payload
// plus the trailing magic. Readers use Unseal.
func Seal(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(payload)+sealFooterLen)
	out = append(out, payload...)
	out = append(out, sum[:]...)
	return append(out, sealMagic...)
}

// Unseal verifies and strips the integrity footer. sealed reports
// whether the file carried a footer at all: data without the trailing
// magic is a legacy unsealed file and is returned as-is with sealed
// false and no error — pre-footer state dirs keep loading. A footer
// whose digest does not match returns ErrSealMismatch.
func Unseal(data []byte) (payload []byte, sealed bool, err error) {
	if len(data) < sealFooterLen || !bytes.HasSuffix(data, []byte(sealMagic)) {
		return data, false, nil
	}
	body := data[:len(data)-sealFooterLen]
	want := data[len(data)-sealFooterLen : len(data)-len(sealMagic)]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], want) {
		return nil, true, fmt.Errorf("%w: %d-byte payload", ErrSealMismatch, len(body))
	}
	return body, true, nil
}

// WriteFileSealed atomically replaces path with data plus the sha256
// integrity footer.
func WriteFileSealed(fsys storage.FS, path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(fsys, path, Seal(data), perm)
}

// WriteToSealed is WriteTo with the integrity footer: write streams the
// payload, and the footer is computed and appended before the atomic
// rename.
func WriteToSealed(fsys storage.FS, path string, perm os.FileMode, write func(w io.Writer) error) error {
	return WriteToFS(fsys, path, perm, func(w io.Writer) error {
		h := sha256.New()
		if err := write(io.MultiWriter(w, h)); err != nil {
			return err
		}
		if _, err := w.Write(h.Sum(nil)); err != nil {
			return err
		}
		_, err := io.WriteString(w, sealMagic)
		return err
	})
}

// ReadFileSealed reads path and verifies/strips its integrity footer.
// Legacy files without a footer are returned whole with sealed false.
func ReadFileSealed(fsys storage.FS, path string) (payload []byte, sealed bool, err error) {
	data, err := storage.Default(fsys).ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	payload, sealed, err = Unseal(data)
	if err != nil {
		return nil, sealed, fmt.Errorf("ioatomic: %s: %w", path, err)
	}
	return payload, sealed, nil
}

// SweepTemps removes stale safe-save temp files (base name containing
// ".tmp") from dir — the litter a process leaves when it dies between
// CreateTemp and rename. It returns the paths removed. Call it on
// resume, before any new safe-saves run in dir.
func SweepTemps(fsys storage.FS, dir string) (removed []string, err error) {
	fs := storage.Default(fsys)
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ioatomic: sweep %s: %w", dir, err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.Contains(ent.Name(), ".tmp") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		if rerr := fs.Remove(path); rerr != nil {
			return removed, fmt.Errorf("ioatomic: sweep %s: %w", path, rerr)
		}
		removed = append(removed, path)
	}
	return removed, nil
}
