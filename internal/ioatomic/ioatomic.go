// Package ioatomic writes durable artifacts atomically. The encoding
// half of an Invisible Bits campaign produces files whose loss or
// corruption is unrecoverable at any price: a device image is the
// serialized analog state of a chip that soaked for tens of simulated
// hours in the thermal chamber, and a record file is the only copy of
// the pre-shared decode parameters. A bare os.WriteFile torn by a crash
// or power loss leaves a half-written file under the final name — the
// reader then fails (best case) or decodes garbage (worst case).
//
// WriteFile and WriteTo follow the classic safe-save protocol:
//
//  1. write the full contents to a temp file in the destination
//     directory (same filesystem, so the rename below is atomic),
//  2. fsync the temp file, so the data is on stable storage before the
//     name appears,
//  3. rename the temp file over the destination (POSIX rename replaces
//     atomically: readers see the old file or the new, never a mix),
//  4. fsync the directory, so the rename itself survives power loss.
//
// On any failure the temp file is removed and the destination is
// untouched.
package ioatomic

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The file is durable
// (contents and directory entry fsynced) before WriteFile returns nil.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTo is WriteFile for streaming producers (gob encoders, JSON
// encoders): write is handed the temp file and the result replaces path
// atomically only if write and every fsync succeed.
func WriteTo(path string, perm os.FileMode, write func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("ioatomic: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure below, remove the temp file; Remove after a
	// successful rename fails harmlessly (the name is gone).
	defer os.Remove(tmpName)

	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ioatomic: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("ioatomic: chmod %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ioatomic: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ioatomic: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ioatomic: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ioatomic: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ioatomic: fsync dir %s: %w", dir, err)
	}
	return nil
}
