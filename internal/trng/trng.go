// Package trng builds a true-random-number generator from SRAM power-on
// noise — the other security primitive the paper's background section
// grounds Invisible Bits in ("temporal and spatial randomness, making it
// an attractive security primitive … PUF, random number (TRNG), and
// device fingerprint generators", §2).
//
// Metastable cells — those whose inverter mismatch is smaller than the
// power-on thermal noise — resolve differently across power cycles and
// are genuine entropy sources. The package:
//
//   - calibrates a device to find its metastable cells,
//   - harvests raw bits from them across power cycles,
//   - debiases the stream with a von Neumann extractor, and
//   - guards the output with the SP 800-90B-style repetition-count and
//     adaptive-proportion health tests.
//
// It also implements the aging trick of the paper's citation [25]
// ("Leveraging aging effect to improve SRAM-based true random number
// generators"): briefly aging a device while it holds its own power-on
// state pushes strongly biased cells toward the metastable point,
// increasing the entropy-cell population.
package trng

import (
	"errors"
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/device"
)

// Source is a calibrated SRAM entropy source.
type Source struct {
	dev   *device.Device
	cells []int // indices of metastable cells
	// carry state for the von Neumann extractor across harvests.
	pending []byte // raw bits (one per byte, 0/1) awaiting pairing
}

// Calibrate power-cycles the device captures times and selects cells
// whose observed ones-fraction lies strictly inside (lowFrac, highFrac) —
// the metastable population. More captures give a sharper selection;
// 15–31 is plenty.
func Calibrate(dev *device.Device, captures int, lowFrac, highFrac float64) (*Source, error) {
	if captures < 3 {
		return nil, errors.New("trng: calibration needs at least 3 captures")
	}
	if !(0 <= lowFrac && lowFrac < highFrac && highFrac <= 1) {
		return nil, fmt.Errorf("trng: bad selection band (%v, %v)", lowFrac, highFrac)
	}
	if dev.SRAM.Powered() {
		dev.PowerOff(true)
	}
	votes, err := dev.SRAM.CaptureVotes(captures, 25)
	if err != nil {
		return nil, err
	}
	var cells []int
	for i, v := range votes {
		f := float64(v) / float64(captures)
		if f > lowFrac && f < highFrac {
			cells = append(cells, i)
		}
	}
	if len(cells) == 0 {
		return nil, errors.New("trng: no metastable cells found; age the device toward metastability first")
	}
	return &Source{dev: dev, cells: cells}, nil
}

// NoisyCellCount reports the size of the calibrated entropy population.
func (s *Source) NoisyCellCount() int { return len(s.cells) }

// harvest performs one power cycle and appends the metastable cells'
// values to the pending raw-bit queue.
func (s *Source) harvest() error {
	snap, err := s.dev.SRAM.PowerCycle(25)
	if err != nil {
		if !s.dev.SRAM.Powered() {
			snap, err = s.dev.SRAM.PowerOn(25)
		}
		if err != nil {
			return err
		}
	}
	for _, c := range s.cells {
		s.pending = append(s.pending, (snap[c/8]>>(c%8))&1)
	}
	return nil
}

// maxCyclesPerByte bounds the harvest loop so a degenerate source
// (all-stuck cells) errors out instead of spinning forever.
const maxCyclesPerByte = 64

// Read fills out with von-Neumann-extracted random bytes, drawing fresh
// power cycles as needed. It implements io.Reader's contract on the happy
// path (always fills the whole buffer or errors).
func (s *Source) Read(out []byte) (int, error) {
	bitsNeeded := len(out) * 8
	var bits []byte
	cycles := 0
	for len(bits) < bitsNeeded {
		// Extract from pending pairs.
		for len(s.pending) >= 2 && len(bits) < bitsNeeded {
			a, b := s.pending[0], s.pending[1]
			s.pending = s.pending[2:]
			// Von Neumann: 01 → 0, 10 → 1, 00/11 discarded.
			if a != b {
				bits = append(bits, a)
			}
		}
		if len(bits) >= bitsNeeded {
			break
		}
		if cycles > maxCyclesPerByte*len(out) {
			return 0, errors.New("trng: entropy starvation (cells too stable)")
		}
		if err := s.harvest(); err != nil {
			return 0, err
		}
		cycles++
	}
	for i := range out {
		out[i] = 0
	}
	for i, b := range bits[:bitsNeeded] {
		if b != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return len(out), nil
}

// ImproveWithAging applies the [25] technique: hold the device's own
// power-on state under stress for hours, pushing every cell toward its
// metastable point. Strongly biased cells gain noise; already-metastable
// cells may overshoot slightly. Recalibrate afterwards.
func ImproveWithAging(dev *device.Device, cond analog.Conditions, hours float64) error {
	if !dev.SRAM.Powered() {
		if _, err := dev.PowerOn(25); err != nil {
			return err
		}
	}
	snap, err := dev.SRAM.PowerCycle(25)
	if err != nil {
		return err
	}
	if err := dev.SRAM.Write(snap); err != nil {
		return err
	}
	return dev.SRAM.Stress(cond, hours)
}

// --- health tests (SP 800-90B style) -------------------------------------------

// RepetitionCount implements the repetition count test: it fails if any
// value repeats cutoff or more times consecutively in the bit stream.
func RepetitionCount(bits []byte, cutoff int) error {
	if cutoff < 2 {
		return errors.New("trng: cutoff must be at least 2")
	}
	run := 0
	var prev byte = 2
	for i, b := range bits {
		v := b & 1
		if v == prev {
			run++
			if run >= cutoff {
				return fmt.Errorf("trng: repetition count test failed at bit %d (run of %d)", i, run)
			}
		} else {
			prev = v
			run = 1
		}
	}
	return nil
}

// AdaptiveProportion implements the adaptive proportion test over
// windows of windowSize bits: it fails if either value occupies more than
// cutoff positions in any window.
func AdaptiveProportion(bits []byte, windowSize, cutoff int) error {
	if windowSize <= 0 || cutoff <= windowSize/2 || cutoff > windowSize {
		return fmt.Errorf("trng: bad window/cutoff (%d, %d)", windowSize, cutoff)
	}
	for start := 0; start+windowSize <= len(bits); start += windowSize {
		ones := 0
		for _, b := range bits[start : start+windowSize] {
			ones += int(b & 1)
		}
		if ones > cutoff || windowSize-ones > cutoff {
			return fmt.Errorf("trng: adaptive proportion test failed in window at %d (%d ones of %d)",
				start, ones, windowSize)
		}
	}
	return nil
}

// BitsOf unpacks packed bytes into one-bit-per-byte form for the health
// tests.
func BitsOf(data []byte) []byte {
	out := make([]byte, len(data)*8)
	for i := range out {
		out[i] = (data[i/8] >> (i % 8)) & 1
	}
	return out
}
