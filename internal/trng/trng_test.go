package trng

import (
	"math"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/stats"
)

func newDev(t *testing.T, serial string) *device.Device {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCalibrateFindsMetastableCells(t *testing.T) {
	d := newDev(t, "trng-1")
	src, err := Calibrate(d, 15, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n := src.NoisyCellCount()
	total := d.SRAM.Cells()
	frac := float64(n) / float64(total)
	// With σ_noise/σ_mismatch ≈ 0.04, roughly 1–4% of cells are flaky.
	if frac < 0.002 || frac > 0.08 {
		t.Fatalf("metastable fraction = %v (%d cells)", frac, n)
	}
}

func TestCalibrateValidation(t *testing.T) {
	d := newDev(t, "trng-2")
	if _, err := Calibrate(d, 2, 0.2, 0.8); err == nil {
		t.Error("too few captures accepted")
	}
	if _, err := Calibrate(d, 15, 0.8, 0.2); err == nil {
		t.Error("inverted band accepted")
	}
	// An impossible band yields no cells.
	if _, err := Calibrate(d, 15, 0.4999, 0.5001); err == nil {
		t.Error("empty selection did not error")
	}
}

func TestReadProducesBalancedBits(t *testing.T) {
	d := newDev(t, "trng-3")
	src, err := Calibrate(d, 15, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 512)
	n, err := src.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out) {
		t.Fatalf("read %d bytes", n)
	}
	// Von Neumann output is unbiased by construction; allow 4σ.
	bias := stats.MeanBias(out)
	se := 0.5 / math.Sqrt(float64(len(out)*8))
	if math.Abs(bias-0.5) > 4*se {
		t.Errorf("extracted bias = %v (se %v)", bias, se)
	}
	// And reasonably high byte entropy.
	if h := stats.ByteEntropy(out); h < 7.0 {
		t.Errorf("entropy = %v bits/byte", h)
	}
}

func TestReadOutputPassesHealthTests(t *testing.T) {
	d := newDev(t, "trng-4")
	src, err := Calibrate(d, 15, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 256)
	if _, err := src.Read(out); err != nil {
		t.Fatal(err)
	}
	bits := BitsOf(out)
	// SP 800-90B-ish cutoffs for a full-entropy source.
	if err := RepetitionCount(bits, 36); err != nil {
		t.Errorf("repetition count: %v", err)
	}
	if err := AdaptiveProportion(bits, 512, 400); err != nil {
		t.Errorf("adaptive proportion: %v", err)
	}
}

func TestHealthTestsCatchDegenerateStreams(t *testing.T) {
	stuck := make([]byte, 256) // all zero bits
	if err := RepetitionCount(stuck, 36); err == nil {
		t.Error("stuck-at-0 stream passed repetition count")
	}
	if err := AdaptiveProportion(stuck, 128, 100); err == nil {
		t.Error("stuck-at-0 stream passed adaptive proportion")
	}
	// Alternating stream: passes repetition, trivially balanced.
	alt := make([]byte, 256)
	for i := range alt {
		alt[i] = byte(i & 1)
	}
	if err := RepetitionCount(alt, 36); err != nil {
		t.Errorf("alternating stream failed repetition count: %v", err)
	}
}

func TestHealthTestValidation(t *testing.T) {
	if err := RepetitionCount(nil, 1); err == nil {
		t.Error("cutoff 1 accepted")
	}
	if err := AdaptiveProportion(nil, 0, 0); err == nil {
		t.Error("bad window accepted")
	}
	if err := AdaptiveProportion(nil, 10, 4); err == nil {
		t.Error("cutoff below half accepted")
	}
}

func TestImproveWithAgingGrowsPopulation(t *testing.T) {
	// The [25] technique: short self-state aging pushes biased cells
	// toward the metastable point.
	d := newDev(t, "trng-5")
	before, err := Calibrate(d, 15, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	nBefore := before.NoisyCellCount()

	if err := ImproveWithAging(d, d.Model.Accelerated(), 2); err != nil {
		t.Fatal(err)
	}
	after, err := Calibrate(d, 15, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	nAfter := after.NoisyCellCount()
	if nAfter <= nBefore {
		t.Fatalf("aging did not grow the entropy population: %d -> %d", nBefore, nAfter)
	}
	// The improved source still produces healthy output.
	out := make([]byte, 128)
	if _, err := after.Read(out); err != nil {
		t.Fatal(err)
	}
	if err := RepetitionCount(BitsOf(out), 36); err != nil {
		t.Errorf("post-aging stream: %v", err)
	}
}

func TestBitsOf(t *testing.T) {
	bits := BitsOf([]byte{0b00000101})
	want := []byte{1, 0, 1, 0, 0, 0, 0, 0}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d", i, bits[i])
		}
	}
}
