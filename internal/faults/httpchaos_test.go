package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// chaosClient builds an http.Client routed through a chaos engine at a
// test server.
func chaosClient(c *HTTPChaos) *http.Client {
	return &http.Client{Transport: c.Transport(nil)}
}

// chaosRun drives n GETs of path through the engine and returns one
// outcome string per request ("ok:<body>" or "err:<sentinel>").
func chaosRun(t *testing.T, srv *httptest.Server, c *HTTPChaos, path string, n int) []string {
	t.Helper()
	cl := chaosClient(c)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := cl.Get(srv.URL + path)
		if err != nil {
			switch {
			case errors.Is(err, ErrConnDropped):
				out = append(out, "err:dropped")
			case errors.Is(err, ErrResponseLost):
				out = append(out, "err:lost")
			default:
				out = append(out, "err:other")
			}
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case errors.Is(rerr, ErrConnReset):
			out = append(out, fmt.Sprintf("reset:%d", len(body)))
		case rerr != nil:
			out = append(out, "err:other")
		default:
			out = append(out, "ok:"+string(body))
		}
	}
	return out
}

func TestHTTPChaosDeterministicPerSeed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "the quick brown fox jumps over the lazy dog")
	}))
	defer srv.Close()

	profile := HTTPProfile{
		Seed:             7,
		DropRate:         0.2,
		ResponseLossRate: 0.2,
		TruncateRate:     0.2,
		ResetRate:        0.2,
	}
	a := chaosRun(t, srv, NewHTTPChaos(profile), "/x", 64)
	b := chaosRun(t, srv, NewHTTPChaos(profile), "/x", 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged under the same seed: %q vs %q", i, a[i], b[i])
		}
	}

	other := profile
	other.Seed = 8
	c := chaosRun(t, srv, NewHTTPChaos(other), "/x", 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 7 and 8 produced identical fault patterns")
	}
}

func TestHTTPChaosEveryFaultKindManifests(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	defer srv.Close()

	profile := HTTPProfile{
		Seed:             3,
		DropRate:         0.15,
		ResponseLossRate: 0.15,
		TruncateRate:     0.15,
		ResetRate:        0.15,
	}
	out := chaosRun(t, srv, NewHTTPChaos(profile), "/y", 200)
	counts := map[string]int{}
	truncated := 0
	for _, o := range out {
		switch {
		case o == "ok:"+body:
			counts["clean"]++
		case strings.HasPrefix(o, "ok:"): // short body, clean EOF
			truncated++
		case strings.HasPrefix(o, "reset:"):
			counts["reset"]++
		default:
			counts[o]++
		}
	}
	for _, kind := range []string{"clean", "err:dropped", "err:lost", "reset"} {
		if counts[kind] == 0 {
			t.Fatalf("fault kind %s never manifested in 200 requests: %v", kind, counts)
		}
	}
	if truncated == 0 {
		t.Fatalf("truncation never manifested in 200 requests: %v", counts)
	}
}

func TestHTTPChaosSentinelsAreTransient(t *testing.T) {
	for _, err := range []error{ErrConnDropped, ErrResponseLost, ErrConnReset} {
		if !IsTransient(err) {
			t.Fatalf("%v must classify transient", err)
		}
		if IsPermanent(err) {
			t.Fatalf("%v must not classify permanent", err)
		}
		wrapped := fmt.Errorf("GET /api/status: %w", err)
		if !errors.Is(wrapped, err) || !IsTransient(wrapped) {
			t.Fatalf("wrapping %v loses its identity", err)
		}
	}
}

func TestHTTPChaosKillListener(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprint(w, "up")
	}))
	defer srv.Close()

	chaos := NewHTTPChaos(HTTPProfile{Seed: 1}) // otherwise inert
	cl := chaosClient(chaos)
	chaos.KillListener(3)
	for i := 0; i < 3; i++ {
		if _, err := cl.Get(srv.URL + "/z"); !errors.Is(err, ErrConnDropped) {
			t.Fatalf("outage request %d: %v, want ErrConnDropped", i, err)
		}
	}
	resp, err := cl.Get(srv.URL + "/z")
	if err != nil {
		t.Fatalf("post-outage request: %v", err)
	}
	resp.Body.Close()
	if hits != 1 {
		t.Fatalf("server saw %d requests during the outage window, want 1 after it", hits)
	}
}

func TestHTTPChaosInertProfilePassesThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "clean")
	}))
	defer srv.Close()
	if !(HTTPProfile{}).Inert() || !(HTTPProfile{Seed: 9}).Inert() {
		t.Fatal("zero-rate profiles must report inert")
	}
	cl := chaosClient(NewHTTPChaos(HTTPProfile{Seed: 9}))
	for i := 0; i < 50; i++ {
		resp, err := cl.Get(srv.URL + "/quiet")
		if err != nil {
			t.Fatalf("inert profile injected an error: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != "clean" {
			t.Fatalf("inert profile mangled the body: %q %v", body, err)
		}
	}
}
