package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"invisiblebits/internal/rng"
)

// HTTP fault taxonomy. The service surface sits between tenants and
// multi-day imprint campaigns; the network between them drops packets,
// stalls, resets connections mid-body, and — worst of all — delivers a
// request whose response is then lost, so the client cannot tell an
// admitted campaign from a rejected one. Each hazard gets a typed,
// transient-classified sentinel so retry policy can be tested against a
// network that misbehaves exactly as deterministically as the silicon
// and the disk already do.
var (
	// ErrConnDropped is a connection that never reached the listener
	// (refused, or the listener is mid-restart). The request was NOT
	// delivered; retrying is always safe.
	ErrConnDropped error = &classified{"faults: connection dropped before delivery", ErrTransient}
	// ErrResponseLost is the nasty one: the request WAS delivered and
	// acted on, but the response died on the way back. A blind retry of a
	// non-idempotent request double-submits; only end-to-end idempotency
	// makes retrying safe.
	ErrResponseLost error = &classified{"faults: response lost after delivery", ErrTransient}
	// ErrConnReset is a connection reset partway through the response
	// body: the status line arrived, the payload did not.
	ErrConnReset error = &classified{"faults: connection reset mid-body", ErrTransient}
)

// HTTPProfile parameterizes the seeded HTTP chaos engine. The zero
// value injects nothing. Rates are per-request probabilities; every
// decision is a pure function of (seed, method+path, per-site sequence
// number), so a fixed seed replays the same fault pattern per request
// stream regardless of how goroutines interleave their streams.
type HTTPProfile struct {
	// Seed decorrelates storms; the same seed replays the same one.
	Seed uint64

	// DropRate is the probability a request is dropped before delivery
	// (ErrConnDropped) — the server never sees it.
	DropRate float64
	// StallRate is the probability a request is delayed by up to
	// StallMax before delivery (the slow, not broken, network).
	StallRate float64
	// StallMax bounds injected stalls; 0 means 50ms.
	StallMax time.Duration
	// ResponseLossRate is the probability the request is delivered and
	// processed but its response discarded (ErrResponseLost).
	ResponseLossRate float64
	// TruncateRate is the probability the response body is cut short
	// with a clean EOF — a proxy that gave up flushing.
	TruncateRate float64
	// ResetRate is the probability the response body errors partway
	// through with ErrConnReset.
	ResetRate float64
}

// Inert reports whether the profile injects nothing.
func (p HTTPProfile) Inert() bool {
	return p == HTTPProfile{} || p == HTTPProfile{Seed: p.Seed}
}

func (p HTTPProfile) stallMax() time.Duration {
	if p.StallMax <= 0 {
		return 50 * time.Millisecond
	}
	return p.StallMax
}

// HTTPChaos is the seeded decision engine for network hazards, built on
// the same hash-everything determinism as StorageFaults: a decision
// site is (method+path, sequence number). It is safe for concurrent
// use — one engine is shared by every client in a storm.
type HTTPChaos struct {
	profile HTTPProfile
	base    uint64

	mu     sync.Mutex
	seq    map[string]uint64
	outage int // requests left to refuse unconditionally
}

// NewHTTPChaos builds the seeded HTTP chaos engine.
func NewHTTPChaos(p HTTPProfile) *HTTPChaos {
	return &HTTPChaos{
		profile: p,
		base:    p.Seed ^ rng.HashString("faults/http"),
		seq:     make(map[string]uint64),
	}
}

// Profile returns the engine's configuration.
func (c *HTTPChaos) Profile() HTTPProfile { return c.profile }

// KillListener refuses the next n requests (across all sites) with
// ErrConnDropped before delivery — the window between a killed listener
// and its resumed replacement, when connections bounce off a dead port.
func (c *HTTPChaos) KillListener(n int) {
	c.mu.Lock()
	c.outage = n
	c.mu.Unlock()
}

// takeOutage consumes one outage slot if the listener is "down".
func (c *HTTPChaos) takeOutage() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.outage > 0 {
		c.outage--
		return true
	}
	return false
}

// roll returns a uniform [0,1) variate for one decision site, advancing
// the site's sequence counter.
func (c *HTTPChaos) roll(site string) float64 {
	c.mu.Lock()
	n := c.seq[site]
	c.seq[site] = n + 1
	c.mu.Unlock()
	h := rng.HashString(fmt.Sprintf("%s|%d", site, n))
	return rng.NewSource(c.base ^ h).Float64()
}

// Transport wraps next (nil means http.DefaultTransport) in the chaos
// layer. Faults injected before delivery (drop, outage) are safe to
// retry blindly; ErrResponseLost deliberately is not — the wrapped
// transport DID complete the round trip, exactly like a real network
// that ate the response after the server committed.
func (c *HTTPChaos) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &chaosTransport{engine: c, next: next}
}

type chaosTransport struct {
	engine *HTTPChaos
	next   http.RoundTripper
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c := t.engine
	p := c.profile
	site := req.Method + " " + req.URL.Path
	if c.takeOutage() {
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrConnDropped)
	}
	if p.DropRate > 0 && c.roll("drop|"+site) < p.DropRate {
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrConnDropped)
	}
	if p.StallRate > 0 && c.roll("stall|"+site) < p.StallRate {
		d := time.Duration(c.roll("stallfor|"+site) * float64(p.stallMax()))
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p.ResponseLossRate > 0 && c.roll("lose|"+site) < p.ResponseLossRate {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining a response we are about to eat
		resp.Body.Close()
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrResponseLost)
	}
	if p.TruncateRate > 0 && c.roll("trunc|"+site) < p.TruncateRate {
		return truncateBody(resp, c.roll("truncat|"+site), nil), nil
	}
	if p.ResetRate > 0 && c.roll("reset|"+site) < p.ResetRate {
		at := c.roll("resetat|"+site)
		return truncateBody(resp, at, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrConnReset)), nil
	}
	return resp, nil
}

// truncateBody replaces resp.Body with a prefix of itself: frac of the
// real body (at least one byte short of it when possible), ending in a
// clean EOF when errAfter is nil or in errAfter otherwise. The original
// Content-Length header survives, so length-checking clients see the
// mismatch a real truncation produces.
func truncateBody(resp *http.Response, frac float64, errAfter error) *http.Response {
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		data = nil // the real network beat us to the truncation
	}
	keep := int(frac * float64(len(data)))
	if keep >= len(data) && len(data) > 0 {
		keep = len(data) - 1
	}
	resp.Body = &erringBody{r: bytes.NewReader(data[:keep]), err: errAfter}
	return resp
}

// erringBody yields its bytes, then err (or a clean EOF when err is
// nil).
type erringBody struct {
	r   *bytes.Reader
	err error
}

func (b *erringBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF && b.err != nil {
		return n, b.err
	}
	return n, err
}

func (b *erringBody) Close() error { return nil }
