package faults

import (
	"bytes"
	"errors"
	"testing"
)

func TestStorageProfileInert(t *testing.T) {
	if !(StorageProfile{}).Inert() {
		t.Fatal("zero profile should be inert")
	}
	if !(StorageProfile{Seed: 42}).Inert() {
		t.Fatal("seed-only profile should be inert")
	}
	if (StorageProfile{WriteErrRate: 0.1}).Inert() {
		t.Fatal("profile with a rate should not be inert")
	}
}

// TestStorageFaultsDeterminism pins the replay contract: the same seed
// replays the same storm decision-for-decision, regardless of how many
// engines observe it.
func TestStorageFaultsDeterminism(t *testing.T) {
	profile := StorageProfile{
		Seed:         7,
		WriteErrRate: 0.3, SyncErrRate: 0.3, ReadErrRate: 0.3,
		BitRotRate: 0.5, TearFrac: 0.8, RenameRevertRate: 0.5,
	}
	run := func() (errs []error, rots [][]byte, tears []int64, reverts []bool) {
		eng := NewStorageFaults(profile)
		data := []byte("twelve bytes")
		for i := 0; i < 32; i++ {
			errs = append(errs, eng.OpError(StorageWrite, "journal.jsonl"))
			errs = append(errs, eng.OpError(StorageSync, "journal.jsonl"))
			errs = append(errs, eng.OpError(StorageRead, "spec.json"))
			rots = append(rots, eng.Rot("result.json", data))
			tears = append(tears, eng.TearKeep("journal.jsonl", 100))
			reverts = append(reverts, eng.RevertRename("result.json"))
		}
		return
	}
	e1, r1, t1, v1 := run()
	e2, r2, t2, v2 := run()
	sawErr, sawRot := false, false
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("op error %d diverged: %v vs %v", i, e1[i], e2[i])
		}
		if e1[i] != nil {
			sawErr = true
		}
	}
	for i := range r1 {
		if !bytes.Equal(r1[i], r2[i]) {
			t.Fatalf("rot %d diverged", i)
		}
		if !bytes.Equal(r1[i], []byte("twelve bytes")) {
			sawRot = true
		}
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("tear %d diverged: %d vs %d", i, t1[i], t2[i])
		}
		if t1[i] < 0 || t1[i] > 100 {
			t.Fatalf("tear %d out of bounds: %d", i, t1[i])
		}
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("revert %d diverged", i)
		}
	}
	if !sawErr || !sawRot {
		t.Fatalf("storm too quiet to be a meaningful determinism check (errs=%v rots=%v)", sawErr, sawRot)
	}
}

// TestStorageFaultsTypedErrors checks each hazard surfaces its sentinel.
func TestStorageFaultsTypedErrors(t *testing.T) {
	eng := NewStorageFaults(StorageProfile{WriteErrRate: 1, SyncErrRate: 1, ReadErrRate: 1})
	if err := eng.OpError(StorageWrite, "f"); !errors.Is(err, ErrMediaError) {
		t.Fatalf("write error = %v, want ErrMediaError", err)
	}
	if err := eng.OpError(StorageSync, "f"); !errors.Is(err, ErrFsyncLost) {
		t.Fatalf("sync error = %v, want ErrFsyncLost", err)
	}
	if err := eng.OpError(StorageRead, "f"); !errors.Is(err, ErrMediaError) {
		t.Fatalf("read error = %v, want ErrMediaError", err)
	}
}

// TestRotFlipsExactlyOneByteInACopy: silent corruption flips one byte
// and never mutates the caller's buffer.
func TestRotFlipsExactlyOneByteInACopy(t *testing.T) {
	eng := NewStorageFaults(StorageProfile{BitRotRate: 1})
	orig := []byte("the disk lies without raising its voice")
	data := append([]byte(nil), orig...)
	out := eng.Rot("x", data)
	if !bytes.Equal(data, orig) {
		t.Fatal("Rot mutated the input slice")
	}
	diff := 0
	for i := range out {
		if out[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("Rot flipped %d bytes, want exactly 1", diff)
	}
}

// TestNilStorageFaultsInjectNothing: a nil engine is a valid inert one.
func TestNilStorageFaultsInjectNothing(t *testing.T) {
	var eng *StorageFaults
	if err := eng.OpError(StorageWrite, "f"); err != nil {
		t.Fatalf("nil engine injected %v", err)
	}
	data := []byte("abc")
	if out := eng.Rot("f", data); !bytes.Equal(out, data) {
		t.Fatal("nil engine rotted data")
	}
	if keep := eng.TearKeep("f", 10); keep != 0 {
		t.Fatalf("nil engine kept %d torn bytes, want 0", keep)
	}
	if eng.RevertRename("f") {
		t.Fatal("nil engine reverted a rename")
	}
}
