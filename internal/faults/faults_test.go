package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"invisiblebits/internal/analog"
)

func TestClassification(t *testing.T) {
	if !IsTransient(ErrLinkDropped) || IsPermanent(ErrLinkDropped) {
		t.Error("ErrLinkDropped misclassified")
	}
	if !IsPermanent(ErrDeviceDead) || IsTransient(ErrDeviceDead) {
		t.Error("ErrDeviceDead misclassified")
	}
	// Classification must survive wrapping.
	wrapped := fmt.Errorf("rig: flash failed: %w", ErrLinkDropped)
	if !errors.Is(wrapped, ErrLinkDropped) || !IsTransient(wrapped) {
		t.Error("wrapping lost classification")
	}
	// Ordinary errors are neither.
	plain := errors.New("plain")
	if IsTransient(plain) || IsPermanent(plain) {
		t.Error("plain error classified as a fault")
	}
}

func TestSeededInjectorDeterminism(t *testing.T) {
	p := Profile{
		Seed:            42,
		LinkDropRate:    0.3,
		BrownoutRate:    0.5,
		BrownoutSagV:    0.4,
		ExcursionRate:   0.5,
		ExcursionDeltaC: 12,
		StuckFrac:       0.01,
		WeakFrac:        0.01,
	}
	run := func() ([]bool, []analog.Conditions, []byte) {
		inj := New(p, "det-serial")
		drops := make([]bool, 40)
		for i := range drops {
			drops[i] = inj.OpError(OpCapture, float64(i)*0.1) != nil
		}
		conds := make([]analog.Conditions, 10)
		for i := range conds {
			conds[i], _ = inj.PerturbConditions(analog.Conditions{VoltageV: 3.3, TempC: 85}, float64(i))
		}
		snap := make([]byte, 64)
		inj.CorruptSnapshot(snap, 1)
		return drops, conds, snap
	}
	d1, c1, s1 := run()
	d2, c2, s2 := run()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("link-drop sequence diverged at %d", i)
		}
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("perturbation sequence diverged at %d: %v vs %v", i, c1[i], c2[i])
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("snapshot corruption diverged at byte %d", i)
		}
	}
	// A different serial must see a different campaign.
	other := New(p, "other-serial")
	diverged := false
	for i := 0; i < 40; i++ {
		if (other.OpError(OpCapture, float64(i)*0.1) != nil) != d1[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("two serials replay the identical campaign")
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	inj := New(Profile{}, "clean")
	for i := 0; i < 100; i++ {
		if err := inj.OpError(OpLoadProgram, float64(i)); err != nil {
			t.Fatalf("zero profile injected %v", err)
		}
	}
	c := analog.Conditions{VoltageV: 3.3, TempC: 85}
	got, note := inj.PerturbConditions(c, 5)
	if got != c || note != "" {
		t.Fatalf("zero profile perturbed conditions: %v (%q)", got, note)
	}
	snap := []byte{0xA5, 0x5A}
	inj.CorruptSnapshot(snap, 0)
	if snap[0] != 0xA5 || snap[1] != 0x5A {
		t.Fatal("zero profile corrupted snapshot")
	}
	votes := []uint16{0, 5, 3}
	inj.CorruptVotes(votes, 5, 0)
	if votes[1] != 5 || votes[2] != 3 {
		t.Fatal("zero profile corrupted votes")
	}
}

func TestDeviceDeathIsPermanentAndSticky(t *testing.T) {
	inj := New(Profile{FailAtHours: 2}, "doomed")
	if err := inj.OpError(OpStress, 1.9); err != nil {
		t.Fatalf("died early: %v", err)
	}
	err := inj.OpError(OpStress, 2.1)
	if !IsPermanent(err) {
		t.Fatalf("death not permanent: %v", err)
	}
	if !inj.Dead() {
		t.Error("Dead() false after death")
	}
	// Death is sticky even for queries with an earlier clock (the device
	// does not resurrect).
	if err := inj.OpError(OpCapture, 0.5); !IsPermanent(err) {
		t.Errorf("resurrected: %v", err)
	}
}

func TestStuckCellsAreStableAcrossCaptures(t *testing.T) {
	inj := New(Profile{StuckFrac: 0.05}, "stuck")
	a := make([]byte, 128)
	b := make([]byte, 128)
	for i := range b {
		b[i] = 0xFF
	}
	inj.CorruptSnapshot(a, 0)
	inj.CorruptSnapshot(b, 1)
	// Stuck cells force the same value regardless of underlying data or
	// clock; a starts all-0 and b all-1, so cells where a has a 1 or b
	// has a 0 are stuck — and they must agree between the two captures.
	stuck := 0
	for i := 0; i < len(a)*8; i++ {
		abit := a[i/8]&(1<<(i%8)) != 0
		bbit := b[i/8]&(1<<(i%8)) != 0
		if abit != bbit {
			continue // cell untouched (a=0, b=1)
		}
		stuck++
	}
	if stuck == 0 {
		t.Fatal("no stuck cells injected at 5%")
	}
	if frac := float64(stuck) / float64(len(a)*8); frac > 0.10 {
		t.Fatalf("stuck fraction %v far above profile's 0.05", frac)
	}
}

func TestWeakCellVotesAreNoisy(t *testing.T) {
	inj := New(Profile{WeakFrac: 0.2}, "weak")
	votes := make([]uint16, 1024)
	inj.CorruptVotes(votes, 5, 0)
	indecisive := 0
	for _, v := range votes {
		if v != 0 && v != 5 {
			indecisive++
		}
	}
	if indecisive == 0 {
		t.Fatal("weak cells produced no indecisive votes")
	}
}

type countingClock struct{ hours float64 }

func (c *countingClock) AdvanceClock(h float64) { c.hours += h }

func TestRetryChargesSimulatedClock(t *testing.T) {
	clock := &countingClock{}
	calls := 0
	err := Retry(context.Background(), clock, 3, 0.25, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("op: %w", ErrLinkDropped)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	// Two backoffs: 0.25 + 0.50.
	if clock.hours != 0.75 {
		t.Fatalf("backoff charged %vh, want 0.75h", clock.hours)
	}
}

func TestRetryStopsOnPermanentAndBudget(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), nil, 5, 0.1, func() error {
		calls++
		return fmt.Errorf("op: %w", ErrDeviceDead)
	})
	if !IsPermanent(err) || calls != 1 {
		t.Fatalf("permanent fault retried: calls=%d err=%v", calls, err)
	}
	calls = 0
	err = Retry(context.Background(), nil, 2, 0.1, func() error {
		calls++
		return fmt.Errorf("op: %w", ErrLinkDropped)
	})
	if !IsTransient(err) || calls != 3 {
		t.Fatalf("budget not honoured: calls=%d err=%v", calls, err)
	}
}

func TestRetryHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, nil, 3, 0.1, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("cancelled ctx ran op: calls=%d err=%v", calls, err)
	}
}
