package faults

import (
	"errors"
	"fmt"
	"sync"

	"invisiblebits/internal/rng"
)

// Storage fault taxonomy. The paper's host-side artifacts — the record
// file holding the pre-shared decode parameters, the device images
// holding tens of simulated chamber-hours of analog state — are
// "unrecoverable at any price" once lost, yet they live on commodity
// disks that tear writes, flip bits at rest, fill up, and lie about
// fsync. These sentinels classify the injected hazards the same way
// the device taxonomy above classifies link drops and latch-ups, so
// the durability layers can be tested against a disk that misbehaves
// exactly as deterministically as the silicon does.
var (
	// ErrDiskFull is the injected ENOSPC: the volume has no room for
	// the write. Retrying without freeing space is pointless, but the
	// device is fine — the supervisor must fail closed and wait for an
	// operator, not quarantine carriers.
	ErrDiskFull = errors.New("faults: disk full (ENOSPC)")
	// ErrFsyncLost is the fsyncgate hazard: an fsync reported failure
	// AND the kernel dropped the dirty pages, so retrying the fsync
	// "succeeds" while the data is already gone. A supervisor that
	// treats fsync failure as retryable persists a truth the disk never
	// held.
	ErrFsyncLost = errors.New("faults: fsync failed, unflushed writes lost")
	// ErrMediaError is injected bit rot surfaced at read time — the
	// disk returned bytes it cannot vouch for (or an outright read
	// error). Self-verifying formats (CRC frames, sha256 footers) turn
	// silent rot into this loud, typed failure.
	ErrMediaError = errors.New("faults: storage media error")
)

// StorageOp names a filesystem operation for the storage injector's
// decision sites (mirroring Op for rig operations).
type StorageOp string

// Filesystem operations the storage layer consults the injector about.
const (
	StorageWrite   StorageOp = "write"
	StorageSync    StorageOp = "fsync"
	StorageRead    StorageOp = "read"
	StorageRename  StorageOp = "rename"
	StorageCreate  StorageOp = "create"
	StorageClose   StorageOp = "close"
	StorageChmod   StorageOp = "chmod"
	StorageSyncDir StorageOp = "syncdir"
)

// StorageProfile parameterizes the seeded storage-fault engine. The
// zero value injects nothing. Rates are per-operation probabilities;
// every decision is a pure function of (seed, operation, path,
// per-site sequence number), so a fixed seed replays the same storm.
type StorageProfile struct {
	// Seed decorrelates storms; the same seed replays the same one.
	Seed uint64

	// WriteErrRate is the per-write probability of an I/O error.
	WriteErrRate float64
	// SyncErrRate is the per-fsync probability of fsyncgate semantics:
	// the fsync fails AND the unflushed bytes are dropped on the floor.
	SyncErrRate float64
	// ReadErrRate is the per-read probability of a media error.
	ReadErrRate float64
	// BitRotRate is the per-whole-file-read probability of SILENT
	// corruption: one byte of the returned data is flipped and no error
	// is reported. Only self-verifying formats catch this.
	BitRotRate float64

	// TearFrac, when a crash interrupts unsynced writes, is the maximum
	// fraction of the unsynced tail that survives; the surviving length
	// is drawn deterministically in [0, TearFrac]. Zero keeps nothing
	// unsynced (the harshest tear); 1 allows anything up to a full
	// survive.
	TearFrac float64
	// RenameRevertRate is the probability that a rename whose directory
	// was never fsynced is undone by a crash — the reordered-directory-
	// entries hazard of journaling filesystems.
	RenameRevertRate float64
}

// Inert reports whether the profile injects nothing.
func (p StorageProfile) Inert() bool {
	return p == StorageProfile{} || p == StorageProfile{Seed: p.Seed}
}

// StorageFaults is the seeded decision engine for storage hazards,
// built on the same hash-everything determinism as SeededInjector: a
// decision site is (operation, path, sequence number), so the same
// profile replays the same failures no matter how goroutines schedule.
// It is safe for concurrent use.
type StorageFaults struct {
	profile StorageProfile
	base    uint64

	mu  sync.Mutex
	seq map[string]uint64
}

// NewStorageFaults builds the seeded storage-fault engine.
func NewStorageFaults(p StorageProfile) *StorageFaults {
	return &StorageFaults{
		profile: p,
		base:    p.Seed ^ rng.HashString("faults/storage"),
		seq:     make(map[string]uint64),
	}
}

// Profile returns the engine's configuration.
func (s *StorageFaults) Profile() StorageProfile { return s.profile }

// roll returns a uniform [0,1) variate for one decision site, advancing
// the site's sequence counter.
func (s *StorageFaults) roll(site string) float64 {
	s.mu.Lock()
	n := s.seq[site]
	s.seq[site] = n + 1
	s.mu.Unlock()
	h := rng.HashString(fmt.Sprintf("%s|%d", site, n))
	return rng.NewSource(s.base ^ h).Float64()
}

// OpError is consulted before a storage operation on path; a non-nil
// return injects that failure.
func (s *StorageFaults) OpError(op StorageOp, path string) error {
	if s == nil {
		return nil
	}
	switch op {
	case StorageWrite:
		if s.profile.WriteErrRate > 0 && s.roll("write|"+path) < s.profile.WriteErrRate {
			return fmt.Errorf("write %s: %w", path, ErrMediaError)
		}
	case StorageSync:
		if s.profile.SyncErrRate > 0 && s.roll("fsync|"+path) < s.profile.SyncErrRate {
			return fmt.Errorf("fsync %s: %w", path, ErrFsyncLost)
		}
	case StorageRead:
		if s.profile.ReadErrRate > 0 && s.roll("read|"+path) < s.profile.ReadErrRate {
			return fmt.Errorf("read %s: %w", path, ErrMediaError)
		}
	}
	return nil
}

// Rot applies silent bit rot: with probability BitRotRate it returns a
// copy of data with one deterministically chosen byte inverted, and no
// error — the disk that lies without even raising its voice. The
// caller's self-verification (CRC frames, sha256 footers) is the only
// defense.
func (s *StorageFaults) Rot(path string, data []byte) []byte {
	if s == nil || s.profile.BitRotRate <= 0 || len(data) == 0 {
		return data
	}
	if s.roll("rot|"+path) >= s.profile.BitRotRate {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	pos := int(s.roll("rotpos|"+path) * float64(len(out)))
	if pos >= len(out) {
		pos = len(out) - 1
	}
	out[pos] ^= 0xff
	return out
}

// TearKeep decides how many of n unsynced tail bytes survive a crash
// for the file at path — deterministic per (seed, path, crash count).
func (s *StorageFaults) TearKeep(path string, n int64) int64 {
	if s == nil || n <= 0 {
		return 0
	}
	frac := s.profile.TearFrac
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	keep := int64(s.roll("tear|"+path) * frac * float64(n+1))
	if keep > n {
		keep = n
	}
	return keep
}

// RevertRename decides whether a crash undoes an un-dir-synced rename.
func (s *StorageFaults) RevertRename(path string) bool {
	if s == nil || s.profile.RenameRevertRate <= 0 {
		return false
	}
	return s.roll("rename|"+path) < s.profile.RenameRevertRate
}
