// Package faults is the deterministic fault-injection substrate for the
// Invisible Bits evaluation pipeline. The paper's evaluation is a
// physical lab campaign: flaky debugger links, supply brownouts during
// multi-hour soaks, thermal-chamber excursions, weak or stuck SRAM
// cells, and outright device death are the *normal* operating regime,
// not exceptional events. §5.3's "encode many devices and select the
// one with the least error" only pays off if one bad device cannot sink
// a whole fleet.
//
// The package provides:
//
//   - A typed error taxonomy. Every injected failure is classified as
//     transient (worth retrying: the link re-enumerates, the flash
//     re-programs) or permanent (the device is gone). Classification
//     survives wrapping, so callers test with errors.Is via IsTransient
//     and IsPermanent.
//
//   - The Injector interface: hook points the rig consults before each
//     operation, plus condition perturbation during stress soaks and
//     cell-level corruption of power-on captures.
//
//   - A seeded reference implementation. Every decision is a pure
//     function of (profile seed, device serial, operation, simulated
//     clock, per-site sequence number), so a fixed seed reproduces the
//     same failure campaign run after run — flaky hardware, reproducible
//     science.
//
//   - Retry: bounded retry with exponential backoff charged to the
//     rig's *simulated* clock, so recovery attempts cost encoding-hours
//     exactly as they would in the lab.
//
// The fault layer is strictly opt-in: a rig without an injector behaves
// bit-identically to one that has never heard of this package.
package faults

import (
	"context"
	"errors"
)

// Severity sentinels. Injected errors wrap exactly one of these; use
// IsTransient / IsPermanent (or errors.Is directly) to classify.
var (
	// ErrTransient marks failures that a bounded retry can clear.
	ErrTransient = errors.New("faults: transient failure")
	// ErrPermanent marks failures that no retry will clear.
	ErrPermanent = errors.New("faults: permanent failure")
)

// classified is an error with a severity class attached. errors.Is sees
// both the sentinel's own identity (pointer equality) and its class.
type classified struct {
	msg   string
	class error
}

func (e *classified) Error() string { return e.msg }

// Is reports class membership, making errors.Is(err, ErrTransient) work
// for any error that wraps one of the concrete fault sentinels.
func (e *classified) Is(target error) bool { return target == e.class }

// Concrete fault classes.
var (
	// ErrLinkDropped is a transient debugger-link failure: the probe
	// de-enumerated mid-flash or a capture burst was lost. Re-seating
	// (retrying) the operation normally clears it.
	ErrLinkDropped error = &classified{"faults: debugger link dropped", ErrTransient}
	// ErrDeviceDead is permanent device death — a latch-up, a bond-wire
	// failure, a §7.2 overdrive accident. Every subsequent operation on
	// the device fails with this error.
	ErrDeviceDead error = &classified{"faults: device died", ErrPermanent}
)

// IsTransient reports whether err (or anything it wraps) is a transient
// fault worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsPermanent reports whether err (or anything it wraps) is a permanent
// fault; retrying is pointless and the device should be written off.
func IsPermanent(err error) bool { return errors.Is(err, ErrPermanent) }

// Clock charges simulated time; *rig.Rig satisfies it.
type Clock interface {
	AdvanceClock(hours float64)
}

// Retry runs op up to 1+maxRetries times, retrying only transient
// faults. Each retry first charges backoff to the simulated clock,
// doubling per attempt — in the lab, re-seating a probe and re-running a
// capture burst costs encoding-hours, and the simulation accounts for
// them the same way. Permanent faults and ordinary errors return
// immediately; ctx cancellation is checked before every attempt.
func Retry(ctx context.Context, clock Clock, maxRetries int, backoffHours float64, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = op()
		if err == nil || !IsTransient(err) || attempt >= maxRetries {
			return err
		}
		if clock != nil && backoffHours > 0 {
			clock.AdvanceClock(backoffHours * float64(uint64(1)<<uint(attempt)))
		}
	}
}
