package faults

import (
	"fmt"
	"sync"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
)

// Op names a rig operation for the injector's hook points.
type Op string

// Rig operations the injector is consulted about.
const (
	// OpLoadProgram is a firmware flash over the debugger link.
	OpLoadProgram Op = "load-program"
	// OpPowerOn is a supply ramp.
	OpPowerOn Op = "power-on"
	// OpCapture is a power-on state sampling burst over the link.
	OpCapture Op = "capture"
	// OpStress is one slice of a thermal-chamber soak.
	OpStress Op = "stress"
)

// Injector is consulted by the rig at its hook points. A nil Injector
// (the default) disables fault injection entirely.
//
// Implementations must be safe for use from the single goroutine that
// owns the rig; the seeded implementation below is additionally safe for
// concurrent use so one injector can be shared across fleet workers.
type Injector interface {
	// OpError is consulted immediately before the rig performs op at the
	// given simulated clock. A non-nil return injects that failure; the
	// rig classifies it via IsTransient / IsPermanent.
	OpError(op Op, clockHours float64) error

	// PerturbConditions maps the conditions the rig *intends* to apply
	// during one stress slice to the conditions the device actually
	// experiences (supply brownout, chamber excursion). The returned
	// string describes the disturbance for the rig's event log; empty
	// means the slice ran clean.
	PerturbConditions(c analog.Conditions, clockHours float64) (analog.Conditions, string)

	// CorruptSnapshot applies cell-level faults (stuck-at and weak cells)
	// to a power-on capture, in place. data is bit-packed, LSB-first.
	CorruptSnapshot(data []byte, clockHours float64)

	// CorruptVotes applies the same cell-level faults to per-cell vote
	// counts out of captures power-ons, in place.
	CorruptVotes(votes []uint16, captures int, clockHours float64)
}

// Profile parameterizes the seeded injector. The zero value injects
// nothing; each field switches on one fault class from the lab's hazard
// model.
type Profile struct {
	// Seed decorrelates campaigns. The same (Seed, serial) pair replays
	// the same failure sequence.
	Seed uint64

	// LinkDropRate is the per-operation probability that a debugger-link
	// operation (OpLoadProgram, OpCapture) fails transiently.
	LinkDropRate float64

	// BrownoutRate is the per-stress-slice probability of a supply
	// brownout; the applied voltage sags by up to BrownoutSagV.
	BrownoutRate float64
	// BrownoutSagV is the maximum supply sag in volts.
	BrownoutSagV float64

	// ExcursionRate is the per-stress-slice probability of a chamber
	// temperature excursion of up to ±ExcursionDeltaC.
	ExcursionRate float64
	// ExcursionDeltaC is the maximum excursion magnitude in °C.
	ExcursionDeltaC float64

	// StuckFrac is the fraction of SRAM cells stuck at a fixed power-on
	// value — defects beyond even §5.1.1's extreme-mismatch population.
	StuckFrac float64
	// WeakFrac is the fraction of cells whose power-on state is pure
	// noise (weak cells: neither aging nor mismatch decides them).
	WeakFrac float64

	// FailAtHours kills the device permanently once the simulated clock
	// reaches this time. Zero means the device is immortal.
	FailAtHours float64
}

// SeededInjector is the deterministic reference Injector. Every decision
// is derived by hashing (seed, serial, decision site, simulated clock,
// per-site sequence number), so a campaign replays exactly under a fixed
// seed regardless of wall-clock scheduling.
type SeededInjector struct {
	profile Profile
	serial  string
	base    uint64

	mu    sync.Mutex
	seq   map[string]uint64
	dead  bool
	masks map[int]*cellMask
}

// New builds a SeededInjector for the device with the given serial.
func New(p Profile, serial string) *SeededInjector {
	return &SeededInjector{
		profile: p,
		serial:  serial,
		base:    p.Seed ^ rng.HashString("faults/" + serial),
		seq:     make(map[string]uint64),
		masks:   make(map[int]*cellMask),
	}
}

// Profile returns the injector's configuration.
func (f *SeededInjector) Profile() Profile { return f.profile }

// Inert reports whether the profile injects nothing at all. The rig uses
// this to keep a zero-profile campaign on the exact single-shot stress
// path, guaranteeing bit-identical outputs to a rig with no injector.
func (f *SeededInjector) Inert() bool { return f.profile == (Profile{}) }

// Dead reports whether the device has already died.
func (f *SeededInjector) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// roll returns a uniform [0,1) variate for one decision site. The
// per-site sequence counter distinguishes repeated decisions at the same
// simulated instant (e.g. retries of a flash before any time passes).
func (f *SeededInjector) roll(site string, clockHours float64) float64 {
	f.mu.Lock()
	n := f.seq[site]
	f.seq[site] = n + 1
	f.mu.Unlock()
	h := rng.HashString(fmt.Sprintf("%s|%.6f|%d", site, clockHours, n))
	return rng.NewSource(f.base ^ h).Float64()
}

// OpError implements Injector.
func (f *SeededInjector) OpError(op Op, clockHours float64) error {
	f.mu.Lock()
	dead := f.dead
	if !dead && f.profile.FailAtHours > 0 && clockHours >= f.profile.FailAtHours {
		f.dead = true
		dead = true
	}
	f.mu.Unlock()
	if dead {
		return fmt.Errorf("device %s at t=%.2fh: %w", f.serial, clockHours, ErrDeviceDead)
	}
	switch op {
	case OpLoadProgram, OpCapture:
		if f.profile.LinkDropRate > 0 && f.roll("link/"+string(op), clockHours) < f.profile.LinkDropRate {
			return fmt.Errorf("device %s %s at t=%.2fh: %w", f.serial, op, clockHours, ErrLinkDropped)
		}
	}
	return nil
}

// PerturbConditions implements Injector.
func (f *SeededInjector) PerturbConditions(c analog.Conditions, clockHours float64) (analog.Conditions, string) {
	note := ""
	if f.profile.BrownoutRate > 0 && f.roll("brownout", clockHours) < f.profile.BrownoutRate {
		sag := f.profile.BrownoutSagV * (0.5 + 0.5*f.roll("brownout-mag", clockHours))
		c.VoltageV -= sag
		if c.VoltageV < 0 {
			c.VoltageV = 0
		}
		note = fmt.Sprintf("brownout −%.2fV", sag)
	}
	if f.profile.ExcursionRate > 0 && f.roll("excursion", clockHours) < f.profile.ExcursionRate {
		mag := f.profile.ExcursionDeltaC * (0.5 + 0.5*f.roll("excursion-mag", clockHours))
		if f.roll("excursion-sign", clockHours) < 0.5 {
			mag = -mag
		}
		c.TempC += mag
		if note != "" {
			note += ", "
		}
		note += fmt.Sprintf("chamber excursion %+.1f°C", mag)
	}
	return c, note
}

// cellMask is the per-array defect map: which cells are stuck (and at
// what), and which are weak.
type cellMask struct {
	stuckIdx []int
	stuckVal []bool
	weakIdx  []int
}

// mask lazily derives the defect map for an array of nCells cells. The
// map is a pure function of (seed, serial, nCells), so the same device
// exhibits the same defects across the whole campaign, like real
// silicon.
func (f *SeededInjector) mask(nCells int) *cellMask {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.masks[nCells]; ok {
		return m
	}
	m := &cellMask{}
	if f.profile.StuckFrac > 0 || f.profile.WeakFrac > 0 {
		src := rng.NewSource(f.base ^ rng.HashString(fmt.Sprintf("cellmask/%d", nCells)))
		for i := 0; i < nCells; i++ {
			u := src.Float64()
			switch {
			case u < f.profile.StuckFrac:
				m.stuckIdx = append(m.stuckIdx, i)
				m.stuckVal = append(m.stuckVal, src.Float64() < 0.5)
			case u < f.profile.StuckFrac+f.profile.WeakFrac:
				m.weakIdx = append(m.weakIdx, i)
			}
		}
	}
	f.masks[nCells] = m
	return m
}

// CorruptSnapshot implements Injector.
func (f *SeededInjector) CorruptSnapshot(data []byte, clockHours float64) {
	m := f.mask(len(data) * 8)
	for k, i := range m.stuckIdx {
		if m.stuckVal[k] {
			data[i/8] |= 1 << (i % 8)
		} else {
			data[i/8] &^= 1 << (i % 8)
		}
	}
	for _, i := range m.weakIdx {
		if f.roll("weak", clockHours) < 0.5 {
			data[i/8] |= 1 << (i % 8)
		} else {
			data[i/8] &^= 1 << (i % 8)
		}
	}
}

// CorruptVotes implements Injector.
func (f *SeededInjector) CorruptVotes(votes []uint16, captures int, clockHours float64) {
	m := f.mask(len(votes))
	for k, i := range m.stuckIdx {
		if m.stuckVal[k] {
			votes[i] = uint16(captures)
		} else {
			votes[i] = 0
		}
	}
	for _, i := range m.weakIdx {
		// A weak cell's captures are independent coin flips.
		n := uint16(0)
		for c := 0; c < captures; c++ {
			if f.roll("weak-vote", clockHours) < 0.5 {
				n++
			}
		}
		votes[i] = n
	}
}
