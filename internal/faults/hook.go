package faults

import (
	"errors"
	"sync"
)

// ErrKilled is the sentinel returned by an armed KillSwitch: the
// simulation's stand-in for the process dying abruptly (power loss,
// OOM-kill, an operator tripping over the bench PSU). It is neither
// transient nor permanent — the *device* is fine; the supervisor
// process is gone — so IsTransient and IsPermanent both report false.
var ErrKilled = errors.New("faults: killed at kill point")

// Hook is consulted at named internal checkpoints ("kill points") of a
// long-running supervisor, immediately after each point's work has been
// made durable. Returning non-nil simulates an abrupt process crash at
// exactly that boundary: the caller must stop all further persistence
// and unwind. A nil Hook disables kill-point injection.
type Hook func(point string) error

// KillSwitch is the deterministic reference Hook: it fires ErrKilled at
// the n-th kill point hit (0-based) and at every hit thereafter — once
// the process is "dead", nothing may persist anything else, no matter
// which goroutine asks. It is safe for concurrent use, matching the
// supervisors it instruments.
type KillSwitch struct {
	mu    sync.Mutex
	armAt int
	hits  int
	fired bool
	point string
}

// NewKillSwitch arms a crash at the armAt-th kill point hit (0-based).
// Negative armAt never fires, giving tests a no-op hook with counting.
func NewKillSwitch(armAt int) *KillSwitch {
	return &KillSwitch{armAt: armAt}
}

// Hook adapts the switch to the Hook type.
func (k *KillSwitch) Hook() Hook { return k.Hit }

// Hit records one kill-point crossing and returns ErrKilled when the
// switch fires (and forever after).
func (k *KillSwitch) Hit(point string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.fired {
		return ErrKilled
	}
	if k.hits == k.armAt {
		k.fired = true
		k.point = point
		k.hits++
		return ErrKilled
	}
	k.hits++
	return nil
}

// Fired reports whether the switch has gone off.
func (k *KillSwitch) Fired() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.fired
}

// FiredAt names the kill point that tripped the switch ("" before it
// fires).
func (k *KillSwitch) FiredAt() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.point
}

// Hits returns how many kill points have been crossed (including the
// fatal one).
func (k *KillSwitch) Hits() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.hits
}
