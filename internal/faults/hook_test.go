package faults

import (
	"errors"
	"sync"
	"testing"
)

func TestKillSwitchFiresAtArmedHitAndStaysDead(t *testing.T) {
	k := NewKillSwitch(2)
	if err := k.Hit("a"); err != nil {
		t.Fatalf("hit 0: %v", err)
	}
	if err := k.Hit("b"); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	if err := k.Hit("c"); !errors.Is(err, ErrKilled) {
		t.Fatalf("hit 2 = %v, want ErrKilled", err)
	}
	// Dead processes stay dead: every later hit also fails.
	if err := k.Hit("d"); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-fire hit = %v, want ErrKilled", err)
	}
	if !k.Fired() || k.FiredAt() != "c" {
		t.Fatalf("fired=%v at %q, want true at c", k.Fired(), k.FiredAt())
	}
}

func TestKillSwitchNegativeNeverFires(t *testing.T) {
	k := NewKillSwitch(-1)
	for i := 0; i < 10; i++ {
		if err := k.Hit("p"); err != nil {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	if k.Fired() {
		t.Fatal("negative arm fired")
	}
	if k.Hits() != 10 {
		t.Fatalf("hits = %d, want 10", k.Hits())
	}
}

func TestErrKilledIsNeitherTransientNorPermanent(t *testing.T) {
	if IsTransient(ErrKilled) || IsPermanent(ErrKilled) {
		t.Fatal("ErrKilled must not classify as a device fault")
	}
}

func TestKillSwitchConcurrentHitsFireExactlyOnceFresh(t *testing.T) {
	k := NewKillSwitch(5)
	var wg sync.WaitGroup
	errs := make([]error, 20)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = k.Hit("concurrent")
		}(i)
	}
	wg.Wait()
	killed := 0
	for _, err := range errs {
		if errors.Is(err, ErrKilled) {
			killed++
		}
	}
	// Hits 0..4 pass, hit 5 fires, hits 6..19 observe the dead switch.
	if killed != 15 {
		t.Fatalf("killed %d of 20 hits, want 15", killed)
	}
}
