package imaging

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(5, -1); err == nil {
		t.Error("negative height accepted")
	}
}

func TestSetAt(t *testing.T) {
	bm, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	bm.Set(2, 3, true)
	if !bm.At(2, 3) || bm.At(3, 2) {
		t.Fatal("Set/At disagree")
	}
	bm.Set(2, 3, false)
	if bm.At(2, 3) {
		t.Fatal("clear failed")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	g := Glyph()
	packed := g.Pack()
	if len(packed) != 32*32/8 {
		t.Fatalf("packed length = %d", len(packed))
	}
	back, err := Unpack(packed, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := ErrorRate(g, back)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Fatalf("round trip error rate = %v", rate)
	}
}

func TestUnpackValidation(t *testing.T) {
	if _, err := Unpack(make([]byte, 1), 32, 32); err == nil {
		t.Error("short data accepted")
	}
}

func TestPBMRoundTrip(t *testing.T) {
	g := Glyph()
	var buf bytes.Buffer
	if err := g.WritePBM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P1\n32 32\n") {
		t.Fatalf("header = %q", buf.String()[:12])
	}
	back, err := ReadPBM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rate, _ := ErrorRate(g, back)
	if rate != 0 {
		t.Fatalf("PBM round trip error = %v", rate)
	}
}

func TestReadPBMErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic": "P2\n2 2\n0 0 0 0\n",
		"bad pixel": "P1\n2 2\n0 0 0 7\n",
		"truncated": "P1\n2 2\n0 0 0\n",
		"bad width": "P1\nx 2\n0 0 0 0\n",
		"empty":     "",
	}
	for name, src := range cases {
		if _, err := ReadPBM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestErrorRateMismatch(t *testing.T) {
	a, _ := New(2, 2)
	b, _ := New(3, 2)
	if _, err := ErrorRate(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestErrorRateCounts(t *testing.T) {
	a, _ := New(2, 2)
	b, _ := New(2, 2)
	b.Set(0, 0, true)
	r, err := ErrorRate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.25 {
		t.Fatalf("rate = %v", r)
	}
}

func TestGlyphLooksLikeIB(t *testing.T) {
	g := Glyph()
	// Border pixels set.
	if !g.At(0, 0) || !g.At(31, 31) {
		t.Error("border missing")
	}
	// Interior gap between border and letters is clear.
	if g.At(3, 12) {
		t.Error("expected clear pixel at (3,12)")
	}
	// "I" stem present.
	if !g.At(7, 15) {
		t.Error("I stem missing")
	}
	// "B" stem present.
	if !g.At(17, 15) {
		t.Error("B stem missing")
	}
	// Meaningful ink coverage (not all set, not all clear).
	set := 0
	for _, p := range g.Pixels {
		if p != 0 {
			set++
		}
	}
	frac := float64(set) / 1024
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("ink fraction = %v", frac)
	}
}

func TestASCIIRendering(t *testing.T) {
	bm, _ := New(2, 2)
	bm.Set(0, 0, true)
	out := bm.ASCII()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "██") {
		t.Errorf("row 0 = %q", lines[0])
	}
}
