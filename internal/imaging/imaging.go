// Package imaging provides the tiny bitmap support the visual
// demonstrations need (Fig. 1's encoded image and Fig. 8's repetition-
// code cleanup): a 1-bit image type, plain-PBM (P1) encode/decode for
// interchange, ASCII rendering for terminals, and a built-in test glyph.
package imaging

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Bitmap is a 1-bit image; Pixels[y*W+x] != 0 means a set (dark) pixel.
type Bitmap struct {
	W, H   int
	Pixels []byte
}

// New allocates a cleared bitmap.
func New(w, h int) (*Bitmap, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imaging: bad dimensions %dx%d", w, h)
	}
	return &Bitmap{W: w, H: h, Pixels: make([]byte, w*h)}, nil
}

// At returns the pixel at (x, y).
func (b *Bitmap) At(x, y int) bool { return b.Pixels[y*b.W+x] != 0 }

// Set writes the pixel at (x, y).
func (b *Bitmap) Set(x, y int, v bool) {
	if v {
		b.Pixels[y*b.W+x] = 1
	} else {
		b.Pixels[y*b.W+x] = 0
	}
}

// Pack serializes the pixels into bit-packed bytes (row-major, LSB-first)
// for use as a message payload.
func (b *Bitmap) Pack() []byte {
	out := make([]byte, (len(b.Pixels)+7)/8)
	for i, p := range b.Pixels {
		if p != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// Unpack restores a bitmap of the given dimensions from packed payload
// bits (the inverse of Pack).
func Unpack(data []byte, w, h int) (*Bitmap, error) {
	bm, err := New(w, h)
	if err != nil {
		return nil, err
	}
	if len(data)*8 < w*h {
		return nil, fmt.Errorf("imaging: %d bytes cannot hold %dx%d bits", len(data), w, h)
	}
	for i := 0; i < w*h; i++ {
		if data[i/8]&(1<<(i%8)) != 0 {
			bm.Pixels[i] = 1
		}
	}
	return bm, nil
}

// WritePBM emits the plain (P1) PBM format.
func (b *Bitmap) WritePBM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P1\n%d %d\n", b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if x > 0 {
				bw.WriteByte(' ')
			}
			if b.At(x, y) {
				bw.WriteByte('1')
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadPBM parses a plain (P1) PBM image.
func ReadPBM(r io.Reader) (*Bitmap, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	next := func() (string, error) {
		for sc.Scan() {
			tok := sc.Text()
			if strings.HasPrefix(tok, "#") {
				// Comment: consume to end of line is not possible with
				// word splitting; plain PBM comments are rare, reject.
				return "", errors.New("imaging: comments unsupported in plain PBM")
			}
			return tok, nil
		}
		return "", io.ErrUnexpectedEOF
	}
	magic, err := next()
	if err != nil {
		return nil, err
	}
	if magic != "P1" {
		return nil, fmt.Errorf("imaging: not a plain PBM (magic %q)", magic)
	}
	var w, h int
	tok, err := next()
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscan(tok, &w); err != nil {
		return nil, fmt.Errorf("imaging: bad width %q", tok)
	}
	tok, err = next()
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscan(tok, &h); err != nil {
		return nil, fmt.Errorf("imaging: bad height %q", tok)
	}
	bm, err := New(w, h)
	if err != nil {
		return nil, err
	}
	for i := 0; i < w*h; i++ {
		tok, err := next()
		if err != nil {
			return nil, err
		}
		switch tok {
		case "0":
		case "1":
			bm.Pixels[i] = 1
		default:
			return nil, fmt.Errorf("imaging: bad pixel token %q", tok)
		}
	}
	return bm, nil
}

// ASCII renders the bitmap with block characters for terminals.
func (b *Bitmap) ASCII() string {
	var sb strings.Builder
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.At(x, y) {
				sb.WriteString("██")
			} else {
				sb.WriteString("  ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ErrorRate returns the fraction of differing pixels between two
// same-sized bitmaps.
func ErrorRate(a, b *Bitmap) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("imaging: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	diff := 0
	for i := range a.Pixels {
		if (a.Pixels[i] != 0) != (b.Pixels[i] != 0) {
			diff++
		}
	}
	return float64(diff) / float64(len(a.Pixels)), nil
}

// Glyph returns a built-in 32x32 test image (a bold "IB" monogram on a
// border), used by the Fig. 1 / Fig. 8 demonstrations.
func Glyph() *Bitmap {
	bm, err := New(32, 32)
	if err != nil {
		panic(err) // static dimensions; cannot fail
	}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			border := x < 2 || y < 2 || x >= 30 || y >= 30
			// "I": vertical bar columns 6-10 with serifs.
			iBar := x >= 6 && x < 10 && y >= 6 && y < 26
			iSerif := (y >= 6 && y < 9 || y >= 23 && y < 26) && x >= 4 && x < 12
			// "B": stem plus two bowls, columns 16-27.
			bStem := x >= 16 && x < 20 && y >= 6 && y < 26
			bTop := y >= 6 && y < 9 && x >= 16 && x < 26
			bMid := y >= 15 && y < 17 && x >= 16 && x < 26
			bBot := y >= 23 && y < 26 && x >= 16 && x < 26
			bRight := x >= 24 && x < 27 && ((y >= 8 && y < 16) || (y >= 17 && y < 24))
			bm.Set(x, y, border || iBar || iSerif || bStem || bTop || bMid || bBot || bRight)
		}
	}
	return bm
}
