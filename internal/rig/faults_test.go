package rig

import (
	"context"
	"errors"
	"strings"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/progen"
)

func newFaultyRig(t *testing.T, model string, p faults.Profile) *Rig {
	t.Helper()
	m, err := device.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, "faulty-rig-test", device.WithSRAMLimit(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	return New(d, WithInjector(faults.New(p, d.Serial)))
}

func TestSetVoltageSafeCeiling(t *testing.T) {
	r := newRig(t, "MSP432P401")
	ceil := r.Device().Model.SafeVoltageCeiling()
	// Exactly at the ceiling is allowed; just above is refused with the
	// destructive-overdrive sentinel.
	if err := r.SetVoltage(ceil); err != nil {
		t.Fatalf("voltage at ceiling refused: %v", err)
	}
	err := r.SetVoltage(ceil + 0.01)
	if !errors.Is(err, ErrUnsafeVoltage) {
		t.Fatalf("overdrive past ceiling returned %v, want ErrUnsafeVoltage", err)
	}
	// The refused setting must not have reached the rail.
	if got := r.Conditions().VoltageV; got != ceil {
		t.Fatalf("rail at %vV after refused overdrive, want %vV", got, ceil)
	}
	// The ceiling clears the accelerated operating point for every
	// catalog device (otherwise encoding itself would trip the guard).
	for _, m := range device.Catalog {
		if m.VAccV > m.SafeVoltageCeiling() {
			t.Errorf("%s: VAcc %.2fV above its own ceiling %.2fV", m.Name, m.VAccV, m.SafeVoltageCeiling())
		}
	}
}

func TestShelveForPoweredDevice(t *testing.T) {
	// A shelved device is by definition unpowered: ShelveFor on a powered
	// device must drop power first and still advance the clock.
	r := newRig(t, "MSP432P401")
	if _, err := r.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := r.ShelveFor(12); err != nil {
		t.Fatalf("powered-device shelve failed: %v", err)
	}
	if r.Device().SRAM.Powered() {
		t.Error("device still powered after shelving")
	}
	if r.ClockHours() != 12 {
		t.Errorf("clock = %v, want 12", r.ClockHours())
	}
}

func TestErrNeedsBypassIsSentinel(t *testing.T) {
	r := newRig(t, "BCM2837")
	err := r.SetVoltage(2.2)
	if !errors.Is(err, ErrNeedsBypass) {
		t.Fatalf("err = %v, want ErrNeedsBypass", err)
	}
	// The bypass requirement is neither a transient nor a permanent
	// fault — it is an operator mistake, and retrying must not happen.
	if faults.IsTransient(err) || faults.IsPermanent(err) {
		t.Error("ErrNeedsBypass classified as an injected fault")
	}
}

func TestInjectedLinkDropIsTransient(t *testing.T) {
	r := newFaultyRig(t, "MSP432P401", faults.Profile{Seed: 3, LinkDropRate: 1})
	prog, err := progen.Assemble(progen.CamouflageProgram())
	if err != nil {
		t.Fatal(err)
	}
	lerr := r.LoadProgram(prog)
	if !faults.IsTransient(lerr) || !errors.Is(lerr, faults.ErrLinkDropped) {
		t.Fatalf("LoadProgram under certain link drop returned %v", lerr)
	}
	if _, serr := r.SampleMajority(5); !faults.IsTransient(serr) {
		t.Fatalf("SampleMajority under certain link drop returned %v", serr)
	}
	joined := strings.Join(r.Events(), "\n")
	if !strings.Contains(joined, "FAULT") {
		t.Error("injected faults missing from the event log")
	}
}

func TestMidSoakDeathKillsDevice(t *testing.T) {
	r := newFaultyRig(t, "MSP432P401", faults.Profile{FailAtHours: 3})
	if _, err := r.PowerOn(); err != nil {
		t.Fatal(err)
	}
	err := r.StressFor(10)
	if !faults.IsPermanent(err) {
		t.Fatalf("mid-soak death returned %v", err)
	}
	// The clock stops at (slice-granular) death, not at the planned end.
	if c := r.ClockHours(); c < 2.5 || c >= 10 {
		t.Errorf("clock %vh after death at 3h", c)
	}
	if r.Device().Alive() {
		t.Error("device alive after permanent fault")
	}
	// Death is sticky across every later operation, with classification
	// preserved through the device layer.
	if _, err := r.PowerOn(); !faults.IsPermanent(err) {
		t.Errorf("PowerOn on dead device: %v", err)
	}
	prog, perr := progen.Assemble(progen.CamouflageProgram())
	if perr != nil {
		t.Fatal(perr)
	}
	if err := r.LoadProgram(prog); !faults.IsPermanent(err) {
		t.Errorf("LoadProgram on dead device: %v", err)
	}
}

func TestBrownoutPerturbsAppliedConditions(t *testing.T) {
	// A soak under a certain brownout must age the SRAM *less* than a
	// clean soak at the same nominal conditions: the sag is applied to
	// the device, not just logged.
	clean := newRig(t, "MSP432P401")
	browned := newFaultyRig(t, "MSP432P401", faults.Profile{
		Seed: 9, BrownoutRate: 1, BrownoutSagV: 1.0,
	})
	for _, r := range []*Rig{clean, browned} {
		if _, err := r.PowerOn(); err != nil {
			t.Fatal(err)
		}
		if err := r.Device().SRAM.Fill(0x00); err != nil {
			t.Fatal(err)
		}
		if err := r.SetVoltage(3.3); err != nil {
			t.Fatal(err)
		}
		r.SetTemperature(85)
		if err := r.StressFor(10); err != nil {
			t.Fatal(err)
		}
	}
	// Compare total accumulated bias magnitude: lower voltage → less
	// NBTI shift on every cell.
	sumAbs := func(r *Rig) float64 {
		var s float64
		arr := r.Device().SRAM
		for i := 0; i < arr.Cells(); i++ {
			s += arr.Bias(i)
		}
		return s
	}
	if b, c := sumAbs(browned), sumAbs(clean); b >= c {
		t.Errorf("browned-out soak aged as much as clean (%v >= %v)", b, c)
	}
	if !strings.Contains(strings.Join(browned.Events(), "\n"), "brownout") {
		t.Error("brownout missing from event log")
	}
}

func TestStressForContextCancellation(t *testing.T) {
	r := newFaultyRig(t, "MSP432P401", faults.Profile{})
	if _, err := r.PowerOn(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.StressForContext(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled soak returned %v", err)
	}
	if _, err := r.SampleMajorityContext(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled capture returned %v", err)
	}
}

func TestZeroFaultInjectorIsBitIdentical(t *testing.T) {
	// A mounted injector with a zero profile must leave every observable
	// output identical to a rig without one: the fault layer is strictly
	// opt-in.
	plain := newRig(t, "MSP432P401")
	zero := newFaultyRig(t, "MSP432P401", faults.Profile{})
	// Same serial ⇒ same silicon.
	m, _ := device.ByName("MSP432P401")
	d, err := device.New(m, "rig-test", device.WithSRAMLimit(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	zero = New(d, WithInjector(faults.New(faults.Profile{}, d.Serial)))

	run := func(r *Rig) []byte {
		if _, err := r.PowerOn(); err != nil {
			t.Fatal(err)
		}
		if err := r.Device().SRAM.Fill(0x3C); err != nil {
			t.Fatal(err)
		}
		if err := r.SetVoltage(3.3); err != nil {
			t.Fatal(err)
		}
		r.SetTemperature(85)
		if err := r.StressFor(10); err != nil {
			t.Fatal(err)
		}
		r.SetTemperature(25)
		maj, err := r.SampleMajority(5)
		if err != nil {
			t.Fatal(err)
		}
		return maj
	}
	a, b := run(plain), run(zero)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero-profile injector changed capture byte %d", i)
		}
	}
	if plain.ClockHours() != zero.ClockHours() {
		t.Errorf("clocks diverged: %v vs %v", plain.ClockHours(), zero.ClockHours())
	}
}
