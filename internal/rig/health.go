// Retention-health probing: estimating how much analog margin an
// imprint has left without knowing the plaintext. A freshly encoded
// cell powers on the same way every time (vote fraction near 0 or 1 —
// margin near 1); as the imprint decays toward the cell's native skew,
// power-on states destabilize and the per-cell vote distribution drifts
// toward a coin flip (margin near 0, Bernoulli entropy near 1 bit).
// Margin is therefore measurable from captures alone — no message, no
// key — which is what lets a fleet health-sweep carriers it cannot read.
package rig

import (
	"context"
	"fmt"

	"invisiblebits/internal/stats"
)

// DefaultHealthCaptures is the capture burst a health probe uses when
// the caller does not specify one. Margin estimation needs finer vote
// resolution than decode (a 5-capture majority quantizes p to fifths),
// so the default is 3× the paper's decode count.
const DefaultHealthCaptures = 15

// WeakCellMargin is the per-cell margin below which a cell counts as
// weak: |2p−1| < 0.5 means the minority outcome shows up in more than a
// quarter of captures — the cell is nearer a coin flip than an imprint.
const WeakCellMargin = 0.5

// RegionHealth is the margin estimate for one contiguous SRAM region.
type RegionHealth struct {
	Offset int // first byte of the region
	Bytes  int // region length in bytes
	// MeanMargin is the mean per-cell margin |2p−1| over the region,
	// where p is the cell's power-on-1 vote fraction: 1 = perfectly
	// stable imprint, 0 = pure noise.
	MeanMargin float64
	// MeanEntropy is the mean per-cell Bernoulli entropy H(p) in bits:
	// the complement view of margin (0 = stable, 1 = coin flip).
	MeanEntropy float64
	// WeakFrac is the fraction of cells with margin below
	// WeakCellMargin.
	WeakFrac float64
}

// HealthReport aggregates a whole-array probe.
type HealthReport struct {
	Captures    int
	Regions     []RegionHealth
	MeanMargin  float64 // array-wide mean per-cell margin
	MeanEntropy float64 // array-wide mean per-cell entropy (bits)
	WeakFrac    float64 // array-wide weak-cell fraction
}

// ProbeHealth estimates per-region imprint margin from a burst of
// power-on captures. regionBytes ≤ 0 probes the array as one region.
func (r *Rig) ProbeHealth(captures, regionBytes int) (*HealthReport, error) {
	return r.ProbeHealthContext(context.Background(), captures, regionBytes)
}

// ProbeHealthContext is ProbeHealth with cancellation; the capture
// burst rides the debugger link, so injected transient faults surface
// as errors the caller's retry policy can absorb.
func (r *Rig) ProbeHealthContext(ctx context.Context, captures, regionBytes int) (*HealthReport, error) {
	if captures <= 0 {
		captures = DefaultHealthCaptures
	}
	votes, err := r.SampleVotesContext(ctx, captures)
	if err != nil {
		return nil, err
	}
	nBytes := len(votes) / 8
	if nBytes == 0 {
		return nil, fmt.Errorf("rig: device has no SRAM cells to probe")
	}
	if regionBytes <= 0 || regionBytes > nBytes {
		regionBytes = nBytes
	}
	rep := &HealthReport{Captures: captures}
	// Vote counts take only captures+1 values, so per-region sums
	// reduce to a histogram dotted with per-value margin/entropy tables
	// — no per-cell division or log. The table entries evaluate the
	// exact per-cell expressions, so the weak-cell classification is
	// unchanged; the dot-product groups float additions differently, so
	// region means agree with the per-cell loop to rounding.
	tab := stats.NewVoteTable(captures)
	hist := make([]int, captures+1)
	var totM, totH float64
	totWeak := 0
	for off := 0; off < nBytes; off += regionBytes {
		end := off + regionBytes
		if end > nBytes {
			end = nBytes
		}
		tab.Histogram(votes[off*8:end*8], hist)
		var sumM, sumH float64
		weak := 0
		for v, c := range hist {
			if c == 0 {
				continue
			}
			fc := float64(c)
			sumM += fc * tab.Margin[v]
			sumH += fc * tab.Entropy[v]
			if tab.Margin[v] < WeakCellMargin {
				weak += c
			}
		}
		cells := float64((end - off) * 8)
		rep.Regions = append(rep.Regions, RegionHealth{
			Offset:      off,
			Bytes:       end - off,
			MeanMargin:  sumM / cells,
			MeanEntropy: sumH / cells,
			WeakFrac:    float64(weak) / cells,
		})
		totM += sumM
		totH += sumH
		totWeak += weak
	}
	cells := float64(nBytes * 8)
	rep.MeanMargin = totM / cells
	rep.MeanEntropy = totH / cells
	rep.WeakFrac = float64(totWeak) / cells
	r.logf("health probe: margin %.3f entropy %.3f weak %.1f%% (%d captures, %d regions)",
		rep.MeanMargin, rep.MeanEntropy, 100*rep.WeakFrac, captures, len(rep.Regions))
	return rep, nil
}
