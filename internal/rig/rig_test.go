package rig

import (
	"strings"
	"testing"

	"invisiblebits/internal/cpu"
	"invisiblebits/internal/device"
	"invisiblebits/internal/progen"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

func newRig(t *testing.T, model string) *Rig {
	t.Helper()
	m, err := device.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, "rig-test", device.WithSRAMLimit(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	return New(d)
}

func TestInitialConditionsNominal(t *testing.T) {
	r := newRig(t, "MSP432P401")
	c := r.Conditions()
	if c.VoltageV != 1.2 || c.TempC != 25 {
		t.Fatalf("initial conditions = %v", c)
	}
	if r.ClockHours() != 0 {
		t.Fatalf("clock = %v", r.ClockHours())
	}
}

func TestTemperatureRampConsumesTime(t *testing.T) {
	r := newRig(t, "MSP432P401")
	r.SetTemperature(85)
	wantHours := 60.0 / ChamberRampCPerMin / 60
	if got := r.ClockHours(); got < wantHours*0.99 || got > wantHours*1.01 {
		t.Fatalf("ramp consumed %vh, want %vh", got, wantHours)
	}
}

func TestSetVoltageValidation(t *testing.T) {
	r := newRig(t, "MSP432P401")
	if err := r.SetVoltage(0); err == nil {
		t.Error("zero voltage accepted")
	}
	if err := r.SetVoltage(3.3); err != nil {
		t.Errorf("MCU overdrive refused: %v", err)
	}
}

func TestRegulatedDeviceNeedsBypass(t *testing.T) {
	r := newRig(t, "BCM2837")
	if err := r.SetVoltage(2.2); err != ErrNeedsBypass {
		t.Fatalf("err = %v, want ErrNeedsBypass", err)
	}
	if err := r.BypassRegulator(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetVoltage(2.2); err != nil {
		t.Fatalf("post-bypass overdrive refused: %v", err)
	}
	// MCUs don't have (or need) the bypass.
	r2 := newRig(t, "MSP432P401")
	if err := r2.BypassRegulator(); err == nil {
		t.Error("bypass on unregulated device accepted")
	}
}

func TestFullEncodeDecodeWorkflow(t *testing.T) {
	// Algorithm 1 + Algorithm 2 driven through the rig, end to end, with
	// the payload writer actually executing on the simulated CPU.
	r := newRig(t, "MSP432P401")
	d := r.Device()

	payload := make([]byte, d.SRAM.Bytes())
	rng.NewSource(2024).Bytes(payload)

	// Encode: load writer at nominal, run, elevate, soak.
	src, err := progen.WriterProgram(payload)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := progen.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PowerOn(); err != nil {
		t.Fatal(err)
	}
	reason, err := r.RunFirmware(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if reason != cpu.StopBusyWait {
		t.Fatalf("writer stopped with %v", reason)
	}
	if err := r.SetVoltage(d.Model.VAccV); err != nil {
		t.Fatal(err)
	}
	r.SetTemperature(d.Model.TAccC)
	if err := r.StressFor(d.Model.EncodingHours); err != nil {
		t.Fatal(err)
	}
	// Back to nominal; load camouflage.
	r.SetTemperature(d.Model.TNomC)
	if err := r.SetVoltage(d.Model.VNomV); err != nil {
		t.Fatal(err)
	}
	r.PowerOff()
	camo, err := progen.Assemble(progen.CamouflageProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadProgram(camo); err != nil {
		t.Fatal(err)
	}

	// Decode: retainer, five captures, majority, invert.
	ret, err := progen.Assemble(progen.RetainerProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadProgram(ret); err != nil {
		t.Fatal(err)
	}
	maj, err := r.SampleMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	recovered := make([]byte, len(maj))
	for i, b := range maj {
		recovered[i] = ^b
	}
	ber := stats.BitErrorRate(recovered, payload)
	if ber < 0.04 || ber > 0.09 {
		t.Fatalf("end-to-end channel error = %v, want ≈0.065", ber)
	}
	if r.ClockHours() < d.Model.EncodingHours {
		t.Errorf("clock %v did not advance through stress", r.ClockHours())
	}
}

func TestStressForValidation(t *testing.T) {
	r := newRig(t, "MSP432P401")
	if err := r.StressFor(0); err == nil {
		t.Error("zero-duration stress accepted")
	}
	// Unpowered stress must fail (SRAM holds nothing).
	if err := r.StressFor(1); err == nil {
		t.Error("stress on unpowered device accepted")
	}
}

func TestShelveAdvancesClock(t *testing.T) {
	r := newRig(t, "MSP432P401")
	if err := r.ShelveFor(24); err != nil {
		t.Fatal(err)
	}
	if r.ClockHours() != 24 {
		t.Fatalf("clock = %v", r.ClockHours())
	}
}

func TestSampleMajorityFromPoweredState(t *testing.T) {
	r := newRig(t, "MSP432P401")
	if _, err := r.PowerOn(); err != nil {
		t.Fatal(err)
	}
	maj1, err := r.SampleMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	maj2, err := r.SampleMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	// An unaged device has genuinely metastable cells near the mismatch
	// origin; ~1% cross-majority churn is the expected physical noise
	// (encoded devices are far more stable — see the sram tests).
	if ber := stats.BitErrorRate(maj1, maj2); ber > 0.03 {
		t.Errorf("majority unstable across samplings: %v", ber)
	}
	if !r.Device().SRAM.Powered() {
		t.Error("device should be left powered after sampling")
	}
}

func TestSampleVotesConsistentWithMajority(t *testing.T) {
	r := newRig(t, "MSP432P401")
	maj, err := r.SampleMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	votes, err := r.SampleVotes(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != len(maj)*8 {
		t.Fatalf("votes length %d for %d bytes", len(votes), len(maj))
	}
	// Vote counts and majority must agree for decisive cells.
	disagree := 0
	for i, v := range votes {
		bit := maj[i/8]&(1<<(i%8)) != 0
		if v == 5 && !bit || v == 0 && bit {
			disagree++
		}
	}
	// Marginal cells can flip between the two samplings; decisive (0/5 or
	// 5/5) cells almost never do.
	if frac := float64(disagree) / float64(len(votes)); frac > 0.01 {
		t.Errorf("decisive-cell disagreement fraction %v", frac)
	}
	if !r.Device().SRAM.Powered() {
		t.Error("device should be left powered")
	}
}

func TestPowerOnCyclesWhenAlreadyPowered(t *testing.T) {
	r := newRig(t, "MSP432P401")
	if _, err := r.PowerOn(); err != nil {
		t.Fatal(err)
	}
	// Second PowerOn must cycle cleanly instead of erroring.
	if _, err := r.PowerOn(); err != nil {
		t.Fatalf("re-PowerOn failed: %v", err)
	}
}

func TestEventLog(t *testing.T) {
	r := newRig(t, "MSP432P401")
	r.SetTemperature(85)
	if err := r.SetVoltage(3.3); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Events(), "\n")
	for _, want := range []string{"mounted MSP432P401", "chamber -> 85", "supply -> 3.30V"} {
		if !strings.Contains(joined, want) {
			t.Errorf("log missing %q:\n%s", want, joined)
		}
	}
	// Events() must return a copy.
	ev := r.Events()
	if len(ev) > 0 {
		ev[0] = "tampered"
		if r.Events()[0] == "tampered" {
			t.Error("Events exposes internal slice")
		}
	}
}
