package rig

import (
	"context"
	"math"
	"testing"

	"invisiblebits/internal/device"
	"invisiblebits/internal/stats"
)

func healthRig(t *testing.T, serial string) *Rig {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	return New(d)
}

// TestProbeHealthMatchesPerCellReference: the histogram-dotted-with-
// tables aggregation agrees with the per-cell margin/entropy loop it
// replaced. Two rigs with the same serial observe identical capture
// streams, so the reference can recompute from its own twin's votes.
func TestProbeHealthMatchesPerCellReference(t *testing.T) {
	const captures = 15
	const regionBytes = 256

	rep, err := healthRig(t, "health-eq").ProbeHealth(captures, regionBytes)
	if err != nil {
		t.Fatal(err)
	}

	votes, err := healthRig(t, "health-eq").SampleVotes(captures)
	if err != nil {
		t.Fatal(err)
	}
	nBytes := len(votes) / 8
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

	if len(rep.Regions) != (nBytes+regionBytes-1)/regionBytes {
		t.Fatalf("got %d regions for %d bytes at %dB each", len(rep.Regions), nBytes, regionBytes)
	}
	var totM, totH float64
	totWeak := 0
	for _, reg := range rep.Regions {
		var sumM, sumH float64
		weak := 0
		for i := reg.Offset * 8; i < (reg.Offset+reg.Bytes)*8; i++ {
			p := float64(votes[i]) / float64(captures)
			m := math.Abs(2*p - 1)
			sumM += m
			sumH += stats.BitEntropy(p)
			if m < WeakCellMargin {
				weak++
			}
		}
		cells := float64(reg.Bytes * 8)
		if !close(reg.MeanMargin, sumM/cells) || !close(reg.MeanEntropy, sumH/cells) {
			t.Fatalf("region @%d: margin/entropy %v/%v, reference %v/%v",
				reg.Offset, reg.MeanMargin, reg.MeanEntropy, sumM/cells, sumH/cells)
		}
		// Weak-cell classification is exact (integer count), not merely close.
		if reg.WeakFrac != float64(weak)/cells {
			t.Fatalf("region @%d: weak %v, reference %v", reg.Offset, reg.WeakFrac, float64(weak)/cells)
		}
		totM += sumM
		totH += sumH
		totWeak += weak
	}
	cells := float64(nBytes * 8)
	if !close(rep.MeanMargin, totM/cells) || !close(rep.MeanEntropy, totH/cells) ||
		rep.WeakFrac != float64(totWeak)/cells {
		t.Fatalf("array-wide %v/%v/%v, reference %v/%v/%v",
			rep.MeanMargin, rep.MeanEntropy, rep.WeakFrac,
			totM/cells, totH/cells, float64(totWeak)/cells)
	}
}

// TestSampleVotesIntoMatchesSampleVotes: the allocation-free vote
// sampler observes the same capture stream as the allocating one (twin
// rigs, same serial ⇒ same noise sequence).
func TestSampleVotesIntoMatchesSampleVotes(t *testing.T) {
	const captures = 7
	want, err := healthRig(t, "votes-into").SampleVotes(captures)
	if err != nil {
		t.Fatal(err)
	}
	r := healthRig(t, "votes-into")
	got := make([]uint16, r.Device().SRAM.Cells())
	if err := r.SampleVotesIntoContext(context.Background(), captures, got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("vote %d differs: %d vs %d", i, got[i], want[i])
		}
	}
	// Wrong-sized destination is rejected, not silently truncated.
	if err := r.SampleVotesIntoContext(context.Background(), captures, got[:len(got)-1]); err == nil {
		t.Fatal("accepted short destination buffer")
	}
}

// TestProbeHealthFreshVsDecayed: sanity on the statistic itself — a
// fresh (never-stressed) array reads near-perfect margin, and shelving
// after an encode can only lower it.
func TestProbeHealthFreshVsDecayed(t *testing.T) {
	r := healthRig(t, "health-decay")
	fresh, err := r.ProbeHealth(15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.MeanMargin < 0.8 {
		t.Fatalf("fresh margin %v, want near 1", fresh.MeanMargin)
	}
	if err := r.ShelveFor(3 * 365 * 24); err != nil {
		t.Fatal(err)
	}
	aged, err := r.ProbeHealth(15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aged.MeanMargin > fresh.MeanMargin {
		t.Fatalf("margin rose with age: %v → %v", fresh.MeanMargin, aged.MeanMargin)
	}
}
