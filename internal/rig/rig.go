// Package rig simulates the paper's evaluation platform (Fig. 5): a
// controller board driving a target device's supply rail, a thermal
// chamber, a debugger link, and automated power-on-state sampling. The
// rig owns the simulated clock — stress time, shelf time, and chamber
// ramps all advance it — so experiments can report encoding times in the
// paper's units (hours) while running in milliseconds.
//
// The controller "supplies power directly if the target device consumes a
// small amount of power … but switches to an external power supply unit
// if the target demands higher current"; complex devices additionally
// need the §7.2 regulator bypass before their core rail can be
// overdriven.
package rig

import (
	"context"
	"errors"
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/asm"
	"invisiblebits/internal/cpu"
	"invisiblebits/internal/device"
	"invisiblebits/internal/faults"
)

// ChamberRampCPerMin is the thermal chamber's ramp rate. Ramps consume
// simulated time but (as in the paper's methodology) aging during the
// short ramp is neglected relative to hours-long soaks.
const ChamberRampCPerMin = 5.0

// stressSlices is how finely a fault-injected soak is diced: the
// injector is consulted (death, brownout, chamber excursion) once per
// slice. Without an injector the soak runs in a single step, keeping the
// no-fault path bit-identical to a rig that has never heard of faults.
const stressSlices = 16

// Rig couples a device to the evaluation hardware.
type Rig struct {
	dev *device.Device

	clockHours float64
	chamberC   float64
	supplyV    float64
	bypassed   bool

	injector faults.Injector

	transientFaults int
	permanentFaults int

	events []string
}

// State is the controller-side condition of the rig: everything the
// evaluation hardware holds that the device image does not. A campaign
// checkpoint persists it next to the device image so a crash-resumed
// supervisor can re-enter a soak at the exact conditions — clock,
// chamber, supply, and the §7.2 bypass — the crashed process left
// behind. JSON- and gob-encodable.
type State struct {
	ClockHours float64
	ChamberC   float64
	SupplyV    float64
	Bypassed   bool
}

// State snapshots the rig's controller state.
func (r *Rig) State() State {
	return State{
		ClockHours: r.clockHours,
		ChamberC:   r.chamberC,
		SupplyV:    r.supplyV,
		Bypassed:   r.bypassed,
	}
}

// RestoreState re-establishes a checkpointed controller state on a
// freshly mounted rig: the clock resumes where the crashed campaign
// left it, and the chamber/supply/bypass are re-applied without ramp
// time (the checkpoint recorded conditions that were already reached).
// The safe-voltage interlock still holds — a checkpoint cannot smuggle
// in an overdrive the device was never qualified for.
func (r *Rig) RestoreState(s State) error {
	if s.SupplyV <= 0 {
		return fmt.Errorf("rig: checkpoint has non-positive supply voltage %v", s.SupplyV)
	}
	if ceil := r.dev.Model.SafeVoltageCeiling(); s.SupplyV > ceil {
		return fmt.Errorf("%w: checkpointed %.2fV > %.2fV for %s",
			ErrUnsafeVoltage, s.SupplyV, ceil, r.dev.Model.Name)
	}
	if s.Bypassed && !r.dev.Model.RequiresRegulatorBypass {
		return fmt.Errorf("rig: checkpoint claims a bypass on %s, which exposes its core rail", r.dev.Model.Name)
	}
	r.clockHours = s.ClockHours
	r.chamberC = s.ChamberC
	r.supplyV = s.SupplyV
	r.bypassed = s.Bypassed
	r.logf("restored checkpoint state: %.2fV/%.0f°C, bypassed=%v", s.SupplyV, s.ChamberC, s.Bypassed)
	return nil
}

// FaultCounts reports how many classified faults the rig has observed at
// its injector hook points, split by severity. Fleet reports snapshot
// the counters around each per-device operation, making retry spend and
// breaker trips explainable post-hoc.
func (r *Rig) FaultCounts() (transient, permanent int) {
	return r.transientFaults, r.permanentFaults
}

// Option customizes rig construction.
type Option func(*Rig)

// WithInjector mounts a fault injector between the rig and the device.
// Every debugger-link operation, power ramp, capture burst, and stress
// slice consults it first; see the faults package for the hazard model.
func WithInjector(inj faults.Injector) Option {
	return func(r *Rig) { r.injector = inj }
}

// New mounts a device in the rig at ambient conditions with the supply at
// the device's nominal voltage.
func New(dev *device.Device, opts ...Option) *Rig {
	r := &Rig{
		dev:      dev,
		chamberC: dev.Model.TNomC,
		supplyV:  dev.Model.VNomV,
	}
	for _, opt := range opts {
		opt(r)
	}
	r.logf("mounted %s (serial %s)", dev.Model.Name, dev.Serial)
	return r
}

// Device returns the mounted device.
func (r *Rig) Device() *device.Device { return r.dev }

// ClockHours returns elapsed simulated time.
func (r *Rig) ClockHours() float64 { return r.clockHours }

// AdvanceClock charges idle simulated time to the rig — retry backoff,
// operator response time, queueing for the chamber. Non-positive
// durations are ignored.
func (r *Rig) AdvanceClock(hours float64) {
	if hours <= 0 {
		return
	}
	r.clockHours += hours
	r.logf("idle %.2fh", hours)
}

// Injector returns the mounted fault injector (nil when fault injection
// is disabled).
func (r *Rig) Injector() faults.Injector { return r.injector }

// faultsActive reports whether a non-inert injector is mounted. An
// injector that provably injects nothing (faults.SeededInjector with a
// zero profile) keeps the rig on its exact no-fault code paths.
func (r *Rig) faultsActive() bool {
	if r.injector == nil {
		return false
	}
	if in, ok := r.injector.(interface{ Inert() bool }); ok && in.Inert() {
		return false
	}
	return true
}

// opError consults the injector before an operation. Injected permanent
// faults kill the device outright — the simulation's equivalent of the
// lab tech finding a board that no longer enumerates.
func (r *Rig) opError(op faults.Op) error {
	if r.injector == nil {
		return nil
	}
	err := r.injector.OpError(op, r.clockHours)
	if err != nil {
		r.logf("FAULT %s: %v", op, err)
		switch {
		case faults.IsPermanent(err):
			r.permanentFaults++
			r.dev.Kill(err)
		case faults.IsTransient(err):
			r.transientFaults++
		}
	}
	return err
}

// Conditions returns the present electrical/thermal environment.
func (r *Rig) Conditions() analog.Conditions {
	return analog.Conditions{VoltageV: r.supplyV, TempC: r.chamberC}
}

// Events returns the rig's action log (most recent last).
func (r *Rig) Events() []string {
	out := make([]string, len(r.events))
	copy(out, r.events)
	return out
}

func (r *Rig) logf(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf("[t=%.2fh] ", r.clockHours)+fmt.Sprintf(format, args...))
}

// SetTemperature ramps the chamber to target °C, consuming ramp time.
func (r *Rig) SetTemperature(targetC float64) {
	delta := targetC - r.chamberC
	if delta < 0 {
		delta = -delta
	}
	r.clockHours += delta / ChamberRampCPerMin / 60
	r.chamberC = targetC
	r.logf("chamber -> %.0f°C", targetC)
}

// ErrNeedsBypass is returned when overdriving a regulated core rail
// without first calling BypassRegulator (§7.2).
var ErrNeedsBypass = errors.New("rig: target regulates its core rail; call BypassRegulator first")

// ErrUnsafeVoltage is returned when a requested supply voltage exceeds
// the device's absolute safe overdrive ceiling (§7.2 cautions that
// elevating the core rail beyond the characterized stress point risks
// destroying the device).
var ErrUnsafeVoltage = errors.New("rig: supply voltage exceeds the device's safe overdrive ceiling")

// SetVoltage drives the supply rail. Overdriving a device that regulates
// its core requires the §7.2 bypass, and no device may be driven past
// its Model.SafeVoltageCeiling.
func (r *Rig) SetVoltage(v float64) error {
	if v <= 0 {
		return fmt.Errorf("rig: non-positive supply voltage %v", v)
	}
	if ceil := r.dev.Model.SafeVoltageCeiling(); v > ceil {
		return fmt.Errorf("%w: %.2fV > %.2fV for %s", ErrUnsafeVoltage, v, ceil, r.dev.Model.Name)
	}
	if v > r.dev.Model.VNomV*1.05 && r.dev.Model.RequiresRegulatorBypass && !r.bypassed {
		return ErrNeedsBypass
	}
	r.supplyV = v
	r.logf("supply -> %.2fV", v)
	return nil
}

// BypassRegulator attaches the rig to the regulator's inductor pin so the
// core rail can be driven directly (§7.2: "we exploit this pin to reach
// the core supply line directly and elevate the core voltage").
func (r *Rig) BypassRegulator() error {
	if !r.dev.Model.RequiresRegulatorBypass {
		return fmt.Errorf("rig: %s exposes its core rail; no bypass needed", r.dev.Model.Name)
	}
	r.bypassed = true
	r.logf("regulator bypassed via inductor pin")
	return nil
}

// LoadProgram flashes firmware through the debugger. With a fault
// injector mounted the link may drop transiently (retry) or the device
// may turn out to be dead (give up).
func (r *Rig) LoadProgram(prog *asm.Program) error {
	if err := r.opError(faults.OpLoadProgram); err != nil {
		return err
	}
	if err := r.dev.LoadProgram(prog); err != nil {
		return err
	}
	r.logf("flashed %d-byte image", len(prog.Image))
	return nil
}

// PowerOn powers the device at the chamber temperature. If the device is
// already powered the rig cycles it (with full discharge) first — the
// controller always takes the rail through ground before a fresh ramp.
func (r *Rig) PowerOn() ([]byte, error) {
	return r.PowerOnContext(context.Background())
}

// PowerOnContext is PowerOn with cancellation, so a fleet
// characterization sweep can abandon a fingerprint read mid-race. On
// cancellation the device is left unpowered and clean.
func (r *Rig) PowerOnContext(ctx context.Context) ([]byte, error) {
	if err := r.opError(faults.OpPowerOn); err != nil {
		return nil, err
	}
	if r.dev.SRAM.Powered() {
		r.PowerOff()
	}
	snap, err := r.dev.PowerOnContext(ctx, r.chamberC)
	if err != nil {
		return nil, err
	}
	if r.injector != nil {
		r.injector.CorruptSnapshot(snap, r.clockHours)
	}
	r.logf("power on at %.2fV/%.0f°C", r.supplyV, r.chamberC)
	return snap, nil
}

// PowerOff drops power; the rig always discharges fully, eliminating
// remanence as the paper's methodology requires ("driving the supply
// voltage of the device to the ground state", §5).
func (r *Rig) PowerOff() {
	r.dev.PowerOff(true)
	r.logf("power off (full discharge)")
}

// RunFirmware executes the loaded program; payload writers and retainers
// end in a busy-wait, which is the expected outcome.
func (r *Rig) RunFirmware(maxSteps uint64) (cpu.StopReason, error) {
	reason, err := r.dev.Run(maxSteps)
	if err != nil {
		return reason, err
	}
	r.logf("firmware ran to %v", reason)
	return reason, nil
}

// StressFor soaks the powered device for hours at the present conditions,
// aging its SRAM with whatever the firmware left there (Algorithm 1,
// lines 5–6). Simulated time advances.
func (r *Rig) StressFor(hours float64) error {
	return r.StressForContext(context.Background(), hours)
}

// StressForContext is StressFor with cancellation. With a fault injector
// mounted the soak is diced into slices: each slice consults the
// injector for device death and runs under possibly-perturbed conditions
// (supply brownout, chamber excursion) — the disturbances a multi-hour
// lab soak actually experiences. A mid-soak death leaves the clock at
// the moment of death, with the stress accumulated up to it.
func (r *Rig) StressForContext(ctx context.Context, hours float64) error {
	if hours <= 0 {
		return fmt.Errorf("rig: non-positive stress duration %v", hours)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if !r.faultsActive() {
		// No (active) injector: single-shot soak, bit-identical to the
		// pre-fault rig (slicing composes exactly in the aging model, but
		// float rounding is not worth risking on the hot path).
		cond := r.Conditions()
		if err := r.stressDevice(cond, hours); err != nil {
			return err
		}
		r.clockHours += hours
		r.logf("stressed %.1fh at %v", hours, cond)
		return nil
	}
	slice := hours / stressSlices
	remaining := hours
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := r.opError(faults.OpStress); err != nil {
			return fmt.Errorf("rig: soak aborted with %.1fh remaining: %w", remaining, err)
		}
		dt := slice
		if remaining < dt {
			dt = remaining
		}
		applied, note := r.injector.PerturbConditions(r.Conditions(), r.clockHours)
		if note != "" {
			r.logf("FAULT stress slice: %s (applied %v)", note, applied)
		}
		if err := r.stressDevice(applied, dt); err != nil {
			return err
		}
		r.clockHours += dt
		remaining -= dt
	}
	r.logf("stressed %.1fh at %v (fault-injected soak)", hours, r.Conditions())
	return nil
}

// stressDevice routes one stress episode through the §7.2 bypass when
// the rig has attached it.
func (r *Rig) stressDevice(c analog.Conditions, hours float64) error {
	if r.bypassed {
		return r.dev.StressBypassed(c, hours)
	}
	return r.dev.Stress(c, hours)
}

// ShelveFor stores the device for hours (natural recovery). A shelved
// device is by definition unpowered, so the rig drops power first.
func (r *Rig) ShelveFor(hours float64) error {
	if r.dev.SRAM.Powered() {
		r.PowerOff()
	}
	if err := r.dev.Shelve(hours); err != nil {
		return err
	}
	r.clockHours += hours
	r.logf("shelved %.1fh", hours)
	return nil
}

// ShelveAtFor stores the unpowered device at tempC for hours — hot
// storage accelerates imprint recovery (the §5.2 retention surface).
// Unlike calling the device's ShelveAt directly, this charges the shelf
// time to the rig's simulated clock, so time-keyed fault profiles (e.g.
// FailAtHours) stay consistent with the aging timeline.
func (r *Rig) ShelveAtFor(hours, tempC float64) error {
	if r.dev.SRAM.Powered() {
		r.PowerOff()
	}
	if err := r.dev.ShelveAt(hours, tempC); err != nil {
		return err
	}
	r.clockHours += hours
	r.logf("shelved %.1fh at %.0f°C", hours, tempC)
	return nil
}

// SampleVotes captures n power-on states and returns the per-cell count
// of 1 readings — the soft information that ecc.SoftDecoder consumes.
// The device is left powered.
func (r *Rig) SampleVotes(n int) ([]uint16, error) {
	return r.SampleVotesContext(context.Background(), n)
}

// SampleVotesContext is SampleVotes with cancellation and fault
// injection: the capture burst rides the debugger link (it may drop
// transiently) and stuck/weak cells corrupt the vote counts.
func (r *Rig) SampleVotesContext(ctx context.Context, n int) ([]uint16, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.opError(faults.OpCapture); err != nil {
		return nil, err
	}
	if r.dev.SRAM.Powered() {
		r.dev.PowerOff(true)
	}
	votes, err := r.dev.SRAM.CaptureVotesContext(ctx, n, r.chamberC)
	if err != nil {
		return nil, err
	}
	r.dev.PowerOff(true)
	if _, err := r.dev.PowerOnContext(ctx, r.chamberC); err != nil {
		return nil, err
	}
	if r.injector != nil {
		r.injector.CorruptVotes(votes, n, r.clockHours)
	}
	r.logf("sampled %d power-on states (per-cell votes)", n)
	return votes, nil
}

// SampleVotesIntoContext is SampleVotesContext writing into a
// caller-provided buffer of Device().SRAM.Cells() counters: a batch
// decoder reuses one buffer across bursts and the sampling path
// allocates nothing in steady state. The buffer is overwritten, not
// accumulated into.
func (r *Rig) SampleVotesIntoContext(ctx context.Context, n int, out []uint16) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.opError(faults.OpCapture); err != nil {
		return err
	}
	if r.dev.SRAM.Powered() {
		r.dev.PowerOff(true)
	}
	if err := r.dev.SRAM.CaptureVotesInto(ctx, n, r.chamberC, out); err != nil {
		return err
	}
	r.dev.PowerOff(true)
	if _, err := r.dev.PowerOnContext(ctx, r.chamberC); err != nil {
		return err
	}
	if r.injector != nil {
		r.injector.CorruptVotes(out, n, r.clockHours)
	}
	r.logf("sampled %d power-on states (per-cell votes)", n)
	return nil
}

// SampleMajority captures n power-on states at the chamber temperature
// and majority-votes them (Algorithm 2, lines 1–6). The device is left
// powered. Sampling is non-destructive (copy tolerance): it does not
// advance the aging clock measurably.
func (r *Rig) SampleMajority(n int) ([]byte, error) {
	return r.SampleMajorityContext(context.Background(), n)
}

// SampleMajorityContext is SampleMajority with cancellation and fault
// injection (transient link drops, stuck/weak cell corruption).
func (r *Rig) SampleMajorityContext(ctx context.Context, n int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.opError(faults.OpCapture); err != nil {
		return nil, err
	}
	if r.dev.SRAM.Powered() {
		r.dev.PowerOff(true)
	}
	maj, err := r.dev.SRAM.CaptureMajorityContext(ctx, n, r.chamberC)
	if err != nil {
		return nil, err
	}
	// Re-arm the CPU so firmware can run after sampling.
	r.dev.PowerOff(true)
	if _, err := r.dev.PowerOnContext(ctx, r.chamberC); err != nil {
		return nil, err
	}
	if r.injector != nil {
		r.injector.CorruptSnapshot(maj, r.clockHours)
	}
	r.logf("sampled %d power-on states (majority vote)", n)
	return maj, nil
}
