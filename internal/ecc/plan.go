package ecc

import (
	"fmt"
	"sort"

	"invisiblebits/internal/stats"
)

// Plan is one feasible ECC configuration for a measured channel.
type Plan struct {
	// Codec is the recommended configuration (nil means the raw channel
	// already meets the target).
	Codec Codec
	// PredictedError is the Eq. 1 / union-bound residual bit error rate.
	PredictedError float64
	// Rate is data bits per SRAM cell (the §5.3 capacity measure).
	Rate float64
	// CapacityBytes is the message capacity on sramBytes of SRAM.
	CapacityBytes int
}

func (p Plan) String() string {
	name := "raw channel"
	if p.Codec != nil {
		name = p.Codec.Name()
	}
	return fmt.Sprintf("%s: predicted error %.4g%%, rate %.3f, capacity %d B",
		name, 100*p.PredictedError, p.Rate, p.CapacityBytes)
}

// Recommend turns §5.2's ECC guidance into a planner: given the measured
// single-copy channel error and a target residual error, it enumerates
// the code families the paper discusses (repetition for the high-error
// regime, Hamming(7,4)/(15,11) for the low-error regime, and their
// compositions), predicts each residual via the Bernoulli model, and
// returns the feasible plans sorted by capacity (highest rate first).
//
// sramBytes sizes the capacity column; the paper's running example is
// the MSP432's 64 KB.
func Recommend(channelError, targetError float64, sramBytes int) ([]Plan, error) {
	if channelError < 0 || channelError >= 0.5 {
		return nil, fmt.Errorf("ecc: channel error %v out of [0, 0.5)", channelError)
	}
	if targetError <= 0 {
		return nil, fmt.Errorf("ecc: target error must be positive, got %v", targetError)
	}

	var plans []Plan
	consider := func(c Codec, residual float64) {
		if residual > targetError {
			return
		}
		rate := 1.0
		if c != nil {
			rate = c.Rate()
		}
		capacity := sramBytes
		if c != nil {
			capacity = maxMessageBytesFor(c, sramBytes)
		}
		plans = append(plans, Plan{Codec: c, PredictedError: residual, Rate: rate, CapacityBytes: capacity})
	}

	// Raw channel.
	consider(nil, channelError)

	// Pure Hamming codes (low-error regime).
	consider(Hamming74{}, stats.HammingResidual74(channelError))
	consider(Hamming1511{}, hammingResidual(channelError, 15))

	// Repetition alone and with a Hamming outer layer. The upper bound of
	// 33 copies accommodates the worst characterized channel (the
	// BCM2837's ~21% single-copy error, Table 4).
	for n := 3; n <= 33; n += 2 {
		repErr := stats.RepetitionErrorRate(1-channelError, n)
		rep, err := NewRepetition(n)
		if err != nil {
			return nil, err
		}
		consider(rep, repErr)
		consider(Composite{Outer: Hamming74{}, Inner: rep}, stats.HammingResidual74(repErr))
		consider(Composite{Outer: Hamming1511{}, Inner: rep}, hammingResidual(repErr, 15))
	}

	sort.Slice(plans, func(i, j int) bool {
		if plans[i].Rate != plans[j].Rate {
			return plans[i].Rate > plans[j].Rate
		}
		return plans[i].PredictedError < plans[j].PredictedError
	})
	return plans, nil
}

// Best returns the highest-capacity plan meeting the target, or an error
// if nothing does.
func Best(channelError, targetError float64, sramBytes int) (Plan, error) {
	plans, err := Recommend(channelError, targetError, sramBytes)
	if err != nil {
		return Plan{}, err
	}
	if len(plans) == 0 {
		return Plan{}, fmt.Errorf("ecc: no configuration reaches %.4g%% on a %.4g%% channel",
			100*targetError, 100*channelError)
	}
	return plans[0], nil
}

// hammingResidual is the union-bound residual for an (n, k) Hamming code:
// a block with ≥2 channel errors decodes wrong, leaving roughly 3/n of
// its bits in error after the miscorrection (same convention as
// stats.HammingResidual74).
func hammingResidual(p float64, n int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	q := 1 - p
	pOK := powf(q, n) + float64(n)*p*powf(q, n-1)
	return (1 - pOK) * 3 / float64(n)
}

func powf(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

// maxMessageBytesFor inverts EncodedLen by binary search (mirrors
// core.MaxMessageBytes without the import cycle).
func maxMessageBytesFor(c Codec, sramBytes int) int {
	lo, hi := 0, sramBytes
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.EncodedLen(mid) <= sramBytes {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
