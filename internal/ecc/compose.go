package ecc

import "fmt"

// Composite chains two codecs: Encode runs Outer first, then Inner
// (the inner code is nearest the channel). The paper's end-to-end system
// (Fig. 13) uses Outer = Hamming(7,4) and Inner = repetition: "we apply a
// Hamming(7,4) on a message d and replicate the message and parity".
//
// Footnote 7 notes the order "does not significantly affect the overall
// error rate"; the ablation bench exercises both orders.
type Composite struct {
	Outer Codec // applied first on encode, last on decode
	Inner Codec // applied last on encode (channel-facing)
}

// Name implements Codec.
func (c Composite) Name() string {
	return fmt.Sprintf("%s+%s", c.Outer.Name(), c.Inner.Name())
}

// EncodedLen implements Codec.
func (c Composite) EncodedLen(msgBytes int) int {
	return c.Inner.EncodedLen(c.Outer.EncodedLen(msgBytes))
}

// Encode implements Codec.
func (c Composite) Encode(msg []byte) ([]byte, error) {
	mid, err := c.Outer.Encode(msg)
	if err != nil {
		return nil, err
	}
	return c.Inner.Encode(mid)
}

// Decode implements Codec.
func (c Composite) Decode(payload []byte, msgBytes int) ([]byte, error) {
	midLen := c.Outer.EncodedLen(msgBytes)
	mid, err := c.Inner.Decode(payload, midLen)
	if err != nil {
		return nil, err
	}
	return c.Outer.Decode(mid, msgBytes)
}

// Rate implements Codec.
func (c Composite) Rate() float64 { return c.Outer.Rate() * c.Inner.Rate() }

// Interleaver permutes payload bits with a fixed-depth block interleave,
// spreading burst errors across codewords. The paper finds Invisible
// Bits' errors already spatially random (Table 2), so interleaving is an
// optional resilience extension rather than a necessity; it matters when
// an adversary injects *localized* noise.
type Interleaver struct {
	Depth int   // number of interleaving rows; must be >= 1
	Next  Codec // codec whose output is interleaved
}

// Name implements Codec.
func (il Interleaver) Name() string {
	return fmt.Sprintf("interleave(%d,%s)", il.Depth, il.Next.Name())
}

// EncodedLen implements Codec.
func (il Interleaver) EncodedLen(msgBytes int) int { return il.Next.EncodedLen(msgBytes) }

// Encode implements Codec. The permutation is cached per (depth, n) —
// the old code rebuilt a []int on every call — and applied through its
// inverse as a gather (out bit k = lin bit inv[k]), 8 bits per step.
func (il Interleaver) Encode(msg []byte) ([]byte, error) {
	if il.Depth < 1 {
		return nil, fmt.Errorf("ecc: interleaver depth %d < 1", il.Depth)
	}
	lin, err := il.Next.Encode(msg)
	if err != nil {
		return nil, err
	}
	n := len(lin) * 8
	out := make([]byte, len(lin))
	gatherBits(out, lin, permFor(il.Depth, n).inv, n)
	return out, nil
}

// Decode implements Codec: the cached forward permutation gathers the
// linear stream straight out of the payload (lin bit i = payload bit
// fwd[i]). The per-bit path lives on as DecodeScalar.
func (il Interleaver) Decode(payload []byte, msgBytes int) ([]byte, error) {
	if il.Depth < 1 {
		return nil, fmt.Errorf("ecc: interleaver depth %d < 1", il.Depth)
	}
	if len(payload) != il.EncodedLen(msgBytes) {
		return nil, ErrPayloadSize
	}
	n := len(payload) * 8
	lin := make([]byte, len(payload))
	gatherBits(lin, payload, permFor(il.Depth, n).fwd, n)
	return il.Next.Decode(lin, msgBytes)
}

// Rate implements Codec.
func (il Interleaver) Rate() float64 { return il.Next.Rate() }
