package ecc

import "fmt"

// hammingN is a generic (2^m−1, 2^m−1−m) Hamming code over a bit stream.
// Codeword bit positions are 1-based; positions that are powers of two
// carry parity, the rest carry data. The syndrome — the XOR of the
// positions of all set bits — is zero for a valid codeword and otherwise
// names the single flipped position directly.
type hammingN struct {
	m int // parity bits per codeword
	n int // codeword length 2^m − 1
	k int // data bits per codeword
}

func newHammingN(m int) hammingN {
	n := 1<<m - 1
	return hammingN{m: m, n: n, k: n - m}
}

// Hamming1511 is the (15,11) Hamming code: 11 data bits per 15-bit
// codeword (rate 0.733 vs (7,4)'s 0.571). §5.2 recommends "more efficient
// error correction codes" once the raw error is low; (15,11) is the next
// rung of the same ladder, trading correction density for rate.
type Hamming1511 struct{}

var ham15 = newHammingN(4)

// Name implements Codec.
func (Hamming1511) Name() string { return "hamming(15,11)" }

// EncodedLen implements Codec.
func (Hamming1511) EncodedLen(msgBytes int) int {
	words := (msgBytes*8 + ham15.k - 1) / ham15.k
	return (words*ham15.n + 7) / 8
}

// Encode implements Codec.
func (Hamming1511) Encode(msg []byte) ([]byte, error) { return ham15.encode(msg) }

// Decode implements Codec.
func (h Hamming1511) Decode(payload []byte, msgBytes int) ([]byte, error) {
	if len(payload) != h.EncodedLen(msgBytes) {
		return nil, ErrPayloadSize
	}
	return ham15.decode(payload, msgBytes)
}

// Rate implements Codec.
func (Hamming1511) Rate() float64 { return float64(ham15.k) / float64(ham15.n) }

func isPow2(x int) bool { return x&(x-1) == 0 }

// encode packs msg's bit stream into codewords.
func (h hammingN) encode(msg []byte) ([]byte, error) {
	totalBits := len(msg) * 8
	words := (totalBits + h.k - 1) / h.k
	out := make([]byte, (words*h.n+7)/8)
	for w := 0; w < words; w++ {
		var cw uint32 // bit p-1 holds position p
		di := 0
		for p := 1; p <= h.n; p++ {
			if isPow2(p) {
				continue
			}
			srcBit := w*h.k + di
			di++
			if srcBit < totalBits && getBit(msg, srcBit) != 0 {
				cw |= 1 << (p - 1)
			}
		}
		// Parity bits: parity at position 2^i covers positions with bit i.
		for i := 0; i < h.m; i++ {
			var par uint32
			for p := 1; p <= h.n; p++ {
				if p&(1<<i) != 0 && cw&(1<<(p-1)) != 0 {
					par ^= 1
				}
			}
			if par != 0 {
				cw |= 1 << ((1 << i) - 1)
			}
		}
		for b := 0; b < h.n; b++ {
			setBit(out, w*h.n+b, byte((cw>>b)&1))
		}
	}
	return out, nil
}

// decode corrects one error per codeword and unpacks the data bits.
func (h hammingN) decode(payload []byte, msgBytes int) ([]byte, error) {
	totalBits := msgBytes * 8
	words := (totalBits + h.k - 1) / h.k
	out := make([]byte, msgBytes)
	for w := 0; w < words; w++ {
		var cw uint32
		for b := 0; b < h.n; b++ {
			cw |= uint32(getBit(payload, w*h.n+b)) << b
		}
		syndrome := 0
		for p := 1; p <= h.n; p++ {
			if cw&(1<<(p-1)) != 0 {
				syndrome ^= p
			}
		}
		if syndrome != 0 {
			cw ^= 1 << (syndrome - 1)
		}
		di := 0
		for p := 1; p <= h.n; p++ {
			if isPow2(p) {
				continue
			}
			dstBit := w*h.k + di
			di++
			if dstBit < totalBits {
				setBit(out, dstBit, byte((cw>>(p-1))&1))
			}
		}
	}
	return out, nil
}

// Secded84 is the extended Hamming(8,4) SECDED code: Hamming(7,4) plus an
// overall parity bit, correcting single errors and *detecting* (without
// miscorrecting) double errors per codeword. On the Invisible Bits
// channel this removes Hamming(7,4)'s failure mode where two errors in a
// word get "corrected" into a third (§5.2's miscorrection penalty) — at
// the cost of rate 0.5.
type Secded84 struct{}

// Name implements Codec.
func (Secded84) Name() string { return "secded(8,4)" }

// EncodedLen implements Codec: 2 codewords per message byte, 8 bits each.
func (Secded84) EncodedLen(msgBytes int) int { return 2 * msgBytes }

// Encode implements Codec.
func (Secded84) Encode(msg []byte) ([]byte, error) {
	out := make([]byte, 2*len(msg))
	for i, b := range msg {
		out[2*i] = secdedEncodeNibble(b & 0x0F)
		out[2*i+1] = secdedEncodeNibble(b >> 4)
	}
	return out, nil
}

func secdedEncodeNibble(d byte) byte {
	cw := encodeNibble(d) // 7-bit Hamming word in bits 0..6
	var par byte
	for b := 0; b < 7; b++ {
		par ^= (cw >> b) & 1
	}
	return cw | par<<7
}

// DecodeReport carries SECDED diagnostics.
type DecodeReport struct {
	Corrected int // single-bit corrections applied
	Detected  int // uncorrectable double errors detected (left as-is)
}

// Decode implements Codec (best-effort; use DecodeWithReport for
// diagnostics).
func (s Secded84) Decode(payload []byte, msgBytes int) ([]byte, error) {
	out, _, err := s.DecodeWithReport(payload, msgBytes)
	return out, err
}

// DecodeWithReport decodes and reports correction/detection counts.
func (s Secded84) DecodeWithReport(payload []byte, msgBytes int) ([]byte, DecodeReport, error) {
	var rep DecodeReport
	if len(payload) != s.EncodedLen(msgBytes) {
		return nil, rep, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	for i := 0; i < msgBytes; i++ {
		var b byte
		for half := 0; half < 2; half++ {
			cw := payload[2*i+half]
			nib := secdedDecodeNibble(cw, &rep)
			b |= nib << (4 * half)
		}
		out[i] = b
	}
	return out, rep, nil
}

func secdedDecodeNibble(cw byte, rep *DecodeReport) byte {
	inner := cw & 0x7F
	var overall byte
	for b := 0; b < 8; b++ {
		overall ^= (cw >> b) & 1
	}
	p1 := inner & 1
	p2 := (inner >> 1) & 1
	d1 := (inner >> 2) & 1
	p4 := (inner >> 3) & 1
	d2 := (inner >> 4) & 1
	d3 := (inner >> 5) & 1
	d4 := (inner >> 6) & 1
	s1 := p1 ^ d1 ^ d2 ^ d4
	s2 := p2 ^ d1 ^ d3 ^ d4
	s4 := p4 ^ d2 ^ d3 ^ d4
	syndrome := s1 | s2<<1 | s4<<2
	switch {
	case syndrome == 0 && overall == 0:
		// Clean (or an undetectable even-weight pattern).
	case syndrome != 0 && overall == 1:
		// Single error at `syndrome` (or the parity bit itself if the
		// syndrome is zero — handled by the next case).
		inner ^= 1 << (syndrome - 1)
		rep.Corrected++
	case syndrome == 0 && overall == 1:
		// The overall parity bit itself flipped; data intact.
		rep.Corrected++
	default: // syndrome != 0 && overall == 0
		// Double error: detected, not correctable. Leave the word as-is
		// rather than miscorrect.
		rep.Detected++
	}
	d1 = (inner >> 2) & 1
	d2 = (inner >> 4) & 1
	d3 = (inner >> 5) & 1
	d4 = (inner >> 6) & 1
	return d1 | d2<<1 | d3<<2 | d4<<3
}

// Rate implements Codec.
func (Secded84) Rate() float64 { return 0.5 }

// Interface checks.
var (
	_ Codec = Hamming1511{}
	_ Codec = Secded84{}
)

// String diagnostics for DecodeReport.
func (r DecodeReport) String() string {
	return fmt.Sprintf("corrected %d, detected-uncorrectable %d", r.Corrected, r.Detected)
}
