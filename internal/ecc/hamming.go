package ecc

// Hamming74 is the classic (7,4) Hamming code: 4 data bits per 7-bit
// codeword, correcting any single bit error per codeword. §5.2 pairs it
// with the repetition code once the raw error is low enough: "more
// efficient error correction codes are available".
//
// Codeword layout (bit positions 1..7, parity at powers of two):
//
//	p1 p2 d1 p4 d2 d3 d4
//
// with p1 = d1⊕d2⊕d4, p2 = d1⊕d3⊕d4, p4 = d2⊕d3⊕d4. The syndrome
// (s4 s2 s1) directly indexes the erroneous position.
type Hamming74 struct{}

// Name implements Codec.
func (Hamming74) Name() string { return "hamming(7,4)" }

// EncodedLen implements Codec: 8·msgBytes data bits → 2·msgBytes
// codewords → 14·msgBytes bits, rounded up to bytes.
func (Hamming74) EncodedLen(msgBytes int) int { return (14*msgBytes + 7) / 8 }

// encodeNibble maps 4 data bits (d1..d4 in bits 0..3) to a 7-bit codeword.
func encodeNibble(d byte) byte {
	d1 := d & 1
	d2 := (d >> 1) & 1
	d3 := (d >> 2) & 1
	d4 := (d >> 3) & 1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p4 := d2 ^ d3 ^ d4
	// bits 0..6 = positions 1..7.
	return p1 | p2<<1 | d1<<2 | p4<<3 | d2<<4 | d3<<5 | d4<<6
}

// decodeNibble corrects a single-bit error in the 7-bit codeword and
// returns the 4 data bits.
func decodeNibble(cw byte) byte {
	p1 := cw & 1
	p2 := (cw >> 1) & 1
	d1 := (cw >> 2) & 1
	p4 := (cw >> 3) & 1
	d2 := (cw >> 4) & 1
	d3 := (cw >> 5) & 1
	d4 := (cw >> 6) & 1
	s1 := p1 ^ d1 ^ d2 ^ d4
	s2 := p2 ^ d1 ^ d3 ^ d4
	s4 := p4 ^ d2 ^ d3 ^ d4
	syndrome := s1 | s2<<1 | s4<<2 // equals the 1-based error position
	if syndrome != 0 {
		cw ^= 1 << (syndrome - 1)
		d1 = (cw >> 2) & 1
		d2 = (cw >> 4) & 1
		d3 = (cw >> 5) & 1
		d4 = (cw >> 6) & 1
	}
	return d1 | d2<<1 | d3<<2 | d4<<3
}

// Encode implements Codec: one table hit per message byte emits both
// codewords (14 bits) into a draining bit accumulator.
func (h Hamming74) Encode(msg []byte) ([]byte, error) {
	out := make([]byte, h.EncodedLen(len(msg)))
	hammingEncodeInto(out, msg)
	return out, nil
}

// Decode implements Codec. The per-bit syndrome path lives on as
// DecodeScalar; the default path looks each 14-bit payload chunk up in
// a table built from decodeNibble, so one hit corrects and extracts a
// whole message byte.
func (h Hamming74) Decode(payload []byte, msgBytes int) ([]byte, error) {
	if len(payload) != h.EncodedLen(msgBytes) {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	hammingDecodeInto(out, payload, msgBytes)
	return out, nil
}

// Rate implements Codec.
func (Hamming74) Rate() float64 { return 4.0 / 7.0 }
