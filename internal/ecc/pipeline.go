package ecc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// Word-parallel decode machinery.
//
// The paper's readback chain (§4.4: deinterleave → Hamming(7,4) or
// repetition ECC → digest verify) was originally bit-at-a-time: getBit/
// setBit per coded bit, a fresh permutation slice per interleaver call,
// and a 16-way codeword search per Hamming nibble. This file replaces
// the inner loops with table- and word-parallel equivalents while the
// Codec interface (and the retained DecodeScalar paths in scalar.go)
// stay untouched:
//
//   - Hamming(7,4) decodes through a 2^14-entry LUT: one lookup per
//     *pair* of codewords performs syndrome computation, correction and
//     data-bit extraction for a whole output byte. The table is built
//     from decodeNibble itself, so LUT == scalar by construction.
//   - Repetition majority runs 64 message bits per step: each copy is
//     byte-aligned (copies are whole-message blocks), so copy words
//     ripple-add into bit-sliced counters and a word comparator turns
//     the sliced counts into a majority word — the same counter idiom
//     the capture kernel uses for vote accumulation.
//   - Interleaver permutations are cached per (depth, n) — forward and
//     inverse — and applied with a gather loop that assembles 8 bits
//     per step instead of a read-modify-write per bit.
//
// Pipeline composes these into a zero-alloc decode of a whole codec
// stack: scratch for every stage is owned by the Pipeline, so a warm
// DecodeInto never touches the heap.

// --- Hamming(7,4) lookup tables ---------------------------------------------

// h74 holds the Hamming LUTs, built once on first use. decLUT maps 14
// payload bits (two 7-bit codewords, little-endian bit order) to the
// decoded byte; decLUT7 maps one codeword to its data nibble; encLUT
// maps a message byte to its 14-bit codeword pair.
var h74 struct {
	once    sync.Once
	decLUT  []byte // [1 << 14]
	decLUT7 [128]byte
	encLUT  [256]uint16
}

func h74Tables() {
	h74.once.Do(func() {
		for cw := 0; cw < 128; cw++ {
			h74.decLUT7[cw] = decodeNibble(byte(cw))
		}
		h74.decLUT = make([]byte, 1<<14)
		for v := 0; v < 1<<14; v++ {
			h74.decLUT[v] = h74.decLUT7[v&0x7F] | h74.decLUT7[v>>7]<<4
		}
		for b := 0; b < 256; b++ {
			h74.encLUT[b] = uint16(encodeNibble(byte(b&0x0F))) |
				uint16(encodeNibble(byte(b>>4)))<<7
		}
	})
}

// --- interleaver permutation cache ------------------------------------------

// permKey identifies one interleave geometry: the block depth and the
// payload size in bits.
type permKey struct {
	depth int
	n     int
}

// permTable holds both directions of the interleave: fwd[src] is the
// interleaved slot of linear bit src (exactly what Interleaver.permute
// used to rebuild per call), inv is its inverse. int32 halves the cache
// footprint; payloads are well under 2^31 bits.
type permTable struct {
	fwd []int32
	inv []int32
}

var permCache sync.Map // permKey -> *permTable

// permFor returns the cached permutation tables for (depth, n bits),
// computing them once per geometry. Concurrent first calls may race to
// build the same table; the loser's copy is discarded by LoadOrStore.
func permFor(depth, n int) *permTable {
	key := permKey{depth, n}
	if t, ok := permCache.Load(key); ok {
		return t.(*permTable)
	}
	t := &permTable{fwd: make([]int32, n), inv: make([]int32, n)}
	cols := (n + depth - 1) / depth
	k := int32(0)
	for c := 0; c < cols; c++ {
		for r := 0; r < depth; r++ {
			src := r*cols + c
			if src < n {
				t.fwd[src] = k
				t.inv[k] = int32(src)
				k++
			}
		}
	}
	actual, _ := permCache.LoadOrStore(key, t)
	return actual.(*permTable)
}

// gatherBits fills dst with n bits gathered from src at positions
// perm[0..n), 8 bits per output byte: dst bit i = src bit perm[i].
// Trailing bits of a partial final byte are left zero.
func gatherBits(dst, src []byte, perm []int32, n int) {
	i := 0
	for ; i+8 <= n; i += 8 {
		p := perm[i : i+8 : i+8]
		b := src[p[0]>>3] >> (p[0] & 7) & 1
		b |= src[p[1]>>3] >> (p[1] & 7) & 1 << 1
		b |= src[p[2]>>3] >> (p[2] & 7) & 1 << 2
		b |= src[p[3]>>3] >> (p[3] & 7) & 1 << 3
		b |= src[p[4]>>3] >> (p[4] & 7) & 1 << 4
		b |= src[p[5]>>3] >> (p[5] & 7) & 1 << 5
		b |= src[p[6]>>3] >> (p[6] & 7) & 1 << 6
		b |= src[p[7]>>3] >> (p[7] & 7) & 1 << 7
		dst[i>>3] = b
	}
	if i < n {
		var b byte
		for j := 0; i+j < n; j++ {
			p := perm[i+j]
			b |= src[p>>3] >> (p & 7) & 1 << j
		}
		dst[i>>3] = b
	}
}

// --- word-parallel Hamming decode -------------------------------------------

// hammingDecodeInto LUT-decodes payload (2·msgBytes codewords) into
// dst[:msgBytes]: a 64-bit shift register refills from the payload
// stream and every 14-bit chunk indexes the decode table directly.
func hammingDecodeInto(dst, payload []byte, msgBytes int) {
	h74Tables()
	lut := h74.decLUT
	var acc uint64
	nbits := uint(0)
	pos := 0
	for i := 0; i < msgBytes; i++ {
		for nbits < 14 && pos < len(payload) {
			acc |= uint64(payload[pos]) << nbits
			nbits += 8
			pos++
		}
		dst[i] = lut[acc&0x3FFF]
		acc >>= 14
		nbits -= 14
	}
}

// hammingEncodeInto LUT-encodes msg into dst (len EncodedLen(len(msg))):
// one table hit emits both codewords of a message byte into a bit
// accumulator that drains whole bytes.
func hammingEncodeInto(dst []byte, msg []byte) {
	h74Tables()
	var acc uint64
	nbits := uint(0)
	pos := 0
	for _, b := range msg {
		acc |= uint64(h74.encLUT[b]) << nbits
		nbits += 14
		for nbits >= 8 {
			dst[pos] = byte(acc)
			acc >>= 8
			nbits -= 8
			pos++
		}
	}
	if nbits > 0 {
		dst[pos] = byte(acc)
	}
}

// --- word-parallel repetition majority --------------------------------------

// repMajorityInto majority-votes n byte-aligned copies of a
// msgBytes-long message into dst[:msgBytes], 64 bits per step: copy
// words ripple-add into bit-sliced counters (slice b of the counter
// word holds bit b of each lane's count) and a sliced comparator
// extracts count ≥ threshold lanes in one pass. Exactly equivalent to
// the per-bit vote of Repetition.DecodeScalar — the count and threshold
// are the same integers, only 64 lanes resolve at once.
func repMajorityInto(dst, payload []byte, n, msgBytes int) {
	threshold := uint64(n/2 + 1)
	nb := bits.Len(uint(n))
	var off int
	for off = 0; off+8 <= msgBytes; off += 8 {
		var s [16]uint64
		for c := 0; c < n; c++ {
			rippleAdd(&s, binary.LittleEndian.Uint64(payload[c*msgBytes+off:]))
		}
		binary.LittleEndian.PutUint64(dst[off:], sliceGE(&s, nb, threshold))
	}
	if off < msgBytes {
		var s [16]uint64
		for c := 0; c < n; c++ {
			var w uint64
			for j := 0; off+j < msgBytes; j++ {
				w |= uint64(payload[c*msgBytes+off+j]) << (8 * j)
			}
			rippleAdd(&s, w)
		}
		maj := sliceGE(&s, nb, threshold)
		for j := 0; off+j < msgBytes; j++ {
			dst[off+j] = byte(maj >> (8 * j))
		}
	}
}

// rippleAdd adds one vote word into the bit-sliced counters: the carry
// chain is the textbook half-adder ripple, bounded by the counter width
// (counts never exceed the copy count, so the loop terminates fast).
func rippleAdd(s *[16]uint64, v uint64) {
	for b := 0; v != 0; b++ {
		t := s[b]
		s[b] = t ^ v
		v &= t
	}
}

// sliceGE compares bit-sliced lane counts against a constant threshold,
// returning a mask of lanes with count ≥ t. nb is the count width in
// bits. MSB-first: a lane leaves the "still equal" set the first time
// its count bit differs from the threshold bit, in favor of gt when the
// count bit is the high one.
func sliceGE(s *[16]uint64, nb int, t uint64) uint64 {
	eq := ^uint64(0)
	gt := uint64(0)
	for b := nb - 1; b >= 0; b-- {
		var tb uint64
		if t>>uint(b)&1 == 1 {
			tb = ^uint64(0)
		}
		c := s[b]
		gt |= eq & c &^ tb
		eq &= ^(c ^ tb)
	}
	return gt | eq
}

// --- zero-alloc pipeline ----------------------------------------------------

// Pipeline is a compiled decoder for one codec stack: it owns per-stage
// scratch buffers so a warm DecodeInto allocates nothing, and it walks
// the stack with the word-parallel fast paths above. A Pipeline is NOT
// safe for concurrent use — batch decoders keep one per worker.
type Pipeline struct {
	codec Codec
	// bufs[d] is the intermediate buffer for stack depth d; sized on
	// first use per (codec, msgBytes) shape and reused thereafter.
	bufs [][]byte
}

// NewPipeline compiles a decode pipeline for the codec. Table and
// permutation builds are shared process-wide, so compiling is cheap;
// the Pipeline itself only carries scratch.
func NewPipeline(c Codec) *Pipeline {
	if c == nil {
		c = Identity{}
	}
	return &Pipeline{codec: c}
}

// Codec returns the codec the pipeline was compiled for.
func (p *Pipeline) Codec() Codec { return p.codec }

// buf returns the reusable scratch buffer for stack depth d, at least n
// bytes long and zero-padded growth.
func (p *Pipeline) buf(d, n int) []byte {
	for len(p.bufs) <= d {
		p.bufs = append(p.bufs, nil)
	}
	if cap(p.bufs[d]) < n {
		p.bufs[d] = make([]byte, n)
	}
	return p.bufs[d][:n]
}

// Decode runs the pipeline, allocating the result (convenience form of
// DecodeInto).
func (p *Pipeline) Decode(payload []byte, msgBytes int) ([]byte, error) {
	msg := make([]byte, msgBytes)
	if err := p.DecodeInto(msg, payload, msgBytes); err != nil {
		return nil, err
	}
	return msg, nil
}

// DecodeInto decodes payload into dst[:msgBytes] through the compiled
// stack. Warm calls are alloc-free; the result is bit-identical to
// codec.Decode (and therefore to DecodeScalar — the property suite and
// the BENCH_7 gate enforce both).
func (p *Pipeline) DecodeInto(dst, payload []byte, msgBytes int) error {
	if len(dst) < msgBytes {
		return fmt.Errorf("ecc: pipeline dst holds %d bytes, message needs %d", len(dst), msgBytes)
	}
	return p.decodeInto(p.codec, dst[:msgBytes], payload, msgBytes, 0)
}

func (p *Pipeline) decodeInto(c Codec, dst, payload []byte, msgBytes, depth int) error {
	switch cc := c.(type) {
	case Identity:
		if len(payload) != msgBytes {
			return ErrPayloadSize
		}
		copy(dst, payload)
		return nil
	case Repetition:
		if len(payload) != msgBytes*cc.N {
			return ErrPayloadSize
		}
		repMajorityInto(dst, payload, cc.N, msgBytes)
		return nil
	case Hamming74:
		if len(payload) != cc.EncodedLen(msgBytes) {
			return ErrPayloadSize
		}
		hammingDecodeInto(dst, payload, msgBytes)
		return nil
	case Composite:
		// Size validation happens in the inner stage so error ordering
		// matches Composite.Decode exactly.
		midLen := cc.Outer.EncodedLen(msgBytes)
		mid := p.buf(depth, midLen)
		if err := p.decodeInto(cc.Inner, mid, payload, midLen, depth+1); err != nil {
			return err
		}
		return p.decodeInto(cc.Outer, dst, mid, msgBytes, depth+1)
	case Interleaver:
		if cc.Depth < 1 {
			return fmt.Errorf("ecc: interleaver depth %d < 1", cc.Depth)
		}
		if len(payload) != cc.EncodedLen(msgBytes) {
			return ErrPayloadSize
		}
		n := len(payload) * 8
		lin := p.buf(depth, len(payload))
		gatherBits(lin, payload, permFor(cc.Depth, n).fwd, n)
		return p.decodeInto(cc.Next, dst, lin, msgBytes, depth+1)
	default:
		// Unknown codec: fall back to its own Decode (allocates).
		msg, err := c.Decode(payload, msgBytes)
		if err != nil {
			return err
		}
		copy(dst, msg)
		return nil
	}
}
