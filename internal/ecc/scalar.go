package ecc

import "fmt"

// Retained scalar decoders.
//
// These are the original bit-at-a-time decode bodies, kept verbatim when
// the default Decode/DecodeErasure paths went word-parallel. They are
// the equivalence oracle: the property suite, FuzzDecodePipeline, and
// the BENCH_7 gate all compare the fast paths against these before any
// timing is trusted, and the bench times them as the reproducible
// pre-pipeline baseline.

// DecodeScalar decodes payload with the original scalar implementation
// of c. Codecs without a dedicated scalar path (external Codec
// implementations) fall back to their own Decode.
func DecodeScalar(c Codec, payload []byte, msgBytes int) ([]byte, error) {
	switch cc := c.(type) {
	case Identity:
		return cc.DecodeScalar(payload, msgBytes)
	case Repetition:
		return cc.DecodeScalar(payload, msgBytes)
	case Hamming74:
		return cc.DecodeScalar(payload, msgBytes)
	case Composite:
		return cc.DecodeScalar(payload, msgBytes)
	case Interleaver:
		return cc.DecodeScalar(payload, msgBytes)
	default:
		return c.Decode(payload, msgBytes)
	}
}

// DecodeScalar is the original Identity decode: a checked copy.
func (Identity) DecodeScalar(payload []byte, msgBytes int) ([]byte, error) {
	if len(payload) != msgBytes {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	copy(out, payload)
	return out, nil
}

// DecodeScalar is the original repetition decode: one vote loop per
// message bit.
func (r Repetition) DecodeScalar(payload []byte, msgBytes int) ([]byte, error) {
	if len(payload) != msgBytes*r.N {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	threshold := r.N/2 + 1
	for bit := 0; bit < msgBytes*8; bit++ {
		votes := 0
		for c := 0; c < r.N; c++ {
			votes += int(getBit(payload, c*msgBytes*8+bit))
		}
		if votes >= threshold {
			setBit(out, bit, 1)
		}
	}
	return out, nil
}

// DecodeScalar is the original Hamming(7,4) decode: per-bit codeword
// assembly and syndrome correction per nibble.
func (h Hamming74) DecodeScalar(payload []byte, msgBytes int) ([]byte, error) {
	if len(payload) != h.EncodedLen(msgBytes) {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	bit := 0
	for i := 0; i < msgBytes; i++ {
		var b byte
		for half := 0; half < 2; half++ {
			var cw byte
			for k := 0; k < 7; k++ {
				cw |= getBit(payload, bit) << k
				bit++
			}
			b |= decodeNibble(cw) << (4 * half)
		}
		out[i] = b
	}
	return out, nil
}

// DecodeScalar decodes a composite stack through the scalar paths of
// both stages.
func (c Composite) DecodeScalar(payload []byte, msgBytes int) ([]byte, error) {
	midLen := c.Outer.EncodedLen(msgBytes)
	mid, err := DecodeScalar(c.Inner, payload, midLen)
	if err != nil {
		return nil, err
	}
	return DecodeScalar(c.Outer, mid, msgBytes)
}

// DecodeScalar is the original interleaver decode: a setBit/getBit
// gather per payload bit (the permutation itself is shared with the
// fast path — caching it is behavior-neutral).
func (il Interleaver) DecodeScalar(payload []byte, msgBytes int) ([]byte, error) {
	if il.Depth < 1 {
		return nil, fmt.Errorf("ecc: interleaver depth %d < 1", il.Depth)
	}
	if len(payload) != il.EncodedLen(msgBytes) {
		return nil, ErrPayloadSize
	}
	n := len(payload) * 8
	p := permFor(il.Depth, n).fwd
	lin := make([]byte, len(payload))
	for i := 0; i < n; i++ {
		setBit(lin, i, getBit(payload, int(p[i])))
	}
	return DecodeScalar(il.Next, lin, msgBytes)
}

// DecodeErasureScalar decodes (payload, erased) with the original
// scalar erasure implementation of c — the oracle for the erasure-path
// property tests. Codecs without a scalar path fall back to their own
// DecodeErasure (or error if they have none).
func DecodeErasureScalar(c Codec, payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	switch cc := c.(type) {
	case Identity:
		return decodeErasureScalarIdentity(cc, payload, erased, msgBytes)
	case Repetition:
		return decodeErasureScalarRepetition(cc, payload, erased, msgBytes)
	case Hamming74:
		return decodeErasureScalarHamming(cc, payload, erased, msgBytes)
	case Composite:
		return decodeErasureScalarComposite(cc, payload, erased, msgBytes)
	case Interleaver:
		return decodeErasureScalarInterleaver(cc, payload, erased, msgBytes)
	default:
		ed, ok := c.(ErasureDecoder)
		if !ok {
			return nil, nil, fmt.Errorf("ecc: codec %s has no erasure decoder", c.Name())
		}
		return ed.DecodeErasure(payload, erased, msgBytes)
	}
}

func decodeErasureScalarIdentity(id Identity, payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(id, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	for bit := 0; bit < msgBytes*8; bit++ {
		if erased[bit] {
			unresolved[bit] = true
			continue
		}
		setBit(out, bit, getBit(payload, bit))
	}
	return out, unresolved, nil
}

func decodeErasureScalarRepetition(r Repetition, payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(r, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	bitsPerCopy := msgBytes * 8
	for bit := 0; bit < bitsPerCopy; bit++ {
		ones, avail := 0, 0
		for c := 0; c < r.N; c++ {
			pos := c*bitsPerCopy + bit
			if erased[pos] {
				continue
			}
			avail++
			ones += int(getBit(payload, pos))
		}
		switch {
		case avail == 0 || 2*ones == avail:
			unresolved[bit] = true
		case 2*ones > avail:
			setBit(out, bit, 1)
		}
	}
	return out, unresolved, nil
}

func decodeErasureScalarHamming(h Hamming74, payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(h, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	bit := 0
	for i := 0; i < msgBytes; i++ {
		var b byte
		for half := 0; half < 2; half++ {
			var cw byte
			var mask byte
			for k := 0; k < 7; k++ {
				if !erased[bit] {
					mask |= 1 << k
					cw |= getBit(payload, bit) << k
				}
				bit++
			}
			nib, ok := mlNibble(cw, mask)
			if !ok {
				for k := 0; k < 4; k++ {
					unresolved[i*8+half*4+k] = true
				}
			}
			b |= nib << (4 * half)
		}
		out[i] = b
	}
	return out, unresolved, nil
}

func decodeErasureScalarComposite(c Composite, payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if _, ok := c.Inner.(ErasureDecoder); !ok {
		return nil, nil, fmt.Errorf("ecc: inner codec %s has no erasure decoder", c.Inner.Name())
	}
	midLen := c.Outer.EncodedLen(msgBytes)
	mid, midErased, err := DecodeErasureScalar(c.Inner, payload, erased, midLen)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := c.Outer.(ErasureDecoder); ok {
		return DecodeErasureScalar(c.Outer, mid, midErased, msgBytes)
	}
	msg, err := DecodeScalar(c.Outer, mid, msgBytes)
	if err != nil {
		return nil, nil, err
	}
	return msg, make([]bool, msgBytes*8), nil
}

func decodeErasureScalarInterleaver(il Interleaver, payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if _, ok := il.Next.(ErasureDecoder); !ok {
		return nil, nil, fmt.Errorf("ecc: codec %s has no erasure decoder", il.Next.Name())
	}
	if il.Depth < 1 {
		return nil, nil, fmt.Errorf("ecc: interleaver depth %d < 1", il.Depth)
	}
	if err := checkErasureShape(il, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	n := len(payload) * 8
	p := permFor(il.Depth, n).fwd
	lin := make([]byte, len(payload))
	linErased := make([]bool, n)
	for i := 0; i < n; i++ {
		setBit(lin, i, getBit(payload, int(p[i])))
		linErased[i] = erased[p[i]]
	}
	return DecodeErasureScalar(il.Next, lin, linErased, msgBytes)
}
