package ecc

import (
	"bytes"
	"fmt"
	"testing"

	"invisiblebits/internal/rng"
)

// propertyCodecs enumerates every coder family with its guaranteed
// per-structure error budget: maxErrs returns, for a given message
// length, a set of bit positions the codec must correct by contract.
type propertyCase struct {
	name  string
	codec Codec
	// correctable returns bit positions (into the coded payload) that
	// the codec is contractually able to correct when flipped together,
	// drawn with src for variety.
	correctable func(msgBytes int, src *rng.Source) []int
}

func propertyCases(t testing.TB) []propertyCase {
	rep3, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	rep5, err := NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	// Repetition(n): each message bit is voted over n copies laid out as
	// n consecutive full-message blocks; flipping ⌊(n−1)/2⌋ copies of
	// any message bit is always correctable.
	repBudget := func(n int) func(int, *rng.Source) []int {
		return func(msgBytes int, src *rng.Source) []int {
			bitsPerCopy := msgBytes * 8
			t := (n - 1) / 2
			var flips []int
			for bit := 0; bit < bitsPerCopy; bit++ {
				perm := src.Perm(n)
				for k := 0; k < t; k++ {
					flips = append(flips, perm[k]*bitsPerCopy+bit)
				}
			}
			return flips
		}
	}
	// Hamming(7,4): codeword j owns coded bits [7j, 7j+7); one flip per
	// codeword is always correctable.
	hammingBudget := func(msgBytes int, src *rng.Source) []int {
		var flips []int
		for j := 0; j < msgBytes*2; j++ {
			flips = append(flips, 7*j+src.Intn(7))
		}
		return flips
	}
	return []propertyCase{
		{"identity", Identity{}, func(int, *rng.Source) []int { return nil }},
		{"repetition3", rep3, repBudget(3)},
		{"repetition5", rep5, repBudget(5)},
		{"hamming74", Hamming74{}, hammingBudget},
		// Composite hamming∘rep3: the inner repetition sees each coded
		// Hamming bit 3 times; one flipped copy per inner bit is always
		// absorbed before Hamming even looks.
		{"hamming74+rep3", Composite{Outer: Hamming74{}, Inner: rep3}, func(msgBytes int, src *rng.Source) []int {
			innerMsgBytes := Hamming74{}.EncodedLen(msgBytes)
			return repBudget(3)(innerMsgBytes, src)
		}},
		// Interleaving permutes bit positions, so budgets stated in
		// pre-interleave coordinates do not transfer; test it clean-channel
		// plus via its own erasure property below.
		{"interleave8(hamming74+rep3)", Interleaver{Depth: 8, Next: Composite{Outer: Hamming74{}, Inner: rep3}}, nil},
	}
}

// TestPropertyRoundTripClean: Encode∘Decode is the identity on a clean
// channel for random messages of many lengths.
func TestPropertyRoundTripClean(t *testing.T) {
	src := rng.NewSource(0xec0)
	for _, pc := range propertyCases(t) {
		for _, msgBytes := range []int{1, 2, 3, 16, 64, 257} {
			msg := make([]byte, msgBytes)
			src.Bytes(msg)
			coded, err := pc.codec.Encode(msg)
			if err != nil {
				t.Fatalf("%s/%dB: encode: %v", pc.name, msgBytes, err)
			}
			if len(coded) != pc.codec.EncodedLen(msgBytes) {
				t.Fatalf("%s/%dB: coded %d bytes, EncodedLen says %d",
					pc.name, msgBytes, len(coded), pc.codec.EncodedLen(msgBytes))
			}
			got, err := pc.codec.Decode(coded, msgBytes)
			if err != nil {
				t.Fatalf("%s/%dB: decode: %v", pc.name, msgBytes, err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("%s/%dB: clean round trip corrupted message", pc.name, msgBytes)
			}
		}
	}
}

// TestPropertyRoundTripWithinBudget: flipping a random correctable error
// pattern (the codec's contractual budget) never corrupts the decode.
// 50 random trials per codec per length.
func TestPropertyRoundTripWithinBudget(t *testing.T) {
	src := rng.NewSource(0xec1)
	for _, pc := range propertyCases(t) {
		if pc.correctable == nil {
			continue
		}
		for _, msgBytes := range []int{1, 4, 32} {
			for trial := 0; trial < 50; trial++ {
				msg := make([]byte, msgBytes)
				src.Bytes(msg)
				coded, err := pc.codec.Encode(msg)
				if err != nil {
					t.Fatal(err)
				}
				for _, bit := range pc.correctable(msgBytes, src) {
					coded[bit/8] ^= 1 << (bit % 8)
				}
				got, err := pc.codec.Decode(coded, msgBytes)
				if err != nil {
					t.Fatalf("%s/%dB trial %d: decode: %v", pc.name, msgBytes, trial, err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("%s/%dB trial %d: in-budget errors corrupted decode", pc.name, msgBytes, trial)
				}
			}
		}
	}
}

// TestPropertyDecodeRejectsBadShape: every codec must reject a payload
// whose length disagrees with EncodedLen — error, not panic.
func TestPropertyDecodeRejectsBadShape(t *testing.T) {
	for _, pc := range propertyCases(t) {
		right := pc.codec.EncodedLen(8)
		for _, wrong := range []int{0, 1, right - 1, right + 1, right * 2} {
			if wrong == right || wrong < 0 {
				continue
			}
			if _, err := pc.codec.Decode(make([]byte, wrong), 8); err == nil {
				t.Errorf("%s: accepted %d-byte payload, EncodedLen(8)=%d", pc.name, wrong, right)
			}
		}
	}
}

// erasureCases: every coder implementing ErasureDecoder, with the number
// of erasures per protective structure it must absorb (2t+e<d with t=0).
func erasureCases(t testing.TB) []propertyCase {
	var out []propertyCase
	for _, pc := range propertyCases(t) {
		if _, ok := pc.codec.(ErasureDecoder); ok {
			out = append(out, pc)
		}
	}
	return out
}

// TestPropertyErasureRoundTrip: erasing a within-budget random mask
// (with garbage in the erased positions) decodes to the exact message
// with nothing unresolved. Budgets: repetition(n) absorbs n−1 erased
// copies per bit; Hamming(7,4) absorbs 2 erasures per codeword;
// identity absorbs none (but must mark erased bits unresolved, not
// guess).
func TestPropertyErasureRoundTrip(t *testing.T) {
	src := rng.NewSource(0xec2)

	// maskFor returns an in-budget erasure mask for the codec.
	maskFor := func(name string, msgBytes int) []bool {
		switch name {
		case "repetition3", "repetition5":
			n := 3
			if name == "repetition5" {
				n = 5
			}
			bitsPerCopy := msgBytes * 8
			mask := make([]bool, n*bitsPerCopy)
			for bit := 0; bit < bitsPerCopy; bit++ {
				perm := src.Perm(n)
				erase := src.Intn(n) // 0..n-1 erasures: strictly fewer than n copies
				for k := 0; k < erase; k++ {
					mask[perm[k]*bitsPerCopy+bit] = true
				}
			}
			return mask
		case "hamming74":
			mask := make([]bool, Hamming74{}.EncodedLen(msgBytes)*8)
			for j := 0; j < msgBytes*2; j++ {
				perm := src.Perm(7)
				for k := 0; k < src.Intn(3); k++ { // 0..2 erasures per codeword
					mask[7*j+perm[k]] = true
				}
			}
			return mask
		default:
			return nil
		}
	}

	for _, pc := range erasureCases(t) {
		dec := pc.codec.(ErasureDecoder)
		for _, msgBytes := range []int{1, 4, 32} {
			mask := maskFor(pc.name, msgBytes)
			if mask == nil {
				continue
			}
			for trial := 0; trial < 25; trial++ {
				msg := make([]byte, msgBytes)
				src.Bytes(msg)
				coded, err := pc.codec.Encode(msg)
				if err != nil {
					t.Fatal(err)
				}
				// Erased positions carry garbage by contract.
				for bit, e := range mask {
					if e && src.Intn(2) == 1 {
						coded[bit/8] ^= 1 << (bit % 8)
					}
				}
				got, unresolved, err := dec.DecodeErasure(coded, mask, msgBytes)
				if err != nil {
					t.Fatalf("%s/%dB: %v", pc.name, msgBytes, err)
				}
				if n := CountUnresolved(unresolved); n != 0 {
					t.Fatalf("%s/%dB: %d unresolved bits under in-budget mask", pc.name, msgBytes, n)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("%s/%dB: erasure decode corrupted message", pc.name, msgBytes)
				}
			}
		}
	}
}

// TestPropertyErasureNeverInventsBits: with EVERY coded bit erased, no
// coder may claim a resolved message bit — total ignorance in, total
// ignorance out.
func TestPropertyErasureNeverInventsBits(t *testing.T) {
	for _, pc := range erasureCases(t) {
		dec := pc.codec.(ErasureDecoder)
		const msgBytes = 4
		coded := make([]byte, pc.codec.EncodedLen(msgBytes))
		mask := make([]bool, len(coded)*8)
		for i := range mask {
			mask[i] = true
		}
		_, unresolved, err := dec.DecodeErasure(coded, mask, msgBytes)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		if n := CountUnresolved(unresolved); n != msgBytes*8 {
			t.Errorf("%s: only %d/%d bits unresolved under total erasure", pc.name, n, msgBytes*8)
		}
	}
}

// TestPropertyErasureShapeChecked: a mask of the wrong length must be
// rejected by every erasure decoder.
func TestPropertyErasureShapeChecked(t *testing.T) {
	for _, pc := range erasureCases(t) {
		dec := pc.codec.(ErasureDecoder)
		const msgBytes = 4
		coded := make([]byte, pc.codec.EncodedLen(msgBytes))
		for _, maskLen := range []int{0, len(coded)*8 - 1, len(coded)*8 + 8} {
			if _, _, err := dec.DecodeErasure(coded, make([]bool, maskLen), msgBytes); err == nil {
				t.Errorf("%s: accepted %d-bit mask for %d-byte payload", pc.name, maskLen, len(coded))
			}
		}
	}
}

// TestPropertyInterleaveIsPermutation: interleaving must be a pure bit
// permutation — same length, same popcount, invertible by Decode — for
// arbitrary depths including degenerate ones.
func TestPropertyInterleaveIsPermutation(t *testing.T) {
	src := rng.NewSource(0xec3)
	for _, depth := range []int{1, 2, 7, 8, 64, 1000} {
		il := Interleaver{Depth: depth, Next: Identity{}}
		for _, msgBytes := range []int{1, 5, 33} {
			msg := make([]byte, msgBytes)
			src.Bytes(msg)
			coded, err := il.Encode(msg)
			if err != nil {
				t.Fatalf("depth=%d/%dB: %v", depth, msgBytes, err)
			}
			if pop(coded) != pop(msg) {
				t.Fatalf("depth=%d/%dB: interleave changed popcount", depth, msgBytes)
			}
			got, err := il.Decode(coded, msgBytes)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("depth=%d/%dB: interleave not invertible", depth, msgBytes)
			}
		}
	}
}

func pop(b []byte) int {
	n := 0
	for _, v := range b {
		for ; v != 0; v &= v - 1 {
			n++
		}
	}
	return n
}

// TestPropertyNamesDistinct guards the record wire format: codec names
// must uniquely identify the configuration, since Decode refuses records
// whose CodecName mismatches.
func TestPropertyNamesDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, pc := range propertyCases(t) {
		name := pc.codec.Name()
		if prev, dup := seen[name]; dup {
			t.Errorf("codecs %q and %q share wire name %q", prev, pc.name, name)
		}
		seen[name] = pc.name
	}
	// Parameterized codecs must encode their parameters in the name.
	r3, _ := NewRepetition(3)
	r5, _ := NewRepetition(5)
	if r3.Name() == r5.Name() {
		t.Error("repetition(3) and repetition(5) share a wire name")
	}
	if fmt.Sprintf("%s", (Interleaver{Depth: 2, Next: Identity{}}).Name()) ==
		(Interleaver{Depth: 4, Next: Identity{}}).Name() {
		t.Error("interleavers of different depth share a wire name")
	}
}
