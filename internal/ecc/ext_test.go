package ecc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

// --- Hamming(15,11) -----------------------------------------------------------

func TestHamming1511RoundTrip(t *testing.T) {
	h := Hamming1511{}
	for _, n := range []int{1, 2, 11, 64, 333} {
		msg := randMsg(n, uint64(n)+100)
		enc, err := h.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != h.EncodedLen(n) {
			t.Fatalf("n=%d: len %d vs EncodedLen %d", n, len(enc), h.EncodedLen(n))
		}
		dec, err := h.Decode(enc, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, msg) {
			t.Fatalf("n=%d: round trip failed", n)
		}
	}
}

func TestHamming1511CorrectsSingleErrorPerCodeword(t *testing.T) {
	h := Hamming1511{}
	msg := randMsg(33, 5) // 264 bits = exactly 24 codewords
	enc, err := h.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	words := (len(msg)*8 + 10) / 11
	for w := 0; w < words; w++ {
		for k := 0; k < 15; k++ {
			corrupted := make([]byte, len(enc))
			copy(corrupted, enc)
			bit := w*15 + k
			corrupted[bit/8] ^= 1 << (bit % 8)
			dec, err := h.Decode(corrupted, len(msg))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dec, msg) {
				t.Fatalf("codeword %d bit %d not corrected", w, k)
			}
		}
	}
}

func TestHamming1511BetterRateThan74(t *testing.T) {
	if (Hamming1511{}).Rate() <= (Hamming74{}).Rate() {
		t.Fatal("(15,11) should out-rate (7,4)")
	}
	// And pay for it with a worse residual at the same channel error.
	const p = 0.01
	msg := randMsg(1<<13, 9)
	res := map[string]float64{}
	for _, c := range []Codec{Hamming74{}, Hamming1511{}} {
		enc, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decode(flipBits(enc, p, 3), len(msg))
		if err != nil {
			t.Fatal(err)
		}
		res[c.Name()] = stats.BitErrorRate(dec, msg)
	}
	if res["hamming(15,11)"] <= res["hamming(7,4)"] {
		t.Errorf("expected (15,11) residual above (7,4): %v", res)
	}
	// Both still improve on the raw channel.
	for name, r := range res {
		if r >= p {
			t.Errorf("%s did not improve on channel: %v", name, r)
		}
	}
}

func TestHamming1511WrongLength(t *testing.T) {
	h := Hamming1511{}
	enc, err := h.Encode(randMsg(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Decode(enc[:len(enc)-1], 8); err == nil {
		t.Error("truncated payload accepted")
	}
}

// --- SECDED(8,4) ----------------------------------------------------------------

func TestSecdedRoundTrip(t *testing.T) {
	s := Secded84{}
	msg := randMsg(64, 2)
	enc, err := s.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 128 {
		t.Fatalf("encoded length = %d", len(enc))
	}
	dec, rep, err := s.DecodeWithReport(enc, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) || rep.Corrected != 0 || rep.Detected != 0 {
		t.Fatalf("clean decode: %v %+v", bytes.Equal(dec, msg), rep)
	}
}

func TestSecdedCorrectsSinglesEverywhere(t *testing.T) {
	s := Secded84{}
	msg := []byte{0xA5}
	enc, err := s.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 16; bit++ {
		corrupted := make([]byte, len(enc))
		copy(corrupted, enc)
		corrupted[bit/8] ^= 1 << (bit % 8)
		dec, rep, err := s.DecodeWithReport(corrupted, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, msg) {
			t.Fatalf("bit %d not corrected", bit)
		}
		if rep.Corrected != 1 {
			t.Fatalf("bit %d: report %+v", bit, rep)
		}
	}
}

func TestSecdedDetectsDoublesWithoutMiscorrecting(t *testing.T) {
	s := Secded84{}
	msg := []byte{0x3C}
	enc, err := s.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			corrupted := make([]byte, len(enc))
			copy(corrupted, enc)
			corrupted[0] ^= (1 << a) | (1 << b)
			_, rep, err := s.DecodeWithReport(corrupted, 1)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Detected == 1 && rep.Corrected == 0 {
				detected++
			} else if rep.Corrected > 0 {
				t.Fatalf("double error (%d,%d) was 'corrected' — SECDED must detect, not guess", a, b)
			}
		}
	}
	if detected != 28 {
		t.Fatalf("detected %d/28 double errors", detected)
	}
}

func TestSecdedOnChannelAvoidsMiscorrection(t *testing.T) {
	// On the same noisy channel, SECDED's residual should not exceed
	// Hamming(7,4)'s (it never miscorrects doubles).
	const p = 0.03
	msg := randMsg(1<<13, 11)
	ham := Hamming74{}
	sec := Secded84{}
	encH, err := ham.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	decH, err := ham.Decode(flipBits(encH, p, 7), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	encS, err := sec.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	decS, err := sec.Decode(flipBits(encS, p, 8), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if eS, eH := stats.BitErrorRate(decS, msg), stats.BitErrorRate(decH, msg); eS > eH*1.2 {
		t.Errorf("SECDED residual %v worse than Hamming(7,4) %v", eS, eH)
	}
}

func TestSecdedReportString(t *testing.T) {
	r := DecodeReport{Corrected: 2, Detected: 1}
	if r.String() != "corrected 2, detected-uncorrectable 1" {
		t.Errorf("String = %q", r.String())
	}
}

// --- soft decoding --------------------------------------------------------------

func TestSoftEqualsHardOnBinaryConfidence(t *testing.T) {
	rep, err := NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	msg := randMsg(256, 21)
	enc, err := rep.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	noisy := flipBits(enc, 0.08, 9)
	hard, err := rep.Decode(noisy, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	soft, err := rep.DecodeSoft(HardToConf(noisy), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hard, soft) {
		t.Fatal("soft decode with binary confidences must equal hard majority")
	}
}

func TestSoftBeatsHardWithGradedConfidence(t *testing.T) {
	// Synthetic channel: each coded bit's confidence is a noisy
	// observation of the true bit (Gaussian around 0/1). Hard decoding
	// thresholds each copy first (losing magnitude); soft combining sums
	// raw confidences and must do strictly better over a large message.
	rep, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	msg := randMsg(1<<12, 33)
	enc, err := rep.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(44)
	conf := make([]float64, len(enc)*8)
	hard := make([]byte, len(enc))
	for i := range conf {
		truth := float64(getBit(enc, i))
		c := truth + src.NormScaled(0, 0.45)
		if c < 0 {
			c = 0
		}
		if c > 1 {
			c = 1
		}
		conf[i] = c
		if c > 0.5 {
			hard[i/8] |= 1 << (i % 8)
		}
	}
	decHard, err := rep.Decode(hard, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	decSoft, err := rep.DecodeSoft(conf, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	eHard := stats.BitErrorRate(decHard, msg)
	eSoft := stats.BitErrorRate(decSoft, msg)
	if eSoft >= eHard {
		t.Errorf("soft (%v) not better than hard (%v) on graded channel", eSoft, eHard)
	}
}

func TestSoftCompositeAndIdentity(t *testing.T) {
	rep, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	comp := Composite{Outer: Hamming74{}, Inner: rep}
	msg := randMsg(128, 3)
	enc, err := comp.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := comp.DecodeSoft(HardToConf(enc), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) {
		t.Fatal("composite soft round trip failed")
	}
	// Composite with a non-soft inner must refuse.
	bad := Composite{Outer: rep, Inner: Hamming74{}}
	if _, err := bad.DecodeSoft(HardToConf(enc), len(msg)); err == nil {
		t.Error("non-soft inner accepted")
	}
	// Identity soft.
	id := Identity{}
	got, err := id.DecodeSoft(HardToConf(msg), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("identity soft failed")
	}
	if _, err := id.DecodeSoft(make([]float64, 7), 1); err == nil {
		t.Error("bad conf length accepted")
	}
}

func TestSoftLengthValidation(t *testing.T) {
	rep, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.DecodeSoft(make([]float64, 10), 4); err == nil {
		t.Error("bad conf length accepted")
	}
}

// --- planner ----------------------------------------------------------------------

func TestRecommendOnPaperChannel(t *testing.T) {
	// The §5.2 running example: 6.5% channel, <0.3% target, 64 KB SRAM.
	plans, err := Recommend(0.065, 0.003, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans for the paper's own operating point")
	}
	best := plans[0]
	// 5-copy repetition meets <0.3% (the paper's own choice); anything the
	// planner prefers must have rate >= 0.2.
	if best.Rate < 0.2 {
		t.Errorf("best plan %v has worse rate than the paper's rep(5)", best)
	}
	for _, p := range plans {
		if p.PredictedError > 0.003 {
			t.Errorf("plan %v exceeds target", p)
		}
		if p.Codec != nil && p.CapacityBytes != maxMessageBytesFor(p.Codec, 64<<10) {
			t.Errorf("plan %v capacity inconsistent", p)
		}
	}
	// Sorted by rate descending.
	for i := 1; i < len(plans); i++ {
		if plans[i].Rate > plans[i-1].Rate {
			t.Fatal("plans not sorted by rate")
		}
	}
}

func TestRecommendLowErrorChannelPrefersHamming(t *testing.T) {
	// At 0.5% channel error and 0.1% target, a pure Hamming code should
	// beat repetition on rate.
	best, err := Best(0.005, 0.001, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if best.Rate < 0.5 {
		t.Errorf("best plan %v should be a high-rate Hamming code", best)
	}
}

func TestRecommendRawChannelWhenTargetLoose(t *testing.T) {
	best, err := Best(0.01, 0.05, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if best.Codec != nil {
		t.Errorf("loose target should pick the raw channel, got %v", best)
	}
	if best.CapacityBytes != 1024 {
		t.Errorf("raw capacity = %d", best.CapacityBytes)
	}
}

func TestRecommendValidation(t *testing.T) {
	if _, err := Recommend(0.6, 0.01, 1024); err == nil {
		t.Error("channel error 0.6 accepted")
	}
	if _, err := Recommend(0.1, 0, 1024); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := Best(0.4, 1e-12, 1024); err == nil {
		t.Error("impossible target produced a plan")
	}
}

func TestHammingResidualGeneric(t *testing.T) {
	if hammingResidual(0, 15) != 0 || hammingResidual(1, 15) != 1 {
		t.Error("edge cases wrong")
	}
	// Longer code: worse residual at the same p.
	for _, p := range []float64{0.005, 0.02} {
		if hammingResidual(p, 15) <= stats.HammingResidual74(p) {
			t.Errorf("p=%v: (15,11) residual should exceed (7,4)", p)
		}
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{PredictedError: 0.001, Rate: 1, CapacityBytes: 64}
	if p.String() == "" || math.IsNaN(p.PredictedError) {
		t.Error("bad plan string")
	}
}

func TestGenericHammingProperty(t *testing.T) {
	// decode(encode(x)) == x for arbitrary messages under (15,11).
	h := Hamming1511{}
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 512 {
			data = data[:512]
		}
		enc, err := h.Encode(data)
		if err != nil {
			return false
		}
		dec, err := h.Decode(enc, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
