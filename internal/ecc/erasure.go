package ecc

import (
	"fmt"
	"math/bits"
	"sync"
)

// ErasureDecoder is the optional erasure-channel interface. The adaptive
// decoder marks coded bits whose vote confidence falls inside a dead zone
// as *erasures* — "the channel gave no information here" — instead of
// forcing them to a hard 0/1. Erasures are strictly better information
// than coin-flip bits: a distance-d code corrects t errors and e erasures
// whenever 2t+e < d, so Hamming(7,4) absorbs two erasures per codeword
// where it could only absorb one error.
//
// payload holds the hard decision for every coded bit (erased positions
// carry an arbitrary value); erased is the per-coded-bit mask, length
// 8×EncodedLen(msgBytes). The returned unresolved mask (length
// 8×msgBytes) marks message bits the code could not pin down — they are
// 0-filled in msg, and callers treat them as residual uncertainty.
type ErasureDecoder interface {
	Codec
	DecodeErasure(payload []byte, erased []bool, msgBytes int) (msg []byte, unresolved []bool, err error)
}

// checkErasureShape validates the (payload, erased) pair against the
// codec's expansion for msgBytes.
func checkErasureShape(c Codec, payload []byte, erased []bool, msgBytes int) error {
	if len(payload) != c.EncodedLen(msgBytes) {
		return ErrPayloadSize
	}
	if len(erased) != len(payload)*8 {
		return fmt.Errorf("ecc: erasure mask has %d bits for a %d-byte payload", len(erased), len(payload))
	}
	return nil
}

// DecodeErasure implements ErasureDecoder for Identity: non-erased bits
// pass through, erased bits stay unresolved.
func (id Identity) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(id, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	for bit := 0; bit < msgBytes*8; bit++ {
		if erased[bit] {
			unresolved[bit] = true
			continue
		}
		setBit(out, bit, getBit(payload, bit))
	}
	return out, unresolved, nil
}

// DecodeErasure implements ErasureDecoder for the repetition code: each
// message bit is majority-voted over its non-erased copies only. A bit
// with no surviving copies — or an exact tie among them — stays
// unresolved.
func (r Repetition) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(r, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	bitsPerCopy := msgBytes * 8
	for bit := 0; bit < bitsPerCopy; bit++ {
		ones, avail := 0, 0
		for c := 0; c < r.N; c++ {
			pos := c*bitsPerCopy + bit
			if erased[pos] {
				continue
			}
			avail++
			ones += int(getBit(payload, pos))
		}
		switch {
		case avail == 0 || 2*ones == avail:
			unresolved[bit] = true
		case 2*ones > avail:
			setBit(out, bit, 1)
		}
	}
	return out, unresolved, nil
}

// h74Erasure holds the maximum-likelihood erasure LUT, built once on
// first use: index (mask<<7 | cw) → data nibble in bits 0..3 with bit 4
// set when the choice is unambiguous. 2^14 entries precompute every
// mlNibble outcome, so the erasure rung pays one lookup per codeword
// instead of a 16-codeword distance search.
var h74Erasure struct {
	once sync.Once
	lut  []byte // [1 << 14]: mlNibble(cw, mask) for every pair
}

const h74ErasureOK = 0x10

func h74ErasureTable() {
	h74Erasure.once.Do(func() {
		h74Erasure.lut = make([]byte, 1<<14)
		for mask := 0; mask < 128; mask++ {
			for cw := 0; cw < 128; cw++ {
				nib, ok := mlNibble(byte(cw), byte(mask))
				v := nib
				if ok {
					v |= h74ErasureOK
				}
				h74Erasure.lut[mask<<7|cw] = v
			}
		}
	})
}

// DecodeErasure implements ErasureDecoder for Hamming(7,4) by
// maximum-likelihood decoding over the 16 codewords: each codeword's
// distance to the received bits is measured on non-erased positions only,
// and the nearest wins. With e erasures and t errors this succeeds
// whenever 2t+e < 3 — in particular two erasures and no errors, which a
// plain syndrome decode would miscorrect. An ambiguous codeword (distance
// tie between different data nibbles, or all positions erased) marks its
// four data bits unresolved.
//
// Fast path: the erasure mask is packed to one bit per coded bit, and
// both streams feed the same 14-bit reader. A chunk with no erasures —
// the overwhelmingly common case late in a campaign — decodes both
// codewords through the hard-decision LUT in one hit (the Hamming code
// is perfect, so full-mask ML equals syndrome decode); otherwise each
// codeword is one lookup in the precomputed ML table. Identical to the
// scalar search by construction (the table is built from mlNibble).
func (h Hamming74) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(h, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	h74Tables()
	h74ErasureTable()
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)

	// Pack the mask stream: bit i of packed = erased[i].
	packed := make([]byte, len(payload))
	packBools(packed, erased)

	var accP, accM uint64 // payload and mask bit accumulators
	nbits := uint(0)
	pos := 0
	for i := 0; i < msgBytes; i++ {
		for nbits < 14 && pos < len(payload) {
			accP |= uint64(payload[pos]) << nbits
			accM |= uint64(packed[pos]) << nbits
			nbits += 8
			pos++
		}
		chunkP, chunkM := accP&0x3FFF, accM&0x3FFF
		accP >>= 14
		accM >>= 14
		nbits -= 14
		if chunkM == 0 {
			out[i] = h74.decLUT[chunkP]
			continue
		}
		var b byte
		for half := 0; half < 2; half++ {
			cw := chunkP >> (7 * half) & 0x7F
			mask := ^chunkM >> (7 * half) & 0x7F // LUT mask bit 1 = usable
			v := h74Erasure.lut[mask<<7|(cw&mask)]
			if v&h74ErasureOK == 0 {
				unresolved[i*8+half*4] = true
				unresolved[i*8+half*4+1] = true
				unresolved[i*8+half*4+2] = true
				unresolved[i*8+half*4+3] = true
			}
			b |= (v & 0x0F) << (4 * half)
		}
		out[i] = b
	}
	return out, unresolved, nil
}

// packBools packs mask[i] into bit i of dst; trailing dst bytes beyond
// the mask stay zero.
func packBools(dst []byte, mask []bool) {
	i := 0
	for ; i+8 <= len(mask); i += 8 {
		m := mask[i : i+8 : i+8]
		var b byte
		if m[0] {
			b = 1
		}
		if m[1] {
			b |= 1 << 1
		}
		if m[2] {
			b |= 1 << 2
		}
		if m[3] {
			b |= 1 << 3
		}
		if m[4] {
			b |= 1 << 4
		}
		if m[5] {
			b |= 1 << 5
		}
		if m[6] {
			b |= 1 << 6
		}
		if m[7] {
			b |= 1 << 7
		}
		dst[i>>3] = b
	}
	if i < len(mask) {
		var b byte
		for j := 0; i+j < len(mask); j++ {
			if mask[i+j] {
				b |= 1 << j
			}
		}
		dst[i>>3] = b
	}
}

// mlNibble returns the data nibble whose codeword is nearest to cw on the
// positions selected by mask; ok is false when the choice is ambiguous
// (distance tie, or no usable positions at all).
func mlNibble(cw, mask byte) (nib byte, ok bool) {
	if mask == 0 {
		return 0, false
	}
	best, bestDist, ties := byte(0), 8, 0
	for d := byte(0); d < 16; d++ {
		dist := bits.OnesCount8((encodeNibble(d) ^ cw) & mask)
		switch {
		case dist < bestDist:
			best, bestDist, ties = d, dist, 1
		case dist == bestDist:
			ties++
		}
	}
	return best, ties == 1
}

// DecodeErasure implements ErasureDecoder for Composite when the inner
// (channel-facing) codec supports erasures: the inner code consumes the
// channel mask and its unresolved message bits become *erasures for the
// outer code* — exactly how concatenated codes pass soft information
// upward. An outer codec without erasure support falls back to its hard
// decode over the 0-filled intermediate.
func (c Composite) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	inner, ok := c.Inner.(ErasureDecoder)
	if !ok {
		return nil, nil, fmt.Errorf("ecc: inner codec %s has no erasure decoder", c.Inner.Name())
	}
	midLen := c.Outer.EncodedLen(msgBytes)
	mid, midErased, err := inner.DecodeErasure(payload, erased, midLen)
	if err != nil {
		return nil, nil, err
	}
	if outer, ok := c.Outer.(ErasureDecoder); ok {
		return outer.DecodeErasure(mid, midErased, msgBytes)
	}
	msg, err := c.Outer.Decode(mid, msgBytes)
	if err != nil {
		return nil, nil, err
	}
	return msg, make([]bool, msgBytes*8), nil
}

// DecodeErasure implements ErasureDecoder for Interleaver by
// de-interleaving both the payload and the erasure mask before
// delegating.
func (il Interleaver) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	next, ok := il.Next.(ErasureDecoder)
	if !ok {
		return nil, nil, fmt.Errorf("ecc: codec %s has no erasure decoder", il.Next.Name())
	}
	if il.Depth < 1 {
		return nil, nil, fmt.Errorf("ecc: interleaver depth %d < 1", il.Depth)
	}
	if err := checkErasureShape(il, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	n := len(payload) * 8
	t := permFor(il.Depth, n)
	lin := make([]byte, len(payload))
	gatherBits(lin, payload, t.fwd, n)
	linErased := make([]bool, n)
	for i, p := range t.fwd {
		linErased[i] = erased[p]
	}
	return next.DecodeErasure(lin, linErased, msgBytes)
}

// CountUnresolved returns how many bits an unresolved mask leaves open —
// the residual uncertainty a DecodeReport records for the erasure rung.
func CountUnresolved(mask []bool) int {
	n := 0
	for _, u := range mask {
		if u {
			n++
		}
	}
	return n
}

// Interface checks.
var (
	_ ErasureDecoder = Identity{}
	_ ErasureDecoder = Repetition{}
	_ ErasureDecoder = Hamming74{}
	_ ErasureDecoder = Composite{}
	_ ErasureDecoder = Interleaver{}
)
