package ecc

import "fmt"

// ErasureDecoder is the optional erasure-channel interface. The adaptive
// decoder marks coded bits whose vote confidence falls inside a dead zone
// as *erasures* — "the channel gave no information here" — instead of
// forcing them to a hard 0/1. Erasures are strictly better information
// than coin-flip bits: a distance-d code corrects t errors and e erasures
// whenever 2t+e < d, so Hamming(7,4) absorbs two erasures per codeword
// where it could only absorb one error.
//
// payload holds the hard decision for every coded bit (erased positions
// carry an arbitrary value); erased is the per-coded-bit mask, length
// 8×EncodedLen(msgBytes). The returned unresolved mask (length
// 8×msgBytes) marks message bits the code could not pin down — they are
// 0-filled in msg, and callers treat them as residual uncertainty.
type ErasureDecoder interface {
	Codec
	DecodeErasure(payload []byte, erased []bool, msgBytes int) (msg []byte, unresolved []bool, err error)
}

// checkErasureShape validates the (payload, erased) pair against the
// codec's expansion for msgBytes.
func checkErasureShape(c Codec, payload []byte, erased []bool, msgBytes int) error {
	if len(payload) != c.EncodedLen(msgBytes) {
		return ErrPayloadSize
	}
	if len(erased) != len(payload)*8 {
		return fmt.Errorf("ecc: erasure mask has %d bits for a %d-byte payload", len(erased), len(payload))
	}
	return nil
}

// DecodeErasure implements ErasureDecoder for Identity: non-erased bits
// pass through, erased bits stay unresolved.
func (id Identity) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(id, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	for bit := 0; bit < msgBytes*8; bit++ {
		if erased[bit] {
			unresolved[bit] = true
			continue
		}
		setBit(out, bit, getBit(payload, bit))
	}
	return out, unresolved, nil
}

// DecodeErasure implements ErasureDecoder for the repetition code: each
// message bit is majority-voted over its non-erased copies only. A bit
// with no surviving copies — or an exact tie among them — stays
// unresolved.
func (r Repetition) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(r, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	bitsPerCopy := msgBytes * 8
	for bit := 0; bit < bitsPerCopy; bit++ {
		ones, avail := 0, 0
		for c := 0; c < r.N; c++ {
			pos := c*bitsPerCopy + bit
			if erased[pos] {
				continue
			}
			avail++
			ones += int(getBit(payload, pos))
		}
		switch {
		case avail == 0 || 2*ones == avail:
			unresolved[bit] = true
		case 2*ones > avail:
			setBit(out, bit, 1)
		}
	}
	return out, unresolved, nil
}

// DecodeErasure implements ErasureDecoder for Hamming(7,4) by
// maximum-likelihood decoding over the 16 codewords: each codeword's
// distance to the received bits is measured on non-erased positions only,
// and the nearest wins. With e erasures and t errors this succeeds
// whenever 2t+e < 3 — in particular two erasures and no errors, which a
// plain syndrome decode would miscorrect. An ambiguous codeword (distance
// tie between different data nibbles, or all positions erased) marks its
// four data bits unresolved.
func (h Hamming74) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	if err := checkErasureShape(h, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	out := make([]byte, msgBytes)
	unresolved := make([]bool, msgBytes*8)
	bit := 0
	for i := 0; i < msgBytes; i++ {
		var b byte
		for half := 0; half < 2; half++ {
			var cw byte
			var mask byte // 1 = position is usable
			for k := 0; k < 7; k++ {
				if !erased[bit] {
					mask |= 1 << k
					cw |= getBit(payload, bit) << k
				}
				bit++
			}
			nib, ok := mlNibble(cw, mask)
			if !ok {
				for k := 0; k < 4; k++ {
					unresolved[i*8+half*4+k] = true
				}
			}
			b |= nib << (4 * half)
		}
		out[i] = b
	}
	return out, unresolved, nil
}

// mlNibble returns the data nibble whose codeword is nearest to cw on the
// positions selected by mask; ok is false when the choice is ambiguous
// (distance tie, or no usable positions at all).
func mlNibble(cw, mask byte) (nib byte, ok bool) {
	if mask == 0 {
		return 0, false
	}
	best, bestDist, ties := byte(0), 8, 0
	for d := byte(0); d < 16; d++ {
		dist := popcount7((encodeNibble(d) ^ cw) & mask)
		switch {
		case dist < bestDist:
			best, bestDist, ties = d, dist, 1
		case dist == bestDist:
			ties++
		}
	}
	return best, ties == 1
}

// popcount7 counts set bits in a 7-bit value.
func popcount7(v byte) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// DecodeErasure implements ErasureDecoder for Composite when the inner
// (channel-facing) codec supports erasures: the inner code consumes the
// channel mask and its unresolved message bits become *erasures for the
// outer code* — exactly how concatenated codes pass soft information
// upward. An outer codec without erasure support falls back to its hard
// decode over the 0-filled intermediate.
func (c Composite) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	inner, ok := c.Inner.(ErasureDecoder)
	if !ok {
		return nil, nil, fmt.Errorf("ecc: inner codec %s has no erasure decoder", c.Inner.Name())
	}
	midLen := c.Outer.EncodedLen(msgBytes)
	mid, midErased, err := inner.DecodeErasure(payload, erased, midLen)
	if err != nil {
		return nil, nil, err
	}
	if outer, ok := c.Outer.(ErasureDecoder); ok {
		return outer.DecodeErasure(mid, midErased, msgBytes)
	}
	msg, err := c.Outer.Decode(mid, msgBytes)
	if err != nil {
		return nil, nil, err
	}
	return msg, make([]bool, msgBytes*8), nil
}

// DecodeErasure implements ErasureDecoder for Interleaver by
// de-interleaving both the payload and the erasure mask before
// delegating.
func (il Interleaver) DecodeErasure(payload []byte, erased []bool, msgBytes int) ([]byte, []bool, error) {
	next, ok := il.Next.(ErasureDecoder)
	if !ok {
		return nil, nil, fmt.Errorf("ecc: codec %s has no erasure decoder", il.Next.Name())
	}
	if il.Depth < 1 {
		return nil, nil, fmt.Errorf("ecc: interleaver depth %d < 1", il.Depth)
	}
	if err := checkErasureShape(il, payload, erased, msgBytes); err != nil {
		return nil, nil, err
	}
	n := len(payload) * 8
	p := il.permute(n)
	lin := make([]byte, len(payload))
	linErased := make([]bool, n)
	for i := 0; i < n; i++ {
		setBit(lin, i, getBit(payload, p[i]))
		linErased[i] = erased[p[i]]
	}
	return next.DecodeErasure(lin, linErased, msgBytes)
}

// CountUnresolved returns how many bits an unresolved mask leaves open —
// the residual uncertainty a DecodeReport records for the erasure rung.
func CountUnresolved(mask []bool) int {
	n := 0
	for _, u := range mask {
		if u {
			n++
		}
	}
	return n
}

// Interface checks.
var (
	_ ErasureDecoder = Identity{}
	_ ErasureDecoder = Repetition{}
	_ ErasureDecoder = Hamming74{}
	_ ErasureDecoder = Composite{}
	_ ErasureDecoder = Interleaver{}
)
