// Package ecc implements the error-correcting codes the paper layers on
// top of Invisible Bits (§5.2): bit-majority repetition codes for the
// high-error regime, Hamming(7,4) for the low-error regime, their
// composition (Fig. 10: "a Hamming(7,4) code on top of up to 17 copies of
// the payload"), and a block bit-interleaver as a resilience extension.
//
// "The actual ECC method is orthogonal to Invisible Bits" (§4.1), so
// everything is expressed against the Codec interface and codecs compose.
package ecc

import (
	"errors"
	"fmt"
)

// Codec transforms a message into a channel payload and back. Decode is
// best-effort: it corrects what the code can correct and returns the
// residual errors silently (the channel is noisy by design; callers
// measure the residual bit error rate).
type Codec interface {
	// Name identifies the codec for reports, e.g. "repetition(5)".
	Name() string
	// EncodedLen returns the payload size in bytes for a message of
	// msgBytes bytes.
	EncodedLen(msgBytes int) int
	// Encode produces the channel payload.
	Encode(msg []byte) ([]byte, error)
	// Decode recovers a message of msgBytes bytes from a payload produced
	// by Encode (possibly corrupted in transit).
	Decode(payload []byte, msgBytes int) ([]byte, error)
	// Rate returns the information rate in data bits per coded bit.
	Rate() float64
}

// ErrPayloadSize is returned when a payload cannot have been produced by
// the codec for the stated message size.
var ErrPayloadSize = errors.New("ecc: payload length inconsistent with message length")

// --- bit helpers -----------------------------------------------------------

func getBit(buf []byte, i int) byte { return (buf[i/8] >> (i % 8)) & 1 }

func setBit(buf []byte, i int, v byte) {
	if v != 0 {
		buf[i/8] |= 1 << (i % 8)
	} else {
		buf[i/8] &^= 1 << (i % 8)
	}
}

// --- identity ---------------------------------------------------------------

// Identity is the no-op codec (raw channel).
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// EncodedLen implements Codec.
func (Identity) EncodedLen(msgBytes int) int { return msgBytes }

// Encode implements Codec.
func (Identity) Encode(msg []byte) ([]byte, error) {
	out := make([]byte, len(msg))
	copy(out, msg)
	return out, nil
}

// Decode implements Codec.
func (Identity) Decode(payload []byte, msgBytes int) ([]byte, error) {
	if len(payload) != msgBytes {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	copy(out, payload)
	return out, nil
}

// Rate implements Codec.
func (Identity) Rate() float64 { return 1 }

// --- repetition --------------------------------------------------------------

// Repetition encodes N whole copies of the message and decodes by per-bit
// majority vote — §5.2's workhorse for the >5 % error regime. N must be
// odd so the vote cannot tie.
type Repetition struct{ N int }

// NewRepetition validates the copy count.
func NewRepetition(n int) (Repetition, error) {
	if n < 1 || n%2 == 0 {
		return Repetition{}, fmt.Errorf("ecc: repetition needs odd n >= 1, got %d", n)
	}
	return Repetition{N: n}, nil
}

// Name implements Codec.
func (r Repetition) Name() string { return fmt.Sprintf("repetition(%d)", r.N) }

// EncodedLen implements Codec.
func (r Repetition) EncodedLen(msgBytes int) int { return msgBytes * r.N }

// Encode implements Codec.
func (r Repetition) Encode(msg []byte) ([]byte, error) {
	out := make([]byte, 0, len(msg)*r.N)
	for i := 0; i < r.N; i++ {
		out = append(out, msg...)
	}
	return out, nil
}

// Decode implements Codec. The per-bit vote loop lives on as
// DecodeScalar; the default path majority-votes 64 message bits per
// step by ripple-adding the byte-aligned copies into bit-sliced
// counters (see repMajorityInto).
func (r Repetition) Decode(payload []byte, msgBytes int) ([]byte, error) {
	if len(payload) != msgBytes*r.N {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	repMajorityInto(out, payload, r.N, msgBytes)
	return out, nil
}

// Rate implements Codec.
func (r Repetition) Rate() float64 { return 1 / float64(r.N) }
