package ecc

import (
	"bytes"
	"testing"

	"invisiblebits/internal/rng"
)

// eraseBits builds an all-clear mask for a payload and erases the listed
// coded-bit positions (flipping the underlying bit to garbage too, so a
// decoder peeking at erased positions would be caught).
func eraseBits(payload []byte, positions ...int) []bool {
	erased := make([]bool, len(payload)*8)
	for _, p := range positions {
		erased[p] = true
		payload[p/8] ^= 1 << (p % 8)
	}
	return erased
}

func TestRepetitionErasureVotesAmongSurvivors(t *testing.T) {
	rep, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{0xA5, 0x3C}
	payload, err := rep.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Erase one whole copy (copy 1): the remaining two copies agree, so
	// every bit still resolves.
	bits := len(msg) * 8
	var pos []int
	for b := 0; b < bits; b++ {
		pos = append(pos, bits+b)
	}
	erased := eraseBits(payload, pos...)
	got, unresolved, err := rep.DecodeErasure(payload, erased, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %x want %x", got, msg)
	}
	if CountUnresolved(unresolved) != 0 {
		t.Fatalf("unresolved = %d, want 0", CountUnresolved(unresolved))
	}
}

func TestRepetitionErasureTieAndTotalLoss(t *testing.T) {
	rep, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{0xFF}
	payload, err := rep.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Bit 0: all three copies erased -> unresolved. Bit 1: one copy erased
	// and one of the survivors flipped -> 1-1 tie -> unresolved.
	erased := eraseBits(payload, 0, 8, 16, 9)
	payload[0] ^= 1 << 1 // corrupt bit 1 of copy 0
	got, unresolved, err := rep.DecodeErasure(payload, erased, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !unresolved[0] || !unresolved[1] {
		t.Fatalf("bits 0,1 should be unresolved: %v", unresolved)
	}
	if CountUnresolved(unresolved) != 2 {
		t.Fatalf("unresolved = %d, want 2", CountUnresolved(unresolved))
	}
	// The six remaining bits still vote 1.
	if got[0]&^0b11 != 0b11111100 {
		t.Fatalf("surviving bits wrong: %08b", got[0])
	}
}

func TestHammingErasureCorrectsTwoErasures(t *testing.T) {
	h := Hamming74{}
	msg := []byte{0x6B, 0x12, 0xF0, 0x07}
	payload, err := h.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Two erasures inside the first codeword: beyond single-error syndrome
	// decoding, within 2t+e < 3 for t=0, e=2.
	erased := eraseBits(payload, 2, 5)
	got, unresolved, err := h.DecodeErasure(payload, erased, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %x want %x", got, msg)
	}
	if CountUnresolved(unresolved) != 0 {
		t.Fatalf("unresolved = %d", CountUnresolved(unresolved))
	}
}

func TestHammingErasureSingleErrorStillCorrected(t *testing.T) {
	h := Hamming74{}
	msg := []byte{0x4D}
	payload, err := h.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	payload[0] ^= 1 << 3 // one plain error, no erasures
	erased := make([]bool, len(payload)*8)
	got, _, err := h.DecodeErasure(payload, erased, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x4D {
		t.Fatalf("got %x want 4d", got[0])
	}
}

func TestHammingErasureWholeCodewordLost(t *testing.T) {
	h := Hamming74{}
	msg := []byte{0xAB}
	payload, err := h.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	erased := eraseBits(payload, 0, 1, 2, 3, 4, 5, 6) // first codeword gone
	got, unresolved, err := h.DecodeErasure(payload, erased, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Low nibble unresolved, high nibble intact.
	for k := 0; k < 4; k++ {
		if !unresolved[k] {
			t.Fatalf("low-nibble bit %d should be unresolved", k)
		}
	}
	if got[0]>>4 != 0xA {
		t.Fatalf("high nibble = %x, want a", got[0]>>4)
	}
}

func TestCompositeErasurePropagatesThroughLayers(t *testing.T) {
	rep, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	comp := Composite{Outer: Hamming74{}, Inner: rep}
	msg := []byte("erasures climb the stack")
	payload, err := comp.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill all three copies of two intermediate (Hamming-coded) bits: the
	// repetition layer cannot resolve them, but the outer Hamming absorbs
	// both as erasures in the same codeword.
	midBits := Hamming74{}.EncodedLen(len(msg)) * 8
	erased := eraseBits(payload,
		0, midBits+0, 2*midBits+0,
		1, midBits+1, 2*midBits+1)
	got, unresolved, err := comp.DecodeErasure(payload, erased, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if CountUnresolved(unresolved) != 0 {
		t.Fatalf("unresolved = %d", CountUnresolved(unresolved))
	}
}

func TestInterleaverErasureDelegates(t *testing.T) {
	rep, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	il := Interleaver{Depth: 4, Next: rep}
	msg := []byte{0x5A, 0xC3}
	payload, err := il.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	erased := eraseBits(payload, 0, 7, 13, 21)
	got, _, err := il.DecodeErasure(payload, erased, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %x want %x", got, msg)
	}
}

func TestErasureMatchesHardDecodeWithEmptyMask(t *testing.T) {
	// With nothing erased, every erasure decoder must agree with its hard
	// decoder on random noisy payloads.
	rep, err := NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	codecs := []ErasureDecoder{Identity{}, rep, Hamming74{},
		Composite{Outer: Hamming74{}, Inner: rep}}
	src := rng.NewSource(77)
	for _, c := range codecs {
		msg := make([]byte, 32)
		src.Bytes(msg)
		payload, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		// Light corruption within the code's budget for repetition-backed
		// codecs; identity and bare Hamming get a clean payload so both
		// paths are exact.
		if _, isRep := c.(Repetition); isRep {
			payload[3] ^= 0x01
		}
		hard, err := c.Decode(payload, len(msg))
		if err != nil {
			t.Fatal(err)
		}
		viaErasure, unresolved, err := c.DecodeErasure(payload, make([]bool, len(payload)*8), len(msg))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(hard, viaErasure) {
			t.Fatalf("%s: erasure path diverges from hard decode", c.Name())
		}
		if CountUnresolved(unresolved) != 0 {
			t.Fatalf("%s: unresolved on clean mask", c.Name())
		}
	}
}

func TestErasureShapeValidation(t *testing.T) {
	h := Hamming74{}
	if _, _, err := h.DecodeErasure([]byte{1, 2}, make([]bool, 16), 4); err == nil {
		t.Error("short payload accepted")
	}
	payload, _ := h.Encode([]byte{1})
	if _, _, err := h.DecodeErasure(payload, make([]bool, 3), 1); err == nil {
		t.Error("short mask accepted")
	}
}
