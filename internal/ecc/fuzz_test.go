package ecc

import (
	"bytes"
	"testing"
)

// fuzzCodec builds a codec stack from two selector bytes: sel picks the
// base family, depth (when nonzero) wraps it in an interleaver. The map
// is total — every byte pair yields a valid stack — so the fuzzer can
// mutate freely.
func fuzzCodec(sel, depth byte) Codec {
	var c Codec
	switch sel % 6 {
	case 0:
		c = Identity{}
	case 1:
		c, _ = NewRepetition(3)
	case 2:
		c, _ = NewRepetition(5)
	case 3:
		c = Hamming74{}
	case 4:
		r, _ := NewRepetition(3)
		c = Composite{Outer: Hamming74{}, Inner: r}
	case 5:
		r, _ := NewRepetition(5)
		c = Composite{Outer: r, Inner: Hamming74{}}
	}
	if d := int(depth % 17); d > 0 {
		c = Interleaver{Depth: d, Next: c}
	}
	return c
}

// FuzzDecodePipeline drives every fast decode path against the scalar
// oracle with fuzzer-chosen codec stacks, message sizes and payload
// bytes. Two probes per input: the payload exactly as given (so shape
// errors must match too), and the payload resized to the codec's
// declared length (so the value paths are always exercised). The
// erasure fast path is compared under a mask derived from the payload
// stream. Any divergence — output bytes, unresolved mask, or error
// text — is a crash.
func FuzzDecodePipeline(f *testing.F) {
	f.Add(byte(3), byte(0), uint16(8), []byte("with trailing codeword bits"))
	f.Add(byte(4), byte(8), uint16(64), bytes.Repeat([]byte{0xA5}, 336))
	f.Add(byte(1), byte(0), uint16(9), make([]byte, 27))
	f.Add(byte(2), byte(3), uint16(1), []byte{0xFF, 0x00, 0x81, 0x7E, 0x55})
	f.Add(byte(0), byte(1), uint16(65), bytes.Repeat([]byte{0x0F}, 65))
	f.Add(byte(5), byte(16), uint16(257), []byte{})
	f.Fuzz(func(t *testing.T, sel, depth byte, msgB uint16, payload []byte) {
		msgBytes := int(msgB)%300 + 1
		codec := fuzzCodec(sel, depth)
		p := NewPipeline(codec)

		// Probe 1: the raw payload, whatever its shape.
		checkFuzzAgreement(t, p, payload, msgBytes)

		// Probe 2: resized to the declared coded length by cycling the
		// fuzz bytes (zeros when empty).
		coded := make([]byte, codec.EncodedLen(msgBytes))
		for i := range coded {
			if len(payload) > 0 {
				coded[i] = payload[i%len(payload)]
			}
		}
		checkFuzzAgreement(t, p, coded, msgBytes)

		// Probe 3: erasure path, mask bits drawn from the payload stream.
		dec, ok := codec.(ErasureDecoder)
		if !ok {
			return
		}
		mask := make([]bool, len(coded)*8)
		for i := range mask {
			if len(payload) > 0 {
				mask[i] = payload[(i/7)%len(payload)]>>(i%8)&1 == 1
			}
		}
		wantMsg, wantUn, wantErr := DecodeErasureScalar(codec, coded, mask, msgBytes)
		gotMsg, gotUn, gotErr := dec.DecodeErasure(coded, mask, msgBytes)
		if errStr(gotErr) != errStr(wantErr) {
			t.Fatalf("erasure err %q, scalar %q", errStr(gotErr), errStr(wantErr))
		}
		if !bytes.Equal(gotMsg, wantMsg) {
			t.Fatalf("erasure message diverges from scalar (codec %s, %dB)", codec.Name(), msgBytes)
		}
		if len(gotUn) != len(wantUn) {
			t.Fatalf("unresolved length %d vs %d", len(gotUn), len(wantUn))
		}
		for i := range gotUn {
			if gotUn[i] != wantUn[i] {
				t.Fatalf("unresolved bit %d diverges (codec %s)", i, codec.Name())
			}
		}
	})
}

func checkFuzzAgreement(t *testing.T, p *Pipeline, payload []byte, msgBytes int) {
	t.Helper()
	want, wantErr := DecodeScalar(p.Codec(), payload, msgBytes)
	got, gotErr := p.Codec().Decode(payload, msgBytes)
	if errStr(gotErr) != errStr(wantErr) {
		t.Fatalf("Decode err %q, scalar %q (codec %s, %dB payload, %dB msg)",
			errStr(gotErr), errStr(wantErr), p.Codec().Name(), len(payload), msgBytes)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Decode diverges from scalar (codec %s, %dB payload, %dB msg)",
			p.Codec().Name(), len(payload), msgBytes)
	}
	dst := make([]byte, msgBytes)
	pipeErr := p.DecodeInto(dst, payload, msgBytes)
	if errStr(pipeErr) != errStr(wantErr) {
		t.Fatalf("pipeline err %q, scalar %q (codec %s)", errStr(pipeErr), errStr(wantErr), p.Codec().Name())
	}
	if wantErr == nil && !bytes.Equal(dst, want) {
		t.Fatalf("pipeline diverges from scalar (codec %s, %dB msg)", p.Codec().Name(), msgBytes)
	}
}
