package ecc

import "fmt"

// SoftDecoder is the optional soft-decision interface. conf holds one
// confidence per *coded* bit: the probability (in [0, 1]) that the bit is
// a 1, as estimated from the channel (for Invisible Bits, from the
// fraction of power-on captures reading 1, inverted into payload domain).
//
// Hard majority voting throws this information away: a copy whose cell
// read 5/5 captures as 1 counts exactly as much as one that read 3/5.
// Soft combining weights each copy by its confidence, which both improves
// the residual error at a given copy count and makes even copy counts
// usable (ties dissolve). This is an extension beyond the paper's §4.3
// majority scheme; the ablation bench quantifies the gain.
type SoftDecoder interface {
	Codec
	// DecodeSoft recovers a message of msgBytes bytes from per-coded-bit
	// confidences (length must be 8×EncodedLen(msgBytes)).
	DecodeSoft(conf []float64, msgBytes int) ([]byte, error)
}

// DecodeSoft implements SoftDecoder for the repetition code: per message
// bit, sum the confidences across copies and threshold at half the copy
// count. With binary confidences this degenerates to exactly the hard
// majority vote.
func (r Repetition) DecodeSoft(conf []float64, msgBytes int) ([]byte, error) {
	if len(conf) != 8*r.EncodedLen(msgBytes) {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	bitsPerCopy := msgBytes * 8
	threshold := float64(r.N) / 2
	for bit := 0; bit < bitsPerCopy; bit++ {
		var sum float64
		for c := 0; c < r.N; c++ {
			sum += conf[c*bitsPerCopy+bit]
		}
		if sum > threshold {
			setBit(out, bit, 1)
		}
	}
	return out, nil
}

// DecodeSoft implements SoftDecoder for Composite when the inner
// (channel-facing) codec is itself a SoftDecoder: the inner code consumes
// the confidences, the outer code decodes the resulting hard bits.
func (c Composite) DecodeSoft(conf []float64, msgBytes int) ([]byte, error) {
	soft, ok := c.Inner.(SoftDecoder)
	if !ok {
		return nil, fmt.Errorf("ecc: inner codec %s has no soft decoder", c.Inner.Name())
	}
	midLen := c.Outer.EncodedLen(msgBytes)
	mid, err := soft.DecodeSoft(conf, midLen)
	if err != nil {
		return nil, err
	}
	return c.Outer.Decode(mid, msgBytes)
}

// DecodeSoft implements SoftDecoder for Identity: confidences threshold
// directly at 0.5.
func (Identity) DecodeSoft(conf []float64, msgBytes int) ([]byte, error) {
	if len(conf) != 8*msgBytes {
		return nil, ErrPayloadSize
	}
	out := make([]byte, msgBytes)
	for bit := 0; bit < msgBytes*8; bit++ {
		if conf[bit] > 0.5 {
			setBit(out, bit, 1)
		}
	}
	return out, nil
}

// HardToConf converts a hard payload into binary confidences (0 or 1);
// useful for testing and for decoders that only have one capture.
func HardToConf(payload []byte) []float64 {
	conf := make([]float64, len(payload)*8)
	for i := range conf {
		if payload[i/8]&(1<<(i%8)) != 0 {
			conf[i] = 1
		}
	}
	return conf
}

// Interface checks.
var (
	_ SoftDecoder = Repetition{}
	_ SoftDecoder = Composite{}
	_ SoftDecoder = Identity{}
)
