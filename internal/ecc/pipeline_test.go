package ecc

import (
	"bytes"
	"testing"

	"invisiblebits/internal/rng"
)

// Equivalence suite for the word-parallel decode paths: every fast path
// (LUT Hamming, bit-sliced repetition majority, cached-permutation
// interleave, the zero-alloc Pipeline, the erasure fast paths) is
// compared against the retained scalar decoders in scalar.go over random
// messages, random corruption, and random erasure masks. Message sizes
// deliberately straddle the word-parallel boundaries: 1–9 bytes exercise
// the pure tail loops, 63/64/65 the 8-byte word edge, 257 a long run
// with an odd tail.

var equivSizes = []int{1, 2, 3, 7, 8, 9, 16, 63, 64, 65, 257}

// errStr folds an error to a comparable string ("" for nil).
func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// checkDecodeAgreement runs one payload through codec.Decode (fast
// path), DecodeScalar (oracle) and Pipeline.DecodeInto, and fails unless
// all three agree on both output bytes and error.
func checkDecodeAgreement(t *testing.T, name string, p *Pipeline, payload []byte, msgBytes int) {
	t.Helper()
	want, wantErr := DecodeScalar(p.Codec(), payload, msgBytes)
	got, gotErr := p.Codec().Decode(payload, msgBytes)
	if errStr(gotErr) != errStr(wantErr) {
		t.Fatalf("%s/%dB: Decode err %q, scalar err %q", name, msgBytes, errStr(gotErr), errStr(wantErr))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s/%dB: Decode disagrees with scalar", name, msgBytes)
	}
	dst := make([]byte, msgBytes)
	pipeErr := p.DecodeInto(dst, payload, msgBytes)
	if errStr(pipeErr) != errStr(wantErr) {
		t.Fatalf("%s/%dB: pipeline err %q, scalar err %q", name, msgBytes, errStr(pipeErr), errStr(wantErr))
	}
	if wantErr == nil && !bytes.Equal(dst, want) {
		t.Fatalf("%s/%dB: pipeline output disagrees with scalar", name, msgBytes)
	}
}

// TestPipelineMatchesScalarCodewords: valid codewords with random bit
// corruption (both in- and out-of-budget error weights — equivalence
// must hold even when decoding garbage) decode identically through the
// fast paths and the scalar oracle.
func TestPipelineMatchesScalarCodewords(t *testing.T) {
	src := rng.NewSource(0xe1e0)
	for _, pc := range propertyCases(t) {
		p := NewPipeline(pc.codec)
		for _, msgBytes := range equivSizes {
			for trial := 0; trial < 8; trial++ {
				msg := make([]byte, msgBytes)
				src.Bytes(msg)
				coded, err := pc.codec.Encode(msg)
				if err != nil {
					t.Fatalf("%s/%dB: encode: %v", pc.name, msgBytes, err)
				}
				// Flip 0..12% of coded bits, uniformly placed.
				flips := src.Intn(len(coded) + 1)
				for f := 0; f < flips; f++ {
					bit := src.Intn(len(coded) * 8)
					coded[bit/8] ^= 1 << (bit % 8)
				}
				checkDecodeAgreement(t, pc.name, p, coded, msgBytes)
			}
		}
	}
}

// TestPipelineMatchesScalarGarbage: arbitrary random payloads (not
// codewords at all) still decode bit-identically — the fast paths may
// never diverge on any input.
func TestPipelineMatchesScalarGarbage(t *testing.T) {
	src := rng.NewSource(0xe1e1)
	for _, pc := range propertyCases(t) {
		p := NewPipeline(pc.codec)
		for _, msgBytes := range equivSizes {
			payload := make([]byte, pc.codec.EncodedLen(msgBytes))
			for trial := 0; trial < 4; trial++ {
				src.Bytes(payload)
				checkDecodeAgreement(t, pc.name, p, payload, msgBytes)
			}
		}
	}
}

// TestPipelineMatchesScalarErrors: wrong-shaped payloads produce the
// same error through every path, including nested stacks where the
// failing stage is inside a Composite or Interleaver.
func TestPipelineMatchesScalarErrors(t *testing.T) {
	for _, pc := range propertyCases(t) {
		p := NewPipeline(pc.codec)
		right := pc.codec.EncodedLen(8)
		for _, wrong := range []int{0, 1, right - 1, right + 1, 2 * right} {
			if wrong == right || wrong < 0 {
				continue
			}
			checkDecodeAgreement(t, pc.name, p, make([]byte, wrong), 8)
		}
	}
	// Degenerate interleaver depth errors must match too, bare and nested.
	for _, c := range []Codec{
		Interleaver{Depth: 0, Next: Identity{}},
		Composite{Outer: Hamming74{}, Inner: Interleaver{Depth: -3, Next: Identity{}}},
	} {
		checkDecodeAgreement(t, "bad-depth", NewPipeline(c), make([]byte, 16), 4)
	}
}

// refHammingEncode is an independent per-bit reference for the Hamming
// encoder: nibble → codeword via encodeNibble, emitted LSB-first.
func refHammingEncode(msg []byte) []byte {
	out := make([]byte, Hamming74{}.EncodedLen(len(msg)))
	bit := 0
	for _, b := range msg {
		for _, nib := range []byte{b & 0x0F, b >> 4} {
			cw := encodeNibble(nib)
			for k := 0; k < 7; k++ {
				setBit(out, bit, cw>>k&1)
				bit++
			}
		}
	}
	return out
}

// TestHammingEncodeMatchesReference: the LUT encoder emits the exact
// bit stream of the per-bit reference.
func TestHammingEncodeMatchesReference(t *testing.T) {
	src := rng.NewSource(0xe1e2)
	for _, msgBytes := range equivSizes {
		msg := make([]byte, msgBytes)
		src.Bytes(msg)
		got, err := Hamming74{}.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if want := refHammingEncode(msg); !bytes.Equal(got, want) {
			t.Fatalf("%dB: LUT encode diverges from per-bit reference", msgBytes)
		}
	}
}

// TestInterleaverEncodeMatchesReference: the gather-based encoder
// produces the same bit permutation as a per-bit scatter through the
// forward table (out bit fwd[i] = lin bit i — the original definition).
func TestInterleaverEncodeMatchesReference(t *testing.T) {
	src := rng.NewSource(0xe1e3)
	for _, depth := range []int{1, 2, 7, 8, 64, 1000} {
		il := Interleaver{Depth: depth, Next: Identity{}}
		for _, msgBytes := range []int{1, 8, 65} {
			msg := make([]byte, msgBytes)
			src.Bytes(msg)
			got, err := il.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			n := msgBytes * 8
			fwd := permFor(depth, n).fwd
			want := make([]byte, msgBytes)
			for i := 0; i < n; i++ {
				setBit(want, int(fwd[i]), getBit(msg, i))
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("depth=%d/%dB: gather encode diverges from scatter reference", depth, msgBytes)
			}
		}
	}
}

// TestErasureMatchesScalar: the erasure fast paths (chunked Hamming
// erasure LUT, permutation-cached interleave) agree with the scalar
// oracle on message bytes, unresolved mask and error for random
// payloads under masks of every density, including all-erased and
// none-erased.
func TestErasureMatchesScalar(t *testing.T) {
	src := rng.NewSource(0xe1e4)
	densities := []float64{0, 0.05, 0.3, 0.7, 1}
	for _, pc := range erasureCases(t) {
		dec := pc.codec.(ErasureDecoder)
		for _, msgBytes := range []int{1, 3, 8, 9, 64, 65} {
			payload := make([]byte, pc.codec.EncodedLen(msgBytes))
			mask := make([]bool, len(payload)*8)
			for _, density := range densities {
				for trial := 0; trial < 4; trial++ {
					src.Bytes(payload)
					for i := range mask {
						mask[i] = src.Float64() < density
					}
					wantMsg, wantUn, wantErr := DecodeErasureScalar(pc.codec, payload, mask, msgBytes)
					gotMsg, gotUn, gotErr := dec.DecodeErasure(payload, mask, msgBytes)
					if errStr(gotErr) != errStr(wantErr) {
						t.Fatalf("%s/%dB d=%.2f: err %q, scalar %q", pc.name, msgBytes, density, errStr(gotErr), errStr(wantErr))
					}
					if !bytes.Equal(gotMsg, wantMsg) {
						t.Fatalf("%s/%dB d=%.2f: erasure message diverges from scalar", pc.name, msgBytes, density)
					}
					if len(gotUn) != len(wantUn) {
						t.Fatalf("%s/%dB d=%.2f: unresolved length %d vs %d", pc.name, msgBytes, density, len(gotUn), len(wantUn))
					}
					for i := range gotUn {
						if gotUn[i] != wantUn[i] {
							t.Fatalf("%s/%dB d=%.2f: unresolved bit %d diverges", pc.name, msgBytes, density, i)
						}
					}
				}
			}
			// Wrong-shaped masks error identically.
			for _, badLen := range []int{0, len(mask) - 1, len(mask) + 8} {
				_, _, wantErr := DecodeErasureScalar(pc.codec, payload, make([]bool, badLen), msgBytes)
				_, _, gotErr := dec.DecodeErasure(payload, make([]bool, badLen), msgBytes)
				if errStr(gotErr) != errStr(wantErr) {
					t.Fatalf("%s: bad mask err %q, scalar %q", pc.name, errStr(gotErr), errStr(wantErr))
				}
			}
		}
	}
}

// TestPermForCached: the permutation tables are built once per geometry
// and shared — repeated lookups return the same object, and a warm
// lookup performs no allocation.
func TestPermForCached(t *testing.T) {
	a := permFor(8, 4096)
	if b := permFor(8, 4096); a != b {
		t.Fatal("permFor rebuilt a cached table")
	}
	if n := testing.AllocsPerRun(100, func() { permFor(8, 4096) }); n != 0 {
		t.Fatalf("warm permFor allocates %.1f objects/op", n)
	}
	// Distinct geometries get distinct tables.
	if permFor(8, 4096) == permFor(16, 4096) || permFor(8, 4096) == permFor(8, 4104) {
		t.Fatal("permFor conflated distinct geometries")
	}
	// fwd/inv are mutual inverses.
	tab := permFor(7, 1000)
	for i, f := range tab.fwd {
		if tab.inv[f] != int32(i) {
			t.Fatalf("perm table not invertible at bit %d", i)
		}
	}
}

// TestPipelineZeroAlloc: a warm Pipeline.DecodeInto never touches the
// heap, for every codec family — the property the BENCH_7 alloc gate
// enforces on the full decode tail.
func TestPipelineZeroAlloc(t *testing.T) {
	src := rng.NewSource(0xe1e5)
	for _, pc := range propertyCases(t) {
		const msgBytes = 257 // odd tail: worst case for scratch sizing
		p := NewPipeline(pc.codec)
		payload := make([]byte, pc.codec.EncodedLen(msgBytes))
		src.Bytes(payload)
		dst := make([]byte, msgBytes)
		if err := p.DecodeInto(dst, payload, msgBytes); err != nil { // warm tables + scratch
			t.Fatalf("%s: warmup: %v", pc.name, err)
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := p.DecodeInto(dst, payload, msgBytes); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: warm DecodeInto allocates %.1f objects/op", pc.name, n)
		}
	}
}

// oddCodec is an external Codec implementation unknown to the pipeline's
// type switch: it must fall back to the codec's own Decode and still
// agree with DecodeScalar's fallback.
type oddCodec struct{ Identity }

func (oddCodec) Name() string { return "odd" }

// TestPipelineUnknownCodecFallback: unknown codecs decode through their
// own Decode method with identical results, and DecodeInto copies into
// the caller's buffer.
func TestPipelineUnknownCodecFallback(t *testing.T) {
	p := NewPipeline(oddCodec{})
	payload := []byte{0xA5, 0x5A, 0xFF, 0x00}
	checkDecodeAgreement(t, "odd", p, payload, 4)
	// Shape errors propagate through the fallback too.
	checkDecodeAgreement(t, "odd", p, payload, 7)
}

// TestPipelineDstTooSmall: a dst shorter than msgBytes is rejected
// before any decoding happens.
func TestPipelineDstTooSmall(t *testing.T) {
	p := NewPipeline(Identity{})
	if err := p.DecodeInto(make([]byte, 3), make([]byte, 4), 4); err == nil {
		t.Fatal("pipeline accepted short dst")
	}
}

// TestRepMajorityAllCounts: exhaustive check of the bit-sliced majority
// against the integer definition for every copy count the codec admits
// and every vote pattern on a single-byte message.
func TestRepMajorityAllCounts(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9, 15} {
		rep, err := NewRepetition(n)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.NewSource(uint64(0xe1e6 + n))
		payload := make([]byte, n)
		for trial := 0; trial < 200; trial++ {
			src.Bytes(payload)
			got, err := rep.Decode(payload, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := rep.DecodeScalar(payload, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rep%d: sliced majority %02x, scalar %02x on %x", n, got[0], want[0], payload)
			}
		}
	}
}
