package ecc

import (
	"bytes"
	"testing"
	"testing/quick"

	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

// flipBits corrupts payload with bit error rate p, deterministically.
func flipBits(payload []byte, p float64, seed uint64) []byte {
	src := rng.NewSource(seed)
	out := make([]byte, len(payload))
	copy(out, payload)
	for i := 0; i < len(out)*8; i++ {
		if src.Float64() < p {
			out[i/8] ^= 1 << (i % 8)
		}
	}
	return out
}

func randMsg(n int, seed uint64) []byte {
	m := make([]byte, n)
	rng.NewSource(seed).Bytes(m)
	return m
}

// codecs under test, with their expected information rates.
func allCodecs(t *testing.T) []struct {
	c    Codec
	rate float64
} {
	t.Helper()
	rep5, err := NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		c    Codec
		rate float64
	}{
		{Identity{}, 1},
		{rep5, 0.2},
		{Hamming74{}, 4.0 / 7.0},
		{Composite{Outer: Hamming74{}, Inner: rep5}, 4.0 / 7.0 * 0.2},
		{Interleaver{Depth: 8, Next: Hamming74{}}, 4.0 / 7.0},
	}
}

func TestRoundTripNoiseless(t *testing.T) {
	for _, tc := range allCodecs(t) {
		for _, n := range []int{1, 2, 7, 64, 333} {
			msg := randMsg(n, uint64(n))
			enc, err := tc.c.Encode(msg)
			if err != nil {
				t.Fatalf("%s: %v", tc.c.Name(), err)
			}
			if len(enc) != tc.c.EncodedLen(n) {
				t.Fatalf("%s: EncodedLen(%d)=%d but Encode produced %d",
					tc.c.Name(), n, tc.c.EncodedLen(n), len(enc))
			}
			dec, err := tc.c.Decode(enc, n)
			if err != nil {
				t.Fatalf("%s decode: %v", tc.c.Name(), err)
			}
			if !bytes.Equal(dec, msg) {
				t.Fatalf("%s: noiseless round trip failed for n=%d", tc.c.Name(), n)
			}
		}
	}
}

func TestRates(t *testing.T) {
	for _, tc := range allCodecs(t) {
		if got := tc.c.Rate(); got != tc.rate {
			t.Errorf("%s rate = %v, want %v", tc.c.Name(), got, tc.rate)
		}
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	for _, tc := range allCodecs(t) {
		enc, err := tc.c.Encode(randMsg(16, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tc.c.Decode(enc[:len(enc)-1], 16); err == nil {
			t.Errorf("%s accepted truncated payload", tc.c.Name())
		}
		if _, err := tc.c.Decode(enc, 17); err == nil {
			t.Errorf("%s accepted wrong msgBytes", tc.c.Name())
		}
	}
}

func TestNewRepetitionValidation(t *testing.T) {
	for _, n := range []int{0, 2, 4, -1} {
		if _, err := NewRepetition(n); err == nil {
			t.Errorf("NewRepetition(%d) accepted", n)
		}
	}
	if _, err := NewRepetition(1); err != nil {
		t.Errorf("NewRepetition(1): %v", err)
	}
}

func TestRepetitionMatchesBernoulliTheory(t *testing.T) {
	// §5.2: "the repetition code closely follows theoretical predictions"
	// (Eq. 1). Measure over a large message and compare.
	const p = 0.10
	msg := randMsg(1<<14, 42)
	for _, n := range []int{3, 5, 7} {
		rep, err := NewRepetition(n)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := rep.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := rep.Decode(flipBits(enc, p, uint64(n)), len(msg))
		if err != nil {
			t.Fatal(err)
		}
		got := stats.BitErrorRate(dec, msg)
		want := stats.RepetitionErrorRate(1-p, n)
		if got < want*0.7-0.001 || got > want*1.3+0.001 {
			t.Errorf("repetition(%d) residual = %v, theory %v", n, got, want)
		}
	}
}

func TestHammingCorrectsSingleErrors(t *testing.T) {
	// Any single bit flip within any codeword must be fully corrected.
	msg := []byte{0xA5, 0x3C}
	h := Hamming74{}
	enc, err := h.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	nCw := len(msg) * 2
	for cw := 0; cw < nCw; cw++ {
		for k := 0; k < 7; k++ {
			corrupted := make([]byte, len(enc))
			copy(corrupted, enc)
			bit := cw*7 + k
			corrupted[bit/8] ^= 1 << (bit % 8)
			dec, err := h.Decode(corrupted, len(msg))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dec, msg) {
				t.Fatalf("single error at codeword %d bit %d not corrected", cw, k)
			}
		}
	}
}

func TestHammingNibbleExhaustive(t *testing.T) {
	for d := byte(0); d < 16; d++ {
		cw := encodeNibble(d)
		if got := decodeNibble(cw); got != d {
			t.Fatalf("clean decode of nibble %x = %x", d, got)
		}
		for bit := 0; bit < 7; bit++ {
			if got := decodeNibble(cw ^ (1 << bit)); got != d {
				t.Fatalf("nibble %x, flipped bit %d: decoded %x", d, bit, got)
			}
		}
	}
}

func TestHammingReducesLowErrorChannel(t *testing.T) {
	const p = 0.01
	msg := randMsg(1<<14, 7)
	h := Hamming74{}
	enc, _ := h.Encode(msg)
	dec, err := h.Decode(flipBits(enc, p, 3), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	got := stats.BitErrorRate(dec, msg)
	if got >= p/2 {
		t.Errorf("Hamming(7,4) residual %v not well below channel %v", got, p)
	}
}

func TestCompositeBeatsPlainRepetitionOnPaperChannel(t *testing.T) {
	// Fig. 10's headline: repetition+Hamming(7,4) reaches a given error
	// with fewer copies than repetition alone on the 6.5 % channel.
	const p = 0.065
	msg := randMsg(1<<13, 99)

	rep5, _ := NewRepetition(5)
	enc, _ := rep5.Encode(msg)
	dec, _ := rep5.Decode(flipBits(enc, p, 1), len(msg))
	plain := stats.BitErrorRate(dec, msg)

	comp := Composite{Outer: Hamming74{}, Inner: rep5}
	encC, _ := comp.Encode(msg)
	decC, err := comp.Decode(flipBits(encC, p, 2), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	combined := stats.BitErrorRate(decC, msg)
	if combined >= plain {
		t.Errorf("hamming+repetition(5) (%v) not better than repetition(5) (%v)", combined, plain)
	}
}

func TestCompositeOrderInsensitive(t *testing.T) {
	// Footnote 7: the order of repetition and Hamming(7,4) "does not
	// significantly affect the overall error rate".
	const p = 0.065
	msg := randMsg(1<<13, 5)
	rep3, _ := NewRepetition(3)

	a := Composite{Outer: Hamming74{}, Inner: rep3}
	b := Composite{Outer: rep3, Inner: Hamming74{}}

	encA, _ := a.Encode(msg)
	decA, err := a.Decode(flipBits(encA, p, 11), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	encB, _ := b.Encode(msg)
	decB, err := b.Decode(flipBits(encB, p, 12), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	ea := stats.BitErrorRate(decA, msg)
	eb := stats.BitErrorRate(decB, msg)
	if diff := ea - eb; diff > 0.02 || diff < -0.02 {
		t.Errorf("order changed residual error materially: %v vs %v", ea, eb)
	}
}

func TestInterleaverDefeatsBurst(t *testing.T) {
	// A contiguous 21-bit burst wipes three codewords of bare Hamming but
	// spreads to single errors under interleaving.
	msg := randMsg(64, 13)
	plain := Hamming74{}
	il := Interleaver{Depth: 32, Next: Hamming74{}}

	burst := func(enc []byte) []byte {
		out := make([]byte, len(enc))
		copy(out, enc)
		for bit := 100; bit < 121; bit++ {
			out[bit/8] ^= 1 << (bit % 8)
		}
		return out
	}

	encP, _ := plain.Encode(msg)
	decP, _ := plain.Decode(burst(encP), len(msg))
	encI, _ := il.Encode(msg)
	decI, err := il.Decode(burst(encI), len(msg))
	if err != nil {
		t.Fatal(err)
	}
	eP := stats.BitErrorRate(decP, msg)
	eI := stats.BitErrorRate(decI, msg)
	if eI >= eP {
		t.Errorf("interleaver did not help: %v vs %v", eI, eP)
	}
	if eI != 0 {
		t.Errorf("interleaved burst not fully corrected: %v", eI)
	}
}

func TestInterleaverPermutationProperty(t *testing.T) {
	f := func(seed uint64, depthRaw, nRaw uint8) bool {
		depth := int(depthRaw%16) + 1
		n := int(nRaw%100) + 1
		il := Interleaver{Depth: depth, Next: Identity{}}
		msg := randMsg(n, seed)
		enc, err := il.Encode(msg)
		if err != nil {
			return false
		}
		dec, err := il.Decode(enc, n)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterleaverRejectsBadDepth(t *testing.T) {
	il := Interleaver{Depth: 0, Next: Identity{}}
	if _, err := il.Encode([]byte{1}); err == nil {
		t.Error("Encode with depth 0 accepted")
	}
	if _, err := il.Decode([]byte{1}, 1); err == nil {
		t.Error("Decode with depth 0 accepted")
	}
}

func TestCompositeNames(t *testing.T) {
	rep3, _ := NewRepetition(3)
	c := Composite{Outer: Hamming74{}, Inner: rep3}
	if c.Name() != "hamming(7,4)+repetition(3)" {
		t.Errorf("name = %q", c.Name())
	}
	il := Interleaver{Depth: 4, Next: rep3}
	if il.Name() != "interleave(4,repetition(3))" {
		t.Errorf("name = %q", il.Name())
	}
}

func BenchmarkRepetition5Encode64KB(b *testing.B) {
	rep5, _ := NewRepetition(5)
	msg := randMsg(64<<10/5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rep5.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammingDecode(b *testing.B) {
	h := Hamming74{}
	msg := randMsg(4096, 1)
	enc, _ := h.Encode(msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Decode(enc, len(msg)); err != nil {
			b.Fatal(err)
		}
	}
}
