package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"invisiblebits/internal/core"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/parallel"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
)

// The stress tests exist for the race detector: HealthSweep and
// GatherContext each fan out goroutine-per-carrier, every capture inside
// them runs through the shared worker pool, and the fault injector
// perturbs timing on top. Running sweep and gather concurrently (on
// disjoint rig sets — a rig is single-goroutine-owned within one fleet
// call) under aggressive fault profiles is the densest interleaving the
// fleet layer supports; `go test -race ./internal/fleet` must stay
// clean.

// stressFleet builds n rigs with rotating aggressive fault profiles:
// flaky links, weak cell populations, and one early death.
func stressFleet(t *testing.T, prefix string, n int) []*rig.Rig {
	t.Helper()
	const sram = 2 << 10
	rigs := make([]*rig.Rig, n)
	for i := range rigs {
		p := faults.Profile{Seed: uint64(100 + i)}
		switch i % 3 {
		case 0:
			p.LinkDropRate = 0.3
		case 1:
			p.WeakFrac = 0.15
		case 2:
			p.LinkDropRate = 0.15
			p.WeakFrac = 0.05
		}
		if i == n-1 {
			p.FailAtHours = 0.002 // dies almost immediately under probing
		}
		rigs[i] = newRigWith(t, prefix+"-"+string(rune('a'+i)), sram, p)
	}
	return rigs
}

// TestStressConcurrentSweepAndGather runs retention sweeps and striped
// gathers simultaneously against a shared capture pool while the
// injector drops links and kills a carrier. Outcome requirements are
// behavioural, not statistical: gathers must keep returning the exact
// message, sweeps must keep returning a report with every carrier
// accounted for, and nothing may race or deadlock.
func TestStressConcurrentSweepAndGather(t *testing.T) {
	sweepRigs := stressFleet(t, "sweep", 6)
	// Charge a little shelf time so the doomed carrier's FailAtHours has
	// passed: the sweeps below must route around an already-dead device.
	for _, r := range sweepRigs {
		if err := r.ShelveAtFor(0.01, 25); err != nil {
			t.Fatal(err)
		}
	}
	gatherRigs := []*rig.Rig{
		newRigWith(t, "g-0", 2<<10, faults.Profile{Seed: 1, LinkDropRate: 0.25}),
		newRigWith(t, "g-1", 2<<10, faults.Profile{Seed: 2, LinkDropRate: 0.25}),
		newRigWith(t, "g-2", 2<<10, faults.Profile{}),
	}
	// Everyone shares one explicit 2-worker pool: maximal contention on
	// the capture semaphore from both fleet operations at once.
	pool := parallel.New(2)
	UseCapturePool(sweepRigs, pool)
	UseCapturePool(gatherRigs, pool)

	opts := paperishOpts(t)
	msg := make([]byte, core.MaxMessageBytes(2<<10, opts.Codec)*2+11)
	rng.NewSource(41).Bytes(msg)
	striped, err := StripeWithOptions(context.Background(), gatherRigs, msg, opts, StripeOptions{})
	if err != nil {
		t.Fatalf("stripe: %v", err)
	}

	const rounds = 3
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for round := 0; round < rounds; round++ {
			rep, err := HealthSweep(ctx, sweepRigs, HealthSweepOptions{Captures: 3})
			if err != nil {
				t.Errorf("sweep round %d: %v", round, err)
				return
			}
			if len(rep.Carriers) != len(sweepRigs) {
				t.Errorf("sweep round %d: %d carriers reported, want %d",
					round, len(rep.Carriers), len(sweepRigs))
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for round := 0; round < rounds; round++ {
			rep, err := GatherContext(ctx, gatherRigs, striped, opts)
			if err != nil {
				t.Errorf("gather round %d: %v", round, err)
				return
			}
			if !rep.Complete {
				t.Errorf("gather round %d: incomplete: %v", round, rep.Err())
				return
			}
			if string(rep.Message) != string(msg) {
				t.Errorf("gather round %d: message corrupted", round)
				return
			}
		}
	}()
	wg.Wait()

	// The doomed carrier must have died and been reported, not have sunk
	// any sweep.
	if sweepRigs[len(sweepRigs)-1].Device().Alive() {
		t.Error("doomed carrier still alive after probing rounds")
	}
}

// TestStressSweepCancellation cancels a sweep mid-flight. Whatever the
// timing, the sweep must return promptly with every carrier slot either
// probed or carrying an error — never hang, never panic, never race.
// Both cancelled-early and finished-first outcomes are legitimate (the
// assertion set is timing-independent, so -count=2 runs stay green).
func TestStressSweepCancellation(t *testing.T) {
	rigs := stressFleet(t, "cancel", 5)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var rep *HealthSweepReport
	var err error
	go func() {
		defer close(done)
		rep, err = HealthSweep(ctx, rigs, HealthSweepOptions{Captures: 5})
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
	if err != nil {
		t.Fatalf("sweep returned structural error on cancellation: %v", err)
	}
	if len(rep.Carriers) != len(rigs) {
		t.Fatalf("%d carrier slots, want %d", len(rep.Carriers), len(rigs))
	}
	for i, c := range rep.Carriers {
		if c.Err == nil && c.Probe == nil {
			t.Errorf("carrier %d: neither probe nor error after cancellation", i)
		}
	}

	// Immediately-cancelled sweep: pure cancellation path, fully
	// deterministic.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	rep2, err := HealthSweep(ctx2, rigs[:2], HealthSweepOptions{Captures: 3})
	if err != nil {
		t.Fatalf("pre-cancelled sweep structural error: %v", err)
	}
	for i, c := range rep2.Carriers {
		if c.Err == nil {
			t.Errorf("carrier %d: no error from pre-cancelled sweep", i)
		} else if !errors.Is(c.Err, context.Canceled) && !faults.IsPermanent(c.Err) {
			t.Errorf("carrier %d: unexpected error class: %v", i, c.Err)
		}
	}
}

// TestStressGatherCancellation: a gather cancelled before it starts
// reports per-shard failure (or a structural context error) without
// panicking, and the same stripe still gathers cleanly afterwards.
func TestStressGatherCancellation(t *testing.T) {
	rigs := []*rig.Rig{
		newRigWith(t, "gc-0", 2<<10, faults.Profile{Seed: 5, LinkDropRate: 0.2}),
		newRigWith(t, "gc-1", 2<<10, faults.Profile{}),
	}
	opts := paperishOpts(t)
	msg := make([]byte, core.MaxMessageBytes(2<<10, opts.Codec)+7)
	rng.NewSource(43).Bytes(msg)
	striped, err := StripeWithOptions(context.Background(), rigs, msg, opts, StripeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := GatherContext(ctx, rigs, striped, opts)
	if err == nil {
		if rep.Complete {
			t.Fatal("pre-cancelled gather claims completion")
		}
		if rep.Err() == nil {
			t.Fatal("incomplete gather reports no error")
		}
	}

	got, err := Gather(rigs, striped, opts)
	if err != nil {
		t.Fatalf("gather after cancelled attempt: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatal("message corrupted after cancelled attempt")
	}
}
