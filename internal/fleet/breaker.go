package fleet

import (
	"context"
	"errors"
	"sort"
	"sync"

	"invisiblebits/internal/faults"
)

// Circuit breakers isolate dying rigs. A device with a flaky link fails,
// gets retried (with backoff charged to the simulated clock), fails
// again — and without a breaker every fleet pass pays that retry tax
// again, stealing bench time from healthy carriers. The breaker watches
// consecutive per-device failures and, once a device trips, short-
// circuits further operations against it until a backoff expires; a
// device that keeps tripping is quarantined outright, which makes spare
// re-routing and parity reconstruction kick in immediately instead of
// after another full retry budget.
//
// States, on the simulated clock:
//
//	closed      → operations flow; N consecutive failures open the breaker
//	open        → operations are rejected until backoffHours of simulated
//	              time elapse (backoff doubles per trip)
//	half-open   → one probe operation is let through; success closes the
//	              breaker, failure re-opens it with doubled backoff
//	quarantined → terminal: reached after QuarantineAfterTrips trips or
//	              any permanent fault; the device is written off
var (
	// ErrBreakerOpen rejects an operation because the device's breaker is
	// open and its backoff has not yet elapsed on the simulated clock.
	ErrBreakerOpen = errors.New("fleet: circuit breaker open")
	// ErrQuarantined rejects an operation because the device has been
	// written off (repeated trips or a permanent fault).
	ErrQuarantined = errors.New("fleet: device quarantined")
)

// BreakerState is a breaker's position in the state machine.
type BreakerState string

// Breaker states.
const (
	BreakerClosed      BreakerState = "closed"
	BreakerOpen        BreakerState = "open"
	BreakerHalfOpen    BreakerState = "half-open"
	BreakerQuarantined BreakerState = "quarantined"
)

// BreakerConfig parameterizes the per-device state machine. The zero
// value selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens a
	// closed breaker; 0 means DefaultFailureThreshold.
	FailureThreshold int
	// BaseBackoffHours is the simulated-clock backoff after the first
	// trip, doubling per subsequent trip; 0 means DefaultBaseBackoffHours.
	BaseBackoffHours float64
	// MaxBackoffHours caps the doubling; 0 means DefaultMaxBackoffHours.
	MaxBackoffHours float64
	// QuarantineAfterTrips writes the device off after this many trips;
	// 0 means DefaultQuarantineAfterTrips.
	QuarantineAfterTrips int
}

// Breaker defaults: a link that drops three ops in a row is parked for
// an hour of simulated bench time, and a device that trips three times
// is handed to the spares bin.
const (
	DefaultFailureThreshold     = 3
	DefaultBaseBackoffHours     = 1.0
	DefaultMaxBackoffHours      = 16.0
	DefaultQuarantineAfterTrips = 3
)

func (c BreakerConfig) failureThreshold() int {
	if c.FailureThreshold <= 0 {
		return DefaultFailureThreshold
	}
	return c.FailureThreshold
}

func (c BreakerConfig) baseBackoffHours() float64 {
	if c.BaseBackoffHours <= 0 {
		return DefaultBaseBackoffHours
	}
	return c.BaseBackoffHours
}

func (c BreakerConfig) maxBackoffHours() float64 {
	if c.MaxBackoffHours <= 0 {
		return DefaultMaxBackoffHours
	}
	return c.MaxBackoffHours
}

func (c BreakerConfig) quarantineAfterTrips() int {
	if c.QuarantineAfterTrips <= 0 {
		return DefaultQuarantineAfterTrips
	}
	return c.QuarantineAfterTrips
}

// Breaker is one device's circuit breaker. Safe for concurrent use —
// fleet workers share the set across goroutines.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state        BreakerState
	consecFails  int
	trips        int
	openedAt     float64 // simulated clock at the last trip
	backoffHours float64
	probing      bool // a half-open probe is in flight

	transient int // classified fault observations
	permanent int
	skipped   int // operations rejected while open/quarantined
}

func newBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg, state: BreakerClosed}
}

// Allow asks whether an operation against the device may proceed at the
// given simulated clock. Open breakers whose backoff has elapsed
// transition to half-open and admit exactly one probe; concurrent
// callers beyond the probe are rejected with ErrBreakerOpen.
func (b *Breaker) Allow(clockHours float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerQuarantined:
		b.skipped++
		return ErrQuarantined
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if clockHours < b.openedAt+b.backoffHours {
			b.skipped++
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	case BreakerHalfOpen:
		if b.probing {
			b.skipped++
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
	return nil
}

// Record reports the outcome of an operation Allow admitted. A nil err
// (success) closes the breaker and resets its counters. Permanent
// faults quarantine immediately. Context cancellation is the caller
// giving up, not the device failing, and is ignored. Other failures
// count toward the consecutive-failure threshold; in half-open state a
// single failure re-opens with doubled backoff.
func (b *Breaker) Record(err error, clockHours float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerQuarantined {
		return
	}
	wasProbe := b.probing
	b.probing = false

	if err == nil {
		b.state = BreakerClosed
		b.consecFails = 0
		b.trips = 0
		b.backoffHours = 0
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	switch {
	case faults.IsPermanent(err):
		b.permanent++
	case faults.IsTransient(err):
		b.transient++
	}
	if faults.IsPermanent(err) {
		b.state = BreakerQuarantined
		return
	}

	if wasProbe && b.state == BreakerHalfOpen {
		b.trip(clockHours)
		return
	}
	b.consecFails++
	if b.consecFails >= b.cfg.failureThreshold() {
		b.trip(clockHours)
	}
}

// trip opens the breaker with the next backoff step; too many trips
// quarantine the device.
func (b *Breaker) trip(clockHours float64) {
	b.trips++
	if b.trips >= b.cfg.quarantineAfterTrips() {
		b.state = BreakerQuarantined
		return
	}
	b.state = BreakerOpen
	b.openedAt = clockHours
	b.consecFails = 0
	backoff := b.cfg.baseBackoffHours()
	for i := 1; i < b.trips; i++ {
		backoff *= 2
	}
	if max := b.cfg.maxBackoffHours(); backoff > max {
		backoff = max
	}
	b.backoffHours = backoff
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is one device's breaker telemetry, the post-hoc
// explanation of why the fleet stopped (or kept) talking to it.
type BreakerStats struct {
	DeviceID string
	State    BreakerState
	// ConsecutiveFailures is the live failure streak (closed state).
	ConsecutiveFailures int
	// Trips counts closed→open transitions since the last success.
	Trips int
	// TransientFaults / PermanentFaults are the classified failures the
	// breaker has been shown.
	TransientFaults int
	PermanentFaults int
	// SkippedOps counts operations rejected while open or quarantined —
	// the retry budget the breaker saved.
	SkippedOps int
	// BackoffHours is the current open-state backoff.
	BackoffHours float64
}

// BreakerSet holds one breaker per device, keyed by device ID. The zero
// value is not usable; construct with NewBreakerSet. A nil *BreakerSet
// disables breaker enforcement everywhere it is accepted.
type BreakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*Breaker
}

// NewBreakerSet builds an empty set with the given config.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns the device's breaker, creating it closed on first use.
func (s *BreakerSet) For(deviceID string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[deviceID]
	if !ok {
		b = newBreaker(s.cfg)
		s.m[deviceID] = b
	}
	return b
}

// allow is the nil-safe gate used by fleet operations.
func (s *BreakerSet) allow(deviceID string, clockHours float64) error {
	if s == nil {
		return nil
	}
	return s.For(deviceID).Allow(clockHours)
}

// record is the nil-safe outcome report used by fleet operations.
func (s *BreakerSet) record(deviceID string, err error, clockHours float64) {
	if s == nil {
		return
	}
	s.For(deviceID).Record(err, clockHours)
}

// Quarantined lists the written-off device IDs, sorted.
func (s *BreakerSet) Quarantined() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, b := range s.m {
		if b.State() == BreakerQuarantined {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Stats reports every tracked device's breaker telemetry, sorted by
// device ID.
func (s *BreakerSet) Stats() []BreakerStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BreakerStats, 0, len(s.m))
	for id, b := range s.m {
		b.mu.Lock()
		out = append(out, BreakerStats{
			DeviceID:            id,
			State:               b.state,
			ConsecutiveFailures: b.consecFails,
			Trips:               b.trips,
			TransientFaults:     b.transient,
			PermanentFaults:     b.permanent,
			SkippedOps:          b.skipped,
			BackoffHours:        b.backoffHours,
		})
		b.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeviceID < out[j].DeviceID })
	return out
}

// isRerouteable reports whether err means "stop using this device now"
// — permanent device faults plus breaker rejections — the trigger for
// spare re-routing and parity reconstruction.
func isRerouteable(err error) bool {
	return faults.IsPermanent(err) || errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrQuarantined)
}
