// Package fleet implements multi-device operations around Invisible
// Bits. §5.3 observes that "devices can be encoded in parallel. Given the
// importance of capacity in a steganographic covert channel, one can
// encode many devices and select the one with the least error" — yielding
// the paper's 160× best-device capacity factor. This package provides:
//
//   - Characterize: encode a calibration payload on every device in
//     parallel and measure each one's single-copy channel error.
//   - SelectBest: the least-error device of a characterized fleet.
//   - Stripe/Gather: split one message across several devices (each
//     carrying an independently encrypted shard with its own per-device
//     nonce), for messages that exceed a single SRAM.
//
// The fleet is failure-tolerant by construction: a lab campaign over
// many devices *will* see flaky debugger links, mid-soak deaths, and
// weak silicon, and one bad device must not sink the whole batch.
// Characterize reports per-device errors alongside the survivors;
// Stripe re-routes a shard to a spare device when its primary dies; and
// Gather degrades gracefully, reconstructing one lost shard from an
// optional XOR parity carrier.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"invisiblebits/internal/core"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
)

// Characterization is one device's measured channel quality.
type Characterization struct {
	Index        int
	DeviceID     string
	ChannelError float64
	// TransientFaults / PermanentFaults count the classified faults the
	// rig observed during this device's characterization (per-attempt:
	// every consulted-and-failed hook point counts, including retries),
	// so breaker thresholds and quarantine decisions are explainable
	// post-hoc.
	TransientFaults int
	PermanentFaults int
}

// Characterize stress-tests every rig in parallel with a pseudo-random
// calibration payload at its device's Table 4 operating point and
// measures the single-copy error. The devices are left encoded with the
// calibration pattern; callers re-encode the real payload afterwards
// (stress composes, so characterization costs headroom, not correctness —
// but best practice is to characterize sacrificial devices of the same
// lot, which is how the paper frames device selection).
//
// Characterize tolerates partial failure: devices that error are
// dropped from the result and reported in a joined error (one entry per
// casualty, unwrappable with errors.Is/errors.As), so SelectBest still
// works on the survivors. The returned slice is ordered by rig index.
func Characterize(rigs []*rig.Rig, captures int) ([]Characterization, error) {
	return CharacterizeContext(context.Background(), rigs, captures)
}

// CharacterizeContext is Characterize with cancellation.
func CharacterizeContext(ctx context.Context, rigs []*rig.Rig, captures int) ([]Characterization, error) {
	if len(rigs) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	out := make([]Characterization, len(rigs))
	errs := make([]error, len(rigs))
	var wg sync.WaitGroup
	for i, r := range rigs {
		wg.Add(1)
		go func(i int, r *rig.Rig) {
			defer wg.Done()
			out[i], errs[i] = characterizeOne(ctx, i, r, captures)
		}(i, r)
	}
	wg.Wait()
	survivors := make([]Characterization, 0, len(rigs))
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("fleet: device %d (%s): %w",
				i, rigs[i].Device().DeviceID(), err))
			continue
		}
		survivors = append(survivors, out[i])
	}
	return survivors, errors.Join(joined...)
}

// characterizeOne drives one device's calibration soak through its rig,
// so mounted fault injectors see the same hook points a real encode
// does. Transient capture faults are retried with backoff charged to
// the device's simulated clock.
func characterizeOne(ctx context.Context, i int, r *rig.Rig, captures int) (Characterization, error) {
	t0, p0 := r.FaultCounts()
	c, err := characterizeDevice(ctx, i, r, captures)
	t1, p1 := r.FaultCounts()
	c.TransientFaults, c.PermanentFaults = t1-t0, p1-p0
	return c, err
}

func characterizeDevice(ctx context.Context, i int, r *rig.Rig, captures int) (Characterization, error) {
	dev := r.Device()
	if !dev.SRAM.Powered() {
		if _, err := r.PowerOnContext(ctx); err != nil {
			return Characterization{}, err
		}
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(rng.HashString("fleet/" + dev.DeviceID())).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		return Characterization{}, err
	}
	if dev.Model.RequiresRegulatorBypass {
		if err := r.BypassRegulator(); err != nil {
			return Characterization{}, err
		}
	}
	if err := r.SetVoltage(dev.Model.VAccV); err != nil {
		return Characterization{}, err
	}
	r.SetTemperature(dev.Model.TAccC)
	if err := r.StressForContext(ctx, dev.Model.EncodingHours); err != nil {
		return Characterization{}, err
	}
	r.SetTemperature(dev.Model.TNomC)
	if err := r.SetVoltage(dev.Model.VNomV); err != nil {
		return Characterization{}, err
	}
	chErr, err := core.RawChannelErrorContext(ctx, r, payload, captures, core.Options{})
	if err != nil {
		return Characterization{}, err
	}
	return Characterization{
		Index:        i,
		DeviceID:     dev.DeviceID(),
		ChannelError: chErr,
	}, nil
}

// SelectBest returns the characterization with the lowest channel error.
func SelectBest(chars []Characterization) (Characterization, error) {
	if len(chars) == 0 {
		return Characterization{}, errors.New("fleet: empty characterization set")
	}
	best := chars[0]
	for _, c := range chars[1:] {
		if c.ChannelError < best.ChannelError {
			best = c
		}
	}
	return best, nil
}

// Shard is one device's portion of a striped message. Index is the
// *planned* shard slot; Record.DeviceID names the device that actually
// carries it (which differs from the slot's primary when the shard was
// re-routed to a spare).
type Shard struct {
	Index  int
	Record *core.Record
}

// StripeResult describes a striped encoding.
type StripeResult struct {
	Shards       []Shard
	MessageBytes int
	// SegmentSizes[i] is the planned message-byte count of shard slot i
	// (zero for slots that carry nothing). It survives shard loss, so
	// Gather can lay out the message even when a carrier never encoded.
	SegmentSizes []int
	// Lost lists shard slots whose encode failed outright (possible only
	// when a parity carrier makes the stripe still recoverable).
	Lost []int
	// Parity is the optional XOR parity shard (see StripeOptions).
	Parity *Shard
}

// ShardProgress tells a striped encode how far a shard already got in a
// previous (crashed) run, so StripeWithOptions can re-enter the soak at
// the exact slice boundary a campaign checkpoint captured.
type ShardProgress struct {
	// Record, when non-nil, marks the shard fully encoded: the slot is
	// skipped entirely and Record is used as-is.
	Record *core.Record
	// Prepared means the payload is already in SRAM (the slot's rig was
	// restored from a mid-soak checkpoint); the prepare phase is skipped.
	Prepared bool
	// AppliedHours is the stress the checkpointed device has already
	// absorbed.
	AppliedHours float64
}

// StripeOptions configures failure tolerance for a striped encode.
type StripeOptions struct {
	// Spares are standby devices. When a shard's primary dies
	// permanently, the shard is re-encoded on the next unused spare (the
	// §5.3 "encode many devices" insurance policy made operational).
	Spares []*rig.Rig
	// ParityRig, when non-nil, carries one extra shard: the XOR of every
	// data shard's plaintext segment (padded to the largest segment).
	// Gather can then reconstruct any single lost shard — an erasure
	// code at the fleet layer, above the per-device ECC.
	ParityRig *rig.Rig
	// Breakers, when non-nil, gates every per-device encode through the
	// device's circuit breaker: open or quarantined devices are skipped
	// (triggering spare re-routing immediately instead of after another
	// retry budget) and every outcome is recorded.
	Breakers *BreakerSet

	// SliceHours dices each shard's soak into slices of this length,
	// with OnSlice consulted after every slice — the supervisor's
	// journaling hook. Zero (with no Progress hook) keeps the legacy
	// single-shot soak.
	SliceHours float64
	// Progress reports a slot's prior progress (crash resume). Nil means
	// every shard starts from scratch.
	Progress func(slot int) ShardProgress
	// OnPrepared fires after a slot's payload is written and conditions
	// are elevated, before its first slice. An error aborts the shard.
	OnPrepared func(slot int, r *rig.Rig) error
	// OnSlice fires after each completed stress slice with cumulative
	// applied hours. An error aborts the shard.
	OnSlice func(slot int, r *rig.Rig, appliedHours, totalHours float64) error
	// OnEncoded fires after a shard's encode finished and its record was
	// minted. An error aborts the shard.
	OnEncoded func(slot int, r *rig.Rig, rec *core.Record) error
}

// staged reports whether the options request the sliced phase-hook path.
func (o StripeOptions) staged() bool {
	return o.SliceHours > 0 || o.Progress != nil || o.OnPrepared != nil ||
		o.OnSlice != nil || o.OnEncoded != nil
}

// progressFor is the nil-safe Progress lookup.
func (o StripeOptions) progressFor(slot int) ShardProgress {
	if o.Progress == nil {
		return ShardProgress{}
	}
	return o.Progress(slot)
}

// PlanSegments computes the per-slot message-byte layout of a stripe
// over devices with the given SRAM sizes: each slot takes as much of
// the remainder as its capacity allows. Campaign supervisors use the
// same planner to digest their schedules, so a resumed campaign can
// verify it is laying out exactly the stripe the crashed one was.
func PlanSegments(sramBytes []int, messageLen int, codec ecc.Codec) ([]int, error) {
	sizes := make([]int, len(sramBytes))
	remaining := messageLen
	for i, sb := range sramBytes {
		take := core.MaxMessageBytes(sb, codec)
		if take > remaining {
			take = remaining
		}
		sizes[i] = take
		remaining -= take
	}
	if remaining > 0 {
		return nil, fmt.Errorf("fleet: message exceeds fleet capacity by %d bytes", remaining)
	}
	return sizes, nil
}

// Stripe splits message across the rigs' devices, encoding shard i on
// device i with the shared options. Each shard is encrypted independently
// under the device's own nonce (footnote 4's cross-device protection
// comes for free). Devices are encoded in parallel — the paper's
// observation that encoding time is dominated by the soak, which all
// devices serve simultaneously in one chamber.
func Stripe(rigs []*rig.Rig, message []byte, opts core.Options) (*StripeResult, error) {
	return StripeWithOptions(context.Background(), rigs, message, opts, StripeOptions{})
}

// StripeWithOptions is Stripe with cancellation and failure tolerance:
// dead primaries are replaced by spares, and an optional parity carrier
// lets the stripe survive losing one shard outright. The returned
// result is decodable whenever err is nil — even if it records Lost
// slots that Gather will have to reconstruct from parity.
func StripeWithOptions(ctx context.Context, rigs []*rig.Rig, message []byte, opts core.Options, sopts StripeOptions) (*StripeResult, error) {
	if len(rigs) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	if len(message) == 0 {
		return nil, core.ErrEmptyMessage
	}
	// Plan shard sizes against each device's capacity.
	sizes := make([]int, len(rigs))
	remaining := len(message)
	for i, r := range rigs {
		capBytes := core.MaxMessageBytes(r.Device().SRAM.Bytes(), opts.Codec)
		take := capBytes
		if take > remaining {
			take = remaining
		}
		sizes[i] = take
		remaining -= take
	}
	if remaining > 0 {
		return nil, fmt.Errorf("fleet: message exceeds fleet capacity by %d bytes", remaining)
	}

	res := &StripeResult{MessageBytes: len(message), SegmentSizes: sizes}
	type job struct {
		idx   int
		start int
		n     int
	}
	var jobs []job
	off := 0
	for i, n := range sizes {
		if n > 0 {
			jobs = append(jobs, job{idx: i, start: off, n: n})
			off += n
		}
	}

	// Spares are handed out first-come first-served across shard workers.
	var spareMu sync.Mutex
	sparePool := append([]*rig.Rig(nil), sopts.Spares...)
	nextSpare := func(need int) *rig.Rig {
		spareMu.Lock()
		defer spareMu.Unlock()
		for k, sp := range sparePool {
			if sp == nil {
				continue
			}
			if core.MaxMessageBytes(sp.Device().SRAM.Bytes(), opts.Codec) >= need {
				sparePool[k] = nil
				return sp
			}
		}
		return nil
	}

	// encodeStaged drives one carrier through the sliced session path,
	// resuming from checkpointed progress and firing the supervisor's
	// phase hooks at every boundary.
	encodeStaged := func(slot int, r *rig.Rig, seg []byte, prog ShardProgress) (*core.Record, error) {
		var s *core.EncodeSession
		var err error
		if prog.Prepared {
			s, err = core.ResumeEncode(ctx, r, seg, opts, prog.AppliedHours)
		} else {
			s, err = core.BeginEncode(ctx, r, seg, opts)
			if err == nil && sopts.OnPrepared != nil {
				err = sopts.OnPrepared(slot, r)
			}
		}
		if err != nil {
			return nil, err
		}
		slice := sopts.SliceHours
		if slice <= 0 {
			slice = s.TotalHours()
		}
		for s.RemainingHours() > 0 {
			if err := s.StressSlice(ctx, slice); err != nil {
				return nil, err
			}
			if sopts.OnSlice != nil {
				if err := sopts.OnSlice(slot, r, s.AppliedHours(), s.TotalHours()); err != nil {
					return nil, err
				}
			}
		}
		rec, err := s.Finish(ctx)
		if err != nil {
			return nil, err
		}
		if sopts.OnEncoded != nil {
			if err := sopts.OnEncoded(slot, r, rec); err != nil {
				return nil, err
			}
		}
		return rec, nil
	}

	// encodeOn runs one attempt on one carrier, gated through its
	// circuit breaker when a set is mounted.
	encodeOn := func(slot int, r *rig.Rig, seg []byte, prog ShardProgress) (*core.Record, error) {
		id := r.Device().DeviceID()
		if err := sopts.Breakers.allow(id, r.ClockHours()); err != nil {
			return nil, err
		}
		var rec *core.Record
		var err error
		if sopts.staged() {
			rec, err = encodeStaged(slot, r, seg, prog)
		} else {
			rec, err = core.EncodeContext(ctx, r, seg, opts)
		}
		sopts.Breakers.record(id, err, r.ClockHours())
		return rec, err
	}

	encodeShard := func(jb job) (*core.Record, error) {
		seg := message[jb.start : jb.start+jb.n]
		prog := sopts.progressFor(jb.idx)
		if prog.Record != nil {
			// A previous run already finished this shard.
			return prog.Record, nil
		}
		rec, err := encodeOn(jb.idx, rigs[jb.idx], seg, prog)
		// Permanent device death re-routes to a spare, as do breaker
		// rejections — an open or quarantined primary should cost the
		// stripe nothing beyond the Allow call. Transient faults were
		// already retried inside the rig. Spares always start from
		// scratch: checkpointed progress belongs to the primary's SRAM.
		for err != nil && isRerouteable(err) {
			sp := nextSpare(jb.n)
			if sp == nil {
				break
			}
			rec, err = encodeOn(jb.idx, sp, seg, ShardProgress{})
		}
		return rec, err
	}

	records := make([]*core.Record, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for j, jb := range jobs {
		wg.Add(1)
		go func(j int, jb job) {
			defer wg.Done()
			records[j], errs[j] = encodeShard(jb)
		}(j, jb)
	}

	// The parity shard encodes concurrently with the data shards — it is
	// just one more device in the same thermal chamber.
	var parityRec *core.Record
	var parityErr error
	if sopts.ParityRig != nil {
		maxSeg := 0
		for _, jb := range jobs {
			if jb.n > maxSeg {
				maxSeg = jb.n
			}
		}
		parity := make([]byte, maxSeg)
		for _, jb := range jobs {
			for k := 0; k < jb.n; k++ {
				parity[k] ^= message[jb.start+k]
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr := sopts.ParityRig
			id := pr.Device().DeviceID()
			if parityErr = sopts.Breakers.allow(id, pr.ClockHours()); parityErr != nil {
				return
			}
			parityRec, parityErr = core.EncodeContext(ctx, pr, parity, opts)
			sopts.Breakers.record(id, parityErr, pr.ClockHours())
		}()
	}
	wg.Wait()

	var fatal []error
	for j, jb := range jobs {
		if errs[j] != nil {
			res.Lost = append(res.Lost, jb.idx)
			fatal = append(fatal, fmt.Errorf("fleet: shard %d: %w", jb.idx, errs[j]))
			continue
		}
		res.Shards = append(res.Shards, Shard{Index: jb.idx, Record: records[j]})
	}
	if parityErr != nil {
		fatal = append(fatal, fmt.Errorf("fleet: parity shard: %w", parityErr))
	} else if parityRec != nil {
		res.Parity = &Shard{Index: -1, Record: parityRec}
	}

	// The stripe is shippable if every segment is either encoded or
	// reconstructible: at most one lost slot, covered by a live parity.
	recoverable := len(res.Lost) == 0 ||
		(len(res.Lost) == 1 && res.Parity != nil)
	if !recoverable || (len(res.Lost) > 0 && parityErr != nil) {
		return nil, errors.Join(fatal...)
	}
	return res, nil
}

// ShardStatus reports one shard's fate during Gather.
type ShardStatus struct {
	Index     int
	DeviceID  string
	Err       error // nil when the shard decoded (or was reconstructed)
	Recovered bool  // true when rebuilt from the parity carrier
	// TransientFaults / PermanentFaults count the classified faults the
	// carrier's rig observed while this shard decoded (per-attempt,
	// including in-rig retries).
	TransientFaults int
	PermanentFaults int
}

// GatherReport is the outcome of a degraded-capable Gather.
type GatherReport struct {
	// Message is the reassembled plaintext; valid only when Complete.
	Message []byte
	// Complete is true when every segment was decoded or reconstructed.
	Complete bool
	// Shards records the per-slot outcomes, ordered by slot.
	Shards []ShardStatus
	// Quarantined lists device IDs the mounted breaker set has written
	// off (empty without GatherOptions.Breakers).
	Quarantined []string
}

// GatherOptions configures failure handling for a gather pass.
type GatherOptions struct {
	// Breakers, when non-nil, gates each carrier's decode through its
	// circuit breaker and surfaces the quarantine list in the report.
	Breakers *BreakerSet
}

// Err joins the failures of every unrecovered shard (nil when Complete).
func (g *GatherReport) Err() error {
	if g.Complete {
		return nil
	}
	var errs []error
	for _, s := range g.Shards {
		if s.Err != nil && !s.Recovered {
			errs = append(errs, fmt.Errorf("fleet: shard %d (%s): %w", s.Index, s.DeviceID, s.Err))
		}
	}
	if len(errs) == 0 {
		errs = append(errs, errors.New("fleet: message incomplete"))
	}
	return errors.Join(errs...)
}

// Gather decodes every shard and reassembles the message. The rigs slice
// must contain every carrier device (shards are matched by the record's
// device ID, falling back to the shard's planned slot index for results
// produced before re-routing existed).
func Gather(rigs []*rig.Rig, striped *StripeResult, opts core.Options) ([]byte, error) {
	rep, err := GatherContext(context.Background(), rigs, striped, opts)
	if err != nil {
		return nil, err
	}
	if !rep.Complete {
		return nil, rep.Err()
	}
	return rep.Message, nil
}

// GatherContext decodes every shard, tolerating per-shard failure: dead
// or undecodable carriers are reported in the result, and when the
// stripe carries a parity shard, a single lost segment is reconstructed
// from the survivors — the fleet-layer erasure channel absorbing what
// the per-device ECC cannot. The error return covers only structural
// problems (nil result, unresolvable layout); per-shard trouble lives in
// the report.
func GatherContext(ctx context.Context, rigs []*rig.Rig, striped *StripeResult, opts core.Options) (*GatherReport, error) {
	return GatherWithOptions(ctx, rigs, striped, opts, GatherOptions{})
}

// GatherWithOptions is GatherContext with breaker enforcement: carriers
// whose breakers are open or quarantined are not even consulted (their
// shards go straight to parity reconstruction), and the report carries
// the quarantine list.
func GatherWithOptions(ctx context.Context, rigs []*rig.Rig, striped *StripeResult, opts core.Options, gopts GatherOptions) (*GatherReport, error) {
	if striped == nil {
		return nil, errors.New("fleet: nil stripe result")
	}
	findRig := func(s Shard) (*rig.Rig, error) {
		if s.Record != nil && s.Record.DeviceID != "" {
			for _, r := range rigs {
				if r.Device().DeviceID() == s.Record.DeviceID {
					return r, nil
				}
			}
		}
		if s.Index < 0 || s.Index >= len(rigs) {
			return nil, fmt.Errorf("fleet: shard names device %d of %d", s.Index, len(rigs))
		}
		return rigs[s.Index], nil
	}

	// Decode the data shards. Records carrying a digest are verified:
	// a shard that decodes to the *wrong* bytes is as lost as one that
	// does not decode at all, and flagging it here makes it eligible
	// for parity reconstruction instead of silently corrupting the
	// reassembled message.
	segments := map[int][]byte{}
	rep := &GatherReport{}
	for _, shard := range striped.Shards {
		r, err := findRig(shard)
		if err != nil {
			return nil, err
		}
		t0, p0 := r.FaultCounts()
		var part []byte
		id := r.Device().DeviceID()
		if err = gopts.Breakers.allow(id, r.ClockHours()); err == nil {
			part, err = core.DecodeContext(ctx, r, shard.Record, opts)
			if err == nil && shard.Record.HasDigest() {
				if verr := shard.Record.VerifyMessage(part, opts.Key); verr != nil {
					part, err = nil, verr
				}
			}
			gopts.Breakers.record(id, err, r.ClockHours())
		}
		t1, p1 := r.FaultCounts()
		st := ShardStatus{
			Index: shard.Index, DeviceID: shard.Record.DeviceID, Err: err,
			TransientFaults: t1 - t0, PermanentFaults: p1 - p0,
		}
		if err == nil {
			segments[shard.Index] = part
		}
		rep.Shards = append(rep.Shards, st)
	}
	rep.Quarantined = gopts.Breakers.Quarantined()
	for _, lost := range striped.Lost {
		rep.Shards = append(rep.Shards, ShardStatus{
			Index: lost, Err: fmt.Errorf("fleet: shard %d was never encoded: %w", lost, faults.ErrDeviceDead),
		})
	}

	// Planned layout: explicit sizes when recorded, else derived from the
	// shards themselves (pre-fault results).
	sizes := striped.SegmentSizes
	if sizes == nil {
		maxIdx := -1
		for _, s := range striped.Shards {
			if s.Index > maxIdx {
				maxIdx = s.Index
			}
		}
		sizes = make([]int, maxIdx+1)
		for _, s := range striped.Shards {
			sizes[s.Index] = s.Record.MessageBytes
		}
	}

	// One missing segment + a parity carrier → reconstruct.
	var missing []int
	for idx, n := range sizes {
		if n > 0 && segments[idx] == nil {
			missing = append(missing, idx)
		}
	}
	if len(missing) == 1 && striped.Parity != nil {
		if seg, err := reconstructFromParity(ctx, rigs, striped, opts, sizes, missing[0], segments, findRig); err == nil {
			segments[missing[0]] = seg
			for k := range rep.Shards {
				if rep.Shards[k].Index == missing[0] {
					rep.Shards[k].Recovered = true
				}
			}
			missing = nil
		} else {
			rep.Shards = append(rep.Shards, ShardStatus{Index: -1, Err: err})
		}
	}

	rep.Complete = len(missing) == 0
	if rep.Complete {
		out := make([]byte, 0, striped.MessageBytes)
		for idx, n := range sizes {
			if n == 0 {
				continue
			}
			out = append(out, segments[idx]...)
		}
		if len(out) != striped.MessageBytes {
			return nil, fmt.Errorf("fleet: reassembled %d bytes, want %d", len(out), striped.MessageBytes)
		}
		rep.Message = out
	}
	return rep, nil
}

// reconstructFromParity decodes the parity carrier and XORs it with the
// surviving segments to rebuild the one that was lost.
func reconstructFromParity(ctx context.Context, rigs []*rig.Rig, striped *StripeResult, opts core.Options,
	sizes []int, lostIdx int, segments map[int][]byte, findRig func(Shard) (*rig.Rig, error)) ([]byte, error) {
	pr, err := findRig(*striped.Parity)
	if err != nil {
		return nil, fmt.Errorf("fleet: parity carrier unavailable: %w", err)
	}
	parity, err := core.DecodeContext(ctx, pr, striped.Parity.Record, opts)
	if err != nil {
		return nil, fmt.Errorf("fleet: parity decode: %w", err)
	}
	if striped.Parity.Record.HasDigest() {
		if verr := striped.Parity.Record.VerifyMessage(parity, opts.Key); verr != nil {
			return nil, fmt.Errorf("fleet: parity decode: %w", verr)
		}
	}
	seg := append([]byte(nil), parity...)
	for idx, n := range sizes {
		if n == 0 || idx == lostIdx {
			continue
		}
		for k, b := range segments[idx] {
			seg[k] ^= b
		}
	}
	if sizes[lostIdx] > len(seg) {
		return nil, fmt.Errorf("fleet: parity shorter (%d) than lost segment (%d)", len(seg), sizes[lostIdx])
	}
	seg = seg[:sizes[lostIdx]]
	// When the lost slot's own record survived (its carrier decoded
	// wrong, not never-encoded), its digest cross-checks the rebuild.
	for _, s := range striped.Shards {
		if s.Index == lostIdx && s.Record != nil && s.Record.HasDigest() {
			if verr := s.Record.VerifyMessage(seg, opts.Key); verr != nil {
				return nil, fmt.Errorf("fleet: reconstructed shard %d: %w", lostIdx, verr)
			}
		}
	}
	return seg, nil
}
