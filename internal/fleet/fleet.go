// Package fleet implements multi-device operations around Invisible
// Bits. §5.3 observes that "devices can be encoded in parallel. Given the
// importance of capacity in a steganographic covert channel, one can
// encode many devices and select the one with the least error" — yielding
// the paper's 160× best-device capacity factor. This package provides:
//
//   - Characterize: encode a calibration payload on every device in
//     parallel and measure each one's single-copy channel error.
//   - SelectBest: the least-error device of a characterized fleet.
//   - Stripe/Gather: split one message across several devices (each
//     carrying an independently encrypted shard with its own per-device
//     nonce), for messages that exceed a single SRAM.
package fleet

import (
	"errors"
	"fmt"
	"sync"

	"invisiblebits/internal/core"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

// Characterization is one device's measured channel quality.
type Characterization struct {
	Index        int
	DeviceID     string
	ChannelError float64
}

// Characterize stress-tests every rig in parallel with a pseudo-random
// calibration payload at its device's Table 4 operating point and
// measures the single-copy error. The devices are left encoded with the
// calibration pattern; callers re-encode the real payload afterwards
// (stress composes, so characterization costs headroom, not correctness —
// but best practice is to characterize sacrificial devices of the same
// lot, which is how the paper frames device selection).
func Characterize(rigs []*rig.Rig, captures int) ([]Characterization, error) {
	if len(rigs) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	out := make([]Characterization, len(rigs))
	errs := make([]error, len(rigs))
	var wg sync.WaitGroup
	for i, r := range rigs {
		wg.Add(1)
		go func(i int, r *rig.Rig) {
			defer wg.Done()
			out[i], errs[i] = characterizeOne(i, r, captures)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func characterizeOne(i int, r *rig.Rig, captures int) (Characterization, error) {
	dev := r.Device()
	if !dev.SRAM.Powered() {
		if _, err := dev.PowerOn(25); err != nil {
			return Characterization{}, err
		}
	}
	payload := make([]byte, dev.SRAM.Bytes())
	rng.NewSource(rng.HashString("fleet/" + dev.DeviceID())).Bytes(payload)
	if err := dev.SRAM.Write(payload); err != nil {
		return Characterization{}, err
	}
	if err := dev.StressBypassed(dev.Model.Accelerated(), dev.Model.EncodingHours); err != nil {
		return Characterization{}, err
	}
	maj, err := dev.SRAM.CaptureMajority(captures, 25)
	if err != nil {
		return Characterization{}, err
	}
	inv := make([]byte, len(maj))
	for k, b := range maj {
		inv[k] = ^b
	}
	return Characterization{
		Index:        i,
		DeviceID:     dev.DeviceID(),
		ChannelError: stats.BitErrorRate(inv, payload),
	}, nil
}

// SelectBest returns the characterization with the lowest channel error.
func SelectBest(chars []Characterization) (Characterization, error) {
	if len(chars) == 0 {
		return Characterization{}, errors.New("fleet: empty characterization set")
	}
	best := chars[0]
	for _, c := range chars[1:] {
		if c.ChannelError < best.ChannelError {
			best = c
		}
	}
	return best, nil
}

// Shard is one device's portion of a striped message.
type Shard struct {
	Index  int
	Record *core.Record
}

// StripeResult describes a striped encoding.
type StripeResult struct {
	Shards       []Shard
	MessageBytes int
}

// Stripe splits message across the rigs' devices, encoding shard i on
// device i with the shared options. Each shard is encrypted independently
// under the device's own nonce (footnote 4's cross-device protection
// comes for free). Devices are encoded in parallel — the paper's
// observation that encoding time is dominated by the soak, which all
// devices serve simultaneously in one chamber.
func Stripe(rigs []*rig.Rig, message []byte, opts core.Options) (*StripeResult, error) {
	if len(rigs) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	if len(message) == 0 {
		return nil, core.ErrEmptyMessage
	}
	// Plan shard sizes against each device's capacity.
	sizes := make([]int, len(rigs))
	remaining := len(message)
	for i, r := range rigs {
		capBytes := core.MaxMessageBytes(r.Device().SRAM.Bytes(), opts.Codec)
		take := capBytes
		if take > remaining {
			take = remaining
		}
		sizes[i] = take
		remaining -= take
	}
	if remaining > 0 {
		return nil, fmt.Errorf("fleet: message exceeds fleet capacity by %d bytes", remaining)
	}

	res := &StripeResult{MessageBytes: len(message), Shards: make([]Shard, 0, len(rigs))}
	type job struct {
		idx   int
		start int
		n     int
	}
	var jobs []job
	off := 0
	for i, n := range sizes {
		if n > 0 {
			jobs = append(jobs, job{idx: i, start: off, n: n})
			off += n
		}
	}
	records := make([]*core.Record, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for j, jb := range jobs {
		wg.Add(1)
		go func(j int, jb job) {
			defer wg.Done()
			records[j], errs[j] = core.Encode(rigs[jb.idx], message[jb.start:jb.start+jb.n], opts)
		}(j, jb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for j, jb := range jobs {
		res.Shards = append(res.Shards, Shard{Index: jb.idx, Record: records[j]})
	}
	return res, nil
}

// Gather decodes every shard and reassembles the message. The rigs slice
// must be indexed consistently with the Stripe call (shard i names its
// device by Index).
func Gather(rigs []*rig.Rig, striped *StripeResult, opts core.Options) ([]byte, error) {
	if striped == nil {
		return nil, errors.New("fleet: nil stripe result")
	}
	out := make([]byte, 0, striped.MessageBytes)
	for _, shard := range striped.Shards {
		if shard.Index < 0 || shard.Index >= len(rigs) {
			return nil, fmt.Errorf("fleet: shard names device %d of %d", shard.Index, len(rigs))
		}
		part, err := core.Decode(rigs[shard.Index], shard.Record, opts)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", shard.Index, err)
		}
		out = append(out, part...)
	}
	if len(out) != striped.MessageBytes {
		return nil, fmt.Errorf("fleet: reassembled %d bytes, want %d", len(out), striped.MessageBytes)
	}
	return out, nil
}
