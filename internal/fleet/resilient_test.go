package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

// newRigWith builds one MSP432P401 rig with the given serial, SRAM limit
// and fault profile (zero profile → clean rig, still mounted so the
// injector plumbing is exercised).
func newRigWith(t *testing.T, serial string, sramBytes int, p faults.Profile) *rig.Rig {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(m, serial, device.WithSRAMLimit(sramBytes))
	if err != nil {
		t.Fatal(err)
	}
	return rig.New(d, rig.WithInjector(faults.New(p, d.Serial)))
}

func paperishOpts(t *testing.T) core.Options {
	t.Helper()
	rep, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	key := stegocrypt.KeyFromPassphrase("resilient-fleet")
	return core.Options{Codec: ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}, Key: &key}
}

// TestStripeSurvivesDeathAndFlakyLink is the headline failure-tolerance
// scenario: a 4-device stripe where one primary dies mid-soak (its shard
// re-routes to a standby spare) and another fights a flaky debugger link
// the whole way, and the full message still decodes.
func TestStripeSurvivesDeathAndFlakyLink(t *testing.T) {
	const sram = 4 << 10
	rigs := []*rig.Rig{
		newRigWith(t, "primary-0", sram, faults.Profile{}),
		newRigWith(t, "primary-1", sram, faults.Profile{FailAtHours: 2}),
		newRigWith(t, "primary-2", sram, faults.Profile{Seed: 11, LinkDropRate: 0.25}),
		newRigWith(t, "primary-3", sram, faults.Profile{}),
	}
	spare := newRigWith(t, "spare-0", sram, faults.Profile{})
	opts := paperishOpts(t)

	perDevice := core.MaxMessageBytes(sram, opts.Codec)
	msg := make([]byte, perDevice*3+50)
	rng.NewSource(99).Bytes(msg)

	striped, err := StripeWithOptions(context.Background(), rigs, msg, opts,
		StripeOptions{Spares: []*rig.Rig{spare}})
	if err != nil {
		t.Fatalf("stripe with spare: %v", err)
	}
	if len(striped.Lost) != 0 {
		t.Fatalf("lost shards %v despite spare", striped.Lost)
	}
	if rigs[1].Device().Alive() {
		t.Error("doomed primary still alive after its soak")
	}
	rerouted := false
	for _, s := range striped.Shards {
		if s.Index == 1 {
			if s.Record.DeviceID != spare.Device().DeviceID() {
				t.Fatalf("shard 1 carried by %q, want spare %q",
					s.Record.DeviceID, spare.Device().DeviceID())
			}
			rerouted = true
		}
	}
	if !rerouted {
		t.Fatal("shard 1 missing from stripe result")
	}

	got, err := Gather(append(rigs, spare), striped, opts)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("striped message did not survive the casualty")
	}
}

// TestStripeDeathWithoutSpareFails proves the spare is what saves the
// stripe above: the same casualty with no standby pool is fatal and the
// joined error carries the permanent classification.
func TestStripeDeathWithoutSpareFails(t *testing.T) {
	const sram = 4 << 10
	rigs := []*rig.Rig{
		newRigWith(t, "ns-0", sram, faults.Profile{}),
		newRigWith(t, "ns-1", sram, faults.Profile{FailAtHours: 2}),
	}
	opts := paperishOpts(t)
	msg := make([]byte, core.MaxMessageBytes(sram, opts.Codec)+10)
	rng.NewSource(7).Bytes(msg)

	_, err := Stripe(rigs, msg, opts)
	if err == nil {
		t.Fatal("stripe survived a dead primary with no spare")
	}
	if !faults.IsPermanent(err) {
		t.Fatalf("death not classified permanent through the join: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not name the lost shard: %v", err)
	}
}

// TestParityRecoversShardLostAfterEncode kills a carrier *after* the
// stripe is written — the archival scenario where a device dies in the
// drawer — and reconstructs its segment from the XOR parity carrier.
func TestParityRecoversShardLostAfterEncode(t *testing.T) {
	const sram = 4 << 10
	rigs := []*rig.Rig{
		newRigWith(t, "par-0", sram, faults.Profile{}),
		newRigWith(t, "par-1", sram, faults.Profile{}),
		newRigWith(t, "par-2", sram, faults.Profile{}),
	}
	parityRig := newRigWith(t, "par-xor", sram, faults.Profile{})
	opts := paperishOpts(t)

	perDevice := core.MaxMessageBytes(sram, opts.Codec)
	msg := make([]byte, perDevice*2+33)
	rng.NewSource(3).Bytes(msg)

	striped, err := StripeWithOptions(context.Background(), rigs, msg, opts,
		StripeOptions{ParityRig: parityRig})
	if err != nil {
		t.Fatal(err)
	}
	if striped.Parity == nil {
		t.Fatal("no parity shard recorded")
	}

	rigs[1].Device().Kill(fmt.Errorf("dropped on the floor: %w", faults.ErrDeviceDead))

	all := append(append([]*rig.Rig(nil), rigs...), parityRig)
	rep, err := GatherContext(context.Background(), all, striped, opts)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if !rep.Complete {
		t.Fatalf("gather incomplete: %v", rep.Err())
	}
	if !bytes.Equal(rep.Message, msg) {
		t.Fatal("parity reconstruction produced the wrong message")
	}
	recovered := false
	for _, s := range rep.Shards {
		if s.Index == 1 {
			if s.Err == nil {
				t.Error("dead carrier reported no error")
			}
			recovered = s.Recovered
		}
	}
	if !recovered {
		t.Error("reconstructed shard not flagged Recovered")
	}
}

// TestParityCoversShardNeverEncoded exercises the encode-time loss path:
// a primary dies with no spare, but a parity carrier makes the stripe
// shippable anyway, and Gather rebuilds the segment that was never
// written to any SRAM.
func TestParityCoversShardNeverEncoded(t *testing.T) {
	const sram = 4 << 10
	rigs := []*rig.Rig{
		newRigWith(t, "ne-0", sram, faults.Profile{}),
		newRigWith(t, "ne-1", sram, faults.Profile{FailAtHours: 2}),
		newRigWith(t, "ne-2", sram, faults.Profile{}),
	}
	parityRig := newRigWith(t, "ne-xor", sram, faults.Profile{})
	opts := paperishOpts(t)

	perDevice := core.MaxMessageBytes(sram, opts.Codec)
	msg := make([]byte, perDevice*2+17)
	rng.NewSource(5).Bytes(msg)

	striped, err := StripeWithOptions(context.Background(), rigs, msg, opts,
		StripeOptions{ParityRig: parityRig})
	if err != nil {
		t.Fatalf("parity-protected stripe rejected a single loss: %v", err)
	}
	if len(striped.Lost) != 1 || striped.Lost[0] != 1 {
		t.Fatalf("Lost = %v, want [1]", striped.Lost)
	}

	all := append(append([]*rig.Rig(nil), rigs...), parityRig)
	rep, err := GatherContext(context.Background(), all, striped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("gather incomplete: %v", rep.Err())
	}
	if !bytes.Equal(rep.Message, msg) {
		t.Fatal("never-encoded segment reconstructed incorrectly")
	}
}

// TestGatherDegradesWithoutParity loses two shards of an unprotected
// stripe and checks Gather reports the damage instead of fabricating a
// message.
func TestGatherDegradesWithoutParity(t *testing.T) {
	const sram = 4 << 10
	rigs := newFleet(t, 3, sram)
	opts := paperishOpts(t)
	perDevice := core.MaxMessageBytes(sram, opts.Codec)
	msg := make([]byte, perDevice*2+9)
	rng.NewSource(13).Bytes(msg)

	striped, err := Stripe(rigs, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	rigs[0].Device().Kill(faults.ErrDeviceDead)

	rep, err := GatherContext(context.Background(), rigs, striped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("gather claimed completeness with a dead carrier and no parity")
	}
	if rep.Err() == nil {
		t.Fatal("incomplete gather reported no error")
	}
	if !errors.Is(rep.Err(), faults.ErrDeviceDead) {
		t.Errorf("report error lost the death classification: %v", rep.Err())
	}
	// Legacy Gather must refuse, not return a partial message.
	if _, err := Gather(rigs, striped, opts); err == nil {
		t.Fatal("legacy Gather returned a partial message")
	}
}

// TestCharacterizeReportsCasualties runs a 10-rig concurrent
// characterization with one device doomed to die mid-soak and one on a
// flaky link; the survivors come back usable and the joined error names
// the casualty.
func TestCharacterizeReportsCasualties(t *testing.T) {
	const n = 10
	rigs := make([]*rig.Rig, n)
	for i := range rigs {
		p := faults.Profile{}
		switch i {
		case 3:
			p = faults.Profile{FailAtHours: 1}
		case 6:
			p = faults.Profile{Seed: 4, LinkDropRate: 0.2}
		}
		rigs[i] = newRigWith(t, fmt.Sprintf("char-%d", i), 4<<10, p)
	}

	chars, err := Characterize(rigs, 5)
	if err == nil {
		t.Fatal("doomed device produced no error")
	}
	if !errors.Is(err, faults.ErrDeviceDead) {
		t.Fatalf("joined error lost the death classification: %v", err)
	}
	if !strings.Contains(err.Error(), "char-3") {
		t.Errorf("error does not name the dead device: %v", err)
	}
	if len(chars) != n-1 {
		t.Fatalf("survivors = %d, want %d", len(chars), n-1)
	}
	for _, c := range chars {
		if c.Index == 3 {
			t.Fatal("dead device listed among survivors")
		}
		if c.ChannelError < 0.03 || c.ChannelError > 0.11 {
			t.Errorf("survivor %d channel error %v implausible", c.Index, c.ChannelError)
		}
	}
	best, err := SelectBest(chars)
	if err != nil {
		t.Fatalf("SelectBest over survivors: %v", err)
	}
	if best.Index == 3 {
		t.Fatal("SelectBest chose the dead device")
	}
}
