package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"

	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
)

// TestBreakerStateMachine walks one breaker through every transition on
// the simulated clock: closed → open (threshold), open → half-open
// (backoff elapsed, single probe), probe failure → open with doubled
// (and capped) backoff, probe success → closed with counters reset, and
// repeated trips → quarantine.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{
		FailureThreshold:     2,
		BaseBackoffHours:     4,
		MaxBackoffHours:      6,
		QuarantineAfterTrips: 3,
	}
	b := newBreaker(cfg)

	type step struct {
		name      string
		allowAt   float64 // simulated clock for Allow; -1 skips Allow
		wantAllow error
		record    error // outcome fed to Record after a successful Allow
		wantState BreakerState
	}
	steps := []step{
		{"first failure stays closed", 0, nil, faults.ErrLinkDropped, BreakerClosed},
		{"second failure trips open", 0.5, nil, faults.ErrLinkDropped, BreakerOpen},
		{"rejected during backoff", 2, ErrBreakerOpen, nil, BreakerOpen},
		{"probe failure reopens with doubled backoff", 5, nil, faults.ErrLinkDropped, BreakerOpen},
		// Backoff is now min(4*2, 6) = 6h from the trip at clock 5.
		{"rejected inside capped backoff", 10, ErrBreakerOpen, nil, BreakerOpen},
		{"probe success closes", 11.5, nil, nil, BreakerClosed},
		{"post-recovery failure stays closed", 12, nil, faults.ErrLinkDropped, BreakerClosed},
	}
	for _, s := range steps {
		err := b.Allow(s.allowAt)
		if !errors.Is(err, s.wantAllow) {
			t.Fatalf("%s: Allow = %v, want %v", s.name, err, s.wantAllow)
		}
		if err == nil {
			b.Record(s.record, s.allowAt)
		}
		if got := b.State(); got != s.wantState {
			t.Fatalf("%s: state %s, want %s", s.name, got, s.wantState)
		}
	}

	// The success above reset the trip counter: keep failing (waiting
	// out each backoff) until the trip ladder lands in quarantine.
	clock := 20.0
	for i := 0; b.State() != BreakerQuarantined; i++ {
		if i > 20 {
			t.Fatalf("no quarantine after %d failures, state %s", i, b.State())
		}
		if err := b.Allow(clock); err == nil {
			b.Record(faults.ErrLinkDropped, clock)
		}
		clock += cfg.MaxBackoffHours + 1 // let any backoff elapse
	}
	if err := b.Allow(clock); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined Allow = %v, want ErrQuarantined", err)
	}
}

// TestBreakerPermanentFaultQuarantinesImmediately pins the shortcut: a
// permanent fault skips the trip ladder entirely.
func TestBreakerPermanentFaultQuarantinesImmediately(t *testing.T) {
	b := newBreaker(BreakerConfig{})
	if err := b.Allow(0); err != nil {
		t.Fatal(err)
	}
	b.Record(faults.ErrDeviceDead, 0)
	if got := b.State(); got != BreakerQuarantined {
		t.Fatalf("state %s after permanent fault, want quarantined", got)
	}
}

// TestBreakerIgnoresContextCancellation: the caller giving up is not
// evidence against the device.
func TestBreakerIgnoresContextCancellation(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1})
	for i := 0; i < 5; i++ {
		if err := b.Allow(float64(i)); err != nil {
			t.Fatal(err)
		}
		b.Record(context.Canceled, float64(i))
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %s after cancellations, want closed", got)
	}
}

// TestBreakerHalfOpenSingleProbe: while a probe is in flight, concurrent
// callers are rejected instead of stampeding the recovering device.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, BaseBackoffHours: 1})
	if err := b.Allow(0); err != nil {
		t.Fatal(err)
	}
	b.Record(faults.ErrLinkDropped, 0) // trips open
	if err := b.Allow(2); err != nil { // backoff elapsed → half-open probe
		t.Fatalf("probe rejected: %v", err)
	}
	if err := b.Allow(2); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe = %v, want ErrBreakerOpen", err)
	}
	b.Record(nil, 2)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %s after probe success, want closed", got)
	}
}

// TestBreakerSetQuarantineAndStats drives two devices through a set and
// checks the aggregate views.
func TestBreakerSetQuarantineAndStats(t *testing.T) {
	set := NewBreakerSet(BreakerConfig{})
	set.For("alive").Record(nil, 0)
	b := set.For("doomed")
	if err := b.Allow(0); err != nil {
		t.Fatal(err)
	}
	b.Record(faults.ErrDeviceDead, 0)
	if err := set.allow("doomed", 1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("set allow on quarantined device = %v", err)
	}

	if q := set.Quarantined(); len(q) != 1 || q[0] != "doomed" {
		t.Fatalf("Quarantined = %v, want [doomed]", q)
	}
	stats := set.Stats()
	if len(stats) != 2 || stats[0].DeviceID != "alive" || stats[1].DeviceID != "doomed" {
		t.Fatalf("Stats = %+v", stats)
	}
	if stats[1].State != BreakerQuarantined || stats[1].PermanentFaults != 1 || stats[1].SkippedOps != 1 {
		t.Fatalf("doomed stats = %+v", stats[1])
	}

	// A nil set is a no-op gate everywhere.
	var nilSet *BreakerSet
	if err := nilSet.allow("x", 0); err != nil {
		t.Fatal("nil set rejected an operation")
	}
	nilSet.record("x", faults.ErrDeviceDead, 0)
	if nilSet.Quarantined() != nil || nilSet.Stats() != nil {
		t.Fatal("nil set reported state")
	}
}

// TestBreakerQuarantineSavesRetries is the acceptance scenario: a
// carrier with a hopeless link burns a full in-rig retry ladder on every
// sweep; with breakers mounted the fleet stops consulting it after the
// threshold, and the fault counters prove the saved attempts.
func TestBreakerQuarantineSavesRetries(t *testing.T) {
	const sweeps = 6
	var flakyID string
	run := func(breakers *BreakerSet) (flakyFaults int, quarantined []string) {
		flaky := newRigWith(t, "hopeless", 4<<10, faults.Profile{Seed: 9, LinkDropRate: 1})
		flakyID = flaky.Device().DeviceID()
		healthy := newRigWith(t, "steady", 4<<10, faults.Profile{})
		rigs := []*rig.Rig{healthy, flaky}
		var lastQuarantine []string
		for i := 0; i < sweeps; i++ {
			rep, err := HealthSweep(context.Background(), rigs, HealthSweepOptions{Breakers: breakers})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Carriers[1].Err == nil {
				t.Fatal("hopeless link probed successfully")
			}
			if rep.Carriers[0].Err != nil {
				t.Fatalf("healthy carrier failed: %v", rep.Carriers[0].Err)
			}
			lastQuarantine = rep.Quarantined
		}
		tf, _ := flaky.FaultCounts()
		return tf, lastQuarantine
	}

	without, q := run(nil)
	if q != nil {
		t.Fatalf("breaker-free sweep reported quarantine %v", q)
	}
	set := NewBreakerSet(BreakerConfig{FailureThreshold: 2, QuarantineAfterTrips: 1})
	with, q := run(set)
	if len(q) != 1 || q[0] != flakyID {
		t.Fatalf("Quarantined = %v, want [%s]", q, flakyID)
	}
	if with >= without {
		t.Fatalf("breakers saved nothing: %d faults with, %d without", with, without)
	}
	var skipped int
	for _, s := range set.Stats() {
		if s.DeviceID == flakyID {
			skipped = s.SkippedOps
		}
	}
	if skipped < sweeps-2 {
		t.Fatalf("quarantine skipped only %d ops, want ≥ %d", skipped, sweeps-2)
	}
}

// TestBreakerHalfOpenSingleProbeConcurrent pins the half-open
// admission contract under real concurrency: many goroutines hammering
// an expired-backoff breaker at once must see exactly one Allow succeed
// — the single probe — and everyone else rejected with ErrBreakerOpen.
// Run under -race, this also proves the open→half-open transition and
// the probing flag are properly serialized.
func TestBreakerHalfOpenSingleProbeConcurrent(t *testing.T) {
	for round := 0; round < 25; round++ {
		cfg := BreakerConfig{FailureThreshold: 1, BaseBackoffHours: 1}
		b := newBreaker(cfg)
		b.Allow(0)
		b.Record(faults.ErrLinkDropped, 0)
		if got := b.State(); got != BreakerOpen {
			t.Fatalf("round %d: state %s after trip, want open", round, got)
		}

		const goroutines = 8
		results := make([]error, goroutines)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				// Clock 2h: past the 1h backoff, so the breaker is ripe
				// for its half-open probe — but only one of us gets it.
				results[g] = b.Allow(2)
			}(g)
		}
		close(start)
		wg.Wait()

		admitted := 0
		for g, err := range results {
			switch {
			case err == nil:
				admitted++
			case !errors.Is(err, ErrBreakerOpen):
				t.Fatalf("round %d: goroutine %d rejected with %v, want ErrBreakerOpen", round, g, err)
			}
		}
		if admitted != 1 {
			t.Fatalf("round %d: %d probes admitted through a half-open breaker, want exactly 1", round, admitted)
		}
		if got := b.State(); got != BreakerHalfOpen {
			t.Fatalf("round %d: state %s, want half-open with probe in flight", round, got)
		}

		// The probe's outcome releases the slot: a success closes the
		// breaker and traffic flows again for everyone.
		b.Record(nil, 2)
		if err := b.Allow(2.5); err != nil {
			t.Fatalf("round %d: Allow after probe success: %v", round, err)
		}
	}
}
