package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

func newFleet(t *testing.T, n int, sramBytes int) []*rig.Rig {
	t.Helper()
	m, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	rigs := make([]*rig.Rig, n)
	for i := range rigs {
		d, err := device.New(m, fmt.Sprintf("fleet-%d", i), device.WithSRAMLimit(sramBytes))
		if err != nil {
			t.Fatal(err)
		}
		rigs[i] = rig.New(d)
	}
	return rigs
}

func TestCharacterizeAndSelectBest(t *testing.T) {
	rigs := newFleet(t, 5, 8<<10)
	chars, err := Characterize(rigs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 5 {
		t.Fatalf("characterized %d devices", len(chars))
	}
	spread := false
	for i, c := range chars {
		if c.Index != i || c.DeviceID == "" {
			t.Errorf("characterization %d malformed: %+v", i, c)
		}
		if c.ChannelError < 0.03 || c.ChannelError > 0.11 {
			t.Errorf("device %d channel error %v implausible", i, c.ChannelError)
		}
		if c.ChannelError != chars[0].ChannelError {
			spread = true
		}
	}
	if !spread {
		t.Error("all devices identical — process variation missing")
	}
	best, err := SelectBest(chars)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chars {
		if c.ChannelError < best.ChannelError {
			t.Fatalf("SelectBest missed device %d", c.Index)
		}
	}
}

func TestSelectBestEmpty(t *testing.T) {
	if _, err := SelectBest(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Characterize(nil, 5); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestStripeGatherRoundTrip(t *testing.T) {
	rigs := newFleet(t, 3, 8<<10)
	key := stegocrypt.KeyFromPassphrase("stripe")
	rep, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Codec: ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}, Key: &key}

	// A message too large for one 8 KB device under this codec.
	perDevice := core.MaxMessageBytes(8<<10, opts.Codec)
	msg := make([]byte, perDevice*2+100)
	rng.NewSource(1).Bytes(msg)

	striped, err := Stripe(rigs, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(striped.Shards) != 3 {
		t.Fatalf("shards = %d", len(striped.Shards))
	}
	got, err := Gather(rigs, striped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("striped round trip failed")
	}
}

func TestStripeShardsUseDistinctKeystreams(t *testing.T) {
	// Two shards carrying identical plaintext must produce different
	// payloads (per-device nonces, footnote 4). Encode the same content
	// on two devices and compare their SRAM states.
	rigs := newFleet(t, 2, 4<<10)
	key := stegocrypt.KeyFromPassphrase("nonce-check")
	opts := core.Options{Key: &key}
	per := 1 << 10
	msg := append(bytes.Repeat([]byte{0xAA}, per), bytes.Repeat([]byte{0xAA}, per)...)

	striped, err := Stripe(rigs, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(striped.Shards) != 2 {
		t.Skip("message fit on one device; adjust sizes")
	}
	s0, err := rigs[0].SampleMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := rigs[1].SampleMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < per; i++ {
		if s0[i] == s1[i] {
			same++
		}
	}
	if frac := float64(same) / float64(per); frac > 0.05 {
		t.Errorf("shards share %v of payload bytes — keystream reuse", frac)
	}
}

func TestStripeCapacityExceeded(t *testing.T) {
	rigs := newFleet(t, 2, 4<<10)
	msg := make([]byte, 3*(4<<10))
	if _, err := Stripe(rigs, msg, core.Options{}); err == nil {
		t.Fatal("over-capacity stripe accepted")
	}
}

func TestStripeValidation(t *testing.T) {
	if _, err := Stripe(nil, []byte("x"), core.Options{}); err == nil {
		t.Error("empty fleet accepted")
	}
	rigs := newFleet(t, 1, 4<<10)
	if _, err := Stripe(rigs, nil, core.Options{}); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := Gather(rigs, nil, core.Options{}); err == nil {
		t.Error("nil stripe result accepted")
	}
}

func TestGatherShardIndexOutOfRange(t *testing.T) {
	rigs := newFleet(t, 1, 4<<10)
	bad := &StripeResult{MessageBytes: 1, Shards: []Shard{{Index: 5, Record: &core.Record{}}}}
	if _, err := Gather(rigs, bad, core.Options{}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func TestStripeSingleDeviceDegeneratesToEncode(t *testing.T) {
	rigs := newFleet(t, 1, 8<<10)
	rep, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Codec: ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep}}
	msg := []byte("fits easily")
	striped, err := Stripe(rigs, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(striped.Shards) != 1 {
		t.Fatalf("shards = %d", len(striped.Shards))
	}
	got, err := Gather(rigs, striped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("single-device stripe failed")
	}
}
