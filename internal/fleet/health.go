package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"invisiblebits/internal/core"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
)

// DefaultMarginThreshold flags a carrier for maintenance when its array
// mean margin drops below this value. A fresh imprint probes well above
// 0.9; by the time the mean margin nears 0.6 a meaningful fraction of
// cells have drifted into coin-flip territory and fixed-effort decode
// starts failing.
const DefaultMarginThreshold = 0.6

// CarrierHealth is one carrier's outcome in a health sweep.
type CarrierHealth struct {
	Index    int
	DeviceID string
	// Probe is the margin estimate; nil when probing failed (Err set).
	Probe *rig.HealthReport
	// Err carries the probe or refresh failure for this carrier.
	Err error
	// Flagged is true when the probed margin fell below the threshold.
	Flagged bool
	// Refresh is the maintenance outcome when a refresh was scheduled
	// and ran (nil otherwise).
	Refresh *core.RefreshReport
}

// HealthSweepReport aggregates a sweep.
type HealthSweepReport struct {
	Carriers  []CarrierHealth
	Flagged   []int // indices of carriers below the margin threshold
	Refreshed []int // indices whose refresh completed successfully
	// Quarantined lists device IDs the mounted breaker set has written
	// off (empty without HealthSweepOptions.Breakers).
	Quarantined []string
}

// Err joins the per-carrier failures (nil when every carrier probed —
// and, if scheduled, refreshed — cleanly).
func (h *HealthSweepReport) Err() error {
	var errs []error
	for _, c := range h.Carriers {
		if c.Err != nil {
			errs = append(errs, fmt.Errorf("fleet: carrier %d (%s): %w", c.Index, c.DeviceID, c.Err))
		}
	}
	return errors.Join(errs...)
}

// HealthSweepOptions configures a sweep.
type HealthSweepOptions struct {
	// Captures is the probe burst per carrier; 0 means
	// rig.DefaultHealthCaptures.
	Captures int
	// MarginThreshold flags carriers probing below it; 0 means
	// DefaultMarginThreshold.
	MarginThreshold float64
	// Refresh schedules a core.Refresh for every flagged carrier that
	// has a record in Records.
	Refresh bool
	// Records maps carriers to their encode records (matched by device
	// ID, falling back to slice position). Only needed when Refresh is
	// set — probing is plaintext-free.
	Records []*core.Record
	// Adaptive configures the refresh's decode ladder and retry policy.
	Adaptive core.AdaptiveOptions
	// StressHours is the refresh re-soak; ≤ 0 uses the model default.
	StressHours float64
	// Breakers, when non-nil, gates every probe and refresh through the
	// carrier's circuit breaker and surfaces the quarantine list in the
	// report — a sweep then doubles as the fleet's triage pass.
	Breakers *BreakerSet
}

func (o HealthSweepOptions) threshold() float64 {
	if o.MarginThreshold <= 0 {
		return DefaultMarginThreshold
	}
	return o.MarginThreshold
}

// recordFor matches a carrier to its encode record by device ID, then
// by slice position.
func (o HealthSweepOptions) recordFor(i int, deviceID string) *core.Record {
	for _, rec := range o.Records {
		if rec != nil && rec.DeviceID == deviceID {
			return rec
		}
	}
	if i < len(o.Records) {
		return o.Records[i]
	}
	return nil
}

// HealthSweep probes every carrier's retention margin concurrently,
// flags the ones below the threshold, and — when opts.Refresh is set —
// refreshes each flagged carrier whose record is known. Probes need no
// plaintext or key, so a sweep can run against carriers the operator
// cannot read. The sweep is fault-tolerant like the rest of the fleet
// layer: a dead or flaky carrier is reported in its CarrierHealth entry
// and never sinks the sweep; the error return covers only structural
// misuse (no carriers).
func HealthSweep(ctx context.Context, rigs []*rig.Rig, opts HealthSweepOptions) (*HealthSweepReport, error) {
	if len(rigs) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	rep := &HealthSweepReport{Carriers: make([]CarrierHealth, len(rigs))}
	threshold := opts.threshold()

	var wg sync.WaitGroup
	for i, r := range rigs {
		wg.Add(1)
		go func(i int, r *rig.Rig) {
			defer wg.Done()
			c := &rep.Carriers[i]
			c.Index = i
			c.DeviceID = r.Device().DeviceID()
			if err := opts.Breakers.allow(c.DeviceID, r.ClockHours()); err != nil {
				c.Err = err
				return
			}
			var probe *rig.HealthReport
			err := faults.Retry(ctx, r, core.DefaultMaxRetries, core.DefaultRetryBackoffHours, func() error {
				var perr error
				probe, perr = r.ProbeHealthContext(ctx, opts.Captures, 0)
				return perr
			})
			opts.Breakers.record(c.DeviceID, err, r.ClockHours())
			if err != nil {
				c.Err = err
				return
			}
			c.Probe = probe
			c.Flagged = probe.MeanMargin < threshold
		}(i, r)
	}
	wg.Wait()

	for i := range rep.Carriers {
		if rep.Carriers[i].Flagged {
			rep.Flagged = append(rep.Flagged, i)
		}
	}
	if !opts.Refresh || len(rep.Flagged) == 0 {
		rep.Quarantined = opts.Breakers.Quarantined()
		return rep, nil
	}

	// Refresh flagged carriers concurrently — each soak runs on its own
	// rig, all sharing the thermal chamber like a striped encode.
	for _, i := range rep.Flagged {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &rep.Carriers[i]
			rec := opts.recordFor(i, c.DeviceID)
			if rec == nil {
				c.Err = fmt.Errorf("fleet: carrier flagged but no record to refresh from")
				return
			}
			if err := opts.Breakers.allow(c.DeviceID, rigs[i].ClockHours()); err != nil {
				c.Err = err
				return
			}
			rr, err := core.Refresh(ctx, rigs[i], rec, opts.Adaptive, opts.StressHours)
			opts.Breakers.record(c.DeviceID, err, rigs[i].ClockHours())
			c.Refresh = rr
			if err != nil {
				c.Err = err
			}
		}(i)
	}
	wg.Wait()

	for _, i := range rep.Flagged {
		c := rep.Carriers[i]
		if c.Err == nil && c.Refresh != nil {
			rep.Refreshed = append(rep.Refreshed, i)
		}
	}
	rep.Quarantined = opts.Breakers.Quarantined()
	return rep, nil
}
