package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"invisiblebits/internal/core"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
)

// DefaultMarginThreshold flags a carrier for maintenance when its array
// mean margin drops below this value and no baseline is known. A fresh
// imprint probes well above 0.9; by the time the mean margin nears 0.6
// a meaningful fraction of cells have drifted into coin-flip territory
// and fixed-effort decode starts failing. The catch — learned the hard
// way in the retention study — is that the mean margin is nearly
// decay-insensitive on this channel: a cell that drifts to the wrong
// value still votes for it unanimously, so a fleet can rot well past
// decodability while its mean margin sits comfortably above 0.6. The
// fixed default therefore only catches catastrophic loss; calibrated
// sweeps (HealthSweepOptions.BaselineMargin) compare against the
// campaign's own fresh-capture baseline instead.
const DefaultMarginThreshold = 0.6

// DefaultBaselineDropFrac is the tolerated fractional margin drop below
// a calibrated baseline before a carrier is flagged. Because the mean
// margin barely moves under decay (half a percent separates fresh from
// fully rotted on a weak-cell-heavy fleet), the guard band must be far
// tighter than intuition suggests — and per-carrier: the carrier-to-
// carrier spread in fresh margins is as large as the decay signal
// itself, so a fleet-mean baseline cannot separate a healthy low-margin
// carrier from a decayed high-margin one. The margin estimator is
// repeatable to a few hundredths of a percent at a 45-capture burst, so
// half a percent below the carrier's OWN fresh baseline is a decisive
// decay signal, not probe noise.
const DefaultBaselineDropFrac = 0.005

// CarrierHealth is one carrier's outcome in a health sweep.
type CarrierHealth struct {
	Index    int
	DeviceID string
	// Probe is the margin estimate; nil when probing failed (Err set).
	Probe *rig.HealthReport
	// Err carries the probe or refresh failure for this carrier.
	Err error
	// Flagged is true when the probed margin fell below the threshold.
	Flagged bool
	// Refresh is the maintenance outcome when a refresh was scheduled
	// and ran (nil otherwise).
	Refresh *core.RefreshReport
}

// HealthSweepReport aggregates a sweep.
type HealthSweepReport struct {
	Carriers  []CarrierHealth
	Flagged   []int // indices of carriers below the margin threshold
	Refreshed []int // indices whose refresh completed successfully
	// Quarantined lists device IDs the mounted breaker set has written
	// off (empty without HealthSweepOptions.Breakers).
	Quarantined []string
}

// Err joins the per-carrier failures (nil when every carrier probed —
// and, if scheduled, refreshed — cleanly).
func (h *HealthSweepReport) Err() error {
	var errs []error
	for _, c := range h.Carriers {
		if c.Err != nil {
			errs = append(errs, fmt.Errorf("fleet: carrier %d (%s): %w", c.Index, c.DeviceID, c.Err))
		}
	}
	return errors.Join(errs...)
}

// HealthSweepOptions configures a sweep.
type HealthSweepOptions struct {
	// Captures is the probe burst per carrier; 0 means
	// rig.DefaultHealthCaptures.
	Captures int
	// MarginThreshold flags carriers probing below it. It is the
	// explicit override and always wins when > 0; when zero the sweep
	// calibrates from BaselineMargin, falling back to
	// DefaultMarginThreshold only when no baseline is known either.
	MarginThreshold float64
	// BaselineMargins are per-carrier fresh-capture margins, measured
	// right after encoding (MeasureBaselineMargins) before any shelf
	// decay, index-aligned with the sweep's rigs. When set (and
	// MarginThreshold is not), each carrier is flagged once its margin
	// drops more than BaselineDropFrac below its OWN baseline — the
	// calibrated threshold that catches gradual decay the 0.6 default
	// sails past.
	BaselineMargins []float64
	// BaselineMargin is the fleet-wide scalar fallback for carriers
	// without an entry in BaselineMargins (coarser: fresh margins spread
	// carrier-to-carrier about as far as decay moves them).
	BaselineMargin float64
	// BaselineDropFrac overrides the tolerated fractional drop below
	// BaselineMargin; 0 means DefaultBaselineDropFrac.
	BaselineDropFrac float64
	// Refresh schedules a core.Refresh for every flagged carrier that
	// has a record in Records.
	Refresh bool
	// Records maps carriers to their encode records (matched by device
	// ID, falling back to slice position). Only needed when Refresh is
	// set — probing is plaintext-free.
	Records []*core.Record
	// Adaptive configures the refresh's decode ladder and retry policy.
	Adaptive core.AdaptiveOptions
	// StressHours is the refresh re-soak; ≤ 0 uses the model default.
	StressHours float64
	// Breakers, when non-nil, gates every probe and refresh through the
	// carrier's circuit breaker and surfaces the quarantine list in the
	// report — a sweep then doubles as the fleet's triage pass.
	Breakers *BreakerSet
}

// thresholdFor resolves carrier i's flagging threshold: the explicit
// override wins, then the carrier's own calibrated baseline, then the
// fleet-wide baseline, then the catastrophic-loss default.
func (o HealthSweepOptions) thresholdFor(i int) float64 {
	if o.MarginThreshold > 0 {
		return o.MarginThreshold
	}
	frac := o.BaselineDropFrac
	if frac <= 0 {
		frac = DefaultBaselineDropFrac
	}
	if i < len(o.BaselineMargins) && o.BaselineMargins[i] > 0 {
		return o.BaselineMargins[i] * (1 - frac)
	}
	if o.BaselineMargin > 0 {
		return o.BaselineMargin * (1 - frac)
	}
	return DefaultMarginThreshold
}

// MeasureBaselineMargins probes every carrier and returns its fresh
// margin, index-aligned with rigs — run it right after an encode, while
// the imprint is fresh, and feed the result to later sweeps as
// BaselineMargins. Probing needs no plaintext or key. Any carrier
// failure fails the measurement: a partial baseline would silently
// leave some carriers on the loose catastrophic-loss default.
func MeasureBaselineMargins(ctx context.Context, rigs []*rig.Rig, captures int) ([]float64, error) {
	rep, err := HealthSweep(ctx, rigs, HealthSweepOptions{Captures: captures})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(rep.Carriers))
	for i, c := range rep.Carriers {
		out[i] = c.Probe.MeanMargin
	}
	return out, nil
}

// recordFor matches a carrier to its encode record by device ID, then
// by slice position.
func (o HealthSweepOptions) recordFor(i int, deviceID string) *core.Record {
	for _, rec := range o.Records {
		if rec != nil && rec.DeviceID == deviceID {
			return rec
		}
	}
	if i < len(o.Records) {
		return o.Records[i]
	}
	return nil
}

// HealthSweep probes every carrier's retention margin concurrently,
// flags the ones below the threshold, and — when opts.Refresh is set —
// refreshes each flagged carrier whose record is known. Probes need no
// plaintext or key, so a sweep can run against carriers the operator
// cannot read. The sweep is fault-tolerant like the rest of the fleet
// layer: a dead or flaky carrier is reported in its CarrierHealth entry
// and never sinks the sweep; the error return covers only structural
// misuse (no carriers).
func HealthSweep(ctx context.Context, rigs []*rig.Rig, opts HealthSweepOptions) (*HealthSweepReport, error) {
	if len(rigs) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	rep := &HealthSweepReport{Carriers: make([]CarrierHealth, len(rigs))}

	var wg sync.WaitGroup
	for i, r := range rigs {
		wg.Add(1)
		go func(i int, r *rig.Rig) {
			defer wg.Done()
			c := &rep.Carriers[i]
			c.Index = i
			c.DeviceID = r.Device().DeviceID()
			if err := opts.Breakers.allow(c.DeviceID, r.ClockHours()); err != nil {
				c.Err = err
				return
			}
			var probe *rig.HealthReport
			err := faults.Retry(ctx, r, core.DefaultMaxRetries, core.DefaultRetryBackoffHours, func() error {
				var perr error
				probe, perr = r.ProbeHealthContext(ctx, opts.Captures, 0)
				return perr
			})
			opts.Breakers.record(c.DeviceID, err, r.ClockHours())
			if err != nil {
				c.Err = err
				return
			}
			c.Probe = probe
			c.Flagged = probe.MeanMargin < opts.thresholdFor(i)
		}(i, r)
	}
	wg.Wait()

	for i := range rep.Carriers {
		if rep.Carriers[i].Flagged {
			rep.Flagged = append(rep.Flagged, i)
		}
	}
	if !opts.Refresh || len(rep.Flagged) == 0 {
		rep.Quarantined = opts.Breakers.Quarantined()
		return rep, nil
	}

	// Refresh flagged carriers concurrently — each soak runs on its own
	// rig, all sharing the thermal chamber like a striped encode.
	for _, i := range rep.Flagged {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &rep.Carriers[i]
			rec := opts.recordFor(i, c.DeviceID)
			if rec == nil {
				c.Err = fmt.Errorf("fleet: carrier flagged but no record to refresh from")
				return
			}
			if err := opts.Breakers.allow(c.DeviceID, rigs[i].ClockHours()); err != nil {
				c.Err = err
				return
			}
			rr, err := core.Refresh(ctx, rigs[i], rec, opts.Adaptive, opts.StressHours)
			opts.Breakers.record(c.DeviceID, err, rigs[i].ClockHours())
			c.Refresh = rr
			if err != nil {
				c.Err = err
			}
		}(i)
	}
	wg.Wait()

	for _, i := range rep.Flagged {
		c := rep.Carriers[i]
		if c.Err == nil && c.Refresh != nil {
			rep.Refreshed = append(rep.Refreshed, i)
		}
	}
	rep.Quarantined = opts.Breakers.Quarantined()
	return rep, nil
}
