package fleet

import (
	"invisiblebits/internal/parallel"
	"invisiblebits/internal/rig"
)

// UseCapturePool points every rig's SRAM capture engine at one shared
// worker pool. By default arrays already share the process-wide pool
// (parallel.Shared), so a fleet sweep is machine-bounded out of the box;
// this helper exists for campaigns that want an explicit budget — e.g.
// leaving cores free for the encoding soaks while captures run, or
// serializing captures entirely (workers = 1) for diagnosis. A nil pool
// restores the shared default.
//
// Capture results are bit-identical under any pool: per-cell noise is
// counter-derived, so the pool only sets throughput.
func UseCapturePool(rigs []*rig.Rig, p *parallel.Pool) {
	for _, r := range rigs {
		r.Device().SRAM.SetPool(p)
	}
}
