package fleet

import (
	"invisiblebits/internal/parallel"
	"invisiblebits/internal/rig"
)

// UseCapturePool points every rig's SRAM engine at one shared worker
// pool. Captures, power-on races, aging soaks, and shelf recovery all
// ride the pool now, so one budget bounds a campaign's entire
// compute — by default arrays already share the process-wide pool
// (parallel.Shared), so a fleet sweep is machine-bounded out of the
// box; this helper exists for campaigns that want an explicit budget —
// e.g. leaving cores free for other work, or serializing everything
// (workers = 1) for diagnosis. A nil pool restores the shared default.
//
// Results are bit-identical under any pool: per-cell noise is
// counter-derived and aging is pure per-cell math, so the pool only
// sets throughput.
func UseCapturePool(rigs []*rig.Rig, p *parallel.Pool) {
	for _, r := range rigs {
		r.Device().SRAM.SetPool(p)
	}
}
