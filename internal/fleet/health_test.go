package fleet

import (
	"context"
	"fmt"
	"testing"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

// TestHealthSweepRefreshRestoresStripe is the fleet-maintenance
// acceptance scenario: a message striped across three small carriers
// decays through two simulated years of hot shelf storage until Gather
// can no longer reassemble it. A health sweep probes every carrier
// (plaintext-free), flags them against a campaign-calibrated margin
// threshold, refreshes each one through the self-verifying decode
// ladder, and afterwards a plain Gather succeeds again.
func TestHealthSweepRefreshRestoresStripe(t *testing.T) {
	model, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	rep7, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	key := stegocrypt.KeyFromPassphrase("stripe-health")
	opts := core.Options{
		Codec:       ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep7},
		Key:         &key,
		StressHours: 14,
	}
	// Fill all three carriers to capacity so every one holds a shard.
	capBytes := core.MaxMessageBytes(1<<10, opts.Codec)
	msg := make([]byte, 3*capBytes)
	rng.NewSource(99).Bytes(msg)
	ctx := context.Background()
	profile := faults.Profile{Seed: 7, WeakFrac: 0.14}

	rigs := make([]*rig.Rig, 3)
	for i := range rigs {
		d, err := device.New(model, fmt.Sprintf("stripe-%d", i), device.WithSRAMLimit(1<<10))
		if err != nil {
			t.Fatal(err)
		}
		rigs[i] = rig.New(d, rig.WithInjector(faults.New(profile, d.Serial)))
	}

	striped, err := Stripe(rigs, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rigs {
		if err := r.ShelveAtFor(2*365*24, 45); err != nil {
			t.Fatal(err)
		}
	}

	// The decayed stripe is unreadable at fixed effort.
	if _, err := Gather(rigs, striped, opts); err == nil {
		t.Fatal("gather on the decayed stripe unexpectedly succeeded")
	}

	records := make([]*core.Record, len(striped.Shards))
	for i, sh := range striped.Shards {
		records[i] = sh.Record
	}
	// MeanMargin barely moves with decay on this channel (stably-wrong
	// cells still vote with full margin), so the threshold is calibrated
	// against the campaign's fresh baseline rather than the permissive
	// package default.
	sweep, err := HealthSweep(ctx, rigs, HealthSweepOptions{
		MarginThreshold: 0.9,
		Refresh:         true,
		Records:         records,
		Adaptive:        core.AdaptiveOptions{Options: opts, MaxCaptures: 45},
		StressHours:     opts.StressHours,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Err(); err != nil {
		t.Fatalf("sweep casualties: %v", err)
	}
	if len(sweep.Flagged) != len(rigs) || len(sweep.Refreshed) != len(rigs) {
		t.Fatalf("flagged %v refreshed %v, want all %d carriers", sweep.Flagged, sweep.Refreshed, len(rigs))
	}
	for _, c := range sweep.Carriers {
		if c.Probe == nil {
			t.Fatalf("carrier %d has no probe report", c.Index)
		}
		if c.Probe.MeanMargin <= 0 || c.Probe.MeanMargin >= 0.9 {
			t.Fatalf("carrier %d margin %.3f, want in (0, 0.9) on the decayed fleet",
				c.Index, c.Probe.MeanMargin)
		}
		if c.Refresh == nil || !c.Refresh.Decode.Verified {
			t.Fatalf("carrier %d refresh report %+v, want a verified ladder decode", c.Index, c.Refresh)
		}
		if c.Refresh.MarginAfter <= c.Refresh.MarginBefore {
			t.Fatalf("carrier %d margin %.4f -> %.4f, want the re-soak to recover margin",
				c.Index, c.Refresh.MarginBefore, c.Refresh.MarginAfter)
		}
		if got := rigs[c.Index].Device().RefreshLog(); len(got) != 1 {
			t.Fatalf("carrier %d refresh ledger has %d events, want 1", c.Index, len(got))
		}
	}

	got, err := Gather(rigs, striped, opts)
	if err != nil {
		t.Fatalf("gather after refresh: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatal("gather after refresh returned wrong message")
	}
}

// TestHealthSweepToleratesDeadCarrier: a carrier whose link is dead is
// reported in its own entry and never sinks the sweep.
func TestHealthSweepToleratesDeadCarrier(t *testing.T) {
	model, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(serial string, p faults.Profile) *rig.Rig {
		d, err := device.New(model, serial, device.WithSRAMLimit(1<<10))
		if err != nil {
			t.Fatal(err)
		}
		return rig.New(d, rig.WithInjector(faults.New(p, d.Serial)))
	}
	rigs := []*rig.Rig{
		mk("sweep-ok", faults.Profile{}),
		mk("sweep-dead", faults.Profile{Seed: 3, FailAtHours: 0.001}),
	}
	// Charge some clock time so the second carrier is already dead.
	for _, r := range rigs {
		if err := r.ShelveAtFor(1, 25); err != nil {
			t.Fatal(err)
		}
	}
	sweep, err := HealthSweep(context.Background(), rigs, HealthSweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Carriers[0].Err != nil || sweep.Carriers[0].Probe == nil {
		t.Fatalf("healthy carrier: %+v", sweep.Carriers[0])
	}
	if sweep.Carriers[1].Err == nil {
		t.Fatal("dead carrier reported no error")
	}
	if sweep.Err() == nil {
		t.Fatal("sweep error summary should name the casualty")
	}
}

// TestHealthSweepBaselineCalibration pins the PR 2 retention-study
// lesson as an executable regression: on a weak-cell-heavy fleet the
// mean vote margin is nearly decay-insensitive (a drifted cell still
// votes its wrong value unanimously), so a fleet can rot from fresh to
// fully decayed while every margin stays far above the 0.6 default —
// the default-threshold sweep sees nothing. Calibrating against each
// carrier's own fresh-capture baseline (MeasureBaselineMargins) flags
// the same decayed fleet, while a re-probe of the fresh fleet stays
// unflagged. The explicit MarginThreshold override still wins over the
// baseline when both are set.
func TestHealthSweepBaselineCalibration(t *testing.T) {
	model, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	rep7, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	key := stegocrypt.KeyFromPassphrase("baseline-cal")
	opts := core.Options{
		Codec:       ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep7},
		Key:         &key,
		StressHours: 14,
	}
	capBytes := core.MaxMessageBytes(1<<10, opts.Codec)
	msg := make([]byte, 2*capBytes)
	rng.NewSource(99).Bytes(msg)
	profile := faults.Profile{Seed: 7, WeakFrac: 0.14}
	ctx := context.Background()
	// The decay signal is ~0.5% of margin, so probe with a burst big
	// enough that estimator noise (~0.03% at 45 captures) is negligible.
	const captures = 45

	mkFleet := func() []*rig.Rig {
		rigs := make([]*rig.Rig, 2)
		for i := range rigs {
			d, err := device.New(model, fmt.Sprintf("bl-%d", i), device.WithSRAMLimit(1<<10))
			if err != nil {
				t.Fatal(err)
			}
			rigs[i] = rig.New(d, rig.WithInjector(faults.New(profile, d.Serial)))
		}
		return rigs
	}

	rigs := mkFleet()
	if _, err := Stripe(rigs, msg, opts); err != nil {
		t.Fatal(err)
	}
	baselines, err := MeasureBaselineMargins(ctx, rigs, captures)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range baselines {
		if b <= 0.8 || b >= 1 {
			t.Fatalf("carrier %d fresh baseline %.4f, want a high fresh margin", i, b)
		}
	}

	// A fresh fleet swept against its own baseline is NOT flagged:
	// calibration must not turn healthy carriers into maintenance work.
	fresh, err := HealthSweep(ctx, rigs, HealthSweepOptions{Captures: captures, BaselineMargins: baselines})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Flagged) != 0 {
		t.Fatalf("fresh fleet flagged %v against its own baseline", fresh.Flagged)
	}

	// Rot the fleet: a year of hot shelf storage, enough that decode
	// degrades — yet the margins barely move.
	for _, r := range rigs {
		if err := r.ShelveAtFor(365*24, 45); err != nil {
			t.Fatal(err)
		}
	}

	// The decay-insensitive mean-margin case: the default threshold
	// misses the rot entirely.
	missed, err := HealthSweep(ctx, rigs, HealthSweepOptions{Captures: captures})
	if err != nil {
		t.Fatal(err)
	}
	if len(missed.Flagged) != 0 {
		t.Fatalf("default 0.6 threshold flagged %v — the decay-insensitivity premise broke", missed.Flagged)
	}
	for _, c := range missed.Carriers {
		if c.Probe.MeanMargin < DefaultMarginThreshold {
			t.Fatalf("carrier %d decayed margin %.4f fell below the default threshold — scenario no longer exercises the miss",
				c.Index, c.Probe.MeanMargin)
		}
	}

	// The calibrated sweep catches it: every carrier dropped more than
	// DefaultBaselineDropFrac below its own fresh baseline.
	caught, err := HealthSweep(ctx, rigs, HealthSweepOptions{Captures: captures, BaselineMargins: baselines})
	if err != nil {
		t.Fatal(err)
	}
	if len(caught.Flagged) != len(rigs) {
		for _, c := range caught.Carriers {
			t.Logf("carrier %d: margin %.4f baseline %.4f", c.Index, c.Probe.MeanMargin, baselines[c.Index])
		}
		t.Fatalf("calibrated sweep flagged %v, want all %d decayed carriers", caught.Flagged, len(rigs))
	}

	// The explicit override still wins: a permissive explicit threshold
	// un-flags the fleet even with baselines supplied.
	over, err := HealthSweep(ctx, rigs, HealthSweepOptions{
		Captures: captures, BaselineMargins: baselines, MarginThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Flagged) != 0 {
		t.Fatalf("explicit 0.5 threshold flagged %v despite override", over.Flagged)
	}
}
