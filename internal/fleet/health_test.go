package fleet

import (
	"context"
	"fmt"
	"testing"

	"invisiblebits/internal/core"
	"invisiblebits/internal/device"
	"invisiblebits/internal/ecc"
	"invisiblebits/internal/faults"
	"invisiblebits/internal/rig"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stegocrypt"
)

// TestHealthSweepRefreshRestoresStripe is the fleet-maintenance
// acceptance scenario: a message striped across three small carriers
// decays through two simulated years of hot shelf storage until Gather
// can no longer reassemble it. A health sweep probes every carrier
// (plaintext-free), flags them against a campaign-calibrated margin
// threshold, refreshes each one through the self-verifying decode
// ladder, and afterwards a plain Gather succeeds again.
func TestHealthSweepRefreshRestoresStripe(t *testing.T) {
	model, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	rep7, err := ecc.NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	key := stegocrypt.KeyFromPassphrase("stripe-health")
	opts := core.Options{
		Codec:       ecc.Composite{Outer: ecc.Hamming74{}, Inner: rep7},
		Key:         &key,
		StressHours: 14,
	}
	// Fill all three carriers to capacity so every one holds a shard.
	capBytes := core.MaxMessageBytes(1<<10, opts.Codec)
	msg := make([]byte, 3*capBytes)
	rng.NewSource(99).Bytes(msg)
	ctx := context.Background()
	profile := faults.Profile{Seed: 7, WeakFrac: 0.14}

	rigs := make([]*rig.Rig, 3)
	for i := range rigs {
		d, err := device.New(model, fmt.Sprintf("stripe-%d", i), device.WithSRAMLimit(1<<10))
		if err != nil {
			t.Fatal(err)
		}
		rigs[i] = rig.New(d, rig.WithInjector(faults.New(profile, d.Serial)))
	}

	striped, err := Stripe(rigs, msg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rigs {
		if err := r.ShelveAtFor(2*365*24, 45); err != nil {
			t.Fatal(err)
		}
	}

	// The decayed stripe is unreadable at fixed effort.
	if _, err := Gather(rigs, striped, opts); err == nil {
		t.Fatal("gather on the decayed stripe unexpectedly succeeded")
	}

	records := make([]*core.Record, len(striped.Shards))
	for i, sh := range striped.Shards {
		records[i] = sh.Record
	}
	// MeanMargin barely moves with decay on this channel (stably-wrong
	// cells still vote with full margin), so the threshold is calibrated
	// against the campaign's fresh baseline rather than the permissive
	// package default.
	sweep, err := HealthSweep(ctx, rigs, HealthSweepOptions{
		MarginThreshold: 0.9,
		Refresh:         true,
		Records:         records,
		Adaptive:        core.AdaptiveOptions{Options: opts, MaxCaptures: 45},
		StressHours:     opts.StressHours,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Err(); err != nil {
		t.Fatalf("sweep casualties: %v", err)
	}
	if len(sweep.Flagged) != len(rigs) || len(sweep.Refreshed) != len(rigs) {
		t.Fatalf("flagged %v refreshed %v, want all %d carriers", sweep.Flagged, sweep.Refreshed, len(rigs))
	}
	for _, c := range sweep.Carriers {
		if c.Probe == nil {
			t.Fatalf("carrier %d has no probe report", c.Index)
		}
		if c.Probe.MeanMargin <= 0 || c.Probe.MeanMargin >= 0.9 {
			t.Fatalf("carrier %d margin %.3f, want in (0, 0.9) on the decayed fleet",
				c.Index, c.Probe.MeanMargin)
		}
		if c.Refresh == nil || !c.Refresh.Decode.Verified {
			t.Fatalf("carrier %d refresh report %+v, want a verified ladder decode", c.Index, c.Refresh)
		}
		if c.Refresh.MarginAfter <= c.Refresh.MarginBefore {
			t.Fatalf("carrier %d margin %.4f -> %.4f, want the re-soak to recover margin",
				c.Index, c.Refresh.MarginBefore, c.Refresh.MarginAfter)
		}
		if got := rigs[c.Index].Device().RefreshLog(); len(got) != 1 {
			t.Fatalf("carrier %d refresh ledger has %d events, want 1", c.Index, len(got))
		}
	}

	got, err := Gather(rigs, striped, opts)
	if err != nil {
		t.Fatalf("gather after refresh: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatal("gather after refresh returned wrong message")
	}
}

// TestHealthSweepToleratesDeadCarrier: a carrier whose link is dead is
// reported in its own entry and never sinks the sweep.
func TestHealthSweepToleratesDeadCarrier(t *testing.T) {
	model, err := device.ByName("MSP432P401")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(serial string, p faults.Profile) *rig.Rig {
		d, err := device.New(model, serial, device.WithSRAMLimit(1<<10))
		if err != nil {
			t.Fatal(err)
		}
		return rig.New(d, rig.WithInjector(faults.New(p, d.Serial)))
	}
	rigs := []*rig.Rig{
		mk("sweep-ok", faults.Profile{}),
		mk("sweep-dead", faults.Profile{Seed: 3, FailAtHours: 0.001}),
	}
	// Charge some clock time so the second carrier is already dead.
	for _, r := range rigs {
		if err := r.ShelveAtFor(1, 25); err != nil {
			t.Fatal(err)
		}
	}
	sweep, err := HealthSweep(context.Background(), rigs, HealthSweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Carriers[0].Err != nil || sweep.Carriers[0].Probe == nil {
		t.Fatalf("healthy carrier: %+v", sweep.Carriers[0])
	}
	if sweep.Carriers[1].Err == nil {
		t.Fatal("dead carrier reported no error")
	}
	if sweep.Err() == nil {
		t.Fatal("sweep error summary should name the casualty")
	}
}
