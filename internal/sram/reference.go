package sram

import (
	"context"
	"fmt"

	"invisiblebits/internal/analog"
)

// This file freezes the pre-overhaul (BENCH_3-era) engine structure:
// one serial pass, no deterministic-cell pruning, noise drawn for every
// cell on every race, and per-cell analog.GrowShift aging with its
// per-cell Rate and inverse math.Pow. cmd/ibbench times these as the
// legacy baseline and gates every speedup it reports on equivalence —
// captures must be bit-identical (the reference reads the same bias
// plane and the same versioned sampler as the optimized engine, so
// pruning and sharding are the only differences, and both are exact);
// aging pools must agree to float rounding.

// PowerOnReference resolves a power-on race with the serial, unpruned
// engine. Semantics match PowerOn exactly: same counter consumption,
// same remanence handling, bit-identical output.
func (a *Array) PowerOnReference(tempC float64) ([]byte, error) {
	if a.powered {
		return nil, ErrPowered
	}
	if a.remanent {
		a.remanent = false
		a.powered = true
		out := make([]byte, len(a.data))
		copy(out, a.data)
		return out, nil
	}
	if err := a.ensureBiasPlane(context.Background()); err != nil {
		return nil, err
	}
	sigma := a.noiseSigmaAt(tempC)
	norm := a.drawNorm
	ctr := a.powerOns
	a.powerOns++
	for byteIdx := range a.data {
		var out byte
		base := byteIdx * 8
		for b := 0; b < 8; b++ {
			i := base + b
			if float64(a.biasPlane[i])+sigma*norm(ctr, uint64(i)) > 0 {
				out |= 1 << b
			}
		}
		a.data[byteIdx] = out
	}
	a.powered = true
	out := make([]byte, len(a.data))
	copy(out, a.data)
	return out, nil
}

// CaptureVotesReference runs a capture burst with the serial, unpruned
// engine: every cell draws noise for every race. It must return votes
// bit-identical to CaptureVotes from the same array state — the
// equivalence gate behind BENCH_4's capture speedups.
func (a *Array) CaptureVotesReference(captures int, tempC float64) ([]uint16, error) {
	if captures < 1 {
		return nil, fmt.Errorf("sram: need at least one capture, got %d", captures)
	}
	counts := make([]uint32, a.n)
	races := captures
	if !a.powered && a.remanent {
		a.remanent = false
		for i := 0; i < a.n; i++ {
			if a.data[i/8]&(1<<(i%8)) != 0 {
				counts[i]++
			}
		}
		races--
	}
	if races > 0 {
		if err := a.ensureBiasPlane(context.Background()); err != nil {
			return nil, err
		}
		sigma := a.noiseSigmaAt(tempC)
		norm := a.drawNorm
		base := a.powerOns
		a.powerOns += uint64(races)
		for byteIdx := range a.data {
			var final byte
			cell := byteIdx * 8
			for b := 0; b < 8; b++ {
				i := cell + b
				bias := float64(a.biasPlane[i])
				idx := uint64(i)
				for k := 0; k < races; k++ {
					if bias+sigma*norm(base+uint64(k), idx) > 0 {
						counts[i]++
						if k == races-1 {
							final |= 1 << b
						}
					}
				}
			}
			a.data[byteIdx] = final
		}
	}
	a.powered = true
	votes := make([]uint16, a.n)
	for i, c := range counts {
		votes[i] = uint16(c)
	}
	return votes, nil
}

// StressReference ages the array with the pre-overhaul serial loop:
// analog.GrowShift per cell, which re-derives the equivalent time with
// an inverse math.Pow (and re-evaluates Rate) on every cell. Results
// agree with Stress to floating-point rounding — ibbench gates the
// stress speedup on a relative pool comparison.
func (a *Array) StressReference(c analog.Conditions, hours float64) error {
	if !a.powered {
		return ErrUnpowered
	}
	if hours <= 0 {
		return nil
	}
	p := a.spec.Aging
	fFast, fSlow := p.RecoveryFactorsAt(hours, c.TempC)
	permFrac := p.PermanentFrac()
	for i := 0; i < a.n; i++ {
		held1 := a.data[i/8]&(1<<(i%8)) != 0
		if held1 {
			growPoolsLegacy(p, c, hours, permFrac, &a.s1Perm[i], &a.s1Fast[i], &a.s1Slow[i])
			a.t1Ref[i] = -1
			a.s0Fast[i] *= float32(fFast)
			a.s0Slow[i] *= float32(fSlow)
			a.t0Ref[i] = -1
		} else {
			growPoolsLegacy(p, c, hours, permFrac, &a.s0Perm[i], &a.s0Fast[i], &a.s0Slow[i])
			a.t0Ref[i] = -1
			a.s1Fast[i] *= float32(fFast)
			a.s1Slow[i] *= float32(fSlow)
			a.t1Ref[i] = -1
		}
		a.biasPlane[i] = float32(a.bias(i))
	}
	a.biasFresh = true
	a.bumpBiasEpoch()
	return nil
}

// growPoolsLegacy is the pre-overhaul per-cell growth: state re-derived
// from the pool totals through GrowShift's inverse power on every call.
func growPoolsLegacy(p analog.Params, c analog.Conditions, hours, permFrac float64,
	perm, fast, slow *float32) {
	total := float64(*perm) + float64(*fast) + float64(*slow)
	delta := p.GrowShift(total, c, hours) - total
	if delta <= 0 {
		return
	}
	*perm += float32(delta * permFrac)
	*fast += float32(delta * p.RecFastFrac)
	*slow += float32(delta * p.RecSlowFrac)
}
