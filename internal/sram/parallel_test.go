package sram

import (
	"bytes"
	"context"
	"testing"

	"invisiblebits/internal/parallel"
)

// equivSpec returns a small but non-trivial spec (4 KiB) with a fixed
// seed, suitable for byte-exact cross-worker comparisons.
func equivSpec(seed uint64) Spec {
	spec := DefaultSpec()
	spec.Rows, spec.Cols = 128, 256 // 32768 cells = 4 KiB
	spec.Seed = seed
	return spec
}

// ageArray gives the array a non-uniform imprint so equivalence is not
// trivially tested on an all-noise array.
func ageArray(t *testing.T, a *Array) {
	t.Helper()
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	pattern := make([]byte, a.Bytes())
	for i := range pattern {
		pattern[i] = byte(i * 37)
	}
	cond := a.Spec().Aging.Ref
	if err := a.StressWithPattern(pattern, cond, 4); err != nil {
		t.Fatal(err)
	}
	a.PowerOff(true)
}

// TestPowerOnEquivalence: the same seed must resolve the same power-on
// state for every worker count. This is the tentpole's core guarantee —
// parallel == serial by construction.
func TestPowerOnEquivalence(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 3, 8} {
		spec := equivSpec(7)
		spec.Workers = workers
		a, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		ageArray(t, a)
		snap, err := a.PowerOn(25)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = snap
			continue
		}
		if !bytes.Equal(snap, want) {
			t.Fatalf("workers=%d: power-on state differs from workers=1", workers)
		}
	}
}

// TestCaptureEquivalence: CaptureMajority and CaptureVotes must be
// bit-identical across worker counts, and successive bursts must stay in
// lockstep (the power-on counter advances identically).
func TestCaptureEquivalence(t *testing.T) {
	type result struct {
		maj   []byte
		votes []uint16
	}
	var want *result
	for _, workers := range []int{1, 2, 3, 8} {
		spec := equivSpec(11)
		spec.Workers = workers
		a, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		ageArray(t, a)
		maj, err := a.CaptureMajority(5, 25)
		if err != nil {
			t.Fatal(err)
		}
		votes, err := a.CaptureVotes(7, 30)
		if err != nil {
			t.Fatal(err)
		}
		got := &result{maj: maj, votes: votes}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got.maj, want.maj) {
			t.Fatalf("workers=%d: majority capture differs", workers)
		}
		for i := range want.votes {
			if got.votes[i] != want.votes[i] {
				t.Fatalf("workers=%d: vote count differs at cell %d: %d vs %d",
					workers, i, got.votes[i], want.votes[i])
			}
		}
	}
}

// TestChunkSplitEquivalence drives the pool with explicit odd and even
// chunk sizes and checks the race outcome never moves: sharding is pure
// bookkeeping.
func TestChunkSplitEquivalence(t *testing.T) {
	spec := equivSpec(13)
	ref, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	ageArray(t, ref)
	refSnap, err := ref.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 3, 7, 8, 64, 1000, 4096} {
		a, err := New(equivSpec(13))
		if err != nil {
			t.Fatal(err)
		}
		ageArray(t, a)
		// Drive the race exactly as PowerOn does, but with a forced
		// chunk size (odd chunks land mid-byte-run; resolveRace is
		// byte-granular so any chunk of bytes is safe).
		if err := a.ensureBiasPlane(context.Background()); err != nil {
			t.Fatal(err)
		}
		sigma := a.noiseSigmaAt(25)
		bound := a.pruneBound(sigma)
		ctr := a.powerOns
		a.powerOns++
		pool := parallel.New(4)
		if err := pool.RunChunked(context.Background(), len(a.data), chunk, func(lo, hi int) {
			a.resolveRace(ctr, sigma, bound, lo, hi)
		}); err != nil {
			t.Fatal(err)
		}
		a.powered = true
		snap, err := a.Read()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, refSnap) {
			t.Fatalf("chunk=%d bytes: race outcome differs from PowerOn", chunk)
		}
	}
}

// TestCaptureCounterAdvances: a burst consumes one counter per race so
// consecutive bursts see fresh noise, and restoring a snapshot rewinds
// the noise future deterministically.
func TestCaptureCounterAdvances(t *testing.T) {
	a, err := New(equivSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	ageArray(t, a)
	if got := a.PowerOnCount(); got != 1 { // ageArray powered on once
		t.Fatalf("counter after one power-on = %d, want 1", got)
	}
	snap := a.StateSnapshot()
	v1, err := a.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PowerOnCount(); got != 6 {
		t.Fatalf("counter after 5-capture burst = %d, want 6", got)
	}
	v2, err := a.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range v1 {
		if v1[i] != v2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive bursts returned identical votes — counter not advancing")
	}
	// Restore → replay the exact same noise future.
	b, err := New(equivSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	v1b, err := b.CaptureVotes(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i] != v1b[i] {
			t.Fatalf("restored array diverged at cell %d", i)
		}
	}
}

// TestCaptureRemanence: an unpowered remanent array contributes its
// retained contents as the first capture without consuming a counter —
// the serial engine's behaviour, preserved.
func TestCaptureRemanence(t *testing.T) {
	a, err := New(equivSpec(19))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	pattern := make([]byte, a.Bytes())
	for i := range pattern {
		pattern[i] = 0xA5
	}
	if err := a.Write(pattern); err != nil {
		t.Fatal(err)
	}
	a.PowerOff(false) // rapid cycle: remanence
	before := a.PowerOnCount()
	votes, err := a.CaptureVotes(1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PowerOnCount(); got != before {
		t.Fatalf("remanent single capture consumed %d counters", got-before)
	}
	for i, v := range votes {
		bit := uint16(0)
		if pattern[i/8]&(1<<(i%8)) != 0 {
			bit = 1
		}
		if v != bit {
			t.Fatalf("cell %d: remanent capture vote %d, want %d", i, v, bit)
		}
	}
}

// TestCaptureCancellation: a cancelled burst must error out and leave
// the array unpowered so the next power-on reruns a clean race.
func TestCaptureCancellation(t *testing.T) {
	a, err := New(equivSpec(23))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.CaptureVotesContext(ctx, 5, 25); err == nil {
		t.Fatal("cancelled burst returned nil error")
	}
	if a.Powered() {
		t.Fatal("cancelled burst left the array powered")
	}
	if _, err := a.PowerOn(25); err != nil {
		t.Fatalf("power-on after cancelled burst: %v", err)
	}
}
