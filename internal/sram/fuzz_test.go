package sram

import (
	"testing"

	"invisiblebits/internal/analog"
)

// FuzzCaptureEquivalence drives the word-parallel kernel and the serial
// unpruned reference engine through an arbitrary device history —
// identity seed, array size, capture count, temperature, imprint aging,
// worker count, remanence, noise generation — and requires bit-identical
// votes, data planes and counter consumption. This is the kernel's
// contract in one sentence: every fast path (deterministic-plane
// pruning, packed float32 classification, bit-sliced counting, dense
// edge resolution) is an exact rewrite of the reference race.
func FuzzCaptureEquivalence(f *testing.F) {
	// Remanence-first-capture: the retained contents count as capture 1.
	f.Add(uint64(1), uint16(128), uint16(5), int16(25), uint16(40), uint8(2), true, false)
	// Heavy imprint: essentially every cell deterministic — the det
	// planes carry the burst and the packed residue is nearly empty.
	f.Add(uint64(2), uint16(256), uint16(7), int16(25), uint16(5000), uint8(1), false, false)
	// Fresh device: every cell noisy — no pruning, pure packed kernel.
	f.Add(uint64(3), uint16(192), uint16(9), int16(10), uint16(0), uint8(3), false, false)
	// v1 noise plane: Box–Muller path, pruning disabled by design.
	f.Add(uint64(4), uint16(64), uint16(3), int16(40), uint16(12), uint8(2), false, true)

	f.Fuzz(func(t *testing.T, seed uint64, cells, captures uint16,
		tempC int16, imprintCentihours uint16, workers uint8, remanent, genV1 bool) {
		n := int(cells)%512 + 8
		n -= n % 8
		spec := DefaultSpec()
		spec.Rows = 1
		spec.Cols = n
		spec.Seed = seed
		spec.NoiseGen = NoiseGenZiggurat
		if genV1 {
			spec.NoiseGen = NoiseGenBoxMuller
		}
		caps := int(captures)%33 + 1
		temp := float64(int(tempC) % 86) // −85..85 °C
		hours := float64(imprintCentihours) / 100
		w := int(workers)%4 + 1

		mk := func(workers int) *Array {
			s := spec
			s.Workers = workers
			a, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			if hours > 0 {
				if _, err := a.PowerOn(25); err != nil {
					t.Fatal(err)
				}
				pat := make([]byte, a.Bytes())
				for i := range pat {
					pat[i] = byte(seed>>3) ^ 0x5A
				}
				if err := a.StressWithPattern(pat, analog.Conditions{VoltageV: 3.6, TempC: 105}, hours); err != nil {
					t.Fatal(err)
				}
				a.PowerOff(true)
			}
			if remanent {
				if _, err := a.PowerOn(25); err != nil {
					t.Fatal(err)
				}
				a.PowerOff(false) // leave charge: next capture reads retained state
			}
			return a
		}
		ak := mk(w)
		ar := mk(1)
		vk, err := ak.CaptureVotesContext(t.Context(), caps, temp)
		if err != nil {
			t.Fatal(err)
		}
		vr, err := ar.CaptureVotesReference(caps, temp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vk {
			if vk[i] != vr[i] {
				t.Fatalf("cell %d: kernel votes %d, reference votes %d (n=%d caps=%d temp=%v hours=%v workers=%d rem=%v v1=%v)",
					i, vk[i], vr[i], n, caps, temp, hours, w, remanent, genV1)
			}
		}
		dk, _ := ak.Read()
		dr, _ := ar.Read()
		for i := range dk {
			if dk[i] != dr[i] {
				t.Fatalf("data byte %d: kernel %02x, reference %02x", i, dk[i], dr[i])
			}
		}
		if ak.PowerOnCount() != ar.PowerOnCount() {
			t.Fatalf("counter consumption diverged: kernel %d, reference %d",
				ak.PowerOnCount(), ar.PowerOnCount())
		}
	})
}
