//go:build !race

package sram

const raceEnabled = false
