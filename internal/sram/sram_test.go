package sram

import (
	"bytes"
	"math"
	"testing"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
	"invisiblebits/internal/stats"
)

// testSpec returns a small (1 KB) array for fast tests; statistics on
// 8192 cells give sub-percent standard errors.
func testSpec(seed uint64) Spec {
	s := DefaultSpec()
	s.Rows, s.Cols = 64, 128
	s.Seed = seed
	return s
}

func mustNew(t *testing.T, spec Spec) *Array {
	t.Helper()
	a, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func invert(p []byte) []byte {
	out := make([]byte, len(p))
	for i, b := range p {
		out[i] = ^b
	}
	return out
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Rows = 0 },
		func(s *Spec) { s.Cols = -1 },
		func(s *Spec) { s.Rows, s.Cols = 3, 3 }, // 9 bits, not byte aligned
		func(s *Spec) { s.MismatchSigmaMv = 0 },
		func(s *Spec) { s.NoiseSigmaMv = -1 },
		func(s *Spec) { s.Aging.A0MvPerHourN = 0 },
	}
	for i, mutate := range bad {
		s := testSpec(1)
		mutate(&s)
		if _, err := New(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestPowerOnFingerprintDeterministicPerSeed(t *testing.T) {
	a := mustNew(t, testSpec(7))
	b := mustNew(t, testSpec(7))
	ma, err := a.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(ma, mb); ber > 0.01 {
		t.Fatalf("same-seed devices differ by %v", ber)
	}
	c := mustNew(t, testSpec(8))
	mc, err := c.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(ma, mc); ber < 0.4 || ber > 0.6 {
		t.Fatalf("different-seed devices differ by %v, want ~0.5", ber)
	}
}

func TestPowerOnBalancedAndHighEntropy(t *testing.T) {
	a := mustNew(t, testSpec(3))
	snap, err := a.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	bias := stats.MeanBias(snap)
	if bias < 0.47 || bias > 0.53 {
		t.Fatalf("clean power-on bias = %v, want ~0.5", bias)
	}
	if h := stats.ByteEntropy(snap); h < 7.5 {
		t.Fatalf("clean power-on entropy = %v bits, want near 8", h)
	}
}

func TestCleanMoranISlightlyPositive(t *testing.T) {
	// Table 2: unstressed SRAMs show Moran's I ≈ 0.009–0.011 (the smooth
	// across-die component). Require small and positive.
	a := mustNew(t, testSpec(11))
	snap, err := a.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]byte, a.Cells())
	for i := range bits {
		if snap[i/8]&(1<<(i%8)) != 0 {
			bits[i] = 1
		}
	}
	res, err := stats.MoranIBits(bits, a.Rows(), a.Cols())
	if err != nil {
		t.Fatal(err)
	}
	// On a small 8K-cell test array the smooth component is sampled
	// coarsely; require |I| small (the full-size arrays of the tab2
	// experiment check the positive ~0.01 value).
	if res.I < -0.01 || res.I > 0.05 {
		t.Fatalf("clean Moran's I = %v, want near zero / small positive", res.I)
	}
}

func TestPowerLifecycleErrors(t *testing.T) {
	a := mustNew(t, testSpec(1))
	if _, err := a.Read(); err != ErrUnpowered {
		t.Errorf("Read unpowered: %v", err)
	}
	if err := a.Write(make([]byte, a.Bytes())); err != ErrUnpowered {
		t.Errorf("Write unpowered: %v", err)
	}
	if err := a.Stress(analog.Conditions{VoltageV: 3.3, TempC: 85}, 1); err != ErrUnpowered {
		t.Errorf("Stress unpowered: %v", err)
	}
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PowerOn(25); err != ErrPowered {
		t.Errorf("double PowerOn: %v", err)
	}
	if err := a.Shelve(1); err == nil {
		t.Error("Shelve while powered should fail")
	}
	if err := a.Write(make([]byte, 3)); err == nil {
		t.Error("short Write should fail")
	}
	if err := a.WriteAt(a.Bytes()-1, []byte{1, 2}); err == nil {
		t.Error("out-of-bounds WriteAt should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := mustNew(t, testSpec(2))
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, a.Bytes())
	rng.NewSource(9).Bytes(payload)
	if err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	got, err := a.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("digital read-back mismatch")
	}
	// WriteAt patches a window.
	if err := a.WriteAt(4, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	got, _ = a.Read()
	if got[4] != 0xAA || got[5] != 0xBB || got[3] != payload[3] {
		t.Fatal("WriteAt wrong window")
	}
}

func TestRemanence(t *testing.T) {
	a := mustNew(t, testSpec(4))
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, a.Bytes())
	rng.NewSource(5).Bytes(payload)
	if err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	// Fast cycle without discharge: contents survive.
	a.PowerOff(false)
	snap, err := a.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, payload) {
		t.Fatal("remanence did not preserve contents")
	}
	// Discharged cycle: contents replaced by a fresh power-on state.
	a.PowerOff(true)
	snap, err = a.PowerOn(25)
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(snap, payload); ber < 0.3 {
		t.Fatalf("discharged power cycle retained payload (ber=%v)", ber)
	}
}

func TestDataDirectedAgingDirections(t *testing.T) {
	// Fig. 3b/3c: stressing all-0s raises the fraction of 1s at power-on;
	// all-1s raises the 0s.
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	for _, tc := range []struct {
		fill     byte
		wantOnes bool
	}{
		{0x00, true},
		{0xFF, false},
	} {
		a := mustNew(t, testSpec(21))
		if _, err := a.PowerOn(25); err != nil {
			t.Fatal(err)
		}
		if err := a.Fill(tc.fill); err != nil {
			t.Fatal(err)
		}
		if err := a.Stress(cond, 4); err != nil {
			t.Fatal(err)
		}
		snap, err := a.PowerCycle(25)
		if err != nil {
			t.Fatal(err)
		}
		bias := stats.MeanBias(snap)
		if tc.wantOnes && bias < 0.7 {
			t.Errorf("all-0 stress: bias %v, want >>0.5", bias)
		}
		if !tc.wantOnes && bias > 0.3 {
			t.Errorf("all-1 stress: bias %v, want <<0.5", bias)
		}
	}
}

// encodeAndMeasure stresses a payload in and returns the decode error
// against the expected (inverted) power-on state.
func encodeAndMeasure(t *testing.T, a *Array, payload []byte, c analog.Conditions, hours float64) float64 {
	t.Helper()
	if !a.Powered() {
		if _, err := a.PowerOn(25); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.StressWithPattern(payload, c, hours); err != nil {
		t.Fatal(err)
	}
	maj, err := a.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	return stats.BitErrorRate(invert(maj), payload)
}

func TestEncodingErrorCalibration(t *testing.T) {
	// The MSP432 anchor: ~6.5% error after 10 h at 3.3 V/85 °C (§5.2),
	// ~30-35% after 2 h (Fig. 6).
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}

	a := mustNew(t, testSpec(31))
	payload := make([]byte, a.Bytes())
	rng.NewSource(77).Bytes(payload)
	err10 := encodeAndMeasure(t, a, payload, cond, 10)
	if err10 < 0.045 || err10 > 0.085 {
		t.Errorf("10h encode error = %v, want ≈0.065", err10)
	}

	b := mustNew(t, testSpec(32))
	err2 := encodeAndMeasure(t, b, payload, cond, 2)
	if err2 < 0.25 || err2 > 0.40 {
		t.Errorf("2h encode error = %v, want ≈0.30–0.35", err2)
	}
	if err2 <= err10 {
		t.Errorf("error not decreasing with stress time: %v vs %v", err2, err10)
	}
}

func TestStressComposition(t *testing.T) {
	// Three two-hour cycles with the same held data ≈ one six-hour stress
	// (the paper encodes "at three two-hour-long stress cycles", §5.2).
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	payload := make([]byte, testSpec(0).Rows*testSpec(0).Cols/8)
	rng.NewSource(13).Bytes(payload)

	a := mustNew(t, testSpec(41))
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Stress(cond, 2); err != nil {
			t.Fatal(err)
		}
	}
	majA, _ := a.CaptureMajority(5, 25)

	b := mustNew(t, testSpec(41))
	if _, err := b.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if err := b.StressWithPattern(payload, cond, 6); err != nil {
		t.Fatal(err)
	}
	majB, _ := b.CaptureMajority(5, 25)

	if ber := stats.BitErrorRate(majA, majB); ber > 0.01 {
		t.Errorf("staged vs one-shot stress differ by %v", ber)
	}
}

func TestMajorityVotingFiltersNoise(t *testing.T) {
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	a := mustNew(t, testSpec(51))
	payload := make([]byte, a.Bytes())
	rng.NewSource(3).Bytes(payload)
	if _, err := a.PowerOn(25); err != nil {
		t.Fatal(err)
	}
	if err := a.StressWithPattern(payload, cond, 10); err != nil {
		t.Fatal(err)
	}
	single, err := a.PowerCycle(25)
	if err != nil {
		t.Fatal(err)
	}
	maj, err := a.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	errSingle := stats.BitErrorRate(invert(single), payload)
	errMaj := stats.BitErrorRate(invert(maj), payload)
	// Majority voting removes the sampling-noise component; encoding error
	// dominates both, so allow a small statistical tolerance.
	if errMaj > errSingle+0.002 {
		t.Errorf("majority (%v) worse than single capture (%v)", errMaj, errSingle)
	}
	// Repeated majority reads are stable (copy tolerance, §1).
	maj2, err := a.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ber := stats.BitErrorRate(maj, maj2); ber > 0.005 {
		t.Errorf("majority captures unstable: %v", ber)
	}
}

func TestCaptureMajorityRejectsEvenCounts(t *testing.T) {
	a := mustNew(t, testSpec(1))
	if _, err := a.CaptureMajority(4, 25); err == nil {
		t.Error("even capture count accepted")
	}
	if _, err := a.CaptureMajority(0, 25); err == nil {
		t.Error("zero capture count accepted")
	}
}

func TestNaturalRecoveryIncreasesError(t *testing.T) {
	// §5.1.3: error grows ≈1.4× after a shelved week, ≈1.6× after a month.
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	a := mustNew(t, testSpec(61))
	payload := make([]byte, a.Bytes())
	rng.NewSource(8).Bytes(payload)
	base := encodeAndMeasure(t, a, payload, cond, 10)

	a.PowerOff(true)
	if err := a.Shelve(7 * 24); err != nil {
		t.Fatal(err)
	}
	majWeek, err := a.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	week := stats.BitErrorRate(invert(majWeek), payload)

	a.PowerOff(true)
	if err := a.Shelve(21 * 24); err != nil { // total 4 weeks
		t.Fatal(err)
	}
	majMonth, err := a.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	month := stats.BitErrorRate(invert(majMonth), payload)

	fWeek, fMonth := week/base, month/base
	if fWeek < 1.15 || fWeek > 1.65 {
		t.Errorf("1-week recovery factor = %v, want ≈1.4", fWeek)
	}
	if fMonth < 1.35 || fMonth > 1.95 {
		t.Errorf("4-week recovery factor = %v, want ≈1.6", fMonth)
	}
	if fMonth <= fWeek {
		t.Errorf("recovery factors not monotone: %v then %v", fWeek, fMonth)
	}
	if month > 0.12 {
		t.Errorf("month error %v should stay within ~10%% (§5.1.3)", month)
	}
}

func TestNormalOperationGentlerThanShelf(t *testing.T) {
	// §5.1.4: a week of pseudo-random writes at nominal conditions grows
	// error ≈1.2×, less than the ≈1.4× of pure shelving.
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	nominal := analog.Conditions{VoltageV: 1.2, TempC: 25}

	a := mustNew(t, testSpec(71))
	payload := make([]byte, a.Bytes())
	rng.NewSource(17).Bytes(payload)
	base := encodeAndMeasure(t, a, payload, cond, 10)

	w := rng.NewWorkloadWriter(0xfeed, 0)
	if err := a.OperateRandom(w, nominal, 7*24, 4); err != nil {
		t.Fatal(err)
	}
	maj, err := a.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	op := stats.BitErrorRate(invert(maj), payload)

	b := mustNew(t, testSpec(71))
	payload2 := make([]byte, b.Bytes())
	rng.NewSource(17).Bytes(payload2)
	base2 := encodeAndMeasure(t, b, payload2, cond, 10)
	b.PowerOff(true)
	if err := b.Shelve(7 * 24); err != nil {
		t.Fatal(err)
	}
	majShelf, err := b.CaptureMajority(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	shelf := stats.BitErrorRate(invert(majShelf), payload2)

	fOp, fShelf := op/base, shelf/base2
	if fOp < 1.0 || fOp > 1.45 {
		t.Errorf("operation factor = %v, want ≈1.2", fOp)
	}
	if fOp >= fShelf {
		t.Errorf("operation (%v) should degrade less than shelf (%v)", fOp, fShelf)
	}
}

func TestBiasMapUShaped(t *testing.T) {
	// Fig. 3a: most unaged cells are strongly biased (bias ≈ 0 or 1), few
	// are metastable.
	a := mustNew(t, testSpec(81))
	bm, err := a.BiasMap(20, 25)
	if err != nil {
		t.Fatal(err)
	}
	extreme, middle := 0, 0
	for _, b := range bm {
		switch {
		case b <= 0.05 || b >= 0.95:
			extreme++
		case b >= 0.3 && b <= 0.7:
			middle++
		}
	}
	if frac := float64(extreme) / float64(len(bm)); frac < 0.85 {
		t.Errorf("only %v of cells strongly biased, want >0.85", frac)
	}
	if frac := float64(middle) / float64(len(bm)); frac > 0.05 {
		t.Errorf("%v of cells metastable, want <0.05", frac)
	}
}

func TestNoiseSigmaScalesWithTemperature(t *testing.T) {
	// Hotter captures are noisier: count flaky bits across capture pairs.
	flaky := func(tempC float64) int {
		a := mustNew(t, testSpec(91))
		s1, err := a.PowerOn(tempC)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := a.PowerCycle(tempC)
		if err != nil {
			t.Fatal(err)
		}
		return stats.HammingDistance(s1, s2)
	}
	cold := flaky(0)
	hot := flaky(185)
	if hot <= cold {
		t.Errorf("flaky bits: cold=%d hot=%d, want hot > cold", cold, hot)
	}
}

func TestErrorFloorFromExtremeCells(t *testing.T) {
	// §5.1.1: some cells are so asymmetric that no realistic stress flips
	// them — the error floor. Verify a very long stress still leaves a
	// small residual error but far below the 10h level.
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	a := mustNew(t, testSpec(95))
	payload := make([]byte, a.Bytes())
	rng.NewSource(4).Bytes(payload)
	e100 := encodeAndMeasure(t, a, payload, cond, 100)
	if e100 <= 0 {
		t.Error("expected a nonzero error floor")
	}
	if e100 > 0.03 {
		t.Errorf("100h error = %v, want < 0.03", e100)
	}
}

func TestShelveNoOpForNonPositive(t *testing.T) {
	a := mustNew(t, testSpec(1))
	if err := a.Shelve(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Shelve(-3); err != nil {
		t.Fatal(err)
	}
}

func TestBiasAccessorConsistent(t *testing.T) {
	a := mustNew(t, testSpec(1))
	snap, err := a.PowerOn(-273.0) // ~zero thermal noise
	if err != nil {
		t.Fatal(err)
	}
	disagree := 0
	for i := 0; i < a.Cells(); i++ {
		got := snap[i/8]&(1<<(i%8)) != 0
		want := a.Bias(i) > 0
		if got != want && math.Abs(a.Bias(i)) > 0.5 {
			disagree++
		}
	}
	if disagree > 0 {
		t.Errorf("%d cells disagree with Bias() at near-zero noise", disagree)
	}
}

func BenchmarkPowerOn64KB(b *testing.B) {
	s := DefaultSpec()
	a, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.PowerCycle(25); err != nil && i > 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkStress64KB(b *testing.B) {
	s := DefaultSpec()
	a, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := a.PowerOn(25); err != nil {
		b.Fatal(err)
	}
	cond := analog.Conditions{VoltageV: 3.3, TempC: 85}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Stress(cond, 1); err != nil {
			b.Fatal(err)
		}
	}
}
