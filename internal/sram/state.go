package sram

import (
	"errors"
	"fmt"
)

// State is a serializable snapshot of an array's mutable condition: the
// accumulated aging pools and the digital contents. The mismatch pattern
// is NOT part of the state — it is reproduced from the spec seed, exactly
// as real silicon carries its fingerprint implicitly. Gob/JSON-encodable.
type State struct {
	Seed     uint64 // must match the array being restored into
	Powered  bool
	Remanent bool
	// PowerOns is the noise-stream counter: how many power-on races the
	// array had resolved when the snapshot was taken. Restoring it lets
	// the array replay the same noise future. Absent (zero) in snapshots
	// taken before counter-based noise derivation; such arrays replay
	// from counter 0, which is still fully deterministic.
	PowerOns uint64
	// NoiseGen records which thermal-noise plane the array was using
	// (NoiseGenBoxMuller or NoiseGenZiggurat). Snapshots taken before
	// noise-plane versioning carry zero, which restores as v1
	// (Box–Muller) — the only sampler that existed then — so archived
	// device images keep replaying bit-identical captures.
	NoiseGen int
	Data     []byte
	S0Perm   []float32
	S0Fast   []float32
	S0Slow   []float32
	S1Perm   []float32
	S1Fast   []float32
	S1Slow   []float32
}

// StateSnapshot captures the array's current mutable state.
func (a *Array) StateSnapshot() State {
	cp := func(src []float32) []float32 {
		out := make([]float32, len(src))
		copy(out, src)
		return out
	}
	data := make([]byte, len(a.data))
	copy(data, a.data)
	return State{
		Seed:     a.spec.Seed,
		Powered:  a.powered,
		Remanent: a.remanent,
		PowerOns: a.powerOns,
		NoiseGen: a.spec.NoiseGen,
		Data:     data,
		S0Perm:   cp(a.s0Perm), S0Fast: cp(a.s0Fast), S0Slow: cp(a.s0Slow),
		S1Perm: cp(a.s1Perm), S1Fast: cp(a.s1Fast), S1Slow: cp(a.s1Slow),
	}
}

// ErrStateMismatch is returned when a state snapshot does not belong to
// the array it is being restored into.
var ErrStateMismatch = errors.New("sram: state snapshot belongs to a different array")

// RestoreState loads a snapshot previously taken from an array with the
// same spec (same seed and geometry). The array adopts the snapshot's
// noise-plane version — restoring a pre-versioning snapshot (NoiseGen
// zero) switches the array to Box–Muller regardless of how it was
// constructed, so archived captures replay bit-identically.
func (a *Array) RestoreState(s State) error {
	if s.Seed != a.spec.Seed {
		return fmt.Errorf("%w: seed %d vs %d", ErrStateMismatch, s.Seed, a.spec.Seed)
	}
	if len(s.Data) != len(a.data) || len(s.S0Perm) != a.n {
		return fmt.Errorf("%w: geometry differs", ErrStateMismatch)
	}
	gen := s.NoiseGen
	switch gen {
	case 0:
		gen = NoiseGenBoxMuller
	case NoiseGenBoxMuller, NoiseGenZiggurat:
	default:
		return fmt.Errorf("sram: snapshot uses unknown noise-generation version %d", s.NoiseGen)
	}
	copy(a.data, s.Data)
	copy(a.s0Perm, s.S0Perm)
	copy(a.s0Fast, s.S0Fast)
	copy(a.s0Slow, s.S0Slow)
	copy(a.s1Perm, s.S1Perm)
	copy(a.s1Fast, s.S1Fast)
	copy(a.s1Slow, s.S1Slow)
	a.powered = s.Powered
	a.remanent = s.Remanent
	a.powerOns = s.PowerOns
	a.setNoiseGen(gen)
	// The cached decision variables and equivalent stress times belong
	// to the replaced pools: invalidate both (equivalent times re-derive
	// lazily on the next growth of each cell).
	a.biasFresh = false
	for i := range a.t0Ref {
		a.t0Ref[i] = -1
		a.t1Ref[i] = -1
	}
	return nil
}
