package sram

import (
	"context"
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
)

// captureBurst is the shared engine behind CaptureMajority, CaptureVotes
// and BiasMap: it runs `captures` power-on races and returns the
// per-cell count of 1 readings, leaving the array powered with the final
// capture as its digital contents (as real hardware does after the last
// power cycle of a sampling burst).
//
// Because each race's noise is counter-derived (noise.Norm(k, i) for
// power-on k, cell i), the burst needs no intermediate snapshots: every
// cell accumulates its own votes independently, so the whole burst
// shards over the worker pool in one pass with the per-cell bias hoisted
// out of the capture loop. Results are bit-identical to running the
// races one by one, for any worker count and any chunk size.
//
// Remanence is honoured exactly as in the serial engine: if the array is
// unpowered but remanent, the first capture returns the retained
// contents without running (or counting) a race.
func (a *Array) captureBurst(ctx context.Context, captures int, tempC float64) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	counts := make([]uint32, a.n)
	races := captures
	if !a.powered && a.remanent {
		// First capture is the remembered state; no race, no counter.
		a.remanent = false
		for i := 0; i < a.n; i++ {
			if a.data[i/8]&(1<<(i%8)) != 0 {
				counts[i]++
			}
		}
		races--
	}
	if races > 0 {
		if err := a.ensureBiasPlane(ctx); err != nil {
			a.powered = false
			return nil, err
		}
		sigma := a.noiseSigmaAt(tempC)
		bound := a.pruneBound(sigma)
		norm := a.drawNorm
		base := a.powerOns
		a.powerOns += uint64(races)
		err := a.pool.Run(ctx, len(a.data), 1, func(lo, hi int) {
			for byteIdx := lo; byteIdx < hi; byteIdx++ {
				var final byte
				cell := byteIdx * 8
				for b := 0; b < 8; b++ {
					i := cell + b
					bias := float64(a.biasPlane[i])
					// Deterministic cells resolve the same way on every
					// race (v2 noise is hard-bounded): credit the whole
					// burst at once, no draws. Their per-cell noise tapes
					// are simply never read — counter-derived noise means
					// skipping them cannot shift any other cell.
					if bias > bound {
						counts[i] += uint32(races)
						final |= 1 << b
						continue
					}
					if bias < -bound {
						continue
					}
					idx := uint64(i)
					for k := 0; k < races; k++ {
						if bias+sigma*norm(base+uint64(k), idx) > 0 {
							counts[i]++
							if k == races-1 {
								final |= 1 << b
							}
						}
					}
				}
				a.data[byteIdx] = final
			}
		})
		if err != nil {
			// Cancelled mid-burst: the data plane is partially written,
			// so leave the array unpowered — the next power-on runs a
			// fresh race over everything.
			a.powered = false
			return nil, err
		}
	}
	a.powered = true
	return counts, nil
}

// CaptureMajority performs captures power cycles at tempC and returns the
// per-bit majority across them — the receiver's noise filter from §4.3:
// "While any odd number of state captures works, we find that taking five
// captures is sufficient to filter noise." The array is left powered with
// the final capture as its contents.
func (a *Array) CaptureMajority(captures int, tempC float64) ([]byte, error) {
	return a.CaptureMajorityContext(context.Background(), captures, tempC)
}

// CaptureMajorityContext is CaptureMajority with cancellation: the burst
// checks ctx between dispatched chunks, so a cancelled multi-capture
// sweep stops without finishing the remaining cells.
func (a *Array) CaptureMajorityContext(ctx context.Context, captures int, tempC float64) ([]byte, error) {
	if captures < 1 || captures%2 == 0 {
		return nil, fmt.Errorf("sram: majority voting needs an odd capture count, got %d", captures)
	}
	counts, err := a.captureBurst(ctx, captures, tempC)
	if err != nil {
		return nil, err
	}
	out := make([]byte, a.n/8)
	threshold := uint32(captures/2) + 1
	for i, c := range counts {
		if c >= threshold {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}

// CaptureVotes performs captures power cycles at tempC and returns, for
// each cell, how many captures read 1. This is the soft information
// behind majority voting: a cell reading 5/5 ones is far more trustworthy
// than one reading 3/5, and the soft-decision decoder (ecc.SoftDecoder)
// exploits exactly that. The array is left powered.
func (a *Array) CaptureVotes(captures int, tempC float64) ([]uint16, error) {
	return a.CaptureVotesContext(context.Background(), captures, tempC)
}

// CaptureVotesContext is CaptureVotes with cancellation.
func (a *Array) CaptureVotesContext(ctx context.Context, captures int, tempC float64) ([]uint16, error) {
	if captures < 1 {
		return nil, fmt.Errorf("sram: need at least one capture, got %d", captures)
	}
	counts, err := a.captureBurst(ctx, captures, tempC)
	if err != nil {
		return nil, err
	}
	votes := make([]uint16, a.n)
	for i, c := range counts {
		votes[i] = uint16(c)
	}
	return votes, nil
}

// BiasMap estimates each cell's power-on bias (fraction of 1s) over the
// given number of captures — the quantity Fig. 3a–c histograms.
func (a *Array) BiasMap(captures int, tempC float64) ([]float64, error) {
	return a.BiasMapContext(context.Background(), captures, tempC)
}

// BiasMapContext is BiasMap with cancellation, matching the
// CaptureMajorityContext / CaptureVotesContext surface: the burst checks
// ctx between dispatched chunks.
func (a *Array) BiasMapContext(ctx context.Context, captures int, tempC float64) ([]float64, error) {
	if captures < 1 {
		return nil, fmt.Errorf("sram: need at least one capture, got %d", captures)
	}
	counts, err := a.captureBurst(ctx, captures, tempC)
	if err != nil {
		return nil, err
	}
	out := make([]float64, a.n)
	inv := 1 / float64(captures)
	for i, c := range counts {
		out[i] = float64(c) * inv
	}
	return out, nil
}

// OperateRandom simulates ordinary software running on the device: it
// repeatedly fills the SRAM with pseudo-random words from the paper's
// LFSR+LCG workload generator and lets the device sit at conditions c for
// each epoch (§5.1.4). Cells therefore alternate held values epoch to
// epoch; reinforcement and opposition average out while the encoded
// direction's recoverable pools relax only during opposing epochs — which
// is why normal operation degrades the message *less* than shelving.
func (a *Array) OperateRandom(w *rng.WorkloadWriter, c analog.Conditions, hours, epochHours float64) error {
	if !a.powered {
		return ErrUnpowered
	}
	if hours <= 0 {
		return nil
	}
	if epochHours <= 0 {
		return fmt.Errorf("sram: epochHours must be positive, got %v", epochHours)
	}
	buf := make([]byte, a.Bytes())
	for remaining := hours; remaining > 0; remaining -= epochHours {
		dt := epochHours
		if remaining < dt {
			dt = remaining
		}
		w.Fill(buf)
		if err := a.Write(buf); err != nil {
			return err
		}
		if err := a.Stress(c, dt); err != nil {
			return err
		}
	}
	return nil
}

// StressWithPattern is a convenience for the encoding pipeline: write
// pattern, stress, in one step.
func (a *Array) StressWithPattern(pattern []byte, c analog.Conditions, hours float64) error {
	if err := a.Write(pattern); err != nil {
		return err
	}
	return a.Stress(c, hours)
}
