package sram

import (
	"context"
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
)

// Capture entry points. All of them run the word-parallel kernel burst
// (kernel.go) and derive their output from the per-cell vote counts;
// the array is left powered with the final capture as its digital
// contents (as real hardware does after the last power cycle of a
// sampling burst). Because each race's noise is counter-derived
// (norm(k, i) for power-on k, cell i), results are bit-identical to
// running the races one by one, for any worker count and chunk size.
//
// Remanence is honoured exactly as in the serial engine: if the array
// is unpowered but remanent, the first capture returns the retained
// contents without running (or counting) a race.

// validCaptures rejects capture counts the burst engine cannot
// represent: non-positive, and counts beyond MaxCaptures (whose
// per-cell votes would not fit the 16-bit counters — the pre-kernel
// engine silently truncated these).
func validCaptures(captures int) error {
	if captures < 1 {
		return fmt.Errorf("sram: need at least one capture, got %d", captures)
	}
	if captures > MaxCaptures {
		return &CaptureCountError{Captures: captures}
	}
	return nil
}

// CaptureMajority performs captures power cycles at tempC and returns the
// per-bit majority across them — the receiver's noise filter from §4.3:
// "While any odd number of state captures works, we find that taking five
// captures is sufficient to filter noise." The array is left powered with
// the final capture as its contents.
func (a *Array) CaptureMajority(captures int, tempC float64) ([]byte, error) {
	return a.CaptureMajorityContext(context.Background(), captures, tempC)
}

// CaptureMajorityContext is CaptureMajority with cancellation: the burst
// checks ctx between dispatched chunks, so a cancelled multi-capture
// sweep stops without finishing the remaining cells.
func (a *Array) CaptureMajorityContext(ctx context.Context, captures int, tempC float64) ([]byte, error) {
	out := make([]byte, a.n/8)
	if err := a.CaptureMajorityInto(ctx, captures, tempC, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CaptureMajorityInto is CaptureMajorityContext writing into a
// caller-provided buffer of Bytes() bytes: steady-state batch decoding
// reuses one buffer across bursts and allocates nothing.
func (a *Array) CaptureMajorityInto(ctx context.Context, captures int, tempC float64, out []byte) error {
	if captures < 1 || captures%2 == 0 {
		return fmt.Errorf("sram: majority voting needs an odd capture count, got %d", captures)
	}
	if err := validCaptures(captures); err != nil {
		return err
	}
	if len(out) != a.n/8 {
		return fmt.Errorf("sram: majority into %d bytes, need %d", len(out), a.n/8)
	}
	counts := a.scratchCounts()
	if err := a.captureBurstInto(ctx, captures, tempC, counts); err != nil {
		return err
	}
	threshold := uint16(captures/2) + 1
	for byteIdx := range out {
		var bv byte
		base := byteIdx * 8
		for b := 0; b < 8; b++ {
			if counts[base+b] >= threshold {
				bv |= 1 << uint(b)
			}
		}
		out[byteIdx] = bv
	}
	return nil
}

// CaptureVotes performs captures power cycles at tempC and returns, for
// each cell, how many captures read 1. This is the soft information
// behind majority voting: a cell reading 5/5 ones is far more trustworthy
// than one reading 3/5, and the soft-decision decoder (ecc.SoftDecoder)
// exploits exactly that. The array is left powered.
func (a *Array) CaptureVotes(captures int, tempC float64) ([]uint16, error) {
	return a.CaptureVotesContext(context.Background(), captures, tempC)
}

// CaptureVotesContext is CaptureVotes with cancellation.
func (a *Array) CaptureVotesContext(ctx context.Context, captures int, tempC float64) ([]uint16, error) {
	votes := make([]uint16, a.n)
	if err := a.CaptureVotesInto(ctx, captures, tempC, votes); err != nil {
		return nil, err
	}
	return votes, nil
}

// CaptureVotesInto is CaptureVotesContext writing into a caller-provided
// buffer of Cells() counters. A receiver decoding a stream of devices
// reuses one buffer and the burst allocates nothing in steady state.
func (a *Array) CaptureVotesInto(ctx context.Context, captures int, tempC float64, out []uint16) error {
	if err := validCaptures(captures); err != nil {
		return err
	}
	if len(out) != a.n {
		return fmt.Errorf("sram: votes into %d counters, need %d", len(out), a.n)
	}
	return a.captureBurstInto(ctx, captures, tempC, out)
}

// BiasMap estimates each cell's power-on bias (fraction of 1s) over the
// given number of captures — the quantity Fig. 3a–c histograms.
func (a *Array) BiasMap(captures int, tempC float64) ([]float64, error) {
	return a.BiasMapContext(context.Background(), captures, tempC)
}

// BiasMapContext is BiasMap with cancellation, matching the
// CaptureMajorityContext / CaptureVotesContext surface: the burst checks
// ctx between dispatched chunks.
func (a *Array) BiasMapContext(ctx context.Context, captures int, tempC float64) ([]float64, error) {
	if err := validCaptures(captures); err != nil {
		return nil, err
	}
	counts := a.scratchCounts()
	if err := a.captureBurstInto(ctx, captures, tempC, counts); err != nil {
		return nil, err
	}
	out := make([]float64, a.n)
	inv := 1 / float64(captures)
	for i, c := range counts {
		out[i] = float64(c) * inv
	}
	return out, nil
}

// CaptureVotesScalar runs a capture burst with the pre-kernel scalar
// engine: deterministic-cell pruning and the per-cell bias hoisted, but
// one noise draw resolved at a time through the versioned sampler.
// Kept as the mid-generation baseline for cmd/ibbench's kernel grid and
// as a second differential witness (kernel vs scalar vs reference) for
// the equivalence suites. Semantics match CaptureVotes exactly.
func (a *Array) CaptureVotesScalar(captures int, tempC float64) ([]uint16, error) {
	return a.CaptureVotesScalarContext(context.Background(), captures, tempC)
}

// CaptureVotesScalarContext is CaptureVotesScalar with cancellation.
func (a *Array) CaptureVotesScalarContext(ctx context.Context, captures int, tempC float64) ([]uint16, error) {
	if err := validCaptures(captures); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	counts := make([]uint32, a.n)
	races := captures
	if !a.powered && a.remanent {
		// First capture is the remembered state; no race, no counter.
		a.remanent = false
		for i := 0; i < a.n; i++ {
			if a.data[i/8]&(1<<(i%8)) != 0 {
				counts[i]++
			}
		}
		races--
	}
	if races > 0 {
		if err := a.ensureBiasPlane(ctx); err != nil {
			a.powered = false
			return nil, err
		}
		sigma := a.noiseSigmaAt(tempC)
		bound := a.pruneBound(sigma)
		norm := a.drawNorm
		base := a.powerOns
		a.powerOns += uint64(races)
		err := a.pool.Run(ctx, len(a.data), 1, func(lo, hi int) {
			for byteIdx := lo; byteIdx < hi; byteIdx++ {
				var final byte
				cell := byteIdx * 8
				for b := 0; b < 8; b++ {
					i := cell + b
					bias := float64(a.biasPlane[i])
					// Deterministic cells resolve the same way on every
					// race (v2 noise is hard-bounded): credit the whole
					// burst at once, no draws.
					if bias > bound {
						counts[i] += uint32(races)
						final |= 1 << uint(b)
						continue
					}
					if bias < -bound {
						continue
					}
					idx := uint64(i)
					for k := 0; k < races; k++ {
						if bias+sigma*norm(base+uint64(k), idx) > 0 {
							counts[i]++
							if k == races-1 {
								final |= 1 << uint(b)
							}
						}
					}
				}
				a.data[byteIdx] = final
			}
		})
		if err != nil {
			// Cancelled mid-burst: the data plane is partially written,
			// so leave the array unpowered — the next power-on runs a
			// fresh race over everything.
			a.powered = false
			return nil, err
		}
	}
	a.powered = true
	votes := make([]uint16, a.n)
	for i, c := range counts {
		votes[i] = uint16(c)
	}
	return votes, nil
}

// OperateRandom simulates ordinary software running on the device: it
// repeatedly fills the SRAM with pseudo-random words from the paper's
// LFSR+LCG workload generator and lets the device sit at conditions c for
// each epoch (§5.1.4). Cells therefore alternate held values epoch to
// epoch; reinforcement and opposition average out while the encoded
// direction's recoverable pools relax only during opposing epochs — which
// is why normal operation degrades the message *less* than shelving.
func (a *Array) OperateRandom(w *rng.WorkloadWriter, c analog.Conditions, hours, epochHours float64) error {
	if !a.powered {
		return ErrUnpowered
	}
	if hours <= 0 {
		return nil
	}
	if epochHours <= 0 {
		return fmt.Errorf("sram: epochHours must be positive, got %v", epochHours)
	}
	buf := make([]byte, a.Bytes())
	for remaining := hours; remaining > 0; remaining -= epochHours {
		dt := epochHours
		if remaining < dt {
			dt = remaining
		}
		w.Fill(buf)
		if err := a.Write(buf); err != nil {
			return err
		}
		if err := a.Stress(c, dt); err != nil {
			return err
		}
	}
	return nil
}

// StressWithPattern is a convenience for the encoding pipeline: write
// pattern, stress, in one step.
func (a *Array) StressWithPattern(pattern []byte, c analog.Conditions, hours float64) error {
	if err := a.Write(pattern); err != nil {
		return err
	}
	return a.Stress(c, hours)
}
