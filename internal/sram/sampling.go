package sram

import (
	"fmt"

	"invisiblebits/internal/analog"
	"invisiblebits/internal/rng"
)

// CaptureMajority performs captures power cycles at tempC and returns the
// per-bit majority across them — the receiver's noise filter from §4.3:
// "While any odd number of state captures works, we find that taking five
// captures is sufficient to filter noise." The array is left powered with
// the final capture as its contents.
func (a *Array) CaptureMajority(captures int, tempC float64) ([]byte, error) {
	if captures < 1 || captures%2 == 0 {
		return nil, fmt.Errorf("sram: majority voting needs an odd capture count, got %d", captures)
	}
	counts := make([]uint16, a.n)
	for k := 0; k < captures; k++ {
		var snap []byte
		var err error
		if a.powered {
			snap, err = a.PowerCycle(tempC)
		} else {
			snap, err = a.PowerOn(tempC)
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < a.n; i++ {
			if snap[i/8]&(1<<(i%8)) != 0 {
				counts[i]++
			}
		}
	}
	out := make([]byte, a.n/8)
	threshold := uint16(captures/2) + 1
	for i, c := range counts {
		if c >= threshold {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}

// CaptureVotes performs captures power cycles at tempC and returns, for
// each cell, how many captures read 1. This is the soft information
// behind majority voting: a cell reading 5/5 ones is far more trustworthy
// than one reading 3/5, and the soft-decision decoder (ecc.SoftDecoder)
// exploits exactly that. The array is left powered.
func (a *Array) CaptureVotes(captures int, tempC float64) ([]uint16, error) {
	if captures < 1 {
		return nil, fmt.Errorf("sram: need at least one capture, got %d", captures)
	}
	counts := make([]uint16, a.n)
	for k := 0; k < captures; k++ {
		var snap []byte
		var err error
		if a.powered {
			snap, err = a.PowerCycle(tempC)
		} else {
			snap, err = a.PowerOn(tempC)
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < a.n; i++ {
			if snap[i/8]&(1<<(i%8)) != 0 {
				counts[i]++
			}
		}
	}
	return counts, nil
}

// BiasMap estimates each cell's power-on bias (fraction of 1s) over the
// given number of captures — the quantity Fig. 3a–c histograms.
func (a *Array) BiasMap(captures int, tempC float64) ([]float64, error) {
	if captures < 1 {
		return nil, fmt.Errorf("sram: need at least one capture, got %d", captures)
	}
	counts := make([]uint32, a.n)
	for k := 0; k < captures; k++ {
		var snap []byte
		var err error
		if a.powered {
			snap, err = a.PowerCycle(tempC)
		} else {
			snap, err = a.PowerOn(tempC)
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < a.n; i++ {
			if snap[i/8]&(1<<(i%8)) != 0 {
				counts[i]++
			}
		}
	}
	out := make([]float64, a.n)
	inv := 1 / float64(captures)
	for i, c := range counts {
		out[i] = float64(c) * inv
	}
	return out, nil
}

// OperateRandom simulates ordinary software running on the device: it
// repeatedly fills the SRAM with pseudo-random words from the paper's
// LFSR+LCG workload generator and lets the device sit at conditions c for
// each epoch (§5.1.4). Cells therefore alternate held values epoch to
// epoch; reinforcement and opposition average out while the encoded
// direction's recoverable pools relax only during opposing epochs — which
// is why normal operation degrades the message *less* than shelving.
func (a *Array) OperateRandom(w *rng.WorkloadWriter, c analog.Conditions, hours, epochHours float64) error {
	if !a.powered {
		return ErrUnpowered
	}
	if hours <= 0 {
		return nil
	}
	if epochHours <= 0 {
		return fmt.Errorf("sram: epochHours must be positive, got %v", epochHours)
	}
	buf := make([]byte, a.Bytes())
	for remaining := hours; remaining > 0; remaining -= epochHours {
		dt := epochHours
		if remaining < dt {
			dt = remaining
		}
		w.Fill(buf)
		if err := a.Write(buf); err != nil {
			return err
		}
		if err := a.Stress(c, dt); err != nil {
			return err
		}
	}
	return nil
}

// StressWithPattern is a convenience for the encoding pipeline: write
// pattern, stress, in one step.
func (a *Array) StressWithPattern(pattern []byte, c analog.Conditions, hours float64) error {
	if err := a.Write(pattern); err != nil {
		return err
	}
	return a.Stress(c, hours)
}
